// Paper Tables I and II: commits-per-abort ratio for TPCC (Hash Table)
// with redo logging (Table I) and undo logging (Table II), across
// DRAM/Optane × ADR/eADR at threads {1,2,4,8,16,32}.
//
// Expected shapes (paper §III.B):
//  * the single-thread column shows "-" (no aborts; the ratio's sentinel
//    is +infinity — see stats::TxCounters::commit_abort_ratio);
//  * ratios are lower on Optane than DRAM at every thread level (longer
//    flush/fence-extended critical sections → more conflicts);
//  * ratios degrade as threads grow, faster on Optane;
//  * undo ratios (Table II) are far lower than redo (Table I): encounter-
//    time locking holds orecs for the whole transaction body.
//
// Alongside each ratio table we print the raw commit/abort counts and the
// abort-cause attribution (read conflict / write conflict / validation /
// explicit / capacity), which shows *why* the ratios degrade: redo aborts
// shift to commit-time write conflicts, undo aborts to encounter-time ones.
// The capacity column should stay 0 on paper-default configurations — a
// nonzero count means the per-worker logs are undersized for the workload
// and the measured fence counts include log-growth machinery.
#include "bench_common.h"
#include "workloads/tpcc.h"

namespace {

void one_table(const char* title, ptm::Algo algo) {
  std::vector<bench::Curve> curves;
  for (auto m : {nvm::Media::kDram, nvm::Media::kOptane}) {
    for (auto d : {nvm::Domain::kAdr, nvm::Domain::kEadr}) {
      curves.push_back(bench::curve(m, d, algo));
    }
  }

  std::vector<std::string> header{"config"};
  for (int t : bench::thread_sweep()) header.push_back(std::to_string(t));
  util::TextTable ratios(header);
  util::TextTable raw(header);     // commits:aborts
  util::TextTable causes(header);  // read/write/validation/explicit/capacity

  for (const auto& c : curves) {
    std::vector<std::string> row{c.label};
    std::vector<std::string> row_raw{c.label};
    std::vector<std::string> row_causes{c.label};
    for (int threads : bench::thread_sweep()) {
      // TPC-C practice (and evidently the paper's): warehouses scale with
      // threads, so aggregate contention does not explode at 32 threads.
      workloads::TpccParams tp;
      tp.index = workloads::TpccIndex::kHashTable;
      tp.warehouses = static_cast<uint64_t>(threads < 4 ? 4 : threads);
      auto factory = workloads::tpcc_factory(tp);

      workloads::RunPoint p;
      bench::apply_model_scale(p.sys);
      p.sys.media = c.media;
      p.sys.domain = c.domain;
      p.algo = c.algo;
      p.threads = threads;
      p.ops_per_thread = bench::scaled_ops(150);
      const auto r = workloads::run_point(factory, p);
      const auto& t = r.totals;
      row.push_back(util::fmt_ratio(t.commit_abort_ratio(), 2));
      row_raw.push_back(std::to_string(t.commits) + ":" + std::to_string(t.aborts));
      row_causes.push_back(
          std::to_string(t.aborts_of(stats::AbortCause::kConflictRead)) + "/" +
          std::to_string(t.aborts_of(stats::AbortCause::kConflictWrite)) + "/" +
          std::to_string(t.aborts_of(stats::AbortCause::kValidation)) + "/" +
          std::to_string(t.aborts_of(stats::AbortCause::kExplicit)) + "/" +
          std::to_string(t.aborts_of(stats::AbortCause::kCapacity)));
      bench::Output::instance().add_result(title, c.label, r);
      std::cout << "." << std::flush;
    }
    ratios.add_row(std::move(row));
    raw.add_row(std::move(row_raw));
    causes.add_row(std::move(row_causes));
  }
  auto& out = bench::Output::instance();
  out.table(title, ratios);
  out.table(std::string(title) + " — raw commits:aborts", raw);
  out.table(std::string(title) +
                " — aborts by cause "
                "(read-conflict/write-conflict/validation/explicit/capacity)",
            causes);
}

}  // namespace

int main() {
  one_table("Table I: commits per abort, TPCC (Hash), redo logging", ptm::Algo::kOrecLazy);
  one_table("Table II: commits per abort, TPCC (Hash), undo logging", ptm::Algo::kOrecEager);
  return 0;
}
