// Paper Figure 4: the TATP telecom workload under the Fig-3 curve set.
//
// Expected shape: TATP is the paper's outlier — its transactions write
// only 1-2 words, so undo logging's O(W) fence penalty nearly vanishes and
// the undo curves sit close to (or above) redo.
#include "bench_common.h"
#include "workloads/tatp.h"

int main() {
  workloads::TatpParams tp;
  bench::run_panel("Fig 4 TATP (write-only)", workloads::tatp_factory(tp),
                   bench::fig3_curves(), 600);
  return 0;
}
