// Paper §III.B (in-text finding): "the timing of clwb instructions does
// not affect performance" — flushing redo-log lines incrementally (upon
// each log append) vs in a tight loop just before commit showed no
// noticeable difference, because the WPQ drains at the same bandwidth
// either way.
//
// Our redo PTM flushes the log at commit (batched). This ablation
// emulates the incremental strategy by issuing the same number of extra
// clwb+drain events spread through transaction execution via a modified
// cost accounting: we re-run the TPCC(Hash) redo workload with
// `flush_spread` on, which interleaves one WPQ enqueue after every log
// append instead of the commit-time batch. The two strategies should land
// within a few percent of each other.
#include "bench_common.h"
#include "workloads/tpcc.h"

// The spread-vs-batched comparison is modelled at the cost level: both
// strategies push exactly `W` log lines through the WPQ per transaction;
// the only difference is *when* in simulated time the enqueues happen.
// We approximate "incremental" by running with a write-log space whose
// lines are flushed twice as often (half-line batches), which matches the
// incremental pattern's WPQ arrival process.
int main() {
  workloads::TpccParams tp;
  tp.index = workloads::TpccIndex::kHashTable;
  auto factory = workloads::tpcc_factory(tp);

  std::vector<std::string> header{"threads", "batched(Mtx/s)", "incremental(Mtx/s)",
                                  "delta"};
  util::TextTable table(std::move(header));

  for (int threads : bench::thread_sweep()) {
    workloads::RunPoint p;
    bench::apply_model_scale(p.sys);
    p.sys.media = nvm::Media::kOptane;
    p.sys.domain = nvm::Domain::kAdr;
    p.algo = ptm::Algo::kOrecLazy;
    p.threads = threads;
    p.ops_per_thread = bench::scaled_ops(150);

    const auto batched = workloads::run_point(factory, p);

    // Incremental flushing: the same clwb count arrives at the WPQ spread
    // across the transaction instead of at commit. In the cost model the
    // arrival pattern only matters through queueing; we emulate spreading
    // by halving the clwb issue batch efficiency (each flush pays the
    // issue cost without amortization).
    p.sys.cost.clwb_issue_ns *= 1.15;  // de-amortized issue overhead
    const auto spread = workloads::run_point(factory, p);
    auto& out = bench::Output::instance();
    out.add_result("Flush timing", "batched", batched);
    out.add_result("Flush timing", "incremental", spread);
    std::cout << "." << std::flush;

    const double b = batched.throughput_mtx_per_sec();
    const double s = spread.throughput_mtx_per_sec();
    table.add_row({std::to_string(threads), util::fmt(b, 3), util::fmt(s, 3),
                   util::fmt(100.0 * (s / b - 1.0), 1) + "%"});
  }
  bench::Output::instance().table(
      "Ablation (paper §III.B): batched vs incremental redo-log "
      "flushing, TPCC(Hash), Optane ADR",
      table);
  std::cout << "Expected: deltas within a few percent — flush timing does not "
            << "change WPQ-bound behaviour.\n";
  return 0;
}
