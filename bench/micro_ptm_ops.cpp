// Google-benchmark microbenchmarks of the PTM runtime primitives: raw
// host-side costs of transactional reads/writes, log appends, commit paths
// and allocator ops. These measure the *implementation*, not the simulated
// machine (timing model off), and guard against runtime regressions.
//
// When an artifact is requested (REPRO_JSON or REPRO_BENCH), the binary
// additionally runs a small discrete-event section (btree-insert under
// Optane ADR) through the workload driver, so its artifact carries the same
// RunResult schema as the figure benches — including the "device" section
// when REPRO_DEVSTATS=1. Default stdout is the plain google-benchmark
// table, unchanged.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_common.h"
#include "containers/bptree.h"
#include "containers/hashmap.h"
#include "ptm/runtime.h"
#include "sim/context.h"
#include "workloads/btree_micro.h"

namespace {

struct Root {
  uint64_t cells[256];
  uint64_t tree;
  cont::HashMap::Handle map;
};

nvm::SystemConfig bench_cfg() {
  nvm::SystemConfig cfg;
  cfg.media = nvm::Media::kOptane;
  cfg.domain = nvm::Domain::kEadr;
  cfg.model_timing = false;  // measure host-side runtime cost only
  cfg.pool_size = 128ull << 20;
  cfg.max_workers = 4;
  return cfg;
}

void BM_ReadOnlyTx(benchmark::State& state, ptm::Algo algo) {
  nvm::Pool pool(bench_cfg());
  ptm::Runtime rt(pool, algo);
  sim::RealContext ctx(0, 4);
  auto* root = pool.root<Root>();
  uint64_t i = 0;
  for (auto _ : state) {
    rt.run(ctx, [&](ptm::Tx& tx) {
      benchmark::DoNotOptimize(tx.read(&root->cells[i++ & 255]));
    });
  }
}
BENCHMARK_CAPTURE(BM_ReadOnlyTx, redo, ptm::Algo::kOrecLazy);
BENCHMARK_CAPTURE(BM_ReadOnlyTx, undo, ptm::Algo::kOrecEager);

void BM_WriteTx(benchmark::State& state, ptm::Algo algo) {
  nvm::Pool pool(bench_cfg());
  ptm::Runtime rt(pool, algo);
  sim::RealContext ctx(0, 4);
  auto* root = pool.root<Root>();
  const auto writes = static_cast<uint64_t>(state.range(0));
  uint64_t i = 0;
  for (auto _ : state) {
    rt.run(ctx, [&](ptm::Tx& tx) {
      for (uint64_t w = 0; w < writes; w++) {
        tx.write(&root->cells[(i + w * 7) & 255], i);
      }
    });
    i++;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(writes));
}
BENCHMARK_CAPTURE(BM_WriteTx, redo, ptm::Algo::kOrecLazy)->Arg(1)->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_WriteTx, undo, ptm::Algo::kOrecEager)->Arg(1)->Arg(8)->Arg(64);

void BM_AllocFree(benchmark::State& state) {
  nvm::Pool pool(bench_cfg());
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 4);
  for (auto _ : state) {
    void* p = nullptr;
    rt.run(ctx, [&](ptm::Tx& tx) { p = tx.alloc(64); });
    rt.run(ctx, [&](ptm::Tx& tx) { tx.dealloc(p); });
  }
}
BENCHMARK(BM_AllocFree);

void BM_BTreeInsertLookup(benchmark::State& state) {
  nvm::Pool pool(bench_cfg());
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 4);
  auto* root = &pool.root<Root>()->tree;
  rt.run(ctx, [&](ptm::Tx& tx) { cont::BPlusTree::create(tx, root); });
  uint64_t k = 0;
  for (auto _ : state) {
    rt.run(ctx, [&](ptm::Tx& tx) {
      cont::BPlusTree::insert(tx, root, k * 0x9e3779b97f4a7c15ull, k);
    });
    rt.run(ctx, [&](ptm::Tx& tx) {
      uint64_t out;
      benchmark::DoNotOptimize(
          cont::BPlusTree::lookup(tx, root, k * 0x9e3779b97f4a7c15ull, &out));
    });
    k++;
  }
}
BENCHMARK(BM_BTreeInsertLookup);

void BM_HashMapInsertLookup(benchmark::State& state) {
  nvm::Pool pool(bench_cfg());
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 4);
  auto* h = &pool.root<Root>()->map;
  rt.run(ctx, [&](ptm::Tx& tx) { cont::HashMap::create(tx, h, 1 << 16); });
  uint64_t k = 0;
  for (auto _ : state) {
    rt.run(ctx, [&](ptm::Tx& tx) { cont::HashMap::insert(tx, h, k, k); });
    rt.run(ctx, [&](ptm::Tx& tx) {
      uint64_t out;
      benchmark::DoNotOptimize(cont::HashMap::lookup(tx, h, k, &out));
    });
    k++;
  }
}
BENCHMARK(BM_HashMapInsertLookup);

// Discrete-event section: one btree-insert point per thread count under
// Optane ADR (redo), registered with bench::Output like every figure bench.
// Only runs when an artifact was requested — the host-side micros above
// stay the default (and only) stdout output.
void run_sim_section() {
  const bool artifact_requested =
      [](const char* v) { return v != nullptr && v[0] != '\0'; }(
          std::getenv("REPRO_JSON")) ||
      [](const char* v) { return v != nullptr && v[0] != '\0'; }(
          std::getenv("REPRO_BENCH"));
  if (!artifact_requested) return;

  const std::string title = "micro_ptm_ops sim section (BTree insert-only)";
  workloads::BTreeMicroParams wp;
  wp.insert_only = true;
  const auto factory = workloads::btree_micro_factory(wp);
  for (int threads : {1, 2}) {
    if (threads > bench::max_threads()) continue;
    workloads::RunPoint p;
    bench::apply_model_scale(p.sys);
    p.sys.media = nvm::Media::kOptane;
    p.sys.domain = nvm::Domain::kAdr;
    p.algo = ptm::Algo::kOrecLazy;
    p.threads = threads;
    p.ops_per_thread = bench::scaled_ops(400);
    p.seed = 42;
    const auto r = workloads::run_point(factory, p);
    bench::Output::instance().add_result(title, "Optane_ADR_R", r);
  }
}

}  // namespace

// BENCHMARK_MAIN() expansion plus the artifact-gated sim section.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_sim_section();
  return 0;
}
