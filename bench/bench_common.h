// Shared scaffolding for the figure/table reproduction binaries.
//
// Every bench sweeps (curve × thread-count) points through the workload
// driver and prints one aligned table per figure panel, with curve labels
// matching the paper's legends ("Optane_ADR_R" = Optane media, ADR domain,
// redo logging, etc.). Absolute numbers are simulated-throughput values;
// EXPERIMENTS.md compares *shapes* against the paper.
//
// Environment knobs (see docs/OBSERVABILITY.md):
//   REPRO_OPS_SCALE   multiply operations per thread (default 1.0)
//   REPRO_MAX_THREADS cap the thread sweep (default 32)
//   REPRO_CSV=1       emit CSV after each table
//   REPRO_JSON=<file> write every bench point as a JSON artifact (implies
//                     phase-latency telemetry; scripts/compare_results.py
//                     diffs two artifacts)
//   REPRO_TRACE=<file> record Chrome trace_event spans (src/stats/trace.h)
//   REPRO_TELEMETRY=1 phase histograms without the JSON artifact
//   REPRO_DEVSTATS=1  emulated DIMM counters ("device" section; trace "ph":"C")
//   REPRO_BENCH=<file> write the wall-clock self-profile artifact (sim-
//                     events/sec per point + per subsystem; rolled into
//                     BENCH_<n>.json by scripts/bench_trajectory.py)
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "stats/histogram.h"
#include "stats/json_writer.h"
#include "stats/report.h"
#include "util/table.h"
#include "workloads/driver.h"

namespace bench {

/// Output dispatch shared by every bench binary: renders each finished
/// table in all enabled tabular formats (text always, CSV on REPRO_CSV=1)
/// and accumulates every benchmark point for the REPRO_JSON artifact,
/// which is written once at process exit. Replaces the per-binary inline
/// getenv checks so the knobs behave identically across all binaries.
class Output {
 public:
  static Output& instance() {
    static Output o;
    return o;
  }

  /// Print a finished table (text + optional CSV).
  void table(const std::string& title, const util::TextTable& t) {
    std::cout << "\n== " << title << " ==\n";
    t.print(std::cout);
    if (csv_) t.print_csv(std::cout);
    std::cout << std::endl;
  }

  /// Register one benchmark point for the JSON artifact. `bench` is the
  /// panel/table title, `label` the curve (a point is identified by
  /// (bench, label, threads) — compare_results.py matches on that key).
  void add_result(std::string bench, std::string label, const stats::RunResult& r) {
    if (json_path_.empty() && bench_path_.empty()) return;
    points_.push_back(Point{std::move(bench), std::move(label), r});
  }

  ~Output() {
    write_json_artifact();
    write_bench_artifact();
  }

 private:
  Output() {
    if (const char* s = std::getenv("REPRO_CSV")) csv_ = s[0] == '1';
    if (const char* p = std::getenv("REPRO_JSON"); p != nullptr && p[0] != '\0') {
      json_path_ = p;
      // The artifact's phase percentiles require the latency histograms.
      stats::set_telemetry_enabled(true);
    }
    if (const char* p = std::getenv("REPRO_BENCH"); p != nullptr && p[0] != '\0') {
      bench_path_ = p;
    }
  }

  void write_json_artifact() {
    if (json_path_.empty()) return;
    std::ofstream f(json_path_);
    if (!f) {
      std::cerr << "REPRO_JSON: cannot open " << json_path_ << "\n";
      return;
    }
    stats::JsonWriter w(f);
    w.begin_object();
    w.kv("schema_version", 1);
    w.kv("tool", "optane-ptm-bench");
    w.key("results").begin_array();
    for (const Point& p : points_) {
      w.begin_object();
      w.kv("bench", p.bench);
      w.kv("label", p.label);
      stats::write_run_result_fields(w, p.result);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    f << "\n";
    std::cerr << "REPRO_JSON: wrote " << points_.size() << " points to " << json_path_
              << "\n";
  }

  // The self-profile artifact: how fast the simulator itself ran, overall
  // and per subsystem. Wall-clock numbers are machine-dependent, which is
  // why they live in their own artifact instead of the deterministic
  // REPRO_JSON one; scripts/bench_trajectory.py merges the per-binary
  // files into the per-PR BENCH_<n>.json trajectory record.
  void write_bench_artifact() {
    if (bench_path_.empty()) return;
    std::ofstream f(bench_path_);
    if (!f) {
      std::cerr << "REPRO_BENCH: cannot open " << bench_path_ << "\n";
      return;
    }
    uint64_t wall_ns = 0, sim_events = 0;
    stats::JsonWriter w(f);
    w.begin_object();
    w.kv("schema_version", 1);
    w.kv("tool", "optane-ptm-bench-profile");
    w.key("points").begin_array();
    for (const Point& p : points_) {
      const stats::RunResult& r = p.result;
      wall_ns += r.wall_ns;
      sim_events += r.sim_events();
      w.begin_object();
      w.kv("bench", p.bench);
      w.kv("label", p.label);
      w.kv("workload", r.workload);
      w.kv("config", r.config);
      w.kv("threads", r.threads);
      w.kv("sim_ns", r.sim_ns);
      w.kv("throughput_tx_per_sec", r.throughput_tx_per_sec());
      w.kv("wall_ns", r.wall_ns);
      w.kv("sim_events", r.sim_events());
      w.kv("sim_events_per_sec", r.sim_events_per_sec());
      // Event counts per simulator subsystem: with the per-event costs
      // roughly constant, the shares say where a wall-clock regression
      // in the trajectory came from.
      w.key("subsystems").begin_object();
      w.kv("cache", r.totals.l3_hits + r.totals.l3_misses);
      w.kv("channel", r.channel_requests);
      w.kv("wpq", r.totals.clwbs);
      w.kv("psan", r.psan.events);
      w.kv("fault", r.persistence_events);
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.key("totals").begin_object();
    w.kv("wall_ns", wall_ns);
    w.kv("sim_events", sim_events);
    w.kv("sim_events_per_sec",
         wall_ns == 0 ? 0.0
                      : static_cast<double>(sim_events) * 1e9 /
                            static_cast<double>(wall_ns));
    w.end_object();
    w.end_object();
    f << "\n";
    std::cerr << "REPRO_BENCH: wrote " << points_.size() << " points to " << bench_path_
              << "\n";
  }

  struct Point {
    std::string bench;
    std::string label;
    stats::RunResult result;
  };

  bool csv_ = false;
  std::string json_path_;
  std::string bench_path_;
  std::vector<Point> points_;
};

struct Curve {
  std::string label;
  nvm::Media media;
  nvm::Domain domain;
  ptm::Algo algo;
  bool elide_fences = false;
};

inline Curve curve(nvm::Media m, nvm::Domain d, ptm::Algo a) {
  nvm::SystemConfig cfg;
  cfg.media = m;
  cfg.domain = d;
  std::string label = cfg.name() + "_" + ptm::algo_suffix(a);
  return Curve{label, m, d, a};
}

/// The eight Fig-3/4 curves: {DRAM, Optane} x {ADR, eADR} x {undo, redo}.
inline std::vector<Curve> fig3_curves() {
  std::vector<Curve> cs;
  for (auto m : {nvm::Media::kDram, nvm::Media::kOptane}) {
    for (auto d : {nvm::Domain::kAdr, nvm::Domain::kEadr}) {
      for (auto a : {ptm::Algo::kOrecEager, ptm::Algo::kOrecLazy}) {
        cs.push_back(curve(m, d, a));
      }
    }
  }
  return cs;
}

/// The seven Fig-6/7 curves: DRAM (not persistent), Optane eADR, the
/// proposed PDRAM (undo+redo) and PDRAM-Lite (redo only — its trick is
/// redo-log placement).
inline std::vector<Curve> fig6_curves() {
  std::vector<Curve> cs;
  for (auto a : {ptm::Algo::kOrecEager, ptm::Algo::kOrecLazy}) {
    cs.push_back(curve(nvm::Media::kDram, nvm::Domain::kEadr, a));
  }
  for (auto a : {ptm::Algo::kOrecEager, ptm::Algo::kOrecLazy}) {
    cs.push_back(curve(nvm::Media::kOptane, nvm::Domain::kEadr, a));
  }
  for (auto a : {ptm::Algo::kOrecEager, ptm::Algo::kOrecLazy}) {
    cs.push_back(curve(nvm::Media::kOptane, nvm::Domain::kPdram, a));
  }
  cs.push_back(curve(nvm::Media::kOptane, nvm::Domain::kPdramLite, ptm::Algo::kOrecLazy));
  return cs;
}

inline int max_threads() {
  if (const char* s = std::getenv("REPRO_MAX_THREADS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return 32;
}

inline std::vector<int> thread_sweep() {
  std::vector<int> out;
  for (int t : {1, 2, 4, 8, 16, 32}) {
    if (t <= max_threads()) out.push_back(t);
  }
  return out;
}

inline uint64_t scaled_ops(uint64_t base) {
  const double v = static_cast<double>(base) * workloads::ops_scale();
  return v < 1 ? 1 : static_cast<uint64_t>(v);
}

/// Scale the modelled hierarchy to match the scaled-down workloads. The
/// paper's working sets are GBs against a ~32MB L3; our workloads are
/// scaled ~1/16, so the L3 model scales likewise — otherwise everything
/// becomes L3-resident and media/domain differences vanish (and PDRAM's
/// DRAM-cache directory would never be exercised).
inline void apply_model_scale(nvm::SystemConfig& sys) {
  sys.l3_bytes = 2ull << 20;
  sys.dram_cache_bytes = 512ull << 20;  // holds every scaled working set
}

/// Sweep one figure panel: a table with one row per thread count and one
/// column per curve (throughput in simulated Mtx/s).
inline void run_panel(const std::string& title, const workloads::WorkloadFactory& factory,
                      const std::vector<Curve>& curves, uint64_t ops_per_thread,
                      uint64_t seed = 42) {
  std::vector<std::string> header{"threads"};
  for (const auto& c : curves) header.push_back(c.label);
  util::TextTable table(std::move(header));

  for (int threads : thread_sweep()) {
    std::vector<std::string> row{std::to_string(threads)};
    for (const auto& c : curves) {
      workloads::RunPoint p;
      apply_model_scale(p.sys);
      p.sys.media = c.media;
      p.sys.domain = c.domain;
      p.sys.elide_fences = c.elide_fences;
      p.algo = c.algo;
      p.threads = threads;
      p.ops_per_thread = scaled_ops(ops_per_thread);
      p.seed = seed;
      const auto r = workloads::run_point(factory, p);
      row.push_back(util::fmt(r.throughput_mtx_per_sec(), 3));
      Output::instance().add_result(title, c.label, r);
    }
    table.add_row(std::move(row));
    std::cout << "." << std::flush;  // progress heartbeat
  }
  Output::instance().table(title + " (throughput, simulated Mtx/s)", table);
}

}  // namespace bench
