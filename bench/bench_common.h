// Shared scaffolding for the figure/table reproduction binaries.
//
// Every bench sweeps (curve × thread-count) points through the workload
// driver and prints one aligned table per figure panel, with curve labels
// matching the paper's legends ("Optane_ADR_R" = Optane media, ADR domain,
// redo logging, etc.). Absolute numbers are simulated-throughput values;
// EXPERIMENTS.md compares *shapes* against the paper.
//
// Environment knobs:
//   REPRO_OPS_SCALE   multiply operations per thread (default 1.0)
//   REPRO_MAX_THREADS cap the thread sweep (default 32)
//   REPRO_CSV=1       emit CSV after each table
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "stats/report.h"
#include "util/table.h"
#include "workloads/driver.h"

namespace bench {

struct Curve {
  std::string label;
  nvm::Media media;
  nvm::Domain domain;
  ptm::Algo algo;
  bool elide_fences = false;
};

inline Curve curve(nvm::Media m, nvm::Domain d, ptm::Algo a) {
  nvm::SystemConfig cfg;
  cfg.media = m;
  cfg.domain = d;
  std::string label = cfg.name() + "_" + ptm::algo_suffix(a);
  return Curve{label, m, d, a};
}

/// The eight Fig-3/4 curves: {DRAM, Optane} x {ADR, eADR} x {undo, redo}.
inline std::vector<Curve> fig3_curves() {
  std::vector<Curve> cs;
  for (auto m : {nvm::Media::kDram, nvm::Media::kOptane}) {
    for (auto d : {nvm::Domain::kAdr, nvm::Domain::kEadr}) {
      for (auto a : {ptm::Algo::kOrecEager, ptm::Algo::kOrecLazy}) {
        cs.push_back(curve(m, d, a));
      }
    }
  }
  return cs;
}

/// The seven Fig-6/7 curves: DRAM (not persistent), Optane eADR, the
/// proposed PDRAM (undo+redo) and PDRAM-Lite (redo only — its trick is
/// redo-log placement).
inline std::vector<Curve> fig6_curves() {
  std::vector<Curve> cs;
  for (auto a : {ptm::Algo::kOrecEager, ptm::Algo::kOrecLazy}) {
    cs.push_back(curve(nvm::Media::kDram, nvm::Domain::kEadr, a));
  }
  for (auto a : {ptm::Algo::kOrecEager, ptm::Algo::kOrecLazy}) {
    cs.push_back(curve(nvm::Media::kOptane, nvm::Domain::kEadr, a));
  }
  for (auto a : {ptm::Algo::kOrecEager, ptm::Algo::kOrecLazy}) {
    cs.push_back(curve(nvm::Media::kOptane, nvm::Domain::kPdram, a));
  }
  cs.push_back(curve(nvm::Media::kOptane, nvm::Domain::kPdramLite, ptm::Algo::kOrecLazy));
  return cs;
}

inline int max_threads() {
  if (const char* s = std::getenv("REPRO_MAX_THREADS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return 32;
}

inline std::vector<int> thread_sweep() {
  std::vector<int> out;
  for (int t : {1, 2, 4, 8, 16, 32}) {
    if (t <= max_threads()) out.push_back(t);
  }
  return out;
}

inline uint64_t scaled_ops(uint64_t base) {
  const double v = static_cast<double>(base) * workloads::ops_scale();
  return v < 1 ? 1 : static_cast<uint64_t>(v);
}

/// Scale the modelled hierarchy to match the scaled-down workloads. The
/// paper's working sets are GBs against a ~32MB L3; our workloads are
/// scaled ~1/16, so the L3 model scales likewise — otherwise everything
/// becomes L3-resident and media/domain differences vanish (and PDRAM's
/// DRAM-cache directory would never be exercised).
inline void apply_model_scale(nvm::SystemConfig& sys) {
  sys.l3_bytes = 2ull << 20;
  sys.dram_cache_bytes = 512ull << 20;  // holds every scaled working set
}

/// Sweep one figure panel: a table with one row per thread count and one
/// column per curve (throughput in simulated Mtx/s).
inline void run_panel(const std::string& title, const workloads::WorkloadFactory& factory,
                      const std::vector<Curve>& curves, uint64_t ops_per_thread,
                      uint64_t seed = 42) {
  std::vector<std::string> header{"threads"};
  for (const auto& c : curves) header.push_back(c.label);
  util::TextTable table(std::move(header));

  for (int threads : thread_sweep()) {
    std::vector<std::string> row{std::to_string(threads)};
    for (const auto& c : curves) {
      workloads::RunPoint p;
      apply_model_scale(p.sys);
      p.sys.media = c.media;
      p.sys.domain = c.domain;
      p.sys.elide_fences = c.elide_fences;
      p.algo = c.algo;
      p.threads = threads;
      p.ops_per_thread = scaled_ops(ops_per_thread);
      p.seed = seed;
      const auto r = workloads::run_point(factory, p);
      row.push_back(util::fmt(r.throughput_mtx_per_sec(), 3));
    }
    table.add_row(std::move(row));
    std::cout << "." << std::flush;  // progress heartbeat
  }
  std::cout << "\n== " << title << " (throughput, simulated Mtx/s) ==\n";
  table.print(std::cout);
  if (const char* csv = std::getenv("REPRO_CSV"); csv && csv[0] == '1') {
    table.print_csv(std::cout);
  }
  std::cout << std::endl;
}

}  // namespace bench
