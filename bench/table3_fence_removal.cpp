// Paper Table III: % speedup from removing memory fences (keeping clwb)
// from the ADR write instrumentation — the deliberately *incorrect*
// variant used to attribute ADR overhead to fences vs flushes.
//
// Expected shape: substantial single-digit to ~25% speedups; undo gains
// at least as much as redo on fence-heavy workloads (undo fences are per
// write); Vacation gains less per-transaction share (non-tx work).
#include "bench_common.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"
#include "workloads/vacation.h"

namespace {

double speedup_pct(const workloads::WorkloadFactory& factory, ptm::Algo algo, int threads,
                   uint64_t ops, const std::string& label) {
  workloads::RunPoint p;
  bench::apply_model_scale(p.sys);
  p.sys.media = nvm::Media::kOptane;
  p.sys.domain = nvm::Domain::kAdr;
  p.algo = algo;
  p.threads = threads;
  p.ops_per_thread = bench::scaled_ops(ops);

  const auto base = workloads::run_point(factory, p);
  p.sys.elide_fences = true;
  const auto nofence = workloads::run_point(factory, p);
  auto& out = bench::Output::instance();
  out.add_result("Table III", label, base);
  out.add_result("Table III", label + "/nofence", nofence);
  std::cout << "." << std::flush;
  return 100.0 *
         (nofence.throughput_tx_per_sec() / base.throughput_tx_per_sec() - 1.0);
}

}  // namespace

int main() {
  constexpr int kThreads = 8;

  workloads::TpccParams tp;
  tp.index = workloads::TpccIndex::kHashTable;
  workloads::TatpParams ta;

  struct Row {
    const char* name;
    workloads::WorkloadFactory factory;
    uint64_t ops;
  };
  const std::vector<Row> cols = {
      {"TPCC", workloads::tpcc_factory(tp), 150},
      {"TATP", workloads::tatp_factory(ta), 500},
      {"Vacation(low)", workloads::vacation_factory(workloads::vacation_low()), 200},
      {"Vacation(high)", workloads::vacation_factory(workloads::vacation_high()), 200},
  };

  std::vector<std::string> header{"algo"};
  for (const auto& c : cols) header.emplace_back(c.name);
  util::TextTable table(std::move(header));

  for (auto algo : {ptm::Algo::kOrecEager, ptm::Algo::kOrecLazy}) {
    const std::string algo_name = algo == ptm::Algo::kOrecEager ? "Undo" : "Redo";
    std::vector<std::string> row{algo_name};
    for (const auto& c : cols) {
      row.push_back(util::fmt(speedup_pct(c.factory, algo, kThreads, c.ops,
                                          algo_name + "/" + c.name),
                              1) +
                    "%");
    }
    table.add_row(std::move(row));
  }
  bench::Output::instance().table("Table III: speedup from removing sfences (ADR, Optane, " +
                                      std::to_string(kThreads) + " threads)",
                                  table);
  return 0;
}
