// Extension bench (paper §V future work): energy consumption of the
// durability domains.
//
// Two views:
//  1. dynamic energy per committed transaction on TPCC(Hash), per domain —
//     ADR's uncoalesced clwb write-through should cost the most Optane
//     write energy per transaction (paper §IV.B: "ADR increases Optane
//     DIMM power draw, because its lack of write coalescing leads to more
//     power-hungry writes");
//  2. reserve-energy requirements of each domain at paper-scale geometry
//     (32MB L3, 96GB DRAM cache), with the backup technology each implies
//     (§IV.B: eADR ~ capacitors, PDRAM ~ lithium-ion battery).
#include "bench_common.h"
#include "nvm/energy.h"
#include "workloads/tpcc.h"

int main() {
  // --- dynamic energy per transaction ---------------------------------
  workloads::TpccParams tp;
  tp.index = workloads::TpccIndex::kHashTable;
  auto factory = workloads::tpcc_factory(tp);

  util::TextTable dyn({"domain", "redo uJ/tx", "undo uJ/tx"});
  for (auto domain : {nvm::Domain::kAdr, nvm::Domain::kEadr, nvm::Domain::kPdram,
                      nvm::Domain::kPdramLite}) {
    std::vector<std::string> row;
    nvm::SystemConfig name_cfg;
    name_cfg.domain = domain;
    row.push_back(nvm::domain_name(domain));
    for (auto algo : {ptm::Algo::kOrecLazy, ptm::Algo::kOrecEager}) {
      workloads::RunPoint p;
      bench::apply_model_scale(p.sys);
      p.sys.media = nvm::Media::kOptane;
      p.sys.domain = domain;
      p.algo = algo;
      p.threads = 8;
      p.ops_per_thread = bench::scaled_ops(150);
      const auto r = workloads::run_point(factory, p);
      row.push_back(util::fmt(
          r.totals.energy_pj / 1e6 / static_cast<double>(r.totals.commits), 2));
      bench::Output::instance().add_result(
          "Energy", std::string(nvm::domain_name(domain)) + "_" + ptm::algo_suffix(algo), r);
      std::cout << "." << std::flush;
    }
    dyn.add_row(std::move(row));
  }
  bench::Output::instance().table(
      "Extension: dynamic energy per transaction, TPCC(Hash), 8 threads", dyn);

  // --- reserve energy at paper-scale geometry --------------------------
  nvm::EnergyModel em;
  util::TextTable res({"domain", "worst-case drain", "reserve energy", "backing"});
  for (auto domain : {nvm::Domain::kAdr, nvm::Domain::kEadr, nvm::Domain::kPdram,
                      nvm::Domain::kPdramLite}) {
    nvm::SystemConfig cfg;
    cfg.domain = domain;
    cfg.l3_bytes = 32ull << 20;          // paper-scale, not the bench model
    cfg.dram_cache_bytes = 96ull << 30;  // 96 GB DRAM as persistent cache
    cfg.max_workers = 32;
    const double secs = em.drain_seconds(cfg);
    const double joules = em.reserve_energy_j(cfg);
    res.add_row({nvm::domain_name(domain),
                 secs < 1e-3 ? util::fmt(secs * 1e6, 1) + " us"
                             : util::fmt(secs, 2) + " s",
                 joules < 1.0 ? util::fmt(joules * 1e3, 2) + " mJ"
                              : util::fmt(joules, 1) + " J",
                 nvm::EnergyModel::reserve_technology(joules)});
  }
  bench::Output::instance().table(
      "Extension: reserve-power requirements (paper-scale geometry)", res);
  std::cout << "Expected: ADR microseconds/millijoules (PSU hold-up), eADR ~10ms/"
            << "joules (capacitors),\nPDRAM tens of seconds/kilojoules (battery) — "
            << "the paper's 'ADR exists, eADR needs caps,\nPDRAM needs lithium-ion' "
            << "ladder (SIV.B).\n";
  return 0;
}
