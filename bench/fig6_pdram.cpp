// Paper Figure 6: the proposed PDRAM / PDRAM-Lite durability domains vs
// DRAM and eADR, for the six non-TATP workloads.
//
// Expected shapes (paper §IV.D):
//  * PDRAM largely closes the gap to DRAM until Optane writeback
//    bandwidth saturates at high thread counts;
//  * PDRAM-Lite beats eADR everywhere, but only marginally for all but
//    TATP/TPCC — the redo log's regular access pattern is already cheap
//    on Optane.
#include "bench_common.h"
#include "workloads/btree_micro.h"
#include "workloads/tpcc.h"
#include "workloads/vacation.h"

int main(int argc, char** argv) {
  const std::string only = argc > 1 ? argv[1] : "";
  const auto curves = bench::fig6_curves();
  auto want = [&](const char* name) { return only.empty() || only == name; };

  if (want("btree-insert")) {
    workloads::BTreeMicroParams bp;
    bp.insert_only = true;
    bench::run_panel("Fig 6(a) B+Tree insert-only", workloads::btree_micro_factory(bp),
                     curves, 400);
  }
  if (want("btree-mixed")) {
    workloads::BTreeMicroParams bp;
    bp.insert_only = false;
    bp.key_range = 1ull << 17;
    bp.preload = 1ull << 16;
    bench::run_panel("Fig 6(b) B+Tree mixed", workloads::btree_micro_factory(bp), curves,
                     400);
  }
  if (want("tpcc-btree")) {
    workloads::TpccParams tp;
    tp.index = workloads::TpccIndex::kBPlusTree;
    bench::run_panel("Fig 6(c) TPCC (B+Tree)", workloads::tpcc_factory(tp), curves, 120);
  }
  if (want("tpcc-hash")) {
    workloads::TpccParams tp;
    tp.index = workloads::TpccIndex::kHashTable;
    bench::run_panel("Fig 6(d) TPCC (Hash Table)", workloads::tpcc_factory(tp), curves, 120);
  }
  if (want("vacation-low")) {
    bench::run_panel("Fig 6(e) Vacation (low contention)",
                     workloads::vacation_factory(workloads::vacation_low()), curves, 200);
  }
  if (want("vacation-high")) {
    bench::run_panel("Fig 6(f) Vacation (high contention)",
                     workloads::vacation_factory(workloads::vacation_high()), curves, 200);
  }
  return 0;
}
