// Paper Figure 8: memcached throughput (requests/s) vs working-set size,
// one worker thread, 50/50 get/set, 128-byte keys, 1-KB values, uniform
// random keys.
//
// The paper sweeps 32MB (L3-resident) then 32GB..320GB on a machine with
// ~32MB L3 and 96GB of DRAM per socket. This host models the hierarchy at
// **1/256 scale** (DESIGN.md): L3 160KB, Memory-Mode DRAM cache 384MB, so
// the paper's points map to {128KB, 128MB, 384MB, 640MB, 896MB, 1.125GB,
// 1.25GB} of (virtual-payload) working set. Expected shapes:
//  * a cliff from the L3-resident point to the first DRAM-scale point;
//  * DRAM curves cannot operate beyond the DRAM boundary (n/a cells);
//  * PDRAM tracks DRAM until the working set exceeds the DRAM cache;
//  * PDRAM-Lite only marginally above eADR+redo (§IV.E);
//  * ADR lowest throughout (16 clwb + fences per 1-KB set).
#include "bench_common.h"
#include "workloads/kv.h"

int main() {
  // Paper working sets, divided by 256.
  struct WsPoint {
    const char* paper_label;
    uint64_t scaled_bytes;
  };
  const std::vector<WsPoint> points = {
      {"32MB", 128ull << 10},   {"32GB", 128ull << 20},  {"96GB", 384ull << 20},
      {"160GB", 640ull << 20},  {"224GB", 896ull << 20}, {"288GB", 1152ull << 20},
      {"320GB", 1280ull << 20},
  };
  const uint64_t dram_boundary = 384ull << 20;  // 96GB / 256

  std::vector<bench::Curve> curves;
  for (auto a : {ptm::Algo::kOrecEager, ptm::Algo::kOrecLazy}) {
    curves.push_back(bench::curve(nvm::Media::kDram, nvm::Domain::kEadr, a));
  }
  for (auto d : {nvm::Domain::kAdr, nvm::Domain::kEadr}) {
    for (auto a : {ptm::Algo::kOrecEager, ptm::Algo::kOrecLazy}) {
      curves.push_back(bench::curve(nvm::Media::kOptane, d, a));
    }
  }
  for (auto a : {ptm::Algo::kOrecEager, ptm::Algo::kOrecLazy}) {
    curves.push_back(bench::curve(nvm::Media::kOptane, nvm::Domain::kPdram, a));
  }
  curves.push_back(
      bench::curve(nvm::Media::kOptane, nvm::Domain::kPdramLite, ptm::Algo::kOrecLazy));

  std::vector<std::string> header{"working-set(paper)"};
  for (const auto& c : curves) header.push_back(c.label);
  util::TextTable table(std::move(header));

  for (const auto& ws : points) {
    std::vector<std::string> row{ws.paper_label};
    for (const auto& c : curves) {
      if (c.media == nvm::Media::kDram && ws.scaled_bytes >= dram_boundary) {
        row.emplace_back("n/a");  // paper: DRAM cannot hold this working set
        continue;
      }
      workloads::KvParams kp;
      kp.items = ws.scaled_bytes / kp.value_bytes;
      workloads::RunPoint p;
      p.sys.media = c.media;
      p.sys.domain = c.domain;
      p.algo = c.algo;
      p.threads = 1;  // paper: single worker isolates latency
      p.sys.l3_bytes = 160ull << 10;          // 32-40MB / 256
      p.sys.dram_cache_bytes = dram_boundary;  // 96GB / 256
      p.ops_per_thread = bench::scaled_ops(8000);
      const auto r = workloads::run_point(workloads::kv_factory(kp), p);
      // Requests per simulated second (throughput in Kreq/s for legibility).
      row.push_back(util::fmt(r.throughput_tx_per_sec() / 1e3, 1));
      // All points run at threads=1, so the working set joins the label to
      // keep the (bench, label, threads) JSON key unique.
      bench::Output::instance().add_result("Fig 8", c.label + "@" + ws.paper_label, r);
      std::cout << "." << std::flush;
    }
    table.add_row(std::move(row));
  }
  bench::Output::instance().table(
      "Fig 8: memcached requests/s vs working set "
      "(Kreq/s, simulated; hierarchy scaled 1/256)",
      table);
  return 0;
}
