// Epoch/group-commit sweep: the commit-latency vs throughput trade-off of
// fence coalescing (ptm::EpochManager), per-transaction commit vs epoch
// commit across thread counts and all four durability domains.
//
// For each domain, one table with a per-tx and an epoch column group:
// throughput (simulated Mtx/s), commit-call p50/p99 (microseconds, from
// the kCommit phase histogram — in epoch mode a commit call includes the
// publish + epoch-close wait), fences per committed transaction, and the
// mean drained epoch size. Expected shape: at high thread counts epoch
// commit trades longer individual commit calls (members wait for the
// group fence) for fewer fences per transaction and higher throughput on
// fence-dominated domains (ADR); on eADR/PDRAM, where fences are cheap,
// the two modes converge.
//
// Phase histograms require telemetry; this binary force-enables it, so
// its REPRO_JSON artifact always carries the phase percentiles plus the
// "epoch" section for the epoch-mode points.
#include "bench_common.h"
#include "workloads/btree_micro.h"

namespace {

double us(uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

double per_commit(uint64_t events, uint64_t commits) {
  return commits == 0 ? 0.0 : static_cast<double>(events) / static_cast<double>(commits);
}

}  // namespace

int main() {
  stats::set_telemetry_enabled(true);

  workloads::BTreeMicroParams bp;
  bp.insert_only = true;
  const auto factory = workloads::btree_micro_factory(bp);

  for (nvm::Domain domain : {nvm::Domain::kAdr, nvm::Domain::kEadr,
                             nvm::Domain::kPdram, nvm::Domain::kPdramLite}) {
    util::TextTable table({"threads", "pertx_mtx", "pertx_p50_us", "pertx_p99_us",
                           "pertx_fence", "epoch_mtx", "epoch_p50_us", "epoch_p99_us",
                           "epoch_fence", "epoch_size"});
    const std::string title =
        std::string("Epoch commit sweep (") + nvm::domain_name(domain) + ")";

    for (int threads : bench::thread_sweep()) {
      std::vector<std::string> row{std::to_string(threads)};
      double epoch_size = 0.0;
      for (bool epoch : {false, true}) {
        workloads::RunPoint p;
        bench::apply_model_scale(p.sys);
        p.sys.media = nvm::Media::kOptane;
        p.sys.domain = domain;
        p.sys.epoch_commit = epoch;
        // One full concurrent round per epoch: every worker contributes a
        // member, the last one to publish drains by size. The age bound
        // (SystemConfig default) closes tail epochs and lone workers.
        p.sys.epoch_max_txs = static_cast<size_t>(threads);
        p.algo = ptm::Algo::kOrecLazy;
        p.threads = threads;
        p.ops_per_thread = bench::scaled_ops(300);
        const auto r = workloads::run_point(factory, p);

        const stats::Histogram& commit =
            r.totals.phases[stats::Phase::kCommit];
        row.push_back(util::fmt(r.throughput_mtx_per_sec(), 3));
        row.push_back(util::fmt(us(commit.p50()), 1));
        row.push_back(util::fmt(us(commit.p99()), 1));
        row.push_back(util::fmt(per_commit(r.totals.sfences, r.totals.commits), 2));
        if (epoch) epoch_size = r.epoch.mean_size();
        bench::Output::instance().add_result(
            title, r.config + (epoch ? "_epoch" : "_pertx"), r);
      }
      row.push_back(util::fmt(epoch_size, 2));
      table.add_row(std::move(row));
      std::cout << "." << std::flush;
    }
    bench::Output::instance().table(
        title + " (per-tx vs epoch: Mtx/s, commit p50/p99, fences/commit)", table);
  }
  return 0;
}
