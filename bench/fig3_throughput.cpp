// Paper Figure 3: DRAM vs Optane under ADR/eADR with undo/redo logging,
// for the six non-TATP workloads — B+Tree insert-only, B+Tree mixed,
// TPCC (B+Tree index), TPCC (Hash index), Vacation low, Vacation high.
// Throughput vs thread count {1,2,4,8,16,32}.
//
// Expected shapes (paper §III.B/§III.C):
//  * redo ("_R") above undo ("_U") nearly everywhere;
//  * eADR above ADR for every workload, least pronounced for Vacation;
//  * Optane curves below DRAM, with the gap widening at high thread
//    counts (WPQ saturation → worse Optane scalability).
#include "bench_common.h"
#include "workloads/btree_micro.h"
#include "workloads/tpcc.h"
#include "workloads/vacation.h"

int main(int argc, char** argv) {
  const std::string only = argc > 1 ? argv[1] : "";
  const auto curves = bench::fig3_curves();
  auto want = [&](const char* name) { return only.empty() || only == name; };

  if (want("btree-insert")) {
    workloads::BTreeMicroParams bp;
    bp.insert_only = true;
    bench::run_panel("Fig 3(a) B+Tree insert-only", workloads::btree_micro_factory(bp),
                     curves, 400);
  }
  if (want("btree-mixed")) {
    workloads::BTreeMicroParams bp;
    bp.insert_only = false;
    bp.key_range = 1ull << 17;  // paper: 2^21, scaled 1/16
    bp.preload = 1ull << 16;
    bench::run_panel("Fig 3(b) B+Tree mixed (ins/lookup/rm, keys 2^17 scaled)",
                     workloads::btree_micro_factory(bp), curves, 400);
  }
  if (want("tpcc-btree")) {
    workloads::TpccParams tp;
    tp.index = workloads::TpccIndex::kBPlusTree;
    bench::run_panel("Fig 3(c) TPCC (B+Tree)", workloads::tpcc_factory(tp), curves, 120);
  }
  if (want("tpcc-hash")) {
    workloads::TpccParams tp;
    tp.index = workloads::TpccIndex::kHashTable;
    bench::run_panel("Fig 3(d) TPCC (Hash Table)", workloads::tpcc_factory(tp), curves, 120);
  }
  if (want("vacation-low")) {
    bench::run_panel("Fig 3(e) Vacation (low contention)",
                     workloads::vacation_factory(workloads::vacation_low()), curves, 200);
  }
  if (want("vacation-high")) {
    bench::run_panel("Fig 3(f) Vacation (high contention)",
                     workloads::vacation_factory(workloads::vacation_high()), curves, 200);
  }
  return 0;
}
