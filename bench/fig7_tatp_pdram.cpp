// Paper Figure 7: TATP under the durability-domain comparison (Fig 6
// curve set). PDRAM should track DRAM closely; PDRAM-Lite should show one
// of its largest wins here (TATP's tiny transactions are dominated by log
// persistence cost).
#include "bench_common.h"
#include "workloads/tatp.h"

int main() {
  workloads::TatpParams tp;
  bench::run_panel("Fig 7 TATP (durability domains)", workloads::tatp_factory(tp),
                   bench::fig6_curves(), 600);
  return 0;
}
