// Paper §IV.B (in-text finding): PDRAM-Lite is viable because redo logs
// are tiny — "Vacation never requires more than 37 contiguous cache lines
// (roughly half a page) for its redo log. TPCC (Hash Table) requires at
// most 36 cache lines."
//
// This ablation measures the per-transaction redo-log high-watermark (in
// cache lines) for every workload, which is exactly the amount of
// persistent DRAM PDRAM-Lite must reserve per thread.
#include "bench_common.h"
#include "workloads/btree_micro.h"
#include "workloads/kv.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"
#include "workloads/vacation.h"

namespace {

uint64_t log_hwm_lines(const workloads::WorkloadFactory& factory, uint64_t ops,
                       const char* label) {
  workloads::RunPoint p;
  bench::apply_model_scale(p.sys);
  p.sys.media = nvm::Media::kOptane;
  p.sys.domain = nvm::Domain::kAdr;
  p.algo = ptm::Algo::kOrecLazy;
  p.threads = 4;
  p.ops_per_thread = bench::scaled_ops(ops);
  const auto r = workloads::run_point(factory, p);
  bench::Output::instance().add_result("Log footprint", label, r);
  std::cout << "." << std::flush;
  return r.totals.log_lines_hwm;
}

}  // namespace

int main() {
  workloads::BTreeMicroParams bi;
  bi.insert_only = true;
  workloads::BTreeMicroParams bm;
  bm.insert_only = false;
  bm.key_range = 1ull << 17;
  bm.preload = 1ull << 16;
  workloads::TpccParams th;
  th.index = workloads::TpccIndex::kHashTable;
  workloads::TpccParams tb;
  tb.index = workloads::TpccIndex::kBPlusTree;
  workloads::TatpParams ta;
  workloads::KvParams kv;
  kv.items = 1 << 14;

  util::TextTable table({"workload", "redo-log high-watermark (cache lines)"});
  table.add_row({"B+Tree insert",
                 std::to_string(log_hwm_lines(workloads::btree_micro_factory(bi), 300,
                                              "B+Tree insert"))});
  table.add_row({"B+Tree mixed",
                 std::to_string(log_hwm_lines(workloads::btree_micro_factory(bm), 300,
                                              "B+Tree mixed"))});
  table.add_row({"TPCC (Hash)",
                 std::to_string(log_hwm_lines(workloads::tpcc_factory(th), 150, "TPCC (Hash)"))});
  table.add_row({"TPCC (B+Tree)", std::to_string(log_hwm_lines(workloads::tpcc_factory(tb), 150,
                                                               "TPCC (B+Tree)"))});
  table.add_row({"TATP", std::to_string(log_hwm_lines(workloads::tatp_factory(ta), 500, "TATP"))});
  table.add_row({"Vacation (low)",
                 std::to_string(log_hwm_lines(
                     workloads::vacation_factory(workloads::vacation_low()), 200,
                     "Vacation (low)"))});
  table.add_row({"Vacation (high)",
                 std::to_string(log_hwm_lines(
                     workloads::vacation_factory(workloads::vacation_high()), 200,
                     "Vacation (high)"))});
  table.add_row({"memcached-kv",
                 std::to_string(log_hwm_lines(workloads::kv_factory(kv), 300, "memcached-kv"))});

  bench::Output::instance().table(
      "Ablation (paper §IV.B): redo-log footprint per transaction", table);
  std::cout << "Paper reference points: Vacation <= 37 lines, TPCC(Hash) <= 36 lines.\n"
            << "A handful of pages per thread suffices for PDRAM-Lite.\n";
  return 0;
}
