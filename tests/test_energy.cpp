#include <gtest/gtest.h>

#include "nvm/energy.h"
#include "nvm/pool.h"
#include "sim/engine.h"
#include "test_common.h"

namespace {

TEST(EnergyModel, ReserveLadderMatchesPaperArgument) {
  // Paper §IV.B: ADR exists today (PSU hold-up), eADR needs ~1s of
  // capacitors, PDRAM needs >10s (lithium-ion battery).
  nvm::EnergyModel em;
  nvm::SystemConfig cfg;
  cfg.l3_bytes = 32ull << 20;
  cfg.dram_cache_bytes = 96ull << 30;
  cfg.max_workers = 32;

  cfg.domain = nvm::Domain::kAdr;
  const double adr = em.reserve_energy_j(cfg);
  cfg.domain = nvm::Domain::kEadr;
  const double eadr = em.reserve_energy_j(cfg);
  cfg.domain = nvm::Domain::kPdramLite;
  const double lite = em.reserve_energy_j(cfg);
  cfg.domain = nvm::Domain::kPdram;
  const double pdram = em.reserve_energy_j(cfg);

  EXPECT_LT(adr, eadr);
  EXPECT_LE(eadr, lite);
  EXPECT_LT(lite, pdram);
  // Orders of magnitude: PDRAM needs a battery, ADR does not.
  EXPECT_GT(pdram / adr, 1000.0);
  EXPECT_STREQ(nvm::EnergyModel::reserve_technology(adr), "PSU hold-up (stock ADR)");
  EXPECT_STREQ(nvm::EnergyModel::reserve_technology(pdram), "lithium-ion battery");
}

TEST(EnergyModel, DrainTimeScalesWithDomainFootprint) {
  nvm::EnergyModel em;
  nvm::SystemConfig cfg;
  cfg.l3_bytes = 32ull << 20;
  cfg.dram_cache_bytes = 96ull << 30;

  cfg.domain = nvm::Domain::kAdr;
  EXPECT_LT(em.drain_seconds(cfg), 1e-4);  // WPQ: microseconds
  cfg.domain = nvm::Domain::kEadr;
  const double eadr = em.drain_seconds(cfg);
  EXPECT_GT(eadr, 1e-3);
  EXPECT_LT(eadr, 1.0);
  cfg.domain = nvm::Domain::kPdram;
  EXPECT_GT(em.drain_seconds(cfg), 10.0);  // paper: ">10s of reserve"
}

TEST(EnergyAccounting, AdrCostsMoreDynamicEnergyThanEadr) {
  // ADR's per-clwb write-through vs eADR's coalesced evictions: run the
  // same transactional work and compare accumulated energy.
  auto run = [](nvm::Domain domain) {
    auto cfg = test::small_cfg(domain, nvm::Media::kOptane);
    nvm::Pool pool(cfg);
    ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
    struct R {
      uint64_t cells[64];
    };
    auto* root = pool.root<R>();
    sim::Engine engine(1);
    engine.run([&](sim::ExecContext& ctx) {
      for (int i = 0; i < 500; i++) {
        rt.run(ctx, [&](ptm::Tx& tx) {
          for (int w = 0; w < 4; w++) {
            tx.write(&root->cells[(i + w * 16) % 64], static_cast<uint64_t>(i));
          }
        });
      }
    });
    return stats::aggregate(rt.snapshot_counters()).energy_pj;
  };
  const double adr = run(nvm::Domain::kAdr);
  const double eadr = run(nvm::Domain::kEadr);
  EXPECT_GT(adr, eadr * 1.5);
}

TEST(EnergyAccounting, OptaneTrafficCostsMoreThanDram) {
  auto run = [](nvm::Media media) {
    auto cfg = test::small_cfg(nvm::Domain::kEadr, media);
    cfg.l3_bytes = 16 << 10;  // force misses
    nvm::Pool pool(cfg);
    stats::TxCounters c;
    sim::Engine engine(1);
    engine.run([&](sim::ExecContext& ctx) {
      for (int i = 0; i < 2000; i++) {
        auto* w = reinterpret_cast<uint64_t*>(pool.heap_base() + (i * 64) % (8 << 20));
        pool.mem().load_word(ctx, &c, w, nvm::Space::kData);
      }
    });
    return c.energy_pj;
  };
  EXPECT_GT(run(nvm::Media::kOptane), 3.0 * run(nvm::Media::kDram));
}

TEST(BandwidthSaturation, MoreWritersRaiseFenceLatency) {
  // The WPQ/bandwidth property behind the paper's scalability findings:
  // per-transaction fence-drain time grows once concurrent writers exceed
  // the Optane write channel's capacity.
  auto fence_wait_per_commit = [](int workers) {
    auto cfg = test::small_cfg(nvm::Domain::kAdr, nvm::Media::kOptane);
    cfg.max_workers = 33;
    nvm::Pool pool(cfg);
    ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
    struct R {
      uint64_t cells[512];
    };
    static_assert(sizeof(R) <= nvm::Pool::kRootBytes);
    auto* root = pool.root<R>();
    sim::Engine engine(workers);
    engine.run([&](sim::ExecContext& ctx) {
      util::Rng rng(static_cast<uint64_t>(ctx.worker_id()) + 5);
      for (int i = 0; i < 150; i++) {
        rt.run(ctx, [&](ptm::Tx& tx) {
          for (int w = 0; w < 8; w++) {
            const uint64_t idx =
                (static_cast<uint64_t>(ctx.worker_id()) * 16 + rng.next_bounded(16));
            tx.write(&root->cells[idx], rng.next());
          }
        });
      }
    });
    const auto t = stats::aggregate(rt.snapshot_counters());
    return static_cast<double>(t.fence_wait_ns) / static_cast<double>(t.commits);
  };
  const double w2 = fence_wait_per_commit(2);
  const double w16 = fence_wait_per_commit(16);
  EXPECT_GT(w16, 2.0 * w2);
}

}  // namespace
