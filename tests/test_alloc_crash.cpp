// Allocator crash-consistency property tests: after a power failure at an
// arbitrary persistence event, recovery must leave the heap free of
// *double allocations* (a block reachable both from committed data and
// from a free list, or handed out twice). Leaks are permitted (documented
// Makalu-style trade-off); corruption is not.
#include <gtest/gtest.h>

#include <set>

#include "ptm/runtime.h"
#include "test_common.h"

namespace {

struct Root {
  uint64_t slots[64];  // pointers to live blocks
};

class AllocCrashTest : public ::testing::TestWithParam<ptm::Algo> {};

TEST_P(AllocCrashTest, NoDoubleAllocationAfterRecovery) {
  for (uint64_t trial = 0; trial < 15; trial++) {
    fault::CrashHarness h(test::crash_cfg(), GetParam());
    sim::RealContext ctx(0, 4);
    auto* root = h.pool.root<Root>();

    util::Rng rng(9100 + trial);
    // Churn: allocate into random slots, freeing whatever was there. The
    // oracle check is off — freed blocks get free-list links threaded
    // through them outside the Tx write path — but the recovery report is
    // still screened.
    test::run_crash_trial(
        h, ctx, 30 + rng.next_bounded(1500), trial * 13 + 1,
        [&] {
          for (int t = 0; t < 300; t++) {
            const uint64_t s = rng.next_bounded(64);
            const uint64_t sz = 16 + rng.next_bounded(100);
            h.rt.run(ctx, [&](ptm::Tx& tx) {
              const uint64_t old = tx.read(&root->slots[s]);
              if (old != 0) tx.dealloc(reinterpret_cast<void*>(old));
              auto* blk = static_cast<uint64_t*>(tx.alloc(sz));
              tx.write(blk, s);  // stamp ownership
              tx.write(&root->slots[s], reinterpret_cast<uint64_t>(blk));
            });
          }
        },
        /*check_oracle=*/false);
    ptm::Runtime& rt = h.rt;

    // 1. No live slot may point at a block that sits on a free list.
    auto& allocator = rt.allocator();
    std::set<uint64_t> live;
    for (int s = 0; s < 64; s++) {
      const uint64_t p = root->slots[s];
      if (p == 0) continue;
      EXPECT_TRUE(live.insert(p).second) << "two slots share a block";
      EXPECT_FALSE(allocator.in_free_list(reinterpret_cast<void*>(p)))
          << "live block is simultaneously free (trial " << trial << ")";
    }

    // 2. Fresh allocations must never alias a live block.
    std::set<void*> fresh;
    rt.run(ctx, [&](ptm::Tx& tx) {
      for (int i = 0; i < 128; i++) {
        void* p = tx.alloc(64);
        EXPECT_TRUE(fresh.insert(p).second) << "allocator returned a block twice";
        EXPECT_EQ(live.count(reinterpret_cast<uint64_t>(p)), 0u)
            << "fresh allocation aliases committed data (trial " << trial << ")";
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Algos, AllocCrashTest,
                         ::testing::Values(ptm::Algo::kOrecLazy, ptm::Algo::kOrecEager),
                         [](const ::testing::TestParamInfo<ptm::Algo>& i) {
                           return std::string(ptm::algo_suffix(i.param));
                         });

}  // namespace
