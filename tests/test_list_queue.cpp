#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "containers/list.h"
#include "containers/queue.h"
#include "ptm/runtime.h"
#include "sim/engine.h"
#include "test_common.h"

namespace {

struct Root {
  uint64_t list_head;
  cont::Queue::Handle queue;
};

class ListTest : public ::testing::TestWithParam<ptm::Algo> {
 protected:
  ListTest() : fx_(test::small_cfg(nvm::Domain::kEadr), GetParam()) {
    head_ = &fx_.pool.root<Root>()->list_head;
    fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { cont::SortedList::create(tx, head_); });
  }
  test::Fixture fx_;
  uint64_t* head_;
};

TEST_P(ListTest, InsertKeepsSortedOrder) {
  for (uint64_t k : {5ull, 1ull, 9ull, 3ull, 7ull}) {
    fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { cont::SortedList::insert(tx, head_, k, k); });
  }
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
    EXPECT_TRUE(cont::SortedList::is_sorted(tx, head_));
    EXPECT_EQ(cont::SortedList::size(tx, head_), 5u);
  });
}

TEST_P(ListTest, LookupAndRemoveEdges) {
  for (uint64_t k : {10ull, 20ull, 30ull}) {
    fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { cont::SortedList::insert(tx, head_, k, k * 2); });
  }
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
    uint64_t v = 0;
    EXPECT_TRUE(cont::SortedList::lookup(tx, head_, 20, &v));
    EXPECT_EQ(v, 40u);
    EXPECT_FALSE(cont::SortedList::lookup(tx, head_, 15, &v));
    EXPECT_TRUE(cont::SortedList::remove(tx, head_, 10));  // head removal
    EXPECT_TRUE(cont::SortedList::remove(tx, head_, 30));  // tail removal
    EXPECT_FALSE(cont::SortedList::remove(tx, head_, 99));
    EXPECT_EQ(cont::SortedList::size(tx, head_), 1u);
    EXPECT_TRUE(cont::SortedList::is_sorted(tx, head_));
  });
}

TEST_P(ListTest, RandomizedAgainstStdMap) {
  std::map<uint64_t, uint64_t> model;
  util::Rng rng(31337);
  for (int i = 0; i < 2000; i++) {
    const uint64_t k = rng.next_bounded(100);
    switch (rng.next_bounded(3)) {
      case 0: {
        const uint64_t v = rng.next();
        bool fresh = false;
        fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
          fresh = cont::SortedList::insert(tx, head_, k, v);
        });
        EXPECT_EQ(fresh, model.find(k) == model.end());
        model[k] = v;
        break;
      }
      case 1: {
        uint64_t v = 0;
        bool found = false;
        fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
          found = cont::SortedList::lookup(tx, head_, k, &v);
        });
        ASSERT_EQ(found, model.count(k) > 0);
        if (found) {
          ASSERT_EQ(v, model[k]);
        }
        break;
      }
      default: {
        bool removed = false;
        fx_.rt.run(fx_.ctx,
                   [&](ptm::Tx& tx) { removed = cont::SortedList::remove(tx, head_, k); });
        EXPECT_EQ(removed, model.erase(k) > 0);
        break;
      }
    }
  }
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
    EXPECT_EQ(cont::SortedList::size(tx, head_), model.size());
    EXPECT_TRUE(cont::SortedList::is_sorted(tx, head_));
  });
}

TEST_P(ListTest, ConcurrentInsertsUnderDes) {
  auto cfg = test::small_cfg(nvm::Domain::kAdr);
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, GetParam());
  auto* head = &pool.root<Root>()->list_head;
  sim::RealContext setup(7, 8);
  rt.run(setup, [&](ptm::Tx& tx) { cont::SortedList::create(tx, head); });

  sim::Engine engine(4);
  engine.run([&](sim::ExecContext& ctx) {
    for (uint64_t i = 0; i < 50; i++) {
      const uint64_t k = i * 4 + static_cast<uint64_t>(ctx.worker_id());
      rt.run(ctx, [&](ptm::Tx& tx) { cont::SortedList::insert(tx, head, k, k); });
    }
  });
  rt.run(setup, [&](ptm::Tx& tx) {
    EXPECT_EQ(cont::SortedList::size(tx, head), 200u);
    EXPECT_TRUE(cont::SortedList::is_sorted(tx, head));
  });
}

class QueueTest : public ::testing::TestWithParam<ptm::Algo> {
 protected:
  QueueTest() : fx_(test::small_cfg(nvm::Domain::kEadr), GetParam()) {
    q_ = &fx_.pool.root<Root>()->queue;
    fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { cont::Queue::create(tx, q_); });
  }
  test::Fixture fx_;
  cont::Queue::Handle* q_;
};

TEST_P(QueueTest, FifoOrder) {
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
    for (uint64_t i = 1; i <= 5; i++) cont::Queue::enqueue(tx, q_, i * 11);
  });
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
    for (uint64_t i = 1; i <= 5; i++) {
      uint64_t v = 0;
      ASSERT_TRUE(cont::Queue::dequeue(tx, q_, &v));
      ASSERT_EQ(v, i * 11);
    }
    uint64_t v;
    EXPECT_FALSE(cont::Queue::dequeue(tx, q_, &v));
  });
}

TEST_P(QueueTest, EmptyToNonEmptyTransitions) {
  for (int round = 0; round < 20; round++) {
    fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
      cont::Queue::enqueue(tx, q_, static_cast<uint64_t>(round));
    });
    uint64_t v = 0;
    fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { ASSERT_TRUE(cont::Queue::dequeue(tx, q_, &v)); });
    EXPECT_EQ(v, static_cast<uint64_t>(round));
    fx_.rt.run(fx_.ctx,
               [&](ptm::Tx& tx) { EXPECT_EQ(cont::Queue::size(tx, q_), 0u); });
  }
}

TEST_P(QueueTest, RandomizedAgainstStdDeque) {
  std::deque<uint64_t> model;
  util::Rng rng(55);
  for (int i = 0; i < 3000; i++) {
    if (rng.chance_pct(55)) {
      const uint64_t v = rng.next();
      fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { cont::Queue::enqueue(tx, q_, v); });
      model.push_back(v);
    } else {
      uint64_t v = 0;
      bool got = false;
      fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { got = cont::Queue::dequeue(tx, q_, &v); });
      ASSERT_EQ(got, !model.empty());
      if (got) {
        ASSERT_EQ(v, model.front());
        model.pop_front();
      }
    }
  }
  fx_.rt.run(fx_.ctx,
             [&](ptm::Tx& tx) { EXPECT_EQ(cont::Queue::size(tx, q_), model.size()); });
}

TEST_P(QueueTest, ProducersAndConsumersUnderDes) {
  auto cfg = test::small_cfg(nvm::Domain::kAdr);
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, GetParam());
  auto* q = &pool.root<Root>()->queue;
  sim::RealContext setup(7, 8);
  rt.run(setup, [&](ptm::Tx& tx) { cont::Queue::create(tx, q); });

  constexpr uint64_t kPerWorker = 100;
  std::atomic<uint64_t> consumed{0};
  sim::Engine engine(4);
  engine.run([&](sim::ExecContext& ctx) {
    if (ctx.worker_id() % 2 == 0) {
      for (uint64_t i = 0; i < kPerWorker; i++) {
        rt.run(ctx, [&](ptm::Tx& tx) { cont::Queue::enqueue(tx, q, i); });
      }
    } else {
      // Consumers share a target so neither can starve if the other drains
      // more than its share.
      while (consumed.load() < 2 * kPerWorker) {
        uint64_t v;
        bool ok = false;
        rt.run(ctx, [&](ptm::Tx& tx) { ok = cont::Queue::dequeue(tx, q, &v); });
        if (ok) {
          consumed.fetch_add(1);
        } else {
          ctx.advance(500);  // empty: poll later in simulated time
        }
      }
    }
  });
  EXPECT_EQ(consumed.load(), 2 * kPerWorker);
  rt.run(setup, [&](ptm::Tx& tx) { EXPECT_EQ(cont::Queue::size(tx, q), 0u); });
}

INSTANTIATE_TEST_SUITE_P(Algos, ListTest,
                         ::testing::Values(ptm::Algo::kOrecLazy, ptm::Algo::kOrecEager),
                         [](const ::testing::TestParamInfo<ptm::Algo>& i) {
                           return std::string(ptm::algo_suffix(i.param));
                         });
INSTANTIATE_TEST_SUITE_P(Algos, QueueTest,
                         ::testing::Values(ptm::Algo::kOrecLazy, ptm::Algo::kOrecEager),
                         [](const ::testing::TestParamInfo<ptm::Algo>& i) {
                           return std::string(ptm::algo_suffix(i.param));
                         });

}  // namespace
