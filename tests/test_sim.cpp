#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"

TEST(RealContext, AccumulatesCost) {
  sim::RealContext ctx(3, 8);
  EXPECT_EQ(ctx.worker_id(), 3);
  EXPECT_EQ(ctx.num_workers(), 8);
  EXPECT_FALSE(ctx.is_simulated());
  ctx.advance(100);
  ctx.advance(50);
  EXPECT_EQ(ctx.now_ns(), 150u);
  ctx.advance_to(200);
  EXPECT_EQ(ctx.now_ns(), 200u);
  ctx.advance_to(10);  // already past: no-op
  EXPECT_EQ(ctx.now_ns(), 200u);
}

TEST(Engine, SingleWorkerRunsToCompletion) {
  sim::Engine e(1);
  uint64_t end = 0;
  e.run([&](sim::ExecContext& ctx) {
    for (int i = 0; i < 10; i++) ctx.advance(7);
    end = ctx.now_ns();
  });
  EXPECT_EQ(end, 70u);
  EXPECT_EQ(e.elapsed_ns(), 70u);
}

TEST(Engine, ElapsedIsMaxWorkerTime) {
  sim::Engine e(4);
  e.run([&](sim::ExecContext& ctx) {
    ctx.advance(static_cast<uint64_t>(ctx.worker_id() + 1) * 100);
  });
  EXPECT_EQ(e.elapsed_ns(), 400u);
}

TEST(Engine, MinClockInterleavingIsGlobalOrder) {
  // Each worker stamps a shared log at every advance; the scheduler must
  // produce a globally non-decreasing sequence of *pre-advance* times.
  sim::Engine e(4);
  std::vector<uint64_t> stamps;
  e.run([&](sim::ExecContext& ctx) {
    for (int i = 0; i < 50; i++) {
      stamps.push_back(ctx.now_ns());  // only the running worker appends
      ctx.advance(1 + static_cast<uint64_t>(ctx.worker_id()));
    }
  });
  for (size_t i = 1; i < stamps.size(); i++) {
    EXPECT_LE(stamps[i - 1], stamps[i]) << "at " << i;
  }
  EXPECT_EQ(stamps.size(), 200u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto trace = [] {
    sim::Engine e(3);
    std::vector<int> order;
    e.run([&](sim::ExecContext& ctx) {
      for (int i = 0; i < 20; i++) {
        order.push_back(ctx.worker_id());
        ctx.advance((static_cast<uint64_t>(ctx.worker_id()) * 13 + 7) % 31 + 1);
      }
    });
    return order;
  };
  EXPECT_EQ(trace(), trace());
}

TEST(Engine, ZeroAdvanceKeepsRunning) {
  // A worker that advances by 0 stays the minimum (ties break to lowest
  // id); ensure this cannot wedge the engine.
  sim::Engine e(2);
  int zero_steps = 0;
  e.run([&](sim::ExecContext& ctx) {
    if (ctx.worker_id() == 0) {
      for (int i = 0; i < 100; i++) {
        ctx.advance(0);
        zero_steps++;
      }
      ctx.advance(5);
    } else {
      ctx.advance(3);
    }
  });
  EXPECT_EQ(zero_steps, 100);
  EXPECT_EQ(e.elapsed_ns(), 5u);
}

TEST(Engine, ReusableForMultipleRuns) {
  sim::Engine e(2);
  for (int round = 0; round < 3; round++) {
    e.run([&](sim::ExecContext& ctx) { ctx.advance(10 + static_cast<uint64_t>(round)); });
    EXPECT_EQ(e.elapsed_ns(), 10u + static_cast<uint64_t>(round));
  }
}

TEST(Engine, ManyWorkers) {
  sim::Engine e(32);
  std::atomic<int> count{0};
  e.run([&](sim::ExecContext& ctx) {
    for (int i = 0; i < 10; i++) ctx.advance(1 + static_cast<uint64_t>(ctx.worker_id() % 3));
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 32);
}
