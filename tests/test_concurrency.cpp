// Concurrency correctness: atomicity and isolation under both execution
// substrates — the discrete-event engine (deterministic interleavings in
// simulated time) and genuine OS threads (real races on the orec table).
#include <gtest/gtest.h>

#include <thread>

#include "ptm/runtime.h"
#include "sim/engine.h"
#include "test_common.h"

namespace {

struct Root {
  uint64_t counter;
  uint64_t a, b;
  uint64_t cells[64];
};

struct Param {
  ptm::Algo algo;
};

std::string pname(const ::testing::TestParamInfo<Param>& info) {
  return info.param.algo == ptm::Algo::kOrecLazy ? "redo" : "undo";
}

class ConcurrencyTest : public ::testing::TestWithParam<Param> {};

TEST_P(ConcurrencyTest, DesCounterIncrementsAreAtomic) {
  auto cfg = test::small_cfg(nvm::Domain::kAdr);
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, GetParam().algo);
  auto* root = pool.root<Root>();

  constexpr int kWorkers = 6;
  constexpr int kIncs = 300;
  sim::Engine engine(kWorkers);
  engine.run([&](sim::ExecContext& ctx) {
    for (int i = 0; i < kIncs; i++) {
      rt.run(ctx, [&](ptm::Tx& tx) {
        tx.write(&root->counter, tx.read(&root->counter) + 1);
      });
    }
  });
  EXPECT_EQ(root->counter, static_cast<uint64_t>(kWorkers) * kIncs);
  // Contention on one word must produce actual aborts (and they must not
  // break atomicity, checked above).
  const auto totals = stats::aggregate(rt.snapshot_counters());
  EXPECT_EQ(totals.commits, static_cast<uint64_t>(kWorkers) * kIncs);
  EXPECT_GT(totals.aborts, 0u);
}

TEST_P(ConcurrencyTest, DesRunsAreDeterministic) {
  auto run_once = [&] {
    auto cfg = test::small_cfg(nvm::Domain::kAdr);
    nvm::Pool pool(cfg);
    ptm::Runtime rt(pool, GetParam().algo);
    auto* root = pool.root<Root>();
    sim::Engine engine(4);
    engine.run([&](sim::ExecContext& ctx) {
      util::Rng rng(static_cast<uint64_t>(ctx.worker_id()) + 1);
      for (int i = 0; i < 100; i++) {
        const uint64_t cell = rng.next_bounded(64);
        rt.run(ctx, [&](ptm::Tx& tx) {
          tx.write(&root->cells[cell], tx.read(&root->cells[cell]) + 1);
        });
      }
    });
    const auto totals = stats::aggregate(rt.snapshot_counters());
    return std::tuple(engine.elapsed_ns(), totals.commits, totals.aborts);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_P(ConcurrencyTest, DesInvariantPairStaysConsistent) {
  // Writers keep a == b; readers must never observe a != b (isolation /
  // opacity): a torn read would fire the EXPECT inside the transaction.
  auto cfg = test::small_cfg(nvm::Domain::kEadr);
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, GetParam().algo);
  auto* root = pool.root<Root>();

  sim::Engine engine(4);
  engine.run([&](sim::ExecContext& ctx) {
    if (ctx.worker_id() % 2 == 0) {
      for (int i = 0; i < 200; i++) {
        rt.run(ctx, [&](ptm::Tx& tx) {
          const uint64_t v = tx.read(&root->a);
          tx.write(&root->a, v + 1);
          tx.write(&root->b, v + 1);
        });
      }
    } else {
      for (int i = 0; i < 200; i++) {
        uint64_t a = 0, b = 0;
        rt.run(ctx, [&](ptm::Tx& tx) {
          a = tx.read(&root->a);
          b = tx.read(&root->b);
        });
        ASSERT_EQ(a, b) << "snapshot isolation violated";
      }
    }
  });
  EXPECT_EQ(root->a, root->b);
}

TEST_P(ConcurrencyTest, RealThreadsCounter) {
  // Genuine parallelism (as genuine as a 1-core host allows): the STM's
  // atomics must provide the same guarantees without the DES scheduler.
  auto cfg = test::small_cfg(nvm::Domain::kEadr);
  cfg.model_timing = false;
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, GetParam().algo);
  auto* root = pool.root<Root>();

  constexpr int kThreads = 4;
  constexpr int kIncs = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      sim::RealContext ctx(t, kThreads);
      for (int i = 0; i < kIncs; i++) {
        rt.run(ctx, [&](ptm::Tx& tx) {
          tx.write(&root->counter, tx.read(&root->counter) + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(root->counter, static_cast<uint64_t>(kThreads) * kIncs);
}

TEST_P(ConcurrencyTest, RealThreadsDisjointCells) {
  auto cfg = test::small_cfg(nvm::Domain::kEadr);
  cfg.model_timing = false;
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, GetParam().algo);
  auto* root = pool.root<Root>();

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      sim::RealContext ctx(t, kThreads);
      for (int i = 0; i < 1000; i++) {
        rt.run(ctx, [&](ptm::Tx& tx) {
          const uint64_t idx = static_cast<uint64_t>(t) * 16 + (i % 16);
          tx.write(&root->cells[idx], tx.read(&root->cells[idx]) + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; t++) {
    for (int s = 0; s < 16; s++) {
      const uint64_t expect = 1000 / 16 + (s < 1000 % 16 ? 1 : 0);
      EXPECT_EQ(root->cells[t * 16 + s], expect) << t << "," << s;
    }
  }
}

TEST_P(ConcurrencyTest, MoreThreadsMoreAbortsUnderContention) {
  // The mechanism behind the paper's Tables I/II: contention (and thus the
  // commit/abort ratio) worsens with thread count.
  auto ratio_at = [&](int workers) {
    auto cfg = test::small_cfg(nvm::Domain::kAdr);
    nvm::Pool pool(cfg);
    ptm::Runtime rt(pool, GetParam().algo);
    auto* root = pool.root<Root>();
    sim::Engine engine(workers);
    engine.run([&](sim::ExecContext& ctx) {
      util::Rng rng(static_cast<uint64_t>(ctx.worker_id()) * 3 + 11);
      for (int i = 0; i < 200; i++) {
        rt.run(ctx, [&](ptm::Tx& tx) {
          // Small hot set: 4 cells.
          const uint64_t cell = rng.next_bounded(4);
          tx.write(&root->cells[cell], tx.read(&root->cells[cell]) + 1);
        });
      }
    });
    const auto t = stats::aggregate(rt.snapshot_counters());
    return static_cast<double>(t.aborts) / static_cast<double>(t.commits);
  };
  const double a2 = ratio_at(2);
  const double a8 = ratio_at(8);
  EXPECT_GT(a8, a2);
}

INSTANTIATE_TEST_SUITE_P(Algos, ConcurrencyTest,
                         ::testing::Values(Param{ptm::Algo::kOrecLazy},
                                           Param{ptm::Algo::kOrecEager}),
                         pname);

}  // namespace
