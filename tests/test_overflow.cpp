// Capacity-overflow behavior: log / write-set exhaustion must be a
// *recoverable* abort — the runtime grows the exhausted resource (overflow
// log segments, write-index doubling) and retries — never a terminal error
// that strands locked orecs or leaks allocations. Where growth is
// impossible (alloc log, chain ceiling), the failure must surface as a
// clean ptm::CapacityError after full rollback.
//
// Includes the deterministic crash sweep over a two-segment overflow
// commit: a crash injected at *every* persistence event of such a commit
// must recover to linearizable durability under all four domains.
#include <gtest/gtest.h>

#include <vector>

#include "ptm/runtime.h"
#include "sim/engine.h"
#include "test_common.h"

namespace {

// Base-log capacity per per_worker_meta_bytes M: (M - 64 - 2048) / 16.
constexpr size_t kTinyMeta = 1ull << 12;  // -> 124 base log entries
constexpr size_t kMicroMeta = 2560;       // -> 28 base log entries

nvm::SystemConfig tiny_cfg(nvm::Domain domain, bool crash_sim = false) {
  auto cfg = test::small_cfg(domain, nvm::Media::kOptane, crash_sim);
  cfg.pool_size = 8ull << 20;
  cfg.max_workers = 4;
  cfg.per_worker_meta_bytes = kTinyMeta;
  return cfg;
}

// Raw heap region for direct transactional writes, placed at mid-heap:
// overflow log segments bump-allocate from the heap *start*, so a test
// writing at heap_base() would scribble over its own grown log.
uint64_t* scratch_region(nvm::Pool& pool) {
  return reinterpret_cast<uint64_t*>(pool.heap_base() + pool.heap_bytes() / 2);
}

void expect_no_orec_locked(ptm::Runtime& rt) {
  for (size_t i = 0; i < ptm::OrecTable::kNumOrecs; i++) {
    ASSERT_FALSE(ptm::OrecTable::is_locked(rt.orecs().at(i).load(std::memory_order_relaxed)))
        << "orec " << i << " left locked after overflow handling";
  }
}

struct AlgoParam {
  ptm::Algo algo;
};

std::string algo_param_name(const ::testing::TestParamInfo<AlgoParam>& info) {
  return info.param.algo == ptm::Algo::kOrecLazy ? "redo" : "undo";
}

class OverflowTest : public ::testing::TestWithParam<AlgoParam> {};

TEST_P(OverflowTest, WriteLogOverflowGrowsAndCommits) {
  auto cfg = tiny_cfg(nvm::Domain::kEadr);
  nvm::Pool pool(cfg);
  sim::RealContext ctx(0, cfg.max_workers);
  constexpr uint64_t kWords = 300;  // 124 -> 248 -> 496: exactly two growths
  uint64_t* heap = scratch_region(pool);
  {
    ptm::Runtime rt(pool, GetParam().algo);
    rt.run(ctx, [&](ptm::Tx& tx) {
      for (uint64_t i = 0; i < kWords; i++) tx.write(&heap[i], i + 1);
    });
    for (uint64_t i = 0; i < kWords; i++) ASSERT_EQ(heap[i], i + 1);

    const auto totals = stats::aggregate(rt.snapshot_counters());
    EXPECT_EQ(totals.commits, 1u);
    EXPECT_EQ(totals.aborts_of(stats::AbortCause::kCapacity), 2u);
    EXPECT_EQ(totals.log_growths, 2u);
    expect_no_orec_locked(rt);

    // The grown capacity is retained: a second large transaction fits
    // without further growth.
    rt.reset_counters();
    rt.run(ctx, [&](ptm::Tx& tx) {
      for (uint64_t i = 0; i < 340; i++) tx.write(&heap[i], i + 2);
    });
    EXPECT_EQ(stats::aggregate(rt.snapshot_counters())
                  .aborts_of(stats::AbortCause::kCapacity),
              0u);
  }

  // The chain is durable slot state, not process state: a fresh runtime on
  // the same pool reattaches it and also fits the large write set directly.
  ptm::Runtime rt2(pool, GetParam().algo);
  rt2.recover(ctx);
  rt2.run(ctx, [&](ptm::Tx& tx) {
    for (uint64_t i = 0; i < 340; i++) tx.write(&heap[i], i + 3);
  });
  for (uint64_t i = 0; i < 340; i++) ASSERT_EQ(heap[i], i + 3);
  EXPECT_EQ(stats::aggregate(rt2.snapshot_counters())
                .aborts_of(stats::AbortCause::kCapacity),
            0u);
}

TEST_P(OverflowTest, ChainCeilingSurfacesCapacityError) {
  // 28-entry base log, doubling per growth, 8-segment ceiling: total
  // capacity tops out at 28 * 256 = 7168 records.
  auto cfg = tiny_cfg(nvm::Domain::kEadr);
  cfg.per_worker_meta_bytes = kMicroMeta;
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, GetParam().algo);
  sim::RealContext ctx(0, cfg.max_workers);
  uint64_t* heap = scratch_region(pool);

  EXPECT_THROW(rt.run(ctx,
                      [&](ptm::Tx& tx) {
                        for (uint64_t i = 0; i < 8000; i++) tx.write(&heap[i], i);
                      }),
               ptm::CapacityError);
  expect_no_orec_locked(rt);

  // The runtime stays usable; the maximal footprint still commits.
  rt.run(ctx, [&](ptm::Tx& tx) {
    for (uint64_t i = 0; i < 7000; i++) tx.write(&heap[i], i + 1);
  });
  for (uint64_t i = 0; i < 7000; i++) ASSERT_EQ(heap[i], i + 1);
}

TEST_P(OverflowTest, AllocLogOverflowIsCleanAndLeakFree) {
  auto cfg = test::small_cfg(nvm::Domain::kEadr);
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, cfg.max_workers);
  auto* root = pool.root<uint64_t>();
  constexpr size_t kCap = 256;  // the fixed alloc-log capacity

  // Warm the free list with kCap blocks so the overflow attempt below can
  // be served entirely from reuse.
  std::vector<void*> blocks(kCap);
  rt.run(ctx, [&](ptm::Tx& tx) {
    for (size_t i = 0; i < kCap; i++) blocks[i] = tx.alloc(64);
  });
  rt.run(ctx, [&](ptm::Tx& tx) {
    for (size_t i = 0; i < kCap; i++) tx.dealloc(blocks[i]);
  });

  const uint64_t hw_before = rt.allocator().high_water_bytes();
  EXPECT_THROW(rt.run(ctx,
                      [&](ptm::Tx& tx) {
                        for (size_t i = 0; i < kCap + 1; i++) (void)tx.alloc(64);
                      }),
               ptm::CapacityError);
  // Leak regression check: the capacity check must run *before* the
  // allocation, so the failing transaction touches exactly the kCap
  // free-list blocks (all returned by rollback) and never bumps the heap.
  EXPECT_EQ(rt.allocator().high_water_bytes(), hw_before);
  const auto totals = stats::aggregate(rt.snapshot_counters());
  EXPECT_EQ(totals.aborts_of(stats::AbortCause::kCapacity), 1u);
  expect_no_orec_locked(rt);

  // Runtime stays usable.
  rt.run(ctx, [&](ptm::Tx& tx) {
    auto* p = static_cast<uint64_t*>(tx.alloc(64));
    tx.write(p, uint64_t{41});
    tx.write(root, uint64_t{42});
  });
  EXPECT_EQ(*root, 42u);
}

TEST_P(OverflowTest, DeallocOverflowAborts) {
  auto cfg = test::small_cfg(nvm::Domain::kEadr);
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, GetParam().algo);
  sim::RealContext ctx(0, cfg.max_workers);

  uint64_t* survivor = nullptr;
  rt.run(ctx, [&](ptm::Tx& tx) {
    survivor = static_cast<uint64_t*>(tx.alloc(64));
    tx.write(survivor, uint64_t{7});
  });

  EXPECT_THROW(rt.run(ctx,
                      [&](ptm::Tx& tx) {
                        for (size_t i = 0; i < 256; i++) (void)tx.alloc(64);
                        tx.dealloc(survivor);  // 257th alloc-log record
                      }),
               ptm::CapacityError);
  expect_no_orec_locked(rt);
  // The deferred free never took effect: the block is intact and usable.
  uint64_t got = 0;
  rt.run(ctx, [&](ptm::Tx& tx) { got = tx.read(survivor); });
  EXPECT_EQ(got, 7u);
}

TEST_P(OverflowTest, ConcurrentWorkersOverflowIndependently) {
  // Each DES worker overflows its own slot (disjoint write regions): the
  // chains grow independently and every transaction commits.
  auto cfg = test::small_cfg(nvm::Domain::kAdr);
  cfg.per_worker_meta_bytes = kTinyMeta;
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, GetParam().algo);
  uint64_t* heap = scratch_region(pool);

  constexpr int kWorkers = 4;
  constexpr int kIters = 3;
  constexpr uint64_t kWords = 150;  // one growth per worker (124 -> 248)
  sim::Engine engine(kWorkers);
  engine.run([&](sim::ExecContext& ctx) {
    uint64_t* mine = heap + static_cast<uint64_t>(ctx.worker_id()) * 1024;
    for (int it = 0; it < kIters; it++) {
      rt.run(ctx, [&](ptm::Tx& tx) {
        for (uint64_t i = 0; i < kWords; i++) {
          tx.write(&mine[i], (static_cast<uint64_t>(it) << 32) | i);
        }
      });
    }
  });

  for (int w = 0; w < kWorkers; w++) {
    for (uint64_t i = 0; i < kWords; i++) {
      ASSERT_EQ(heap[static_cast<uint64_t>(w) * 1024 + i],
                (uint64_t{kIters - 1} << 32) | i);
    }
  }
  const auto totals = stats::aggregate(rt.snapshot_counters());
  EXPECT_EQ(totals.commits, static_cast<uint64_t>(kWorkers) * kIters);
  // Exactly one capacity abort per worker: the first transaction grows the
  // chain, later ones reuse it.
  EXPECT_EQ(totals.aborts_of(stats::AbortCause::kCapacity),
            static_cast<uint64_t>(kWorkers));
  EXPECT_EQ(totals.log_growths, static_cast<uint64_t>(kWorkers));
  expect_no_orec_locked(rt);
}

INSTANTIATE_TEST_SUITE_P(Algos, OverflowTest,
                         ::testing::Values(AlgoParam{ptm::Algo::kOrecLazy},
                                           AlgoParam{ptm::Algo::kOrecEager}),
                         algo_param_name);

TEST(WriteIndexOverflow, GrowsAndCommits) {
  // Redo-only path: the DRAM write index (initially 8192 writes) overflows
  // before the persistent log does (default meta: ~16k entries), doubles,
  // and the retry commits.
  auto cfg = test::small_cfg(nvm::Domain::kEadr);
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, cfg.max_workers);
  uint64_t* heap = scratch_region(pool);

  constexpr uint64_t kWords = 9000;
  rt.run(ctx, [&](ptm::Tx& tx) {
    for (uint64_t i = 0; i < kWords; i++) tx.write(&heap[i], i + 1);
  });
  for (uint64_t i = 0; i < kWords; i++) ASSERT_EQ(heap[i], i + 1);

  const auto totals = stats::aggregate(rt.snapshot_counters());
  EXPECT_EQ(totals.commits, 1u);
  EXPECT_EQ(totals.aborts_of(stats::AbortCause::kCapacity), 1u);
  EXPECT_EQ(totals.log_growths, 1u);
  expect_no_orec_locked(rt);
}

TEST(EpochWrap, RetirePathQuiescesAndSkipsTagZero) {
  constexpr uint64_t kBoundary = 1ull << 24;  // 24-bit tag space wraps here
  auto cfg = test::small_cfg(nvm::Domain::kEadr);
  test::Fixture fx(cfg);
  auto* root = fx.pool.root<uint64_t>();

  fx.rt.debug_set_epoch(fx.ctx, 0, kBoundary - 2);
  fx.rt.run(fx.ctx, [&](ptm::Tx& tx) { tx.write(root, uint64_t{1}); });
  EXPECT_EQ(fx.rt.debug_epoch(0), kBoundary - 1);

  // This retire crosses the wrap: the slot must quiesce and skip tag 0.
  fx.rt.run(fx.ctx, [&](ptm::Tx& tx) { tx.write(root, uint64_t{2}); });
  EXPECT_EQ(fx.rt.debug_epoch(0), kBoundary + 1);
  EXPECT_NE(fx.rt.debug_epoch(0) & ptm::LogEntry::kTagMask, 0u);
  EXPECT_EQ(*root, 2u);

  // Post-wrap transactions run normally.
  fx.rt.run(fx.ctx, [&](ptm::Tx& tx) { tx.write(root, uint64_t{3}); });
  EXPECT_EQ(*root, 3u);
  EXPECT_EQ(fx.rt.debug_epoch(0), kBoundary + 2);
}

TEST(EpochWrap, RecoveryPathQuiescesAndSkipsTagZero) {
  constexpr uint64_t kBoundary = 1ull << 24;
  auto cfg = test::small_cfg(nvm::Domain::kAdr, nvm::Media::kOptane, true);
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecEager);
  sim::RealContext ctx(0, cfg.max_workers);
  auto* root = pool.root<uint64_t>();
  *root = 888;

  // Hand-craft a crashed ACTIVE undo transaction at the last pre-wrap
  // epoch: recovery must roll it back, then advance past tag 0 with a
  // durable log wipe.
  auto slot = ptm::SlotLayout::carve(pool.worker_meta(1), pool.worker_meta_bytes());
  slot.header->status = ptm::TxSlotHeader::make(kBoundary - 1, ptm::TxSlotHeader::kActive);
  slot.header->algo = static_cast<uint64_t>(ptm::Algo::kOrecEager);
  slot.header->log_count = 1;
  slot.log[0].off = ptm::LogEntry::seal(
      ptm::LogEntry::pack(kBoundary - 1, pool.offset_of(root)), 777);
  slot.log[0].val = 777;

  rt.recover(ctx);
  EXPECT_EQ(*root, 777u) << "undo record was not rolled back";
  EXPECT_EQ(ptm::TxSlotHeader::epoch_of(slot.header->status), kBoundary + 1);
  EXPECT_EQ(slot.log[0].off, 0u) << "wrap quiesce did not wipe the log";
  EXPECT_EQ(rt.debug_epoch(1), kBoundary + 1);

  rt.run(ctx, [&](ptm::Tx& tx) { tx.write(root, uint64_t{5}); });
  EXPECT_EQ(*root, 5u);
}

// ---------------------------------------------------------------------------
// Deterministic crash sweep over a two-segment overflow commit.

struct SweepParam {
  ptm::Algo algo;
  nvm::Domain domain;
};

std::string sweep_param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string s = ptm::algo_suffix(info.param.algo);
  s += "_";
  s += nvm::domain_name(info.param.domain);
  for (auto& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

class OverflowCrashSweep : public ::testing::TestWithParam<SweepParam> {};

constexpr uint64_t kSweepWords = 60;  // 28 -> 56 -> 112: two growths
constexpr uint64_t kOldBase = 100;
constexpr uint64_t kNewBase = 1000;

nvm::SystemConfig sweep_cfg(nvm::Domain domain) {
  auto cfg = test::small_cfg(domain, nvm::Media::kOptane, /*crash_sim=*/true);
  cfg.pool_size = 4ull << 20;
  cfg.max_workers = 2;
  cfg.per_worker_meta_bytes = kMicroMeta;
  return cfg;
}

void sweep_populate(nvm::Pool& pool, uint64_t* heap) {
  for (uint64_t i = 0; i < kSweepWords; i++) heap[i] = kOldBase + i;
  pool.mem().checkpoint_all_persistent();
}

void sweep_tx(ptm::Runtime& rt, sim::ExecContext& ctx, uint64_t* heap) {
  rt.run(ctx, [&](ptm::Tx& tx) {
    for (uint64_t i = 0; i < kSweepWords; i++) tx.write(&heap[i], kNewBase + i);
  });
}

TEST_P(OverflowCrashSweep, EveryPersistenceEventRecoversConsistently) {
  // Dry run: measure the scenario's persistence-event count and validate
  // its shape (the commit must actually cross two overflow growths).
  uint64_t n_events;
  {
    auto cfg = sweep_cfg(GetParam().domain);
    nvm::Pool pool(cfg);
    ptm::Runtime rt(pool, GetParam().algo);
    sim::RealContext ctx(0, cfg.max_workers);
    uint64_t* heap = scratch_region(pool);
    sweep_populate(pool, heap);
    const uint64_t e0 = pool.mem().persistence_events();
    sweep_tx(rt, ctx, heap);
    n_events = pool.mem().persistence_events() - e0;
    const auto totals = stats::aggregate(rt.snapshot_counters());
    ASSERT_EQ(totals.aborts_of(stats::AbortCause::kCapacity), 2u);
    ASSERT_EQ(totals.log_growths, 2u);
    ASSERT_GT(n_events, 0u);
  }

  for (uint64_t k = 1; k <= n_events; k++) {
    auto cfg = sweep_cfg(GetParam().domain);
    nvm::Pool pool(cfg);
    ptm::Runtime rt(pool, GetParam().algo);
    sim::RealContext ctx(0, cfg.max_workers);
    uint64_t* heap = scratch_region(pool);
    sweep_populate(pool, heap);

    pool.mem().arm_crash_after(k, /*rng_seed=*/1234 + k);
    bool crashed = false;
    try {
      sweep_tx(rt, ctx, heap);
    } catch (const nvm::CrashPoint&) {
      crashed = true;
    }

    if (crashed) {
      util::Rng rng(42);
      pool.simulate_power_failure(rng);
      rt.recover(ctx);
    }

    // Linearizable durability: the transaction is all-or-nothing — every
    // word shows the old value, or every word shows the new one.
    const bool first_new = heap[0] == kNewBase;
    for (uint64_t i = 0; i < kSweepWords; i++) {
      const uint64_t expect = (first_new ? kNewBase : kOldBase) + i;
      ASSERT_EQ(heap[i], expect)
          << "torn state at word " << i << " after crash at event " << k << " ("
          << (crashed ? "crashed" : "completed") << ")";
    }

    // The recovered pool is fully usable for further transactions.
    rt.run(ctx, [&](ptm::Tx& tx) {
      for (uint64_t i = 0; i < 3; i++) tx.write(&heap[i], uint64_t{5 + i});
    });
    for (uint64_t i = 0; i < 3; i++) ASSERT_EQ(heap[i], 5 + i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgoDomainMatrix, OverflowCrashSweep,
    ::testing::Values(SweepParam{ptm::Algo::kOrecLazy, nvm::Domain::kAdr},
                      SweepParam{ptm::Algo::kOrecLazy, nvm::Domain::kEadr},
                      SweepParam{ptm::Algo::kOrecLazy, nvm::Domain::kPdram},
                      SweepParam{ptm::Algo::kOrecLazy, nvm::Domain::kPdramLite},
                      SweepParam{ptm::Algo::kOrecEager, nvm::Domain::kAdr},
                      SweepParam{ptm::Algo::kOrecEager, nvm::Domain::kEadr},
                      SweepParam{ptm::Algo::kOrecEager, nvm::Domain::kPdram},
                      SweepParam{ptm::Algo::kOrecEager, nvm::Domain::kPdramLite}),
    sweep_param_name);

}  // namespace
