// Thread-crash containment tests (ptm::ContainmentManager).
//
// Layers:
//
//  * Purity: tx_timeout_ns == 0 (the default) constructs no manager and
//    leaves REPRO_JSON artifacts without a "containment" key.
//
//  * Progress: a worker fiber killed mid-run leaves locked orecs and a
//    mid-flight slot; survivors (and the watchdog fiber) must keep
//    committing, the victim must be reclaimed all-or-nothing, and psan
//    must stay clean through the on-behalf surgery.
//
//  * A deterministic kill sweep: one contended round, the victim killed
//    at *every* persistence event in turn, each trial held to the online
//    durable-linearizability oracle after a containment sweep and then to
//    the post-power-failure oracle.
//
//  * Stalls: a stall shorter than the lease must be invisible to
//    containment; a stall far past it must get the sleeper reclaimed and
//    fenced (killed at wake, before it can issue another store).
//
//  * Epoch leader takeover: killing a drain leader mid-epoch must let a
//    survivor steal the expired leadership lease and finish the drain.
//
//  * Backoff cap: the pinned contract for SystemConfig::backoff_max_ns
//    (ptm/backoff.h) — capped draws land in [cap - cap/8, cap] with real
//    jitter, and the default base/cap never bind, preserving the exact
//    pre-cap rng sequence (default-config byte-identity).
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "ptm/backoff.h"
#include "ptm/containment.h"
#include "ptm/runtime.h"
#include "ptm/watchdog.h"
#include "sim/engine.h"
#include "stats/report.h"
#include "test_common.h"

namespace {

constexpr int kAccounts = 24;
constexpr uint64_t kInitBal = 100;
constexpr int kWorkers = 3;  // concurrent DES workers (+1 watchdog fiber)
constexpr uint64_t kTimeoutNs = 20000;
constexpr uint64_t kWatchdogNs = 5000;

struct BankRoot {
  uint64_t bal[kAccounts];
};

nvm::SystemConfig contain_cfg(bool psan = false, bool epoch = false) {
  nvm::SystemConfig cfg = test::crash_cfg(nvm::Domain::kAdr);
  cfg.torn_stores = true;
  cfg.tx_timeout_ns = kTimeoutNs;
  cfg.psan = psan;
  if (epoch) {
    cfg.epoch_commit = true;
    cfg.epoch_max_txs = kWorkers;
    cfg.epoch_max_ns = 20000;
  }
  return cfg;
}

void populate(fault::CrashHarness& h, sim::ExecContext& ctx) {
  auto* root = h.pool.root<BankRoot>();
  h.rt.run(ctx, [&](ptm::Tx& tx) {
    for (int i = 0; i < kAccounts; i++) tx.write(&root->bal[i], kInitBal);
  });
}

// One concurrent round: kWorkers fibers run `txs` transfers each —
// contended (randomized endpoints) or disjoint (worker w owns accounts
// 2w/2w+1) — with a watchdog fiber patrolling on the spare worker id.
// Mirrors the crashfuzz concurrent runner: per-worker FiberKills are
// contained at the fiber boundary, and the watchdog exits once every
// worker fiber is done. Returns the engine's final simulated time.
uint64_t contended_round(fault::CrashHarness& h, int txs, uint64_t wl_seed,
                         bool disjoint, int* kills_out = nullptr) {
  auto* root = h.pool.root<BankRoot>();
  sim::Engine engine(kWorkers + 1);
  std::atomic<int> active{kWorkers};
  ptm::Watchdog watchdog(h.rt);
  int kills = 0;
  engine.run([&](sim::ExecContext& wctx) {
    if (wctx.worker_id() == kWorkers) {
      while (active.load(std::memory_order_acquire) > 0) {
        watchdog.run_pass(wctx);
        if (active.load(std::memory_order_acquire) <= 0) break;
        wctx.advance(kWatchdogNs);
      }
      return;
    }
    struct ActiveGuard {
      std::atomic<int>& a;
      ~ActiveGuard() { a.fetch_sub(1, std::memory_order_acq_rel); }
    } guard{active};
    util::Rng rng(wl_seed * 2654435761ull +
                  0x9e3779b9ull * static_cast<uint64_t>(wctx.worker_id() + 1));
    try {
      for (int t = 0; t < txs; t++) {
        uint64_t a, b;
        if (disjoint) {
          a = static_cast<uint64_t>(2 * wctx.worker_id());
          b = a + 1;
        } else {
          a = rng.next_bounded(kAccounts);
          b = (a + 1 + rng.next_bounded(kAccounts - 1)) % kAccounts;
        }
        h.rt.run(wctx, [&](ptm::Tx& tx) {
          const uint64_t fa = tx.read(&root->bal[a]);
          const uint64_t fb = tx.read(&root->bal[b]);
          const uint64_t amt = fa > 5 ? 5 : fa;
          tx.write(&root->bal[a], fa - amt);
          tx.write(&root->bal[b], fb + amt);
        });
      }
    } catch (const nvm::FiberKill&) {
      kills++;  // the victim just stops; survivors keep running
    }
  });
  if (kills_out != nullptr) *kills_out = kills;
  return engine.elapsed_ns();
}

// Count the persistence events one clean round consumes, so kill sweeps
// and kill-event searches stay inside the run.
uint64_t dry_run_events(bool psan, bool epoch, int txs, uint64_t wl_seed,
                        bool disjoint) {
  fault::CrashHarness h(contain_cfg(psan, epoch), ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, h.pool.config().max_workers);
  populate(h, ctx);
  h.seal_initial_state();
  const uint64_t before = h.pool.mem().persistence_events();
  contended_round(h, txs, wl_seed, disjoint);
  return h.pool.mem().persistence_events() - before;
}

// Online containment verdict after a kill round: sweep from a fresh
// context advanced past every possible lease expiry, then hold the heap
// to the durable-linearizability contract (crashfuzz's online oracle).
void sweep_and_verify_online(fault::CrashHarness& h, uint64_t sim_end) {
  ptm::ContainmentManager* cm = h.rt.containment();
  ASSERT_NE(cm, nullptr);
  sim::RealContext vctx(kWorkers, h.pool.config().max_workers);
  vctx.advance(sim_end + 2 * kTimeoutNs + 1);
  cm->sweep(vctx, nullptr);
  const auto res = h.verify();
  EXPECT_TRUE(res.ok) << "online containment oracle: " << res.detail;
}

// ----- purity ------------------------------------------------------------

TEST(Containment, DisabledByDefaultIsNullManager) {
  test::Fixture off(test::small_cfg());
  EXPECT_EQ(off.rt.containment(), nullptr);

  nvm::SystemConfig cfg = test::small_cfg();
  cfg.tx_timeout_ns = kTimeoutNs;
  test::Fixture on(cfg);
  ASSERT_NE(on.rt.containment(), nullptr);
  EXPECT_EQ(on.rt.containment()->timeout_ns(), kTimeoutNs);
  EXPECT_TRUE(on.rt.containment()->snapshot().enabled);
}

TEST(Containment, JsonKeyPresentExactlyWhenEnabled) {
  stats::RunResult r;
  r.containment.enabled = true;
  r.containment.deaths = 2;
  r.containment.stuck_tx_reclaimed = 1;
  r.containment.leader_takeovers = 1;
  std::ostringstream os;
  stats::JsonWriter w(os);
  w.begin_object();
  write_run_result_fields(w, r);
  w.end_object();
  const std::string s = os.str();
  EXPECT_NE(s.find("\"containment\""), std::string::npos);
  EXPECT_NE(s.find("\"stuck_tx_reclaimed\":1"), std::string::npos);
  EXPECT_NE(s.find("\"leader_takeovers\":1"), std::string::npos);

  // Disabled (the default) must leave the artifact without the key:
  // byte-identity for default configs.
  std::ostringstream os2;
  stats::JsonWriter w2(os2);
  w2.begin_object();
  write_run_result_fields(w2, stats::RunResult{});
  w2.end_object();
  EXPECT_EQ(os2.str().find("\"containment\""), std::string::npos);
}

// ----- progress after a mid-run kill -------------------------------------

// A fiber killed at a persistence event inside a contended round leaves
// locked orecs behind. Survivors must finish their full transaction
// budget (reclaiming the victim on conflict or via the watchdog), the
// victim must be resolved all-or-nothing online, and psan must stay
// clean through the on-behalf surgery. The kill event is searched from
// the middle of the round outward so the test keeps meaning even if
// event numbering shifts with protocol changes.
TEST(Containment, SurvivorsProgressAfterMidRunKill) {
  constexpr int kTxs = 12;
  const uint64_t total = dry_run_events(true, false, kTxs, 7, false);
  ASSERT_GT(total, 8u);

  bool reclaimed_somewhere = false;
  for (uint64_t frac = 2; frac <= 5 && !reclaimed_somewhere; frac++) {
    const uint64_t kill_at = total / frac;
    fault::CrashHarness h(contain_cfg(/*psan=*/true), ptm::Algo::kOrecLazy);
    sim::RealContext ctx(0, h.pool.config().max_workers);
    populate(h, ctx);
    h.seal_initial_state();
    h.pool.mem().arm_thread_fault(kill_at);
    int kills = 0;
    uint64_t sim_end = 0;
    const bool crashed = h.run_until_crash(~0ull, 17, [&] {
      sim_end = contended_round(h, kTxs, 7, /*disjoint=*/false, &kills);
    });
    ASSERT_FALSE(crashed);
    h.pool.mem().clear_thread_faults();
    if (kills == 0) continue;  // armed past the round's events

    sweep_and_verify_online(h, sim_end);
    const stats::ContainmentStats cs = h.rt.containment()->snapshot();
    EXPECT_GE(cs.deaths, 1u);
    if (cs.stuck_tx_reclaimed >= 1) {
      reclaimed_somewhere = true;
      EXPECT_EQ(cs.stuck_tx_reclaimed, cs.aborts_on_behalf + cs.commits_completed);
      EXPECT_EQ(cs.reclaim_latency_ns.count(), cs.stuck_tx_reclaimed);
    }

    // psan saw every store the reclaimer issued on the victim's behalf;
    // the surgery must be as clean as a first-party commit/abort.
    analysis::Psan* ps = h.pool.mem().psan();
    ASSERT_NE(ps, nullptr);
    const auto summ = ps->summary();
    EXPECT_EQ(summ.correctness(), 0u)
        << "kill_at=" << kill_at << ": missing_flush=" << summ.missing_flush
        << " misordered_persist=" << summ.misordered_persist;

    // The online verdict must also survive an actual power failure.
    h.rt.containment()->revive_all();
    h.power_fail_and_recover(ctx, 17);
    test::expect_clean_recovery(h.report);
    const auto res = h.verify();
    EXPECT_TRUE(res.ok) << "post-recovery oracle: " << res.detail;
  }
  EXPECT_TRUE(reclaimed_somewhere)
      << "no searched kill event left a reclaimable transaction";
}

// ----- deterministic kill-at-every-event sweep ---------------------------

// Disjoint transfers (no conflict aborts perturb event numbering), the
// victim killed at every persistence event of the round in turn, each
// trial: watchdog reclaims (no waiter ever conflicts), online oracle,
// power failure, post-recovery oracle. Both algorithms, ADR.
TEST(Containment, KillAtEveryEventSweep) {
  constexpr int kTxs = 2;
  for (ptm::Algo algo : {ptm::Algo::kOrecLazy, ptm::Algo::kOrecEager}) {
    uint64_t total = 0;
    {
      fault::CrashHarness h(contain_cfg(), algo);
      sim::RealContext ctx(0, h.pool.config().max_workers);
      populate(h, ctx);
      h.seal_initial_state();
      const uint64_t before = h.pool.mem().persistence_events();
      contended_round(h, kTxs, 3, /*disjoint=*/true);
      total = h.pool.mem().persistence_events() - before;
    }
    ASSERT_GT(total, 0u);

    uint64_t kills_seen = 0, reclaims_seen = 0;
    for (uint64_t ev = 1; ev <= total; ev++) {
      fault::CrashHarness h(contain_cfg(), algo);
      sim::RealContext ctx(0, h.pool.config().max_workers);
      populate(h, ctx);
      h.seal_initial_state();
      h.pool.mem().arm_thread_fault(ev);
      int kills = 0;
      uint64_t sim_end = 0;
      const bool crashed = h.run_until_crash(~0ull, ev, [&] {
        sim_end = contended_round(h, kTxs, 3, /*disjoint=*/true, &kills);
      });
      ASSERT_FALSE(crashed);
      h.pool.mem().clear_thread_faults();
      if (kills > 0) {
        kills_seen++;
        sweep_and_verify_online(h, sim_end);
        reclaims_seen += h.rt.containment()->snapshot().stuck_tx_reclaimed;
        h.rt.containment()->revive_all();
      }
      h.power_fail_and_recover(ctx, ev);
      test::expect_clean_recovery(h.report);
      const auto res = h.verify();
      EXPECT_TRUE(res.ok) << ptm::algo_suffix(algo) << " kill at event " << ev
                          << "/" << total << ": " << res.detail;
    }
    // The sweep must actually have exercised the machinery: most events
    // land inside some worker's transaction, and at least one kill must
    // have left a mid-flight transaction for the watchdog.
    EXPECT_GT(kills_seen, total / 2) << ptm::algo_suffix(algo);
    EXPECT_GE(reclaims_seen, 1u) << ptm::algo_suffix(algo);
  }
}

// ----- stalls ------------------------------------------------------------

// A stall far past the lease: the watchdog reclaims the sleeper while it
// is parked, and the wake-side fence probe kills it before it can issue
// another store (zombies_fenced). The heap must then verify online.
TEST(Containment, ZombieStallIsFencedAndReclaimed) {
  constexpr int kTxs = 12;
  const uint64_t total = dry_run_events(false, false, kTxs, 11, false);
  ASSERT_GT(total, 8u);

  bool fenced_somewhere = false;
  for (uint64_t frac = 2; frac <= 5 && !fenced_somewhere; frac++) {
    fault::CrashHarness h(contain_cfg(), ptm::Algo::kOrecEager);
    sim::RealContext ctx(0, h.pool.config().max_workers);
    populate(h, ctx);
    h.seal_initial_state();
    h.pool.mem().arm_thread_fault(total / frac, 4 * kTimeoutNs);
    int kills = 0;
    uint64_t sim_end = 0;
    const bool crashed = h.run_until_crash(~0ull, 17, [&] {
      sim_end = contended_round(h, kTxs, 11, /*disjoint=*/false, &kills);
    });
    ASSERT_FALSE(crashed);
    h.pool.mem().clear_thread_faults();
    if (kills == 0) continue;

    sweep_and_verify_online(h, sim_end);
    const stats::ContainmentStats cs = h.rt.containment()->snapshot();
    if (cs.zombies_fenced >= 1) {
      fenced_somewhere = true;
      // Fencing only happens as part of a reclaim or takeover.
      EXPECT_GE(cs.stuck_tx_reclaimed + cs.leader_takeovers, 1u);
    }
  }
  EXPECT_TRUE(fenced_somewhere)
      << "no searched stall event produced a fenced zombie";
}

// A stall well inside the lease is invisible: nobody is reclaimed, nobody
// is fenced, every transaction commits, and the money is conserved.
TEST(Containment, ShortStallIsHarmless) {
  constexpr int kTxs = 12;
  const uint64_t total = dry_run_events(false, false, kTxs, 13, false);
  fault::CrashHarness h(contain_cfg(), ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, h.pool.config().max_workers);
  populate(h, ctx);
  h.seal_initial_state();
  h.pool.mem().arm_thread_fault(total / 2, kTimeoutNs / 2);
  int kills = 0;
  const bool crashed = h.run_until_crash(
      ~0ull, 17, [&] { contended_round(h, kTxs, 13, /*disjoint=*/false, &kills); });
  ASSERT_FALSE(crashed);
  h.pool.mem().clear_thread_faults();
  EXPECT_EQ(kills, 0);

  const stats::ContainmentStats cs = h.rt.containment()->snapshot();
  EXPECT_EQ(cs.deaths, 0u);
  EXPECT_EQ(cs.stuck_tx_reclaimed, 0u);
  EXPECT_EQ(cs.zombies_fenced, 0u);
  const auto res = h.verify();
  EXPECT_TRUE(res.ok) << res.detail;

  auto* root = h.pool.root<BankRoot>();
  uint64_t sum = 0;
  h.rt.run(ctx, [&](ptm::Tx& tx) {
    sum = 0;
    for (int i = 0; i < kAccounts; i++) sum += tx.read(&root->bal[i]);
  });
  EXPECT_EQ(sum, static_cast<uint64_t>(kAccounts) * kInitBal);
}

// ----- watchdog-only reclamation -----------------------------------------

// Disjoint write sets: no survivor ever trips over the victim's locks, so
// the conflict-site hook can never fire — reclamation must come from the
// watchdog fiber patrolling inside the round.
TEST(Containment, WatchdogReclaimsUnconflictedVictim) {
  // Enough transactions that the survivors keep the round alive well past
  // the victim's lease expiry — the watchdog can only reclaim in-round
  // while some worker fiber is still running.
  constexpr int kTxs = 48;
  const uint64_t total = dry_run_events(false, false, kTxs, 5, true);
  ASSERT_GT(total, 8u);

  bool reclaimed_in_round = false;
  for (uint64_t frac = 4; frac <= 8 && !reclaimed_in_round; frac++) {
    fault::CrashHarness h(contain_cfg(), ptm::Algo::kOrecLazy);
    sim::RealContext ctx(0, h.pool.config().max_workers);
    populate(h, ctx);
    h.seal_initial_state();
    h.pool.mem().arm_thread_fault(total / frac);
    int kills = 0;
    const bool crashed = h.run_until_crash(
        ~0ull, 17, [&] { contended_round(h, kTxs, 5, /*disjoint=*/true, &kills); });
    ASSERT_FALSE(crashed);
    h.pool.mem().clear_thread_faults();
    if (kills == 0) continue;

    // Snapshot BEFORE any offline sweep: the reclaim must have happened
    // inside the engine round, i.e. by the watchdog fiber.
    const stats::ContainmentStats cs = h.rt.containment()->snapshot();
    EXPECT_GE(cs.watchdog_passes, 1u);
    if (cs.stuck_tx_reclaimed >= 1) {
      reclaimed_in_round = true;
      const auto res = h.verify();
      EXPECT_TRUE(res.ok) << "online containment oracle: " << res.detail;
    }
  }
  EXPECT_TRUE(reclaimed_in_round)
      << "watchdog never reclaimed the unconflicted victim in-round";
}

// ----- epoch leader takeover ---------------------------------------------

// With epoch commit on, killing the drain leader mid-epoch must let a
// surviving member steal the expired leadership lease and complete the
// drain (leader_takeovers >= 1 across the searched kill events), with
// every trial passing both oracles.
TEST(Containment, EpochLeaderTakeover) {
  constexpr int kTxs = 4;
  const uint64_t total = dry_run_events(false, true, kTxs, 9, true);
  ASSERT_GT(total, 8u);

  uint64_t takeovers = 0;
  for (uint64_t ev = 1; ev <= total && takeovers == 0; ev++) {
    fault::CrashHarness h(contain_cfg(/*psan=*/false, /*epoch=*/true),
                          ptm::Algo::kOrecLazy);
    ASSERT_NE(h.rt.epochs(), nullptr);
    sim::RealContext ctx(0, h.pool.config().max_workers);
    populate(h, ctx);
    h.seal_initial_state();
    h.pool.mem().arm_thread_fault(ev);
    int kills = 0;
    uint64_t sim_end = 0;
    const bool crashed = h.run_until_crash(~0ull, ev, [&] {
      sim_end = contended_round(h, kTxs, 9, /*disjoint=*/true, &kills);
    });
    ASSERT_FALSE(crashed);
    h.pool.mem().clear_thread_faults();
    if (kills == 0) continue;

    sweep_and_verify_online(h, sim_end);
    takeovers += h.rt.containment()->snapshot().leader_takeovers;
    h.rt.containment()->revive_all();
    h.power_fail_and_recover(ctx, ev);
    test::expect_clean_recovery(h.report);
    const auto res = h.verify();
    EXPECT_TRUE(res.ok) << "kill at event " << ev << ": " << res.detail;
  }
  EXPECT_GE(takeovers, 1u)
      << "no kill event ever landed on a drain leader mid-epoch";
}

// ----- backoff cap (SystemConfig::backoff_max_ns) ------------------------

TEST(Backoff, DefaultCapNeverBindsSameRngSequence) {
  // The default base/cap must reproduce the pre-cap policy draw-for-draw:
  // one bounded draw per abort, no jitter draw, identical waits.
  const nvm::SystemConfig cfg;  // defaults
  const auto base = static_cast<uint64_t>(cfg.cost.backoff_base_ns);
  const uint64_t cap = cfg.backoff_max_ns;
  ASSERT_LE(base << 10, cap) << "default cap would bind; byte-identity broken";

  util::Rng capped(42), replica(42);
  for (uint64_t attempt = 1; attempt <= 32; attempt++) {
    const uint64_t got = ptm::backoff_wait_ns(attempt, base, cap, capped);
    const uint64_t shift = attempt < 10 ? attempt : 10;
    const uint64_t want =
        std::max<uint64_t>(base, replica.next_bounded((base << shift) + 1));
    EXPECT_EQ(got, want) << "attempt " << attempt;
  }
  // Same number of draws consumed on both sides.
  EXPECT_EQ(capped.next(), replica.next());
}

TEST(Backoff, CapBindsWithJitterInWindow) {
  constexpr uint64_t kBase = 100;
  constexpr uint64_t kCap = 1000;
  util::Rng rng(7);
  uint64_t distinct_mask = 0;
  uint64_t capped_draws = 0;
  for (int i = 0; i < 400; i++) {
    const uint64_t w = ptm::backoff_wait_ns(/*attempt=*/10, kBase, kCap, rng);
    EXPECT_GE(w, kBase);
    EXPECT_LE(w, kCap);
    if (w > kCap - kCap / 8 - 1) {
      // Inside the jitter window [cap - cap/8, cap].
      capped_draws++;
      distinct_mask |= uint64_t{1} << (w % 64);
    }
  }
  // At attempt 10 the uncapped draw spans [0, 100<<10]; the overwhelming
  // majority of draws exceed cap=1000, so the window must be hit...
  EXPECT_GE(capped_draws, 300u);
  // ...with real jitter: many distinct values, not one collapsed point.
  int bits = 0;
  for (int i = 0; i < 64; i++) bits += (distinct_mask >> i) & 1;
  EXPECT_GE(bits, 8) << "capped retriers collapsed onto too few instants";
}

TEST(Backoff, NeverBelowBaseEvenWithTinyCap) {
  // cap < base: the clamp floor wins — a capped wait may never drop below
  // one base quantum (livelock rule) no matter how small the cap.
  util::Rng rng(3);
  for (int i = 0; i < 100; i++) {
    EXPECT_GE(ptm::backoff_wait_ns(8, /*base=*/500, /*cap=*/400, rng), 500u);
  }
}

}  // namespace
