// Unit tests for the memcached-like key/value store (workloads/kv).
#include <gtest/gtest.h>

#include "test_common.h"
#include "workloads/kv.h"

namespace {

struct KvFixture : ::testing::Test {
  KvFixture() {
    workloads::KvParams p;
    p.items = 64;
    store = std::make_unique<workloads::KvStore>(p);
    auto cfg = test::small_cfg(nvm::Domain::kEadr);
    cfg.pool_size = store->pool_bytes();
    pool = std::make_unique<nvm::Pool>(cfg);
    rt = std::make_unique<ptm::Runtime>(*pool, ptm::Algo::kOrecLazy);
    store->setup(*rt, ctx);
  }
  std::unique_ptr<workloads::KvStore> store;
  std::unique_ptr<nvm::Pool> pool;
  std::unique_ptr<ptm::Runtime> rt;
  sim::RealContext ctx{0, 8};
};

TEST_F(KvFixture, PopulationIsComplete) {
  // verify() walks the index looking for every populated key.
  EXPECT_NO_THROW(store->verify(*rt, ctx));
}

TEST_F(KvFixture, VirtualPayloadAccountingMatchesItems) {
  // 64 items x 1KB values = 64 * 16 lines of virtual footprint.
  EXPECT_EQ(store->virtual_lines_used(), 64u * 16u);
}

TEST_F(KvFixture, OverwriteDoesNotGrowFootprint) {
  const uint64_t before = store->virtual_lines_used();
  const uint64_t hw_before = rt->allocator().high_water_bytes();
  for (uint64_t k = 0; k < 64; k++) {
    store->request(*rt, ctx, k, /*is_get=*/false);  // overwrite every key
  }
  EXPECT_EQ(store->virtual_lines_used(), before);
  EXPECT_EQ(rt->allocator().high_water_bytes(), hw_before);
  EXPECT_NO_THROW(store->verify(*rt, ctx));
}

TEST_F(KvFixture, GetsCountPmemTraffic) {
  rt->reset_counters();
  for (uint64_t k = 0; k < 32; k++) {
    store->request(*rt, ctx, k, /*is_get=*/true);
  }
  const auto t = stats::aggregate(rt->snapshot_counters());
  EXPECT_EQ(t.commits, 32u);
  // Each get streams 16 value lines plus index reads.
  EXPECT_GE(t.pmem_loads, 32u * 16u);
}

TEST_F(KvFixture, MissingKeyGetIsHarmless) {
  rt->reset_counters();
  store->request(*rt, ctx, 9999, /*is_get=*/true);  // never populated
  EXPECT_EQ(stats::aggregate(rt->snapshot_counters()).commits, 1u);
  EXPECT_NO_THROW(store->verify(*rt, ctx));
}

TEST(KvCollisions, ManyItemsFewBucketsStillCorrect) {
  // Force long chains: items >> buckets cannot happen through KvParams
  // (buckets scale with items), so instead verify integrity at a size
  // where the 128-byte-key compare path handles many same-bucket entries.
  workloads::KvParams p;
  p.items = 500;  // buckets = 512 -> frequent 2-3 deep chains
  workloads::KvStore store(p);
  auto cfg = test::small_cfg(nvm::Domain::kEadr);
  cfg.pool_size = store.pool_bytes();
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 8);
  store.setup(rt, ctx);
  EXPECT_NO_THROW(store.verify(rt, ctx));
}

}  // namespace
