// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "fault/harness.h"
#include "nvm/pool.h"
#include "ptm/runtime.h"
#include "sim/context.h"

namespace test {

/// A small, fast pool configuration for unit tests.
inline nvm::SystemConfig small_cfg(nvm::Domain domain = nvm::Domain::kAdr,
                                   nvm::Media media = nvm::Media::kOptane,
                                   bool crash_sim = false) {
  nvm::SystemConfig cfg;
  cfg.domain = domain;
  cfg.media = media;
  cfg.crash_sim = crash_sim;
  cfg.pool_size = 32ull << 20;
  cfg.max_workers = 8;
  cfg.per_worker_meta_bytes = 1ull << 18;
  cfg.l3_bytes = 1ull << 20;
  cfg.dram_cache_bytes = 4ull << 20;
  return cfg;
}

/// The pool configuration every crash-consistency test shares: small pool,
/// four workers, Optane timing, crash simulation on.
inline nvm::SystemConfig crash_cfg(nvm::Domain domain = nvm::Domain::kAdr) {
  auto cfg = small_cfg(domain, nvm::Media::kOptane, /*crash_sim=*/true);
  cfg.pool_size = 16ull << 20;
  cfg.max_workers = 4;
  cfg.per_worker_meta_bytes = 1ull << 17;
  return cfg;
}

/// Assert that recovery rejected nothing it shouldn't have. Torn records
/// are ordinary (the in-flight tail of a crashed log); checksum failures
/// on a *committed* log, out-of-bounds offsets, or unexpected media faults
/// mean the product corrupted its own metadata.
inline void expect_clean_recovery(const stats::RecoveryReport& rep) {
  EXPECT_EQ(rep.log_crc_mismatches, 0u) << "committed log failed its CRC";
  EXPECT_EQ(rep.records_invalid, 0u) << "log record with out-of-bounds offset";
  EXPECT_EQ(rep.records_media_faulted, 0u) << "phantom media fault";
}

/// One crash trial: arm → run `body` until the crash fires (or it ends) →
/// power-fail → recover → clean-report + durable-linearizability checks.
/// Returns true iff the crash fired. Callers add workload-specific asserts
/// (shadow-state comparisons, container membership, …) afterwards; any
/// reads they do through h.rt.run happen after the oracle verdict, which
/// is the required order (see fault::CrashHarness).
///
/// `check_oracle` must be false for workloads that dealloc transactional
/// data: the allocator threads free-list links through freed blocks
/// outside the Tx write path, so the byte-exact oracle would flag those
/// words. The report checks still apply.
template <typename Body>
bool run_crash_trial(fault::CrashHarness& h, sim::ExecContext& ctx,
                     uint64_t events, uint64_t crash_seed, Body&& body,
                     bool check_oracle = true, uint64_t image_seed = 17) {
  h.seal_initial_state();
  const bool crashed =
      h.run_until_crash(events, crash_seed, std::forward<Body>(body));
  h.power_fail_and_recover(ctx, image_seed);
  expect_clean_recovery(h.report);
  if (check_oracle) {
    const auto res = h.verify();
    EXPECT_TRUE(res.ok) << res.detail;
  }
  return crashed;
}

struct Fixture {
  explicit Fixture(nvm::SystemConfig cfg, ptm::Algo algo = ptm::Algo::kOrecLazy)
      : pool(cfg), rt(pool, algo) {}

  nvm::Pool pool;
  ptm::Runtime rt;
  sim::RealContext ctx{0, 8};
};

}  // namespace test
