// Shared helpers for the test suite.
#pragma once

#include <memory>

#include "nvm/pool.h"
#include "ptm/runtime.h"
#include "sim/context.h"

namespace test {

/// A small, fast pool configuration for unit tests.
inline nvm::SystemConfig small_cfg(nvm::Domain domain = nvm::Domain::kAdr,
                                   nvm::Media media = nvm::Media::kOptane,
                                   bool crash_sim = false) {
  nvm::SystemConfig cfg;
  cfg.domain = domain;
  cfg.media = media;
  cfg.crash_sim = crash_sim;
  cfg.pool_size = 32ull << 20;
  cfg.max_workers = 8;
  cfg.per_worker_meta_bytes = 1ull << 18;
  cfg.l3_bytes = 1ull << 20;
  cfg.dram_cache_bytes = 4ull << 20;
  return cfg;
}

struct Fixture {
  explicit Fixture(nvm::SystemConfig cfg, ptm::Algo algo = ptm::Algo::kOrecLazy)
      : pool(cfg), rt(pool, algo) {}

  nvm::Pool pool;
  ptm::Runtime rt;
  sim::RealContext ctx{0, 8};
};

}  // namespace test
