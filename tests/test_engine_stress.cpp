// Engine edge cases: exception propagation out of fibers, fairness of the
// min-clock schedule, run_until fast-path correctness, heavy reuse.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/engine.h"

namespace {

TEST(EngineStress, WorkerExceptionIsRethrownAfterAllFinish) {
  sim::Engine e(4);
  std::vector<int> finished(4, 0);
  EXPECT_THROW(
      e.run([&](sim::ExecContext& ctx) {
        ctx.advance(10);
        if (ctx.worker_id() == 2) throw std::runtime_error("boom");
        ctx.advance(10);
        finished[static_cast<size_t>(ctx.worker_id())] = 1;
      }),
      std::runtime_error);
  // The other three workers ran to completion despite worker 2's failure.
  EXPECT_EQ(finished[0] + finished[1] + finished[3], 3);
}

TEST(EngineStress, FirstOfMultipleExceptionsWins) {
  sim::Engine e(3);
  try {
    e.run([&](sim::ExecContext& ctx) {
      // Worker 0 has the smallest clock when it throws, so its exception
      // fires first deterministically.
      ctx.advance(static_cast<uint64_t>(ctx.worker_id() + 1));
      throw std::runtime_error(std::to_string(ctx.worker_id()));
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& ex) {
    EXPECT_STREQ(ex.what(), "0");
  }
}

TEST(EngineStress, EngineUsableAfterException) {
  sim::Engine e(2);
  EXPECT_THROW(e.run([&](sim::ExecContext&) { throw 42; }), int);
  int ran = 0;
  e.run([&](sim::ExecContext& ctx) {
    ctx.advance(5);
    ran++;
  });
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(e.elapsed_ns(), 5u);
}

TEST(EngineStress, ScheduleIsFairUnderEqualCosts) {
  // With identical per-step costs, every worker must make equal progress
  // at every prefix of the schedule (round-robin through tie-breaking).
  sim::Engine e(8);
  std::vector<int> steps(8, 0);
  std::vector<int> order;
  e.run([&](sim::ExecContext& ctx) {
    for (int i = 0; i < 100; i++) {
      order.push_back(ctx.worker_id());
      steps[static_cast<size_t>(ctx.worker_id())]++;
      ctx.advance(10);
    }
  });
  for (int s : steps) EXPECT_EQ(s, 100);
  // In any window of 8 consecutive events, max progress spread is 1 step.
  std::vector<int> seen(8, 0);
  for (size_t i = 0; i < order.size(); i++) {
    seen[static_cast<size_t>(order[i])]++;
    const auto [mn, mx] = std::minmax_element(seen.begin(), seen.end());
    EXPECT_LE(*mx - *mn, 1) << "at event " << i;
  }
}

TEST(EngineStress, RunUntilFastPathMatchesSlowSchedule) {
  // A worker with many tiny advances between larger ones must produce the
  // same final clocks as the pure event-by-event schedule would: total
  // time is just the sum of its advances, and elapsed is the max.
  sim::Engine e(3);
  e.run([&](sim::ExecContext& ctx) {
    for (int i = 0; i < 1000; i++) {
      ctx.advance(ctx.worker_id() == 0 ? 1 : 3);
    }
  });
  EXPECT_EQ(e.elapsed_ns(), 3000u);
}

TEST(EngineStress, LargeWorkerCount) {
  sim::Engine e(64);
  std::atomic<int> done{0};
  e.run([&](sim::ExecContext& ctx) {
    for (int i = 0; i < 20; i++) ctx.advance(1 + static_cast<uint64_t>(ctx.worker_id() % 5));
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 64);
}

TEST(EngineStress, DeepStackUsageInFiber) {
  // Fibers get 512KB stacks; make sure a realistic recursion depth works.
  sim::Engine e(2);
  std::function<uint64_t(uint64_t, sim::ExecContext&)> rec =
      [&](uint64_t n, sim::ExecContext& ctx) -> uint64_t {
    char pad[512];
    pad[0] = static_cast<char>(n);
    if (n == 0) return static_cast<uint64_t>(pad[0]);
    ctx.advance(1);
    return rec(n - 1, ctx) + 1;
  };
  e.run([&](sim::ExecContext& ctx) { EXPECT_EQ(rec(400, ctx), 400u); });
}

}  // namespace
