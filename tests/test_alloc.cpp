#include <gtest/gtest.h>

#include <set>

#include "alloc/persistent_alloc.h"
#include "test_common.h"

namespace {

struct AllocFixture : ::testing::Test {
  AllocFixture() : pool(test::small_cfg()), alloc(pool) {}
  nvm::Pool pool;
  alloc::PersistentAllocator alloc;
  sim::RealContext ctx{0, 8};
};

}  // namespace

TEST(AllocClasses, ClassForRoundsUp) {
  using A = alloc::PersistentAllocator;
  EXPECT_EQ(A::class_size(A::class_for(1)), 16u);
  EXPECT_EQ(A::class_size(A::class_for(16)), 16u);
  EXPECT_EQ(A::class_size(A::class_for(17)), 32u);
  EXPECT_EQ(A::class_size(A::class_for(300)), 384u);
  EXPECT_EQ(A::class_size(A::class_for(65536)), 65536u);
  EXPECT_LT(A::class_for(65537), 0);
}

TEST_F(AllocFixture, AllocReturnsAlignedDistinctBlocks) {
  std::set<void*> seen;
  for (int i = 0; i < 100; i++) {
    void* p = alloc.alloc(ctx, nullptr, 64);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
    EXPECT_TRUE(pool.contains(p));
    EXPECT_TRUE(seen.insert(p).second);
  }
}

TEST_F(AllocFixture, UsableSizeMatchesClass) {
  void* p = alloc.alloc(ctx, nullptr, 100);
  EXPECT_EQ(alloc.usable_size(p), 128u);
}

TEST_F(AllocFixture, FreeThenAllocRecycles) {
  void* p = alloc.alloc(ctx, nullptr, 64);
  alloc.free_block(ctx, nullptr, p);
  void* q = alloc.alloc(ctx, nullptr, 64);
  EXPECT_EQ(p, q);
}

TEST_F(AllocFixture, FreeListIsPerClass) {
  void* p64 = alloc.alloc(ctx, nullptr, 64);
  alloc.free_block(ctx, nullptr, p64);
  void* p128 = alloc.alloc(ctx, nullptr, 128);  // different class: no reuse
  EXPECT_NE(p64, p128);
  void* q64 = alloc.alloc(ctx, nullptr, 33);  // class 48... not 64
  EXPECT_NE(p64, q64);
  void* r64 = alloc.alloc(ctx, nullptr, 64);
  EXPECT_EQ(p64, r64);
}

TEST_F(AllocFixture, InFreeListMembership) {
  void* p = alloc.alloc(ctx, nullptr, 64);
  EXPECT_FALSE(alloc.in_free_list(p));
  alloc.free_block(ctx, nullptr, p);
  EXPECT_TRUE(alloc.in_free_list(p));
}

TEST_F(AllocFixture, FreeIfAbsentIsIdempotent) {
  void* p = alloc.alloc(ctx, nullptr, 64);
  alloc.free_block_if_absent(ctx, nullptr, p);
  alloc.free_block_if_absent(ctx, nullptr, p);  // second call must no-op
  void* q = alloc.alloc(ctx, nullptr, 64);
  EXPECT_EQ(q, p);
  // p must now be OFF the list: a further alloc gets fresh memory.
  void* r = alloc.alloc(ctx, nullptr, 64);
  EXPECT_NE(r, p);
}

TEST_F(AllocFixture, PerWorkerListsAreIndependent) {
  sim::RealContext w1(1, 8);
  void* p = alloc.alloc(ctx, nullptr, 64);
  alloc.free_block(ctx, nullptr, p);  // on worker 0's list
  void* q = alloc.alloc(w1, nullptr, 64);
  EXPECT_NE(q, p);  // worker 1 does not steal worker 0's block
}

TEST_F(AllocFixture, HighWaterGrowsMonotonically) {
  const uint64_t before = alloc.high_water_bytes();
  alloc.alloc(ctx, nullptr, 4096);
  const uint64_t after = alloc.high_water_bytes();
  EXPECT_GT(after, before);
  // Recycled allocations do not move the high-water mark.
  void* p = alloc.alloc(ctx, nullptr, 64);
  alloc.free_block(ctx, nullptr, p);
  const uint64_t mid = alloc.high_water_bytes();
  alloc.alloc(ctx, nullptr, 64);
  EXPECT_EQ(alloc.high_water_bytes(), mid);
}

TEST_F(AllocFixture, RawAllocIsLineAligned) {
  void* p = alloc.alloc_raw(ctx, nullptr, 1 << 20);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
  EXPECT_TRUE(pool.contains(p));
  EXPECT_TRUE(pool.contains(static_cast<char*>(p) + (1 << 20) - 1));
}

TEST_F(AllocFixture, ExhaustionThrowsBadAlloc) {
  EXPECT_THROW(
      {
        for (;;) alloc.alloc_raw(ctx, nullptr, 4 << 20);
      },
      std::bad_alloc);
}

TEST_F(AllocFixture, OversizeThrowsInvalidArgument) {
  EXPECT_THROW(alloc.alloc(ctx, nullptr, 65537), std::invalid_argument);
}

TEST(AllocPersistence, StateSurvivesReconstruction) {
  // Allocator metadata lives in pmem: a second allocator over the same pool
  // sees the same free lists and high-water mark.
  auto cfg = test::small_cfg();
  nvm::Pool pool(cfg);
  sim::RealContext ctx{0, 8};
  void* p;
  uint64_t hw;
  {
    alloc::PersistentAllocator a1(pool);
    p = a1.alloc(ctx, nullptr, 64);
    a1.free_block(ctx, nullptr, p);
    hw = a1.high_water_bytes();
  }
  alloc::PersistentAllocator a2(pool);
  EXPECT_EQ(a2.high_water_bytes(), hw);
  EXPECT_TRUE(a2.in_free_list(p));
  EXPECT_EQ(a2.alloc(ctx, nullptr, 64), p);
}
