// Deliberately-broken fixture for scripts/pmemlint.py --self-test.
//
// Every access here bypasses the nvm::Memory API: the store/flush costs
// are never modelled, the crash image never sees the write, and psan
// never tracks the line — exactly the escapes the lint exists to reject.
// This file is NOT compiled (it is not in any CMake target); it only has
// to *look* like real call sites so the regex rules are exercised.
#include <atomic>
#include <cstdint>
#include <cstring>

#include "nvm/pool.h"

namespace lint_fixture {

void raw_escapes(nvm::Pool& pool, uint64_t off, const char* src) {
  // R1: memcpy straight into pool-managed memory — bypasses store_bytes,
  // so no cost accounting, no crash shadow, no psan store event.
  std::memcpy(pool.at(off), src, 64);

  // R1: memset of a pool range — same escape, different libc call.
  std::memset(pool.base() + off, 0, 128);

  // R2: a writable atomic_ref over a persistent word — the CAS persists
  // nothing and the memory model never hears about the store.
  std::atomic_ref<uint64_t> word(*static_cast<uint64_t*>(pool.at(off)));
  word.store(42, std::memory_order_release);

  // R3: raw deref-assign through the pool access path instead of
  // Memory::store_word.
  *static_cast<uint64_t*>(pool.at(off)) = 42;

  // R3: pointer arithmetic off the pool base, then a raw store.
  *reinterpret_cast<uint64_t*>(pool.base() + off) = 7;

  // R4: hardware persistence intrinsics — the simulator's clwb/sfence are
  // the only flush/fence primitives; real intrinsics do nothing to the
  // modelled crash image.
  asm volatile("clwb (%0)" ::"r"(pool.base() + off));
  asm volatile("sfence");
}

// Suppressed escape: a justified raw access carries an allow comment and
// the self-test asserts it is NOT reported.
inline void suppressed(nvm::Pool& pool, uint64_t off) {
  *static_cast<uint64_t*>(pool.at(off)) = 1;  // pmemlint: allow(fixture: suppression must silence the rule)
}

}  // namespace lint_fixture
