// Unit + integration tests for the emulated DIMM performance counters
// (stats::DevStats, docs/OBSERVABILITY.md "Device counters").
//
// The unit tests drive the hooks directly with deterministic store
// sequences whose media-level outcome is known in closed form (sequential
// coalescing -> WA 1.0, strided partial lines -> WA 4.0, residency-window
// drain). The integration tests run a real workload point and check the
// assembled "device" section — including that turning the counters on
// changes no simulated result (pure observation).
#include <gtest/gtest.h>

#include <sstream>

#include "stats/devstats.h"
#include "stats/report.h"
#include "stats/trace.h"
#include "workloads/btree_micro.h"
#include "workloads/driver.h"

namespace {

using stats::DevStats;
using stats::DeviceCounters;
using stats::kMediaDram;
using stats::kMediaOptane;

TEST(DevStatsUnit, SequentialWritesCoalesceToUnity) {
  DevStats ds(4);
  // 64 consecutive 64B lines = 16 full XPLines; the 16-entry buffer holds
  // them all, so nothing is evicted and the snapshot flushes 16 full lines.
  for (uint64_t line = 0; line < 64; line++) {
    ds.on_media_write(kMediaOptane, line, /*now_ns=*/0);
  }
  const DeviceCounters d = ds.snapshot();
  EXPECT_EQ(d.host_lines_written, 64u);
  EXPECT_EQ(d.xpbuffer_misses, 16u);  // first touch of each XPLine
  EXPECT_EQ(d.xpbuffer_hits, 48u);    // remaining 3 sub-lines of each
  EXPECT_EQ(d.xpline_writes, 16u);
  EXPECT_EQ(d.xpbuffer_flushes, 16u);
  EXPECT_EQ(d.xpline_rmw_reads, 0u);  // every flushed line was full
  EXPECT_DOUBLE_EQ(d.write_amplification(), 1.0);
  EXPECT_DOUBLE_EQ(d.effective_write_ratio(), 1.0);
}

TEST(DevStatsUnit, StridedWritesAmplifyFourfold) {
  DevStats ds(4);
  // One 64B line per XPLine (stride 4), 32 distinct XPLines: every write
  // misses, 16 partial entries get evicted by capacity and the rest flush
  // at snapshot — each costing a whole 256B media write plus an RMW fill.
  for (uint64_t i = 0; i < 32; i++) {
    ds.on_media_write(kMediaOptane, i * DevStats::kXplineLines, /*now_ns=*/0);
  }
  const DeviceCounters d = ds.snapshot();
  EXPECT_EQ(d.host_lines_written, 32u);
  EXPECT_EQ(d.xpbuffer_misses, 32u);
  EXPECT_EQ(d.xpbuffer_hits, 0u);
  EXPECT_EQ(d.xpline_writes, 32u);
  EXPECT_EQ(d.xpline_rmw_reads, 32u);
  EXPECT_DOUBLE_EQ(d.write_amplification(), 4.0);
  EXPECT_DOUBLE_EQ(d.effective_write_ratio(), 0.25);
}

TEST(DevStatsUnit, RewritesWithinWindowAbsorb) {
  DevStats ds(4);
  for (int i = 0; i < 4; i++) {
    ds.on_media_write(kMediaOptane, /*line=*/0, /*now_ns=*/0);
  }
  const DeviceCounters d = ds.snapshot();
  EXPECT_EQ(d.host_lines_written, 4u);
  EXPECT_EQ(d.xpbuffer_hits, 3u);
  EXPECT_EQ(d.xpline_writes, 1u);  // one buffered entry, flushed once
  EXPECT_EQ(d.xpbuffer_drains, 0u);
}

TEST(DevStatsUnit, ResidencyWindowDrainsHotLines) {
  DevStats ds(4);
  // The same line rewritten after the drain window has passed pays a fresh
  // media write each time — this is what keeps real-device WA >= 1 even for
  // hot metadata lines (a stale entry cannot coalesce forever).
  ds.on_media_write(kMediaOptane, /*line=*/0, /*now_ns=*/0);
  ds.on_media_write(kMediaOptane, /*line=*/0,
                    /*now_ns=*/DevStats::kDefaultDrainWindowNs + 1);
  const DeviceCounters d = ds.snapshot();
  EXPECT_EQ(d.host_lines_written, 2u);
  EXPECT_EQ(d.xpbuffer_misses, 2u);  // second write found the entry drained
  EXPECT_EQ(d.xpbuffer_hits, 0u);
  EXPECT_EQ(d.xpbuffer_drains, 1u);
  EXPECT_EQ(d.xpline_writes, 2u);  // drained + flushed-at-snapshot
  EXPECT_DOUBLE_EQ(d.write_amplification(), 4.0);
}

TEST(DevStatsUnit, ReadsHitBufferedLinesAndAmplifyOtherwise) {
  DevStats ds(4);
  ds.on_media_write(kMediaOptane, /*line=*/0, /*now_ns=*/0);
  ds.on_media_read(kMediaOptane, /*line=*/1, /*now_ns=*/0);   // same XPLine
  ds.on_media_read(kMediaOptane, /*line=*/100, /*now_ns=*/0); // media read
  const DeviceCounters d = ds.snapshot();
  EXPECT_EQ(d.host_lines_read, 2u);
  EXPECT_EQ(d.xpbuffer_read_hits, 1u);
  EXPECT_EQ(d.xpline_reads, 1u);
  EXPECT_DOUBLE_EQ(d.read_amplification(), 2.0);  // 256B media / 128B host
}

TEST(DevStatsUnit, DramTrafficCountsFlat) {
  DevStats ds(4);
  ds.on_media_write(kMediaDram, /*line=*/0, /*now_ns=*/0);
  ds.on_media_read(kMediaDram, /*line=*/7, /*now_ns=*/0);
  const DeviceCounters d = ds.snapshot();
  EXPECT_EQ(d.dram_lines_written, 1u);
  EXPECT_EQ(d.dram_lines_read, 1u);
  EXPECT_EQ(d.host_lines_written, 0u);  // no Optane-side accounting
  EXPECT_EQ(d.xpbuffer_hits + d.xpbuffer_misses, 0u);
}

TEST(DevStatsUnit, WpqHooksTrackOccupancyAndDrain) {
  DevStats ds(4);
  ds.on_wpq_enqueue(/*worker=*/0, /*occupancy=*/1, /*drain_ns=*/100);
  ds.on_wpq_enqueue(/*worker=*/0, /*occupancy=*/3, /*drain_ns=*/400);
  ds.on_wpq_enqueue(/*worker=*/1, /*occupancy=*/7, /*drain_ns=*/900);
  ds.on_wpq_stall(/*worker=*/0, /*ns=*/250);
  ds.on_fence_stall(/*worker=*/1, /*ns=*/600);
  const DeviceCounters d = ds.snapshot();
  EXPECT_EQ(d.wpq_enqueues, 3u);
  EXPECT_EQ(d.wpq_peak_occupancy, 7u);
  EXPECT_EQ(d.wpq_occupancy.count(), 3u);
  EXPECT_EQ(d.wpq_drain_ns.count(), 3u);
  EXPECT_EQ(d.wpq_drain_ns.max(), 900u);
  EXPECT_EQ(d.fence_stall_ns.count(), 1u);
  EXPECT_EQ(d.wpq_stall_ns.count(), 1u);
  ASSERT_EQ(d.wpq_workers.size(), 2u);
  EXPECT_EQ(d.wpq_workers[0].worker, 0);
  EXPECT_EQ(d.wpq_workers[0].occupancy.count(), 2u);
  EXPECT_EQ(d.wpq_workers[1].worker, 1);
}

TEST(DevStatsUnit, SnapshotIsRepeatable) {
  DevStats ds(4);
  for (uint64_t line = 0; line < 40; line++) {
    ds.on_media_write(kMediaOptane, line * 2, /*now_ns=*/0);
  }
  const DeviceCounters a = ds.snapshot();
  const DeviceCounters b = ds.snapshot();
  EXPECT_EQ(a.xpline_writes, b.xpline_writes);
  EXPECT_EQ(a.xpbuffer_flushes, b.xpbuffer_flushes);
  EXPECT_EQ(a.xpline_rmw_reads, b.xpline_rmw_reads);
}

// ---------------------------------------------------------------------------
// Integration: device section of a real run.
// ---------------------------------------------------------------------------

workloads::RunPoint adr_point(bool devstats, int threads) {
  workloads::RunPoint p;
  p.sys.media = nvm::Media::kOptane;
  p.sys.domain = nvm::Domain::kAdr;
  p.sys.l3_bytes = 1ull << 20;
  p.sys.devstats = devstats;
  p.algo = ptm::Algo::kOrecLazy;
  p.threads = threads;
  p.ops_per_thread = 200;
  p.seed = 42;
  return p;
}

stats::RunResult run_btree(const workloads::RunPoint& p) {
  workloads::BTreeMicroParams bp;
  bp.insert_only = true;
  return workloads::run_point(workloads::btree_micro_factory(bp), p);
}

TEST(DevStatsRun, DeviceSectionPopulated) {
  const stats::RunResult r = run_btree(adr_point(/*devstats=*/true, 2));
  const DeviceCounters& d = r.device;
  ASSERT_TRUE(d.enabled);
  EXPECT_GT(d.host_lines_written, 0u);
  EXPECT_GT(d.xpline_writes, 0u);
  EXPECT_GE(d.write_amplification(), 1.0);
  EXPECT_GT(d.wpq_enqueues, 0u);
  EXPECT_GT(d.wpq_peak_occupancy, 0u);
  EXPECT_LE(d.wpq_peak_occupancy,
            static_cast<uint64_t>(r.threads) *
                static_cast<uint64_t>(adr_point(true, 2).sys.cost.wpq_capacity));
  EXPECT_GT(d.channels[stats::kChanOptaneWrite].requests, 0u);
  EXPECT_GT(d.channels[stats::kChanOptaneRead].requests, 0u);
  EXPECT_EQ(d.sim_end_ns, r.sim_ns);
  EXPECT_GT(d.reserve_energy_j, 0.0);
  EXPECT_GT(d.drain_seconds, 0.0);
  EXPECT_FALSE(d.reserve_technology.empty());
  // ADR under redo logging fences constantly: stall histograms must have
  // recorded, and every enqueue contributed an occupancy sample.
  EXPECT_GT(d.fence_stall_ns.count(), 0u);
  EXPECT_EQ(d.wpq_occupancy.count(), d.wpq_enqueues);
}

TEST(DevStatsRun, PureObservationNeverPerturbsSimulation) {
  const stats::RunResult off = run_btree(adr_point(/*devstats=*/false, 2));
  const stats::RunResult on = run_btree(adr_point(/*devstats=*/true, 2));
  EXPECT_FALSE(off.device.enabled);
  ASSERT_TRUE(on.device.enabled);
  // Bit-identical simulated outcome: same clock, same counters.
  EXPECT_EQ(off.sim_ns, on.sim_ns);
  EXPECT_EQ(off.totals.commits, on.totals.commits);
  EXPECT_EQ(off.totals.aborts, on.totals.aborts);
  EXPECT_EQ(off.totals.clwbs, on.totals.clwbs);
  EXPECT_EQ(off.totals.sfences, on.totals.sfences);
  EXPECT_EQ(off.totals.wpq_stall_ns, on.totals.wpq_stall_ns);
  EXPECT_EQ(off.totals.fence_wait_ns, on.totals.fence_wait_ns);
}

TEST(DevStatsRun, JsonDeviceKeyGatedOnEnabled) {
  const stats::RunResult off = run_btree(adr_point(/*devstats=*/false, 1));
  const stats::RunResult on = run_btree(adr_point(/*devstats=*/true, 1));

  const auto to_json = [](const stats::RunResult& r) {
    std::ostringstream os;
    stats::JsonWriter w(os);
    w.begin_object();
    stats::write_run_result_fields(w, r);
    w.end_object();
    return os.str();
  };
  const std::string joff = to_json(off);
  const std::string jon = to_json(on);
  EXPECT_EQ(joff.find("\"device\""), std::string::npos);
  EXPECT_NE(jon.find("\"device\""), std::string::npos);
  EXPECT_NE(jon.find("\"write_amplification\""), std::string::npos);
  EXPECT_NE(jon.find("\"reserve_technology\""), std::string::npos);
}

TEST(DevStatsRun, TraceCarriesCounterEvents) {
  stats::Trace& tr = stats::Trace::instance();
  tr.enable();
  tr.clear();
  const stats::RunResult r = run_btree(adr_point(/*devstats=*/true, 1));
  std::ostringstream os;
  tr.write_json(os);
  tr.disable();
  tr.clear();
  ASSERT_TRUE(r.device.enabled);
  const std::string t = os.str();
  EXPECT_NE(t.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(t.find("\"wpq_occupancy\""), std::string::npos);
  EXPECT_NE(t.find("\"write_amplification\""), std::string::npos);
}

TEST(DevStatsRun, SelfProfileFieldsPopulated) {
  const stats::RunResult r = run_btree(adr_point(/*devstats=*/false, 1));
  EXPECT_GT(r.wall_ns, 0u);
  EXPECT_GT(r.sim_events(), 0u);
  EXPECT_GT(r.sim_events_per_sec(), 0.0);
  EXPECT_GT(r.channel_requests, 0u);
}

}  // namespace
