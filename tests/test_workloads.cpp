// Integration tests: every paper workload runs end-to-end through the
// driver (fresh pool, populate, DES run) and passes its own invariant
// check, for both PTM algorithms.
#include <gtest/gtest.h>

#include "workloads/btree_micro.h"
#include "workloads/driver.h"
#include "workloads/kv.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"
#include "workloads/vacation.h"

namespace {

using workloads::RunPoint;

RunPoint small_point(ptm::Algo algo, int threads) {
  RunPoint p;
  p.sys.domain = nvm::Domain::kAdr;
  p.sys.media = nvm::Media::kOptane;
  p.sys.l3_bytes = 1ull << 20;
  p.algo = algo;
  p.threads = threads;
  p.ops_per_thread = 150;
  p.seed = 7;
  return p;
}

// Run a point AND the workload's verify() on the same instance — a
// one-off driver variant (run_point constructs its own instance).
stats::RunResult run_and_verify(workloads::Workload& w, const RunPoint& p) {
  nvm::SystemConfig cfg = p.sys;
  cfg.pool_size = w.pool_bytes();
  cfg.max_workers = p.threads + 1;
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, p.algo);
  sim::RealContext setup_ctx(p.threads, p.threads + 1);
  w.setup(rt, setup_ctx);
  rt.reset_counters();
  pool.mem().reset_models();

  sim::Engine engine(p.threads);
  engine.run([&](sim::ExecContext& ctx) {
    util::Rng rng(p.seed ^ static_cast<uint64_t>(ctx.worker_id() + 1));
    for (uint64_t i = 0; i < p.ops_per_thread; i++) w.op(rt, ctx, rng);
  });
  w.verify(rt, setup_ctx);

  stats::RunResult r;
  r.threads = p.threads;
  r.sim_ns = engine.elapsed_ns();
  r.totals = stats::aggregate(rt.snapshot_counters());
  return r;
}

class WorkloadTest : public ::testing::TestWithParam<ptm::Algo> {};

TEST_P(WorkloadTest, BTreeInsertOnly) {
  workloads::BTreeMicroParams bp;
  bp.insert_only = true;
  workloads::BTreeMicro w(bp);
  const auto r = run_and_verify(w, small_point(GetParam(), 3));
  EXPECT_EQ(r.totals.commits, 3u * 150u + 1 /*verify tx*/);
  EXPECT_GT(r.sim_ns, 0u);
}

TEST_P(WorkloadTest, BTreeMixed) {
  workloads::BTreeMicroParams bp;
  bp.insert_only = false;
  bp.key_range = 1 << 10;
  bp.preload = 1 << 9;
  workloads::BTreeMicro w(bp);
  const auto r = run_and_verify(w, small_point(GetParam(), 3));
  EXPECT_GE(r.totals.commits, 3u * 150u);
}

TEST_P(WorkloadTest, TatpUpdates) {
  workloads::TatpParams tp;
  tp.subscribers = 2000;
  workloads::Tatp w(tp);
  const auto r = run_and_verify(w, small_point(GetParam(), 2));
  EXPECT_GE(r.totals.commits, 2u * 150u);
  // TATP transactions write 1-2 words: tiny logs.
  EXPECT_LE(r.totals.log_lines_hwm, 2u);
}

TEST_P(WorkloadTest, TpccHashConsistency) {
  workloads::TpccParams tp;
  tp.index = workloads::TpccIndex::kHashTable;
  tp.warehouses = 2;
  tp.customers_per_district = 64;
  tp.items = 256;
  workloads::Tpcc w(tp);
  const auto r = run_and_verify(w, small_point(GetParam(), 3));
  EXPECT_GE(r.totals.commits, 3u * 150u);
}

TEST_P(WorkloadTest, TpccBTreeConsistency) {
  workloads::TpccParams tp;
  tp.index = workloads::TpccIndex::kBPlusTree;
  tp.warehouses = 2;
  tp.customers_per_district = 64;
  tp.items = 256;
  workloads::Tpcc w(tp);
  const auto r = run_and_verify(w, small_point(GetParam(), 3));
  EXPECT_GE(r.totals.commits, 3u * 150u);
}

TEST_P(WorkloadTest, VacationLowConsistency) {
  auto vp = workloads::vacation_low();
  vp.relations = 512;
  vp.customers = 512;
  workloads::Vacation w(vp);
  const auto r = run_and_verify(w, small_point(GetParam(), 3));
  EXPECT_GE(r.totals.commits, 3u * 150u);
}

TEST_P(WorkloadTest, VacationHighConsistency) {
  auto vp = workloads::vacation_high();
  vp.relations = 512;
  vp.customers = 512;
  workloads::Vacation w(vp);
  const auto r = run_and_verify(w, small_point(GetParam(), 3));
  EXPECT_GE(r.totals.commits, 3u * 150u);
}

TEST_P(WorkloadTest, TpccFullMixConsistency) {
  // Extension: the complete five-transaction TPC-C mix (OrderStatus,
  // Delivery, StockLevel in addition to the paper's write-only pair).
  workloads::TpccParams tp;
  tp.index = workloads::TpccIndex::kHashTable;
  tp.mix = workloads::TpccMix::kFull;
  tp.warehouses = 2;
  tp.customers_per_district = 64;
  tp.items = 256;
  workloads::Tpcc w(tp);
  const auto r = run_and_verify(w, small_point(GetParam(), 3));
  EXPECT_GE(r.totals.commits, 3u * 150u);
}

TEST_P(WorkloadTest, TatpStandardMix) {
  workloads::TatpParams tp;
  tp.mix = workloads::TatpMix::kStandard;
  tp.subscribers = 2000;
  workloads::Tatp w(tp);
  const auto r = run_and_verify(w, small_point(GetParam(), 2));
  EXPECT_GE(r.totals.commits, 2u * 150u);
  // The standard mix is read-dominated: most committed transactions leave
  // no log bytes behind.
  EXPECT_LT(r.totals.log_bytes, r.totals.commits * 16 * 4);
}

TEST_P(WorkloadTest, KvStoreGetsAndSets) {
  workloads::KvParams kp;
  kp.items = 512;
  workloads::KvStore w(kp);
  const auto r = run_and_verify(w, small_point(GetParam(), 2));
  EXPECT_GE(r.totals.commits, 2u * 150u);
  // Value payloads are modelled: pmem traffic must include them.
  EXPECT_GT(r.totals.pmem_loads, 0u);
}

TEST(DriverTest, RunPointProducesThroughput) {
  workloads::BTreeMicroParams bp;
  bp.insert_only = true;
  auto factory = workloads::btree_micro_factory(bp);
  RunPoint p = small_point(ptm::Algo::kOrecLazy, 2);
  const auto r = workloads::run_point(factory, p);
  EXPECT_EQ(r.workload, "BTree-insert");
  EXPECT_EQ(r.config, "Optane_ADR");
  EXPECT_EQ(r.totals.commits, 2u * 150u);
  EXPECT_GT(r.throughput_tx_per_sec(), 0.0);
}

TEST(DriverTest, DeterministicAcrossCalls) {
  workloads::TatpParams tp;
  tp.subscribers = 1000;
  auto factory = workloads::tatp_factory(tp);
  RunPoint p = small_point(ptm::Algo::kOrecEager, 3);
  const auto a = workloads::run_point(factory, p);
  const auto b = workloads::run_point(factory, p);
  EXPECT_EQ(a.sim_ns, b.sim_ns);
  EXPECT_EQ(a.totals.aborts, b.totals.aborts);
}

// The paper's headline orderings, reproduced at miniature scale: these are
// the qualitative claims the full benches regenerate.
TEST(ShapeTest, EadrBeatsAdrOnTpcc) {
  workloads::TpccParams tp;
  tp.warehouses = 2;
  tp.customers_per_district = 64;
  tp.items = 256;
  auto factory = workloads::tpcc_factory(tp);
  RunPoint p = small_point(ptm::Algo::kOrecLazy, 4);
  p.ops_per_thread = 250;
  p.sys.domain = nvm::Domain::kAdr;
  const auto adr = workloads::run_point(factory, p);
  p.sys.domain = nvm::Domain::kEadr;
  const auto eadr = workloads::run_point(factory, p);
  EXPECT_GT(eadr.throughput_tx_per_sec(), adr.throughput_tx_per_sec());
}

TEST(ShapeTest, RedoBeatsUndoOnTpccAdr) {
  workloads::TpccParams tp;
  tp.warehouses = 2;
  tp.customers_per_district = 64;
  tp.items = 256;
  auto factory = workloads::tpcc_factory(tp);
  RunPoint p = small_point(ptm::Algo::kOrecLazy, 4);
  p.ops_per_thread = 250;
  const auto redo = workloads::run_point(factory, p);
  p.algo = ptm::Algo::kOrecEager;
  const auto undo = workloads::run_point(factory, p);
  EXPECT_GT(redo.throughput_tx_per_sec(), undo.throughput_tx_per_sec());
}

TEST(ShapeTest, DramBeatsOptane) {
  // The media gap only shows once the working set exceeds the L3 model
  // (in-cache runs are dominated by identical hit costs).
  workloads::BTreeMicroParams bp;
  bp.insert_only = false;
  bp.key_range = 1 << 17;
  bp.preload = 1 << 16;
  auto factory = workloads::btree_micro_factory(bp);
  RunPoint p = small_point(ptm::Algo::kOrecLazy, 2);
  p.sys.l3_bytes = 512 << 10;
  p.ops_per_thread = 300;
  p.sys.media = nvm::Media::kOptane;
  const auto optane = workloads::run_point(factory, p);
  p.sys.media = nvm::Media::kDram;
  const auto dram = workloads::run_point(factory, p);
  EXPECT_GT(dram.throughput_tx_per_sec(), 1.2 * optane.throughput_tx_per_sec());
}

INSTANTIATE_TEST_SUITE_P(Algos, WorkloadTest,
                         ::testing::Values(ptm::Algo::kOrecLazy, ptm::Algo::kOrecEager),
                         [](const ::testing::TestParamInfo<ptm::Algo>& i) {
                           return std::string(ptm::algo_suffix(i.param));
                         });

}  // namespace
