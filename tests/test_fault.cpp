// Fault-injection subsystem tests: torn-record detection, media faults,
// writeback-adversary schedules, the durable-linearizability oracle's own
// sensitivity, and the log-range-drop counter.
//
// The deterministic crash-during-recovery sweep lives in test_crash.cpp
// (CrashDuringRecoveryIsSafe); the randomized schedule explorer is the
// crashfuzz binary (src/fault/crashfuzz.cpp) — these tests pin the sharp
// edges those two drive at scale.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <tuple>

#include "fault/harness.h"
#include "ptm/runtime.h"
#include "test_common.h"
#include "util/crc32.h"

namespace {

// ---------------------------------------------------------------------------
// Torn commit record: a redo record whose `off` word persisted but whose
// `val` word did not (sub-line tearing under ADR). Recovery must detect it
// by CRC, refuse to replay it, and report it — never apply the garbage.

TEST(TornRecord, TornCommitRecordIsDetectedNotReplayed) {
  auto cfg = test::crash_cfg();
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 4);
  auto* root = pool.root<uint64_t>();
  *root = 111;

  // Hand-craft a committed lazy slot whose single record is torn: the
  // committer sealed (off, val=999), but only the off word hit the medium
  // and the val cell still holds old debris.
  auto slot = ptm::SlotLayout::carve(pool.worker_meta(0), pool.worker_meta_bytes());
  const uint64_t epoch = 5;
  slot.header->status = ptm::TxSlotHeader::make(epoch, ptm::TxSlotHeader::kCommitted);
  slot.header->algo = static_cast<uint64_t>(ptm::Algo::kOrecLazy);
  slot.header->log_count = 1;
  slot.log[0].off =
      ptm::LogEntry::seal(ptm::LogEntry::pack(epoch, pool.offset_of(root)), 999);
  slot.log[0].val = 222;  // tear: not the 999 the seal covers
  slot.header->pad[ptm::SlotLayout::kLogCrcPad] =
      util::crc32c_u64(999, util::crc32c_u64(slot.log[0].off, 0));

  const auto rep = rt.recover(ctx);
  EXPECT_GE(rep.records_torn, 1u) << "tear not attributed to the record CRC";
  EXPECT_EQ(rep.records_replayed, 0u) << "torn record was replayed";
  EXPECT_GE(rep.log_crc_mismatches, 1u)
      << "whole-log CRC should also disagree with the torn bytes";
  EXPECT_EQ(*root, 111u) << "torn record's value reached the heap";

  // The pool stays usable.
  rt.run(ctx, [&](ptm::Tx& tx) { tx.write(root, uint64_t{7}); });
  EXPECT_EQ(*root, 7u);
}

TEST(TornRecord, OutOfBoundsOffsetIsRefused) {
  auto cfg = test::crash_cfg();
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 4);
  auto* root = pool.root<uint64_t>();
  *root = 111;

  // A sealed, tag-matching record whose offset targets the pool header:
  // content-valid but *location*-invalid. Applying it would let a corrupt
  // log scribble over the metadata recovery depends on.
  auto slot = ptm::SlotLayout::carve(pool.worker_meta(0), pool.worker_meta_bytes());
  const uint64_t epoch = 5;
  slot.header->status = ptm::TxSlotHeader::make(epoch, ptm::TxSlotHeader::kCommitted);
  slot.header->algo = static_cast<uint64_t>(ptm::Algo::kOrecLazy);
  slot.header->log_count = 1;
  slot.log[0].off = ptm::LogEntry::seal(ptm::LogEntry::pack(epoch, /*off=*/8), 999);
  slot.log[0].val = 999;

  const auto rep = rt.recover(ctx);
  EXPECT_GE(rep.records_invalid, 1u);
  EXPECT_EQ(rep.records_replayed, 0u);
}

// ---------------------------------------------------------------------------
// Media faults: a poisoned line is surfaced through the report and the
// affected records are refused, not trusted.

TEST(MediaFault, PoisonedHeaderLineIsReportedAndSlotRebuilt) {
  auto cfg = test::crash_cfg();
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 4);
  auto* root = pool.root<uint64_t>();
  *root = 111;

  auto slot = ptm::SlotLayout::carve(pool.worker_meta(0), pool.worker_meta_bytes());
  const uint64_t epoch = 5;
  slot.header->status = ptm::TxSlotHeader::make(epoch, ptm::TxSlotHeader::kCommitted);
  slot.header->algo = static_cast<uint64_t>(ptm::Algo::kOrecLazy);
  slot.header->log_count = 1;
  slot.log[0].off =
      ptm::LogEntry::seal(ptm::LogEntry::pack(epoch, pool.offset_of(root)), 999);
  slot.log[0].val = 999;

  pool.mem().inject_media_fault(pool.mem().line_of(slot.header));
  const auto rep = rt.recover(ctx);
  EXPECT_GE(rep.media_faults, 1u);
  EXPECT_GE(rep.records_media_faulted, 1u) << "lost header not attributed";
  EXPECT_EQ(rep.records_replayed, 0u)
      << "replayed a log whose header line is untrustworthy";
  EXPECT_EQ(*root, 111u);

  // The quiesce rebuilt the slot; the worker is usable again.
  pool.mem().clear_media_faults();
  rt.run(ctx, [&](ptm::Tx& tx) { tx.write(root, uint64_t{7}); });
  EXPECT_EQ(*root, 7u);
}

TEST(MediaFault, PoisonedRecordLineRefusesOnlyThatRecord) {
  auto cfg = test::crash_cfg();
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 4);
  auto* root = pool.root<uint64_t[8]>();
  for (int i = 0; i < 8; i++) (*root)[i] = 111;

  // Five committed records spanning at least two log lines (16-byte
  // records, 64-byte lines); poison only the line holding the last one.
  auto slot = ptm::SlotLayout::carve(pool.worker_meta(0), pool.worker_meta_bytes());
  const uint64_t epoch = 5;
  slot.header->status = ptm::TxSlotHeader::make(epoch, ptm::TxSlotHeader::kCommitted);
  slot.header->algo = static_cast<uint64_t>(ptm::Algo::kOrecLazy);
  slot.header->log_count = 5;
  for (uint64_t i = 0; i < 5; i++) {
    const uint64_t off = pool.offset_of(&(*root)[i]);
    slot.log[i].off = ptm::LogEntry::seal(ptm::LogEntry::pack(epoch, off), 500 + i);
    slot.log[i].val = 500 + i;
  }
  uint32_t lc = 0;
  for (uint64_t i = 0; i < 5; i++) {
    lc = util::crc32c_u64(slot.log[i].val, util::crc32c_u64(slot.log[i].off, lc));
  }
  slot.header->pad[ptm::SlotLayout::kLogCrcPad] = lc;

  pool.mem().inject_media_fault(pool.mem().line_of(&slot.log[4]));
  // Records can share the poisoned line with log[4]; expectations follow
  // the actual line geometry rather than assuming alignment.
  uint64_t poisoned = 0;
  bool on_bad[5];
  for (uint64_t i = 0; i < 5; i++) {
    on_bad[i] = pool.mem().media_faulted(&slot.log[i], sizeof(ptm::LogEntry));
    if (on_bad[i]) poisoned++;
  }
  ASSERT_GE(poisoned, 1u);
  ASSERT_LT(poisoned, 5u) << "geometry left no healthy record to replay";

  const auto rep = rt.recover(ctx);
  EXPECT_EQ(rep.records_media_faulted, poisoned);
  EXPECT_EQ(rep.records_replayed, 5u - poisoned)
      << "good records on healthy lines must still replay";
  for (uint64_t i = 0; i < 5; i++) {
    EXPECT_EQ((*root)[i], on_bad[i] ? 111u : 500 + i)
        << "record " << i << (on_bad[i] ? " from a poisoned line was applied"
                                        : " from a healthy line was skipped");
  }
}

// ---------------------------------------------------------------------------
// Writeback adversaries: every spontaneous-writeback schedule — nothing
// persists, everything persists, logs-before-data, data-before-logs — must
// leave a recoverable, durably-linearizable heap.

class AdversaryTest : public ::testing::TestWithParam<nvm::WritebackAdversary> {};

TEST_P(AdversaryTest, BankSurvivesEveryWritebackSchedule) {
  for (auto algo : {ptm::Algo::kOrecLazy, ptm::Algo::kOrecEager}) {
    for (uint64_t trial = 0; trial < 4; trial++) {
      auto cfg = test::crash_cfg(nvm::Domain::kAdr);
      cfg.torn_stores = true;
      cfg.writeback_adversary = GetParam();
      fault::CrashHarness h(cfg, algo);
      sim::RealContext ctx(0, 4);
      auto* bal = h.pool.root<uint64_t[16]>();
      h.rt.run(ctx, [&](ptm::Tx& tx) {
        for (int i = 0; i < 16; i++) tx.write(&(*bal)[i], uint64_t{100});
      });

      util::Rng rng(2200 + trial);
      const bool crashed = test::run_crash_trial(
          h, ctx, 20 + rng.next_bounded(500), trial * 7 + 3,
          [&] {
            for (int t = 0; t < 150; t++) {
              const uint64_t a = rng.next_bounded(16);
              const uint64_t b = (a + 1 + rng.next_bounded(15)) % 16;
              h.rt.run(ctx, [&](ptm::Tx& tx) {
                const uint64_t fa = tx.read(&(*bal)[a]);
                const uint64_t fb = tx.read(&(*bal)[b]);
                const uint64_t amt = fa > 9 ? 9 : fa;
                tx.write(&(*bal)[a], fa - amt);
                tx.write(&(*bal)[b], fb + amt);
              });
            }
          },
          /*check_oracle=*/true, /*image_seed=*/trial + 40);
      (void)crashed;  // short schedules may outrun the arm point: still verified

      uint64_t total = 0;
      h.rt.run(ctx, [&](ptm::Tx& tx) {
        total = 0;
        for (int i = 0; i < 16; i++) total += tx.read(&(*bal)[i]);
      });
      EXPECT_EQ(total, 16u * 100u)
          << ptm::algo_suffix(algo) << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, AdversaryTest,
    ::testing::Values(nvm::WritebackAdversary::kRandom, nvm::WritebackAdversary::kNone,
                      nvm::WritebackAdversary::kAll, nvm::WritebackAdversary::kLogFirst,
                      nvm::WritebackAdversary::kDataFirst),
    [](const ::testing::TestParamInfo<nvm::WritebackAdversary>& i) {
      switch (i.param) {
        case nvm::WritebackAdversary::kRandom: return "random";
        case nvm::WritebackAdversary::kNone: return "none";
        case nvm::WritebackAdversary::kAll: return "all";
        case nvm::WritebackAdversary::kLogFirst: return "log_first";
        case nvm::WritebackAdversary::kDataFirst: return "data_first";
      }
      return "unknown";
    });

// ---------------------------------------------------------------------------
// The oracle itself must not be vacuous: a heap word that silently changes
// outside the recorded history has to fail verification.

TEST(Oracle, DetectsSilentHeapCorruption) {
  fault::CrashHarness h(test::crash_cfg(), ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 4);
  auto* bal = h.pool.root<uint64_t[8]>();
  h.rt.run(ctx, [&](ptm::Tx& tx) {
    for (int i = 0; i < 8; i++) tx.write(&(*bal)[i], uint64_t{50});
  });

  // No crash (the arm point is far past the run): every transaction
  // commits, so the oracle's expectation is exact — no in-flight subset
  // could explain a divergent word.
  util::Rng rng(91);
  test::run_crash_trial(h, ctx, 1ull << 40, 3, [&] {
    for (int t = 0; t < 40; t++) {
      const uint64_t a = rng.next_bounded(8);
      const uint64_t b = (a + 1) % 8;
      h.rt.run(ctx, [&](ptm::Tx& tx) {
        const uint64_t fa = tx.read(&(*bal)[a]);
        const uint64_t fb = tx.read(&(*bal)[b]);
        tx.write(&(*bal)[a], fa - 1);
        tx.write(&(*bal)[b], fb + 1);
      });
    }
    // Touch the word the corruption below will target, so it is
    // provably part of the recorded history.
    h.rt.run(ctx, [&](ptm::Tx& tx) {
      tx.write(&(*bal)[3], tx.read(&(*bal)[3]) + 2);
    });
  });

  // run_crash_trial already asserted verify().ok. Now change one word
  // behind the PTM's back: the oracle must notice.
  (*bal)[3] += 5;
  const auto res = h.verify();
  EXPECT_FALSE(res.ok) << "oracle accepted a corrupted heap";
  EXPECT_FALSE(res.detail.empty());
  (*bal)[3] -= 5;
  EXPECT_TRUE(h.verify().ok) << "oracle verdict not restored after undo";
}

// ---------------------------------------------------------------------------
// The log-range registration table is best-effort but never silent: drops
// past its fixed capacity are counted.

TEST(LogRanges, DropsPastTableCapacityAreCounted) {
  auto cfg = test::crash_cfg();
  nvm::Pool pool(cfg);
  auto& mem = pool.mem();
  const uint64_t before = mem.log_range_drops();
  // A fresh pool registers no extra ranges; fill the table and overflow it.
  for (uint64_t i = 0; i < nvm::Memory::kMaxExtraLogRanges + 3; i++) {
    mem.add_log_line_range(1000 + 2 * i, 1000 + 2 * i + 1);
  }
  EXPECT_EQ(mem.log_range_drops(), before + 3);
}

// ---------------------------------------------------------------------------
// Mirror-seal path: with log_mirror on, a commit writes both copies of
// every record plus the replica COMMITTED header (its own fence batch, see
// docs/LOGGING.md). Crash at every persistence event of that sequence —
// both algorithms, all four durability domains, torn stores on — and the
// outcome must be all-or-nothing with zero lost records: whichever copies
// survive, they agree or recovery prefers the consistent one.

class MirrorSealSweep
    : public ::testing::TestWithParam<std::tuple<ptm::Algo, nvm::Domain>> {};

TEST_P(MirrorSealSweep, CrashAtEveryEventLosesNothing) {
  const auto [algo, domain] = GetParam();
  // One probe run measures the event count of the mirrored commit.
  uint64_t total_events = 0;
  {
    auto cfg = test::crash_cfg(domain);
    cfg.log_mirror = true;
    cfg.torn_stores = true;
    nvm::Pool pool(cfg);
    ptm::Runtime rt(pool, algo);
    sim::RealContext ctx(0, 4);
    auto* cells = pool.root<std::array<uint64_t, 8>>();
    const uint64_t before = pool.mem().persistence_events();
    rt.run(ctx, [&](ptm::Tx& tx) {
      for (int i = 0; i < 8; i++) tx.write(&(*cells)[i], static_cast<uint64_t>(i));
    });
    total_events = pool.mem().persistence_events() - before;
  }
  ASSERT_GT(total_events, 0u);

  for (uint64_t k = 1; k <= total_events; k++) {
    auto cfg = test::crash_cfg(domain);
    cfg.log_mirror = true;
    cfg.torn_stores = true;
    fault::CrashHarness h(cfg, algo);
    sim::RealContext ctx(0, 4);
    auto* cells = h.pool.root<std::array<uint64_t, 8>>();
    for (int i = 0; i < 8; i++) (*cells)[i] = 100;
    h.seal_initial_state();

    h.run_until_crash(k, /*crash_seed=*/1000 + k, [&] {
      h.rt.run(ctx, [&](ptm::Tx& tx) {
        for (int i = 0; i < 8; i++) tx.write(&(*cells)[i], static_cast<uint64_t>(i));
      });
    });
    h.power_fail_and_recover(ctx, /*image_seed=*/k);

    test::expect_clean_recovery(h.report);
    EXPECT_TRUE(h.report.mirror_enabled);
    EXPECT_EQ(h.report.records_lost, 0u) << "event " << k << "/" << total_events;
    const auto res = h.verify();
    EXPECT_TRUE(res.ok) << "event " << k << "/" << total_events << ": " << res.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgosAllDomains, MirrorSealSweep,
    ::testing::Combine(::testing::Values(ptm::Algo::kOrecLazy, ptm::Algo::kOrecEager),
                       ::testing::Values(nvm::Domain::kAdr, nvm::Domain::kEadr,
                                         nvm::Domain::kPdram, nvm::Domain::kPdramLite)),
    [](const auto& pinfo) {
      const ptm::Algo algo = std::get<0>(pinfo.param);
      const nvm::Domain domain = std::get<1>(pinfo.param);
      std::string n = algo == ptm::Algo::kOrecLazy ? "Lazy" : "Eager";
      switch (domain) {
        case nvm::Domain::kAdr: return n + "Adr";
        case nvm::Domain::kEadr: return n + "Eadr";
        case nvm::Domain::kPdram: return n + "Pdram";
        case nvm::Domain::kPdramLite: return n + "PdramLite";
      }
      return n;
    });

}  // namespace
