#include <gtest/gtest.h>

#include "nvm/cache_model.h"
#include "nvm/channel.h"
#include "nvm/dram_cache.h"
#include "nvm/pool.h"
#include "nvm/wpq.h"
#include "sim/engine.h"
#include "test_common.h"

// ---------------------------------------------------------------- channel

TEST(Channel, NoWaitWhenIdle) {
  nvm::BandwidthChannel ch;
  auto g = ch.request(1000, 20);
  EXPECT_EQ(g.wait_ns, 0u);
  EXPECT_EQ(g.done_ns, 1020u);
}

TEST(Channel, BackToBackRequestsQueue) {
  nvm::BandwidthChannel ch;
  ch.request(0, 20);
  auto g = ch.request(0, 20);
  EXPECT_EQ(g.wait_ns, 20u);
  EXPECT_EQ(g.done_ns, 40u);
  EXPECT_EQ(ch.backlog_ns(0), 40u);
}

TEST(Channel, IdleGapDrainsBacklog) {
  nvm::BandwidthChannel ch;
  ch.request(0, 20);
  auto g = ch.request(100, 20);
  EXPECT_EQ(g.wait_ns, 0u);
  EXPECT_EQ(ch.backlog_ns(100), 20u);
}

// ---------------------------------------------------------------- wpq

TEST(Wpq, SfenceWaitsForWorkerDrain) {
  nvm::BandwidthChannel ch;
  nvm::Wpq wpq(64, 4);
  const uint64_t done = wpq.enqueue(1, 0, ch, 27.0, 94.0);
  EXPECT_EQ(done, 94u);  // latency floor dominates when idle
  EXPECT_EQ(wpq.worker_drain_ns(1), 94u);
  EXPECT_EQ(wpq.worker_drain_ns(0), 0u);
}

TEST(Wpq, FullQueueForcesStall) {
  nvm::BandwidthChannel ch;
  nvm::Wpq wpq(4, 1);
  for (int i = 0; i < 4; i++) wpq.enqueue(0, 0, ch, 27.0, 94.0);
  // All 4 in flight at t=0: the oldest completes at 94.
  EXPECT_GE(wpq.stall_until_ns(0), 94u);
  // Once the oldest drains, a slot is free.
  EXPECT_EQ(wpq.stall_until_ns(200), 200u);
}

TEST(Wpq, ThroughputBoundedByServiceTime) {
  nvm::BandwidthChannel ch;
  nvm::Wpq wpq(64, 1);
  uint64_t last = 0;
  for (int i = 0; i < 100; i++) last = wpq.enqueue(0, 0, ch, 27.0, 94.0);
  // 100 lines at 27 ns service each: completion ~ 100*27.
  EXPECT_GE(last, 2700u);
  EXPECT_LE(last, 2800u);
}

// ---------------------------------------------------------------- caches

TEST(CacheModel, HitAfterInstall) {
  nvm::CacheModel l3(64 * 1024, 16);
  EXPECT_FALSE(l3.access(5, false).hit);
  EXPECT_TRUE(l3.access(5, false).hit);
}

TEST(CacheModel, LruEvictionWithinSet) {
  nvm::CacheModel l3(4 * 64, 4);  // one set of 4 ways
  ASSERT_EQ(l3.num_sets(), 1u);
  for (uint64_t i = 0; i < 4; i++) l3.access(i, false);
  l3.access(0, false);            // refresh 0; LRU is now 1
  auto r = l3.access(100, true);  // install: evicts 1 (clean -> no wb)
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(r.evicted_dirty_line, nvm::CacheModel::kNoLine);
  EXPECT_TRUE(l3.access(0, false).hit);
  EXPECT_FALSE(l3.access(1, false).hit);  // got evicted
}

TEST(CacheModel, DirtyEvictionReportsLine) {
  nvm::CacheModel l3(2 * 64, 2);  // one set, 2 ways
  l3.access(1, true);             // dirty
  l3.access(2, false);
  auto r = l3.access(3, false);  // evicts LRU = line 1 (dirty)
  EXPECT_EQ(r.evicted_dirty_line, 1u);
}

TEST(CacheModel, CleanDropsDirtyBit) {
  nvm::CacheModel l3(2 * 64, 2);
  l3.access(1, true);
  EXPECT_TRUE(l3.clean(1));   // was dirty
  EXPECT_FALSE(l3.clean(1));  // now clean
  EXPECT_FALSE(l3.clean(99));  // absent
}

TEST(DramCache, DirectMappedConflict) {
  nvm::DramCacheDirectory dir(64 * 8);  // 8 slots
  EXPECT_FALSE(dir.access(3, true).hit);
  EXPECT_TRUE(dir.access(3, false).hit);
  // 3 and 11 collide (11 % 8 == 3): dirty victim reported.
  auto r = dir.access(11, false);
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(r.evicted_dirty_line, 3u);
}

// ---------------------------------------------------------------- pool

TEST(Pool, LayoutIsSane) {
  auto cfg = test::small_cfg();
  nvm::Pool pool(cfg);
  auto* h = pool.header();
  EXPECT_EQ(h->magic, nvm::Pool::kMagic);
  EXPECT_EQ(h->size, cfg.pool_size);
  EXPECT_GT(h->heap_off, h->meta_off);
  EXPECT_GT(pool.heap_bytes(), 1u << 20);
  // Worker meta slots are disjoint.
  EXPECT_EQ(pool.worker_meta(1) - pool.worker_meta(0),
            static_cast<ptrdiff_t>(cfg.per_worker_meta_bytes));
  EXPECT_TRUE(pool.contains(pool.heap_base()));
  EXPECT_FALSE(pool.contains(&cfg));
}

TEST(Pool, OffsetRoundTrip) {
  nvm::Pool pool(test::small_cfg());
  char* p = pool.heap_base() + 1234;
  EXPECT_EQ(pool.at(pool.offset_of(p)), p);
}

TEST(Pool, RootAreaIsStable) {
  nvm::Pool pool(test::small_cfg());
  struct R {
    uint64_t a, b;
  };
  pool.root<R>()->a = 77;
  EXPECT_EQ(pool.root<R>()->a, 77u);
}

// ------------------------------------------------- memory timing (DES)

namespace {

// Run a single DES worker over `body` and return its simulated duration.
uint64_t timed(nvm::Pool& pool, const std::function<void(sim::ExecContext&)>& body) {
  (void)pool;
  sim::Engine e(1);
  e.run(body);
  return e.elapsed_ns();
}

}  // namespace

TEST(MemoryTiming, OptaneLoadSlowerThanDram) {
  auto mk = [](nvm::Media m) {
    auto cfg = test::small_cfg(nvm::Domain::kEadr, m);
    return cfg;
  };
  uint64_t t_dram, t_optane;
  {
    nvm::Pool pool(mk(nvm::Media::kDram));
    t_dram = timed(pool, [&](sim::ExecContext& ctx) {
      for (int i = 0; i < 1000; i++) {
        // Stride by 64 lines so every access misses the small L3.
        auto* w = reinterpret_cast<uint64_t*>(pool.heap_base() + (i * 64 * 67) % (16 << 20));
        pool.mem().load_word(ctx, nullptr, w, nvm::Space::kData);
      }
    });
  }
  {
    nvm::Pool pool(mk(nvm::Media::kOptane));
    t_optane = timed(pool, [&](sim::ExecContext& ctx) {
      for (int i = 0; i < 1000; i++) {
        auto* w = reinterpret_cast<uint64_t*>(pool.heap_base() + (i * 64 * 67) % (16 << 20));
        pool.mem().load_word(ctx, nullptr, w, nvm::Space::kData);
      }
    });
  }
  EXPECT_GT(t_optane, t_dram * 2);
}

TEST(MemoryTiming, L3HitsAreCheap) {
  auto cfg = test::small_cfg(nvm::Domain::kEadr, nvm::Media::kOptane);
  nvm::Pool pool(cfg);
  stats::TxCounters c;
  const uint64_t t = timed(pool, [&](sim::ExecContext& ctx) {
    auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());
    for (int i = 0; i < 1000; i++) pool.mem().load_word(ctx, &c, w, nvm::Space::kData);
  });
  EXPECT_EQ(c.l3_misses, 1u);
  EXPECT_EQ(c.l3_hits, 999u);
  EXPECT_LT(t, 1000u * 25);  // ~l3_hit_ns each, not optane_load_ns
}

TEST(MemoryTiming, AdrClwbAndFenceCost) {
  auto cfg = test::small_cfg(nvm::Domain::kAdr, nvm::Media::kOptane);
  nvm::Pool pool(cfg);
  stats::TxCounters c;
  const uint64_t t = timed(pool, [&](sim::ExecContext& ctx) {
    auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());
    pool.mem().store_word(ctx, &c, w, 1, nvm::Space::kData);
    pool.mem().clwb(ctx, &c, w);
    pool.mem().sfence(ctx, &c);
  });
  EXPECT_EQ(c.clwbs, 1u);
  EXPECT_EQ(c.sfences, 1u);
  // The fence must wait for the ~94ns drain of the clwb'd line.
  EXPECT_GT(t, 94u);
}

TEST(MemoryTiming, EadrElidesFlushes) {
  auto cfg = test::small_cfg(nvm::Domain::kEadr, nvm::Media::kOptane);
  nvm::Pool pool(cfg);
  stats::TxCounters c;
  const uint64_t t = timed(pool, [&](sim::ExecContext& ctx) {
    auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());
    pool.mem().store_word(ctx, &c, w, 1, nvm::Space::kData);
    pool.mem().clwb(ctx, &c, w);
    pool.mem().sfence(ctx, &c);
  });
  EXPECT_EQ(c.clwbs, 0u);   // not even counted: the instruction is elided
  EXPECT_EQ(c.sfences, 0u);
  EXPECT_LT(t, 94u + 250u);
}

TEST(MemoryTiming, ElideFencesSkipsDrainButCountsClwb) {
  auto cfg = test::small_cfg(nvm::Domain::kAdr, nvm::Media::kOptane);
  cfg.elide_fences = true;
  nvm::Pool pool(cfg);
  stats::TxCounters c;
  timed(pool, [&](sim::ExecContext& ctx) {
    auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());
    pool.mem().store_word(ctx, &c, w, 1, nvm::Space::kData);
    pool.mem().clwb(ctx, &c, w);
    pool.mem().sfence(ctx, &c);
  });
  EXPECT_EQ(c.clwbs, 1u);
  EXPECT_EQ(c.sfences, 1u);
  EXPECT_EQ(c.fence_wait_ns, 0u);
}

TEST(MemoryTiming, PdramHitsDramLatency) {
  auto cfg = test::small_cfg(nvm::Domain::kPdram, nvm::Media::kOptane);
  nvm::Pool pool(cfg);
  stats::TxCounters c;
  timed(pool, [&](sim::ExecContext& ctx) {
    auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());
    // First access: L3 miss + directory miss (fetch from Optane).
    pool.mem().load_word(ctx, &c, w, nvm::Space::kData);
  });
  EXPECT_EQ(c.dram_cache_misses, 1u);
  // Re-run with a line working set larger than L3 (1MB = 16384 lines) but
  // inside the 4MB directory: the second sweep thrashes L3 (sequential LRU
  // scan) yet hits the DRAM cache.
  stats::TxCounters c2;
  timed(pool, [&](sim::ExecContext& ctx) {
    for (int rep = 0; rep < 2; rep++) {
      for (int i = 0; i < 20000; i++) {
        auto* w = reinterpret_cast<uint64_t*>(pool.heap_base() + i * 64);
        pool.mem().load_word(ctx, &c2, w, nvm::Space::kData);
      }
    }
  });
  EXPECT_GT(c2.dram_cache_hits, 15000u);
}

TEST(MemoryTiming, TouchLinesModelsVirtualPayloads) {
  auto cfg = test::small_cfg(nvm::Domain::kEadr, nvm::Media::kOptane);
  nvm::Pool pool(cfg);
  stats::TxCounters c;
  const uint64_t base = pool.mem().virtual_line_base();
  const uint64_t t = timed(pool, [&](sim::ExecContext& ctx) {
    pool.mem().touch_lines(ctx, &c, base, 16, false, nvm::Space::kData);
  });
  EXPECT_EQ(c.pmem_loads, 16u);
  EXPECT_EQ(c.l3_misses, 16u);
  EXPECT_GT(t, 16u * 200);  // 16 cold Optane line reads
}

// --------------------------------------------- crash shadow semantics

TEST(CrashSim, AdrUnflushedStoreIsLost) {
  auto cfg = test::small_cfg(nvm::Domain::kAdr, nvm::Media::kOptane, /*crash_sim=*/true);
  cfg.crash_evict_prob = 0.0;  // strict adversary: nothing persists uninvited
  cfg.crash_pending_prob = 0.0;
  nvm::Pool pool(cfg);
  sim::RealContext ctx;
  auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());
  pool.mem().store_word(ctx, nullptr, w, 42, nvm::Space::kData);
  util::Rng rng(1);
  pool.simulate_power_failure(rng);
  EXPECT_EQ(*w, 0u);
}

TEST(CrashSim, AdrFencedStoreSurvives) {
  auto cfg = test::small_cfg(nvm::Domain::kAdr, nvm::Media::kOptane, /*crash_sim=*/true);
  cfg.crash_evict_prob = 0.0;
  cfg.crash_pending_prob = 0.0;
  nvm::Pool pool(cfg);
  sim::RealContext ctx;
  auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());
  pool.mem().store_word(ctx, nullptr, w, 42, nvm::Space::kData);
  pool.mem().clwb(ctx, nullptr, w);
  pool.mem().sfence(ctx, nullptr);
  util::Rng rng(1);
  pool.simulate_power_failure(rng);
  EXPECT_EQ(*w, 42u);
}

TEST(CrashSim, AdrClwbWithoutFenceMayOrMayNotPersist) {
  for (const double prob : {0.0, 1.0}) {
    auto cfg = test::small_cfg(nvm::Domain::kAdr, nvm::Media::kOptane, /*crash_sim=*/true);
    cfg.crash_evict_prob = 0.0;
    cfg.crash_pending_prob = prob;
    nvm::Pool pool(cfg);
    sim::RealContext ctx;
    auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());
    pool.mem().store_word(ctx, nullptr, w, 42, nvm::Space::kData);
    pool.mem().clwb(ctx, nullptr, w);  // no fence
    util::Rng rng(1);
    pool.simulate_power_failure(rng);
    EXPECT_EQ(*w, prob == 1.0 ? 42u : 0u);
  }
}

TEST(CrashSim, EadrEverythingPersists) {
  auto cfg = test::small_cfg(nvm::Domain::kEadr, nvm::Media::kOptane, /*crash_sim=*/true);
  nvm::Pool pool(cfg);
  sim::RealContext ctx;
  auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());
  pool.mem().store_word(ctx, nullptr, w, 7, nvm::Space::kData);  // no flush at all
  util::Rng rng(1);
  pool.simulate_power_failure(rng);
  EXPECT_EQ(*w, 7u);
}

TEST(CrashSim, ClwbCapturesContentAtFlushTime) {
  auto cfg = test::small_cfg(nvm::Domain::kAdr, nvm::Media::kOptane, /*crash_sim=*/true);
  cfg.crash_evict_prob = 0.0;
  cfg.crash_pending_prob = 0.0;
  nvm::Pool pool(cfg);
  sim::RealContext ctx;
  auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());
  pool.mem().store_word(ctx, nullptr, w, 1, nvm::Space::kData);
  pool.mem().clwb(ctx, nullptr, w);
  pool.mem().sfence(ctx, nullptr);
  // Overwrite after the fence, without flushing the new value.
  pool.mem().store_word(ctx, nullptr, w, 2, nvm::Space::kData);
  util::Rng rng(1);
  pool.simulate_power_failure(rng);
  EXPECT_EQ(*w, 1u);  // the fenced value, not the later dirty one
}

TEST(CrashSim, CheckpointMakesStateDurable) {
  auto cfg = test::small_cfg(nvm::Domain::kAdr, nvm::Media::kOptane, /*crash_sim=*/true);
  cfg.crash_evict_prob = 0.0;
  cfg.crash_pending_prob = 0.0;
  nvm::Pool pool(cfg);
  sim::RealContext ctx;
  auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());
  pool.mem().store_word(ctx, nullptr, w, 9, nvm::Space::kData);
  pool.mem().checkpoint_all_persistent();
  util::Rng rng(1);
  pool.simulate_power_failure(rng);
  EXPECT_EQ(*w, 9u);
}
