#include <gtest/gtest.h>

#include <map>

#include "containers/hashmap.h"
#include "ptm/runtime.h"
#include "sim/engine.h"
#include "test_common.h"

namespace {

struct Root {
  cont::HashMap::Handle map;
};

class HashMapTest : public ::testing::TestWithParam<ptm::Algo> {
 protected:
  HashMapTest() : fx_(test::small_cfg(nvm::Domain::kEadr), GetParam()) {
    h_ = &fx_.pool.root<Root>()->map;
    fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { cont::HashMap::create(tx, h_, 64); });
  }

  bool insert(uint64_t k, uint64_t v) {
    bool r = false;
    fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { r = cont::HashMap::insert(tx, h_, k, v); });
    return r;
  }
  bool lookup(uint64_t k, uint64_t* out = nullptr) {
    bool r = false;
    fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { r = cont::HashMap::lookup(tx, h_, k, out); });
    return r;
  }
  bool update(uint64_t k, uint64_t v) {
    bool r = false;
    fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { r = cont::HashMap::update(tx, h_, k, v); });
    return r;
  }
  bool remove(uint64_t k) {
    bool r = false;
    fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { r = cont::HashMap::remove(tx, h_, k); });
    return r;
  }
  uint64_t size() {
    uint64_t n = 0;
    fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { n = cont::HashMap::size(tx, h_); });
    return n;
  }

  test::Fixture fx_;
  cont::HashMap::Handle* h_;
};

TEST_P(HashMapTest, BucketCountRoundsToPow2) {
  EXPECT_EQ(h_->nbuckets, 64u);
  cont::HashMap::Handle* extra = nullptr;
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
    extra = static_cast<cont::HashMap::Handle*>(tx.alloc(sizeof(cont::HashMap::Handle)));
    cont::HashMap::create(tx, extra, 100);
  });
  EXPECT_EQ(extra->nbuckets, 128u);
}

TEST_P(HashMapTest, InsertLookupRemove) {
  EXPECT_TRUE(insert(1, 10));
  EXPECT_FALSE(insert(1, 20));  // overwrite
  uint64_t v = 0;
  EXPECT_TRUE(lookup(1, &v));
  EXPECT_EQ(v, 20u);
  EXPECT_TRUE(remove(1));
  EXPECT_FALSE(remove(1));
  EXPECT_FALSE(lookup(1, &v));
}

TEST_P(HashMapTest, UpdateOnlyTouchesExisting) {
  EXPECT_FALSE(update(5, 1));
  insert(5, 1);
  EXPECT_TRUE(update(5, 2));
  uint64_t v = 0;
  lookup(5, &v);
  EXPECT_EQ(v, 2u);
}

TEST_P(HashMapTest, ChainsHandleCollisions) {
  // 64 buckets, 512 keys: every bucket chains.
  for (uint64_t k = 0; k < 512; k++) ASSERT_TRUE(insert(k, k + 1));
  EXPECT_EQ(size(), 512u);
  for (uint64_t k = 0; k < 512; k++) {
    uint64_t v = 0;
    ASSERT_TRUE(lookup(k, &v));
    ASSERT_EQ(v, k + 1);
  }
  // Remove middle-of-chain keys.
  for (uint64_t k = 0; k < 512; k += 3) ASSERT_TRUE(remove(k));
  for (uint64_t k = 0; k < 512; k++) {
    EXPECT_EQ(lookup(k), k % 3 != 0) << k;
  }
}

TEST_P(HashMapTest, RemovedNodesAreRecycled) {
  insert(1, 1);
  insert(2, 2);
  const uint64_t hw_after_inserts = fx_.rt.allocator().high_water_bytes();
  for (int round = 0; round < 50; round++) {
    ASSERT_TRUE(remove(1));
    ASSERT_TRUE(insert(1, static_cast<uint64_t>(round)));
  }
  // Node churn must recycle via free lists, not grow the heap.
  EXPECT_EQ(fx_.rt.allocator().high_water_bytes(), hw_after_inserts);
}

TEST_P(HashMapTest, AgainstStdMapRandomized) {
  std::map<uint64_t, uint64_t> model;
  util::Rng rng(99);
  for (int i = 0; i < 3000; i++) {
    const uint64_t k = rng.next_bounded(300);
    switch (rng.next_bounded(4)) {
      case 0: {
        const uint64_t v = rng.next();
        EXPECT_EQ(insert(k, v), model.find(k) == model.end());
        model[k] = v;
        break;
      }
      case 1: {
        uint64_t v = 0;
        const bool found = lookup(k, &v);
        ASSERT_EQ(found, model.count(k) > 0);
        if (found) {
          ASSERT_EQ(v, model[k]);
        }
        break;
      }
      case 2: {
        const uint64_t v = rng.next();
        const bool present = model.count(k) > 0;
        EXPECT_EQ(update(k, v), present);
        if (present) model[k] = v;
        break;
      }
      default:
        EXPECT_EQ(remove(k), model.erase(k) > 0);
        break;
    }
  }
  EXPECT_EQ(size(), model.size());
}

TEST_P(HashMapTest, ConcurrentMixedOpsKeepSizeConsistent) {
  auto cfg = test::small_cfg(nvm::Domain::kAdr);
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, GetParam());
  auto* h = &pool.root<Root>()->map;
  sim::RealContext setup(7, 8);
  rt.run(setup, [&](ptm::Tx& tx) { cont::HashMap::create(tx, h, 128); });

  // Each worker owns a key stripe; inserts then removes half.
  constexpr int kWorkers = 4;
  sim::Engine engine(kWorkers);
  engine.run([&](sim::ExecContext& ctx) {
    const auto w = static_cast<uint64_t>(ctx.worker_id());
    for (uint64_t i = 0; i < 200; i++) {
      rt.run(ctx, [&](ptm::Tx& tx) { cont::HashMap::insert(tx, h, w * 1000 + i, i); });
    }
    for (uint64_t i = 0; i < 200; i += 2) {
      rt.run(ctx, [&](ptm::Tx& tx) { cont::HashMap::remove(tx, h, w * 1000 + i); });
    }
  });
  uint64_t n = 0;
  rt.run(setup, [&](ptm::Tx& tx) { n = cont::HashMap::size(tx, h); });
  EXPECT_EQ(n, kWorkers * 100u);
}

INSTANTIATE_TEST_SUITE_P(Algos, HashMapTest,
                         ::testing::Values(ptm::Algo::kOrecLazy, ptm::Algo::kOrecEager),
                         [](const ::testing::TestParamInfo<ptm::Algo>& i) {
                           return std::string(ptm::algo_suffix(i.param));
                         });

}  // namespace
