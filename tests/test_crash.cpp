// Crash-recovery property tests: the "linearizable durability" contract.
//
// A bank of accounts is updated by transfer transactions; a crash is
// injected after a random number of persistence events (pmem stores, clwb,
// sfence). After simulate_power_failure() + Runtime::recover(), the heap
// must reflect exactly the committed prefix of transactions: the invariant
// (constant total balance) must hold, and the account state must equal the
// last committed shadow state, except that a transaction in flight at the
// crash may appear included iff its commit record persisted.
#include <gtest/gtest.h>

#include <array>

#include "ptm/runtime.h"
#include "sim/engine.h"
#include "test_common.h"

namespace {

constexpr int kAccounts = 32;
constexpr uint64_t kInitialBalance = 1000;

struct BankRoot {
  uint64_t balance[kAccounts];
};

nvm::SystemConfig crash_cfg(ptm::Algo /*algo*/, nvm::Domain domain) {
  auto cfg = test::small_cfg(domain, nvm::Media::kOptane, /*crash_sim=*/true);
  cfg.pool_size = 16ull << 20;
  cfg.max_workers = 4;
  cfg.per_worker_meta_bytes = 1ull << 17;
  return cfg;
}

struct CrashParam {
  ptm::Algo algo;
  nvm::Domain domain;
};

std::string crash_param_name(const ::testing::TestParamInfo<CrashParam>& info) {
  std::string s = ptm::algo_suffix(info.param.algo);
  s += "_";
  s += nvm::domain_name(info.param.domain);
  for (auto& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

class CrashTest : public ::testing::TestWithParam<CrashParam> {};

void expect_total_balance(ptm::Runtime& rt, sim::ExecContext& ctx, BankRoot* root) {
  uint64_t total = 0;
  rt.run(ctx, [&](ptm::Tx& tx) {
    total = 0;
    for (int i = 0; i < kAccounts; i++) total += tx.read(&root->balance[i]);
  });
  EXPECT_EQ(total, kAccounts * kInitialBalance);
}

TEST_P(CrashTest, RecoversToCommittedPrefix_SingleThread) {
  for (uint64_t trial = 0; trial < 30; trial++) {
    auto cfg = crash_cfg(GetParam().algo, GetParam().domain);
    nvm::Pool pool(cfg);
    ptm::Runtime rt(pool, GetParam().algo);
    sim::RealContext ctx(0, 4);
    auto* root = pool.root<BankRoot>();

    // Populate, then checkpoint so the crash window covers only transfers.
    rt.run(ctx, [&](ptm::Tx& tx) {
      for (int i = 0; i < kAccounts; i++) tx.write(&root->balance[i], kInitialBalance);
    });
    pool.mem().checkpoint_all_persistent();

    util::Rng rng(1000 + trial);
    std::array<uint64_t, kAccounts> shadow;
    shadow.fill(kInitialBalance);

    // Crash after a random number of persistence events.
    pool.mem().arm_crash_after(1 + rng.next_bounded(600), 777 + trial);

    uint64_t from = 0, to = 0, amt = 0;
    bool crashed = false;
    try {
      for (int t = 0; t < 200; t++) {
        from = rng.next_bounded(kAccounts);
        to = (from + 1 + rng.next_bounded(kAccounts - 1)) % kAccounts;
        amt = rng.next_bounded(50);
        rt.run(ctx, [&](ptm::Tx& tx) {
          const uint64_t f = tx.read(&root->balance[from]);
          const uint64_t s = tx.read(&root->balance[to]);
          const uint64_t take = amt > f ? f : amt;
          tx.write(&root->balance[from], f - take);
          tx.write(&root->balance[to], s + take);
        });
        // Committed: update the shadow.
        const uint64_t take = amt > shadow[from] ? shadow[from] : amt;
        shadow[from] -= take;
        shadow[to] += take;
      }
    } catch (const nvm::CrashPoint&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << "crash must fire within 200 transfers";

    util::Rng crash_rng(99);
    pool.simulate_power_failure(crash_rng);
    rt.recover(ctx);

    // Invariant: money is conserved regardless of where the crash hit.
    expect_total_balance(rt, ctx, root);

    // State equals the committed shadow, or the shadow plus the in-flight
    // transfer (iff its commit record persisted first).
    std::array<uint64_t, kAccounts> got;
    rt.run(ctx, [&](ptm::Tx& tx) {
      for (int i = 0; i < kAccounts; i++) got[i] = tx.read(&root->balance[i]);
    });
    auto with_inflight = shadow;
    const uint64_t take = amt > with_inflight[from] ? with_inflight[from] : amt;
    with_inflight[from] -= take;
    with_inflight[to] += take;
    EXPECT_TRUE(got == shadow || got == with_inflight)
        << "trial " << trial << ": recovered state matches neither the "
        << "committed prefix nor prefix+in-flight";

    // The pool must be fully usable after recovery.
    rt.run(ctx, [&](ptm::Tx& tx) {
      const uint64_t v = tx.read(&root->balance[0]);
      tx.write(&root->balance[0], v);
    });
  }
}

TEST_P(CrashTest, RecoversUnderConcurrentWorkers) {
  for (uint64_t trial = 0; trial < 10; trial++) {
    auto cfg = crash_cfg(GetParam().algo, GetParam().domain);
    nvm::Pool pool(cfg);
    ptm::Runtime rt(pool, GetParam().algo);
    sim::RealContext setup_ctx(3, 4);
    auto* root = pool.root<BankRoot>();

    rt.run(setup_ctx, [&](ptm::Tx& tx) {
      for (int i = 0; i < kAccounts; i++) tx.write(&root->balance[i], kInitialBalance);
    });
    pool.mem().checkpoint_all_persistent();

    util::Rng seed_rng(5000 + trial);
    pool.mem().arm_crash_after(50 + seed_rng.next_bounded(3000), 31 * trial + 7);

    sim::Engine engine(3);
    bool crashed = false;
    try {
      engine.run([&](sim::ExecContext& ctx) {
        util::Rng rng(trial * 97 + static_cast<uint64_t>(ctx.worker_id()));
        for (int t = 0; t < 300; t++) {
          const uint64_t from = rng.next_bounded(kAccounts);
          const uint64_t to = (from + 1 + rng.next_bounded(kAccounts - 1)) % kAccounts;
          const uint64_t amt = rng.next_bounded(50);
          rt.run(ctx, [&](ptm::Tx& tx) {
            const uint64_t f = tx.read(&root->balance[from]);
            const uint64_t s = tx.read(&root->balance[to]);
            const uint64_t take = amt > f ? f : amt;
            tx.write(&root->balance[from], f - take);
            tx.write(&root->balance[to], s + take);
          });
        }
      });
    } catch (const nvm::CrashPoint&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed);

    util::Rng crash_rng(13);
    pool.simulate_power_failure(crash_rng);
    sim::RealContext rec_ctx(0, 4);
    rt.recover(rec_ctx);
    expect_total_balance(rt, rec_ctx, root);
  }
}

TEST_P(CrashTest, CrashDuringRecoveryIsSafe) {
  // Recovery itself is idempotent: crash in the middle of recover(), then
  // recover again — the invariant must still hold.
  auto cfg = crash_cfg(GetParam().algo, GetParam().domain);
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, GetParam().algo);
  sim::RealContext ctx(0, 4);
  auto* root = pool.root<BankRoot>();
  rt.run(ctx, [&](ptm::Tx& tx) {
    for (int i = 0; i < kAccounts; i++) tx.write(&root->balance[i], kInitialBalance);
  });
  pool.mem().checkpoint_all_persistent();

  util::Rng rng(4242);
  pool.mem().arm_crash_after(120, 9);
  bool crashed = false;
  try {
    for (int t = 0; t < 100; t++) {
      const uint64_t a = rng.next_bounded(kAccounts);
      const uint64_t b = (a + 1 + rng.next_bounded(kAccounts - 1)) % kAccounts;
      rt.run(ctx, [&](ptm::Tx& tx) {
        const uint64_t f = tx.read(&root->balance[a]);
        const uint64_t s = tx.read(&root->balance[b]);
        const uint64_t take = f > 10 ? 10 : f;
        tx.write(&root->balance[a], f - take);
        tx.write(&root->balance[b], s + take);
      });
    }
  } catch (const nvm::CrashPoint&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  pool.simulate_power_failure(rng);

  // First recovery attempt dies partway through.
  pool.mem().arm_crash_after(3, 10);
  try {
    rt.recover(ctx);
  } catch (const nvm::CrashPoint&) {
  }
  pool.simulate_power_failure(rng);

  // Second attempt completes.
  rt.recover(ctx);
  expect_total_balance(rt, ctx, root);
}

INSTANTIATE_TEST_SUITE_P(
    AlgoDomain, CrashTest,
    ::testing::Values(CrashParam{ptm::Algo::kOrecLazy, nvm::Domain::kAdr},
                      CrashParam{ptm::Algo::kOrecLazy, nvm::Domain::kEadr},
                      CrashParam{ptm::Algo::kOrecEager, nvm::Domain::kAdr},
                      CrashParam{ptm::Algo::kOrecEager, nvm::Domain::kEadr}),
    crash_param_name);

}  // namespace
