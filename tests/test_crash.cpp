// Crash-recovery property tests: the "linearizable durability" contract.
//
// A bank of accounts is updated by transfer transactions; a crash is
// injected after a random number of persistence events (pmem stores, clwb,
// sfence). After simulate_power_failure() + Runtime::recover(), the heap
// must reflect exactly the committed prefix of transactions: the invariant
// (constant total balance) must hold, and the account state must equal the
// last committed shadow state, except that a transaction in flight at the
// crash may appear included iff its commit record persisted.
//
// Trials run on fault::CrashHarness, so every recovery is additionally
// checked by the durable-linearizability oracle and for a clean
// RecoveryReport; the hand-rolled shadow comparison below is kept as an
// independent cross-check of the oracle itself.
#include <gtest/gtest.h>

#include <array>

#include "ptm/runtime.h"
#include "sim/engine.h"
#include "test_common.h"

namespace {

constexpr int kAccounts = 32;
constexpr uint64_t kInitialBalance = 1000;

struct BankRoot {
  uint64_t balance[kAccounts];
};

struct CrashParam {
  ptm::Algo algo;
  nvm::Domain domain;
};

std::string crash_param_name(const ::testing::TestParamInfo<CrashParam>& info) {
  std::string s = ptm::algo_suffix(info.param.algo);
  s += "_";
  s += nvm::domain_name(info.param.domain);
  for (auto& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

class CrashTest : public ::testing::TestWithParam<CrashParam> {};

void expect_total_balance(ptm::Runtime& rt, sim::ExecContext& ctx, BankRoot* root) {
  uint64_t total = 0;
  rt.run(ctx, [&](ptm::Tx& tx) {
    total = 0;
    for (int i = 0; i < kAccounts; i++) total += tx.read(&root->balance[i]);
  });
  EXPECT_EQ(total, kAccounts * kInitialBalance);
}

void populate(fault::CrashHarness& h, sim::ExecContext& ctx, BankRoot* root) {
  h.rt.run(ctx, [&](ptm::Tx& tx) {
    for (int i = 0; i < kAccounts; i++) tx.write(&root->balance[i], kInitialBalance);
  });
}

TEST_P(CrashTest, RecoversToCommittedPrefix_SingleThread) {
  for (uint64_t trial = 0; trial < 30; trial++) {
    fault::CrashHarness h(test::crash_cfg(GetParam().domain), GetParam().algo);
    sim::RealContext ctx(0, 4);
    auto* root = h.pool.root<BankRoot>();
    populate(h, ctx, root);

    util::Rng rng(1000 + trial);
    std::array<uint64_t, kAccounts> shadow;
    shadow.fill(kInitialBalance);

    // Crash after a random number of persistence events.
    uint64_t from = 0, to = 0, amt = 0;
    const bool crashed = test::run_crash_trial(
        h, ctx, 1 + rng.next_bounded(600), 777 + trial,
        [&] {
          for (int t = 0; t < 200; t++) {
            from = rng.next_bounded(kAccounts);
            to = (from + 1 + rng.next_bounded(kAccounts - 1)) % kAccounts;
            amt = rng.next_bounded(50);
            h.rt.run(ctx, [&](ptm::Tx& tx) {
              const uint64_t f = tx.read(&root->balance[from]);
              const uint64_t s = tx.read(&root->balance[to]);
              const uint64_t take = amt > f ? f : amt;
              tx.write(&root->balance[from], f - take);
              tx.write(&root->balance[to], s + take);
            });
            // Committed: update the shadow.
            const uint64_t take = amt > shadow[from] ? shadow[from] : amt;
            shadow[from] -= take;
            shadow[to] += take;
          }
        },
        /*check_oracle=*/true, /*image_seed=*/99);
    ASSERT_TRUE(crashed) << "crash must fire within 200 transfers";

    // Invariant: money is conserved regardless of where the crash hit.
    expect_total_balance(h.rt, ctx, root);

    // State equals the committed shadow, or the shadow plus the in-flight
    // transfer (iff its commit record persisted first).
    std::array<uint64_t, kAccounts> got;
    h.rt.run(ctx, [&](ptm::Tx& tx) {
      for (int i = 0; i < kAccounts; i++) got[i] = tx.read(&root->balance[i]);
    });
    auto with_inflight = shadow;
    const uint64_t take = amt > with_inflight[from] ? with_inflight[from] : amt;
    with_inflight[from] -= take;
    with_inflight[to] += take;
    EXPECT_TRUE(got == shadow || got == with_inflight)
        << "trial " << trial << ": recovered state matches neither the "
        << "committed prefix nor prefix+in-flight";

    // The pool must be fully usable after recovery.
    h.rt.run(ctx, [&](ptm::Tx& tx) {
      const uint64_t v = tx.read(&root->balance[0]);
      tx.write(&root->balance[0], v);
    });
  }
}

TEST_P(CrashTest, RecoversUnderConcurrentWorkers) {
  for (uint64_t trial = 0; trial < 10; trial++) {
    fault::CrashHarness h(test::crash_cfg(GetParam().domain), GetParam().algo);
    sim::RealContext setup_ctx(3, 4);
    auto* root = h.pool.root<BankRoot>();
    populate(h, setup_ctx, root);

    util::Rng seed_rng(5000 + trial);
    sim::RealContext rec_ctx(0, 4);
    const bool crashed = test::run_crash_trial(
        h, rec_ctx, 50 + seed_rng.next_bounded(3000), 31 * trial + 7,
        [&] {
          sim::Engine engine(3);
          engine.run([&](sim::ExecContext& ctx) {
            util::Rng rng(trial * 97 + static_cast<uint64_t>(ctx.worker_id()));
            for (int t = 0; t < 300; t++) {
              const uint64_t from = rng.next_bounded(kAccounts);
              const uint64_t to =
                  (from + 1 + rng.next_bounded(kAccounts - 1)) % kAccounts;
              const uint64_t amt = rng.next_bounded(50);
              h.rt.run(ctx, [&](ptm::Tx& tx) {
                const uint64_t f = tx.read(&root->balance[from]);
                const uint64_t s = tx.read(&root->balance[to]);
                const uint64_t take = amt > f ? f : amt;
                tx.write(&root->balance[from], f - take);
                tx.write(&root->balance[to], s + take);
              });
            }
          });
        },
        /*check_oracle=*/true, /*image_seed=*/13);
    ASSERT_TRUE(crashed);
    expect_total_balance(h.rt, rec_ctx, root);
  }
}

TEST_P(CrashTest, CrashDuringRecoveryIsSafe) {
  // Recovery itself is idempotent: rebuild the same crash image (same
  // workload schedule, same crash point, same writeback resolution), crash
  // the first recovery attempt at its k-th persistence event for every k
  // up to past the replay's natural length, recover again, and require the
  // invariant each time. Deterministic — any failure names its k.
  for (uint64_t k = 1; k <= 64; k++) {
    fault::CrashHarness h(test::crash_cfg(GetParam().domain), GetParam().algo);
    sim::RealContext ctx(0, 4);
    auto* root = h.pool.root<BankRoot>();
    populate(h, ctx, root);
    h.seal_initial_state();

    util::Rng rng(4242);
    const bool crashed = h.run_until_crash(120, 9, [&] {
      for (int t = 0; t < 100; t++) {
        const uint64_t a = rng.next_bounded(kAccounts);
        const uint64_t b = (a + 1 + rng.next_bounded(kAccounts - 1)) % kAccounts;
        h.rt.run(ctx, [&](ptm::Tx& tx) {
          const uint64_t f = tx.read(&root->balance[a]);
          const uint64_t s = tx.read(&root->balance[b]);
          const uint64_t take = f > 10 ? 10 : f;
          tx.write(&root->balance[a], f - take);
          tx.write(&root->balance[b], s + take);
        });
      }
    });
    ASSERT_TRUE(crashed);
    h.rt.set_observer(nullptr);
    util::Rng image_rng(77);
    h.pool.simulate_power_failure(image_rng);

    // First recovery attempt dies at persistence event k of the replay.
    h.pool.mem().arm_crash_after(k, 10 + k);
    bool rec_crashed = false;
    try {
      h.rt.recover(ctx);
    } catch (const nvm::CrashPoint&) {
      rec_crashed = true;
    }
    h.pool.simulate_power_failure(image_rng);

    // Second attempt completes.
    h.report = h.rt.recover(ctx);
    test::expect_clean_recovery(h.report);
    const auto res = h.verify();
    EXPECT_TRUE(res.ok) << "recovery crashed at event " << k << ": " << res.detail;
    expect_total_balance(h.rt, ctx, root);
    if (!rec_crashed) break;  // k ran past the whole replay; sweep is done
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgoDomain, CrashTest,
    ::testing::Values(CrashParam{ptm::Algo::kOrecLazy, nvm::Domain::kAdr},
                      CrashParam{ptm::Algo::kOrecLazy, nvm::Domain::kEadr},
                      CrashParam{ptm::Algo::kOrecEager, nvm::Domain::kAdr},
                      CrashParam{ptm::Algo::kOrecEager, nvm::Domain::kEadr}),
    crash_param_name);

}  // namespace
