#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/rng.h"
#include "util/strkey.h"
#include "util/table.h"
#include "util/zipf.h"

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(123), b(123);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  util::Rng r(7);
  for (int i = 0; i < 1000; i++) EXPECT_LT(r.next_bounded(17), 17u);
}

TEST(Rng, RangeInclusive) {
  util::Rng r(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; i++) {
    const uint64_t v = r.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    hit_lo |= (v == 3);
    hit_hi |= (v == 6);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  util::Rng r(11);
  for (int i = 0; i < 1000; i++) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChancePctExtremes) {
  util::Rng r(13);
  for (int i = 0; i < 100; i++) {
    EXPECT_FALSE(r.chance_pct(0));
    EXPECT_TRUE(r.chance_pct(100));
  }
}

TEST(Zipf, InRangeAndSkewed) {
  util::Rng r(5);
  util::ZipfGenerator z(1000, 0.99);
  uint64_t head = 0, total = 20000;
  for (uint64_t i = 0; i < total; i++) {
    const uint64_t v = z.next(r);
    ASSERT_LT(v, 1000u);
    head += (v < 10);
  }
  // With theta=0.99 the top-10 of 1000 keys draw far more than 1% of hits.
  EXPECT_GT(head, total / 20);
}

TEST(Zipf, ThetaZeroIsRoughlyUniform) {
  util::Rng r(6);
  util::ZipfGenerator z(100, 0.01);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; i++) counts[z.next(r)]++;
  for (int c : counts) EXPECT_GT(c, 100);  // expected 500 each
}

TEST(Nurand, StaysInBounds) {
  util::Rng r(8);
  for (int i = 0; i < 1000; i++) {
    const uint64_t v = util::nurand(r, 255, 10, 50);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 50u);
  }
}

TEST(Table, AlignsAndCounts) {
  util::TextTable t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("333"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  util::TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvFormat) {
  util::TextTable t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Fmt, Numbers) {
  EXPECT_EQ(util::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(util::fmt_count(1234567), "1,234,567");
  EXPECT_EQ(util::fmt_bytes(32ull << 20), "32 MB");
  EXPECT_EQ(util::fmt_bytes(1536ull << 20), "1.5 GB");
}

TEST(FixedKey, RoundTripAndCompare) {
  util::Key128 a(std::string("hello")), b(std::string("hello")), c(std::string("world"));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a < c);
  EXPECT_EQ(a.str(), "hello");
}

TEST(Fnv1a, DistinctInputsDistinctHashes) {
  std::set<uint64_t> hashes;
  for (int i = 0; i < 1000; i++) {
    hashes.insert(util::fnv1a(&i, sizeof(i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(PaddedKey, WidthAndValue) {
  EXPECT_EQ(util::padded_key(42, 6), "000042");
}
