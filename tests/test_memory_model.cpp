// Memory-system model behaviours that the figure benches rely on:
// bandwidth saturation knees, PDRAM directory routing, virtual-payload
// modelling, prewarm, and WPQ backpressure.
#include <gtest/gtest.h>

#include "nvm/pool.h"
#include "sim/engine.h"
#include "test_common.h"

namespace {

// Sweep N workers, each issuing `per_worker` strided pmem loads; returns
// aggregate simulated throughput (lines/us).
double read_throughput(nvm::Media media, int workers) {
  auto cfg = test::small_cfg(nvm::Domain::kEadr, media);
  cfg.l3_bytes = 16 << 10;  // effectively always miss
  cfg.max_workers = 33;
  nvm::Pool pool(cfg);
  sim::Engine e(workers);
  constexpr int kPer = 1500;
  e.run([&](sim::ExecContext& ctx) {
    const auto base = static_cast<uint64_t>(ctx.worker_id()) * (512 << 10);
    for (int i = 0; i < kPer; i++) {
      auto* w = reinterpret_cast<uint64_t*>(pool.heap_base() + base + (i * 64) % (256 << 10));
      pool.mem().load_word(ctx, nullptr, w, nvm::Space::kData);
    }
  });
  return static_cast<double>(workers) * kPer * 1e3 / static_cast<double>(e.elapsed_ns());
}

TEST(Saturation, OptaneReadsSaturateEarlierThanDram) {
  // Per [46]/the paper: Optane read bandwidth saturates around 17 reader
  // threads while DRAM keeps scaling. Measure the 32-vs-4-worker scaling.
  const double optane_scaling = read_throughput(nvm::Media::kOptane, 32) /
                                read_throughput(nvm::Media::kOptane, 4);
  const double dram_scaling = read_throughput(nvm::Media::kDram, 32) /
                              read_throughput(nvm::Media::kDram, 4);
  EXPECT_LT(optane_scaling, dram_scaling);
  EXPECT_GT(dram_scaling, 6.0);    // DRAM still ~linear at 32 readers
  EXPECT_LT(optane_scaling, 6.0);  // Optane capped near its knee (~17)
}

TEST(Saturation, OptaneWritesSaturateEarlierThanReads) {
  // clwb-driven write streams: 4 writers should already saturate Optane.
  auto write_throughput = [](int workers) {
    auto cfg = test::small_cfg(nvm::Domain::kAdr, nvm::Media::kOptane);
    cfg.max_workers = 33;
    nvm::Pool pool(cfg);
    sim::Engine e(workers);
    constexpr int kPer = 800;
    e.run([&](sim::ExecContext& ctx) {
      // Write a small, L3-resident stripe so the stream is flush-bound
      // (write-allocate read misses would otherwise dominate the cycle).
      const auto base = static_cast<uint64_t>(ctx.worker_id()) * (16 << 10);
      for (int i = 0; i < kPer; i++) {
        auto* w = reinterpret_cast<uint64_t*>(pool.heap_base() + base + (i % 64) * 64);
        pool.mem().store_word(ctx, nullptr, w, 1, nvm::Space::kData);
        pool.mem().clwb(ctx, nullptr, w);
        pool.mem().sfence(ctx, nullptr);
      }
    });
    return static_cast<double>(workers) * kPer * 1e3 / static_cast<double>(e.elapsed_ns());
  };
  const double w8_vs_w2 = write_throughput(8) / write_throughput(2);
  EXPECT_LT(w8_vs_w2, 3.0);  // nowhere near the 4x of linear scaling
}

TEST(Pdram, DirectoryHitCostsDramNotOptane) {
  auto cfg = test::small_cfg(nvm::Domain::kPdram, nvm::Media::kOptane);
  cfg.l3_bytes = 16 << 10;
  cfg.dram_cache_bytes = 64 << 20;  // directory holds the whole pool
  nvm::Pool pool(cfg);
  pool.mem().prewarm_directory(0, pool.size() / 64);

  stats::TxCounters c;
  sim::Engine e(1);
  e.run([&](sim::ExecContext& ctx) {
    for (int i = 0; i < 1000; i++) {
      auto* w = reinterpret_cast<uint64_t*>(pool.heap_base() + (i * 64) % (4 << 20));
      pool.mem().load_word(ctx, &c, w, nvm::Space::kData);
    }
  });
  EXPECT_EQ(c.dram_cache_misses, 0u);  // prewarmed
  EXPECT_EQ(c.dram_cache_hits, c.l3_misses);
  // Mean per-access cost is DRAM-scale (<120ns), not Optane-scale (>240).
  EXPECT_LT(e.elapsed_ns() / 1000, 120u);
}

TEST(Pdram, ColdDirectoryPaysOptaneFetch) {
  auto cfg = test::small_cfg(nvm::Domain::kPdram, nvm::Media::kOptane);
  cfg.l3_bytes = 16 << 10;
  nvm::Pool pool(cfg);
  stats::TxCounters c;
  sim::Engine e(1);
  e.run([&](sim::ExecContext& ctx) {
    for (int i = 0; i < 500; i++) {
      auto* w = reinterpret_cast<uint64_t*>(pool.heap_base() + i * 64);
      pool.mem().load_word(ctx, &c, w, nvm::Space::kData);
    }
  });
  EXPECT_EQ(c.dram_cache_misses, 500u);
  EXPECT_GT(e.elapsed_ns() / 500, 240u);
}

TEST(Pdram, PrewarmIsNoOpForOtherDomains) {
  auto cfg = test::small_cfg(nvm::Domain::kEadr, nvm::Media::kOptane);
  nvm::Pool pool(cfg);
  pool.mem().prewarm_directory(0, 1000);  // must be harmless
  stats::TxCounters c;
  sim::Engine e(1);
  e.run([&](sim::ExecContext& ctx) {
    pool.mem().load_word(ctx, &c, reinterpret_cast<uint64_t*>(pool.heap_base()),
                         nvm::Space::kData);
  });
  EXPECT_EQ(c.dram_cache_hits, 0u);
}

TEST(PdramLite, LogAccessesCostDramDataCostsOptane) {
  auto cfg = test::small_cfg(nvm::Domain::kPdramLite, nvm::Media::kOptane);
  cfg.l3_bytes = 16 << 10;
  nvm::Pool pool(cfg);

  auto time_loads = [&](char* base, nvm::Space space) {
    sim::Engine e(1);
    e.run([&](sim::ExecContext& ctx) {
      for (int i = 0; i < 500; i++) {
        auto* w = reinterpret_cast<uint64_t*>(base + (i * 64) % (64 << 10));
        pool.mem().load_word(ctx, nullptr, w, space);
      }
    });
    return e.elapsed_ns();
  };
  const uint64_t log_time = time_loads(pool.worker_meta(0), nvm::Space::kLog);
  // Use a heap region disjoint in cache sets from the log region.
  const uint64_t data_time = time_loads(pool.heap_base() + (1 << 20), nvm::Space::kData);
  EXPECT_LT(log_time * 2, data_time);  // DRAM log ~3x cheaper than Optane data
}

TEST(VirtualLines, BehaveLikeRealLinesInTheModel) {
  auto cfg = test::small_cfg(nvm::Domain::kEadr, nvm::Media::kOptane);
  cfg.l3_bytes = 1 << 20;
  nvm::Pool pool(cfg);
  const uint64_t base = pool.mem().virtual_line_base();
  stats::TxCounters c;
  sim::Engine e(1);
  e.run([&](sim::ExecContext& ctx) {
    pool.mem().touch_lines(ctx, &c, base, 64, false, nvm::Space::kData);  // cold
    pool.mem().touch_lines(ctx, &c, base, 64, false, nvm::Space::kData);  // hot
  });
  EXPECT_EQ(c.l3_misses, 64u);
  EXPECT_EQ(c.l3_hits, 64u);
}

TEST(Wpq, BackpressureStallsRecordedInCounters) {
  auto cfg = test::small_cfg(nvm::Domain::kAdr, nvm::Media::kOptane);
  cfg.cost.wpq_capacity = 4;  // tiny queue: bursts must stall
  nvm::Pool pool(cfg);
  stats::TxCounters c;
  sim::Engine e(1);
  e.run([&](sim::ExecContext& ctx) {
    // Tight clwb burst (no intervening store misses): enqueue rate beats
    // the drain rate, so the 4-deep queue must backpressure.
    for (int i = 0; i < 64; i++) {
      pool.mem().clwb(ctx, &c, pool.heap_base() + i * 64);
    }
    pool.mem().sfence(ctx, &c);
  });
  EXPECT_GT(c.wpq_stall_ns, 0u);
  EXPECT_GT(c.fence_wait_ns, 0u);
}

}  // namespace
