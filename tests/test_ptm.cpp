// Single-threaded PTM semantics, parameterized over (algorithm, domain,
// media): the transactional contract must hold identically in every
// configuration the paper evaluates.
#include <gtest/gtest.h>

#include "ptm/runtime.h"
#include "test_common.h"

namespace {

struct Param {
  ptm::Algo algo;
  nvm::Domain domain;
  nvm::Media media;
};

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string s = ptm::algo_suffix(info.param.algo);
  s += "_";
  s += nvm::domain_name(info.param.domain);
  s += "_";
  s += nvm::media_name(info.param.media);
  // gtest names must be alphanumeric.
  for (auto& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

class PtmTest : public ::testing::TestWithParam<Param> {
 protected:
  PtmTest()
      : fx_(test::small_cfg(GetParam().domain, GetParam().media), GetParam().algo) {}
  test::Fixture fx_;

  struct Root {
    uint64_t a, b, c;
    uint64_t list_head;
  };
  Root* root() { return fx_.pool.root<Root>(); }
};

TEST_P(PtmTest, ReadAfterWriteInSameTx) {
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
    tx.write(&root()->a, uint64_t{5});
    EXPECT_EQ(tx.read(&root()->a), 5u);
    tx.write(&root()->a, uint64_t{6});
    EXPECT_EQ(tx.read(&root()->a), 6u);
  });
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { EXPECT_EQ(tx.read(&root()->a), 6u); });
}

TEST_P(PtmTest, CommitPublishesAllWrites) {
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
    tx.write(&root()->a, uint64_t{1});
    tx.write(&root()->b, uint64_t{2});
    tx.write(&root()->c, uint64_t{3});
  });
  EXPECT_EQ(root()->a, 1u);
  EXPECT_EQ(root()->b, 2u);
  EXPECT_EQ(root()->c, 3u);
}

TEST_P(PtmTest, UserExceptionRollsBack) {
  root()->a = 0;
  fx_.pool.mem().checkpoint_all_persistent();
  struct Boom {};
  EXPECT_THROW(fx_.rt.run(fx_.ctx,
                          [&](ptm::Tx& tx) {
                            tx.write(&root()->a, uint64_t{99});
                            throw Boom{};
                          }),
               Boom);
  // Eager rolls the in-place store back; lazy never wrote it.
  EXPECT_EQ(root()->a, 0u);
  // The runtime stays usable.
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { tx.write(&root()->a, uint64_t{1}); });
  EXPECT_EQ(root()->a, 1u);
}

TEST_P(PtmTest, SubWordAccess) {
  struct Packed {
    uint32_t x;
    uint16_t y;
    uint8_t z;
    uint8_t w;
  };
  auto* p = reinterpret_cast<Packed*>(&root()->a);
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
    tx.write(&p->x, uint32_t{0xdeadbeef});
    tx.write(&p->y, uint16_t{0x1234});
    tx.write(&p->z, uint8_t{0x56});
    EXPECT_EQ(tx.read(&p->x), 0xdeadbeefu);
    EXPECT_EQ(tx.read(&p->y), 0x1234u);
    EXPECT_EQ(tx.read(&p->z), 0x56u);
  });
  EXPECT_EQ(p->x, 0xdeadbeefu);
  EXPECT_EQ(p->y, 0x1234u);
  EXPECT_EQ(p->z, 0x56u);
}

TEST_P(PtmTest, MultiWordBytes) {
  char msg[24] = "persistent memory!!";
  auto* dst = reinterpret_cast<char*>(&root()->a);  // a,b,c = 24 bytes
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { tx.write_bytes(dst, msg, sizeof(msg)); });
  char out[24];
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { tx.read_bytes(dst, out, sizeof(out)); });
  EXPECT_EQ(std::memcmp(out, msg, sizeof(msg)), 0);
}

TEST_P(PtmTest, AllocVisibleAfterCommit) {
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
    auto* node = static_cast<uint64_t*>(tx.alloc(32));
    tx.write(node, uint64_t{0xabcd});
    tx.write(&root()->list_head, reinterpret_cast<uint64_t>(node));
  });
  auto* node = reinterpret_cast<uint64_t*>(root()->list_head);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(*node, 0xabcdu);
}

TEST_P(PtmTest, AllocReleasedOnUserAbort) {
  auto& allocator = fx_.rt.allocator();
  const uint64_t hw_before = allocator.high_water_bytes();
  struct Boom {};
  EXPECT_THROW(fx_.rt.run(fx_.ctx,
                          [&](ptm::Tx& tx) {
                            void* p = tx.alloc(64);
                            (void)p;
                            throw Boom{};
                          }),
               Boom);
  // The block went back to a free list; the next alloc of the same class
  // recycles it instead of bumping.
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { (void)tx.alloc(64); });
  EXPECT_EQ(allocator.high_water_bytes(),
            hw_before + 8 + 64);  // exactly one block was ever carved
}

TEST_P(PtmTest, DeallocAppliedOnlyAtCommit) {
  uint64_t* node = nullptr;
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
    node = static_cast<uint64_t*>(tx.alloc(48));
    tx.write(node, uint64_t{11});
  });
  auto& allocator = fx_.rt.allocator();
  struct Boom {};
  EXPECT_THROW(fx_.rt.run(fx_.ctx,
                          [&](ptm::Tx& tx) {
                            tx.dealloc(node);
                            throw Boom{};
                          }),
               Boom);
  EXPECT_FALSE(allocator.in_free_list(node));  // abort: free dropped
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { tx.dealloc(node); });
  EXPECT_TRUE(allocator.in_free_list(node));  // commit: free applied
}

TEST_P(PtmTest, CountersTrackCommits) {
  fx_.rt.reset_counters();
  for (int i = 0; i < 10; i++) {
    fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { tx.write(&root()->a, uint64_t(i)); });
  }
  const auto& c = fx_.rt.counters(0);
  EXPECT_EQ(c.commits, 10u);
  EXPECT_EQ(c.aborts, 0u);
  EXPECT_GE(c.writes, 10u);
}

TEST_P(PtmTest, AdrIssuesFencesEadrDoesNot) {
  fx_.rt.reset_counters();
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
    for (int i = 0; i < 8; i++) tx.write(&root()->a, uint64_t(i));
    tx.write(&root()->b, uint64_t{1});
  });
  const auto& c = fx_.rt.counters(0);
  if (GetParam().domain == nvm::Domain::kAdr) {
    EXPECT_GT(c.sfences, 0u);
    EXPECT_GT(c.clwbs, 0u);
  } else {
    EXPECT_EQ(c.sfences, 0u);
    EXPECT_EQ(c.clwbs, 0u);
  }
}

TEST_P(PtmTest, ReadOnlyTxLeavesNoLog) {
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { tx.write(&root()->a, uint64_t{3}); });
  fx_.rt.reset_counters();
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { EXPECT_EQ(tx.read(&root()->a), 3u); });
  EXPECT_EQ(fx_.rt.counters(0).log_bytes, 0u);
}

TEST_P(PtmTest, ExplicitAbortRetries) {
  int attempts = 0;
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
    attempts++;
    tx.write(&root()->a, uint64_t{1});
    if (attempts < 3) tx.abort_and_retry();
  });
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(root()->a, 1u);
  EXPECT_EQ(fx_.rt.counters(0).aborts, 2u);
  EXPECT_EQ(fx_.rt.counters(0).aborts_of(stats::AbortCause::kExplicit), 2u);
}

TEST_P(PtmTest, ReadConflictIsAttributed) {
  root()->a = 7;
  // Lock a's orec as a foreign owner; release it from inside the body once
  // the first attempt has aborted. The released version is current-clock,
  // so a retry (which samples the clock at begin) can read past it.
  auto& orec = fx_.rt.orecs().for_addr(&root()->a);
  orec.store(ptm::OrecTable::lock_word(99));
  int attempts = 0;
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
    attempts++;
    if (attempts >= 2) {
      orec.store(ptm::OrecTable::version_word(fx_.rt.orecs().sample_clock()));
    }
    EXPECT_EQ(tx.read(&root()->a), 7u);
  });
  EXPECT_GE(attempts, 2);
  const auto& c = fx_.rt.counters(0);
  EXPECT_GE(c.aborts_of(stats::AbortCause::kConflictRead), 1u);
  EXPECT_EQ(c.aborts_of(stats::AbortCause::kConflictRead), c.aborts);
}

TEST_P(PtmTest, WriteConflictIsAttributed) {
  // Same foreign lock, but the transaction *writes* the word: eager hits
  // it at encounter time, lazy at commit-time acquisition — both must
  // attribute the abort to a write conflict.
  auto& orec = fx_.rt.orecs().for_addr(&root()->b);
  orec.store(ptm::OrecTable::lock_word(99));
  int attempts = 0;
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
    attempts++;
    if (attempts >= 2) {
      orec.store(ptm::OrecTable::version_word(fx_.rt.orecs().sample_clock()));
    }
    tx.write(&root()->b, uint64_t{5});
  });
  EXPECT_GE(attempts, 2);
  EXPECT_EQ(root()->b, 5u);
  const auto& c = fx_.rt.counters(0);
  EXPECT_GE(c.aborts_of(stats::AbortCause::kConflictWrite), 1u);
  EXPECT_EQ(c.aborts_of(stats::AbortCause::kConflictWrite), c.aborts);
}

TEST_P(PtmTest, ValidationFailureIsAttributed) {
  root()->a = 3;
  // Read a, write b, then bump a's orec version (as a concurrent committer
  // would) before our commit: the write version no longer equals
  // start_time+1, forcing read-set validation, which must fail and be
  // attributed to kValidation.
  auto& oa = fx_.rt.orecs().for_addr(&root()->a);
  int attempts = 0;
  fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) {
    attempts++;
    EXPECT_EQ(tx.read(&root()->a), 3u);
    tx.write(&root()->b, uint64_t{9});
    if (attempts == 1) {
      oa.store(ptm::OrecTable::version_word(fx_.rt.orecs().tick()));
    }
  });
  EXPECT_GE(attempts, 2);
  EXPECT_EQ(root()->b, 9u);
  const auto& c = fx_.rt.counters(0);
  EXPECT_EQ(c.aborts_of(stats::AbortCause::kValidation), 1u);
  EXPECT_EQ(c.aborts, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, PtmTest,
    ::testing::Values(
        Param{ptm::Algo::kOrecLazy, nvm::Domain::kAdr, nvm::Media::kOptane},
        Param{ptm::Algo::kOrecLazy, nvm::Domain::kEadr, nvm::Media::kOptane},
        Param{ptm::Algo::kOrecLazy, nvm::Domain::kPdram, nvm::Media::kOptane},
        Param{ptm::Algo::kOrecLazy, nvm::Domain::kPdramLite, nvm::Media::kOptane},
        Param{ptm::Algo::kOrecLazy, nvm::Domain::kAdr, nvm::Media::kDram},
        Param{ptm::Algo::kOrecEager, nvm::Domain::kAdr, nvm::Media::kOptane},
        Param{ptm::Algo::kOrecEager, nvm::Domain::kEadr, nvm::Media::kOptane},
        Param{ptm::Algo::kOrecEager, nvm::Domain::kPdram, nvm::Media::kOptane},
        Param{ptm::Algo::kOrecEager, nvm::Domain::kAdr, nvm::Media::kDram}),
    param_name);

}  // namespace
