#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "containers/bptree.h"
#include "ptm/runtime.h"
#include "sim/engine.h"
#include "test_common.h"

namespace {

struct Root {
  uint64_t tree;
};

class BPTreeTest : public ::testing::TestWithParam<ptm::Algo> {
 protected:
  BPTreeTest() : fx_(test::small_cfg(nvm::Domain::kEadr), GetParam()) {
    root_ = &fx_.pool.root<Root>()->tree;
    fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { cont::BPlusTree::create(tx, root_); });
  }

  bool insert(uint64_t k, uint64_t v) {
    bool r = false;
    fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { r = cont::BPlusTree::insert(tx, root_, k, v); });
    return r;
  }
  bool lookup(uint64_t k, uint64_t* out = nullptr) {
    bool r = false;
    fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { r = cont::BPlusTree::lookup(tx, root_, k, out); });
    return r;
  }
  bool remove(uint64_t k) {
    bool r = false;
    fx_.rt.run(fx_.ctx, [&](ptm::Tx& tx) { r = cont::BPlusTree::remove(tx, root_, k); });
    return r;
  }
  uint64_t count(uint64_t lo, uint64_t hi) {
    uint64_t n = 0;
    fx_.rt.run(fx_.ctx,
               [&](ptm::Tx& tx) { n = cont::BPlusTree::range_count(tx, root_, lo, hi); });
    return n;
  }

  test::Fixture fx_;
  uint64_t* root_;
};

TEST_P(BPTreeTest, EmptyTreeLookupFails) {
  uint64_t v;
  EXPECT_FALSE(lookup(1, &v));
  EXPECT_EQ(count(0, ~0ull), 0u);
}

TEST_P(BPTreeTest, InsertThenLookup) {
  EXPECT_TRUE(insert(42, 420));
  uint64_t v = 0;
  EXPECT_TRUE(lookup(42, &v));
  EXPECT_EQ(v, 420u);
  EXPECT_FALSE(lookup(43, &v));
}

TEST_P(BPTreeTest, DuplicateInsertOverwrites) {
  EXPECT_TRUE(insert(7, 1));
  EXPECT_FALSE(insert(7, 2));
  uint64_t v = 0;
  EXPECT_TRUE(lookup(7, &v));
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(count(0, ~0ull), 1u);
}

TEST_P(BPTreeTest, SplitsPreserveAllKeys) {
  // Enough sequential keys to force multiple levels (fanout 16).
  constexpr uint64_t kN = 2000;
  for (uint64_t k = 0; k < kN; k++) ASSERT_TRUE(insert(k, k * 10));
  for (uint64_t k = 0; k < kN; k++) {
    uint64_t v = 0;
    ASSERT_TRUE(lookup(k, &v)) << k;
    ASSERT_EQ(v, k * 10) << k;
  }
  EXPECT_EQ(count(0, ~0ull), kN);
}

TEST_P(BPTreeTest, RandomInsertLookupRemoveAgainstStdMap) {
  std::map<uint64_t, uint64_t> model;
  util::Rng rng(2024);
  for (int i = 0; i < 4000; i++) {
    const uint64_t k = rng.next_bounded(500);
    switch (rng.next_bounded(3)) {
      case 0: {
        const uint64_t v = rng.next();
        const bool fresh = insert(k, v);
        EXPECT_EQ(fresh, model.find(k) == model.end());
        model[k] = v;
        break;
      }
      case 1: {
        uint64_t v = 0;
        const bool found = lookup(k, &v);
        const auto it = model.find(k);
        ASSERT_EQ(found, it != model.end());
        if (found) {
          ASSERT_EQ(v, it->second);
        }
        break;
      }
      default: {
        const bool removed = remove(k);
        EXPECT_EQ(removed, model.erase(k) > 0);
        break;
      }
    }
  }
  EXPECT_EQ(count(0, ~0ull), model.size());
}

TEST_P(BPTreeTest, RangeCountRespectsBounds) {
  for (uint64_t k = 0; k < 100; k++) insert(k * 2, k);  // evens 0..198
  EXPECT_EQ(count(0, 198), 100u);
  EXPECT_EQ(count(10, 20), 6u);   // 10,12,14,16,18,20
  EXPECT_EQ(count(11, 11), 0u);
  EXPECT_EQ(count(150, ~0ull), 25u);  // 150..198
}

TEST_P(BPTreeTest, DescendingAndRandomOrderInserts) {
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 800; k++) keys.push_back(k);
  util::Rng rng(7);
  for (size_t i = keys.size(); i-- > 1;) std::swap(keys[i], keys[rng.next_bounded(i + 1)]);
  for (uint64_t k : keys) ASSERT_TRUE(insert(k, k));
  EXPECT_EQ(count(0, ~0ull), 800u);
  for (uint64_t k = 800; k-- > 0;) ASSERT_TRUE(remove(k));
  EXPECT_EQ(count(0, ~0ull), 0u);
}

TEST_P(BPTreeTest, ConcurrentDisjointInsertsUnderDes) {
  auto cfg = test::small_cfg(nvm::Domain::kAdr);
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, GetParam());
  uint64_t* root = &pool.root<Root>()->tree;
  sim::RealContext setup(7, 8);
  rt.run(setup, [&](ptm::Tx& tx) { cont::BPlusTree::create(tx, root); });

  constexpr int kWorkers = 4;
  constexpr uint64_t kPer = 400;
  sim::Engine engine(kWorkers);
  engine.run([&](sim::ExecContext& ctx) {
    for (uint64_t i = 0; i < kPer; i++) {
      const uint64_t key = i * kWorkers + static_cast<uint64_t>(ctx.worker_id());
      rt.run(ctx, [&](ptm::Tx& tx) { cont::BPlusTree::insert(tx, root, key, key); });
    }
  });
  uint64_t n = 0;
  rt.run(setup, [&](ptm::Tx& tx) { n = cont::BPlusTree::range_count(tx, root, 0, ~0ull); });
  EXPECT_EQ(n, kWorkers * kPer);
  for (uint64_t k = 0; k < kWorkers * kPer; k++) {
    bool found = false;
    rt.run(setup, [&](ptm::Tx& tx) {
      found = cont::BPlusTree::lookup(tx, root, k, nullptr);
    });
    ASSERT_TRUE(found) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Algos, BPTreeTest,
                         ::testing::Values(ptm::Algo::kOrecLazy, ptm::Algo::kOrecEager),
                         [](const ::testing::TestParamInfo<ptm::Algo>& i) {
                           return std::string(ptm::algo_suffix(i.param));
                         });

}  // namespace
