// Repair-and-survive durability: mirrored log metadata, the background
// scrubber, and degraded-mode recovery (SystemConfig::log_mirror,
// scrub_interval_ns, recovery_policy).
//
// The randomized side of this surface is crashfuzz --mirror 1; these tests
// pin the deterministic edges: single-copy faults healing from the
// replica, double-copy faults surfacing as reported (never silent) loss
// under both recovery policies, crashes landing mid-repair and mid-scrub,
// and the abort-backoff clamp.
#include <gtest/gtest.h>

#include "ptm/orec.h"
#include "ptm/redo_log.h"
#include "ptm/runtime.h"
#include "ptm/scrub.h"
#include "test_common.h"
#include "util/crc32.h"
#include "workloads/btree_micro.h"
#include "workloads/driver.h"

namespace {

struct Root {
  uint64_t cells[256];
};

nvm::SystemConfig mirror_cfg(nvm::Domain domain = nvm::Domain::kAdr) {
  auto cfg = test::crash_cfg(domain);
  cfg.log_mirror = true;
  return cfg;
}

// Seal a hand-crafted slot: whole-log CRC over the first `n` records, then
// the header CRC, then copy the full image plus records to the mirror.
void seal_and_replicate(ptm::SlotLayout& slot, uint64_t n) {
  uint32_t lc = 0;
  for (uint64_t i = 0; i < n; i++) {
    lc = util::crc32c_u64(slot.log[i].val, util::crc32c_u64(slot.log[i].off, lc));
  }
  slot.header->pad[ptm::SlotLayout::kLogCrcPad] = lc;
  slot.header->pad[ptm::SlotLayout::kHdrCrcPad] = ptm::slot_header_crc(*slot.header);
  *slot.mirror_header = *slot.header;
  for (uint64_t i = 0; i < n; i++) slot.mirror_log[i] = slot.log[i];
}

// ---------------------------------------------------------------------------
// Single-copy damage: the replica both supplies the data and rewrites the
// primary in place.

TEST(MirrorRecovery, PoisonedHeaderLineIsRepairedFromMirrorAndReplayed) {
  auto cfg = mirror_cfg();
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 4);
  auto* root = pool.root<Root>();
  root->cells[0] = 111;

  auto slot = ptm::SlotLayout::carve(pool.worker_meta(0), pool.worker_meta_bytes(),
                                     /*mirror=*/true);
  const uint64_t epoch = 5;
  slot.header->status = ptm::TxSlotHeader::make(epoch, ptm::TxSlotHeader::kCommitted);
  slot.header->algo = static_cast<uint64_t>(ptm::Algo::kOrecLazy);
  slot.header->log_count = 1;
  slot.log[0].val = 999;
  slot.log[0].off =
      ptm::LogEntry::seal(ptm::LogEntry::pack(epoch, pool.offset_of(&root->cells[0])), 999);
  seal_and_replicate(slot, 1);

  pool.mem().inject_media_fault(pool.mem().line_of(slot.header));
  const auto rep = rt.recover(ctx);

  // Without the mirror this is exactly MediaFault.PoisonedHeaderLine...:
  // the slot's log is refused wholesale. With it, the replica header
  // carries the commit and the log replays.
  EXPECT_EQ(root->cells[0], 999u) << "commit behind a repaired header not replayed";
  EXPECT_EQ(rep.records_replayed, 1u);
  EXPECT_GE(rep.records_damaged, 1u);
  EXPECT_GE(rep.records_repaired, 1u);
  EXPECT_EQ(rep.records_lost, 0u);
  EXPECT_TRUE(rep.mirror_enabled);
  EXPECT_EQ(rep.log_crc_mismatches, 0u);
  EXPECT_FALSE(pool.mem().media_faulted(slot.header, sizeof(ptm::TxSlotHeader)))
      << "repair must retire the media fault after rewriting the line";
  EXPECT_FALSE(rt.degraded().degraded);

  rt.run(ctx, [&](ptm::Tx& tx) { tx.write(&root->cells[1], uint64_t{7}); });
  EXPECT_EQ(root->cells[1], 7u);
}

TEST(MirrorRecovery, PoisonedRecordLineIsRepairedAndEveryRecordReplays) {
  auto cfg = mirror_cfg();
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 4);
  auto* root = pool.root<Root>();
  for (int i = 0; i < 8; i++) root->cells[i] = 111;

  auto slot = ptm::SlotLayout::carve(pool.worker_meta(0), pool.worker_meta_bytes(),
                                     /*mirror=*/true);
  const uint64_t epoch = 5;
  slot.header->status = ptm::TxSlotHeader::make(epoch, ptm::TxSlotHeader::kCommitted);
  slot.header->algo = static_cast<uint64_t>(ptm::Algo::kOrecLazy);
  slot.header->log_count = 5;
  for (uint64_t i = 0; i < 5; i++) {
    const uint64_t off = pool.offset_of(&root->cells[i]);
    slot.log[i].off = ptm::LogEntry::seal(ptm::LogEntry::pack(epoch, off), 500 + i);
    slot.log[i].val = 500 + i;
  }
  seal_and_replicate(slot, 5);

  pool.mem().inject_media_fault(pool.mem().line_of(&slot.log[0]));
  uint64_t poisoned = 0;
  for (uint64_t i = 0; i < 5; i++) {
    if (pool.mem().media_faulted(&slot.log[i], sizeof(ptm::LogEntry))) poisoned++;
  }
  ASSERT_GE(poisoned, 1u);

  const auto rep = rt.recover(ctx);
  // The unmirrored twin of this test (MediaFault.PoisonedRecordLine...)
  // loses the poisoned records; here every one replays from its replica.
  EXPECT_EQ(rep.records_replayed, 5u);
  EXPECT_EQ(rep.records_media_faulted, poisoned);
  EXPECT_GE(rep.records_repaired, poisoned);
  EXPECT_EQ(rep.records_lost, 0u);
  EXPECT_EQ(rep.log_crc_mismatches, 0u)
      << "whole-log CRC must be checked against the repaired records";
  for (uint64_t i = 0; i < 5; i++) {
    EXPECT_EQ(root->cells[i], 500 + i) << "record " << i << " not applied";
  }
  EXPECT_FALSE(pool.mem().media_faulted(&slot.log[0], nvm::Memory::kLineBytes))
      << "record-granular repairs must retire the line's fault at the end";
}

// ---------------------------------------------------------------------------
// Double-copy damage: reported loss, quarantine, and the policy split.

TEST(MirrorRecovery, BothCopiesPoisonedSalvageQuarantinesAndReports) {
  auto cfg = mirror_cfg();
  ASSERT_EQ(cfg.recovery_policy, nvm::RecoveryPolicy::kSalvage);  // the default
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 4);
  auto* root = pool.root<Root>();
  root->cells[0] = 111;

  auto slot = ptm::SlotLayout::carve(pool.worker_meta(0), pool.worker_meta_bytes(),
                                     /*mirror=*/true);
  const uint64_t epoch = 5;
  // The record targets the allocator heap (quarantine is heap-scoped): the
  // word under a lost redo record may hold a partial write-back.
  const uint64_t heap_off = pool.header()->heap_off;
  slot.header->status = ptm::TxSlotHeader::make(epoch, ptm::TxSlotHeader::kCommitted);
  slot.header->algo = static_cast<uint64_t>(ptm::Algo::kOrecLazy);
  slot.header->log_count = 1;
  slot.log[0].val = 999;
  slot.log[0].off = ptm::LogEntry::seal(ptm::LogEntry::pack(epoch, heap_off), 999);
  seal_and_replicate(slot, 1);

  pool.mem().inject_media_fault(pool.mem().line_of(&slot.log[0]));
  pool.mem().inject_media_fault(pool.mem().line_of(&slot.mirror_log[0]));

  const auto rep = rt.recover(ctx);
  EXPECT_EQ(rep.records_replayed, 0u);
  EXPECT_EQ(rep.records_lost, 1u);
  const auto& deg = rt.degraded();
  EXPECT_TRUE(deg.degraded);
  EXPECT_EQ(deg.lost_records, 1u);
  EXPECT_EQ(deg.lost_txs, 1u);
  EXPECT_GE(deg.quarantined_bytes, 64u) << "lost record's home line not quarantined";
  EXPECT_TRUE(rt.allocator().is_quarantined(pool.at(heap_off), 8));

  // Degraded, not dead: the runtime stays usable.
  pool.mem().clear_media_faults();
  rt.run(ctx, [&](ptm::Tx& tx) { tx.write(&root->cells[1], uint64_t{7}); });
  EXPECT_EQ(root->cells[1], 7u);
}

TEST(MirrorRecovery, BothCopiesPoisonedFailStopThrowsAfterSalvage) {
  auto cfg = mirror_cfg();
  cfg.recovery_policy = nvm::RecoveryPolicy::kFailStop;
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 4);
  auto* root = pool.root<Root>();
  root->cells[0] = 111;

  auto slot = ptm::SlotLayout::carve(pool.worker_meta(0), pool.worker_meta_bytes(),
                                     /*mirror=*/true);
  const uint64_t epoch = 5;
  const uint64_t heap_off = pool.header()->heap_off;
  slot.header->status = ptm::TxSlotHeader::make(epoch, ptm::TxSlotHeader::kCommitted);
  slot.header->algo = static_cast<uint64_t>(ptm::Algo::kOrecLazy);
  slot.header->log_count = 1;
  slot.log[0].val = 999;
  slot.log[0].off = ptm::LogEntry::seal(ptm::LogEntry::pack(epoch, heap_off), 999);
  seal_and_replicate(slot, 1);

  pool.mem().inject_media_fault(pool.mem().line_of(&slot.log[0]));
  pool.mem().inject_media_fault(pool.mem().line_of(&slot.mirror_log[0]));

  EXPECT_THROW(rt.recover(ctx), ptm::MediaLossError);
  // Fail-stop still completes the salvage pass first, so the post-mortem
  // report is available to the operator.
  EXPECT_TRUE(rt.degraded().degraded);
  EXPECT_EQ(rt.degraded().lost_records, 1u);
}

// ---------------------------------------------------------------------------
// Crash-at-every-event sweeps over the repair paths themselves.

TEST(MirrorRecovery, CrashDuringHeaderRepairIsSafe) {
  for (const uint64_t k : {1ull, 2ull, 3ull, 5ull, 8ull, 13ull, 21ull, 34ull}) {
    fault::CrashHarness h(mirror_cfg(), ptm::Algo::kOrecLazy);
    sim::RealContext ctx(0, 4);
    auto* root = h.pool.root<Root>();
    h.rt.run(ctx, [&](ptm::Tx& tx) {
      for (int i = 0; i < 16; i++) tx.write(&root->cells[i], static_cast<uint64_t>(100 + i));
    });
    h.seal_initial_state();

    // Rot the (sealed, quiesced) primary header; the first recovery's
    // mirror repair is then interrupted at event k. Whatever state the
    // crash leaves, the second recovery must finish the job with nothing
    // lost: the repair order (rewrite durably, then retire the fault)
    // makes a half-done repair indistinguishable from no repair.
    auto slot = ptm::SlotLayout::carve(h.pool.worker_meta(0), h.pool.worker_meta_bytes(),
                                       /*mirror=*/true);
    h.pool.mem().inject_media_fault(h.pool.mem().line_of(slot.header));
    h.run_until_crash(k, /*crash_seed=*/k * 13 + 1, [&] { h.rt.recover(ctx); });
    h.power_fail_and_recover(ctx, /*image_seed=*/k + 3);

    test::expect_clean_recovery(h.report);
    EXPECT_EQ(h.report.records_lost, 0u) << "crash point " << k;
    const auto res = h.verify();
    EXPECT_TRUE(res.ok) << "crash point " << k << ": " << res.detail;
    for (int i = 0; i < 16; i++) {
      EXPECT_EQ(root->cells[i], 100u + i) << "crash point " << k;
    }
  }
}

TEST(Scrub, CrashDuringScrubRepairIsSafe) {
  for (const uint64_t k : {1ull, 2ull, 4ull, 7ull, 11ull, 16ull, 25ull}) {
    fault::CrashHarness h(mirror_cfg(), ptm::Algo::kOrecEager);
    sim::RealContext ctx(0, 4);
    auto* root = h.pool.root<Root>();
    h.rt.run(ctx, [&](ptm::Tx& tx) {
      for (int i = 0; i < 16; i++) tx.write(&root->cells[i], static_cast<uint64_t>(200 + i));
    });
    h.seal_initial_state();

    auto slot = ptm::SlotLayout::carve(h.pool.worker_meta(0), h.pool.worker_meta_bytes(),
                                       /*mirror=*/true);
    h.pool.mem().inject_media_fault(h.pool.mem().line_of(slot.header));
    ptm::Scrubber scrub(h.rt);
    h.run_until_crash(k, /*crash_seed=*/k * 7 + 5, [&] { scrub.run_pass(ctx); });
    h.power_fail_and_recover(ctx, /*image_seed=*/k + 9);

    test::expect_clean_recovery(h.report);
    EXPECT_EQ(h.report.records_lost, 0u) << "crash point " << k;
    const auto res = h.verify();
    EXPECT_TRUE(res.ok) << "crash point " << k << ": " << res.detail;
  }
}

// ---------------------------------------------------------------------------
// The scrubber's steady-state behaviours.

TEST(Scrub, LatentHeaderFaultIsDetectedAndRepairedFromMirror) {
  auto cfg = mirror_cfg();
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 4);
  rt.recover(ctx);  // quiesce: every slot header sealed, both copies

  auto slot = ptm::SlotLayout::carve(pool.worker_meta(0), pool.worker_meta_bytes(),
                                     /*mirror=*/true);
  // A latent fault: armed now, due immediately — the line rots *after* its
  // last persist, which is exactly the window recovery alone cannot see.
  pool.mem().arm_media_fault_at(pool.mem().line_of(slot.header), 0);
  EXPECT_EQ(pool.mem().armed_media_fault_count(), 1u);

  ptm::Scrubber scrub(rt);
  scrub.run_pass(ctx);

  const auto& s = scrub.stats();
  EXPECT_TRUE(s.enabled);
  EXPECT_EQ(s.passes, 1u);
  EXPECT_GT(s.lines_scanned, 0u);
  EXPECT_GE(s.media_faults_found, 1u);
  EXPECT_GE(s.repaired, 1u);
  EXPECT_GE(s.header_repairs, 1u);
  EXPECT_EQ(s.unrepairable, 0u);
  EXPECT_FALSE(pool.mem().media_faulted(slot.header, sizeof(ptm::TxSlotHeader)));
  EXPECT_EQ(pool.mem().armed_media_fault_count(), 0u) << "armed fault not activated";
}

TEST(Scrub, FaultWithoutMirrorIsSurfacedAsUnrepairable) {
  auto cfg = test::crash_cfg();  // log_mirror off
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 4);
  rt.recover(ctx);

  auto slot = ptm::SlotLayout::carve(pool.worker_meta(0), pool.worker_meta_bytes());
  pool.mem().inject_media_fault(pool.mem().line_of(slot.header));

  ptm::Scrubber scrub(rt);
  scrub.run_pass(ctx);
  EXPECT_GE(scrub.stats().media_faults_found, 1u);
  EXPECT_GE(scrub.stats().unrepairable, 1u);
  EXPECT_EQ(scrub.stats().repaired, 0u);
  // Detect-only: the wreck is left for recovery's loss accounting.
  EXPECT_TRUE(pool.mem().media_faulted(slot.header, sizeof(ptm::TxSlotHeader)));
  pool.mem().clear_media_faults();
}

TEST(Scrub, BusySlotsAreSkippedWholesale) {
  auto cfg = mirror_cfg();
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 4);
  rt.recover(ctx);

  // Fake an in-flight transaction on worker 2: the scrubber must not
  // second-guess a live slot's mid-batch log state.
  auto slot = ptm::SlotLayout::carve(pool.worker_meta(2), pool.worker_meta_bytes(),
                                     /*mirror=*/true);
  const uint64_t epoch = ptm::TxSlotHeader::epoch_of(slot.header->status);
  slot.header->status = ptm::TxSlotHeader::make(epoch, ptm::TxSlotHeader::kActive);

  ptm::Scrubber scrub(rt);
  scrub.run_pass(ctx);
  EXPECT_GE(scrub.stats().skipped_busy, 1u);
  EXPECT_EQ(scrub.stats().media_faults_found, 0u);
}

TEST(Scrub, DriverRunsScrubFiberAndReportsStats) {
  // End-to-end through workloads::run_point: a scrub fiber patrols at the
  // configured cadence alongside the workers and the run terminates.
  workloads::BTreeMicroParams bp;
  bp.insert_only = true;
  workloads::RunPoint p;
  p.sys.domain = nvm::Domain::kAdr;
  p.sys.media = nvm::Media::kOptane;
  p.sys.crash_sim = true;
  p.sys.log_mirror = true;
  p.sys.scrub_interval_ns = 100000;  // aggressive cadence for a short run
  p.sys.l3_bytes = 1ull << 20;
  p.algo = ptm::Algo::kOrecLazy;
  p.threads = 2;
  p.ops_per_thread = 120;
  p.seed = 11;
  const auto r = workloads::run_point(workloads::btree_micro_factory(bp), p);
  EXPECT_TRUE(r.scrub.enabled);
  EXPECT_GE(r.scrub.passes, 1u);
  EXPECT_GT(r.scrub.lines_scanned, 0u);
  EXPECT_EQ(r.scrub.media_faults_found, 0u) << "phantom fault on a healthy pool";
  EXPECT_EQ(r.scrub.unrepairable, 0u);
  EXPECT_TRUE(r.recovery.mirror_enabled);
  EXPECT_GT(r.totals.commits, 0u);
}

// ---------------------------------------------------------------------------
// Abort backoff: the draw is clamped to at least one backoff_base_ns, so
// two conflicting workers can never retry at the same simulated instant.

TEST(Backoff, AbortBackoffNeverCollapsesBelowBase) {
  auto cfg = test::small_cfg();
  cfg.cost.backoff_base_ns = 1000000.0;  // dwarfs every other cost in the loop
  test::Fixture fx(cfg);
  auto* root = fx.pool.root<Root>();
  auto& orec = fx.rt.orecs().for_addr(&root->cells[0]);

  // 30 single-abort transactions: the first attempt finds the orec locked
  // by another worker and aborts; the retry finds it free and commits.
  // Under the pre-clamp draw (uniform over [0, 2*base]) at least one of 30
  // backoffs would land below base with probability ~1 - 2^-30.
  for (int trial = 0; trial < 30; trial++) {
    int attempt = 0;
    uint64_t t_abort = 0, t_retry = 0;
    fx.rt.run(fx.ctx, [&](ptm::Tx& tx) {
      if (attempt++ == 0) {
        orec.store(ptm::OrecTable::lock_word(3), std::memory_order_release);
        t_abort = fx.ctx.now_ns();
        tx.read(&root->cells[0]);  // locked by "worker 3" → conflict abort
        ADD_FAILURE() << "read of a locked orec did not abort";
      } else {
        t_retry = fx.ctx.now_ns();
        orec.store(ptm::OrecTable::version_word(0), std::memory_order_release);
        tx.read(&root->cells[0]);
      }
    });
    ASSERT_EQ(attempt, 2) << "trial " << trial;
    EXPECT_GE(t_retry - t_abort, 1000000u)
        << "trial " << trial << ": backoff collapsed below backoff_base_ns";
  }
}

}  // namespace
