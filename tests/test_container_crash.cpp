// Container-level durability: a B+Tree / HashMap / SortedList receiving a
// stream of inserts and removes must, after a mid-stream power failure and
// recovery, contain exactly the committed prefix — plus at most the single
// in-flight operation.
#include <gtest/gtest.h>

#include <set>

#include "containers/bptree.h"
#include "containers/hashmap.h"
#include "containers/list.h"
#include "ptm/runtime.h"
#include "test_common.h"

namespace {

struct Root {
  uint64_t tree;
  cont::HashMap::Handle map;
  uint64_t list;
};

struct Param {
  ptm::Algo algo;
  nvm::Domain domain;
};

std::string pname(const ::testing::TestParamInfo<Param>& info) {
  std::string s = ptm::algo_suffix(info.param.algo);
  s += info.param.domain == nvm::Domain::kAdr ? "_ADR" : "_eADR";
  return s;
}

class ContainerCrashTest : public ::testing::TestWithParam<Param> {};

// Shared driver: `do_op(tx, key, insert?)` applies the op to the container,
// `contains(key)` checks membership after recovery.
template <typename DoOp, typename Contains>
void run_crash_trials(ptm::Algo algo, nvm::Domain domain, const DoOp& do_op,
                      const Contains& contains,
                      const std::function<void(ptm::Tx&, Root*)>& create) {
  for (uint64_t trial = 0; trial < 8; trial++) {
    fault::CrashHarness h(test::crash_cfg(domain), algo);
    sim::RealContext ctx(0, 4);
    auto* root = h.pool.root<Root>();
    h.rt.run(ctx, [&](ptm::Tx& tx) { create(tx, root); });

    util::Rng rng(4400 + trial * 31);
    std::set<uint64_t> shadow;
    uint64_t inflight_key = 0;
    bool inflight_insert = false;
    // Oracle off: container removes dealloc their nodes, whose payload
    // words the allocator then rethreads outside the Tx write path. The
    // recovery report is still screened for torn/invalid/media damage.
    test::run_crash_trial(
        h, ctx, 40 + rng.next_bounded(2500), trial + 1,
        [&] {
          for (int t = 0; t < 250; t++) {
            const uint64_t key = rng.next_bounded(128);
            const bool insert = rng.chance_pct(70);
            inflight_key = key;
            inflight_insert = insert;
            h.rt.run(ctx, [&](ptm::Tx& tx) { do_op(tx, root, key, insert); });
            if (insert) {
              shadow.insert(key);
            } else {
              shadow.erase(key);
            }
          }
        },
        /*check_oracle=*/false, /*image_seed=*/5);

    // Membership must match the shadow, except possibly the in-flight key
    // (included iff its commit record persisted first).
    for (uint64_t k = 0; k < 128; k++) {
      bool present = false;
      h.rt.run(ctx, [&](ptm::Tx& tx) { present = contains(tx, root, k); });
      if (k == inflight_key) {
        const bool allowed_a = shadow.count(k) > 0;       // op not included
        const bool allowed_b = inflight_insert;           // op included
        EXPECT_TRUE(present == allowed_a || present == allowed_b)
            << "trial " << trial << " key " << k;
      } else {
        EXPECT_EQ(present, shadow.count(k) > 0) << "trial " << trial << " key " << k;
      }
    }
  }
}

TEST_P(ContainerCrashTest, BPlusTreeCommittedPrefix) {
  run_crash_trials(
      GetParam().algo, GetParam().domain,
      [](ptm::Tx& tx, Root* root, uint64_t key, bool insert) {
        if (insert) {
          cont::BPlusTree::insert(tx, &root->tree, key, key);
        } else {
          cont::BPlusTree::remove(tx, &root->tree, key);
        }
      },
      [](ptm::Tx& tx, Root* root, uint64_t key) {
        return cont::BPlusTree::lookup(tx, &root->tree, key, nullptr);
      },
      [](ptm::Tx& tx, Root* root) { cont::BPlusTree::create(tx, &root->tree); });
}

TEST_P(ContainerCrashTest, HashMapCommittedPrefix) {
  run_crash_trials(
      GetParam().algo, GetParam().domain,
      [](ptm::Tx& tx, Root* root, uint64_t key, bool insert) {
        if (insert) {
          cont::HashMap::insert(tx, &root->map, key, key);
        } else {
          cont::HashMap::remove(tx, &root->map, key);
        }
      },
      [](ptm::Tx& tx, Root* root, uint64_t key) {
        return cont::HashMap::lookup(tx, &root->map, key, nullptr);
      },
      [](ptm::Tx& tx, Root* root) { cont::HashMap::create(tx, &root->map, 64); });
}

TEST_P(ContainerCrashTest, SortedListCommittedPrefix) {
  run_crash_trials(
      GetParam().algo, GetParam().domain,
      [](ptm::Tx& tx, Root* root, uint64_t key, bool insert) {
        if (insert) {
          cont::SortedList::insert(tx, &root->list, key, key);
        } else {
          cont::SortedList::remove(tx, &root->list, key);
        }
      },
      [](ptm::Tx& tx, Root* root, uint64_t key) {
        return cont::SortedList::lookup(tx, &root->list, key, nullptr);
      },
      [](ptm::Tx& tx, Root* root) { cont::SortedList::create(tx, &root->list); });
}

INSTANTIATE_TEST_SUITE_P(
    AlgoDomain, ContainerCrashTest,
    ::testing::Values(Param{ptm::Algo::kOrecLazy, nvm::Domain::kAdr},
                      Param{ptm::Algo::kOrecLazy, nvm::Domain::kEadr},
                      Param{ptm::Algo::kOrecEager, nvm::Domain::kAdr},
                      Param{ptm::Algo::kOrecEager, nvm::Domain::kEadr}),
    pname);

}  // namespace
