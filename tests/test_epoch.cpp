// Group/epoch-commit tests (ptm::EpochManager).
//
// Two layers:
//
//  * Mechanism tests: size- and age-triggered epoch closes, the batching
//    stats, and the headline fence-coalescing claim (strictly fewer
//    fences per committed transaction than per-transaction commit on the
//    same workload).
//
//  * A deterministic crash sweep: one epoch with three member
//    transactions (one per DES worker, epoch_max_txs == 3, so all three
//    publish into the same batch), crashed at *every* persistence event
//    of the run, across both algorithms x all four durability domains x
//    mirror on/off, with torn stores enabled. After power failure +
//    recovery the durable-linearizability oracle proves the epoch
//    contract: every acked (observed-committed) transaction is fully
//    present, and every unacked member is all-or-nothing — present only
//    if its commit record reached the domain before the failure.
#include <gtest/gtest.h>

#include <sstream>

#include "ptm/runtime.h"
#include "sim/engine.h"
#include "stats/report.h"
#include "test_common.h"

namespace {

constexpr int kAccounts = 24;
constexpr uint64_t kInitBal = 100;
constexpr int kMembers = 3;  // concurrent workers == epoch_max_txs

struct BankRoot {
  uint64_t bal[kAccounts];
};

nvm::SystemConfig epoch_cfg(nvm::Domain domain, bool mirror) {
  nvm::SystemConfig cfg = test::crash_cfg(domain);
  cfg.torn_stores = true;
  cfg.log_mirror = mirror;
  cfg.epoch_commit = true;
  cfg.epoch_max_txs = kMembers;
  cfg.epoch_max_ns = 20000;  // age-close stragglers and tail epochs
  return cfg;
}

void populate(fault::CrashHarness& h, sim::ExecContext& ctx, BankRoot* root) {
  h.rt.run(ctx, [&](ptm::Tx& tx) {
    for (int i = 0; i < kAccounts; i++) tx.write(&root->bal[i], kInitBal);
  });
}

// One disjoint transfer per worker: worker w moves 5 units from account
// 2w to 2w+1. Disjoint write sets mean no conflict aborts perturb the
// event numbering, so the crash sweep is a pure walk over the epoch
// protocol's persistence events.
void one_epoch_round(fault::CrashHarness& h) {
  sim::Engine engine(kMembers);
  engine.run([&](sim::ExecContext& ctx) {
    auto* root = h.pool.root<BankRoot>();
    const int a = 2 * ctx.worker_id();
    h.rt.run(ctx, [&](ptm::Tx& tx) {
      const uint64_t fa = tx.read(&root->bal[a]);
      const uint64_t fb = tx.read(&root->bal[a + 1]);
      tx.write(&root->bal[a], fa - 5);
      tx.write(&root->bal[a + 1], fb + 5);
    });
  });
}

// ----- mechanism ---------------------------------------------------------

TEST(EpochCommit, SizeTriggeredBatching) {
  nvm::SystemConfig cfg = epoch_cfg(nvm::Domain::kAdr, /*mirror=*/false);
  cfg.torn_stores = false;
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  ASSERT_NE(rt.epochs(), nullptr);
  auto* root = pool.root<BankRoot>();

  sim::RealContext setup(3, 4);
  rt.run(setup, [&](ptm::Tx& tx) {
    for (int i = 0; i < kAccounts; i++) tx.write(&root->bal[i], kInitBal);
  });
  const stats::EpochStats before = rt.epochs()->snapshot();

  constexpr int kRounds = 8;
  sim::Engine engine(kMembers);
  engine.run([&](sim::ExecContext& ctx) {
    const int a = 2 * ctx.worker_id();
    for (int r = 0; r < kRounds; r++) {
      rt.run(ctx, [&](ptm::Tx& tx) {
        const uint64_t fa = tx.read(&root->bal[a]);
        tx.write(&root->bal[a], fa + 1);
      });
    }
  });

  const stats::EpochStats after = rt.epochs()->snapshot();
  EXPECT_TRUE(after.enabled);
  const uint64_t epochs = after.epochs - before.epochs;
  const uint64_t members = after.member_txs - before.member_txs;
  EXPECT_EQ(members, uint64_t{kMembers * kRounds});
  // Batching must actually happen: far fewer epochs than members, and at
  // least one epoch closed because it reached epoch_max_txs.
  EXPECT_LT(epochs, members);
  EXPECT_GT(after.closed_by_size, before.closed_by_size);
  EXPECT_EQ(after.size.count(), after.epochs);
}

TEST(EpochCommit, AgeTriggeredLoneWorker) {
  nvm::SystemConfig cfg = epoch_cfg(nvm::Domain::kAdr, /*mirror=*/false);
  cfg.torn_stores = false;
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  auto* root = pool.root<BankRoot>();

  // A lone worker can never fill a size-3 epoch: every commit must close
  // by age as an epoch of one, and must still complete (no deadlock).
  sim::RealContext ctx(0, 4);
  for (int t = 0; t < 5; t++) {
    rt.run(ctx, [&](ptm::Tx& tx) {
      const uint64_t v = tx.read(&root->bal[0]);
      tx.write(&root->bal[0], v + 1);
    });
  }
  const stats::EpochStats s = rt.epochs()->snapshot();
  EXPECT_GE(s.closed_by_age, uint64_t{5});
  EXPECT_EQ(s.member_txs, s.epochs);  // all epochs of one
  EXPECT_DOUBLE_EQ(s.mean_size(), 1.0);
}

// The tentpole claim: with epochs on, committed transactions share fences,
// so the per-commit fence count drops below per-transaction commit's on
// the same concurrent workload (ADR, where fences are real).
TEST(EpochCommit, FewerFencesPerCommitThanPerTx) {
  for (ptm::Algo algo : {ptm::Algo::kOrecLazy, ptm::Algo::kOrecEager}) {
    uint64_t fences[2], commits[2];
    for (int mode = 0; mode < 2; mode++) {
      nvm::SystemConfig cfg = epoch_cfg(nvm::Domain::kAdr, /*mirror=*/false);
      cfg.torn_stores = false;
      cfg.crash_sim = false;
      cfg.epoch_commit = mode == 1;
      nvm::Pool pool(cfg);
      ptm::Runtime rt(pool, algo);
      auto* root = pool.root<BankRoot>();
      sim::RealContext setup(3, 4);
      rt.run(setup, [&](ptm::Tx& tx) {
        for (int i = 0; i < kAccounts; i++) tx.write(&root->bal[i], kInitBal);
      });
      rt.reset_counters();

      sim::Engine engine(kMembers);
      engine.run([&](sim::ExecContext& ctx) {
        const int a = 2 * ctx.worker_id();
        for (int r = 0; r < 32; r++) {
          rt.run(ctx, [&](ptm::Tx& tx) {
            const uint64_t fa = tx.read(&root->bal[a]);
            const uint64_t fb = tx.read(&root->bal[a + 1]);
            tx.write(&root->bal[a], fa - 1);
            tx.write(&root->bal[a + 1], fb + 1);
          });
        }
      });
      const stats::TxCounters tot = stats::aggregate(rt.snapshot_counters());
      fences[mode] = tot.sfences;
      commits[mode] = tot.commits;
    }
    ASSERT_EQ(commits[0], commits[1]);
    EXPECT_LT(fences[1], fences[0])
        << ptm::algo_suffix(algo) << ": epoch mode must coalesce fences";
  }
}

TEST(EpochCommit, StatsSerializeUnderEpochKey) {
  stats::RunResult r;
  r.epoch.enabled = true;
  r.epoch.epochs = 2;
  r.epoch.member_txs = 5;
  r.epoch.closed_by_size = 1;
  r.epoch.closed_by_age = 1;
  r.epoch.size.record(3);
  r.epoch.size.record(2);
  std::ostringstream os;
  stats::JsonWriter w(os);
  w.begin_object();
  write_run_result_fields(w, r);
  w.end_object();
  const std::string s = os.str();
  EXPECT_NE(s.find("\"epoch\""), std::string::npos);
  EXPECT_NE(s.find("\"member_txs\":5"), std::string::npos);
  EXPECT_NE(s.find("\"mean_size\""), std::string::npos);

  // Disabled (the default) must leave the artifact without an epoch key:
  // byte-identity for default configs.
  std::ostringstream os2;
  stats::JsonWriter w2(os2);
  w2.begin_object();
  write_run_result_fields(w2, stats::RunResult{});
  w2.end_object();
  EXPECT_EQ(os2.str().find("\"epoch\""), std::string::npos);
}

// ----- reset after recovery ----------------------------------------------

// Runtime::recover() must drop all volatile epoch state: a crash mid-drain
// abandons queued members and can leave the leader flag set, and none of
// it may leak into the next lifetime. After recovery every worker's member
// phase must read "no commit in flight" and a fresh epoch round must
// complete (and batch) normally.
TEST(EpochCommit, ResetAfterRecoveryClearsMembership) {
  const nvm::SystemConfig cfg = epoch_cfg(nvm::Domain::kAdr, /*mirror=*/false);

  // Count one clean round's persistence events, so the crash below lands
  // mid-round — inside the epoch machinery, with members queued/staged.
  uint64_t total_events = 0;
  {
    fault::CrashHarness dry(cfg, ptm::Algo::kOrecLazy);
    sim::RealContext dctx(3, 4);
    populate(dry, dctx, dry.pool.root<BankRoot>());
    dry.seal_initial_state();
    const uint64_t before = dry.pool.mem().persistence_events();
    ASSERT_FALSE(dry.run_until_crash(~0ull, 1, [&] { one_epoch_round(dry); }));
    total_events = dry.pool.mem().persistence_events() - before;
  }
  ASSERT_GT(total_events, 2u);

  fault::CrashHarness h(cfg, ptm::Algo::kOrecLazy);
  ASSERT_NE(h.rt.epochs(), nullptr);
  sim::RealContext ctx(3, 4);
  populate(h, ctx, h.pool.root<BankRoot>());
  const bool crashed = test::run_crash_trial(
      h, ctx, total_events / 2, 23, [&] { one_epoch_round(h); });
  ASSERT_TRUE(crashed);

  // No parked member and no stale leader may survive recovery.
  for (int w = 0; w < 4; w++) {
    EXPECT_EQ(h.rt.epochs()->member_phase(w), 0) << "worker " << w;
  }

  // A fresh round on the recovered runtime must complete and batch.
  const stats::EpochStats before = h.rt.epochs()->snapshot();
  one_epoch_round(h);
  const stats::EpochStats after = h.rt.epochs()->snapshot();
  EXPECT_EQ(after.member_txs - before.member_txs, uint64_t{kMembers});
  EXPECT_GT(after.epochs, before.epochs);
  for (int w = 0; w < 4; w++) {
    EXPECT_EQ(h.rt.epochs()->member_phase(w), 0) << "worker " << w;
  }
}

// ----- deterministic crash sweep -----------------------------------------

struct SweepParam {
  ptm::Algo algo;
  nvm::Domain domain;
  bool mirror;
};

std::string sweep_param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string s = ptm::algo_suffix(info.param.algo);
  s += "_";
  s += nvm::domain_name(info.param.domain);
  s += info.param.mirror ? "_mirror" : "_plain";
  for (auto& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

class EpochCrashSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EpochCrashSweep, EveryEventAckedDurableUnackedAllOrNothing) {
  const SweepParam p = GetParam();

  // Dry run: count the persistence events of one full three-member epoch
  // round (identical seeds/schedule to the armed runs below).
  uint64_t total_events = 0;
  {
    fault::CrashHarness h(epoch_cfg(p.domain, p.mirror), p.algo);
    sim::RealContext ctx(3, 4);
    populate(h, ctx, h.pool.root<BankRoot>());
    h.seal_initial_state();
    const uint64_t before = h.pool.mem().persistence_events();
    const bool crashed =
        h.run_until_crash(~0ull, 1, [&] { one_epoch_round(h); });
    ASSERT_FALSE(crashed);
    total_events = h.pool.mem().persistence_events() - before;
  }
  ASSERT_GT(total_events, 0u);

  // Crash at every event of the epoch. The DES schedule is deterministic,
  // so event k always lands at the same instruction of the protocol.
  for (uint64_t k = 1; k <= total_events; k++) {
    fault::CrashHarness h(epoch_cfg(p.domain, p.mirror), p.algo);
    sim::RealContext ctx(3, 4);
    auto* root = h.pool.root<BankRoot>();
    populate(h, ctx, root);

    const bool crashed = test::run_crash_trial(
        h, ctx, k, 100 + k, [&] { one_epoch_round(h); },
        /*check_oracle=*/true, /*image_seed=*/17 + k);
    ASSERT_TRUE(crashed) << "event " << k << " of " << total_events;

    // The oracle verdict inside run_crash_trial proved acked-durable and
    // unacked-all-or-nothing on the raw heap bytes. Cross-check with the
    // workload invariant: transfers conserve money whichever epoch subset
    // survived.
    uint64_t total = 0;
    h.rt.run(ctx, [&](ptm::Tx& tx) {
      total = 0;
      for (int i = 0; i < kAccounts; i++) total += tx.read(&root->bal[i]);
    });
    EXPECT_EQ(total, uint64_t{kAccounts} * kInitBal) << "event " << k;

    if (p.mirror) {
      EXPECT_EQ(h.report.records_lost, 0u) << "event " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgoDomainMirror, EpochCrashSweep,
    ::testing::Values(
        SweepParam{ptm::Algo::kOrecLazy, nvm::Domain::kAdr, false},
        SweepParam{ptm::Algo::kOrecLazy, nvm::Domain::kAdr, true},
        SweepParam{ptm::Algo::kOrecLazy, nvm::Domain::kEadr, false},
        SweepParam{ptm::Algo::kOrecLazy, nvm::Domain::kPdram, false},
        SweepParam{ptm::Algo::kOrecLazy, nvm::Domain::kPdramLite, true},
        SweepParam{ptm::Algo::kOrecEager, nvm::Domain::kAdr, false},
        SweepParam{ptm::Algo::kOrecEager, nvm::Domain::kAdr, true},
        SweepParam{ptm::Algo::kOrecEager, nvm::Domain::kEadr, true},
        SweepParam{ptm::Algo::kOrecEager, nvm::Domain::kPdram, true},
        SweepParam{ptm::Algo::kOrecEager, nvm::Domain::kPdramLite, false}),
    sweep_param_name);

}  // namespace
