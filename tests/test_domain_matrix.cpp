// Cross-domain property tests: the orderings the paper's figures rest on,
// asserted at miniature scale for every durability domain, plus crash
// consistency under the PDRAM domains.
#include <gtest/gtest.h>

#include "ptm/runtime.h"
#include "sim/engine.h"
#include "test_common.h"

namespace {

struct Root {
  uint64_t accounts;  // pointer to heap array
};

// Bank-transfer throughput at 4 workers with an L3-exceeding working set.
double throughput(nvm::Domain domain, nvm::Media media, ptm::Algo algo,
                  bool elide_fences = false) {
  nvm::SystemConfig cfg;
  cfg.media = media;
  cfg.domain = domain;
  cfg.elide_fences = elide_fences;
  cfg.pool_size = 64ull << 20;
  cfg.max_workers = 5;
  cfg.l3_bytes = 64ull << 10;
  cfg.dram_cache_bytes = 8ull << 20;

  constexpr uint64_t kAccounts = 16384;
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, algo);
  sim::RealContext setup(4, 5);
  auto* root = pool.root<Root>();
  uint64_t* bal = nullptr;
  rt.run(setup, [&](ptm::Tx& tx) {
    bal = static_cast<uint64_t*>(rt.allocator().alloc_raw(setup, nullptr, kAccounts * 8));
    tx.write(&root->accounts, reinterpret_cast<uint64_t>(bal));
  });
  for (uint64_t i0 = 0; i0 < kAccounts; i0 += 2048) {
    rt.run(setup, [&](ptm::Tx& tx) {
      for (uint64_t i = i0; i < i0 + 2048; i++) tx.write(&bal[i], uint64_t{100});
    });
  }
  rt.reset_counters();
  pool.mem().reset_models();
  pool.mem().prewarm_directory(0, pool.size() / nvm::Memory::kLineBytes);

  sim::Engine engine(4);
  engine.run([&](sim::ExecContext& ctx) {
    util::Rng rng(11 + static_cast<uint64_t>(ctx.worker_id()));
    for (int i = 0; i < 400; i++) {
      const uint64_t a = rng.next_bounded(kAccounts);
      const uint64_t b = (a + 1 + rng.next_bounded(kAccounts - 1)) % kAccounts;
      rt.run(ctx, [&](ptm::Tx& tx) {
        const uint64_t fa = tx.read(&bal[a]);
        const uint64_t fb = tx.read(&bal[b]);
        const uint64_t amt = fa > 5 ? 5 : fa;
        tx.write(&bal[a], fa - amt);
        tx.write(&bal[b], fb + amt);
      });
    }
  });
  const auto t = stats::aggregate(rt.snapshot_counters());
  return static_cast<double>(t.commits) * 1e9 / static_cast<double>(engine.elapsed_ns());
}

TEST(DomainOrdering, EadrAboveAdr) {
  for (auto algo : {ptm::Algo::kOrecLazy, ptm::Algo::kOrecEager}) {
    EXPECT_GT(throughput(nvm::Domain::kEadr, nvm::Media::kOptane, algo),
              throughput(nvm::Domain::kAdr, nvm::Media::kOptane, algo));
  }
}

TEST(DomainOrdering, PdramAboveEadr) {
  EXPECT_GT(throughput(nvm::Domain::kPdram, nvm::Media::kOptane, ptm::Algo::kOrecLazy),
            throughput(nvm::Domain::kEadr, nvm::Media::kOptane, ptm::Algo::kOrecLazy));
}

TEST(DomainOrdering, PdramLiteAtLeastEadr) {
  EXPECT_GE(
      throughput(nvm::Domain::kPdramLite, nvm::Media::kOptane, ptm::Algo::kOrecLazy),
      throughput(nvm::Domain::kEadr, nvm::Media::kOptane, ptm::Algo::kOrecLazy) * 0.99);
}

TEST(DomainOrdering, DramAbovePdram) {
  EXPECT_GT(throughput(nvm::Domain::kEadr, nvm::Media::kDram, ptm::Algo::kOrecLazy),
            throughput(nvm::Domain::kPdram, nvm::Media::kOptane, ptm::Algo::kOrecLazy) *
                0.999);
}

TEST(DomainOrdering, ElidingFencesSpeedsUpAdr) {
  for (auto algo : {ptm::Algo::kOrecLazy, ptm::Algo::kOrecEager}) {
    EXPECT_GT(throughput(nvm::Domain::kAdr, nvm::Media::kOptane, algo, true),
              throughput(nvm::Domain::kAdr, nvm::Media::kOptane, algo, false));
  }
}

TEST(DomainOrdering, RedoAboveUndoUnderAdr) {
  EXPECT_GT(throughput(nvm::Domain::kAdr, nvm::Media::kOptane, ptm::Algo::kOrecLazy),
            throughput(nvm::Domain::kAdr, nvm::Media::kOptane, ptm::Algo::kOrecEager));
}

// Crash consistency under the proposed domains (PDRAM battery semantics:
// everything dirty persists; recovery still discards in-flight logs).
TEST(PdramCrash, MoneyConservedAcrossPowerFailure) {
  for (auto domain : {nvm::Domain::kPdram, nvm::Domain::kPdramLite}) {
    for (auto algo : {ptm::Algo::kOrecLazy, ptm::Algo::kOrecEager}) {
      auto cfg = test::small_cfg(domain, nvm::Media::kOptane, /*crash_sim=*/true);
      fault::CrashHarness h(cfg, algo);
      sim::RealContext ctx(0, 8);
      struct B {
        uint64_t bal[32];
      };
      auto* root = h.pool.root<B>();
      h.rt.run(ctx, [&](ptm::Tx& tx) {
        for (int i = 0; i < 32; i++) tx.write(&root->bal[i], uint64_t{500});
      });

      util::Rng rng(777);
      const bool crashed = test::run_crash_trial(
          h, ctx, 60 + rng.next_bounded(400), 5,
          [&] {
            for (int t = 0; t < 300; t++) {
              const uint64_t a = rng.next_bounded(32);
              const uint64_t b = (a + 1 + rng.next_bounded(31)) % 32;
              h.rt.run(ctx, [&](ptm::Tx& tx) {
                const uint64_t fa = tx.read(&root->bal[a]);
                const uint64_t fb = tx.read(&root->bal[b]);
                const uint64_t amt = fa > 7 ? 7 : fa;
                tx.write(&root->bal[a], fa - amt);
                tx.write(&root->bal[b], fb + amt);
              });
            }
          },
          /*check_oracle=*/true, /*image_seed=*/3);
      ASSERT_TRUE(crashed) << "crash did not fire";
      uint64_t total = 0;
      h.rt.run(ctx, [&](ptm::Tx& tx) {
        total = 0;
        for (int i = 0; i < 32; i++) total += tx.read(&root->bal[i]);
      });
      EXPECT_EQ(total, 32u * 500u)
          << nvm::domain_name(domain) << "/" << ptm::algo_suffix(algo);
    }
  }
}

}  // namespace
