// Telemetry layer: log2 histograms, phase timers, abort attribution,
// JSON emission, and the trace recorder. The JsonWriter tests assert
// exact strings — the writer is deliberately deterministic so artifacts
// stay diffable.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "ptm/runtime.h"
#include "sim/engine.h"
#include "stats/counters.h"
#include "stats/histogram.h"
#include "stats/json_writer.h"
#include "stats/report.h"
#include "stats/trace.h"
#include "test_common.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

/// Every test that flips the global telemetry switch restores it, so test
/// order cannot leak state.
struct TelemetryGuard {
  bool saved = stats::telemetry_enabled();
  explicit TelemetryGuard(bool on) { stats::set_telemetry_enabled(on); }
  ~TelemetryGuard() { stats::set_telemetry_enabled(saved); }
};

// ---------------------------------------------------------------- Histogram

TEST(Histogram, EmptyReportsZeros) {
  stats::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.p99(), 0u);
}

TEST(Histogram, BucketBoundaries) {
  // bucket 0 = {0}, bucket k = [2^(k-1), 2^k).
  stats::Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  h.record(~uint64_t{0});
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);  // {1}
  EXPECT_EQ(h.bucket_count(2), 2u);  // {2,3}
  EXPECT_EQ(h.bucket_count(3), 1u);  // {4..7}
  EXPECT_EQ(h.bucket_count(64), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.max(), ~uint64_t{0});
  EXPECT_EQ(stats::Histogram::bucket_lo(3), 4u);
  EXPECT_EQ(stats::Histogram::bucket_hi(3), 7u);
  EXPECT_EQ(stats::Histogram::bucket_hi(0), 0u);
  EXPECT_EQ(stats::Histogram::bucket_hi(64), ~uint64_t{0});
}

TEST(Histogram, SingleValuePercentilesClampToMax) {
  stats::Histogram h;
  h.record(5);  // bucket 3 spans [4,7]; the clamp reports the observed 5
  EXPECT_EQ(h.percentile(0), 5u);
  EXPECT_EQ(h.p50(), 5u);
  EXPECT_EQ(h.p99(), 5u);
  EXPECT_EQ(h.max(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Histogram, PercentilesOnUniformRange) {
  stats::Histogram h;
  for (uint64_t v = 1; v <= 100; v++) h.record(v);
  // p50 = 50th sample = value 50 → bucket 6 ([32,63]) → hi 63.
  EXPECT_EQ(h.p50(), 63u);
  // p90 = 90th sample = 90 → bucket 7 ([64,127]) → hi clamped to max 100.
  EXPECT_EQ(h.p90(), 100u);
  EXPECT_EQ(h.p99(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, MergeIsBucketwiseSum) {
  stats::Histogram a, b;
  for (uint64_t v = 1; v <= 50; v++) a.record(v);
  for (uint64_t v = 51; v <= 100; v++) b.record(v);
  a.merge(b);
  stats::Histogram whole;
  for (uint64_t v = 1; v <= 100; v++) whole.record(v);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.sum(), whole.sum());
  EXPECT_EQ(a.max(), whole.max());
  for (int i = 0; i < stats::Histogram::kBuckets; i++) {
    EXPECT_EQ(a.bucket_count(i), whole.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(a.p50(), whole.p50());
}

TEST(Histogram, PhaseNamesAreDistinct) {
  for (size_t i = 0; i < stats::kNumPhases; i++) {
    for (size_t j = i + 1; j < stats::kNumPhases; j++) {
      EXPECT_STRNE(stats::phase_name(static_cast<stats::Phase>(i)),
                   stats::phase_name(static_cast<stats::Phase>(j)));
    }
  }
}

// --------------------------------------------------------------- PhaseTimer

TEST(PhaseTimer, RecordsOnlyWhenTelemetryEnabled) {
  sim::RealContext ctx;
  stats::PhaseHists ph;
  {
    TelemetryGuard g(false);
    stats::PhaseTimer t(ctx, &ph, stats::Phase::kRead);
    ctx.advance(100);
  }
  EXPECT_EQ(ph[stats::Phase::kRead].count(), 0u);
  {
    TelemetryGuard g(true);
    stats::PhaseTimer t(ctx, &ph, stats::Phase::kRead);
    ctx.advance(100);
  }
  EXPECT_EQ(ph[stats::Phase::kRead].count(), 1u);
  EXPECT_EQ(ph[stats::Phase::kRead].sum(), 100u);
  {
    TelemetryGuard g(true);
    stats::PhaseTimer t(ctx, &ph, stats::Phase::kRead);
    ctx.advance(7);
    t.cancel();
  }
  EXPECT_EQ(ph[stats::Phase::kRead].count(), 1u);  // cancelled, not recorded
}

// --------------------------------------------------------------- TxCounters

TEST(TxCounters, AddSumsCausesAndMergesPhases) {
  stats::TxCounters a, b;
  a.commits = 3;
  a.aborts = 2;
  a.aborts_by_cause[static_cast<size_t>(stats::AbortCause::kConflictRead)] = 2;
  a.phases.record(stats::Phase::kCommit, 10);
  b.commits = 4;
  b.aborts = 1;
  b.aborts_by_cause[static_cast<size_t>(stats::AbortCause::kValidation)] = 1;
  b.phases.record(stats::Phase::kCommit, 30);
  a.add(b);
  EXPECT_EQ(a.commits, 7u);
  EXPECT_EQ(a.aborts, 3u);
  EXPECT_EQ(a.aborts_of(stats::AbortCause::kConflictRead), 2u);
  EXPECT_EQ(a.aborts_of(stats::AbortCause::kValidation), 1u);
  EXPECT_EQ(a.phases[stats::Phase::kCommit].count(), 2u);
  EXPECT_EQ(a.phases[stats::Phase::kCommit].sum(), 40u);

  const auto total = stats::aggregate({a, b});
  EXPECT_EQ(total.commits, 11u);
  EXPECT_EQ(total.phases[stats::Phase::kCommit].count(), 3u);
}

TEST(TxCounters, CommitAbortRatioSentinel) {
  stats::TxCounters c;
  c.commits = 10;
  EXPECT_TRUE(std::isinf(c.commit_abort_ratio()));  // no aborts: sentinel
  EXPECT_EQ(util::fmt_ratio(c.commit_abort_ratio()), "-");
  c.aborts = 4;
  EXPECT_DOUBLE_EQ(c.commit_abort_ratio(), 2.5);
  EXPECT_EQ(util::fmt_ratio(c.commit_abort_ratio()), "2.50");
  c.commits = 0;  // no commits but aborts: a genuine 0, not the sentinel
  EXPECT_DOUBLE_EQ(c.commit_abort_ratio(), 0.0);
}

// --------------------------------------------------------------- JsonWriter

TEST(JsonWriter, ExactObjectAndArrayOutput) {
  std::ostringstream os;
  stats::JsonWriter w(os);
  w.begin_object();
  w.kv("a", 1);
  w.key("b").begin_array();
  w.value(uint64_t{2}).value("x").value(true);
  w.end_array();
  w.key("c").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"a":1,"b":[2,"x",true],"c":{}})");
}

TEST(JsonWriter, EscapesStrings) {
  std::ostringstream os;
  stats::write_json_string(os, "a\"b\\c\n\t\x01");
  EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  stats::JsonWriter w(os);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::nan(""));
  w.value(2.5);
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null,2.5]");
}

TEST(JsonWriter, HistogramSummaryParsesBack) {
  stats::Histogram h;
  for (uint64_t v = 1; v <= 100; v++) h.record(v);
  std::ostringstream os;
  stats::JsonWriter w(os);
  stats::write_histogram_summary(w, h);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"count\":100"), std::string::npos) << s;
  EXPECT_NE(s.find("\"sum_ns\":5050"), std::string::npos) << s;
  EXPECT_NE(s.find("\"p50_ns\":63"), std::string::npos) << s;
  EXPECT_NE(s.find("\"p99_ns\":100"), std::string::npos) << s;
  EXPECT_NE(s.find("\"max_ns\":100"), std::string::npos) << s;
}

TEST(JsonWriter, RunResultFieldsIncludeCausesAndPhases) {
  TelemetryGuard g(true);
  stats::RunResult r;
  r.workload = "wl";
  r.config = "cfg";
  r.threads = 2;
  r.sim_ns = 1000;
  r.totals.commits = 5;
  r.totals.aborts = 1;
  r.totals.aborts_by_cause[static_cast<size_t>(stats::AbortCause::kExplicit)] = 1;
  r.totals.phases.record(stats::Phase::kCommit, 42);
  std::ostringstream os;
  stats::JsonWriter w(os);
  w.begin_object();
  stats::write_run_result_fields(w, r);
  w.end_object();
  const std::string s = os.str();
  EXPECT_NE(s.find("\"workload\":\"wl\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"abort_causes\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"explicit\":1"), std::string::npos) << s;
  EXPECT_NE(s.find("\"commit\":{"), std::string::npos) << s;
  // Phases with no samples are omitted from the artifact.
  EXPECT_EQ(s.find("\"wpq_stall\""), std::string::npos) << s;
}

// --------------------------------------------------- PTM-integrated telemetry

TEST(Telemetry, PhasesPopulatedDuringTransactions) {
  TelemetryGuard g(true);
  test::Fixture fx(test::small_cfg(nvm::Domain::kAdr));
  auto* root = fx.pool.root<uint64_t>();
  for (int i = 0; i < 5; i++) {
    fx.rt.run(fx.ctx, [&](ptm::Tx& tx) {
      tx.write(root, tx.read(root) + 1);
    });
  }
  const auto& ph = fx.rt.counters(0).phases;
  EXPECT_EQ(ph[stats::Phase::kBegin].count(), 5u);
  EXPECT_EQ(ph[stats::Phase::kCommit].count(), 5u);  // success-only
  EXPECT_EQ(ph[stats::Phase::kRead].count(), 5u);
  EXPECT_EQ(ph[stats::Phase::kWrite].count(), 5u);
  EXPECT_GT(ph[stats::Phase::kCommit].sum(), 0u);    // ADR commits cost time
  EXPECT_GT(ph[stats::Phase::kFlushDrain].count(), 0u);
}

TEST(Telemetry, DisabledRecordsNothing) {
  TelemetryGuard g(false);
  test::Fixture fx(test::small_cfg(nvm::Domain::kAdr));
  auto* root = fx.pool.root<uint64_t>();
  fx.rt.run(fx.ctx, [&](ptm::Tx& tx) { tx.write(root, uint64_t{1}); });
  for (size_t i = 0; i < stats::kNumPhases; i++) {
    EXPECT_EQ(fx.rt.counters(0).phases.h[i].count(), 0u);
  }
  EXPECT_EQ(fx.rt.counters(0).commits, 1u);  // flat counters still work
}

TEST(Telemetry, DesContentionAttributesEveryAbort) {
  TelemetryGuard g(true);
  auto cfg = test::small_cfg(nvm::Domain::kAdr);
  for (auto algo : {ptm::Algo::kOrecLazy, ptm::Algo::kOrecEager}) {
    nvm::Pool pool(cfg);
    ptm::Runtime rt(pool, algo);
    auto* root = pool.root<uint64_t>();
    constexpr int kWorkers = 6;
    constexpr int kIncs = 200;
    sim::Engine engine(kWorkers);
    engine.run([&](sim::ExecContext& ctx) {
      for (int i = 0; i < kIncs; i++) {
        rt.run(ctx, [&](ptm::Tx& tx) { tx.write(root, tx.read(root) + 1); });
      }
    });
    const auto t = stats::aggregate(rt.snapshot_counters());
    EXPECT_EQ(t.commits, static_cast<uint64_t>(kWorkers) * kIncs);
    EXPECT_GT(t.aborts, 0u);
    uint64_t by_cause = 0;
    for (size_t i = 0; i < stats::kNumAbortCauses; i++) by_cause += t.aborts_by_cause[i];
    EXPECT_EQ(by_cause, t.aborts);  // every abort has exactly one cause
    EXPECT_EQ(t.aborts_of(stats::AbortCause::kExplicit), 0u);
    EXPECT_EQ(t.phases[stats::Phase::kCommit].count(), t.commits);
    EXPECT_EQ(t.phases[stats::Phase::kAbortBackoff].count(), t.aborts);
  }
}

// -------------------------------------------------------------------- Trace

TEST(Trace, RecordsSpansAndWritesChromeJson) {
  auto& tr = stats::Trace::instance();
  tr.clear();
  tr.enable();
  const int pid = tr.begin_run("unit/cfg/t1");
  EXPECT_EQ(pid, 1);
  tr.span(0, "tx", 100, 50, "outcome", "commit");
  tr.span(1, "fence_wait", 120, 10);
  EXPECT_EQ(tr.event_count(), 2u);

  std::ostringstream os;
  tr.write_json(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"unit/cfg/t1\""), std::string::npos);
  EXPECT_NE(s.find("\"outcome\":\"commit\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(s.find("\"ts\":0.1"), std::string::npos);  // 100ns = 0.1us

  tr.disable();
  tr.clear();
}

TEST(Trace, RingKeepsNewestEvents) {
  auto& tr = stats::Trace::instance();
  tr.clear();
  tr.enable(/*ring_capacity=*/4);
  for (uint64_t i = 0; i < 10; i++) tr.span(0, "tx", i * 100, 10);
  EXPECT_EQ(tr.event_count(), 4u);
  std::ostringstream os;
  tr.write_json(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"ts\":0.9"), std::string::npos);   // event 9 kept
  EXPECT_EQ(s.find("\"ts\":0.5,"), std::string::npos);  // event 5 overwritten
  tr.disable();
  tr.clear();
}

TEST(Trace, RuntimeEmitsOneSpanPerAttempt) {
  auto& tr = stats::Trace::instance();
  tr.clear();
  tr.enable();
  test::Fixture fx(test::small_cfg(nvm::Domain::kAdr));
  auto* root = fx.pool.root<uint64_t>();
  int attempts = 0;
  fx.rt.run(fx.ctx, [&](ptm::Tx& tx) {
    attempts++;
    tx.write(root, uint64_t{1});
    if (attempts < 2) tx.abort_and_retry();
  });
  std::ostringstream os;
  tr.write_json(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"outcome\":\"commit\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"outcome\":\"explicit\""), std::string::npos) << s;
  tr.disable();
  tr.clear();
}

}  // namespace
