// Persistency-sanitizer tests: each seeded known-bad instruction sequence
// must produce exactly its expected diagnostic, clean runs of both
// algorithms across all four domains must produce zero correctness
// violations, and the REPRO_JSON "psan" key must appear exactly when the
// sanitizer ran. docs/ANALYSIS.md documents the state machine under test.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "analysis/psan.h"
#include "nvm/pool.h"
#include "ptm/runtime.h"
#include "stats/report.h"
#include "test_common.h"

namespace {

using analysis::Diag;
using analysis::DiagKind;

nvm::SystemConfig psan_cfg(nvm::Domain domain = nvm::Domain::kAdr,
                           bool crash_sim = false) {
  auto cfg = test::small_cfg(domain, nvm::Media::kOptane, crash_sim);
  cfg.psan = true;
  return cfg;
}

size_t count_kind(const std::vector<Diag>& ds, DiagKind k) {
  size_t n = 0;
  for (const Diag& d : ds) {
    if (d.kind == k) n++;
  }
  return n;
}

struct Root {
  uint64_t a;
  uint64_t b;
};

// ------------------------------------------------- seeded bad sequences
//
// Each test drives nvm::Memory directly (store/clwb/sfence plus a
// psan_check_persisted ordering point standing in for the PTM's) so the
// instruction stream contains exactly the seeded bug and nothing else.

TEST(PsanSeeded, DroppedFlushBeforeCommitSeal) {
  nvm::Pool pool(psan_cfg());
  analysis::Psan* ps = pool.mem().psan();
  ASSERT_NE(ps, nullptr);
  sim::RealContext ctx{0, 8};
  auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());

  pool.mem().store_word(ctx, nullptr, w, 42, nvm::Space::kData);
  // Seeded bug: no clwb/sfence before the ordering point.
  pool.mem().psan_check_persisted(ctx, w, 8, DiagKind::kMissingFlush,
                                  "seeded: commit-record seal over a dirty line");

  const auto s = ps->summary();
  EXPECT_EQ(s.missing_flush, 1u);
  EXPECT_EQ(s.correctness(), 1u);

  const auto diags = ps->drain();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].kind, DiagKind::kMissingFlush);
  EXPECT_STREQ(diags[0].state, "dirty (never flushed)");
  EXPECT_EQ(diags[0].worker, 0);
  EXPECT_GT(diags[0].store_event, 0u);
  EXPECT_EQ(diags[0].flush_event, 0u);  // never flushed
}

TEST(PsanSeeded, FlushedButUnfencedIsNotDurable) {
  nvm::Pool pool(psan_cfg());
  analysis::Psan* ps = pool.mem().psan();
  ASSERT_NE(ps, nullptr);
  sim::RealContext ctx{0, 8};
  auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());

  pool.mem().store_word(ctx, nullptr, w, 42, nvm::Space::kData);
  pool.mem().clwb(ctx, nullptr, w);
  // Seeded bug: the fence is missing, so the clwb may still be in flight.
  pool.mem().psan_check_persisted(ctx, w, 8, DiagKind::kMissingFlush,
                                  "seeded: seal over a flushed-but-unfenced line");

  const auto diags = ps->drain();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].kind, DiagKind::kMissingFlush);
  EXPECT_STREQ(diags[0].state, "flushed but not fenced");
  EXPECT_GT(diags[0].flush_event, diags[0].store_event);
}

TEST(PsanSeeded, FenceBeforeFlush) {
  nvm::Pool pool(psan_cfg());
  analysis::Psan* ps = pool.mem().psan();
  ASSERT_NE(ps, nullptr);
  sim::RealContext ctx{0, 8};
  auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());

  pool.mem().store_word(ctx, nullptr, w, 42, nvm::Space::kData);
  // Seeded bug: fence first (orders nothing), flush never issued.
  pool.mem().sfence(ctx, nullptr);
  pool.mem().psan_check_persisted(ctx, w, 8, DiagKind::kMissingFlush,
                                  "seeded: fence issued before the flush");

  const auto s = ps->summary();
  EXPECT_EQ(s.redundant_fence, 1u);  // the fence had no clwb to retire
  EXPECT_EQ(s.missing_flush, 1u);    // and the line is still dirty

  const auto diags = ps->drain();
  EXPECT_EQ(count_kind(diags, DiagKind::kRedundantFence), 1u);
  EXPECT_EQ(count_kind(diags, DiagKind::kMissingFlush), 1u);
}

TEST(PsanSeeded, DataStoreAheadOfUndoRecord) {
  // The eager rule: the undo record (log space) must be durable before the
  // in-place data store. Seed the inversion: data goes in-place while the
  // log line was stored but never persisted.
  nvm::Pool pool(psan_cfg());
  analysis::Psan* ps = pool.mem().psan();
  ASSERT_NE(ps, nullptr);
  sim::RealContext ctx{0, 8};
  auto* log_w = reinterpret_cast<uint64_t*>(pool.heap_base());
  auto* data_w = reinterpret_cast<uint64_t*>(pool.heap_base() + 4096);

  pool.mem().store_word(ctx, nullptr, log_w, 7, nvm::Space::kLog);
  // Seeded bug: in-place store issued now; the log record is not durable.
  pool.mem().store_word(ctx, nullptr, data_w, 9, nvm::Space::kData);
  pool.mem().psan_check_persisted(ctx, log_w, 8, DiagKind::kMisorderedPersist,
                                  "seeded: in-place store ahead of its undo record");

  const auto s = ps->summary();
  EXPECT_EQ(s.misordered_persist, 1u);
  EXPECT_EQ(s.correctness(), 1u);

  const auto diags = ps->drain();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].kind, DiagKind::kMisorderedPersist);
}

TEST(PsanSeeded, DoubleFlushIsRedundant) {
  nvm::Pool pool(psan_cfg());
  analysis::Psan* ps = pool.mem().psan();
  ASSERT_NE(ps, nullptr);
  sim::RealContext ctx{0, 8};
  auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());

  pool.mem().store_word(ctx, nullptr, w, 42, nvm::Space::kData);
  pool.mem().clwb(ctx, nullptr, w);
  pool.mem().clwb(ctx, nullptr, w);  // seeded bug: no store since the first
  pool.mem().sfence(ctx, nullptr);
  pool.mem().psan_check_persisted(ctx, w, 8, DiagKind::kMissingFlush,
                                  "control: properly persisted after the fence");

  const auto s = ps->summary();
  EXPECT_EQ(s.redundant_flush, 1u);
  EXPECT_EQ(s.correctness(), 0u);  // the sequence is correct, just wasteful

  const auto diags = ps->drain();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].kind, DiagKind::kRedundantFlush);
  EXPECT_STREQ(diags[0].state, "line already flushed; no store since");
}

TEST(PsanSeeded, FlushOfCleanLineIsRedundant) {
  nvm::Pool pool(psan_cfg());
  analysis::Psan* ps = pool.mem().psan();
  ASSERT_NE(ps, nullptr);
  sim::RealContext ctx{0, 8};
  auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());

  pool.mem().clwb(ctx, nullptr, w);  // nothing was ever stored here

  const auto diags = ps->drain();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].kind, DiagKind::kRedundantFlush);
  EXPECT_STREQ(diags[0].state, "no unpersisted store on line");
}

TEST(PsanSeeded, ProperSequenceIsClean) {
  nvm::Pool pool(psan_cfg());
  analysis::Psan* ps = pool.mem().psan();
  ASSERT_NE(ps, nullptr);
  sim::RealContext ctx{0, 8};
  auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());

  pool.mem().store_word(ctx, nullptr, w, 42, nvm::Space::kData);
  pool.mem().clwb(ctx, nullptr, w);
  pool.mem().sfence(ctx, nullptr);
  pool.mem().psan_check_persisted(ctx, w, 8, DiagKind::kMissingFlush,
                                  "control: store+clwb+sfence is durable");

  const auto s = ps->summary();
  EXPECT_GT(s.checks, 0u);
  EXPECT_EQ(ps->drain().size(), 0u);
}

TEST(PsanSeeded, RedundantFenceAttributedToPhase) {
  nvm::Pool pool(psan_cfg());
  analysis::Psan* ps = pool.mem().psan();
  ASSERT_NE(ps, nullptr);
  sim::RealContext ctx{0, 8};

  ps->set_phase(0, stats::Phase::kLogAppend);
  pool.mem().sfence(ctx, nullptr);  // nothing pending: redundant
  ps->set_phase(0, stats::Phase::kBegin);

  const auto s = ps->summary();
  EXPECT_EQ(s.redundant_fence, 1u);
  EXPECT_EQ(s.redundant_fence_by_phase[static_cast<size_t>(stats::Phase::kLogAppend)],
            1u);
  ps->drain();
}

// ------------------------------------------------- crash classification

TEST(PsanCrash, NeverFlushedStoreFlaggedAtPowerFailure) {
  nvm::Pool pool(psan_cfg(nvm::Domain::kAdr, /*crash_sim=*/true));
  analysis::Psan* ps = pool.mem().psan();
  ASSERT_NE(ps, nullptr);
  sim::RealContext ctx{0, 8};
  auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());

  pool.mem().store_word(ctx, nullptr, w, 42, nvm::Space::kData);
  util::Rng rng(1);
  pool.simulate_power_failure(rng);

  const auto s = ps->summary();
  EXPECT_EQ(s.unflushed_at_crash, 1u);
  EXPECT_EQ(s.torn_at_crash, 0u);
  EXPECT_EQ(ps->crash_unflushed_lines().size(), 1u);
  const auto diags = ps->drain();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].kind, DiagKind::kUnflushedAtCrash);
}

TEST(PsanCrash, FlushedUnfencedStoreCountsAsTorn) {
  nvm::Pool pool(psan_cfg(nvm::Domain::kAdr, /*crash_sim=*/true));
  analysis::Psan* ps = pool.mem().psan();
  ASSERT_NE(ps, nullptr);
  sim::RealContext ctx{0, 8};
  auto* w = reinterpret_cast<uint64_t*>(pool.heap_base());

  pool.mem().store_word(ctx, nullptr, w, 42, nvm::Space::kData);
  pool.mem().clwb(ctx, nullptr, w);  // flushed, never fenced
  util::Rng rng(1);
  pool.simulate_power_failure(rng);

  const auto s = ps->summary();
  EXPECT_EQ(s.unflushed_at_crash, 0u);
  EXPECT_EQ(s.torn_at_crash, 1u);
  EXPECT_TRUE(ps->crash_unflushed_lines().empty());
  EXPECT_EQ(ps->drain().size(), 0u);  // torn is a counter, not a diagnostic
}

// ------------------------------------------------- clean-run guarantees

TEST(PsanClean, BothAlgosAllDomainsReportZeroViolations) {
  for (const auto algo : {ptm::Algo::kOrecEager, ptm::Algo::kOrecLazy}) {
    for (const auto dom : {nvm::Domain::kAdr, nvm::Domain::kEadr,
                           nvm::Domain::kPdram, nvm::Domain::kPdramLite}) {
      test::Fixture fx(psan_cfg(dom), algo);
      auto* root = fx.pool.root<Root>();
      std::vector<void*> blocks;
      for (uint64_t i = 0; i < 64; i++) {
        fx.rt.run(fx.ctx, [&](ptm::Tx& tx) {
          tx.write(&root->a, i);
          tx.write(&root->b, i * 3);
          if (i % 4 == 0) blocks.push_back(tx.alloc(48));
          if (i % 8 == 0 && !blocks.empty()) {
            tx.dealloc(blocks.back());
            blocks.pop_back();
          }
        });
      }
      // Read-only and alloc-only shapes too.
      fx.rt.run(fx.ctx, [&](ptm::Tx& tx) { (void)tx.read(&root->a); });
      fx.rt.run(fx.ctx, [&](ptm::Tx& tx) { (void)tx.alloc(64); });

      analysis::Psan* ps = fx.pool.mem().psan();
      ASSERT_NE(ps, nullptr);
      const auto s = ps->summary();
      EXPECT_EQ(s.correctness(), 0u)
          << ptm::algo_suffix(algo) << "/" << nvm::domain_name(dom)
          << ": missing_flush=" << s.missing_flush
          << " misordered_persist=" << s.misordered_persist;
      ps->drain();
    }
  }
}

TEST(PsanClean, AllocOnlyCommitsFenceNothingRedundant) {
  // Regression guard for the fence fixes psan motivated: alloc-only
  // transactions used to fence an empty flush batch in eager_commit and
  // run the empty write-back fence in lazy_commit.
  for (const auto algo : {ptm::Algo::kOrecEager, ptm::Algo::kOrecLazy}) {
    test::Fixture fx(psan_cfg(nvm::Domain::kAdr), algo);
    for (int i = 0; i < 32; i++) {
      fx.rt.run(fx.ctx, [&](ptm::Tx& tx) { (void)tx.alloc(64); });
    }
    analysis::Psan* ps = fx.pool.mem().psan();
    ASSERT_NE(ps, nullptr);
    const auto s = ps->summary();
    EXPECT_EQ(s.redundant_fence, 0u) << ptm::algo_suffix(algo);
    EXPECT_EQ(s.correctness(), 0u) << ptm::algo_suffix(algo);
    ps->drain();
  }
}

// ------------------------------------------------- artifact serialization

TEST(PsanReport, JsonKeyPresentExactlyWhenEnabled) {
  stats::RunResult r;
  r.workload = "w";
  r.config = "c";
  {
    std::ostringstream os;
    stats::JsonWriter w(os);
    w.begin_object();
    stats::write_run_result_fields(w, r);
    w.end_object();
    EXPECT_EQ(os.str().find("\"psan\""), std::string::npos)
        << "psan off must keep the artifact byte-identical to pre-psan runs";
  }
  r.psan.enabled = true;
  r.psan.missing_flush = 2;
  r.psan.redundant_fence = 3;
  r.psan.redundant_fence_by_phase[static_cast<size_t>(stats::Phase::kFlushDrain)] = 3;
  {
    std::ostringstream os;
    stats::JsonWriter w(os);
    w.begin_object();
    stats::write_run_result_fields(w, r);
    w.end_object();
    const std::string js = os.str();
    EXPECT_NE(js.find("\"psan\":{"), std::string::npos);
    EXPECT_NE(js.find("\"missing_flush\":2"), std::string::npos);
    EXPECT_NE(js.find("\"redundant_fence_by_phase\":{\"flush_drain\":3}"),
              std::string::npos);
  }
}

}  // namespace
