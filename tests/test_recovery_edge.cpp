// Edge cases of logging and recovery that the randomized crash sweeps
// might not hit deterministically.
#include <gtest/gtest.h>

#include "ptm/redo_log.h"
#include "ptm/runtime.h"
#include "test_common.h"
#include "util/crc32.h"

namespace {

struct Root {
  uint64_t cells[256];
};

TEST(LogEntryPacking, RoundTripsOffsetsAndTags) {
  const uint64_t off = (1ull << 31) + 4096 + 8;  // near the 32-bit limit
  for (uint64_t epoch : {0ull, 1ull, 255ull, (1ull << 24) - 1, 123456789ull}) {
    const uint64_t packed = ptm::LogEntry::pack(epoch, off);
    EXPECT_EQ(ptm::LogEntry::offset_of(packed), off);
    EXPECT_TRUE(ptm::LogEntry::tag_matches(packed, epoch));
    EXPECT_FALSE(ptm::LogEntry::tag_matches(packed, epoch + 1));
  }
}

TEST(LogEntryPacking, SealPreservesOffsetAndTagAndDetectsDamage) {
  const uint64_t off = 4096 + 64;
  const uint64_t val = 0xdeadbeefcafef00dull;
  const uint64_t packed = ptm::LogEntry::pack(77, off);
  const uint64_t sealed = ptm::LogEntry::seal(packed, val);
  // The crc occupies its own field: offset and tag are untouched.
  EXPECT_EQ(ptm::LogEntry::offset_of(sealed), off);
  EXPECT_TRUE(ptm::LogEntry::tag_matches(sealed, 77));
  EXPECT_TRUE(ptm::LogEntry::crc_ok(sealed, val));
  // Any single-word tear (wrong value, or stale off word) fails the check.
  EXPECT_FALSE(ptm::LogEntry::crc_ok(sealed, val + 1));
  EXPECT_FALSE(ptm::LogEntry::crc_ok(ptm::LogEntry::seal(packed, val + 1), val));
  // Resealing after a value change yields a fresh valid seal (the stale
  // crc bits must not leak into the new one).
  const uint64_t resealed = ptm::LogEntry::seal(sealed, val + 1);
  EXPECT_TRUE(ptm::LogEntry::crc_ok(resealed, val + 1));
}

TEST(AllocLogPacking, SealRoundTripsAndDetectsDamage) {
  const uint64_t w = ptm::AllocLogOp::make(123456, ptm::AllocLogOp::kFree, 42);
  const uint64_t sealed = ptm::AllocLogOp::seal(w);
  EXPECT_EQ(ptm::AllocLogOp::off_of(sealed), 123456u);
  EXPECT_EQ(ptm::AllocLogOp::op_of(sealed), ptm::AllocLogOp::kFree);
  EXPECT_TRUE(ptm::AllocLogOp::tag_matches(sealed, 42));
  EXPECT_TRUE(ptm::AllocLogOp::crc_ok(sealed));
  EXPECT_FALSE(ptm::AllocLogOp::crc_ok(sealed ^ 0x8));  // flipped offset bit
}

TEST(AllocLogPacking, PreservesOpAndOffset) {
  const uint64_t off = 123456;  // 8-aligned
  const uint64_t w = ptm::AllocLogOp::make(off, ptm::AllocLogOp::kFree, 42);
  EXPECT_EQ(ptm::AllocLogOp::off_of(w), off);
  EXPECT_EQ(ptm::AllocLogOp::op_of(w), ptm::AllocLogOp::kFree);
  EXPECT_TRUE(ptm::AllocLogOp::tag_matches(w, 42));
  EXPECT_FALSE(ptm::AllocLogOp::tag_matches(w, 41));
}

TEST(WriteIndex, LookupInsertAndEpochClear) {
  ptm::WriteIndex idx;
  EXPECT_EQ(idx.lookup(64), -1);
  idx.insert(64, 5);
  idx.insert(128, 6);
  EXPECT_EQ(idx.lookup(64), 5);
  EXPECT_EQ(idx.lookup(128), 6);
  idx.insert(64, 9);  // overwrite
  EXPECT_EQ(idx.lookup(64), 9);
  idx.clear();
  EXPECT_EQ(idx.lookup(64), -1);
  EXPECT_EQ(idx.lookup(128), -1);
}

TEST(WriteIndex, ManyEntriesNoFalseHits) {
  ptm::WriteIndex idx;
  for (uint64_t i = 0; i < 2000; i++) idx.insert(i * 8, static_cast<int64_t>(i));
  for (uint64_t i = 0; i < 2000; i++) {
    ASSERT_EQ(idx.lookup(i * 8), static_cast<int64_t>(i));
  }
  for (uint64_t i = 2000; i < 2100; i++) {
    ASSERT_EQ(idx.lookup(i * 8), -1);
  }
}

TEST(LogOverflow, WriteLogGrowsAndCommits) {
  // A write set far beyond the in-slot log no longer kills the transaction:
  // each overflow takes a capacity abort, links a fresh log segment, and
  // retries (tests/test_overflow.cpp covers this path in depth).
  auto cfg = test::small_cfg(nvm::Domain::kEadr);
  cfg.per_worker_meta_bytes = 1 << 13;  // tiny: ~380 base log entries
  test::Fixture fx(cfg);
  auto* root = fx.pool.root<Root>();
  // Mid-heap region: the overflow segments bump-allocate from the heap
  // start, and the write set must not overlap its own log.
  auto* heap = reinterpret_cast<uint64_t*>(fx.pool.heap_base() + fx.pool.heap_bytes() / 2);
  fx.rt.run(fx.ctx, [&](ptm::Tx& tx) {
    // Distinct words beyond base log capacity.
    for (uint64_t i = 0; i < 4096; i++) {
      tx.write(&heap[i * 8], i);
    }
    (void)root;
  });
  for (uint64_t i = 0; i < 4096; i++) {
    ASSERT_EQ(heap[i * 8], i);
  }
  const auto totals = stats::aggregate(fx.rt.snapshot_counters());
  EXPECT_GT(totals.aborts_of(stats::AbortCause::kCapacity), 0u);
  EXPECT_GT(totals.log_growths, 0u);
  EXPECT_EQ(totals.commits, 1u);
}

TEST(Recovery, NoOpOnCleanPool) {
  test::Fixture fx(test::small_cfg(nvm::Domain::kAdr, nvm::Media::kOptane, true));
  auto* root = fx.pool.root<Root>();
  fx.rt.run(fx.ctx, [&](ptm::Tx& tx) { tx.write(&root->cells[0], uint64_t{7}); });
  fx.rt.recover(fx.ctx);
  fx.rt.recover(fx.ctx);  // idempotent, repeatable
  EXPECT_EQ(root->cells[0], 7u);
  // Still usable afterwards.
  fx.rt.run(fx.ctx, [&](ptm::Tx& tx) { tx.write(&root->cells[1], uint64_t{8}); });
  EXPECT_EQ(root->cells[1], 8u);
}

TEST(Recovery, StaleLogEntriesAreSkipped) {
  // Hand-craft the partial-persistence hazard: a slot header that claims a
  // committed redo log whose entries carry a stale epoch tag. Recovery
  // must not replay them.
  auto cfg = test::small_cfg(nvm::Domain::kAdr, nvm::Media::kOptane, true);
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 8);
  auto* root = pool.root<Root>();
  root->cells[3] = 111;

  auto slot = ptm::SlotLayout::carve(pool.worker_meta(2), pool.worker_meta_bytes());
  const uint64_t header_epoch = 9;
  slot.header->status = ptm::TxSlotHeader::make(header_epoch, ptm::TxSlotHeader::kCommitted);
  slot.header->algo = static_cast<uint64_t>(ptm::Algo::kOrecLazy);
  slot.header->log_count = 1;
  // The entry is from epoch 7 — a leftover the crash surfaced. (Sealed:
  // staleness must be decided by the tag, not by an incidental crc fail.)
  slot.log[0].val = 999;
  slot.log[0].off =
      ptm::LogEntry::seal(ptm::LogEntry::pack(7, pool.offset_of(&root->cells[3])), 999);

  const auto rep = rt.recover(ctx);
  EXPECT_EQ(root->cells[3], 111u) << "stale-epoch record was replayed";
  EXPECT_GE(rep.records_stale, 1u);
  EXPECT_EQ(rep.records_replayed, 0u);
}

TEST(Recovery, MatchingEpochCommittedLogIsReplayed) {
  auto cfg = test::small_cfg(nvm::Domain::kAdr, nvm::Media::kOptane, true);
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 8);
  auto* root = pool.root<Root>();
  root->cells[4] = 111;

  auto slot = ptm::SlotLayout::carve(pool.worker_meta(2), pool.worker_meta_bytes());
  slot.header->status = ptm::TxSlotHeader::make(9, ptm::TxSlotHeader::kCommitted);
  slot.header->algo = static_cast<uint64_t>(ptm::Algo::kOrecLazy);
  slot.header->log_count = 1;
  slot.log[0].val = 999;
  slot.log[0].off =
      ptm::LogEntry::seal(ptm::LogEntry::pack(9, pool.offset_of(&root->cells[4])), 999);
  // The committer also seals a whole-log checksum into the header.
  slot.header->pad[ptm::SlotLayout::kLogCrcPad] =
      util::crc32c_u64(slot.log[0].val, util::crc32c_u64(slot.log[0].off, 0));

  const auto rep = rt.recover(ctx);
  EXPECT_EQ(root->cells[4], 999u) << "committed redo log was not replayed";
  EXPECT_EQ(rep.records_replayed, 1u);
  EXPECT_EQ(rep.log_crc_mismatches, 0u);
  EXPECT_EQ(rep.records_discarded(), 0u);
}

TEST(Recovery, ActiveUndoLogRollsBackInReverse) {
  auto cfg = test::small_cfg(nvm::Domain::kAdr, nvm::Media::kOptane, true);
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecEager);
  sim::RealContext ctx(0, 8);
  auto* root = pool.root<Root>();
  root->cells[5] = 333;  // the "torn in-place write"

  auto slot = ptm::SlotLayout::carve(pool.worker_meta(1), pool.worker_meta_bytes());
  slot.header->status = ptm::TxSlotHeader::make(4, ptm::TxSlotHeader::kActive);
  slot.header->algo = static_cast<uint64_t>(ptm::Algo::kOrecEager);
  slot.header->log_count = 2;
  // Two records for the same word: replay in reverse must end on the
  // OLDER value (log[0]).
  slot.log[0].val = 100;
  slot.log[0].off =
      ptm::LogEntry::seal(ptm::LogEntry::pack(4, pool.offset_of(&root->cells[5])), 100);
  slot.log[1].val = 200;
  slot.log[1].off =
      ptm::LogEntry::seal(ptm::LogEntry::pack(4, pool.offset_of(&root->cells[5])), 200);

  const auto rep = rt.recover(ctx);
  EXPECT_EQ(root->cells[5], 100u);
  EXPECT_EQ(rep.records_replayed, 2u);
  EXPECT_EQ(rep.slots_rolled_back, 1u);
}

TEST(Recovery, EpochAdvancesAfterRecovery) {
  // Transactions after recovery must tag logs with a fresh epoch so their
  // records cannot be confused with pre-crash ones.
  auto cfg = test::small_cfg(nvm::Domain::kAdr, nvm::Media::kOptane, true);
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx(0, 8);
  auto* root = pool.root<Root>();

  auto slot = ptm::SlotLayout::carve(pool.worker_meta(0), pool.worker_meta_bytes());
  const uint64_t before = ptm::TxSlotHeader::epoch_of(slot.header->status);
  rt.recover(ctx);
  const uint64_t after = ptm::TxSlotHeader::epoch_of(slot.header->status);
  EXPECT_GT(after, before);

  // And the first post-recovery transaction must work normally.
  rt.run(ctx, [&](ptm::Tx& tx) { tx.write(&root->cells[0], uint64_t{1}); });
  EXPECT_EQ(root->cells[0], 1u);
}

}  // namespace
