// Quickstart: a durable counter in five steps.
//
//   1. configure the modelled machine (media + durability domain);
//   2. create a pool (stands in for a DAX-mapped Optane file);
//   3. create a PTM runtime (orec-lazy = redo logging);
//   4. run transactions with ptm::Runtime::run;
//   5. simulate a power failure and recover.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "nvm/pool.h"
#include "ptm/runtime.h"
#include "sim/context.h"
#include "util/rng.h"

struct AppRoot {
  uint64_t counter;
  uint64_t total_deposits;
};

int main() {
  // 1. The machine: Optane-backed heap under the ADR durability domain
  //    (explicit clwb+sfence, like a 2020-era Optane DC system). Crash
  //    simulation is on so we can demonstrate recovery.
  nvm::SystemConfig cfg;
  cfg.media = nvm::Media::kOptane;
  cfg.domain = nvm::Domain::kAdr;
  cfg.crash_sim = true;
  cfg.pool_size = 64ull << 20;

  // 2-3. Pool + runtime.
  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext ctx;  // plain execution (no discrete-event modelling)

  // Recovery is a no-op on a fresh pool but is the required first step on
  // every open.
  rt.recover(ctx);

  auto* root = pool.root<AppRoot>();

  // 4. Durable transactions: each run() is atomic and, once it returns,
  //    persistent under the configured domain.
  for (int i = 0; i < 10; i++) {
    rt.run(ctx, [&](ptm::Tx& tx) {
      tx.write(&root->counter, tx.read(&root->counter) + 1);
      tx.write(&root->total_deposits, tx.read(&root->total_deposits) + 100);
    });
  }
  std::printf("after 10 transactions: counter=%llu deposits=%llu\n",
              static_cast<unsigned long long>(root->counter),
              static_cast<unsigned long long>(root->total_deposits));

  // 5. Pull the plug mid-transaction: arm a crash a few persistence events
  //    into the next transaction, then recover.
  pool.mem().arm_crash_after(3, /*rng_seed=*/42);
  try {
    rt.run(ctx, [&](ptm::Tx& tx) {
      tx.write(&root->counter, uint64_t{9999});
      tx.write(&root->total_deposits, uint64_t{0});
    });
  } catch (const nvm::CrashPoint&) {
    std::printf("power failure injected mid-transaction!\n");
  }
  util::Rng rng(7);
  pool.simulate_power_failure(rng);
  rt.recover(ctx);

  std::printf("after crash + recovery: counter=%llu deposits=%llu "
              "(the torn transaction left no trace)\n",
              static_cast<unsigned long long>(root->counter),
              static_cast<unsigned long long>(root->total_deposits));
  return root->counter == 10 && root->total_deposits == 1000 ? 0 : 1;
}
