// Example: a durable key/value store (the paper's memcached scenario).
//
// Builds a persistent hash map of string keys -> order records, serves a
// mixed get/put workload from several simulated clients under the
// discrete-event engine, and reports per-domain cost counters — a small
// version of what bench/fig8_memcached measures.
//
// Build & run:  ./build/examples/durable_kv
#include <cstdio>

#include "containers/hashmap.h"
#include "ptm/runtime.h"
#include "sim/engine.h"
#include "util/strkey.h"

namespace {

struct OrderRecord {
  uint64_t id;
  uint64_t amount_cents;
  uint64_t timestamp;
  uint64_t status;  // 0 = placed, 1 = shipped
};

struct AppRoot {
  cont::HashMap::Handle orders;
};

}  // namespace

int main() {
  nvm::SystemConfig cfg;
  cfg.media = nvm::Media::kOptane;
  cfg.domain = nvm::Domain::kEadr;  // try kAdr / kPdram and compare!
  cfg.pool_size = 128ull << 20;
  cfg.max_workers = 9;

  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
  sim::RealContext setup(8, 9);

  auto* root = pool.root<AppRoot>();
  rt.run(setup, [&](ptm::Tx& tx) { cont::HashMap::create(tx, &root->orders, 4096); });

  // Eight simulated clients place and update orders concurrently.
  constexpr int kClients = 8;
  constexpr uint64_t kOrdersPerClient = 500;
  sim::Engine engine(kClients);
  engine.run([&](sim::ExecContext& ctx) {
    const auto me = static_cast<uint64_t>(ctx.worker_id());
    for (uint64_t i = 0; i < kOrdersPerClient; i++) {
      const uint64_t key = me * 1'000'000 + i;
      // Place the order.
      rt.run(ctx, [&](ptm::Tx& tx) {
        auto* rec = tx.alloc_obj<OrderRecord>();
        tx.write(&rec->id, key);
        tx.write(&rec->amount_cents, (i * 137) % 100'000);
        tx.write(&rec->timestamp, ctx.now_ns());
        tx.write(&rec->status, uint64_t{0});
        cont::HashMap::insert(tx, &root->orders, key, reinterpret_cast<uint64_t>(rec));
      });
      // Ship every other order.
      if (i % 2 == 0) {
        rt.run(ctx, [&](ptm::Tx& tx) {
          uint64_t rec_word;
          if (cont::HashMap::lookup(tx, &root->orders, key, &rec_word)) {
            tx.write(&reinterpret_cast<OrderRecord*>(rec_word)->status, uint64_t{1});
          }
        });
      }
    }
  });

  // Report.
  uint64_t total = 0, shipped = 0;
  rt.run(setup, [&](ptm::Tx& tx) {
    total = cont::HashMap::size(tx, &root->orders);
    shipped = 0;
    for (int c = 0; c < kClients; c++) {
      for (uint64_t i = 0; i < kOrdersPerClient; i += 2) {
        uint64_t rec_word;
        if (cont::HashMap::lookup(tx, &root->orders,
                                  static_cast<uint64_t>(c) * 1'000'000 + i, &rec_word)) {
          shipped += tx.read(&reinterpret_cast<OrderRecord*>(rec_word)->status);
        }
      }
    }
  });

  const auto totals = stats::aggregate(rt.snapshot_counters());
  std::printf("orders stored: %llu (expected %llu), shipped: %llu\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(kClients * kOrdersPerClient),
              static_cast<unsigned long long>(shipped));
  std::printf("simulated duration: %.3f ms; commits=%llu aborts=%llu clwb=%llu "
              "sfence=%llu\n",
              static_cast<double>(engine.elapsed_ns()) / 1e6,
              static_cast<unsigned long long>(totals.commits),
              static_cast<unsigned long long>(totals.aborts),
              static_cast<unsigned long long>(totals.clwbs),
              static_cast<unsigned long long>(totals.sfences));
  return total == kClients * kOrdersPerClient ? 0 : 1;
}
