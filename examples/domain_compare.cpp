// Example: comparing durability domains on your own workload.
//
// Runs the same bank-transfer workload under every durability domain the
// paper studies (ADR, eADR, the proposed PDRAM and PDRAM-Lite, plus the
// non-persistent DRAM baseline) on the simulated machine, and prints a
// ranking — the decision the paper argues system designers must make
// per application (§V).
//
// Build & run:  ./build/examples/domain_compare
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "ptm/runtime.h"
#include "sim/engine.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

// More accounts than the modelled L3 can hold, so the media (DRAM vs
// Optane) and the durability domain both matter — with an L3-resident
// working set every domain except ADR collapses to cache speed.
constexpr int kAccounts = 16384;  // 128KB of balances vs a 64KB L3 model

struct BankRoot {
  uint64_t accounts;  // pointer to the balance array (heap-allocated)
};

struct Config {
  std::string label;
  nvm::Media media;
  nvm::Domain domain;
};

double run_domain(const Config& c, ptm::Algo algo, int threads) {
  nvm::SystemConfig cfg;
  cfg.media = c.media;
  cfg.domain = c.domain;
  cfg.pool_size = 64ull << 20;
  cfg.max_workers = threads + 1;
  cfg.l3_bytes = 64ull << 10;
  cfg.dram_cache_bytes = 4ull << 20;

  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, algo);
  sim::RealContext setup(threads, threads + 1);
  auto* root = pool.root<BankRoot>();
  uint64_t* balance = nullptr;
  rt.run(setup, [&](ptm::Tx& tx) {
    balance = static_cast<uint64_t*>(rt.allocator().alloc_raw(setup, nullptr, kAccounts * 8));
    tx.write(&root->accounts, reinterpret_cast<uint64_t>(balance));
  });
  // Batch initialization: write sets per transaction stay modest.
  for (int i0 = 0; i0 < kAccounts; i0 += 2048) {
    rt.run(setup, [&](ptm::Tx& tx) {
      for (int i = i0; i < i0 + 2048 && i < kAccounts; i++) {
        tx.write(&balance[i], uint64_t{1000});
      }
    });
  }
  rt.reset_counters();

  sim::Engine engine(threads);
  engine.run([&](sim::ExecContext& ctx) {
    util::Rng rng(static_cast<uint64_t>(ctx.worker_id()) * 31 + 17);
    for (int i = 0; i < 1500; i++) {
      const uint64_t from = rng.next_bounded(kAccounts);
      const uint64_t to = (from + 1 + rng.next_bounded(kAccounts - 1)) % kAccounts;
      rt.run(ctx, [&](ptm::Tx& tx) {
        const uint64_t f = tx.read(&balance[from]);
        const uint64_t t = tx.read(&balance[to]);
        const uint64_t amt = f > 10 ? 10 : f;
        tx.write(&balance[from], f - amt);
        tx.write(&balance[to], t + amt);
      });
    }
  });
  const auto totals = stats::aggregate(rt.snapshot_counters());
  return static_cast<double>(totals.commits) * 1e3 /
         static_cast<double>(engine.elapsed_ns());  // Mtx/s
}

}  // namespace

int main() {
  const std::vector<Config> configs = {
      {"DRAM (not persistent)", nvm::Media::kDram, nvm::Domain::kEadr},
      {"Optane ADR", nvm::Media::kOptane, nvm::Domain::kAdr},
      {"Optane eADR", nvm::Media::kOptane, nvm::Domain::kEadr},
      {"PDRAM (proposed)", nvm::Media::kOptane, nvm::Domain::kPdram},
      {"PDRAM-Lite (proposed)", nvm::Media::kOptane, nvm::Domain::kPdramLite},
  };

  constexpr int kThreads = 8;
  util::TextTable table({"durability domain", "redo Mtx/s", "undo Mtx/s"});
  for (const auto& c : configs) {
    table.add_row({c.label,
                   util::fmt(run_domain(c, ptm::Algo::kOrecLazy, kThreads), 3),
                   util::fmt(run_domain(c, ptm::Algo::kOrecEager, kThreads), 3)});
  }
  std::printf("bank-transfer workload, %d simulated threads:\n\n", kThreads);
  table.print(std::cout);
  std::printf("\nExpected ordering: DRAM > PDRAM > PDRAM-Lite >= eADR > ADR,\n"
              "and redo >= undo within each domain (paper Figs 3-7).\n");
  return 0;
}
