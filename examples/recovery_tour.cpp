// Example: a tour of crash-recovery semantics across durability domains.
//
// Shows, for each (algorithm, domain) pair, what a power failure in the
// middle of a batch of transactions leaves behind and how recovery
// restores the committed prefix:
//   * ADR + redo: un-fenced log entries vanish; committed logs replay;
//   * ADR + undo: persisted in-place writes of the torn transaction are
//     rolled back from the undo log;
//   * eADR: every executed store survives the crash, so recovery's only
//     job is discarding/rolling back the in-flight transaction.
//
// Build & run:  ./build/examples/recovery_tour
#include <cstdio>

#include "nvm/pool.h"
#include "ptm/runtime.h"
#include "sim/context.h"
#include "util/rng.h"

namespace {

constexpr int kCells = 64;

struct Root {
  uint64_t cell[kCells];
};

void tour(ptm::Algo algo, nvm::Domain domain) {
  nvm::SystemConfig cfg;
  cfg.media = nvm::Media::kOptane;
  cfg.domain = domain;
  cfg.crash_sim = true;
  cfg.pool_size = 32ull << 20;

  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, algo);
  sim::RealContext ctx;
  auto* root = pool.root<Root>();

  rt.run(ctx, [&](ptm::Tx& tx) {
    for (int i = 0; i < kCells; i++) tx.write(&root->cell[i], uint64_t{1});
  });
  pool.mem().checkpoint_all_persistent();

  // Crash somewhere inside the 3rd..5th transaction.
  pool.mem().arm_crash_after(120, /*rng_seed=*/1234);
  int committed = 0;
  try {
    for (int t = 0; t < 50; t++) {
      rt.run(ctx, [&](ptm::Tx& tx) {
        // Each transaction doubles one whole stripe of 8 cells, so within
        // a stripe all cells must always be equal — a torn transaction
        // would leave a mixed stripe behind.
        // Column-major striping: the 8 cells of a stripe live on 8
        // *different* cache lines, so per-line persistence cannot make a
        // stripe atomic by accident.
        const int stripe = t % 8;
        for (int i = 0; i < 8; i++) {
          const int idx = i * 8 + stripe;
          tx.write(&root->cell[idx], tx.read(&root->cell[idx]) * 2);
        }
      });
      committed++;
    }
  } catch (const nvm::CrashPoint&) {
  }

  util::Rng rng(99);
  pool.simulate_power_failure(rng);
  rt.recover(ctx);

  // Atomicity check: all 8 cells of each stripe moved together, so after
  // recovery every stripe must be uniform.
  bool consistent = true;
  for (int s = 0; s < 8; s++) {
    for (int i = 1; i < 8; i++) {
      if (root->cell[i * 8 + s] != root->cell[s]) consistent = false;
    }
  }

  std::printf("  %-18s %-11s committed-before-crash=%2d  consistent=%s\n",
              ptm::algo_name(algo), nvm::domain_name(domain), committed,
              consistent ? "yes" : "NO (bug!)");
}

}  // namespace

int main() {
  std::printf("crash at a fixed persistence-event count, then recover:\n");
  for (auto algo : {ptm::Algo::kOrecLazy, ptm::Algo::kOrecEager}) {
    for (auto domain : {nvm::Domain::kAdr, nvm::Domain::kEadr}) {
      tour(algo, domain);
    }
  }
  std::printf("all states consistent: committed transactions survive, torn "
              "ones leave no trace.\n");
  return 0;
}
