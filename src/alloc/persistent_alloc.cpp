#include "alloc/persistent_alloc.h"

#include <atomic>
#include <cassert>
#include <cstring>
#include <new>
#include <stdexcept>

namespace alloc {
namespace {

constexpr size_t kClassSizes[PersistentAllocator::kNumClasses] = {
    16,  32,  48,   64,   96,   128,  192,   256,
    384, 512, 1024, 2048, 4096, 8192, 16384, 65536};

constexpr uint64_t kHeaderMagicShift = 48;
constexpr uint64_t kHeaderMagic = 0xA10Cull;  // tag in the block header word

uint64_t make_header(int cls, size_t payload) {
  return (kHeaderMagic << kHeaderMagicShift) | (static_cast<uint64_t>(cls) << 40) |
         static_cast<uint64_t>(payload);
}

int header_class(uint64_t h) { return static_cast<int>((h >> 40) & 0xff); }
size_t header_size(uint64_t h) { return static_cast<size_t>(h & ((1ull << 40) - 1)); }
// assert-only; [[maybe_unused]] keeps NDEBUG builds warning-clean
[[maybe_unused]] bool header_valid(uint64_t h) {
  return (h >> kHeaderMagicShift) == kHeaderMagic;
}

}  // namespace

size_t PersistentAllocator::class_size(int cls) { return kClassSizes[cls]; }

int PersistentAllocator::class_for(size_t n) {
  for (int i = 0; i < kNumClasses; i++) {
    if (kClassSizes[i] >= n) return i;
  }
  return -1;
}

PersistentAllocator::PersistentAllocator(nvm::Pool& pool)
    : pool_(pool), heap_(pool.heap_base()), heap_bytes_(pool.heap_bytes()),
      max_workers_(pool.config().max_workers) {
  bump_ = reinterpret_cast<uint64_t*>(heap_);
  heads_ = bump_ + 1;
  const size_t header_words = 1 + static_cast<size_t>(max_workers_) * kNumClasses;
  data_start_ = (header_words * 8 + 63) & ~size_t{63};
  // A freshly formatted pool is zeroed; bump==0 means "not yet initialized".
  if (*bump_ == 0) {
    *bump_ = data_start_;
    // The pool checkpoint after construction (Pool ctor / caller) persists
    // this formatting.
  }
  bump_cache_.store(*bump_, std::memory_order_relaxed);
}

uint64_t PersistentAllocator::reserve_bump(sim::ExecContext& ctx, stats::TxCounters* c,
                                           size_t need, size_t align) {
  // 1. Lock-free reservation in the volatile counter (no scheduling point).
  uint64_t old = bump_cache_.load(std::memory_order_relaxed);
  uint64_t start;
  do {
    start = (old + align - 1) & ~(align - 1);
    if (start + need > heap_bytes_) throw std::bad_alloc();
  } while (!bump_cache_.compare_exchange_weak(old, start + need, std::memory_order_acq_rel));

  // 2. Durably advance the persistent high-water mark (CAS-max: a slower
  //    worker persisting a smaller end must never regress it), then charge
  //    the store+flush+fence cost.
  // pmemlint: allow(cross-worker CAS-max; accounted and persisted via mem below)
  std::atomic_ref<uint64_t> hw(*bump_);
  uint64_t cur = hw.load(std::memory_order_relaxed);
  const uint64_t end = start + need;
  while (cur < end && !hw.compare_exchange_weak(cur, end, std::memory_order_acq_rel)) {
  }
  nvm::Memory& mem = pool_.mem();
  mem.account_store_in_place(ctx, c, bump_, nvm::Space::kData);
  mem.clwb(ctx, c, bump_);
  mem.sfence(ctx, c);
  return start;
}

void PersistentAllocator::persist_word(sim::ExecContext& ctx, stats::TxCounters* c,
                                       uint64_t* w, uint64_t v) {
  nvm::Memory& mem = pool_.mem();
  mem.store_word(ctx, c, w, v, nvm::Space::kData);
  mem.clwb(ctx, c, w);
  mem.sfence(ctx, c);
}

void* PersistentAllocator::alloc(sim::ExecContext& ctx, stats::TxCounters* c, size_t n) {
  if (n == 0) n = 8;
  const int cls = class_for(n);
  if (cls < 0) throw std::invalid_argument("allocation exceeds kMaxBlock");
  nvm::Memory& mem = pool_.mem();

  uint64_t* head = head_slot(ctx.worker_id(), cls);
  const uint64_t head_off = mem.load_word(ctx, c, head, nvm::Space::kData);
  if (head_off != 0) {
    auto* payload = reinterpret_cast<uint64_t*>(heap_ + head_off);
    if (is_quarantined(payload - 1, 16)) {
      // Pop-time purge: a block quarantined after it entered the free list
      // is diverted here instead of being handed out. Its link word sits on
      // the damaged line itself, so the remainder of this list is cut, not
      // chased — the leak is bounded and deliberate (degraded mode).
      persist_word(ctx, c, head, 0);
      quarantined_blocks_++;
    } else {
      // Pop: the block's first payload word is the next-free offset.
      const uint64_t next = mem.load_word(ctx, c, payload, nvm::Space::kData);
      persist_word(ctx, c, head, next);
      return payload;
    }
  }

  // Fresh block from the bump region. The reservation is atomic; the block
  // header persists before the block is handed out, so recovery can always
  // trust block headers of logged allocations, and committed data never
  // sits beyond the persisted high-water mark.
  const size_t need = 8 + kClassSizes[cls];
  const uint64_t cur = reserve_bump(ctx, c, need, 8);
  auto* hdr = reinterpret_cast<uint64_t*>(heap_ + cur);
  mem.store_word(ctx, c, hdr, make_header(cls, kClassSizes[cls]), nvm::Space::kData);
  mem.clwb(ctx, c, hdr);
  mem.sfence(ctx, c);
  return hdr + 1;
}

void PersistentAllocator::free_block(sim::ExecContext& ctx, stats::TxCounters* c, void* p) {
  assert(pool_.contains(p));
  auto* payload = static_cast<uint64_t*>(p);
  // A quarantined block never re-enters circulation: these are the lines
  // recovery found damaged beyond repair, so the header word below may be
  // garbage and the space must stay out of the free lists.
  if (is_quarantined(payload - 1, 16)) {
    quarantined_blocks_++;
    return;
  }
  const uint64_t hdr = *(payload - 1);
  assert(header_valid(hdr) && "free of a non-heap block");
  const int cls = header_class(hdr);
  nvm::Memory& mem = pool_.mem();

  uint64_t* head = head_slot(ctx.worker_id(), cls);
  const uint64_t old_head = mem.load_word(ctx, c, head, nvm::Space::kData);
  // Invalidate stale transactional readers before clobbering the word.
  if (reclaim_hook_) reclaim_hook_(payload);
  // Link, then publish: next pointer persists before the head moves.
  persist_word(ctx, c, payload, old_head);
  persist_word(ctx, c, head, static_cast<uint64_t>(reinterpret_cast<char*>(p) - heap_));
}

bool PersistentAllocator::in_free_list(const void* p) {
  const uint64_t off = static_cast<uint64_t>(static_cast<const char*>(p) - heap_);
  for (int w = 0; w < max_workers_; w++) {
    for (int cls = 0; cls < kNumClasses; cls++) {
      uint64_t cur = *head_slot(w, cls);
      while (cur != 0) {
        if (cur == off) return true;
        // A damaged (quarantined) link word could point anywhere; stop the
        // walk at the first offset that cannot be a block rather than
        // chasing garbage out of the heap.
        if (cur >= heap_bytes_ || (cur & 7) != 0) break;
        cur = *reinterpret_cast<uint64_t*>(heap_ + cur);
      }
    }
  }
  return false;
}

void PersistentAllocator::free_block_if_absent(sim::ExecContext& ctx, stats::TxCounters* c,
                                               void* p) {
  if (in_free_list(p)) return;
  free_block(ctx, c, p);
}

void* PersistentAllocator::alloc_raw(sim::ExecContext& ctx, stats::TxCounters* c, size_t n) {
  const size_t need = (n + 63) & ~size_t{63};
  const uint64_t cur = reserve_bump(ctx, c, need, 64);
  return heap_ + cur;
}

size_t PersistentAllocator::usable_size(const void* p) const {
  const uint64_t hdr = *(static_cast<const uint64_t*>(p) - 1);
  assert(header_valid(hdr));
  return header_size(hdr);
}

uint64_t PersistentAllocator::high_water_bytes() const {
  return bump_cache_.load(std::memory_order_relaxed);
}

void PersistentAllocator::quarantine(const void* p, size_t len) {
  if (len == 0) return;
  assert(pool_.contains(p));
  const char* lo = static_cast<const char*>(p);
  const uint64_t first = static_cast<uint64_t>(lo - heap_) / 64;
  const uint64_t last = static_cast<uint64_t>(lo + len - 1 - heap_) / 64;
  for (uint64_t l = first; l <= last; l++) {
    if (quarantined_lines_.insert(l).second) quarantined_bytes_ += 64;
  }
}

bool PersistentAllocator::is_quarantined(const void* p, size_t len) const {
  if (quarantined_lines_.empty() || len == 0) return false;
  const char* lo = static_cast<const char*>(p);
  const uint64_t first = static_cast<uint64_t>(lo - heap_) / 64;
  const uint64_t last = static_cast<uint64_t>(lo + len - 1 - heap_) / 64;
  for (uint64_t l = first; l <= last; l++) {
    if (quarantined_lines_.count(l) != 0) return true;
  }
  return false;
}

}  // namespace alloc
