// Crash-consistent persistent-heap allocator (stand-in for Makalu [40]).
//
// Design:
//  * Segregated size classes with **per-worker free lists** — no locks and
//    no CAS loops, which matters because allocator code charges simulated
//    time and must never hold a blocking lock across a scheduling point of
//    the discrete-event engine.
//  * A persistent bump high-water pointer for fresh blocks. The bump word is
//    persisted (clwb+sfence) *before* a fresh block is handed out, so a
//    committed transaction can never reference space beyond the persisted
//    high-water mark. Space reserved by transactions that crashed before
//    logging is leaked — the same trade Makalu makes and reclaims with GC;
//    we document it instead (recovery tests assert bounded leakage).
//  * Free-list pops/pushes are single 8-byte persisted stores. Atomicity
//    with the owning transaction comes from the PTM's per-thread alloc log
//    (see ptm/tx.h): the log entry persists before the pop does, and
//    recovery re-inserts blocks of uncommitted transactions with a
//    membership check (`free_block_if_absent`), making replay idempotent.
//
// Block format: one 8-byte header word [class_idx<<56 | payload_size]
// immediately before the payload. Payloads are 8-byte aligned and sized in
// multiples of 8 so the PTM's word-granular instrumentation is always safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_set>

#include "nvm/pool.h"
#include "sim/context.h"
#include "stats/counters.h"

namespace alloc {

class PersistentAllocator {
 public:
  static constexpr int kNumClasses = 16;
  static constexpr size_t kMaxBlock = 64 * 1024;

  explicit PersistentAllocator(nvm::Pool& pool);

  /// Allocate a block of at least `n` bytes for `ctx`'s worker. Durable
  /// before return (see header comment). Throws std::bad_alloc when the
  /// heap is exhausted.
  void* alloc(sim::ExecContext& ctx, stats::TxCounters* c, size_t n);

  /// Return `p` (from alloc) to the worker's free list, durably.
  void free_block(sim::ExecContext& ctx, stats::TxCounters* c, void* p);

  /// Recovery-safe free: no-op if `p` is already on some free list.
  void free_block_if_absent(sim::ExecContext& ctx, stats::TxCounters* c, void* p);

  /// One-shot bump allocation for large, never-freed structures (container
  /// bucket arrays, table heaps). 64-byte aligned.
  void* alloc_raw(sim::ExecContext& ctx, stats::TxCounters* c, size_t n);

  /// Usable payload size of a block returned by alloc().
  size_t usable_size(const void* p) const;

  /// Scan: is `p` currently on any worker's free list? (recovery helper)
  bool in_free_list(const void* p);

  /// Bytes between heap start and the persistent high-water mark.
  uint64_t high_water_bytes() const;

  // ----- damage quarantine (degraded-mode recovery) ---------------------
  //
  // Line-granular exclusion set for heap space recovery found damaged
  // beyond repair. Quarantine metadata is volatile by design: each
  // recover() pass re-detects the damage and re-quarantines, so a restart
  // cannot silently recirculate a block the previous incarnation refused.

  /// Exclude every 64-byte line overlapping [p, p+len) from reuse.
  void quarantine(const void* p, size_t len);

  /// Does [p, p+len) overlap any quarantined line?
  bool is_quarantined(const void* p, size_t len) const;

  uint64_t quarantined_bytes() const { return quarantined_bytes_; }
  uint64_t quarantined_blocks() const { return quarantined_blocks_; }

  /// Allocator metadata region (bump word + free-list head array), for
  /// integrity scans: the scrubber walks these lines for media faults.
  const char* metadata_base() const { return heap_; }
  size_t metadata_bytes() const { return data_start_; }

  static size_t class_size(int cls);
  static int class_for(size_t n);

  /// Hook invoked with the block's first payload word right before
  /// free_block overwrites it with the free-list link. The PTM runtime
  /// installs an orec-version bump here so concurrent transactions that
  /// still hold a stale pointer to the block fail validation instead of
  /// chasing a free-list offset (safe memory reclamation).
  void set_reclaim_hook(std::function<void(void*)> hook) { reclaim_hook_ = std::move(hook); }

 private:
  // Heap prefix: [ bump_word | heads[max_workers][kNumClasses] ] then blocks.
  struct HeapHeader {
    uint64_t bump;  // persistent high-water offset from heap base
    // heads follow, max_workers * kNumClasses words
  };

  uint64_t* head_slot(int worker, int cls) {
    return heads_ + static_cast<size_t>(worker) * kNumClasses + cls;
  }

  void persist_word(sim::ExecContext& ctx, stats::TxCounters* c, uint64_t* w, uint64_t v);

  nvm::Pool& pool_;
  char* heap_;
  size_t heap_bytes_;
  // Atomically reserve `need` bytes at alignment `align` from the bump
  // region and durably advance the persistent high-water mark. The
  // reservation itself is a lock-free RMW (no simulated-time scheduling
  // point may separate read and update — two workers would otherwise carve
  // the same block), and the pmem word is advanced with a CAS-max so
  // out-of-order persists can never regress it.
  uint64_t reserve_bump(sim::ExecContext& ctx, stats::TxCounters* c, size_t need,
                        size_t align);

  uint64_t* bump_;     // &HeapHeader::bump (pmem, high-water mark)
  std::atomic<uint64_t> bump_cache_{0};  // volatile reservation counter
  uint64_t* heads_;    // pmem array
  size_t data_start_;  // first usable offset after header
  int max_workers_;
  std::function<void(void*)> reclaim_hook_;

  std::unordered_set<uint64_t> quarantined_lines_;  // heap-relative line idx
  uint64_t quarantined_bytes_ = 0;   // 64 * |quarantined_lines_|
  uint64_t quarantined_blocks_ = 0;  // blocks diverted from free lists
};

}  // namespace alloc
