#include "containers/queue.h"

namespace cont {

void Queue::create(ptm::Tx& tx, Handle* q) {
  tx.write(&q->head, uint64_t{0});
  tx.write(&q->tail, uint64_t{0});
  tx.write(&q->count, uint64_t{0});
}

void Queue::enqueue(ptm::Tx& tx, Handle* q, uint64_t val) {
  auto* node = tx.alloc_obj<Node>();
  tx.write(&node->val, val);
  tx.write(&node->next, uint64_t{0});
  const uint64_t tail = tx.read(&q->tail);
  if (tail == 0) {
    tx.write(&q->head, reinterpret_cast<uint64_t>(node));
  } else {
    tx.write(&reinterpret_cast<Node*>(tail)->next, reinterpret_cast<uint64_t>(node));
  }
  tx.write(&q->tail, reinterpret_cast<uint64_t>(node));
  tx.write(&q->count, tx.read(&q->count) + 1);
}

bool Queue::dequeue(ptm::Tx& tx, Handle* q, uint64_t* out) {
  const uint64_t head = tx.read(&q->head);
  if (head == 0) return false;
  auto* node = reinterpret_cast<Node*>(head);
  if (out) *out = tx.read(&node->val);
  const uint64_t next = tx.read(&node->next);
  tx.write(&q->head, next);
  if (next == 0) tx.write(&q->tail, uint64_t{0});
  tx.write(&q->count, tx.read(&q->count) - 1);
  tx.dealloc(node);
  return true;
}

}  // namespace cont
