// Persistent transactional chained hash map (uint64 keys -> uint64 values).
//
// The TPCC Hash-Table index variant and TATP's tables use this. The bucket
// array is a one-shot raw allocation (created at setup, never resized, as
// in the DudeTM benchmarks); nodes are transactionally allocated/freed.
#pragma once

#include <cstdint>

#include "alloc/persistent_alloc.h"
#include "ptm/tx.h"

namespace cont {

class HashMap {
 public:
  struct Node {
    uint64_t key;
    uint64_t val;
    uint64_t next;
  };

  /// Persistent handle: place one of these in the application root (or any
  /// pmem location) and call create() once before use.
  struct Handle {
    uint64_t nbuckets;  // power of two
    uint64_t buckets;   // pointer to the bucket head array
  };

  /// Allocate the bucket array (rounded up to a power of two) and
  /// initialize `h`. Must run inside a transaction.
  static void create(ptm::Tx& tx, Handle* h, uint64_t nbuckets_hint);

  /// Insert key->val; returns false (and overwrites) if the key existed.
  static bool insert(ptm::Tx& tx, Handle* h, uint64_t key, uint64_t val);

  /// Point lookup; returns false if absent.
  static bool lookup(ptm::Tx& tx, Handle* h, uint64_t key, uint64_t* out);

  /// Overwrite an existing key; returns false if absent.
  static bool update(ptm::Tx& tx, Handle* h, uint64_t key, uint64_t val);

  /// Remove; returns false if absent. The node is transactionally freed.
  static bool remove(ptm::Tx& tx, Handle* h, uint64_t key);

  /// Total keys (test helper; O(buckets + keys)).
  static uint64_t size(ptm::Tx& tx, Handle* h);

 private:
  static uint64_t* bucket_for(ptm::Tx& tx, Handle* h, uint64_t key, uint64_t nbuckets,
                              uint64_t buckets_word);
  static uint64_t mix(uint64_t key) {
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    return key;
  }
};

}  // namespace cont
