// Persistent transactional sorted linked list (uint64 keys -> uint64
// values). The classic STM benchmark structure — long traversal read sets
// make it the stress test for read-set validation cost and for safe
// memory reclamation of unlinked nodes.
#pragma once

#include <cstdint>

#include "ptm/tx.h"

namespace cont {

class SortedList {
 public:
  struct Node {
    uint64_t key;
    uint64_t val;
    uint64_t next;
  };

  /// Handle: a single pmem word holding the head pointer (sentinel-free;
  /// 0 = empty). Caller owns the word (e.g. a root field).
  static void create(ptm::Tx& tx, uint64_t* head);

  /// Insert key->val in sorted position; returns false (and overwrites)
  /// if the key already exists.
  static bool insert(ptm::Tx& tx, uint64_t* head, uint64_t key, uint64_t val);

  static bool lookup(ptm::Tx& tx, uint64_t* head, uint64_t key, uint64_t* out);

  /// Remove a key; the node is transactionally freed.
  static bool remove(ptm::Tx& tx, uint64_t* head, uint64_t key);

  static uint64_t size(ptm::Tx& tx, uint64_t* head);

  /// True iff keys are strictly increasing along the chain (test helper).
  static bool is_sorted(ptm::Tx& tx, uint64_t* head);
};

}  // namespace cont
