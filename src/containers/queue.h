// Persistent transactional FIFO queue (Michael-Scott-style layout, but
// coordination is entirely by the PTM — the paper's point is that
// transactions make such structures trivially crash-consistent, where
// hand-crafted persistent queues are research results [13]).
#pragma once

#include <cstdint>

#include "ptm/tx.h"

namespace cont {

class Queue {
 public:
  struct Node {
    uint64_t val;
    uint64_t next;
  };

  /// Persistent handle (place in pmem, e.g. a root field).
  struct Handle {
    uint64_t head;  // oldest node (0 = empty)
    uint64_t tail;  // newest node
    uint64_t count;
  };

  static void create(ptm::Tx& tx, Handle* q);

  static void enqueue(ptm::Tx& tx, Handle* q, uint64_t val);

  /// Returns false if the queue is empty.
  static bool dequeue(ptm::Tx& tx, Handle* q, uint64_t* out);

  static uint64_t size(ptm::Tx& tx, Handle* q) { return tx.read(&q->count); }
};

}  // namespace cont
