#include "containers/hashmap.h"

#include "ptm/runtime.h"

namespace cont {
namespace {

uint64_t round_pow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

void HashMap::create(ptm::Tx& tx, Handle* h, uint64_t nbuckets_hint) {
  const uint64_t nb = round_pow2(nbuckets_hint == 0 ? 1 : nbuckets_hint);
  // The bucket array can exceed the allocator's block-size classes, so it
  // comes from the raw bump region (never freed — same as DudeTM's fixed
  // tables). alloc_raw returns zeroed memory (fresh pool pages are zeroed).
  auto& rt = tx.runtime();
  void* arr = rt.allocator().alloc_raw(tx.ctx(), nullptr, nb * 8);
  tx.write(&h->nbuckets, nb);
  tx.write(&h->buckets, reinterpret_cast<uint64_t>(arr));
}

uint64_t* HashMap::bucket_for(ptm::Tx& tx, Handle* h, uint64_t key, uint64_t nbuckets,
                              uint64_t buckets_word) {
  (void)tx;
  (void)h;
  auto* arr = reinterpret_cast<uint64_t*>(buckets_word);
  return &arr[mix(key) & (nbuckets - 1)];
}

bool HashMap::insert(ptm::Tx& tx, Handle* h, uint64_t key, uint64_t val) {
  const uint64_t nb = tx.read(&h->nbuckets);
  const uint64_t arr = tx.read(&h->buckets);
  uint64_t* bucket = bucket_for(tx, h, key, nb, arr);
  const uint64_t head = tx.read(bucket);

  for (uint64_t cur = head; cur != 0;) {
    auto* n = reinterpret_cast<Node*>(cur);
    if (tx.read(&n->key) == key) {
      tx.write(&n->val, val);
      return false;
    }
    cur = tx.read(&n->next);
  }
  auto* n = tx.alloc_obj<Node>();
  tx.write(&n->key, key);
  tx.write(&n->val, val);
  tx.write(&n->next, head);
  tx.write(bucket, reinterpret_cast<uint64_t>(n));
  return true;
}

bool HashMap::lookup(ptm::Tx& tx, Handle* h, uint64_t key, uint64_t* out) {
  const uint64_t nb = tx.read(&h->nbuckets);
  const uint64_t arr = tx.read(&h->buckets);
  uint64_t* bucket = bucket_for(tx, h, key, nb, arr);
  for (uint64_t cur = tx.read(bucket); cur != 0;) {
    auto* n = reinterpret_cast<Node*>(cur);
    if (tx.read(&n->key) == key) {
      if (out) *out = tx.read(&n->val);
      return true;
    }
    cur = tx.read(&n->next);
  }
  return false;
}

bool HashMap::update(ptm::Tx& tx, Handle* h, uint64_t key, uint64_t val) {
  const uint64_t nb = tx.read(&h->nbuckets);
  const uint64_t arr = tx.read(&h->buckets);
  uint64_t* bucket = bucket_for(tx, h, key, nb, arr);
  for (uint64_t cur = tx.read(bucket); cur != 0;) {
    auto* n = reinterpret_cast<Node*>(cur);
    if (tx.read(&n->key) == key) {
      tx.write(&n->val, val);
      return true;
    }
    cur = tx.read(&n->next);
  }
  return false;
}

bool HashMap::remove(ptm::Tx& tx, Handle* h, uint64_t key) {
  const uint64_t nb = tx.read(&h->nbuckets);
  const uint64_t arr = tx.read(&h->buckets);
  uint64_t* bucket = bucket_for(tx, h, key, nb, arr);
  uint64_t* link = bucket;
  for (uint64_t cur = tx.read(link); cur != 0;) {
    auto* n = reinterpret_cast<Node*>(cur);
    if (tx.read(&n->key) == key) {
      tx.write(link, tx.read(&n->next));
      tx.dealloc(n);
      return true;
    }
    link = &n->next;
    cur = tx.read(link);
  }
  return false;
}

uint64_t HashMap::size(ptm::Tx& tx, Handle* h) {
  const uint64_t nb = tx.read(&h->nbuckets);
  const uint64_t arr_word = tx.read(&h->buckets);
  auto* arr = reinterpret_cast<uint64_t*>(arr_word);
  uint64_t total = 0;
  for (uint64_t b = 0; b < nb; b++) {
    for (uint64_t cur = tx.read(&arr[b]); cur != 0;) {
      auto* n = reinterpret_cast<Node*>(cur);
      total++;
      cur = tx.read(&n->next);
    }
  }
  return total;
}

}  // namespace cont
