#include "containers/list.h"

namespace cont {

void SortedList::create(ptm::Tx& tx, uint64_t* head) { tx.write(head, uint64_t{0}); }

bool SortedList::insert(ptm::Tx& tx, uint64_t* head, uint64_t key, uint64_t val) {
  uint64_t* link = head;
  for (uint64_t cur = tx.read(link); cur != 0;) {
    auto* n = reinterpret_cast<Node*>(cur);
    const uint64_t k = tx.read(&n->key);
    if (k == key) {
      tx.write(&n->val, val);
      return false;
    }
    if (k > key) break;
    link = &n->next;
    cur = tx.read(link);
  }
  auto* node = tx.alloc_obj<Node>();
  tx.write(&node->key, key);
  tx.write(&node->val, val);
  tx.write(&node->next, tx.read(link));
  tx.write(link, reinterpret_cast<uint64_t>(node));
  return true;
}

bool SortedList::lookup(ptm::Tx& tx, uint64_t* head, uint64_t key, uint64_t* out) {
  for (uint64_t cur = tx.read(head); cur != 0;) {
    auto* n = reinterpret_cast<Node*>(cur);
    const uint64_t k = tx.read(&n->key);
    if (k == key) {
      if (out) *out = tx.read(&n->val);
      return true;
    }
    if (k > key) return false;
    cur = tx.read(&n->next);
  }
  return false;
}

bool SortedList::remove(ptm::Tx& tx, uint64_t* head, uint64_t key) {
  uint64_t* link = head;
  for (uint64_t cur = tx.read(link); cur != 0;) {
    auto* n = reinterpret_cast<Node*>(cur);
    const uint64_t k = tx.read(&n->key);
    if (k == key) {
      tx.write(link, tx.read(&n->next));
      tx.dealloc(n);
      return true;
    }
    if (k > key) return false;
    link = &n->next;
    cur = tx.read(link);
  }
  return false;
}

uint64_t SortedList::size(ptm::Tx& tx, uint64_t* head) {
  uint64_t n = 0;
  for (uint64_t cur = tx.read(head); cur != 0;) {
    n++;
    cur = tx.read(&reinterpret_cast<Node*>(cur)->next);
  }
  return n;
}

bool SortedList::is_sorted(ptm::Tx& tx, uint64_t* head) {
  uint64_t prev = 0;
  bool first = true;
  for (uint64_t cur = tx.read(head); cur != 0;) {
    auto* n = reinterpret_cast<Node*>(cur);
    const uint64_t k = tx.read(&n->key);
    if (!first && k <= prev) return false;
    prev = k;
    first = false;
    cur = tx.read(&n->next);
  }
  return true;
}

}  // namespace cont
