// Persistent transactional B+Tree (uint64 keys -> uint64 values).
//
// This is the benchmark structure from DudeTM [16] that the paper uses for
// the B+Tree microbenchmarks and the TPCC B+Tree index. Every node access
// goes through the transaction (tx.read/tx.write), so the tree is linear-
// izable and durable under whichever PTM algorithm the runtime runs.
//
// Structure notes:
//  * top-down insertion with preemptive splits (full children are split on
//    the way down), so no parent back-tracking is needed;
//  * deletion is leaf-local (key removal without rebalancing), as is usual
//    for STM benchmark trees — underfull leaves are tolerated;
//  * leaves are chained for ordered scans.
#pragma once

#include <cstdint>

#include "ptm/tx.h"

namespace cont {

class BPlusTree {
 public:
  static constexpr int kFanout = 16;  // max keys per node

  struct Node {
    uint64_t is_leaf;
    uint64_t count;
    uint64_t next;  // leaf chain (0 for internal nodes / last leaf)
    uint64_t keys[kFanout];
    // Leaf: values[i] pairs with keys[i]. Internal: children[i] holds
    // keys < keys[i]; children[count] holds the rest.
    uint64_t slots[kFanout + 1];
  };

  /// Initialize an empty tree whose root pointer lives at `*root_ptr`
  /// (a pmem word owned by the caller, e.g. a field of the app root).
  static void create(ptm::Tx& tx, uint64_t* root_ptr);

  /// Insert key->val. Returns false (and overwrites the value) if the key
  /// was already present.
  static bool insert(ptm::Tx& tx, uint64_t* root_ptr, uint64_t key, uint64_t val);

  /// Point lookup; returns false if absent.
  static bool lookup(ptm::Tx& tx, uint64_t* root_ptr, uint64_t key, uint64_t* out);

  /// Remove a key; returns false if absent.
  static bool remove(ptm::Tx& tx, uint64_t* root_ptr, uint64_t key);

  /// Number of keys in [lo, hi], by walking the leaf chain (test helper).
  static uint64_t range_count(ptm::Tx& tx, uint64_t* root_ptr, uint64_t lo, uint64_t hi);

 private:
  static Node* new_node(ptm::Tx& tx, bool leaf);
  static Node* as_node(uint64_t word) { return reinterpret_cast<Node*>(word); }
  static uint64_t as_word(Node* n) { return reinterpret_cast<uint64_t>(n); }

  // Split the full child at `child_idx` of `parent`; the new sibling takes
  // the upper half. Returns the separator key promoted into the parent.
  static void split_child(ptm::Tx& tx, Node* parent, uint64_t child_idx, Node* child);

  // Index of the first key in `n` that is >= key (transactional search).
  static uint64_t lower_bound(ptm::Tx& tx, Node* n, uint64_t n_count, uint64_t key);
};

}  // namespace cont
