#include "containers/bptree.h"

#include <cassert>

namespace cont {

BPlusTree::Node* BPlusTree::new_node(ptm::Tx& tx, bool leaf) {
  auto* n = static_cast<Node*>(tx.alloc(sizeof(Node)));
  tx.write(&n->is_leaf, static_cast<uint64_t>(leaf ? 1 : 0));
  tx.write(&n->count, uint64_t{0});
  tx.write(&n->next, uint64_t{0});
  return n;
}

void BPlusTree::create(ptm::Tx& tx, uint64_t* root_ptr) {
  Node* root = new_node(tx, /*leaf=*/true);
  tx.write(root_ptr, as_word(root));
}

uint64_t BPlusTree::lower_bound(ptm::Tx& tx, Node* n, uint64_t n_count, uint64_t key) {
  uint64_t i = 0;
  while (i < n_count && tx.read(&n->keys[i]) < key) i++;
  return i;
}

void BPlusTree::split_child(ptm::Tx& tx, Node* parent, uint64_t child_idx, Node* child) {
  const bool child_leaf = tx.read(&child->is_leaf) != 0;
  Node* sib = new_node(tx, child_leaf);

  // Move the upper half of `child` into `sib`.
  constexpr uint64_t kHalf = kFanout / 2;
  const uint64_t child_count = tx.read(&child->count);
  assert(child_count == kFanout);
  uint64_t promoted;
  if (child_leaf) {
    // Leaf split: sibling keeps keys [kHalf, kFanout); separator is the
    // sibling's first key (duplicated upward, standard B+ semantics).
    const uint64_t moved = child_count - kHalf;
    for (uint64_t i = 0; i < moved; i++) {
      tx.write(&sib->keys[i], tx.read(&child->keys[kHalf + i]));
      tx.write(&sib->slots[i], tx.read(&child->slots[kHalf + i]));
    }
    tx.write(&sib->count, moved);
    tx.write(&child->count, kHalf);
    tx.write(&sib->next, tx.read(&child->next));
    tx.write(&child->next, as_word(sib));
    promoted = tx.read(&sib->keys[0]);
  } else {
    // Internal split: the middle key moves up, not into the sibling.
    const uint64_t moved = child_count - kHalf - 1;
    for (uint64_t i = 0; i < moved; i++) {
      tx.write(&sib->keys[i], tx.read(&child->keys[kHalf + 1 + i]));
      tx.write(&sib->slots[i], tx.read(&child->slots[kHalf + 1 + i]));
    }
    tx.write(&sib->slots[moved], tx.read(&child->slots[child_count]));
    tx.write(&sib->count, moved);
    tx.write(&child->count, kHalf);
    promoted = tx.read(&child->keys[kHalf]);
  }

  // Shift the parent's keys/children right of child_idx and link `sib`.
  const uint64_t pcount = tx.read(&parent->count);
  for (uint64_t i = pcount; i > child_idx; i--) {
    tx.write(&parent->keys[i], tx.read(&parent->keys[i - 1]));
    tx.write(&parent->slots[i + 1], tx.read(&parent->slots[i]));
  }
  tx.write(&parent->keys[child_idx], promoted);
  tx.write(&parent->slots[child_idx + 1], as_word(sib));
  tx.write(&parent->count, pcount + 1);
}

bool BPlusTree::insert(ptm::Tx& tx, uint64_t* root_ptr, uint64_t key, uint64_t val) {
  Node* root = as_node(tx.read(root_ptr));
  if (tx.read(&root->count) == kFanout) {
    // Grow: new internal root, then split the old root under it.
    Node* nr = new_node(tx, /*leaf=*/false);
    tx.write(&nr->slots[0], as_word(root));
    split_child(tx, nr, 0, root);
    tx.write(root_ptr, as_word(nr));
    root = nr;
  }

  Node* n = root;
  for (;;) {
    const uint64_t count = tx.read(&n->count);
    if (tx.read(&n->is_leaf) != 0) {
      uint64_t i = lower_bound(tx, n, count, key);
      if (i < count && tx.read(&n->keys[i]) == key) {
        tx.write(&n->slots[i], val);
        return false;
      }
      for (uint64_t j = count; j > i; j--) {
        tx.write(&n->keys[j], tx.read(&n->keys[j - 1]));
        tx.write(&n->slots[j], tx.read(&n->slots[j - 1]));
      }
      tx.write(&n->keys[i], key);
      tx.write(&n->slots[i], val);
      tx.write(&n->count, count + 1);
      return true;
    }
    uint64_t i = lower_bound(tx, n, count, key);
    // Descend into slots[i] for key < keys[i]; equal keys go right in this
    // B+ variant (separators are copies of leaf keys).
    if (i < count && tx.read(&n->keys[i]) == key) i++;
    Node* child = as_node(tx.read(&n->slots[i]));
    if (tx.read(&child->count) == kFanout) {
      split_child(tx, n, i, child);
      // Re-decide the branch around the newly promoted separator.
      const uint64_t sep = tx.read(&n->keys[i]);
      if (key >= sep) {
        child = as_node(tx.read(&n->slots[i + 1]));
      }
    }
    n = child;
  }
}

bool BPlusTree::lookup(ptm::Tx& tx, uint64_t* root_ptr, uint64_t key, uint64_t* out) {
  Node* n = as_node(tx.read(root_ptr));
  for (;;) {
    const uint64_t count = tx.read(&n->count);
    uint64_t i = lower_bound(tx, n, count, key);
    if (tx.read(&n->is_leaf) != 0) {
      if (i < count && tx.read(&n->keys[i]) == key) {
        if (out) *out = tx.read(&n->slots[i]);
        return true;
      }
      return false;
    }
    if (i < count && tx.read(&n->keys[i]) == key) i++;
    n = as_node(tx.read(&n->slots[i]));
  }
}

bool BPlusTree::remove(ptm::Tx& tx, uint64_t* root_ptr, uint64_t key) {
  Node* n = as_node(tx.read(root_ptr));
  for (;;) {
    const uint64_t count = tx.read(&n->count);
    uint64_t i = lower_bound(tx, n, count, key);
    if (tx.read(&n->is_leaf) != 0) {
      if (i >= count || tx.read(&n->keys[i]) != key) return false;
      for (uint64_t j = i; j + 1 < count; j++) {
        tx.write(&n->keys[j], tx.read(&n->keys[j + 1]));
        tx.write(&n->slots[j], tx.read(&n->slots[j + 1]));
      }
      tx.write(&n->count, count - 1);
      return true;
    }
    if (i < count && tx.read(&n->keys[i]) == key) i++;
    n = as_node(tx.read(&n->slots[i]));
  }
}

uint64_t BPlusTree::range_count(ptm::Tx& tx, uint64_t* root_ptr, uint64_t lo, uint64_t hi) {
  // Descend to the leftmost leaf that may contain `lo`.
  Node* n = as_node(tx.read(root_ptr));
  while (tx.read(&n->is_leaf) == 0) {
    const uint64_t count = tx.read(&n->count);
    uint64_t i = lower_bound(tx, n, count, lo);
    if (i < count && tx.read(&n->keys[i]) == lo) i++;
    n = as_node(tx.read(&n->slots[i]));
  }
  uint64_t total = 0;
  while (n != nullptr) {
    const uint64_t count = tx.read(&n->count);
    for (uint64_t i = 0; i < count; i++) {
      const uint64_t k = tx.read(&n->keys[i]);
      if (k > hi) return total;
      if (k >= lo) total++;
    }
    n = as_node(tx.read(&n->next));
  }
  return total;
}

}  // namespace cont
