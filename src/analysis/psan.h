// Persistency sanitizer ("psan"): a dynamic checker for flush/fence
// ordering over the modelled persistent heap.
//
// The paper's results hinge on exact persist-ordering discipline: undo
// logging pays O(W) fences against redo's O(1) (Figures 3/4), and fence
// removal alone explains much of eADR's win (Table III) — so a *missing*
// clwb/sfence is a recovery bug and a *redundant* one is a silent perf
// regression that skews every fence-count table. Crash-schedule fuzzing
// (fault::CrashHarness) only catches an ordering bug when a sampled
// schedule happens to expose it; psan instead verifies the ordering rules
// on **every** execution.
//
// psan maintains, per cache line, a persist state machine driven by the
// nvm::Memory instruction stream:
//
//     clean ──store──▶ dirty ──clwb──▶ flushed ──sfence──▶ persisted
//                        ▲               │ (same worker's fence)
//                        └────store──────┘
//
// Tracking is per *store*, not just per line: a store is "persisted" once
// some clwb of its line happened at-or-after it and the flushing worker's
// sfence retired that clwb — exactly the ADR rule nvm::Memory's crash
// image implements. Keying outstanding stores by (worker, line) keeps a
// neighbour transaction's store to another word of the same line from
// being charged to this transaction.
//
// The PTM declares *ordering points* (commit-record seal, in-place store
// under undo, write-back under redo, log retire) through
// Memory::psan_check_persisted; each violated point yields one typed
// diagnostic per offending line. Everything is attributed to the owning
// worker/transaction and the PR 1 phase taxonomy, carries the store/flush
// event indices for replay, and aggregates into stats::PsanSummary for
// REPRO_JSON ("psan" key) and the scripts/check_psan.py CI gate.
//
// Enabled by nvm::SystemConfig::psan or the REPRO_PSAN=1 environment
// variable; when off, nvm::Memory carries only a null-pointer test per
// access and output stays bit-identical. See docs/ANALYSIS.md.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "nvm/domain.h"
#include "stats/counters.h"
#include "stats/histogram.h"

namespace analysis {

/// Diagnostic catalog (docs/ANALYSIS.md has the full semantics).
enum class DiagKind : uint8_t {
  /// A line this worker stored was not durable (never flushed, or flushed
  /// but not yet fence-ordered) at an ordering point that requires it —
  /// e.g. a commit record sealed over unpersisted log records.
  kMissingFlush = 0,
  /// A store was issued that must not precede another range's
  /// persistence: in-place data before its undo record (eager), or log
  /// write-back before the sealed commit record (lazy).
  kMisorderedPersist,
  /// clwb of a line with no unpersisted store (perf lint; maps onto the
  /// paper's Table III flush accounting).
  kRedundantFlush,
  /// sfence by a worker with no clwb outstanding since its previous fence
  /// (perf lint; one of these per transaction is exactly one Table III
  /// fence of pure overhead).
  kRedundantFence,
  /// At a simulated power failure, a line with an unpersisted store that
  /// was never even flushed. Informational: mid-transaction dirty lines
  /// are expected at a crash; the CrashHarness uses this to distinguish
  /// "torn by the crash schedule" from "never flushed at all".
  kUnflushedAtCrash,
};
inline constexpr size_t kNumDiagKinds = 5;

const char* diag_kind_name(DiagKind k);

/// One diagnostic. `store_event`/`flush_event` are psan event indices
/// (every hooked store/clwb/sfence increments the stream); when the
/// configuration also has crash_sim on, the stream counts the same
/// instruction sites as Memory::persistence_events, so an event index can
/// seed Memory::arm_crash_after to replay the neighbourhood of a bug.
struct Diag {
  DiagKind kind = DiagKind::kMissingFlush;
  int worker = -1;
  uint64_t tx_id = 0;          // per-worker transaction ordinal (0 = outside tx)
  stats::Phase phase = stats::Phase::kBegin;
  uint64_t line = 0;           // pool cache-line index (64 B granularity)
  uint64_t store_event = 0;    // offending store (0 = none recorded)
  uint64_t flush_event = 0;    // latest clwb capturing the line (0 = never)
  uint64_t at_event = 0;       // event index when the diagnostic fired
  const char* what = "";       // ordering point / reason (static string)
  const char* state = "";      // line state when it fired (static string)
};

class Psan {
 public:
  /// Stored-diagnostic ring bound; counts in the summary are never capped.
  static constexpr size_t kMaxStoredDiags = 1024;

  Psan(const nvm::SystemConfig& cfg, uint64_t num_lines, int max_workers);

  /// True when REPRO_PSAN=1 forces the sanitizer on for every pool
  /// (read once; lets CI run the whole unit-test matrix under psan
  /// without touching each test's SystemConfig).
  static bool env_enabled();

  // ----- event hooks (driven by nvm::Memory) ---------------------------

  void on_store(int worker, uint64_t first_line, uint64_t last_line, bool log_space);
  void on_clwb(int worker, uint64_t line);
  /// Retires this worker's pending flushes. Note psan validates the
  /// ordering the *program issued*: under SystemConfig::elide_fences
  /// (Table III's deliberately-incorrect measurement variant) the model
  /// drops the fence but the algorithm still ordered correctly, so the
  /// fence retires flushes here all the same — the variant must stay
  /// runnable without tripping the CI gate.
  void on_sfence(int worker);
  /// Power failure: classify every outstanding store (never-flushed vs
  /// flushed-but-unfenced), emit kUnflushedAtCrash for the former, then
  /// reset volatile tracking (the reverted heap is the new baseline).
  void on_power_failure();
  /// checkpoint_all_persistent(): everything live is durable by fiat.
  void on_checkpoint();

  // ----- transaction attribution (driven by ptm) -----------------------

  void on_tx_begin(int worker);
  void on_tx_end(int worker);
  void set_phase(int worker, stats::Phase p);
  stats::Phase phase(int worker) const;

  // ----- ordering points (driven by ptm) -------------------------------

  /// Every store by `worker` to lines [first_line, last_line] must be
  /// persisted; emits one `kind` diagnostic per violating line.
  void check_persisted(int worker, uint64_t first_line, uint64_t last_line,
                       DiagKind kind, const char* what);

  // ----- reporting ------------------------------------------------------

  stats::PsanSummary summary() const;

  /// Lines flagged kUnflushedAtCrash at the most recent power failure
  /// (the CrashHarness exposes these next to the oracle verdict).
  std::vector<uint64_t> crash_unflushed_lines() const;

  /// Return all stored diagnostics and reset both the store and the
  /// summary counters — seeded-bug tests consume their expected
  /// diagnostics so teardown reporting only sees what leaked.
  std::vector<Diag> drain();

 private:
  struct WorkerState {
    // line -> event index of this worker's latest unpersisted store.
    std::unordered_map<uint64_t, uint64_t> unpersisted;
    // clwb'd lines awaiting this worker's sfence: (line, capture event).
    std::vector<std::pair<uint64_t, uint64_t>> pending;
    uint64_t tx_id = 0;
    bool in_tx = false;
    stats::Phase phase = stats::Phase::kBegin;
  };

  void emit(DiagKind kind, int worker, uint64_t line, uint64_t store_event,
            uint64_t flush_event, const char* what, const char* state);

  // Worker id -> state slot; ids outside [0, max_workers) share the spare
  // last slot (setup/recovery contexts without a real worker).
  size_t slot(int worker) const {
    const size_t n = w_.size();
    return (worker >= 0 && static_cast<size_t>(worker) < n - 1)
               ? static_cast<size_t>(worker)
               : n - 1;
  }

  const bool tracks_;        // domain issues real flushes (ADR)
  const uint64_t num_lines_;

  mutable std::mutex mu_;
  uint64_t event_ = 0;
  std::vector<WorkerState> w_;
  // line -> latest clwb capture event (erased once fence-retired).
  std::unordered_map<uint64_t, uint64_t> captured_;
  std::vector<Diag> diags_;
  std::vector<uint64_t> crash_unflushed_;
  stats::PsanSummary sum_;
};

/// RAII phase attribution: sets the worker's psan phase on entry, restores
/// the previous one on exit. Null-safe so call sites need no psan check.
class PhaseScope {
 public:
  PhaseScope(Psan* ps, int worker, stats::Phase p)
      : ps_(ps), worker_(worker), prev_(ps ? ps->phase(worker) : stats::Phase::kBegin) {
    if (ps_) ps_->set_phase(worker_, p);
  }
  ~PhaseScope() {
    if (ps_) ps_->set_phase(worker_, prev_);
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Psan* ps_;
  int worker_;
  stats::Phase prev_;
};

}  // namespace analysis
