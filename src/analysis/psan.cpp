#include "analysis/psan.h"

#include <algorithm>
#include <cstdlib>

namespace analysis {

const char* diag_kind_name(DiagKind k) {
  switch (k) {
    case DiagKind::kMissingFlush: return "missing_flush";
    case DiagKind::kMisorderedPersist: return "misordered_persist";
    case DiagKind::kRedundantFlush: return "redundant_flush";
    case DiagKind::kRedundantFence: return "redundant_fence";
    case DiagKind::kUnflushedAtCrash: return "unflushed_at_crash";
  }
  return "?";
}

bool Psan::env_enabled() {
  static const bool on = [] {
    const char* s = std::getenv("REPRO_PSAN");
    return s != nullptr && s[0] != '\0' && s[0] != '0';
  }();
  return on;
}

Psan::Psan(const nvm::SystemConfig& cfg, uint64_t num_lines, int max_workers)
    : tracks_(cfg.needs_flushes()), num_lines_(num_lines) {
  // +1: Memory passes worker -1 (setup / recovery outside an ExecContext)
  // which maps onto the last state slot.
  w_.resize(static_cast<size_t>(max_workers) + 1);
  sum_.enabled = true;
}

void Psan::emit(DiagKind kind, int worker, uint64_t line, uint64_t store_event,
                uint64_t flush_event, const char* what, const char* state) {
  const WorkerState& ws = w_[slot(worker)];
  switch (kind) {
    case DiagKind::kMissingFlush: sum_.missing_flush++; break;
    case DiagKind::kMisorderedPersist: sum_.misordered_persist++; break;
    case DiagKind::kRedundantFlush:
      sum_.redundant_flush++;
      sum_.redundant_flush_by_phase[static_cast<size_t>(ws.phase)]++;
      break;
    case DiagKind::kRedundantFence:
      sum_.redundant_fence++;
      sum_.redundant_fence_by_phase[static_cast<size_t>(ws.phase)]++;
      break;
    case DiagKind::kUnflushedAtCrash: sum_.unflushed_at_crash++; break;
  }
  if (diags_.size() >= kMaxStoredDiags) {
    sum_.diags_dropped++;
    return;
  }
  Diag d;
  d.kind = kind;
  d.worker = worker;
  d.tx_id = ws.in_tx ? ws.tx_id : 0;
  d.phase = ws.phase;
  d.line = line;
  d.store_event = store_event;
  d.flush_event = flush_event;
  d.at_event = event_;
  d.what = what;
  d.state = state;
  diags_.push_back(d);
}

void Psan::on_store(int worker, uint64_t first_line, uint64_t last_line,
                    bool log_space) {
  (void)log_space;
  std::lock_guard<std::mutex> g(mu_);
  event_++;
  if (!tracks_) return;  // eADR/PDRAM: stores are durable on their own
  auto& up = w_[slot(worker)].unpersisted;
  for (uint64_t l = first_line; l <= last_line && l < num_lines_; l++) {
    up[l] = event_;  // newest store wins; older ones need the same persist
  }
}

void Psan::on_clwb(int worker, uint64_t line) {
  std::lock_guard<std::mutex> g(mu_);
  event_++;
  if (!tracks_) return;
  WorkerState& ws = w_[slot(worker)];

  // Redundant iff the line carries no store (from any worker) newer than
  // its latest capture: flushing clean data, or re-flushing an
  // already-captured line before anyone stored to it again.
  uint64_t newest_store = 0;
  for (const auto& o : w_) {
    auto it = o.unpersisted.find(line);
    if (it != o.unpersisted.end()) newest_store = std::max(newest_store, it->second);
  }
  const auto cap = captured_.find(line);
  const uint64_t captured_at = cap == captured_.end() ? 0 : cap->second;
  if (newest_store == 0 || captured_at >= newest_store) {
    emit(DiagKind::kRedundantFlush, worker, line, newest_store, captured_at,
         "clwb contributes no new durability",
         newest_store == 0 ? "no unpersisted store on line"
                           : "line already flushed; no store since");
  }

  captured_[line] = event_;
  ws.pending.emplace_back(line, event_);
}

void Psan::on_sfence(int worker) {
  std::lock_guard<std::mutex> g(mu_);
  event_++;
  if (!tracks_) return;
  WorkerState& ws = w_[slot(worker)];
  if (ws.pending.empty()) {
    emit(DiagKind::kRedundantFence, worker, 0, 0, 0,
         "sfence with no clwb outstanding since the previous fence",
         "nothing pending");
    return;
  }
  for (const auto& [line, cap_event] : ws.pending) {
    for (auto& o : w_) {
      auto it = o.unpersisted.find(line);
      if (it != o.unpersisted.end() && it->second <= cap_event) {
        o.unpersisted.erase(it);
      }
    }
    auto c = captured_.find(line);
    if (c != captured_.end() && c->second <= cap_event) captured_.erase(c);
  }
  ws.pending.clear();
}

void Psan::on_power_failure() {
  std::lock_guard<std::mutex> g(mu_);
  crash_unflushed_.clear();
  for (size_t wi = 0; wi < w_.size(); wi++) {
    WorkerState& ws = w_[wi];
    for (const auto& [line, store_event] : ws.unpersisted) {
      const auto cap = captured_.find(line);
      if (cap != captured_.end() && cap->second >= store_event) {
        // Flushed but its fence never executed: the crash image decides
        // line-by-line whether this made it (torn-by-schedule).
        sum_.torn_at_crash++;
      } else {
        emit(DiagKind::kUnflushedAtCrash, static_cast<int>(wi), line,
             store_event, 0, "power failure", "dirty (never flushed)");
        crash_unflushed_.push_back(line);
      }
    }
    ws.unpersisted.clear();
    ws.pending.clear();
  }
  captured_.clear();
  std::sort(crash_unflushed_.begin(), crash_unflushed_.end());
  crash_unflushed_.erase(
      std::unique(crash_unflushed_.begin(), crash_unflushed_.end()),
      crash_unflushed_.end());
}

void Psan::on_checkpoint() {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& ws : w_) {
    ws.unpersisted.clear();
    ws.pending.clear();
  }
  captured_.clear();
}

void Psan::on_tx_begin(int worker) {
  std::lock_guard<std::mutex> g(mu_);
  WorkerState& ws = w_[slot(worker)];
  if (!ws.in_tx) ws.tx_id++;  // each attempt gets its own ordinal
  ws.in_tx = true;
}

void Psan::on_tx_end(int worker) {
  std::lock_guard<std::mutex> g(mu_);
  WorkerState& ws = w_[slot(worker)];
  ws.in_tx = false;
  ws.phase = stats::Phase::kBegin;
}

void Psan::set_phase(int worker, stats::Phase p) {
  std::lock_guard<std::mutex> g(mu_);
  w_[slot(worker)].phase = p;
}

stats::Phase Psan::phase(int worker) const {
  std::lock_guard<std::mutex> g(mu_);
  return w_[slot(worker)].phase;
}

void Psan::check_persisted(int worker, uint64_t first_line, uint64_t last_line,
                           DiagKind kind, const char* what) {
  std::lock_guard<std::mutex> g(mu_);
  if (!tracks_) {
    sum_.checks += last_line - first_line + 1;
    return;  // trivially persisted in eADR/PDRAM domains
  }
  const auto& up = w_[slot(worker)].unpersisted;
  for (uint64_t l = first_line; l <= last_line; l++) {
    sum_.checks++;
    auto it = up.find(l);
    if (it == up.end()) continue;
    const auto cap = captured_.find(l);
    const bool flushed = cap != captured_.end() && cap->second >= it->second;
    emit(kind, worker, l, it->second, flushed ? cap->second : 0, what,
         flushed ? "flushed but not fenced" : "dirty (never flushed)");
  }
}

stats::PsanSummary Psan::summary() const {
  std::lock_guard<std::mutex> g(mu_);
  stats::PsanSummary s = sum_;
  s.events = event_;
  return s;
}

std::vector<uint64_t> Psan::crash_unflushed_lines() const {
  std::lock_guard<std::mutex> g(mu_);
  return crash_unflushed_;
}

std::vector<Diag> Psan::drain() {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<Diag> out;
  out.swap(diags_);
  sum_ = stats::PsanSummary{};
  sum_.enabled = true;
  return out;
}

}  // namespace analysis
