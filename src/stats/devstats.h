// Emulated DIMM performance counters ("devstats") — an ipmctl/pmwatch-style
// view of the simulated Optane device, answering the device-level questions
// the transaction telemetry (PR 1) cannot: how much media traffic the
// 256-byte XPLine access granularity really causes (write/read
// amplification), how well the DIMM's small write-combining XPBuffer
// coalesces adjacent 64-byte lines, how full the WPQ runs and how long
// enqueued lines take to drain, and how busy each bandwidth channel is.
//
// The collector sits behind the nvm::Memory hooks (one null-pointer test
// per hook when off, exactly like analysis::Psan) and is pure observation:
// it never charges simulated time, so enabling it cannot perturb any
// seed-deterministic result — tests assert that a devstats-on run produces
// bit-identical counters and sim_ns to a devstats-off run.
//
// Model notes (paper §II/§III.A and the Izraelevitz et al. measurements):
//   * Optane media is accessed in 256 B XPLines; every 64 B line the DIMM
//     receives is a *quarter* of one. A small on-DIMM write-combining
//     buffer (the "XPBuffer") merges adjacent lines; an eviction writes one
//     whole XPLine, and evicting a partially-filled entry first costs a
//     read-modify-write media read. Random 64 B writes therefore amplify
//     up to 4x on the media, sequential writes coalesce to ~1x — the
//     granularity effect behind the paper's redo-vs-undo media traffic gap.
//   * DRAM serves 64 B lines natively: no amplification, counted flat.
//
// Enablement: SystemConfig::devstats, or REPRO_DEVSTATS=1 in the
// environment. When the Chrome trace recorder is also on, the hooks layer
// emits periodic (simulated-time) counter events ("ph":"C") so device
// timelines appear alongside the PR 1 spans. See docs/OBSERVABILITY.md.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/histogram.h"

namespace stats {

class Trace;

/// Media index used by the device counters. Mirrors nvm::Media's values
/// without the header dependency — stats stays below nvm in the layering.
inline constexpr int kMediaDram = 0;
inline constexpr int kMediaOptane = 1;

/// Bandwidth-channel accounting copied out of the nvm model at snapshot
/// time. `busy_ns` is the total booked service time, so utilization is
/// busy/elapsed (a single-server queue is saturated at 1.0).
struct ChannelStats {
  uint64_t requests = 0;
  uint64_t busy_ns = 0;

  double utilization(uint64_t elapsed_ns) const {
    if (elapsed_ns == 0) return 0.0;
    return static_cast<double>(busy_ns) / static_cast<double>(elapsed_ns);
  }
};

/// Channel order in DeviceCounters::channels (matches nvm::Memory's four
/// BandwidthChannel members).
enum : size_t {
  kChanDramRead = 0,
  kChanDramWrite,
  kChanOptaneRead,
  kChanOptaneWrite,
  kNumChannels,
};
const char* channel_name(size_t i);

/// Per-worker WPQ behaviour: occupancy observed at each enqueue and the
/// enqueue-to-drain latency granted by the write channel.
struct WpqWorkerStats {
  int worker = 0;
  Histogram occupancy;
  Histogram drain_ns;
};

/// One run's device-level counters — the "device" section of REPRO_JSON.
/// Plain data; filled by DevStats::snapshot() plus nvm::Memory (channels,
/// energy) at the end of a run.
struct DeviceCounters {
  bool enabled = false;

  // --- Optane media, 256 B XPLine granularity ---
  uint64_t host_lines_written = 0;  // 64 B lines the DIMM received
  uint64_t host_lines_read = 0;     // 64 B line reads the DIMM served
  uint64_t xpline_writes = 0;       // 256 B media writes (evictions + flushes)
  uint64_t xpline_reads = 0;        // 256 B media reads serving host reads
  uint64_t xpline_rmw_reads = 0;    // read-modify-write fills of partial evictions
  uint64_t xpbuffer_hits = 0;       // host write coalesced into a buffered XPLine
  uint64_t xpbuffer_misses = 0;     // host write had to claim a buffer entry
  uint64_t xpbuffer_read_hits = 0;  // host read served from the buffer
  uint64_t xpbuffer_drains = 0;     // entries retired by the residency-window drain
  uint64_t xpbuffer_flushes = 0;    // entries still buffered at snapshot

  // --- DRAM media (64 B native, no amplification) ---
  uint64_t dram_lines_read = 0;
  uint64_t dram_lines_written = 0;

  // --- WPQ ---
  uint64_t wpq_enqueues = 0;
  uint64_t wpq_peak_occupancy = 0;
  Histogram wpq_occupancy;              // merged across workers
  Histogram wpq_drain_ns;               // merged across workers
  std::vector<WpqWorkerStats> wpq_workers;  // only workers that enqueued

  // --- stall time, named by the PR 1 phase taxonomy ---
  Histogram fence_stall_ns;  // phase "fence_wait": sfence drain waits
  Histogram wpq_stall_ns;    // phase "wpq_stall": full-queue / saturated-channel stalls

  // --- channels + run extent (filled by nvm::Memory::device_snapshot) ---
  std::array<ChannelStats, kNumChannels> channels{};
  uint64_t sim_end_ns = 0;

  // --- energy (nvm::EnergyModel; dynamic pJ lives in TxCounters) ---
  double reserve_energy_j = 0;
  double drain_seconds = 0;
  std::string reserve_technology;

  /// Media bytes written per host byte written (>= 1.0 unless the XPBuffer
  /// absorbed rewrites of the same 64 B line). 0 when nothing was written.
  double write_amplification() const {
    if (host_lines_written == 0) return 0.0;
    return static_cast<double>(xpline_writes * kXplineBytes) /
           static_cast<double>(host_lines_written * kHostLineBytes);
  }

  /// ipmctl's EWR: host bytes per media byte (higher is better, 1.0 ideal).
  double effective_write_ratio() const {
    if (xpline_writes == 0) return 0.0;
    return static_cast<double>(host_lines_written * kHostLineBytes) /
           static_cast<double>(xpline_writes * kXplineBytes);
  }

  /// Media bytes read per host byte read (4.0 when nothing coalesces).
  double read_amplification() const {
    if (host_lines_read == 0) return 0.0;
    return static_cast<double>(xpline_reads * kXplineBytes) /
           static_cast<double>(host_lines_read * kHostLineBytes);
  }

  double xpbuffer_hit_rate() const {
    const uint64_t total = xpbuffer_hits + xpbuffer_misses;
    return total == 0 ? 0.0 : static_cast<double>(xpbuffer_hits) / static_cast<double>(total);
  }

  static constexpr uint64_t kHostLineBytes = 64;
  static constexpr uint64_t kXplineBytes = 256;
};

/// The collector. One instance per nvm::Memory (i.e. per pool), touched
/// only from the hooks layer. Like the rest of the observability stack it
/// runs under the discrete-event engine's one-worker-at-a-time rule, so
/// plain state is safe.
class DevStats {
 public:
  /// 64 B lines per 256 B XPLine.
  static constexpr uint64_t kXplineLines = 4;
  /// Write-combining buffer entries (real XPBuffer capacity is ~16 KB; 16
  /// XPLines is the working approximation used by public models).
  static constexpr size_t kXpBufferEntries = 16;
  /// Residency window: the DIMM controller drains buffered XPLines
  /// continuously, so an entry only coalesces host writes that arrive
  /// within this window of its insertion — a hot line rewritten every few
  /// microseconds pays a media write each time, which is why real-device
  /// write amplification stays >= 1 even for cache-resident workloads.
  /// Override with REPRO_DEVSTATS_DRAIN_NS.
  static constexpr uint64_t kDefaultDrainWindowNs = 1000;
  /// Default simulated-time distance between trace counter samples.
  static constexpr uint64_t kDefaultSampleIntervalNs = 32768;

  explicit DevStats(int max_workers);

  /// True when REPRO_DEVSTATS is set non-empty/non-zero (forces the
  /// subsystem on regardless of SystemConfig::devstats).
  static bool env_enabled();

  // ----- hooks (called by nvm::Memory alongside its channel bookings) ----
  // `now_ns` is the accessing worker's simulated clock; it drives the
  // XPBuffer residency-window drain, never any charged time.

  void on_media_read(int media, uint64_t line, uint64_t now_ns);
  void on_media_write(int media, uint64_t line, uint64_t now_ns);
  void on_wpq_enqueue(int worker, uint64_t occupancy, uint64_t drain_ns);
  void on_wpq_stall(int worker, uint64_t ns);
  void on_fence_stall(int worker, uint64_t ns);

  // ----- periodic trace counter sampling ---------------------------------

  /// True when the next sample instant has been reached.
  bool sample_due(uint64_t now_ns) const { return now_ns >= next_sample_ns_; }

  /// Emit one batch of Chrome counter events ("ph":"C") at simulated time
  /// `now_ns` and schedule the next sample. `wpq_occupancy` and the four
  /// channel busy totals are supplied by the hooks layer (nvm::Memory owns
  /// those models). Rates are computed over the elapsed sample interval.
  void emit_counters(Trace& trace, uint64_t now_ns, uint64_t wpq_occupancy,
                     const std::array<uint64_t, kNumChannels>& chan_busy_ns);

  /// Aggregate everything observed so far. XPLines still sitting in the
  /// buffer are accounted as flushes (the DIMM writes them out eventually),
  /// without mutating the live buffer — snapshots are repeatable.
  DeviceCounters snapshot() const;

  /// Running write-amplification value (buffered XPLines counted as the
  /// writes they will become), used for the trace counter track.
  double snapshot_wa_estimate() const;

 private:
  struct XpEntry {
    static constexpr uint64_t kNone = ~0ull;
    uint64_t xpline = kNone;
    uint8_t mask = 0;        // which of the 4 sub-lines hold host data
    uint64_t stamp = 0;      // LRU clock
    uint64_t insert_ns = 0;  // simulated insertion time (drain window base)
  };

  struct PerWorker {
    Histogram occupancy;
    Histogram drain_ns;
    Histogram fence_stall_ns;
    Histogram wpq_stall_ns;
    uint64_t enqueues = 0;
  };

  // Retire one buffer entry: one 256 B media write, plus an RMW read when
  // the entry was only partially filled.
  void account_eviction(const XpEntry& e);

  // Retire every entry whose residency window has expired at `now_ns`.
  void drain(uint64_t now_ns);

  PerWorker& worker(int w) {
    const size_t i = w >= 0 && static_cast<size_t>(w) < workers_.size()
                         ? static_cast<size_t>(w)
                         : workers_.size() - 1;
    return workers_[i];
  }

  DeviceCounters c_;  // running totals (buffer contents not yet included)
  std::array<XpEntry, kXpBufferEntries> buf_{};
  uint64_t lru_clock_ = 0;
  uint64_t drain_window_ns_ = kDefaultDrainWindowNs;
  std::vector<PerWorker> workers_;

  // Sampler state.
  uint64_t sample_interval_ns_ = kDefaultSampleIntervalNs;
  uint64_t next_sample_ns_ = 0;
  uint64_t prev_sample_ns_ = 0;
  uint64_t prev_hits_ = 0, prev_misses_ = 0;
  std::array<uint64_t, kNumChannels> prev_busy_ns_{};
};

}  // namespace stats
