#include "stats/counters.h"

#include <algorithm>
#include <limits>

namespace stats {

const char* abort_cause_name(AbortCause c) {
  switch (c) {
    case AbortCause::kConflictRead: return "read_conflict";
    case AbortCause::kConflictWrite: return "write_conflict";
    case AbortCause::kValidation: return "validation";
    case AbortCause::kExplicit: return "explicit";
    case AbortCause::kCapacity: return "capacity";
  }
  return "?";
}

void TxCounters::add(const TxCounters& o) {
  commits += o.commits;
  aborts += o.aborts;
  for (size_t i = 0; i < kNumAbortCauses; i++) aborts_by_cause[i] += o.aborts_by_cause[i];
  reads += o.reads;
  writes += o.writes;
  clwbs += o.clwbs;
  sfences += o.sfences;
  log_bytes += o.log_bytes;
  log_lines_hwm = std::max(log_lines_hwm, o.log_lines_hwm);
  log_growths += o.log_growths;
  pmem_loads += o.pmem_loads;
  pmem_stores += o.pmem_stores;
  dram_cache_hits += o.dram_cache_hits;
  dram_cache_misses += o.dram_cache_misses;
  l3_hits += o.l3_hits;
  l3_misses += o.l3_misses;
  wpq_stall_ns += o.wpq_stall_ns;
  fence_wait_ns += o.fence_wait_ns;
  energy_pj += o.energy_pj;
  phases.merge(o.phases);
}

double TxCounters::commit_abort_ratio() const {
  if (aborts == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(commits) / static_cast<double>(aborts);
}

TxCounters aggregate(const std::vector<TxCounters>& per_thread) {
  TxCounters total;
  for (const auto& c : per_thread) total.add(c);
  return total;
}

void RecoveryReport::add(const RecoveryReport& o) {
  slots_scanned += o.slots_scanned;
  slots_committed += o.slots_committed;
  slots_rolled_back += o.slots_rolled_back;
  records_replayed += o.records_replayed;
  records_stale += o.records_stale;
  records_torn += o.records_torn;
  records_invalid += o.records_invalid;
  records_media_faulted += o.records_media_faulted;
  allocs_cancelled += o.allocs_cancelled;
  frees_applied += o.frees_applied;
  segment_links_truncated += o.segment_links_truncated;
  log_crc_mismatches += o.log_crc_mismatches;
  media_faults += o.media_faults;
  records_damaged += o.records_damaged;
  records_repaired += o.records_repaired;
  records_lost += o.records_lost;
  mirror_enabled = mirror_enabled || o.mirror_enabled;
}

void ScrubStats::add(const ScrubStats& o) {
  enabled = enabled || o.enabled;
  passes += o.passes;
  lines_scanned += o.lines_scanned;
  crc_checks += o.crc_checks;
  media_faults_found += o.media_faults_found;
  repaired += o.repaired;
  unrepairable += o.unrepairable;
  header_repairs += o.header_repairs;
  skipped_busy += o.skipped_busy;
}

void EpochStats::add(const EpochStats& o) {
  enabled = enabled || o.enabled;
  epochs += o.epochs;
  member_txs += o.member_txs;
  closed_by_size += o.closed_by_size;
  closed_by_age += o.closed_by_age;
  closed_by_crash += o.closed_by_crash;
  size.merge(o.size);
}

void ContainmentStats::add(const ContainmentStats& o) {
  enabled = enabled || o.enabled;
  deaths += o.deaths;
  stuck_tx_reclaimed += o.stuck_tx_reclaimed;
  aborts_on_behalf += o.aborts_on_behalf;
  commits_completed += o.commits_completed;
  leader_takeovers += o.leader_takeovers;
  zombies_fenced += o.zombies_fenced;
  watchdog_passes += o.watchdog_passes;
  reclaim_latency_ns.merge(o.reclaim_latency_ns);
}

void PsanSummary::add(const PsanSummary& o) {
  enabled = enabled || o.enabled;
  events += o.events;
  checks += o.checks;
  missing_flush += o.missing_flush;
  misordered_persist += o.misordered_persist;
  redundant_flush += o.redundant_flush;
  redundant_fence += o.redundant_fence;
  unflushed_at_crash += o.unflushed_at_crash;
  torn_at_crash += o.torn_at_crash;
  diags_dropped += o.diags_dropped;
  for (size_t i = 0; i < kNumPhases; i++) {
    redundant_flush_by_phase[i] += o.redundant_flush_by_phase[i];
    redundant_fence_by_phase[i] += o.redundant_fence_by_phase[i];
  }
}

}  // namespace stats
