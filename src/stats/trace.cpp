#include "stats/trace.h"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "stats/json_writer.h"

namespace stats {

Trace& Trace::instance() {
  // Intentionally leaked: the REPRO_TRACE atexit writer (registered inside
  // the constructor, i.e. *before* a local static's destructor would be)
  // must still find the rings alive when it runs.
  static Trace* t = new Trace();
  return *t;
}

Trace::Trace() {
  run_labels_.push_back("(pre-run)");
  if (const char* path = std::getenv("REPRO_TRACE"); path != nullptr && path[0] != '\0') {
    exit_path_ = path;
    enable();
    std::atexit(+[] {
      Trace& t = Trace::instance();
      if (!t.exit_path_.empty() && !t.write_file(t.exit_path_)) {
        std::cerr << "REPRO_TRACE: failed to write " << t.exit_path_ << "\n";
      }
    });
  }
}

void Trace::enable(size_t ring_capacity) {
  cap_ = ring_capacity == 0 ? 1 : ring_capacity;
  if (rings_.empty()) rings_.resize(kMaxWorkers);
  enabled_ = true;
}

void Trace::clear() {
  for (Ring& r : rings_) {
    r.ev.clear();
    r.next = 0;
    r.wrapped = false;
  }
  run_labels_.assign(1, "(pre-run)");
  cur_pid_ = 0;
}

int Trace::begin_run(std::string label) {
  run_labels_.push_back(std::move(label));
  cur_pid_ = static_cast<int>(run_labels_.size()) - 1;
  return cur_pid_;
}

void Trace::record(int worker, const Event& e) {
  const size_t w = static_cast<size_t>(worker) < kMaxWorkers
                       ? static_cast<size_t>(worker)
                       : kMaxWorkers - 1;
  Ring& r = rings_[w];
  if (r.ev.size() < cap_) {
    r.ev.push_back(e);
  } else {
    r.ev[r.next] = e;
    r.wrapped = true;
  }
  r.next = (r.next + 1) % cap_;
}

void Trace::span(int worker, const char* name, uint64_t start_ns, uint64_t dur_ns,
                 const char* arg_key, const char* arg_val) {
  if (!enabled_) return;
  record(worker, Event{name, arg_key, arg_val, start_ns, dur_ns, 0.0, cur_pid_, worker, 'X'});
}

void Trace::counter(const char* name, uint64_t ts_ns, double value) {
  if (!enabled_) return;
  // Counter samples share ring 0: the devstats sampler emits them from
  // whichever worker happens to cross the sample instant, but the track
  // identity in the viewer is (pid, name), not the tid.
  record(0, Event{name, nullptr, nullptr, ts_ns, 0, value, cur_pid_, 0, 'C'});
}

size_t Trace::event_count() const {
  size_t n = 0;
  for (const Ring& r : rings_) n += r.ev.size();
  return n;
}

void Trace::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ns");
  w.key("traceEvents").begin_array();

  // Process-name metadata: one per begun run (skip the placeholder pid 0
  // unless something actually recorded under it).
  for (size_t pid = 0; pid < run_labels_.size(); pid++) {
    w.begin_object();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", static_cast<int>(pid));
    w.key("args").begin_object();
    w.kv("name", run_labels_[pid]);
    w.end_object();
    w.end_object();
  }

  for (const Ring& r : rings_) {
    const size_t n = r.ev.size();
    // Oldest-first: a wrapped ring starts at `next`.
    const size_t start = r.wrapped ? r.next : 0;
    for (size_t i = 0; i < n; i++) {
      const Event& e = r.ev[(start + i) % n];
      w.begin_object();
      w.kv("name", e.name);
      if (e.ph == 'C') {
        w.kv("cat", "device");
        w.kv("ph", "C");
        // trace_event timestamps are microseconds; keep ns precision.
        w.kv("ts", static_cast<double>(e.ts_ns) / 1000.0);
        w.kv("pid", e.pid);
        w.kv("tid", e.tid);
        w.key("args").begin_object();
        w.kv("value", e.value);
        w.end_object();
        w.end_object();
        continue;
      }
      w.kv("cat", "ptm");
      w.kv("ph", "X");
      // trace_event timestamps are microseconds; keep ns precision.
      w.kv("ts", static_cast<double>(e.ts_ns) / 1000.0);
      w.kv("dur", static_cast<double>(e.dur_ns) / 1000.0);
      w.kv("pid", e.pid);
      w.kv("tid", e.tid);
      if (e.arg_key != nullptr) {
        w.key("args").begin_object();
        w.kv(e.arg_key, e.arg_val != nullptr ? e.arg_val : "");
        w.end_object();
      }
      w.end_object();
    }
  }

  w.end_array();
  w.end_object();
  os << "\n";
}

bool Trace::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_json(f);
  return f.good();
}

}  // namespace stats
