#include "stats/devstats.h"

#include <cstdlib>

#include "stats/trace.h"

namespace stats {

const char* channel_name(size_t i) {
  switch (i) {
    case kChanDramRead: return "dram_read";
    case kChanDramWrite: return "dram_write";
    case kChanOptaneRead: return "optane_read";
    case kChanOptaneWrite: return "optane_write";
    default: return "?";
  }
}

bool DevStats::env_enabled() {
  static const bool on = [] {
    const char* s = std::getenv("REPRO_DEVSTATS");
    return s != nullptr && s[0] != '\0' && s[0] != '0';
  }();
  return on;
}

DevStats::DevStats(int max_workers)
    // +1: Memory hooks can run outside any worker (setup/recovery contexts
    // report high ids); they map onto the last slot, mirroring Psan.
    : workers_(static_cast<size_t>(max_workers) + 1) {
  if (const char* s = std::getenv("REPRO_DEVSTATS_SAMPLE_NS")) {
    const long long v = std::atoll(s);
    if (v > 0) sample_interval_ns_ = static_cast<uint64_t>(v);
  }
  if (const char* s = std::getenv("REPRO_DEVSTATS_DRAIN_NS")) {
    const long long v = std::atoll(s);
    if (v > 0) drain_window_ns_ = static_cast<uint64_t>(v);
  }
  next_sample_ns_ = sample_interval_ns_;
}

void DevStats::account_eviction(const XpEntry& e) {
  c_.xpline_writes++;
  const uint8_t full = (1u << kXplineLines) - 1;
  if (e.mask != full) c_.xpline_rmw_reads++;
}

void DevStats::drain(uint64_t now_ns) {
  for (XpEntry& e : buf_) {
    if (e.xpline == XpEntry::kNone) continue;
    if (now_ns < e.insert_ns + drain_window_ns_) continue;
    account_eviction(e);
    c_.xpbuffer_drains++;
    e.xpline = XpEntry::kNone;
    e.mask = 0;
  }
}

void DevStats::on_media_write(int media, uint64_t line, uint64_t now_ns) {
  if (media == kMediaDram) {
    c_.dram_lines_written++;
    return;
  }
  drain(now_ns);
  c_.host_lines_written++;
  const uint64_t xp = line / kXplineLines;
  const uint8_t bit = static_cast<uint8_t>(1u << (line % kXplineLines));
  lru_clock_++;
  for (XpEntry& e : buf_) {
    if (e.xpline == xp) {
      e.mask |= bit;
      e.stamp = lru_clock_;
      c_.xpbuffer_hits++;
      return;
    }
  }
  c_.xpbuffer_misses++;
  XpEntry* victim = &buf_[0];
  for (XpEntry& e : buf_) {
    if (e.xpline == XpEntry::kNone) {
      victim = &e;
      break;
    }
    if (e.stamp < victim->stamp) victim = &e;
  }
  if (victim->xpline != XpEntry::kNone) account_eviction(*victim);
  victim->xpline = xp;
  victim->mask = bit;
  victim->stamp = lru_clock_;
  victim->insert_ns = now_ns;
}

void DevStats::on_media_read(int media, uint64_t line, uint64_t now_ns) {
  if (media == kMediaDram) {
    c_.dram_lines_read++;
    return;
  }
  drain(now_ns);
  c_.host_lines_read++;
  const uint64_t xp = line / kXplineLines;
  for (const XpEntry& e : buf_) {
    if (e.xpline == xp) {
      c_.xpbuffer_read_hits++;
      return;
    }
  }
  c_.xpline_reads++;
}

void DevStats::on_wpq_enqueue(int w, uint64_t occupancy, uint64_t drain_ns) {
  c_.wpq_enqueues++;
  if (occupancy > c_.wpq_peak_occupancy) c_.wpq_peak_occupancy = occupancy;
  PerWorker& pw = worker(w);
  pw.occupancy.record(occupancy);
  pw.drain_ns.record(drain_ns);
  pw.enqueues++;
}

void DevStats::on_wpq_stall(int w, uint64_t ns) { worker(w).wpq_stall_ns.record(ns); }

void DevStats::on_fence_stall(int w, uint64_t ns) { worker(w).fence_stall_ns.record(ns); }

void DevStats::emit_counters(Trace& trace, uint64_t now_ns, uint64_t wpq_occupancy,
                             const std::array<uint64_t, kNumChannels>& chan_busy_ns) {
  trace.counter("wpq_occupancy", now_ns, static_cast<double>(wpq_occupancy));
  trace.counter("write_amplification", now_ns, snapshot_wa_estimate());

  // Interval rates: hit percentage of the write-combining buffer and the
  // utilization of each bandwidth channel since the previous sample.
  const uint64_t dt = now_ns > prev_sample_ns_ ? now_ns - prev_sample_ns_ : 0;
  const uint64_t dh = c_.xpbuffer_hits - prev_hits_;
  const uint64_t dm = c_.xpbuffer_misses - prev_misses_;
  if (dh + dm > 0) {
    trace.counter("xpbuffer_hit_pct", now_ns,
                  100.0 * static_cast<double>(dh) / static_cast<double>(dh + dm));
  }
  static const char* kUtilNames[kNumChannels] = {
      "util_dram_read_pct", "util_dram_write_pct", "util_optane_read_pct",
      "util_optane_write_pct"};
  for (size_t i = 0; i < kNumChannels; i++) {
    if (dt > 0) {
      const uint64_t db = chan_busy_ns[i] - prev_busy_ns_[i];
      double pct = 100.0 * static_cast<double>(db) / static_cast<double>(dt);
      if (pct > 100.0) pct = 100.0;  // backlog booked past `now` counts later
      trace.counter(kUtilNames[i], now_ns, pct);
    }
    prev_busy_ns_[i] = chan_busy_ns[i];
  }

  prev_hits_ = c_.xpbuffer_hits;
  prev_misses_ = c_.xpbuffer_misses;
  prev_sample_ns_ = now_ns;
  next_sample_ns_ = now_ns + sample_interval_ns_;
}

double DevStats::snapshot_wa_estimate() const {
  if (c_.host_lines_written == 0) return 0.0;
  // Count still-buffered XPLines as eventual writes so the running value
  // matches what snapshot() will report.
  uint64_t pending = 0;
  for (const XpEntry& e : buf_) {
    if (e.xpline != XpEntry::kNone) pending++;
  }
  return static_cast<double>((c_.xpline_writes + pending) * DeviceCounters::kXplineBytes) /
         static_cast<double>(c_.host_lines_written * DeviceCounters::kHostLineBytes);
}

DeviceCounters DevStats::snapshot() const {
  DeviceCounters d = c_;
  d.enabled = true;

  // Buffered XPLines will be written to media when the DIMM retires them;
  // account them as flushes (without touching the live buffer).
  const uint8_t full = (1u << kXplineLines) - 1;
  for (const XpEntry& e : buf_) {
    if (e.xpline == XpEntry::kNone) continue;
    d.xpline_writes++;
    d.xpbuffer_flushes++;
    if (e.mask != full) d.xpline_rmw_reads++;
  }

  for (size_t w = 0; w < workers_.size(); w++) {
    const PerWorker& pw = workers_[w];
    d.wpq_occupancy.merge(pw.occupancy);
    d.wpq_drain_ns.merge(pw.drain_ns);
    d.fence_stall_ns.merge(pw.fence_stall_ns);
    d.wpq_stall_ns.merge(pw.wpq_stall_ns);
    if (pw.enqueues > 0) {
      WpqWorkerStats ws;
      ws.worker = static_cast<int>(w);
      ws.occupancy = pw.occupancy;
      ws.drain_ns = pw.drain_ns;
      d.wpq_workers.push_back(std::move(ws));
    }
  }
  return d;
}

}  // namespace stats
