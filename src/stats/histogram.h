// Fixed-bucket log2 latency histograms for transaction-phase timing.
//
// The paper's mechanisms are *distributional* — fence latency extends
// lock-hold windows (Table III), WPQ saturation stalls writers (§IV) — so
// flat sums cannot show them. Each worker owns one histogram per phase
// inside its (unsynchronized, per-thread) TxCounters; recording is a single
// array increment on the hot path, and aggregation merges bucket-wise after
// workers join. Values are simulated nanoseconds.
//
// Telemetry is **off by default**: every record site first checks
// `telemetry_enabled()` (one relaxed atomic load), so flat-counter-only
// runs pay no measurable cost and stay bit-identical to pre-telemetry
// output under the deterministic engine. Enable programmatically or with
// REPRO_TELEMETRY=1 (REPRO_JSON implies it in the bench harness).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "sim/context.h"

namespace stats {

/// Global telemetry switch (relaxed atomic; initialized from the
/// REPRO_TELEMETRY environment variable on first use).
bool telemetry_enabled();
void set_telemetry_enabled(bool on);

/// Power-of-two-bucket histogram: value v lands in bucket bit_width(v),
/// i.e. bucket 0 holds exactly 0, bucket k holds [2^(k-1), 2^k). 65
/// buckets cover the full uint64_t range. Percentiles report the bucket's
/// inclusive upper bound, clamped to the observed maximum — an
/// overestimate by at most 2x, which is enough to read distribution shape
/// and tail behaviour.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void record(uint64_t v) {
    const int b = v == 0 ? 0 : std::bit_width(v);
    counts_[static_cast<size_t>(b)]++;
    count_++;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  void merge(const Histogram& o) {
    for (size_t i = 0; i < kBuckets; i++) counts_[i] += o.counts_[i];
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.max_ > max_) max_ = o.max_;
  }

  void reset() { *this = Histogram{}; }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  uint64_t bucket_count(int i) const { return counts_[static_cast<size_t>(i)]; }

  /// Inclusive upper bound of bucket `i` (0 for bucket 0).
  static uint64_t bucket_hi(int i) {
    if (i == 0) return 0;
    if (i >= 64) return ~uint64_t{0};
    return (uint64_t{1} << i) - 1;
  }

  /// Lower bound of bucket `i`.
  static uint64_t bucket_lo(int i) {
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
  }

  /// Value at percentile `p` in [0,100]: upper bound of the bucket holding
  /// the p-th sample, clamped to the observed max. 0 when empty.
  uint64_t percentile(double p) const;

  uint64_t p50() const { return percentile(50); }
  uint64_t p90() const { return percentile(90); }
  uint64_t p99() const { return percentile(99); }

 private:
  std::array<uint64_t, kBuckets> counts_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

/// Transaction phases with per-phase latency histograms. Phases are not
/// disjoint: kFlushDrain covers a commit path's whole clwb+fence batch and
/// so contains the kFenceWait / kWpqStall it triggers; kCommit records only
/// *successful* commit calls (aborted attempts surface in kAbortBackoff and
/// in the abort-cause counters instead).
enum class Phase : uint8_t {
  kBegin = 0,     // Tx::begin bookkeeping
  kRead,          // one transactional word read
  kWrite,         // one transactional word write (eager: includes undo persist)
  kLogAppend,     // one redo/undo log record append
  kValidate,      // read-set validation at commit (incl. failing runs)
  kFlushDrain,    // clwb batch + fence blocks on the commit/persist paths
  kFenceWait,     // sfence wait for this worker's WPQ entries to drain
  kWpqStall,      // stall on a full WPQ (clwb) or saturated write channel
  kCommit,        // whole successful commit() call
  kAbortBackoff,  // rollback + randomized exponential backoff after abort
  kEpochWait,     // epoch commit: queued member waiting for its epoch to close
  kEpochDrain,    // epoch commit: leader draining the epoch queue
};
inline constexpr size_t kNumPhases = 12;

const char* phase_name(Phase p);

struct PhaseHists {
  std::array<Histogram, kNumPhases> h;

  void record(Phase p, uint64_t ns) { h[static_cast<size_t>(p)].record(ns); }
  void merge(const PhaseHists& o) {
    for (size_t i = 0; i < kNumPhases; i++) h[i].merge(o.h[i]);
  }
  const Histogram& operator[](Phase p) const { return h[static_cast<size_t>(p)]; }
  Histogram& operator[](Phase p) { return h[static_cast<size_t>(p)]; }
};

/// Scoped phase timer: samples the context clock on construction and
/// records the elapsed simulated ns on destruction (including unwinding —
/// a read that ends in an abort still contributes its partial latency).
/// Arms only when telemetry is enabled, so the disabled cost is one
/// relaxed load.
class PhaseTimer {
 public:
  PhaseTimer(const sim::ExecContext& ctx, PhaseHists* ph, Phase p)
      : ph_(telemetry_enabled() ? ph : nullptr),
        ctx_(&ctx),
        p_(p),
        t0_(ph_ ? ctx.now_ns() : 0) {}

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  ~PhaseTimer() {
    if (ph_) ph_->record(p_, ctx_->now_ns() - t0_);
  }

  /// Drop without recording.
  void cancel() { ph_ = nullptr; }

 private:
  PhaseHists* ph_;
  const sim::ExecContext* ctx_;
  Phase p_;
  uint64_t t0_;
};

}  // namespace stats
