// Minimal streaming JSON writer for bench artifacts and trace export.
//
// No external JSON dependency is available in the container, and the
// schemas we emit (RunResult artifacts, Chrome trace_event files) are
// write-only from C++ — scripts/compare_results.py and trace viewers do
// the parsing — so a small comma-tracking emitter is all that is needed.
// Output is compact (no whitespace) and deterministic, which keeps
// artifacts diffable and lets tests assert exact strings.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace stats {

/// Escape and quote `s` per RFC 8259 (", \, and control characters).
void write_json_string(std::ostream& os, std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by exactly one value/container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(uint64_t v);
  JsonWriter& value(int64_t v);
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  /// Non-finite doubles (inf ratios, nan) are emitted as null: JSON has no
  /// representation for them and consumers treat null as "not applicable".
  JsonWriter& value(double v);
  JsonWriter& null();

  JsonWriter& kv(std::string_view k, std::string_view v) { return key(k).value(v); }
  JsonWriter& kv(std::string_view k, const char* v) { return key(k).value(v); }
  JsonWriter& kv(std::string_view k, bool v) { return key(k).value(v); }
  JsonWriter& kv(std::string_view k, uint64_t v) { return key(k).value(v); }
  JsonWriter& kv(std::string_view k, int64_t v) { return key(k).value(v); }
  JsonWriter& kv(std::string_view k, int v) { return key(k).value(v); }
  JsonWriter& kv(std::string_view k, double v) { return key(k).value(v); }

 private:
  // Called before any value or container open: emits the separating comma
  // unless this is the first element at the current level or the value
  // completes a key.
  void pre_value();

  struct Level {
    char kind;       // 'o' or 'a'
    bool any;        // something already emitted at this level
    bool have_key;   // (objects) a key is pending its value
  };

  std::ostream& os_;
  std::vector<Level> stack_;
};

}  // namespace stats
