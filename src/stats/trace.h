// Chrome trace_event recorder for transaction lifecycle inspection.
//
// When enabled (REPRO_TRACE=<file>, or Trace::enable() from tests), the
// runtime and the memory model emit duration spans — one per transaction
// attempt ("tx", with its outcome: commit or the abort cause), plus
// "wpq_stall" and "fence_wait" spans from inside nvm::Memory — into
// per-worker ring buffers. Rings are fixed-capacity and overwrite the
// oldest events, so tracing a long run keeps the *tail*, which is where
// saturation effects live. At process exit (or via write_file) the rings
// are serialized as Chrome trace JSON, loadable in chrome://tracing or
// https://ui.perfetto.dev.
//
// Mapping: each benchmark point (workload/config/threads) becomes one
// trace "process" (pid) named via begin_run(); workers are threads (tid).
// Simulated time restarts at zero per run, which the per-pid grouping
// keeps readable in the viewer.
//
// Concurrency: recording is per-worker-ring and the discrete-event engine
// runs one worker at a time; real-thread tests are safe because worker ids
// are distinct. begin_run/enable are driver-side, not from workers.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace stats {

class Trace {
 public:
  static constexpr size_t kDefaultRingCapacity = 1 << 16;  // events per worker
  static constexpr size_t kMaxWorkers = 256;

  static Trace& instance();

  /// Fast global check for record sites.
  static bool on() { return instance().enabled_; }

  void enable(size_t ring_capacity = kDefaultRingCapacity);
  void disable() { enabled_ = false; }
  void clear();

  /// Open a new trace process group (one benchmark point). Returns its pid.
  int begin_run(std::string label);

  /// Record one complete span. `name`, `arg_key`, `arg_val` must be
  /// string literals / static storage (the ring stores pointers).
  void span(int worker, const char* name, uint64_t start_ns, uint64_t dur_ns,
            const char* arg_key = nullptr, const char* arg_val = nullptr);

  /// Record one Chrome counter event ("ph":"C"): a named sampled value at
  /// simulated time `ts_ns`, rendered by trace viewers as a timeline track
  /// per (process, name). Used by the devstats sampler for device-level
  /// timelines (WPQ occupancy, channel utilization, write amplification).
  /// `name` must be a string literal / static storage.
  void counter(const char* name, uint64_t ts_ns, double value);

  /// Serialize every recorded event as Chrome trace JSON.
  void write_json(std::ostream& os) const;

  /// Write to `path`; returns false (and keeps the process alive) on I/O
  /// failure — telemetry must never take down a benchmark.
  bool write_file(const std::string& path) const;

  size_t event_count() const;

 private:
  Trace();

  struct Event {
    const char* name;
    const char* arg_key;
    const char* arg_val;
    uint64_t ts_ns;
    uint64_t dur_ns;
    double value;  // counter events only
    int pid;
    int tid;
    char ph;  // 'X' duration span or 'C' counter sample
  };

  void record(int worker, const Event& e);

  struct Ring {
    std::vector<Event> ev;  // grows to capacity, then wraps
    size_t next = 0;
    bool wrapped = false;
  };

  bool enabled_ = false;
  size_t cap_ = kDefaultRingCapacity;
  std::string exit_path_;             // from REPRO_TRACE; written via atexit
  int cur_pid_ = 0;                   // pid 0 = events before any begin_run
  std::vector<std::string> run_labels_;
  std::vector<Ring> rings_;
};

}  // namespace stats
