#include "stats/report.h"

// RunResult is a plain aggregate; logic lives inline in the header. This
// translation unit exists so the module has a home for future out-of-line
// additions and to keep the build list uniform.
