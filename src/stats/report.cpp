#include "stats/report.h"

namespace stats {
namespace {

// Occupancy histograms count queue entries, not nanoseconds — same summary
// shape as write_histogram_summary but without the _ns suffixes.
void write_count_histogram_summary(JsonWriter& w, const Histogram& h) {
  w.begin_object();
  w.kv("count", h.count());
  w.kv("mean", h.mean());
  w.kv("p50", h.p50());
  w.kv("p90", h.p90());
  w.kv("p99", h.p99());
  w.kv("max", h.max());
  w.end_object();
}

}  // namespace

void write_histogram_summary(JsonWriter& w, const Histogram& h) {
  w.begin_object();
  w.kv("count", h.count());
  w.kv("sum_ns", h.sum());
  w.kv("mean_ns", h.mean());
  w.kv("p50_ns", h.p50());
  w.kv("p90_ns", h.p90());
  w.kv("p99_ns", h.p99());
  w.kv("max_ns", h.max());
  w.end_object();
}

void write_run_result_fields(JsonWriter& w, const RunResult& r) {
  w.kv("workload", r.workload);
  w.kv("config", r.config);
  w.kv("threads", r.threads);
  w.kv("sim_ns", r.sim_ns);
  w.kv("throughput_tx_per_sec", r.throughput_tx_per_sec());

  const TxCounters& c = r.totals;
  w.key("counters").begin_object();
  w.kv("commits", c.commits);
  w.kv("aborts", c.aborts);
  w.kv("reads", c.reads);
  w.kv("writes", c.writes);
  w.kv("clwbs", c.clwbs);
  w.kv("sfences", c.sfences);
  w.kv("log_bytes", c.log_bytes);
  w.kv("log_lines_hwm", c.log_lines_hwm);
  w.kv("log_growths", c.log_growths);
  w.kv("pmem_loads", c.pmem_loads);
  w.kv("pmem_stores", c.pmem_stores);
  w.kv("dram_cache_hits", c.dram_cache_hits);
  w.kv("dram_cache_misses", c.dram_cache_misses);
  w.kv("l3_hits", c.l3_hits);
  w.kv("l3_misses", c.l3_misses);
  w.kv("wpq_stall_ns", c.wpq_stall_ns);
  w.kv("fence_wait_ns", c.fence_wait_ns);
  w.kv("energy_pj", c.energy_pj);
  w.end_object();

  w.key("abort_causes").begin_object();
  for (size_t i = 0; i < kNumAbortCauses; i++) {
    w.kv(abort_cause_name(static_cast<AbortCause>(i)), c.aborts_by_cause[i]);
  }
  w.end_object();

  // Only phases that recorded samples; an empty object means the run had
  // telemetry off (flat counters only).
  w.key("phases_ns").begin_object();
  for (size_t i = 0; i < kNumPhases; i++) {
    const auto p = static_cast<Phase>(i);
    if (c.phases[p].count() == 0) continue;
    w.key(phase_name(p));
    write_histogram_summary(w, c.phases[p]);
  }
  w.end_object();

  const RecoveryReport& rec = r.recovery;
  w.key("recovery").begin_object();
  w.kv("slots_scanned", rec.slots_scanned);
  w.kv("slots_committed", rec.slots_committed);
  w.kv("slots_rolled_back", rec.slots_rolled_back);
  w.kv("records_replayed", rec.records_replayed);
  w.kv("records_stale", rec.records_stale);
  w.kv("records_torn", rec.records_torn);
  w.kv("records_invalid", rec.records_invalid);
  w.kv("records_media_faulted", rec.records_media_faulted);
  w.kv("records_discarded", rec.records_discarded());
  w.kv("allocs_cancelled", rec.allocs_cancelled);
  w.kv("frees_applied", rec.frees_applied);
  w.kv("segment_links_truncated", rec.segment_links_truncated);
  w.kv("log_crc_mismatches", rec.log_crc_mismatches);
  w.kv("media_faults", rec.media_faults);
  w.kv("log_range_drops", r.log_range_drops);
  if (rec.mirror_enabled) {
    // Mirror-era damage verdict keys appear only when mirroring ran, so
    // default-config artifacts keep their pre-mirror shape byte for byte.
    w.kv("records_damaged", rec.records_damaged);
    w.kv("records_repaired", rec.records_repaired);
    w.kv("records_lost", rec.records_lost);
    w.kv("mirror_enabled", rec.mirror_enabled);
  }
  w.end_object();

  if (r.scrub.enabled) {
    const ScrubStats& sc = r.scrub;
    w.key("scrub").begin_object();
    w.kv("passes", sc.passes);
    w.kv("lines_scanned", sc.lines_scanned);
    w.kv("crc_checks", sc.crc_checks);
    w.kv("media_faults_found", sc.media_faults_found);
    w.kv("repaired", sc.repaired);
    w.kv("unrepairable", sc.unrepairable);
    w.kv("header_repairs", sc.header_repairs);
    w.kv("skipped_busy", sc.skipped_busy);
    w.end_object();
  }

  if (r.psan.enabled) {
    const PsanSummary& ps = r.psan;
    w.key("psan").begin_object();
    w.kv("events", ps.events);
    w.kv("checks", ps.checks);
    w.kv("missing_flush", ps.missing_flush);
    w.kv("misordered_persist", ps.misordered_persist);
    w.kv("redundant_flush", ps.redundant_flush);
    w.kv("redundant_fence", ps.redundant_fence);
    w.kv("unflushed_at_crash", ps.unflushed_at_crash);
    w.kv("torn_at_crash", ps.torn_at_crash);
    w.kv("diags_dropped", ps.diags_dropped);
    // Phase attribution for the perf lints; only phases that lint.
    w.key("redundant_flush_by_phase").begin_object();
    for (size_t i = 0; i < kNumPhases; i++) {
      if (ps.redundant_flush_by_phase[i] == 0) continue;
      w.kv(phase_name(static_cast<Phase>(i)), ps.redundant_flush_by_phase[i]);
    }
    w.end_object();
    w.key("redundant_fence_by_phase").begin_object();
    for (size_t i = 0; i < kNumPhases; i++) {
      if (ps.redundant_fence_by_phase[i] == 0) continue;
      w.kv(phase_name(static_cast<Phase>(i)), ps.redundant_fence_by_phase[i]);
    }
    w.end_object();
    w.end_object();
  }

  if (r.epoch.enabled) {
    const EpochStats& ep = r.epoch;
    w.key("epoch").begin_object();
    w.kv("epochs", ep.epochs);
    w.kv("member_txs", ep.member_txs);
    w.kv("mean_size", ep.mean_size());
    w.kv("closed_by_size", ep.closed_by_size);
    w.kv("closed_by_age", ep.closed_by_age);
    w.kv("closed_by_crash", ep.closed_by_crash);
    w.key("size");
    write_count_histogram_summary(w, ep.size);
    w.end_object();
  }

  if (r.containment.enabled) {
    const ContainmentStats& cm = r.containment;
    w.key("containment").begin_object();
    w.kv("deaths", cm.deaths);
    w.kv("stuck_tx_reclaimed", cm.stuck_tx_reclaimed);
    w.kv("aborts_on_behalf", cm.aborts_on_behalf);
    w.kv("commits_completed", cm.commits_completed);
    w.kv("leader_takeovers", cm.leader_takeovers);
    w.kv("zombies_fenced", cm.zombies_fenced);
    w.kv("watchdog_passes", cm.watchdog_passes);
    w.key("reclaim_latency_ns");
    write_histogram_summary(w, cm.reclaim_latency_ns);
    w.end_object();
  }

  if (r.device.enabled) {
    w.key("device").begin_object();
    write_device_fields(w, r.device, r.totals.energy_pj);
    w.end_object();
  }
}

void write_device_fields(JsonWriter& w, const DeviceCounters& d, double dynamic_pj) {
  w.kv("enabled", d.enabled);

  w.key("optane").begin_object();
  w.kv("host_lines_written", d.host_lines_written);
  w.kv("host_lines_read", d.host_lines_read);
  w.kv("xpline_writes", d.xpline_writes);
  w.kv("xpline_reads", d.xpline_reads);
  w.kv("xpline_rmw_reads", d.xpline_rmw_reads);
  w.kv("write_amplification", d.write_amplification());
  w.kv("effective_write_ratio", d.effective_write_ratio());
  w.kv("read_amplification", d.read_amplification());
  w.end_object();

  w.key("xpbuffer").begin_object();
  w.kv("hits", d.xpbuffer_hits);
  w.kv("misses", d.xpbuffer_misses);
  w.kv("read_hits", d.xpbuffer_read_hits);
  w.kv("drains", d.xpbuffer_drains);
  w.kv("flushes", d.xpbuffer_flushes);
  w.kv("hit_rate", d.xpbuffer_hit_rate());
  w.end_object();

  w.key("dram").begin_object();
  w.kv("lines_read", d.dram_lines_read);
  w.kv("lines_written", d.dram_lines_written);
  w.end_object();

  w.key("wpq").begin_object();
  w.kv("enqueues", d.wpq_enqueues);
  w.kv("peak_occupancy", d.wpq_peak_occupancy);
  w.key("occupancy");
  write_count_histogram_summary(w, d.wpq_occupancy);
  w.key("drain_ns");
  write_histogram_summary(w, d.wpq_drain_ns);
  w.key("workers").begin_array();
  for (const WpqWorkerStats& ws : d.wpq_workers) {
    w.begin_object();
    w.kv("worker", ws.worker);
    w.key("occupancy");
    write_count_histogram_summary(w, ws.occupancy);
    w.key("drain_ns");
    write_histogram_summary(w, ws.drain_ns);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  // Stall-time histograms named by the PR 1 phase taxonomy.
  w.key("stalls").begin_object();
  w.key("fence_wait");
  write_histogram_summary(w, d.fence_stall_ns);
  w.key("wpq_stall");
  write_histogram_summary(w, d.wpq_stall_ns);
  w.end_object();

  w.key("channels").begin_object();
  for (size_t i = 0; i < kNumChannels; i++) {
    w.key(channel_name(i)).begin_object();
    w.kv("requests", d.channels[i].requests);
    w.kv("busy_ns", d.channels[i].busy_ns);
    w.kv("utilization", d.channels[i].utilization(d.sim_end_ns));
    w.end_object();
  }
  w.end_object();

  w.key("energy").begin_object();
  w.kv("dynamic_pj", dynamic_pj);
  w.kv("reserve_energy_j", d.reserve_energy_j);
  w.kv("drain_seconds", d.drain_seconds);
  w.kv("reserve_technology", d.reserve_technology);
  w.end_object();
}

}  // namespace stats
