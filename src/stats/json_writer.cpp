#include "stats/json_writer.h"

#include <cmath>
#include <cstdio>

namespace stats {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char ch : s) {
    const auto u = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

void JsonWriter::pre_value() {
  if (stack_.empty()) return;
  Level& top = stack_.back();
  if (top.kind == 'o') {
    // The key() call already handled the comma; just consume the pending key.
    top.have_key = false;
    return;
  }
  if (top.any) os_ << ',';
  top.any = true;
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  os_ << '{';
  stack_.push_back(Level{'o', false, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  stack_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  os_ << '[';
  stack_.push_back(Level{'a', false, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  stack_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  Level& top = stack_.back();
  if (top.any) os_ << ',';
  top.any = true;
  top.have_key = true;
  write_json_string(os_, k);
  os_ << ':';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  write_json_string(os_, v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  pre_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(int64_t v) {
  pre_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  if (!std::isfinite(v)) {
    os_ << "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  os_ << "null";
  return *this;
}

}  // namespace stats
