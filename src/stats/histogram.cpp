#include "stats/histogram.h"

#include <atomic>
#include <cstdlib>

namespace stats {

namespace {

std::atomic<bool> g_telemetry{[] {
  const char* s = std::getenv("REPRO_TELEMETRY");
  return s != nullptr && s[0] == '1';
}()};

}  // namespace

bool telemetry_enabled() { return g_telemetry.load(std::memory_order_relaxed); }

void set_telemetry_enabled(bool on) {
  g_telemetry.store(on, std::memory_order_relaxed);
}

uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the percentile sample, 1-based, rounded up (nearest-rank).
  uint64_t target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_) + 0.999999);
  if (target == 0) target = 1;
  if (target > count_) target = count_;
  uint64_t cum = 0;
  for (int i = 0; i < kBuckets; i++) {
    cum += counts_[static_cast<size_t>(i)];
    if (cum >= target) {
      const uint64_t hi = bucket_hi(i);
      return hi < max_ ? hi : max_;
    }
  }
  return max_;
}

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kBegin: return "begin";
    case Phase::kRead: return "read";
    case Phase::kWrite: return "write";
    case Phase::kLogAppend: return "log_append";
    case Phase::kValidate: return "validate";
    case Phase::kFlushDrain: return "flush_drain";
    case Phase::kFenceWait: return "fence_wait";
    case Phase::kWpqStall: return "wpq_stall";
    case Phase::kCommit: return "commit";
    case Phase::kAbortBackoff: return "abort_backoff";
    case Phase::kEpochWait: return "epoch_wait";
    case Phase::kEpochDrain: return "epoch_drain";
  }
  return "?";
}

}  // namespace stats
