// Result record for one (workload, configuration, thread-count) benchmark
// point, plus throughput math shared by all bench binaries.
#pragma once

#include <cstdint>
#include <string>

#include "stats/counters.h"

namespace stats {

struct RunResult {
  std::string workload;
  std::string config;       // e.g. "Optane_ADR_R"
  int threads = 1;
  uint64_t sim_ns = 0;      // simulated wall time of the run (max worker clock)
  TxCounters totals;

  /// Committed transactions per simulated second.
  double throughput_tx_per_sec() const {
    if (sim_ns == 0) return 0.0;
    return static_cast<double>(totals.commits) * 1e9 / static_cast<double>(sim_ns);
  }

  /// Throughput scaled to Mtx/s for compact table cells.
  double throughput_mtx_per_sec() const { return throughput_tx_per_sec() / 1e6; }
};

}  // namespace stats
