// Result record for one (workload, configuration, thread-count) benchmark
// point, plus throughput math shared by all bench binaries and the JSON
// artifact serialization (docs/OBSERVABILITY.md documents the schema).
#pragma once

#include <cstdint>
#include <string>

#include "stats/counters.h"
#include "stats/devstats.h"
#include "stats/json_writer.h"

namespace stats {

struct RunResult {
  std::string workload;
  std::string config;       // e.g. "Optane_ADR_R"
  int threads = 1;
  uint64_t sim_ns = 0;      // simulated wall time of the run (max worker clock)
  TxCounters totals;

  // Emulated DIMM counters (stats::DevStats); serialized under a "device"
  // key only when device.enabled, so default-config artifacts stay
  // byte-identical to runs built before the subsystem existed.
  DeviceCounters device;

  // Wall-clock self-profile of the simulation itself (never serialized in
  // the deterministic REPRO_JSON artifact — wall time varies run to run;
  // bench::Output routes it to the separate REPRO_BENCH artifact).
  uint64_t wall_ns = 0;            // host time spent inside the run
  uint64_t channel_requests = 0;   // bandwidth-channel grants (subsystem "channel")
  uint64_t persistence_events = 0; // crash-sim persistence hooks (subsystem "fault")

  /// Simulation events processed: the instrumented-access count that
  /// dominates DES work. wall_ns / sim_events() is the self-profiler's
  /// headline nanoseconds-per-event figure.
  uint64_t sim_events() const {
    return totals.pmem_loads + totals.pmem_stores + totals.clwbs + totals.sfences;
  }

  /// Events per wall-clock second (0 when wall time was not measured).
  double sim_events_per_sec() const {
    if (wall_ns == 0) return 0.0;
    return static_cast<double>(sim_events()) * 1e9 / static_cast<double>(wall_ns);
  }

  // Startup recovery outcome for this point's pool (a fresh pool recovers
  // trivially: all-zero except slots_scanned) plus log-range registrations
  // the memory model had to drop. CI gates on these being clean — see
  // scripts/check_recovery_report.py.
  RecoveryReport recovery;
  uint64_t log_range_drops = 0;

  // Background scrubber counters; serialized under a "scrub" key only when
  // scrub.enabled (scrub_interval_ns > 0), keeping default artifacts
  // byte-identical to pre-scrubber runs.
  ScrubStats scrub;

  // Persistency-sanitizer verdict for this point's pool; serialized under
  // a "psan" key only when psan.enabled (so default-config artifacts stay
  // byte-identical to runs built before the sanitizer existed).
  PsanSummary psan;

  // Group/epoch-commit counters (ptm::EpochManager); serialized under an
  // "epoch" key only when epoch.enabled, like scrub/psan/device.
  EpochStats epoch;

  // Thread-crash containment counters (ptm::ContainmentManager);
  // serialized under a "containment" key only when containment.enabled.
  ContainmentStats containment;

  /// Committed transactions per simulated second.
  double throughput_tx_per_sec() const {
    if (sim_ns == 0) return 0.0;
    return static_cast<double>(totals.commits) * 1e9 / static_cast<double>(sim_ns);
  }

  /// Throughput scaled to Mtx/s for compact table cells.
  double throughput_mtx_per_sec() const { return throughput_tx_per_sec() / 1e6; }
};

/// Append this result's fields (workload/config/threads, throughput, flat
/// counters, abort causes, per-phase p50/p90/p99 summaries) as keys of the
/// JSON object currently open on `w`. The caller owns the object braces so
/// it can prepend identification keys (bench title, curve label).
void write_run_result_fields(JsonWriter& w, const RunResult& r);

/// Phase summary helper, also used on its own by tests: writes an object
/// {count,sum_ns,mean_ns,p50_ns,p90_ns,p99_ns,max_ns} for one histogram.
void write_histogram_summary(JsonWriter& w, const Histogram& h);

/// Write the "device" section body (media/XPBuffer/WPQ/stall/channel/energy
/// counters; docs/OBSERVABILITY.md documents the schema). `dynamic_pj` is
/// the run's accumulated TxCounters::energy_pj. The caller owns the object
/// braces, like write_run_result_fields.
void write_device_fields(JsonWriter& w, const DeviceCounters& d, double dynamic_pj);

}  // namespace stats
