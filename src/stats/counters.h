// Per-thread event counters for the PTM runtime and the memory model.
//
// Every quantity the paper reports — committed transactions, aborts
// (Tables I/II report commits-per-abort), clwb/sfence counts (Table III is
// about fence cost), redo-log footprint high-watermarks (§IV.B) — is
// accumulated here. Counters are per-thread and unsynchronized; aggregation
// happens after workers join.
//
// Beyond the flat sums, each TxCounters carries the telemetry layer's
// per-phase latency histograms (populated only while
// stats::telemetry_enabled()) and a per-cause abort breakdown, so the
// distributional claims — lock-hold windows, WPQ stalls, conflict types —
// are directly observable rather than inferred from throughput.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/histogram.h"

namespace stats {

/// Why a transaction aborted. The single `aborts` sum remains the total;
/// the per-cause array lets Tables I/II attribute degradation to read-time
/// conflicts vs commit/encounter-time write conflicts vs validation
/// failures (paper §III.B discusses exactly this split).
enum class AbortCause : uint8_t {
  kConflictRead = 0,  // orec locked/too-new when reading
  kConflictWrite,     // orec conflict acquiring the write set
  kValidation,        // read-set validation failed at commit
  kExplicit,          // user-requested abort_and_retry()
  kCapacity,          // log / write-set capacity exhausted; runtime grows + retries
};
inline constexpr size_t kNumAbortCauses = 5;

const char* abort_cause_name(AbortCause c);

struct TxCounters {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t aborts_by_cause[kNumAbortCauses] = {};
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t clwbs = 0;
  uint64_t sfences = 0;
  uint64_t log_bytes = 0;           // bytes appended to redo/undo logs
  uint64_t log_lines_hwm = 0;       // high-watermark of log cache lines per tx
  uint64_t log_growths = 0;         // overflow log segments / index growths installed
  uint64_t pmem_loads = 0;          // loads served by the persistent media
  uint64_t pmem_stores = 0;
  uint64_t dram_cache_hits = 0;     // PDRAM / Memory-Mode directory hits
  uint64_t dram_cache_misses = 0;
  uint64_t l3_hits = 0;
  uint64_t l3_misses = 0;
  uint64_t wpq_stall_ns = 0;        // simulated ns spent waiting on a full WPQ
  uint64_t fence_wait_ns = 0;       // simulated ns spent in sfence drains
  double energy_pj = 0;             // modelled dynamic energy (nvm::EnergyModel)

  /// Per-phase latency histograms; empty unless telemetry_enabled().
  PhaseHists phases;

  void add(const TxCounters& o);
  void reset() { *this = TxCounters{}; }

  uint64_t aborts_of(AbortCause c) const {
    return aborts_by_cause[static_cast<size_t>(c)];
  }

  /// Commits per abort. Sentinel: returns +infinity when there were no
  /// aborts — "no aborts" is a *better* outcome than any finite ratio and
  /// must not collapse onto 0 (which legitimately means "no commits").
  /// Tables print the infinity case as "-" via util::fmt_ratio, matching
  /// the paper's blank single-thread cells.
  double commit_abort_ratio() const;
};

/// Sum a vector of per-thread counters (histograms merge bucket-wise).
TxCounters aggregate(const std::vector<TxCounters>& per_thread);

/// What Runtime::recover() did and what it refused to trust. Every record
/// recovery looks at lands in exactly one bucket; the "discarded" buckets
/// distinguish *expected* crash debris (stale tags, torn records the CRC
/// caught, truncated segment links) from damage (media faults, out-of-
/// bounds offsets, whole-log checksum mismatches on committed logs). On a
/// clean start — or after recovering a crash that tore nothing — all
/// discard buckets are zero; CI gates on that for non-crash runs
/// (scripts/check_recovery_report.py).
struct RecoveryReport {
  uint64_t slots_scanned = 0;         // worker slots examined
  uint64_t slots_committed = 0;       // redo logs replayed forward
  uint64_t slots_rolled_back = 0;     // undo logs applied in reverse
  uint64_t records_replayed = 0;      // redo/undo records actually applied
  uint64_t records_stale = 0;         // epoch-tag mismatch (normal debris)
  uint64_t records_torn = 0;          // per-record CRC failure (crash_sim)
  uint64_t records_invalid = 0;       // offset out of bounds / misaligned
  uint64_t records_media_faulted = 0; // record bytes on a poisoned line
  uint64_t allocs_cancelled = 0;      // speculative allocations returned
  uint64_t frees_applied = 0;         // committed frees performed
  uint64_t segment_links_truncated = 0;  // overflow chain links dropped
  uint64_t log_crc_mismatches = 0;    // committed whole-log CRC failures
  uint64_t media_faults = 0;          // poisoned lines known at recovery

  // Damage accounting split (detected / repaired / lost). The legacy
  // buckets above keep attributing each *primary-copy* screening failure;
  // these three add the mirror-era verdict: every primary-copy damage
  // observation counts as detected, damage healed from an intact mirror
  // copy counts as repaired, and damage with no usable copy left counts
  // as lost. With mirroring on, nonzero detected/torn/media buckets can
  // therefore coexist with records_lost == 0 — that is the feature
  // working, not an inconsistency.
  uint64_t records_damaged = 0;   // detected: primary-copy damage observations
  uint64_t records_repaired = 0;  // primary rewritten in place from its mirror
  uint64_t records_lost = 0;      // both copies unusable (or no mirror existed)
  bool mirror_enabled = false;    // SystemConfig::log_mirror at recovery time

  /// Records recovery refused to apply for any reason other than a stale
  /// tag (stale tags are ordinary leftovers, not damage).
  uint64_t records_discarded() const {
    return records_torn + records_invalid + records_media_faulted;
  }

  void add(const RecoveryReport& o);
};

/// Surfaced by Runtime::recover() under RecoveryPolicy::kSalvage when
/// damage was beyond repair: what was lost and what got quarantined so
/// the runtime could keep going. All-zero (degraded == false) on every
/// healthy recovery.
struct DegradedReport {
  bool degraded = false;          // any unrepairable damage seen
  uint64_t lost_records = 0;      // log records with no usable copy
  uint64_t lost_txs = 0;          // slots that lost at least one record/header
  uint64_t quarantined_bytes = 0;   // heap bytes excluded from reuse
  uint64_t quarantined_blocks = 0;  // allocator blocks diverted from free lists
};

/// Background scrubber counters (ptm::Scrubber), one pool lifetime.
/// Serialized under the "scrub" key of REPRO_JSON artifacts only when the
/// scrubber ran (enabled), keeping default-config output unchanged.
struct ScrubStats {
  bool enabled = false;
  uint64_t passes = 0;             // full walks completed
  uint64_t lines_scanned = 0;      // log/metadata cache lines examined
  uint64_t crc_checks = 0;         // sealed header CRC validations
  uint64_t media_faults_found = 0; // poisoned lines detected while scanning
  uint64_t repaired = 0;           // lines rewritten in place from a mirror
  uint64_t unrepairable = 0;       // poisoned lines with no healthy mirror
  uint64_t header_repairs = 0;     // of `repaired`: slot/segment header lines
  uint64_t skipped_busy = 0;       // slots skipped because a tx was in flight

  void add(const ScrubStats& o);
};

/// Aggregated verdict of the persistency sanitizer (analysis::Psan) for
/// one pool lifetime. The correctness counters must be zero on every
/// run of the shipped algorithms; the redundant_* counters are perf
/// lints (extra Table III fence/flush cost), broken down by the phase
/// taxonomy so a lint points at the code path that issued it. Serialized
/// under the "psan" key of REPRO_JSON artifacts (only when enabled) and
/// gated in CI by scripts/check_psan.py.
struct PsanSummary {
  bool enabled = false;
  uint64_t events = 0;              // hooked store/clwb/sfence instructions
  uint64_t checks = 0;              // (worker, line) ordering-point checks
  uint64_t missing_flush = 0;       // correctness: unpersisted line at an ordering point
  uint64_t misordered_persist = 0;  // correctness: store issued ahead of required persist
  uint64_t redundant_flush = 0;     // lint: clwb of an already-persisted line
  uint64_t redundant_fence = 0;     // lint: sfence with nothing pending
  uint64_t unflushed_at_crash = 0;  // info: dirty-never-flushed lines at power failure
  uint64_t torn_at_crash = 0;       // info: flushed-but-unfenced lines at power failure
  uint64_t diags_dropped = 0;       // diagnostics beyond the storage cap (counts stay exact)
  uint64_t redundant_flush_by_phase[kNumPhases] = {};
  uint64_t redundant_fence_by_phase[kNumPhases] = {};

  /// The CI-gated total: any nonzero value is an ordering bug.
  uint64_t correctness() const { return missing_flush + misordered_persist; }

  void add(const PsanSummary& o);
};

/// Group/epoch-commit counters (ptm::EpochManager), one runtime lifetime.
/// Serialized under the "epoch" key of REPRO_JSON artifacts only when the
/// mode ran (enabled), keeping default-config output unchanged. The size
/// histogram is count-valued (members per epoch), not nanoseconds.
struct EpochStats {
  bool enabled = false;
  uint64_t epochs = 0;            // epochs drained (leader drain passes)
  uint64_t member_txs = 0;        // transactions committed through epochs
  uint64_t closed_by_size = 0;    // drains triggered by epoch_max_txs
  uint64_t closed_by_age = 0;     // drains triggered by epoch_max_ns
  uint64_t closed_by_crash = 0;   // batches abandoned by a mid-drain crash
  Histogram size;                 // members per drained epoch

  /// Mean members per epoch — the fence-amortization factor.
  double mean_size() const {
    return epochs == 0 ? 0.0
                       : static_cast<double>(member_txs) / static_cast<double>(epochs);
  }

  void add(const EpochStats& o);
};

/// Thread-crash containment counters (ptm::ContainmentManager), one
/// runtime lifetime. Serialized under the "containment" key of REPRO_JSON
/// artifacts only when containment ran (enabled), keeping default-config
/// output unchanged. The latency histogram measures lease-expiry-to-
/// reclaim-complete in simulated nanoseconds.
struct ContainmentStats {
  bool enabled = false;
  uint64_t deaths = 0;             // fibers that died (FiberKill unwound run())
  uint64_t stuck_tx_reclaimed = 0; // expired transactions cleaned up on behalf
  uint64_t aborts_on_behalf = 0;   // of reclaimed: rolled back (not durably committed)
  uint64_t commits_completed = 0;  // of reclaimed: rolled forward (durably committed)
  uint64_t leader_takeovers = 0;   // epoch drains stolen from an expired leader
  uint64_t zombies_fenced = 0;     // stalled workers killed on wake after reclamation
  uint64_t watchdog_passes = 0;    // watchdog sweeps completed
  Histogram reclaim_latency_ns;    // lease expiry -> slot retired, per reclaim

  void add(const ContainmentStats& o);
};

/// Record a phase latency if telemetry is on and a counter sink exists.
/// The memory model uses this for WPQ-stall / fence-wait events, which are
/// observed inside nvm::Memory rather than in Tx scope.
inline void record_phase(TxCounters* c, Phase p, uint64_t ns) {
  if (c != nullptr && telemetry_enabled()) c->phases.record(p, ns);
}

}  // namespace stats
