// Per-thread event counters for the PTM runtime and the memory model.
//
// Every quantity the paper reports — committed transactions, aborts
// (Tables I/II report commits-per-abort), clwb/sfence counts (Table III is
// about fence cost), redo-log footprint high-watermarks (§IV.B) — is
// accumulated here. Counters are per-thread and unsynchronized; aggregation
// happens after workers join.
#pragma once

#include <cstdint>
#include <vector>

namespace stats {

struct TxCounters {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t clwbs = 0;
  uint64_t sfences = 0;
  uint64_t log_bytes = 0;           // bytes appended to redo/undo logs
  uint64_t log_lines_hwm = 0;       // high-watermark of log cache lines per tx
  uint64_t pmem_loads = 0;          // loads served by the persistent media
  uint64_t pmem_stores = 0;
  uint64_t dram_cache_hits = 0;     // PDRAM / Memory-Mode directory hits
  uint64_t dram_cache_misses = 0;
  uint64_t l3_hits = 0;
  uint64_t l3_misses = 0;
  uint64_t wpq_stall_ns = 0;        // simulated ns spent waiting on a full WPQ
  uint64_t fence_wait_ns = 0;       // simulated ns spent in sfence drains
  double energy_pj = 0;             // modelled dynamic energy (nvm::EnergyModel)

  void add(const TxCounters& o);
  void reset() { *this = TxCounters{}; }

  /// Commits per abort; returns 0 when there are no aborts (matches the
  /// paper's tables, which print 0 for the single-thread column).
  double commit_abort_ratio() const {
    return aborts == 0 ? 0.0 : static_cast<double>(commits) / static_cast<double>(aborts);
  }
};

/// Sum a vector of per-thread counters.
TxCounters aggregate(const std::vector<TxCounters>& per_thread);

}  // namespace stats
