// Per-thread event counters for the PTM runtime and the memory model.
//
// Every quantity the paper reports — committed transactions, aborts
// (Tables I/II report commits-per-abort), clwb/sfence counts (Table III is
// about fence cost), redo-log footprint high-watermarks (§IV.B) — is
// accumulated here. Counters are per-thread and unsynchronized; aggregation
// happens after workers join.
//
// Beyond the flat sums, each TxCounters carries the telemetry layer's
// per-phase latency histograms (populated only while
// stats::telemetry_enabled()) and a per-cause abort breakdown, so the
// distributional claims — lock-hold windows, WPQ stalls, conflict types —
// are directly observable rather than inferred from throughput.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/histogram.h"

namespace stats {

/// Why a transaction aborted. The single `aborts` sum remains the total;
/// the per-cause array lets Tables I/II attribute degradation to read-time
/// conflicts vs commit/encounter-time write conflicts vs validation
/// failures (paper §III.B discusses exactly this split).
enum class AbortCause : uint8_t {
  kConflictRead = 0,  // orec locked/too-new when reading
  kConflictWrite,     // orec conflict acquiring the write set
  kValidation,        // read-set validation failed at commit
  kExplicit,          // user-requested abort_and_retry()
  kCapacity,          // log / write-set capacity exhausted; runtime grows + retries
};
inline constexpr size_t kNumAbortCauses = 5;

const char* abort_cause_name(AbortCause c);

struct TxCounters {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t aborts_by_cause[kNumAbortCauses] = {};
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t clwbs = 0;
  uint64_t sfences = 0;
  uint64_t log_bytes = 0;           // bytes appended to redo/undo logs
  uint64_t log_lines_hwm = 0;       // high-watermark of log cache lines per tx
  uint64_t log_growths = 0;         // overflow log segments / index growths installed
  uint64_t pmem_loads = 0;          // loads served by the persistent media
  uint64_t pmem_stores = 0;
  uint64_t dram_cache_hits = 0;     // PDRAM / Memory-Mode directory hits
  uint64_t dram_cache_misses = 0;
  uint64_t l3_hits = 0;
  uint64_t l3_misses = 0;
  uint64_t wpq_stall_ns = 0;        // simulated ns spent waiting on a full WPQ
  uint64_t fence_wait_ns = 0;       // simulated ns spent in sfence drains
  double energy_pj = 0;             // modelled dynamic energy (nvm::EnergyModel)

  /// Per-phase latency histograms; empty unless telemetry_enabled().
  PhaseHists phases;

  void add(const TxCounters& o);
  void reset() { *this = TxCounters{}; }

  uint64_t aborts_of(AbortCause c) const {
    return aborts_by_cause[static_cast<size_t>(c)];
  }

  /// Commits per abort. Sentinel: returns +infinity when there were no
  /// aborts — "no aborts" is a *better* outcome than any finite ratio and
  /// must not collapse onto 0 (which legitimately means "no commits").
  /// Tables print the infinity case as "-" via util::fmt_ratio, matching
  /// the paper's blank single-thread cells.
  double commit_abort_ratio() const;
};

/// Sum a vector of per-thread counters (histograms merge bucket-wise).
TxCounters aggregate(const std::vector<TxCounters>& per_thread);

/// Record a phase latency if telemetry is on and a counter sink exists.
/// The memory model uses this for WPQ-stall / fence-wait events, which are
/// observed inside nvm::Memory rather than in Tx scope.
inline void record_phase(TxCounters* c, Phase p, uint64_t ns) {
  if (c != nullptr && telemetry_enabled()) c->phases.record(p, ns);
}

}  // namespace stats
