// System configuration: media, durability domain, model parameters.
//
// One SystemConfig describes one experimental configuration from the paper,
// e.g. "Optane_ADR" or "DRAM_eADR" in Figures 3/4, or "PDRAM" / "PDRAM-Lite"
// in Figures 6/7. The PTM runtime and the memory model both read it.
#pragma once

#include <cstdint>
#include <string>

#include "nvm/cost_model.h"

namespace nvm {

/// Which logical region of the persistent pool an access touches. The
/// distinction matters only for PDRAM-Lite, where redo-log pages live in
/// battery-backed DRAM while data pages stay on Optane (paper §IV.B).
enum class Space : uint8_t { kData = 0, kLog = 1 };

/// Which unfenced lines spontaneously reach the persistence domain at an
/// ADR power failure (crash_sim only). The random modes are what a real
/// cache does; the directed schedules are adversarial probes for persist-
/// ordering bugs — e.g. kDataFirst persists every in-place data store
/// while dropping every unfenced log line, which breaks any algorithm
/// that writes data before its undo record is fenced.
enum class WritebackAdversary : uint8_t {
  kRandom = 0,     // independent coin per line (crash_*_prob) — default
  kNone = 1,       // nothing unfenced persists (strictest WPQ-only ADR)
  kAll = 2,        // everything persists (eADR-like; ordering bugs hide)
  kLogFirst = 3,   // unfenced log lines persist, unfenced data lines drop
  kDataFirst = 4,  // unfenced data lines persist, unfenced log lines drop
};

/// What Runtime::recover() does when a log record (or a slot header) is
/// damaged beyond repair — i.e. both the primary and, when mirroring is on,
/// the mirror copy are unreadable.
enum class RecoveryPolicy : uint8_t {
  /// Quarantine the affected heap blocks, mark the pool degraded, surface
  /// the loss in a stats::DegradedReport, and keep the runtime usable with
  /// the quarantined region excluded. Default: matches the pre-mirror
  /// screen-and-drop behaviour, but the loss is now reported, never silent.
  kSalvage = 0,
  /// Throw ptm::MediaLossError from recover() instead of continuing.
  kFailStop = 1,
};

struct SystemConfig {
  Media media = Media::kOptane;   // backing media of the persistent heap
  Domain domain = Domain::kAdr;

  /// Table III variant: keep clwb instructions but skip all sfences. This
  /// is deliberately *incorrect* for durability; used only to measure the
  /// fraction of ADR overhead attributable to fences.
  bool elide_fences = false;

  /// Track a shadow persistence image so tests can simulate a power
  /// failure and exercise recovery. Off for performance runs.
  bool crash_sim = false;

  /// Charge modelled time under the discrete-event engine.
  bool model_timing = true;

  /// Run the persistency sanitizer (analysis::Psan): a per-cache-line
  /// flush/fence ordering checker over every instrumented access. Like
  /// telemetry/checksums it is zero-cost when off (one null-pointer test
  /// per hooked access) and changes no observable output. REPRO_PSAN=1
  /// forces it on regardless of this flag.
  bool psan = false;

  /// Collect emulated-DIMM performance counters (stats::DevStats): media
  /// traffic at 256B XPLine granularity with write/read amplification,
  /// XPBuffer hit/miss, WPQ occupancy/drain histograms, channel
  /// utilization. Pure observation — never charges simulated time — and
  /// zero-cost when off (one null-pointer test per hook, like psan).
  /// REPRO_DEVSTATS=1 forces it on regardless of this flag.
  bool devstats = false;

  // Crash-simulation adversary: probability that a dirty-but-unflushed
  // line (or a clwb'd-but-unfenced line) happens to persist anyway, as a
  // real cache/WPQ might spontaneously write it back before the failure.
  double crash_evict_prob = 0.3;
  double crash_pending_prob = 0.5;

  /// Sub-line tearing under ADR: when set, an unfenced line persists as a
  /// random 8-byte-aligned *subset* of its words instead of all-or-
  /// nothing, matching real ADR's 8-byte store atomicity. Fenced lines
  /// are still atomic (the WPQ drained them whole before the fence
  /// retired). crash_sim only; no effect on other domains.
  bool torn_stores = false;

  /// Which unfenced lines spontaneously persist at an ADR failure.
  WritebackAdversary writeback_adversary = WritebackAdversary::kRandom;

  /// Mirror log metadata: every sealed log line (record lines, the slot
  /// header's commit/seal words, segment-link headers) gets a second copy
  /// on a distinct XPLine inside the same per-worker meta area, written in
  /// the same flush/fence batches as the primary so the mirror is durable
  /// no later than the primary seal. Recovery and the scrubber fall back
  /// to the replica when the primary fails its CRC/media check and rewrite
  /// the primary in place. Opt-in like the crash-sim features; halves the
  /// in-slot log capacity.
  bool log_mirror = false;

  /// Background scrubber cadence in simulated nanoseconds; 0 disables the
  /// scrub fiber. When nonzero the workload driver schedules one extra
  /// DES fiber that walks sealed log lines and allocator metadata every
  /// `scrub_interval_ns`, validating CRCs and repairing poisoned lines
  /// from their mirrors (ptm::Scrubber).
  uint64_t scrub_interval_ns = 0;

  /// Behaviour when recovery meets damage it cannot repair.
  RecoveryPolicy recovery_policy = RecoveryPolicy::kSalvage;

  /// Group/epoch commit (ptm::EpochManager): committing workers publish
  /// their sealed-but-unmarked logs to a per-runtime queue and a leader-
  /// elected committer persists every member's log under one flush window,
  /// issues a single fence, and flips all COMMITTED statuses together —
  /// the per-transaction ordering points become per-epoch ones. Opt-in
  /// like psan/devstats/mirror; REPRO_EPOCH=1 forces it on regardless of
  /// this flag. Durability semantics are unchanged: commit() only returns
  /// once the caller's transaction is durably marked.
  bool epoch_commit = false;

  /// Epoch close triggers: an epoch is drained as soon as `epoch_max_txs`
  /// members are queued, or when the oldest queued member has waited
  /// `epoch_max_ns` simulated nanoseconds (so a lone worker degrades to
  /// epochs of one instead of stalling).
  size_t epoch_max_txs = 8;
  uint64_t epoch_max_ns = 4000;

  /// Thread-crash containment (ptm::ContainmentManager): per-worker
  /// sim-time heartbeats plus an orec *lease*. A waiter (or the watchdog)
  /// that finds a transaction whose owner has not heartbeat for
  /// `tx_timeout_ns` treats the owner as dead, rolls its transaction back
  /// (or forward, if durably committed) on its behalf, releases its orecs
  /// and retires its slot (docs/FAULTS.md "Thread-crash containment").
  /// 0 disables containment entirely — the runtime carries a null manager
  /// and every hook is one null-pointer test, like psan/devstats.
  uint64_t tx_timeout_ns = 0;

  /// Watchdog cadence in simulated nanoseconds; 0 disables the watchdog
  /// fiber. When nonzero (and tx_timeout_ns > 0) the workload driver
  /// schedules one extra DES fiber that sweeps for transactions stalled
  /// past the lease timeout, so stuck transactions are reclaimed even
  /// when no live worker ever conflicts with them (ptm::Watchdog).
  uint64_t watchdog_interval_ns = 0;

  /// Ceiling for randomized abort backoff. The exponential draw in
  /// Tx::handle_abort is clamped (with jitter, so retriers stay
  /// desynchronized) to at most this many nanoseconds; 0 means uncapped.
  /// The default never binds at the default backoff_base_ns (150ns << 10
  /// max shift = 153600 < 1MiB-ns), keeping default-config runs
  /// byte-identical, but guarantees a contended worker cannot back off
  /// past a containment watchdog timeout.
  uint64_t backoff_max_ns = 1ull << 20;

  CostModel cost;

  // Modelled hierarchy geometry.
  uint64_t l3_bytes = 32ull << 20;
  int l3_ways = 16;
  uint64_t dram_cache_bytes = 96ull << 20;  // PDRAM directory capacity

  // Pool geometry.
  size_t pool_size = 64ull << 20;
  int max_workers = 33;
  size_t per_worker_meta_bytes = 1ull << 19;  // per-thread log + status area

  /// "Optane_ADR", "DRAM_eADR", "PDRAM", "PDRAM-Lite", ... — matches the
  /// curve labels used in the paper's figures.
  std::string name() const;

  /// True when the algorithm must issue clwb/sfence (ADR only).
  bool needs_flushes() const { return domain == Domain::kAdr; }
};

}  // namespace nvm
