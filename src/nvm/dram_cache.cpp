#include "nvm/dram_cache.h"

namespace nvm {

DramCacheDirectory::DramCacheDirectory(uint64_t capacity_bytes) {
  num_slots_ = capacity_bytes / 64;
  if (num_slots_ == 0) num_slots_ = 1;
  slots_.assign(num_slots_, Slot{});
}

DramCacheDirectory::AccessResult DramCacheDirectory::access(uint64_t line, bool is_write) {
  Slot& s = slots_[line % num_slots_];
  if (s.tag == line) {
    s.dirty |= is_write;
    return {true, kNoLine};
  }
  uint64_t evicted = kNoLine;
  if (s.tag != kNoLine && s.dirty) evicted = s.tag;
  s.tag = line;
  s.dirty = is_write;
  return {false, evicted};
}

void DramCacheDirectory::reset() { slots_.assign(slots_.size(), Slot{}); }

}  // namespace nvm
