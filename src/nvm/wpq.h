// Write Pending Queue (WPQ) model.
//
// In ADR, a clwb'd line travels to the memory controller's WPQ; once there
// it is guaranteed to persist (the ADR power reserve drains the queue). The
// WPQ is small and bounded — the paper identifies WPQ saturation as the
// cause of Optane's poor write scalability. We model it as:
//   * clwb enqueues the line; its drain completion time is granted by the
//     media write BandwidthChannel, with a latency floor equal to the
//     measured clwb-to-persistence latency (86/94 ns);
//   * if `capacity` lines are still in flight, the issuing worker stalls
//     until the oldest completes (completions are monotone, so a ring
//     suffices);
//   * sfence waits until all lines this worker enqueued have drained.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "nvm/channel.h"
#include "nvm/cost_model.h"

namespace nvm {

class Wpq {
 public:
  Wpq(int capacity, int max_workers)
      : capacity_(capacity), ring_(static_cast<size_t>(capacity), 0),
        per_worker_last_done_(static_cast<size_t>(max_workers), 0) {}

  /// Enqueue one line at simulated time `now`. Returns the time the caller
  /// must reach before the enqueue can happen (stall on full queue); the
  /// caller advances to it, then calls `commit_enqueue`.
  uint64_t stall_until_ns(uint64_t now) const {
    // Occupancy = entries whose completion is still in the future. The ring
    // holds the last `capacity_` completions; if the oldest of those is
    // still pending, the queue is full.
    const uint64_t oldest = ring_[head_];
    return oldest > now ? oldest : now;
  }

  /// Record the enqueue: the line's drain is scheduled on `chan` with
  /// service `svc_ns` and latency floor `lat_ns`. Returns completion time.
  uint64_t enqueue(int worker, uint64_t now, BandwidthChannel& chan, double svc_ns,
                   double lat_ns) {
    const BandwidthChannel::Grant g = chan.request(now, svc_ns);
    uint64_t done = g.done_ns;
    const uint64_t floor = now + static_cast<uint64_t>(lat_ns);
    if (done < floor) done = floor;
    ring_[head_] = done;
    head_ = (head_ + 1) % static_cast<size_t>(capacity_);
    auto& last = per_worker_last_done_[static_cast<size_t>(worker)];
    if (done > last) last = done;
    return done;
  }

  /// Time by which all of `worker`'s enqueued lines have drained.
  uint64_t worker_drain_ns(int worker) const {
    return per_worker_last_done_[static_cast<size_t>(worker)];
  }

  /// Entries still in flight at simulated time `now` (devstats only; the
  /// ring is small — wpq_capacity — so the scan is cheap and off the
  /// default path).
  uint64_t occupancy(uint64_t now) const {
    uint64_t n = 0;
    for (const uint64_t done : ring_) {
      if (done > now) n++;
    }
    return n;
  }

  void reset() {
    std::fill(ring_.begin(), ring_.end(), 0);
    std::fill(per_worker_last_done_.begin(), per_worker_last_done_.end(), 0);
    head_ = 0;
  }

 private:
  int capacity_;
  std::vector<uint64_t> ring_;  // completion times, oldest at head_
  size_t head_ = 0;
  std::vector<uint64_t> per_worker_last_done_;
};

}  // namespace nvm
