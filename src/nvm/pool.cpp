#include "nvm/pool.h"

#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>

namespace nvm {

Pool::Pool(const SystemConfig& cfg) : cfg_(cfg) {
  const size_t meta_total =
      static_cast<size_t>(cfg_.max_workers) * cfg_.per_worker_meta_bytes;
  const size_t min_size = kHeaderBytes + kRootBytes + meta_total + (1u << 20);
  if (cfg_.pool_size < min_size) {
    throw std::invalid_argument("pool_size too small for layout");
  }
  // Log records pack pool offsets into 32 bits (ptm::LogEntry::kOffBits;
  // the freed bits hold the per-record checksum), so the pool must fit.
  if (cfg_.pool_size > (1ull << 32)) {
    throw std::invalid_argument("pool_size exceeds the 4 GB log-offset limit");
  }

  void* p = nullptr;
  if (posix_memalign(&p, 4096, cfg_.pool_size) != 0) throw std::bad_alloc();
  base_ = static_cast<char*>(p);
  std::memset(base_, 0, cfg_.pool_size);

  PoolHeader* h = header();
  h->magic = kMagic;
  h->size = cfg_.pool_size;
  h->meta_off = kHeaderBytes + kRootBytes;
  h->meta_per_worker = cfg_.per_worker_meta_bytes;
  h->heap_off = h->meta_off + meta_total;
  h->initialized = 1;

  mem_ = std::make_unique<Memory>(cfg_, base_, cfg_.pool_size);
  mem_->set_log_line_range(h->meta_off / Memory::kLineBytes,
                           h->heap_off / Memory::kLineBytes);
  // The formatted (empty) pool is the initial persisted state.
  mem_->checkpoint_all_persistent();
}

Pool::~Pool() { std::free(base_); }

}  // namespace nvm
