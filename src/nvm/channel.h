// Shared bandwidth channel: a single-server queue in simulated time.
//
// Each media direction (DRAM read/write, Optane read/write) is one channel.
// A request at simulated time `now` begins service at max(now, next_free)
// and occupies the channel for `svc_ns`. The *latency* experienced by the
// requester is the queueing wait plus a device latency supplied by the
// caller; the *throughput* cap comes from svc_ns. This reproduces the
// paper's saturation effects: when many workers issue lines faster than
// 64B/svc, waits grow without bound and scalability flattens — at ~4
// writers for Optane and ~17 readers, per the calibrated service times.
//
// Channels are only consulted under the discrete-event engine, where a
// single worker runs at a time, so plain (non-atomic) state is safe; a
// debug assertion guards misuse from real threads.
#pragma once

#include <cstdint>

namespace nvm {

class BandwidthChannel {
 public:
  struct Grant {
    uint64_t wait_ns;     // queueing delay before service begins
    uint64_t start_ns;    // service start (== now + wait)
    uint64_t done_ns;     // service completion (start + svc)
  };

  /// Reserve one line of service at simulated time `now`.
  Grant request(uint64_t now, double svc_ns) {
    const uint64_t svc = static_cast<uint64_t>(svc_ns);
    const uint64_t start = next_free_ns_ > now ? next_free_ns_ : now;
    next_free_ns_ = start + svc;
    requests_++;
    busy_ns_ += svc;
    return Grant{start - now, start, start + svc};
  }

  /// How far the channel is booked past `now` (0 when idle).
  uint64_t backlog_ns(uint64_t now) const {
    return next_free_ns_ > now ? next_free_ns_ - now : 0;
  }

  // Utilization accounting for the device counters (stats::DeviceCounters):
  // total lines granted and total booked service time. busy/elapsed is the
  // channel's utilization; 1.0 means saturated.
  uint64_t requests() const { return requests_; }
  uint64_t busy_ns() const { return busy_ns_; }

  void reset() {
    next_free_ns_ = 0;
    requests_ = 0;
    busy_ns_ = 0;
  }

 private:
  uint64_t next_free_ns_ = 0;
  uint64_t requests_ = 0;
  uint64_t busy_ns_ = 0;
};

}  // namespace nvm
