// The modelled memory system: every instrumented access to the persistent
// heap flows through this class, which plays two roles:
//
//  1. **Timing** (discrete-event runs): charges the accessing worker the
//     modelled latency — L3 hit/miss, DRAM vs Optane load, bandwidth-channel
//     queueing, WPQ stalls, Memory-Mode DRAM-cache hits — per the paper's
//     machine (§II, §III.A).
//
//  2. **Persistence semantics** (crash-simulation runs): tracks, at
//     cache-line granularity, what would survive a power failure under the
//     configured durability domain. ADR persists only lines whose clwb was
//     ordered by an sfence (plus an adversarial random subset of other
//     dirty lines, since real caches may write back spontaneously); eADR,
//     PDRAM and PDRAM-Lite persist every executed store. A simulated power
//     failure reverts the heap to exactly the persisted image, after which
//     PTM recovery must produce a consistent heap.
//
// Data accesses use std::atomic_ref at word granularity so the speculative
// loads/stores inherent to STM are free of C++ data races.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nvm/cache_model.h"
#include "nvm/channel.h"
#include "nvm/domain.h"
#include "nvm/dram_cache.h"
#include "nvm/energy.h"
#include "nvm/wpq.h"
#include "sim/context.h"
#include "stats/counters.h"
#include "util/rng.h"

#include <atomic>
#include <functional>

namespace analysis {
class Psan;
enum class DiagKind : uint8_t;
}  // namespace analysis

namespace stats {
class DevStats;
struct DeviceCounters;
}  // namespace stats

namespace nvm {

/// Thrown at an armed crash point (see Memory::arm_crash_after). Unwinds
/// the worker out of whatever transaction it was executing — the live heap
/// at that instant is the machine state at power failure.
struct CrashPoint {};

/// Thrown when an armed thread fault kills the executing worker fiber
/// (see Memory::arm_thread_fault). Unlike CrashPoint the pool stays live:
/// only this worker dies, leaving its orecs locked and its log slot
/// whatever the fault instant left it — exactly the state thread-crash
/// containment must clean up online (docs/FAULTS.md, "Thread-crash
/// containment"). The runtime must NOT roll the dying worker back; a
/// dead thread performs no further stores.
struct FiberKill {
  int worker = -1;
};

class Memory {
 public:
  static constexpr uint64_t kLineBytes = 64;
  /// Fixed capacity of the extra log-line-range table (see
  /// add_log_line_range); registrations beyond it are counted as drops.
  static constexpr size_t kMaxExtraLogRanges = 256;

  Memory(const SystemConfig& cfg, char* base, size_t size);
  ~Memory();

  // ----- word accesses (the PTM's unit of logging) ---------------------

  uint64_t load_word(sim::ExecContext& ctx, stats::TxCounters* c, const uint64_t* addr,
                     Space space) {
    model_addr(ctx, c, addr, 8, /*is_write=*/false, space);
    return std::atomic_ref<const uint64_t>(*addr).load(std::memory_order_acquire);
  }

  void store_word(sim::ExecContext& ctx, stats::TxCounters* c, uint64_t* addr, uint64_t val,
                  Space space) {
    maybe_crash_event();
    maybe_thread_fault(ctx);
    model_addr(ctx, c, addr, 8, /*is_write=*/true, space);
    std::atomic_ref<uint64_t>(*addr).store(val, std::memory_order_release);
    if (cfg_.crash_sim) track_store(addr, 8);
    if (psan_) psan_store(ctx, addr, 8, space);
  }

  /// Bulk store with tracking/modelling (used by population and recovery;
  /// not transactional).
  void store_bytes(sim::ExecContext& ctx, stats::TxCounters* c, void* dst, const void* src,
                   size_t len, Space space);

  /// Charge store timing + crash tracking for a word whose value was
  /// already written through an atomic RMW (e.g. the allocator's CAS-max'd
  /// high-water mark). Needed because store_word's modelling can yield to
  /// another worker *before* its store executes, which would let a stale
  /// value overwrite a newer one.
  void account_store_in_place(sim::ExecContext& ctx, stats::TxCounters* c,
                              const uint64_t* addr, Space space) {
    maybe_crash_event();
    maybe_thread_fault(ctx);
    model_addr(ctx, c, addr, 8, /*is_write=*/true, space);
    if (cfg_.crash_sim) track_store(addr, 8);
    if (psan_) psan_store(ctx, addr, 8, space);
  }

  // ----- cache-footprint-only accesses (no real bytes) -----------------

  /// Model `nlines` consecutive line accesses starting at a synthetic line
  /// id (used by the memcached workload's virtual value payloads, Fig 8).
  void touch_lines(sim::ExecContext& ctx, stats::TxCounters* c, uint64_t first_line,
                   size_t nlines, bool is_write, Space space);

  /// Base line id of the synthetic (non-materialized) address region.
  uint64_t virtual_line_base() const { return virt_base_line_; }

  // ----- persistence instructions ---------------------------------------

  /// clwb: under ADR, push the line toward the WPQ (timing) and capture its
  /// bytes for crash simulation. No-op under eADR/PDRAM/PDRAM-Lite, exactly
  /// as the paper's eADR algorithms elide flushes.
  void clwb(sim::ExecContext& ctx, stats::TxCounters* c, const void* addr);

  /// sfence: under ADR, wait for this worker's WPQ entries to drain and
  /// promote its captured lines to the persistent image. Skipped when
  /// `elide_fences` (Table III's incorrect variant).
  void sfence(sim::ExecContext& ctx, stats::TxCounters* c);

  /// clwb a run of synthetic lines (virtual payloads, no host bytes): under
  /// ADR each line is pushed toward the WPQ; the caller's next sfence waits
  /// for them. No-op in other domains. No crash tracking (nothing to
  /// capture — virtual payload content is not materialized).
  void persist_lines(sim::ExecContext& ctx, stats::TxCounters* c, uint64_t first_line,
                     size_t nlines);

  // ----- crash simulation ------------------------------------------------

  /// Apply the durability domain's power-failure semantics: decide which
  /// lines persist, then revert the live heap to the persisted image.
  void simulate_power_failure(util::Rng& rng);

  // ----- media faults ----------------------------------------------------

  /// Poison one cache line: at the next power failure its persisted
  /// content is lost (scrambled), modelling an Optane media fault / bad
  /// block. Recovery must consult media_faulted() instead of trusting the
  /// bytes — real hardware raises a machine check on such reads.
  void inject_media_fault(uint64_t line);

  /// True when any line covering [addr, addr+len) is poisoned.
  bool media_faulted(const void* addr, size_t len) const;

  void clear_media_faults();
  size_t media_fault_count() const;

  /// Arm a latent media fault: `line` stays healthy until simulated time
  /// `at_ns`, then becomes poisoned when activate_due_media_faults() is
  /// next called with now_ns >= at_ns. Models wear-out that strikes
  /// *after* the initial persist succeeded — the case a background scrub
  /// exists to catch. crash_sim only, like inject_media_fault().
  void arm_media_fault_at(uint64_t line, uint64_t at_ns);

  /// Move every armed fault whose deadline has passed into the active
  /// poison set. Called by the scrubber (and tests) with the current
  /// simulated time; returns how many faults fired.
  size_t activate_due_media_faults(uint64_t now_ns);

  /// Un-poison one line after its content has been rewritten in place,
  /// modelling the device remapping the bad block to a spare on write.
  void repair_media_fault(uint64_t line);

  size_t armed_media_fault_count() const;

  /// Mark the current live heap contents as fully persisted (used after
  /// population so crash tests measure only the workload's transactions).
  void checkpoint_all_persistent();

  /// Crash injection (crash_sim only): after `events` further persistence
  /// events (pmem stores, clwb, sfence), resolve the persisted image as of
  /// that instant and throw CrashPoint. Every subsequent event also throws,
  /// so all in-flight workers unwind without further heap effects becoming
  /// persistent. Disarmed by simulate_power_failure().
  void arm_crash_after(uint64_t events, uint64_t rng_seed);

  /// True once an armed crash has fired.
  bool crashed() const { return frozen_.load(std::memory_order_acquire); }

  /// Persistence events executed so far (crash_sim only; 0 otherwise).
  /// Crash sweeps use this to measure a scenario's event count in a dry
  /// run, then arm_crash_after(k) for every k in [1, count].
  uint64_t persistence_events() const {
    return event_count_.load(std::memory_order_relaxed);
  }

  // ----- thread-fault injection (fiber kill / stall) ---------------------

  /// Arm a thread fault (crash_sim only): after `events` further
  /// persistence events, the worker executing that event either dies —
  /// stall_ns == 0: FiberKill is thrown *before* the event's store takes
  /// effect, so a dead thread never half-issues its last store — or goes
  /// dark for `stall_ns` simulated nanoseconds and then resumes. A
  /// resuming worker first consults the fenced probe (below): if the
  /// containment layer fenced it while it was out, it dies at the wake
  /// instant instead of racing its own reclamation. Up to two faults can
  /// be armed at once; the second models a kill striking the *reclaimer*
  /// mid-reclamation. Event numbering is shared with arm_crash_after, so
  /// kill sweeps walk the same deterministic event space as crash sweeps.
  void arm_thread_fault(uint64_t events, uint64_t stall_ns = 0);

  /// Disarm every thread fault that has not fired yet (kill sweeps call
  /// this before post-run verification so leftover arms cannot fire in
  /// checking code). Also cleared by simulate_power_failure().
  void clear_thread_faults();

  /// Install the containment layer's zombie probe, called with the waking
  /// worker's id after a stall; returning true means the worker was
  /// fenced (quarantined / deposed) while stalled and must die rather
  /// than resume. nullptr uninstalls.
  void set_fenced_probe(std::function<bool(int)> probe);

  /// Thread faults fired so far (kills + stalls entered).
  uint64_t thread_faults_fired() const {
    return tf_fired_.load(std::memory_order_relaxed);
  }

  /// Drain worker `w`'s clwb'd-but-unfenced WPQ entries into the persisted
  /// image, as its own sfence would. Called at thread-death points (the
  /// kill paths here, and the containment layer's heartbeat kill): a fiber
  /// kill leaves the MACHINE powered, so the dead thread's in-flight line
  /// writebacks complete normally within nanoseconds — long before any
  /// lease expires. Without this they would linger as stale byte snapshots
  /// until a later power failure, where the writeback adversary could
  /// replay them torn over lines that survivors or a reclaimer have since
  /// durably re-written. Power failures (CrashPoint) must NOT drain: those
  /// entries are exactly the in-flight state the adversary resolves.
  void drain_worker_pending(int w);

  /// True while worker `w` is parked inside a stall fault's advance. The
  /// containment layer only reclaims leases from workers that are provably
  /// unresponsive — dead, or parked here — never from a slow-but-live
  /// worker, whose one in-flight store could otherwise race the surgery
  /// (the sim analogue of "the OS confirmed the thread is gone").
  bool stalled_in_fault(int w) const {
    if (w < 0 || w >= 64) return false;
    return ((tf_stalled_mask_.load(std::memory_order_acquire) >> w) & 1) != 0;
  }

  // ----- persistency sanitizer -------------------------------------------

  /// The sanitizer instance, or nullptr when off (SystemConfig::psan is
  /// false and REPRO_PSAN is unset). Callers needing more than the
  /// ordering-point helper below (summaries, drain) go through this.
  analysis::Psan* psan() const { return psan_.get(); }

  /// Declare an ordering point: every store the calling worker made to
  /// [addr, addr+len) must be persisted by now; psan emits one `kind`
  /// diagnostic per line that is not. No-op when psan is off.
  void psan_check_persisted(sim::ExecContext& ctx, const void* addr, size_t len,
                            analysis::DiagKind kind, const char* what);

  // ----- emulated DIMM performance counters ------------------------------

  /// The device-counter collector, or nullptr when off (SystemConfig::
  /// devstats false and REPRO_DEVSTATS unset).
  stats::DevStats* devstats() const { return devstats_.get(); }

  /// Assemble the run's "device" section: the collector's media/XPBuffer/
  /// WPQ counters plus channel utilization and the energy model's reserve
  /// estimates. `sim_end_ns` is the run's simulated duration (utilization
  /// denominator). When tracing is on, a final counter sample is emitted
  /// at `sim_end_ns` so even short runs carry "ph":"C" events. Requires
  /// devstats to be enabled.
  stats::DeviceCounters device_snapshot(uint64_t sim_end_ns);

  /// Total bandwidth-channel requests across all four channels — the
  /// self-profiler's "channel" subsystem event count (always counted; two
  /// integer adds per request).
  uint64_t channel_requests() const {
    return dram_read_.requests() + dram_write_.requests() + optane_read_.requests() +
           optane_write_.requests();
  }

  // ----- geometry ---------------------------------------------------------

  /// Tell the model which line range holds the PTM per-thread logs (so
  /// PDRAM-Lite can route them to DRAM).
  void set_log_line_range(uint64_t lo, uint64_t hi) {
    log_line_lo_ = lo;
    log_line_hi_ = hi;
  }

  /// Register an additional log line range (overflow log segments are heap
  /// allocations, discontiguous from the worker-meta region). Best-effort:
  /// the table is fixed-size and further ranges are dropped — the
  /// classification is a media-routing hint (PDRAM-Lite), never a
  /// correctness input — but a drop is counted and warned once, because
  /// under PDRAM-Lite it silently misroutes log traffic to Optane timing.
  void add_log_line_range(uint64_t lo, uint64_t hi) {
    const size_t i = n_extra_log_ranges_.load(std::memory_order_relaxed);
    if (i >= kMaxExtraLogRanges) {
      drop_log_line_range();
      return;
    }
    extra_log_ranges_[i] = {lo, hi};
    n_extra_log_ranges_.store(i + 1, std::memory_order_release);
  }

  /// Log-range registrations dropped because the table was full.
  uint64_t log_range_drops() const {
    return log_range_drops_.load(std::memory_order_relaxed);
  }

  uint64_t line_of(const void* addr) const {
    return (reinterpret_cast<uintptr_t>(addr) - reinterpret_cast<uintptr_t>(base_)) /
           kLineBytes;
  }

  const SystemConfig& config() const { return cfg_; }

  /// Reset volatile timing model state (channels, caches) between runs.
  void reset_models();

  /// Install `nlines` starting at `first_line` into the Memory-Mode DRAM
  /// cache directory as clean residents (PDRAM only). Benchmarks call this
  /// after population: the paper's minute-long steady-state runs operate
  /// with a warm DRAM cache, which short simulated runs would otherwise
  /// never reach.
  void prewarm_directory(uint64_t first_line, uint64_t nlines);

 private:
  struct PendingLine {
    uint64_t line;
    uint64_t seq;  // global clwb issue order; see line_applied_seq_
    unsigned char bytes[kLineBytes];
  };

  /// Apply one pending snapshot to the persisted image, unless a NEWER
  /// snapshot of the same line has already been applied (track_mu_ held).
  /// Writebacks of one line serialize in issue order on real hardware: a
  /// fiber that fences long after its clwb (a stall fault, or a worker
  /// whose line another worker has since rewritten and fenced) must not
  /// roll the persisted line back to its stale issue-time snapshot.
  void apply_pending_locked(const PendingLine& p);

  // Resolve timing + cache modelling for a real address range.
  void model_addr(sim::ExecContext& ctx, stats::TxCounters* c, const void* addr, size_t len,
                  bool is_write, Space space);

  // One modelled line access (DES mode only).
  void model_line(sim::ExecContext& ctx, stats::TxCounters* c, uint64_t line, bool is_write,
                  Space space);

  // Media that backs `line`/`space` under the current domain.
  Media media_of(uint64_t line, Space space) const;

  // Asynchronous dirty-line writeback (L3 eviction): books the write
  // channel; charges a stall only when the backlog exceeds WPQ capacity.
  void background_writeback(sim::ExecContext& ctx, stats::TxCounters* c, uint64_t line);

  void track_store(const void* addr, size_t len);

  // Out-of-line psan store hook (keeps the hot inline paths to one
  // pointer test when the sanitizer is off).
  void psan_store(sim::ExecContext& ctx, const void* addr, size_t len, Space space);

  // Devstats helpers (only reached when devstats_ is non-null).
  static int media_index(Media m) { return m == Media::kDram ? 0 : 1; }
  // Emit one batch of trace counter events at simulated time `now` and
  // schedule the next sample.
  void devstats_sample(uint64_t now_ns);
  // Cheap periodic check from the hooks: sample when tracing is on and the
  // sample instant has been reached.
  void maybe_devstats_sample(uint64_t now_ns);

  void maybe_crash_event() {
    if (cfg_.crash_sim) event_count_.fetch_add(1, std::memory_order_relaxed);
    if (!armed_.load(std::memory_order_acquire)) return;
    crash_event_slow();
  }
  void crash_event_slow();

  // One relaxed flag test when no thread fault is armed (the always-off
  // cost of the fiber-kill model, mirroring maybe_crash_event's shape).
  void maybe_thread_fault(sim::ExecContext& ctx) {
    if (!tf_armed_.load(std::memory_order_relaxed)) return;
    thread_fault_slow(ctx);
  }
  void thread_fault_slow(sim::ExecContext& ctx);

  // Apply the durability domain's power-failure rule to the image (caller
  // holds track_mu_).
  void resolve_crash_image(util::Rng& rng);

  // ADR only: decide (per the writeback adversary) whether an *unfenced*
  // line's content reaches the image, and copy it — whole when line-
  // atomic, or a random 8-byte-word subset under torn_stores. `prob` is
  // the kRandom mode's coin. Caller holds track_mu_.
  void persist_unfenced(util::Rng& rng, uint64_t line, const unsigned char* src,
                        double prob);

  // Scramble poisoned lines in the image (caller holds track_mu_).
  void apply_media_faults();

  void drop_log_line_range();

  BandwidthChannel& read_chan(Media m) {
    return m == Media::kDram ? dram_read_ : optane_read_;
  }
  BandwidthChannel& write_chan(Media m) {
    return m == Media::kDram ? dram_write_ : optane_write_;
  }

  bool is_log_line(uint64_t line) const {
    if (line >= log_line_lo_ && line < log_line_hi_) return true;
    const size_t n = n_extra_log_ranges_.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; i++) {
      if (line >= extra_log_ranges_[i].first && line < extra_log_ranges_[i].second)
        return true;
    }
    return false;
  }

  const SystemConfig cfg_;
  EnergyModel energy_;
  char* base_;
  size_t size_;
  uint64_t num_lines_;
  uint64_t virt_base_line_;

  // Timing models (DES only; single worker runs at a time, so unguarded).
  CacheModel l3_;
  DramCacheDirectory dram_dir_;
  Wpq wpq_;
  BandwidthChannel dram_read_, dram_write_, optane_read_, optane_write_;

  uint64_t log_line_lo_ = 0, log_line_hi_ = 0;
  std::array<std::pair<uint64_t, uint64_t>, kMaxExtraLogRanges> extra_log_ranges_{};
  std::atomic<size_t> n_extra_log_ranges_{0};
  std::atomic<uint64_t> event_count_{0};

  std::atomic<uint64_t> log_range_drops_{0};
  std::atomic<bool> log_range_drop_warned_{false};

  // Crash-simulation state (guarded: real-thread tests may race on it).
  mutable std::mutex track_mu_;
  std::vector<uint64_t> poisoned_lines_;         // injected media faults
  std::vector<std::pair<uint64_t, uint64_t>> armed_faults_;  // (line, at_ns)
  std::unique_ptr<unsigned char[]> image_;       // persisted bytes
  std::vector<uint64_t> dirty_bitmap_;           // 1 bit per line
  std::vector<uint64_t> dirty_list_;             // unique dirty line ids
  std::vector<std::vector<PendingLine>> pending_;  // per worker: clwb'd, unfenced
  uint64_t clwb_seq_ = 0;  // global snapshot issue counter (track_mu_)
  // Per line: issue seq of the newest snapshot applied to image_. Applies
  // of older snapshots are skipped (see apply_pending_locked).
  std::unordered_map<uint64_t, uint64_t> line_applied_seq_;

  std::unique_ptr<analysis::Psan> psan_;
  std::unique_ptr<stats::DevStats> devstats_;

  std::atomic<bool> armed_{false};
  std::atomic<bool> frozen_{false};
  std::atomic<int64_t> crash_events_left_{0};
  util::Rng crash_rng_;

  // Thread-fault (fiber kill/stall) state. Mutated only between runs
  // (arming) or from the single-OS-thread DES hooks, so plain fields
  // beyond the armed flag are safe.
  struct ThreadFault {
    uint64_t events_left = 0;
    uint64_t stall_ns = 0;
    bool done = true;
  };
  std::atomic<bool> tf_armed_{false};
  ThreadFault tf_[2];
  std::atomic<uint64_t> tf_fired_{0};
  std::atomic<uint64_t> tf_stalled_mask_{0};  // workers parked in a stall fault
  std::function<bool(int)> fenced_probe_;

  bool test_and_set_dirty(uint64_t line) {
    auto& w = dirty_bitmap_[line >> 6];
    const uint64_t bit = 1ull << (line & 63);
    const bool was = (w & bit) != 0;
    w |= bit;
    return was;
  }
  void clear_dirty_all();
};

}  // namespace nvm
