// Set-associative last-level-cache (L3) tag model.
//
// The model tracks tags only (no data): the live bytes are in host memory;
// the model decides whether an instrumented access is an L3 hit or miss and
// which dirty line an install evicts. That is all the timing model needs,
// and it is what makes the memcached working-set experiment (paper Fig 8)
// reproducible: the 32MB-vs-32GB cliff is purely a function of tag capacity.
//
// Replacement is true-LRU within a set (deterministic, which the
// discrete-event engine requires for replayability).
#pragma once

#include <cstdint>
#include <vector>

namespace nvm {

class CacheModel {
 public:
  static constexpr uint64_t kNoLine = ~0ull;

  struct AccessResult {
    bool hit;
    uint64_t evicted_dirty_line;  // kNoLine if none
  };

  /// `bytes` total capacity, `ways` associativity; line size is 64 B.
  CacheModel(uint64_t bytes, int ways);

  /// Look up + install `line` (an address >> 6). `is_write` marks dirty.
  AccessResult access(uint64_t line, bool is_write);

  /// Remove `line` (clwb/clflush semantics: line is written back and, for
  /// modelling purposes, dropped from the dirty state). Returns true if the
  /// line was present and dirty.
  bool clean(uint64_t line);

  void reset();

  uint64_t num_sets() const { return num_sets_; }

 private:
  struct Way {
    uint64_t tag = kNoLine;
    uint64_t lru = 0;
    bool dirty = false;
  };

  int ways_;
  uint64_t num_sets_;
  uint64_t tick_ = 0;
  std::vector<Way> ways_store_;  // num_sets_ * ways_, row-major by set

  Way* set_of(uint64_t line) {
    return &ways_store_[(line % num_sets_) * static_cast<uint64_t>(ways_)];
  }
};

}  // namespace nvm
