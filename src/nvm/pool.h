// Persistent memory pool.
//
// Stands in for a DAX-mapped file on Optane (paper §III.A): a fixed-layout
// region holding a header, an application root area, the PTM runtime's
// per-thread metadata (transaction status words + redo/undo/alloc logs),
// and the persistent heap managed by alloc::PersistentAllocator.
//
// Layout (offsets from base):
//   [0,        4K)   PoolHeader
//   [4K,       8K)   root area (applications place their root struct here)
//   [8K,  8K+M*W)    runtime metadata: W = max_workers slots of M bytes
//   [heap_off, size) persistent heap
//
// Persistent pointers are raw host pointers: the pool mapping is stable for
// the lifetime of the process, and crash simulation reverts *contents* (via
// Memory's persisted image) rather than remapping. Log records that must
// survive recovery store pool offsets, not pointers.
#pragma once

#include <cstdint>
#include <memory>

#include "nvm/memory.h"

namespace nvm {

struct PoolHeader {
  uint64_t magic;
  uint64_t size;
  uint64_t meta_off;
  uint64_t meta_per_worker;
  uint64_t heap_off;
  uint64_t initialized;  // set after first-time format completes
};

class Pool {
 public:
  static constexpr uint64_t kMagic = 0x50544d504f4f4c31ull;  // "PTMPOOL1"
  static constexpr size_t kHeaderBytes = 4096;
  static constexpr size_t kRootBytes = 4096;

  explicit Pool(const SystemConfig& cfg);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  char* base() { return base_; }
  size_t size() const { return cfg_.pool_size; }

  /// Application root area, cast to the application's root type. The root
  /// type must fit in kRootBytes and be trivially copyable.
  template <typename T>
  T* root() {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) <= kRootBytes, "root type too large for root area");
    return reinterpret_cast<T*>(base_ + kHeaderBytes);
  }

  /// Per-worker runtime metadata slot (the PTM runtime carves this up).
  char* worker_meta(int worker) {
    return base_ + header()->meta_off + static_cast<uint64_t>(worker) * header()->meta_per_worker;
  }
  size_t worker_meta_bytes() const { return cfg_.per_worker_meta_bytes; }

  char* heap_base() { return base_ + header()->heap_off; }
  size_t heap_bytes() const { return cfg_.pool_size - header()->heap_off; }

  PoolHeader* header() { return reinterpret_cast<PoolHeader*>(base_); }
  const PoolHeader* header() const { return reinterpret_cast<const PoolHeader*>(base_); }

  uint64_t offset_of(const void* p) const {
    return static_cast<uint64_t>(static_cast<const char*>(p) - base_);
  }
  void* at(uint64_t off) { return base_ + off; }
  bool contains(const void* p) const {
    return p >= base_ && p < base_ + cfg_.pool_size;
  }

  Memory& mem() { return *mem_; }
  const SystemConfig& config() const { return cfg_; }

  /// Simulate a power failure (crash_sim configs only): the heap reverts to
  /// its persisted image. Callers must then run PTM recovery before using
  /// the pool again.
  void simulate_power_failure(util::Rng& rng) { mem_->simulate_power_failure(rng); }

 private:
  SystemConfig cfg_;
  char* base_ = nullptr;
  std::unique_ptr<Memory> mem_;
};

}  // namespace nvm
