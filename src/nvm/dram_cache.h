// Memory-Mode DRAM cache directory.
//
// In Intel Memory Mode the on-CPU memory controller keeps a directory (DIR
// in paper Fig 1a) that lets DRAM act as a direct-mapped, line-granularity
// cache of Optane physical memory. The paper's PDRAM proposal (Fig 5a)
// reuses exactly this mechanism and adds reserve power, so DRAM becomes a
// *persistent* cache. We model the directory as direct-mapped over 64-byte
// lines (matching the real Memory-Mode implementation):
//   * hit  -> the access is served at DRAM cost;
//   * miss -> the line is fetched from Optane; if the victim slot is dirty
//     the victim line is written back to Optane (asynchronously — it books
//     the Optane write channel but the accessor does not wait for it).
//
// The capacity parameter is what produces the paper's Fig 8 cliff when the
// working set stops fitting in DRAM.
#pragma once

#include <cstdint>
#include <vector>

namespace nvm {

class DramCacheDirectory {
 public:
  static constexpr uint64_t kNoLine = ~0ull;

  struct AccessResult {
    bool hit;
    uint64_t evicted_dirty_line;  // kNoLine if clean / empty victim
  };

  explicit DramCacheDirectory(uint64_t capacity_bytes);

  AccessResult access(uint64_t line, bool is_write);

  void reset();

  uint64_t num_slots() const { return num_slots_; }

 private:
  struct Slot {
    uint64_t tag = kNoLine;
    bool dirty = false;
  };

  uint64_t num_slots_;
  std::vector<Slot> slots_;
};

}  // namespace nvm
