// Timing parameters of the modelled machine.
//
// Defaults are calibrated from the numbers the paper reports or cites
// (Izraelevitz et al., "Basic Performance Measurements of the Intel Optane
// DC Persistent Memory Module"):
//  * clwb latency 86 ns to DRAM, 94 ns to Optane (paper §III.A);
//  * L3-miss load latency ~3x higher on Optane than DRAM (paper §III.B);
//  * Optane write bandwidth saturates with ~4 writer threads while read
//    bandwidth needs ~17 threads (paper §III.B / [46]) — expressed here as
//    per-line service times on shared bandwidth channels;
//  * WPQ (write pending queue) capacity is small and bounded, which is the
//    paper's explanation for eADR scalability loss.
#pragma once

#include <cstdint>

namespace nvm {

/// Physical backing media of the persistent heap. The paper's "DRAM"
/// curves place the (nominally persistent) heap in a DRAM ramdisk.
enum class Media : uint8_t { kDram = 0, kOptane = 1 };

/// Durability domain (paper Figures 2 and 5).
enum class Domain : uint8_t {
  kAdr = 0,       // flush with clwb, order with sfence; WPQ is persistent
  kEadr = 1,      // caches flushed on power failure; no explicit flushes
  kPdram = 2,     // all of DRAM is a persistent cache of Optane (Fig 5a)
  kPdramLite = 3  // only redo-log pages are persistent DRAM (Fig 5b)
};

const char* media_name(Media m);
const char* domain_name(Domain d);

struct CostModel {
  // --- per-access latencies (ns) ---
  double l1_hit_ns = 1.5;        // base cost of any instrumented access
  double l3_hit_ns = 18.0;       // L3 hit on an L1/L2 miss (we fold L1/L2)
  double dram_load_ns = 81.0;    // L3 miss served by DRAM
  double optane_load_ns = 243.0; // L3 miss served by Optane (3x DRAM)
  double store_ns = 2.0;         // store into the cache hierarchy
  double cas_ns = 9.0;           // atomic RMW (orec acquire/release)

  // --- persistence instructions ---
  double clwb_issue_ns = 12.0;    // CPU-side cost of issuing clwb
  double clwb_dram_lat_ns = 86.0; // line reaches the ADR domain (DRAM)
  double clwb_optane_lat_ns = 94.0; // line reaches the ADR domain (Optane)
  double sfence_ns = 15.0;        // fence base cost (plus drain wait)

  // --- bandwidth channels: service ns per 64-byte line ---
  // Sustained bandwidth = 64 B / svc. Chosen so saturation thread counts
  // match [46]: Optane writes saturate ~4 threads, reads ~17 threads.
  double dram_read_svc_ns = 2.2;     // ~29 GB/s
  double dram_write_svc_ns = 4.5;    // ~14 GB/s
  double optane_read_svc_ns = 14.0;  // ~4.6 GB/s
  double optane_write_svc_ns = 27.0; // ~2.4 GB/s

  // --- structure sizes ---
  int wpq_capacity = 64;  // lines pending in the memory controller

  // --- PTM runtime costs ---
  double tx_begin_ns = 20.0;
  double tx_commit_ns = 30.0;
  double backoff_base_ns = 150.0;  // exponential backoff seed after abort

  double load_latency_ns(Media m) const {
    return m == Media::kDram ? dram_load_ns : optane_load_ns;
  }
  double clwb_latency_ns(Media m) const {
    return m == Media::kDram ? clwb_dram_lat_ns : clwb_optane_lat_ns;
  }
  double read_svc_ns(Media m) const {
    return m == Media::kDram ? dram_read_svc_ns : optane_read_svc_ns;
  }
  double write_svc_ns(Media m) const {
    return m == Media::kDram ? dram_write_svc_ns : optane_write_svc_ns;
  }
};

}  // namespace nvm
