#include "nvm/memory.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/psan.h"
#include "stats/devstats.h"
#include "stats/trace.h"

namespace nvm {

Memory::Memory(const SystemConfig& cfg, char* base, size_t size)
    : cfg_(cfg),
      base_(base),
      size_(size),
      num_lines_(size / kLineBytes),
      // Leave a guard gap so pool lines and synthetic lines never collide.
      virt_base_line_(num_lines_ + (1ull << 20)),
      l3_(cfg.l3_bytes, cfg.l3_ways),
      dram_dir_(cfg.dram_cache_bytes),
      wpq_(cfg.cost.wpq_capacity, cfg.max_workers) {
  if (cfg_.crash_sim) {
    image_.reset(new unsigned char[size_]);
    std::memcpy(image_.get(), base_, size_);
    dirty_bitmap_.assign((num_lines_ + 63) / 64, 0);
    pending_.assign(static_cast<size_t>(cfg_.max_workers), {});
  }
  if (cfg_.psan || analysis::Psan::env_enabled()) {
    psan_ = std::make_unique<analysis::Psan>(cfg_, num_lines_, cfg_.max_workers);
  }
  if (cfg_.devstats || stats::DevStats::env_enabled()) {
    devstats_ = std::make_unique<stats::DevStats>(cfg_.max_workers);
  }
}

Memory::~Memory() {
  if (!psan_) return;
  const stats::PsanSummary s = psan_->summary();
  // Undrained correctness findings are loud even without the JSONL sink:
  // a unit test that trips an ordering bug fails check_psan.py's run even
  // if its own assertions never look at psan.
  if (s.correctness() > 0) {
    std::fprintf(stderr,
                 "psan: %llu ordering violation(s) at pool teardown "
                 "(missing_flush=%llu misordered_persist=%llu)\n",
                 static_cast<unsigned long long>(s.correctness()),
                 static_cast<unsigned long long>(s.missing_flush),
                 static_cast<unsigned long long>(s.misordered_persist));
    for (const analysis::Diag& d : psan_->drain()) {
      if (d.kind != analysis::DiagKind::kMissingFlush &&
          d.kind != analysis::DiagKind::kMisorderedPersist) {
        continue;
      }
      std::fprintf(stderr,
                   "psan:   %s worker=%d tx=%llu line=%llu store_event=%llu "
                   "at_event=%llu: %s [%s]\n",
                   analysis::diag_kind_name(d.kind), d.worker,
                   static_cast<unsigned long long>(d.tx_id),
                   static_cast<unsigned long long>(d.line),
                   static_cast<unsigned long long>(d.store_event),
                   static_cast<unsigned long long>(d.at_event), d.what, d.state);
    }
  }
  if (const char* path = std::getenv("REPRO_PSAN_OUT")) {
    if (std::FILE* f = std::fopen(path, "a")) {
      std::fprintf(f,
                   "{\"enabled\":true,\"events\":%llu,\"checks\":%llu,"
                   "\"missing_flush\":%llu,\"misordered_persist\":%llu,"
                   "\"redundant_flush\":%llu,\"redundant_fence\":%llu,"
                   "\"unflushed_at_crash\":%llu,\"torn_at_crash\":%llu,"
                   "\"diags_dropped\":%llu}\n",
                   static_cast<unsigned long long>(s.events),
                   static_cast<unsigned long long>(s.checks),
                   static_cast<unsigned long long>(s.missing_flush),
                   static_cast<unsigned long long>(s.misordered_persist),
                   static_cast<unsigned long long>(s.redundant_flush),
                   static_cast<unsigned long long>(s.redundant_fence),
                   static_cast<unsigned long long>(s.unflushed_at_crash),
                   static_cast<unsigned long long>(s.torn_at_crash),
                   static_cast<unsigned long long>(s.diags_dropped));
      std::fclose(f);
    }
  }
}

void Memory::psan_store(sim::ExecContext& ctx, const void* addr, size_t len,
                        Space space) {
  const uint64_t first = line_of(addr);
  const uint64_t last = line_of(static_cast<const char*>(addr) + (len ? len - 1 : 0));
  psan_->on_store(ctx.worker_id(), first, last, space == Space::kLog);
}

void Memory::psan_check_persisted(sim::ExecContext& ctx, const void* addr, size_t len,
                                  analysis::DiagKind kind, const char* what) {
  if (!psan_) return;
  const uint64_t first = line_of(addr);
  const uint64_t last = line_of(static_cast<const char*>(addr) + (len ? len - 1 : 0));
  psan_->check_persisted(ctx.worker_id(), first, last, kind, what);
}

Media Memory::media_of(uint64_t line, Space space) const {
  // PDRAM-Lite: redo-log pages live in battery-backed DRAM (paper §IV.B).
  if (cfg_.domain == Domain::kPdramLite &&
      (space == Space::kLog || is_log_line(line))) {
    return Media::kDram;
  }
  return cfg_.media;
}

void Memory::model_addr(sim::ExecContext& ctx, stats::TxCounters* c, const void* addr,
                        size_t len, bool is_write, Space space) {
  if (c) {
    if (is_write) c->pmem_stores++; else c->pmem_loads++;
  }
  if (!cfg_.model_timing || !ctx.is_simulated()) return;
  const uint64_t first = line_of(addr);
  const uint64_t last = line_of(static_cast<const char*>(addr) + (len ? len - 1 : 0));
  for (uint64_t line = first; line <= last; line++) {
    model_line(ctx, c, line, is_write, space);
  }
}

void Memory::touch_lines(sim::ExecContext& ctx, stats::TxCounters* c, uint64_t first_line,
                         size_t nlines, bool is_write, Space space) {
  if (c) {
    if (is_write) c->pmem_stores += nlines; else c->pmem_loads += nlines;
  }
  if (!cfg_.model_timing || !ctx.is_simulated()) return;
  for (size_t i = 0; i < nlines; i++) {
    model_line(ctx, c, first_line + i, is_write, space);
  }
}

void Memory::model_line(sim::ExecContext& ctx, stats::TxCounters* c, uint64_t line,
                        bool is_write, Space space) {
  const CostModel& cm = cfg_.cost;
  double cost = cm.l1_hit_ns;

  const Media med = media_of(line, space);
  const bool via_dir = cfg_.domain == Domain::kPdram && cfg_.media == Media::kOptane &&
                       med == Media::kOptane;

  const CacheModel::AccessResult l3r = l3_.access(line, is_write);
  if (l3r.evicted_dirty_line != CacheModel::kNoLine) {
    background_writeback(ctx, c, l3r.evicted_dirty_line);
  }

  if (l3r.hit) {
    if (c) {
      c->l3_hits++;
      c->energy_pj += energy_.cache_hit_pj;
    }
    cost += is_write ? cm.store_ns : cm.l3_hit_ns;
    ctx.advance(static_cast<uint64_t>(cost));
    return;
  }
  if (c) c->l3_misses++;

  // L3 miss: the line is fetched from below (write-allocate on stores).
  const uint64_t now = ctx.now_ns();
  if (via_dir) {
    const DramCacheDirectory::AccessResult dr = dram_dir_.access(line, is_write);
    if (dr.hit) {
      if (c) {
        c->dram_cache_hits++;
        c->energy_pj += energy_.dram_read_pj;
      }
      const auto g = read_chan(Media::kDram).request(now, cm.read_svc_ns(Media::kDram));
      cost += cm.dram_load_ns + static_cast<double>(g.wait_ns);
      if (devstats_) devstats_->on_media_read(stats::kMediaDram, line, now);
    } else {
      if (c) {
        c->dram_cache_misses++;
        c->energy_pj += energy_.optane_read_pj;
      }
      const auto g = read_chan(Media::kOptane).request(now, cm.read_svc_ns(Media::kOptane));
      cost += cm.optane_load_ns + static_cast<double>(g.wait_ns);
      if (devstats_) devstats_->on_media_read(stats::kMediaOptane, line, now);
      if (dr.evicted_dirty_line != DramCacheDirectory::kNoLine) {
        // Victim writeback to Optane happens off the critical path; the
        // accessor only stalls if the write channel is saturated.
        auto& wc = write_chan(Media::kOptane);
        wc.request(now, cm.write_svc_ns(Media::kOptane));
        if (devstats_) devstats_->on_media_write(stats::kMediaOptane, dr.evicted_dirty_line, now);
        const uint64_t threshold = static_cast<uint64_t>(
            cm.write_svc_ns(Media::kOptane) * cfg_.cost.wpq_capacity);
        const uint64_t backlog = wc.backlog_ns(now);
        if (backlog > threshold) {
          const uint64_t stall = backlog - threshold;
          if (c) c->wpq_stall_ns += stall;
          stats::record_phase(c, stats::Phase::kWpqStall, stall);
          if (devstats_) devstats_->on_wpq_stall(ctx.worker_id(), stall);
          cost += static_cast<double>(stall);
        }
      }
    }
  } else {
    const auto g = read_chan(med).request(now, cm.read_svc_ns(med));
    cost += cm.load_latency_ns(med) + static_cast<double>(g.wait_ns);
    if (c) c->energy_pj += energy_.read_pj(med);
    if (devstats_) devstats_->on_media_read(media_index(med), line, now);
  }
  if (is_write) cost += cm.store_ns;
  ctx.advance(static_cast<uint64_t>(cost));
  if (devstats_) maybe_devstats_sample(ctx.now_ns());
}

void Memory::background_writeback(sim::ExecContext& ctx, stats::TxCounters* c, uint64_t line) {
  const CostModel& cm = cfg_.cost;
  const uint64_t now = ctx.now_ns();

  Media med;
  if (cfg_.domain == Domain::kPdram && cfg_.media == Media::kOptane) {
    // Under PDRAM the L3 writes back into the DRAM cache; Optane traffic
    // happens later, on directory eviction.
    const auto dr = dram_dir_.access(line, /*is_write=*/true);
    med = Media::kDram;
    if (!dr.hit && dr.evicted_dirty_line != DramCacheDirectory::kNoLine) {
      write_chan(Media::kOptane).request(now, cm.write_svc_ns(Media::kOptane));
      if (devstats_) devstats_->on_media_write(stats::kMediaOptane, dr.evicted_dirty_line, now);
    }
  } else {
    med = media_of(line, Space::kData);
  }

  auto& wc = write_chan(med);
  wc.request(now, cm.write_svc_ns(med));
  if (c) c->energy_pj += energy_.write_pj(med);
  if (devstats_) devstats_->on_media_write(media_index(med), line, now);
  const uint64_t threshold =
      static_cast<uint64_t>(cm.write_svc_ns(med) * cfg_.cost.wpq_capacity);
  const uint64_t backlog = wc.backlog_ns(now);
  if (backlog > threshold) {
    const uint64_t stall = backlog - threshold;
    if (c) c->wpq_stall_ns += stall;
    stats::record_phase(c, stats::Phase::kWpqStall, stall);
    if (devstats_) devstats_->on_wpq_stall(ctx.worker_id(), stall);
    ctx.advance(stall);
  }
}

void Memory::store_bytes(sim::ExecContext& ctx, stats::TxCounters* c, void* dst,
                         const void* src, size_t len, Space space) {
  maybe_crash_event();
  maybe_thread_fault(ctx);
  model_addr(ctx, c, dst, len, /*is_write=*/true, space);
  std::memcpy(dst, src, len);
  if (cfg_.crash_sim) track_store(dst, len);
  if (psan_) psan_store(ctx, dst, len, space);
}

void Memory::clwb(sim::ExecContext& ctx, stats::TxCounters* c, const void* addr) {
  if (cfg_.domain != Domain::kAdr) return;  // eADR & friends elide flushes
  maybe_crash_event();
  maybe_thread_fault(ctx);
  if (psan_) psan_->on_clwb(ctx.worker_id(), line_of(addr));
  if (c) {
    c->clwbs++;
    const Media m = media_of(line_of(addr), Space::kData);
    c->energy_pj += energy_.clwb_issue_pj + energy_.write_pj(m);
  }
  const uint64_t line = line_of(addr);
  const Media med = media_of(line, Space::kData);
  const CostModel& cm = cfg_.cost;

  if (cfg_.model_timing && ctx.is_simulated()) {
    ctx.advance(static_cast<uint64_t>(cm.clwb_issue_ns));
    l3_.clean(line);
    // Stall while the WPQ is full.
    const uint64_t avail = wpq_.stall_until_ns(ctx.now_ns());
    if (avail > ctx.now_ns()) {
      const uint64_t stall = avail - ctx.now_ns();
      if (c) c->wpq_stall_ns += stall;
      stats::record_phase(c, stats::Phase::kWpqStall, stall);
      if (devstats_) devstats_->on_wpq_stall(ctx.worker_id(), stall);
      if (stats::Trace::on()) {
        stats::Trace::instance().span(ctx.worker_id(), "wpq_stall", ctx.now_ns(), stall);
      }
      ctx.advance_to(avail);
    }
    const uint64_t done = wpq_.enqueue(ctx.worker_id(), ctx.now_ns(), write_chan(med),
                                       cm.write_svc_ns(med), cm.clwb_latency_ns(med));
    if (devstats_) {
      devstats_->on_media_write(media_index(med), line, ctx.now_ns());
      devstats_->on_wpq_enqueue(ctx.worker_id(), wpq_.occupancy(ctx.now_ns()),
                                done - ctx.now_ns());
      maybe_devstats_sample(ctx.now_ns());
    }
  }

  if (cfg_.crash_sim) {
    std::lock_guard<std::mutex> lk(track_mu_);
    PendingLine p;
    p.line = line;
    p.seq = ++clwb_seq_;
    std::memcpy(p.bytes, base_ + line * kLineBytes, kLineBytes);
    pending_[static_cast<size_t>(ctx.worker_id())].push_back(p);
  }
}

void Memory::persist_lines(sim::ExecContext& ctx, stats::TxCounters* c, uint64_t first_line,
                           size_t nlines) {
  if (cfg_.domain != Domain::kAdr) return;
  const CostModel& cm = cfg_.cost;
  if (c) c->clwbs += nlines;
  if (!cfg_.model_timing || !ctx.is_simulated()) return;
  for (size_t i = 0; i < nlines; i++) {
    const uint64_t line = first_line + i;
    const Media med = media_of(line, Space::kData);
    ctx.advance(static_cast<uint64_t>(cm.clwb_issue_ns));
    l3_.clean(line);
    const uint64_t avail = wpq_.stall_until_ns(ctx.now_ns());
    if (avail > ctx.now_ns()) {
      const uint64_t stall = avail - ctx.now_ns();
      if (c) c->wpq_stall_ns += stall;
      stats::record_phase(c, stats::Phase::kWpqStall, stall);
      if (devstats_) devstats_->on_wpq_stall(ctx.worker_id(), stall);
      ctx.advance_to(avail);
    }
    const uint64_t done = wpq_.enqueue(ctx.worker_id(), ctx.now_ns(), write_chan(med),
                                       cm.write_svc_ns(med), cm.clwb_latency_ns(med));
    if (devstats_) {
      devstats_->on_media_write(media_index(med), line, ctx.now_ns());
      devstats_->on_wpq_enqueue(ctx.worker_id(), wpq_.occupancy(ctx.now_ns()),
                                done - ctx.now_ns());
    }
  }
  if (devstats_) maybe_devstats_sample(ctx.now_ns());
}

void Memory::sfence(sim::ExecContext& ctx, stats::TxCounters* c) {
  if (cfg_.domain != Domain::kAdr) return;
  maybe_crash_event();
  maybe_thread_fault(ctx);
  if (psan_) psan_->on_sfence(ctx.worker_id());
  if (c) {
    c->sfences++;
    c->energy_pj += energy_.sfence_pj;
  }
  if (cfg_.elide_fences) return;  // Table III: incorrect no-fence variant

  if (cfg_.model_timing && ctx.is_simulated()) {
    const uint64_t drain = wpq_.worker_drain_ns(ctx.worker_id());
    if (drain > ctx.now_ns()) {
      const uint64_t wait = drain - ctx.now_ns();
      if (c) c->fence_wait_ns += wait;
      stats::record_phase(c, stats::Phase::kFenceWait, wait);
      if (devstats_) devstats_->on_fence_stall(ctx.worker_id(), wait);
      if (stats::Trace::on()) {
        stats::Trace::instance().span(ctx.worker_id(), "fence_wait", ctx.now_ns(), wait);
      }
      ctx.advance_to(drain);
    }
    ctx.advance(static_cast<uint64_t>(cfg_.cost.sfence_ns));
  }

  if (cfg_.crash_sim) {
    std::lock_guard<std::mutex> lk(track_mu_);
    auto& pend = pending_[static_cast<size_t>(ctx.worker_id())];
    for (const PendingLine& p : pend) apply_pending_locked(p);
    pend.clear();
  }
}

void Memory::apply_pending_locked(const PendingLine& p) {
  const auto it = line_applied_seq_.find(p.line);
  if (it != line_applied_seq_.end() && it->second > p.seq) return;
  std::memcpy(image_.get() + p.line * kLineBytes, p.bytes, kLineBytes);
  line_applied_seq_[p.line] = p.seq;
}

void Memory::track_store(const void* addr, size_t len) {
  std::lock_guard<std::mutex> lk(track_mu_);
  const uint64_t first = line_of(addr);
  const uint64_t last = line_of(static_cast<const char*>(addr) + (len ? len - 1 : 0));
  for (uint64_t line = first; line <= last; line++) {
    if (!test_and_set_dirty(line)) dirty_list_.push_back(line);
  }
}

void Memory::persist_unfenced(util::Rng& rng, uint64_t line, const unsigned char* src,
                              double prob) {
  bool persists;
  switch (cfg_.writeback_adversary) {
    case WritebackAdversary::kNone:
      persists = false;
      break;
    case WritebackAdversary::kAll:
      persists = true;
      break;
    case WritebackAdversary::kLogFirst:
      persists = is_log_line(line);
      break;
    case WritebackAdversary::kDataFirst:
      persists = !is_log_line(line);
      break;
    case WritebackAdversary::kRandom:
    default:
      persists = rng.next_double() < prob;
      break;
  }
  if (!persists) return;
  unsigned char* dst = image_.get() + line * kLineBytes;
  if (!cfg_.torn_stores) {
    std::memcpy(dst, src, kLineBytes);
    return;
  }
  // Real ADR only guarantees 8-byte store atomicity: an unfenced line
  // lands as an arbitrary aligned-word subset, never a partial word.
  for (size_t w = 0; w < kLineBytes / 8; w++) {
    if (rng.next_double() < 0.5) std::memcpy(dst + w * 8, src + w * 8, 8);
  }
}

void Memory::resolve_crash_image(util::Rng& rng) {
  if (cfg_.domain == Domain::kAdr) {
    // clwb'd-but-unfenced lines *may* have drained before the failure.
    // Resolve in global issue order, and never over a newer snapshot the
    // owner already fenced: same-line writebacks serialize in issue order,
    // so a stale snapshot a dead/stalled worker left pending cannot undo a
    // line someone else durably re-wrote after it.
    std::vector<const PendingLine*> inflight;
    for (const auto& pend : pending_) {
      for (const PendingLine& p : pend) inflight.push_back(&p);
    }
    std::sort(inflight.begin(), inflight.end(),
              [](const PendingLine* a, const PendingLine* b) { return a->seq < b->seq; });
    for (const PendingLine* p : inflight) {
      const auto it = line_applied_seq_.find(p->line);
      if (it != line_applied_seq_.end() && it->second > p->seq) continue;
      persist_unfenced(rng, p->line, p->bytes, cfg_.crash_pending_prob);
    }
    for (auto& pend : pending_) pend.clear();
    // Other dirty lines may have been spontaneously evicted (with whatever
    // content they hold now — an approximation; see DESIGN.md).
    for (uint64_t line : dirty_list_) {
      persist_unfenced(rng, line,
                       reinterpret_cast<const unsigned char*>(base_) + line * kLineBytes,
                       cfg_.crash_evict_prob);
    }
  } else {
    // eADR / PDRAM / PDRAM-Lite: the reserve power flushes caches (and, for
    // the PDRAM variants, DRAM) — every executed store persists.
    for (uint64_t line : dirty_list_) {
      std::memcpy(image_.get() + line * kLineBytes, base_ + line * kLineBytes, kLineBytes);
    }
    for (auto& pend : pending_) pend.clear();
  }
  line_applied_seq_.clear();
  apply_media_faults();
}

void Memory::apply_media_faults() {
  // A poisoned line's stored content is gone no matter what the domain
  // persisted; the scramble pattern makes accidental reliance on it loud.
  for (uint64_t line : poisoned_lines_) {
    if (line < num_lines_) std::memset(image_.get() + line * kLineBytes, 0xBD, kLineBytes);
  }
}

void Memory::inject_media_fault(uint64_t line) {
  assert(cfg_.crash_sim && "media-fault injection requires crash_sim=true");
  std::lock_guard<std::mutex> lk(track_mu_);
  poisoned_lines_.push_back(line);
}

bool Memory::media_faulted(const void* addr, size_t len) const {
  std::lock_guard<std::mutex> lk(track_mu_);
  if (poisoned_lines_.empty()) return false;
  const uint64_t first = line_of(addr);
  const uint64_t last = line_of(static_cast<const char*>(addr) + (len ? len - 1 : 0));
  for (uint64_t line : poisoned_lines_) {
    if (line >= first && line <= last) return true;
  }
  return false;
}

void Memory::clear_media_faults() {
  std::lock_guard<std::mutex> lk(track_mu_);
  poisoned_lines_.clear();
  armed_faults_.clear();
}

size_t Memory::media_fault_count() const {
  std::lock_guard<std::mutex> lk(track_mu_);
  return poisoned_lines_.size();
}

void Memory::arm_media_fault_at(uint64_t line, uint64_t at_ns) {
  assert(cfg_.crash_sim && "media-fault arming requires crash_sim=true");
  std::lock_guard<std::mutex> lk(track_mu_);
  armed_faults_.emplace_back(line, at_ns);
}

size_t Memory::activate_due_media_faults(uint64_t now_ns) {
  std::lock_guard<std::mutex> lk(track_mu_);
  size_t fired = 0;
  for (size_t i = 0; i < armed_faults_.size();) {
    if (armed_faults_[i].second <= now_ns) {
      poisoned_lines_.push_back(armed_faults_[i].first);
      armed_faults_[i] = armed_faults_.back();
      armed_faults_.pop_back();
      fired++;
    } else {
      i++;
    }
  }
  return fired;
}

void Memory::repair_media_fault(uint64_t line) {
  std::lock_guard<std::mutex> lk(track_mu_);
  for (size_t i = 0; i < poisoned_lines_.size();) {
    if (poisoned_lines_[i] == line) {
      poisoned_lines_[i] = poisoned_lines_.back();
      poisoned_lines_.pop_back();
    } else {
      i++;
    }
  }
}

size_t Memory::armed_media_fault_count() const {
  std::lock_guard<std::mutex> lk(track_mu_);
  return armed_faults_.size();
}

void Memory::drop_log_line_range() {
  log_range_drops_.fetch_add(1, std::memory_order_relaxed);
  if (!log_range_drop_warned_.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "nvm::Memory: log line-range table full (%zu ranges); further "
                 "overflow-segment ranges will be treated as data for media "
                 "routing (PDRAM-Lite timing only, not a correctness issue)\n",
                 kMaxExtraLogRanges);
  }
}

void Memory::arm_crash_after(uint64_t events, uint64_t rng_seed) {
  assert(cfg_.crash_sim && "crash injection requires crash_sim=true");
  crash_rng_.reseed(rng_seed);
  crash_events_left_.store(static_cast<int64_t>(events), std::memory_order_relaxed);
  frozen_.store(false, std::memory_order_release);
  armed_.store(true, std::memory_order_release);
}

void Memory::arm_thread_fault(uint64_t events, uint64_t stall_ns) {
  assert(cfg_.crash_sim && "thread-fault injection requires crash_sim=true");
  assert(events > 0 && "a fault needs at least one event to fire on");
  for (ThreadFault& f : tf_) {
    if (!f.done) continue;
    f.events_left = events;
    f.stall_ns = stall_ns;
    f.done = false;
    tf_armed_.store(true, std::memory_order_release);
    return;
  }
  assert(false && "at most two thread faults can be armed at once");
}

void Memory::clear_thread_faults() {
  for (ThreadFault& f : tf_) f.done = true;
  tf_armed_.store(false, std::memory_order_release);
}

void Memory::set_fenced_probe(std::function<bool(int)> probe) {
  fenced_probe_ = std::move(probe);
}

void Memory::drain_worker_pending(int w) {
  if (w < 0 || static_cast<size_t>(w) >= pending_.size()) return;
  std::lock_guard<std::mutex> lk(track_mu_);
  auto& pend = pending_[static_cast<size_t>(w)];
  for (const PendingLine& p : pend) apply_pending_locked(p);
  pend.clear();
}

void Memory::thread_fault_slow(sim::ExecContext& ctx) {
  // Power failure already resolved: CrashPoint unwinding owns the run.
  if (frozen_.load(std::memory_order_acquire)) return;
  // Tick every armed fault on this shared event; fire the first due one.
  ThreadFault* fire = nullptr;
  bool any_pending = false;
  for (ThreadFault& f : tf_) {
    if (f.done) continue;
    if (--f.events_left == 0) {
      f.done = true;
      if (fire == nullptr) fire = &f;
    } else {
      any_pending = true;
    }
  }
  if (!any_pending) tf_armed_.store(false, std::memory_order_release);
  if (fire == nullptr) return;
  tf_fired_.fetch_add(1, std::memory_order_relaxed);
  const int w = ctx.worker_id();
  if (fire->stall_ns == 0) {
    // The thread dies but the machine stays up: its in-flight writebacks
    // drain normally. See drain_worker_pending().
    drain_worker_pending(w);
    throw FiberKill{w};
  }
  // Stall: the fiber goes dark while simulated time passes for everyone
  // else. The stalled-mask bit makes the worker provably unresponsive to
  // the containment layer for the stall's duration (lease steals require
  // it). On wake, a power failure that happened meanwhile wins; then the
  // containment layer gets to fence a worker it already reclaimed.
  const uint64_t stall = fire->stall_ns;
  if (w >= 0 && w < 64) {
    tf_stalled_mask_.fetch_or(1ull << w, std::memory_order_acq_rel);
    ctx.advance(stall);
    tf_stalled_mask_.fetch_and(~(1ull << w), std::memory_order_acq_rel);
  } else {
    ctx.advance(stall);
  }
  if (frozen_.load(std::memory_order_acquire)) throw CrashPoint{};
  if (fenced_probe_ && fenced_probe_(w)) {
    drain_worker_pending(w);
    throw FiberKill{w};
  }
}

void Memory::crash_event_slow() {
  if (frozen_.load(std::memory_order_acquire)) throw CrashPoint{};
  if (crash_events_left_.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  {
    // The power failure happens *now*: fix the persisted image before any
    // further (post-crash) stores can leak into it.
    std::lock_guard<std::mutex> lk(track_mu_);
    resolve_crash_image(crash_rng_);
  }
  frozen_.store(true, std::memory_order_release);
  throw CrashPoint{};
}

void Memory::simulate_power_failure(util::Rng& rng) {
  assert(cfg_.crash_sim && "crash simulation requires crash_sim=true");
  std::lock_guard<std::mutex> lk(track_mu_);
  if (!frozen_.load(std::memory_order_acquire)) {
    resolve_crash_image(rng);
  }
  // The machine reboots: live memory is whatever persisted.
  std::memcpy(base_, image_.get(), size_);
  clear_dirty_all();
  armed_.store(false, std::memory_order_release);
  frozen_.store(false, std::memory_order_release);
  clear_thread_faults();  // dead threads do not outlive the machine
  if (psan_) psan_->on_power_failure();
}

void Memory::checkpoint_all_persistent() {
  if (psan_) psan_->on_checkpoint();
  if (!cfg_.crash_sim) return;
  std::lock_guard<std::mutex> lk(track_mu_);
  std::memcpy(image_.get(), base_, size_);
  clear_dirty_all();
  for (auto& pend : pending_) pend.clear();
  line_applied_seq_.clear();
}

void Memory::clear_dirty_all() {
  std::fill(dirty_bitmap_.begin(), dirty_bitmap_.end(), 0);
  dirty_list_.clear();
}

void Memory::prewarm_directory(uint64_t first_line, uint64_t nlines) {
  if (cfg_.domain != Domain::kPdram || cfg_.media != Media::kOptane) return;
  for (uint64_t i = 0; i < nlines; i++) {
    dram_dir_.access(first_line + i, /*is_write=*/false);
  }
}

void Memory::maybe_devstats_sample(uint64_t now_ns) {
  if (!stats::Trace::on()) return;
  if (!devstats_->sample_due(now_ns)) return;
  devstats_sample(now_ns);
}

void Memory::devstats_sample(uint64_t now_ns) {
  const std::array<uint64_t, stats::kNumChannels> busy = {
      dram_read_.busy_ns(), dram_write_.busy_ns(), optane_read_.busy_ns(),
      optane_write_.busy_ns()};
  devstats_->emit_counters(stats::Trace::instance(), now_ns, wpq_.occupancy(now_ns),
                           busy);
}

stats::DeviceCounters Memory::device_snapshot(uint64_t sim_end_ns) {
  stats::DeviceCounters d = devstats_->snapshot();
  const BandwidthChannel* chans[stats::kNumChannels] = {&dram_read_, &dram_write_,
                                                        &optane_read_, &optane_write_};
  for (size_t i = 0; i < stats::kNumChannels; i++) {
    d.channels[i].requests = chans[i]->requests();
    d.channels[i].busy_ns = chans[i]->busy_ns();
  }
  d.sim_end_ns = sim_end_ns;
  d.reserve_energy_j = energy_.reserve_energy_j(cfg_);
  d.drain_seconds = energy_.drain_seconds(cfg_);
  d.reserve_technology = EnergyModel::reserve_technology(d.reserve_energy_j);
  if (stats::Trace::on()) devstats_sample(sim_end_ns);
  return d;
}

void Memory::reset_models() {
  l3_.reset();
  dram_dir_.reset();
  wpq_.reset();
  dram_read_.reset();
  dram_write_.reset();
  optane_read_.reset();
  optane_write_.reset();
}

}  // namespace nvm
