#include "nvm/cost_model.h"

namespace nvm {

const char* media_name(Media m) { return m == Media::kDram ? "DRAM" : "Optane"; }

const char* domain_name(Domain d) {
  switch (d) {
    case Domain::kAdr: return "ADR";
    case Domain::kEadr: return "eADR";
    case Domain::kPdram: return "PDRAM";
    case Domain::kPdramLite: return "PDRAM-Lite";
  }
  return "?";
}

}  // namespace nvm
