#include "nvm/energy.h"

namespace nvm {

double EnergyModel::drain_seconds(const SystemConfig& cfg) const {
  const double bw_bytes_per_s = optane_write_bw_gbps * 1e9;
  switch (cfg.domain) {
    case Domain::kAdr: {
      // Drain the WPQ: tens of lines, microseconds.
      return static_cast<double>(cfg.cost.wpq_capacity) * 64.0 / bw_bytes_per_s;
    }
    case Domain::kEadr: {
      // Flush the whole L3 (worst case: all dirty) plus the WPQ.
      return (static_cast<double>(cfg.l3_bytes) +
              static_cast<double>(cfg.cost.wpq_capacity) * 64.0) /
             bw_bytes_per_s;
    }
    case Domain::kPdram: {
      // Write back every dirty DRAM-cache line (worst case: the full
      // directory) plus caches.
      return (static_cast<double>(cfg.dram_cache_bytes) +
              static_cast<double>(cfg.l3_bytes)) /
             bw_bytes_per_s;
    }
    case Domain::kPdramLite: {
      // eADR plus a handful of log pages per thread (the paper measures
      // <40 cache lines of redo log per transaction; reserve a page each).
      const double log_bytes = static_cast<double>(cfg.max_workers) * 4096.0;
      return (static_cast<double>(cfg.l3_bytes) + log_bytes +
              static_cast<double>(cfg.cost.wpq_capacity) * 64.0) /
             bw_bytes_per_s;
    }
  }
  return 0;
}

double EnergyModel::reserve_energy_j(const SystemConfig& cfg) const {
  const double secs = drain_seconds(cfg);
  // Power during the drain: the memory system always; for PDRAM the DRAM
  // itself must stay refreshed, and CPU+fabric stay up to run the drain.
  double power = system_power_w;
  if (cfg.domain == Domain::kPdram || cfg.domain == Domain::kPdramLite) {
    power += dram_power_per_gb_w * (static_cast<double>(cfg.dram_cache_bytes) / 1e9);
  }
  // Plus the write energy of the drained bytes themselves.
  double drained_bytes = 0;
  switch (cfg.domain) {
    case Domain::kAdr: drained_bytes = cfg.cost.wpq_capacity * 64.0; break;
    case Domain::kEadr: drained_bytes = static_cast<double>(cfg.l3_bytes); break;
    case Domain::kPdram:
      drained_bytes = static_cast<double>(cfg.dram_cache_bytes + cfg.l3_bytes);
      break;
    case Domain::kPdramLite:
      drained_bytes =
          static_cast<double>(cfg.l3_bytes) + static_cast<double>(cfg.max_workers) * 4096.0;
      break;
  }
  const double write_j = drained_bytes / 64.0 * optane_write_pj * 1e-12;
  return power * secs + write_j;
}

const char* EnergyModel::reserve_technology(double joules) {
  if (joules < 0.05) return "PSU hold-up (stock ADR)";
  if (joules < 50.0) return "capacitor bank (eADR-class)";
  return "lithium-ion battery";
}

}  // namespace nvm
