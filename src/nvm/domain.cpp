#include "nvm/domain.h"

namespace nvm {

std::string SystemConfig::name() const {
  // PDRAM domains imply Optane backing; the paper labels those curves by
  // domain alone.
  if (domain == Domain::kPdram) return "PDRAM";
  if (domain == Domain::kPdramLite) return "PDRAM-Lite";
  std::string n = media_name(media);
  n += "_";
  n += domain_name(domain);
  if (elide_fences) n += "_nofence";
  return n;
}

}  // namespace nvm
