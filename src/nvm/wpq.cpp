#include "nvm/wpq.h"

// Header-only; TU kept for build-list uniformity.
