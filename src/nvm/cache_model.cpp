#include "nvm/cache_model.h"

#include <cassert>

namespace nvm {

CacheModel::CacheModel(uint64_t bytes, int ways) : ways_(ways) {
  assert(ways > 0);
  num_sets_ = bytes / 64 / static_cast<uint64_t>(ways);
  if (num_sets_ == 0) num_sets_ = 1;
  ways_store_.assign(num_sets_ * static_cast<uint64_t>(ways_), Way{});
}

CacheModel::AccessResult CacheModel::access(uint64_t line, bool is_write) {
  Way* set = set_of(line);
  tick_++;
  // Hit?
  for (int i = 0; i < ways_; i++) {
    if (set[i].tag == line) {
      set[i].lru = tick_;
      set[i].dirty |= is_write;
      return {true, kNoLine};
    }
  }
  // Miss: install over the LRU way (or an invalid one).
  int victim = 0;
  for (int i = 1; i < ways_; i++) {
    if (set[i].tag == kNoLine) {
      victim = i;
      break;
    }
    if (set[i].lru < set[victim].lru) victim = i;
  }
  uint64_t evicted = kNoLine;
  if (set[victim].tag != kNoLine && set[victim].dirty) evicted = set[victim].tag;
  set[victim].tag = line;
  set[victim].lru = tick_;
  set[victim].dirty = is_write;
  return {false, evicted};
}

bool CacheModel::clean(uint64_t line) {
  Way* set = set_of(line);
  for (int i = 0; i < ways_; i++) {
    if (set[i].tag == line) {
      const bool was_dirty = set[i].dirty;
      set[i].dirty = false;
      return was_dirty;
    }
  }
  return false;
}

void CacheModel::reset() {
  ways_store_.assign(ways_store_.size(), Way{});
  tick_ = 0;
}

}  // namespace nvm
