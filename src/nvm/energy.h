// Energy model for the durability domains — the paper's declared future
// work (§V: "we plan to investigate the energy consumption of the
// durability domains", and §IV.B's reserve-power discussion).
//
// Two parts:
//
//  1. **Dynamic energy**: per-event costs accumulated alongside the timing
//     model (stats::TxCounters::energy_pj). Constants are literature-level
//     estimates (documented, configurable), good for *relative* domain
//     comparisons: Optane writes are by far the most expensive event, so
//     ADR's uncoalesced write-through (every clwb pushes a line) draws more
//     DIMM power than eADR's coalesced natural evictions — exactly the
//     paper's §IV.B claim.
//
//  2. **Reserve energy**: how much stored energy a power failure needs per
//     domain (paper Fig 2/5 discussion):
//       ADR        — drain the WPQ only;
//       eADR       — flush all (potentially dirty) L3 lines as well;
//       PDRAM      — write every dirty DRAM-cache line back to Optane,
//                    keeping CPU+DRAM alive for the whole drain (the ">10s,
//                    lithium-ion battery" regime of §IV.B);
//       PDRAM-Lite — eADR plus a bounded number of log pages per thread.
#pragma once

#include <cstdint>

#include "nvm/domain.h"

namespace nvm {

struct EnergyModel {
  // --- dynamic energy per 64-byte line event (picojoules) ---
  // Ballpark constants from public DRAM/Optane characterization studies;
  // absolute values are estimates, ratios are what matters.
  double cache_hit_pj = 1'000;         // ~1 nJ: on-die access
  double dram_read_pj = 20'000;        // ~20 nJ per line
  double dram_write_pj = 26'000;
  double optane_read_pj = 160'000;     // ~0.16 uJ per line
  double optane_write_pj = 470'000;    // ~0.47 uJ per line (the big one)
  double clwb_issue_pj = 2'000;
  double sfence_pj = 1'500;

  double read_pj(Media m) const { return m == Media::kDram ? dram_read_pj : optane_read_pj; }
  double write_pj(Media m) const {
    return m == Media::kDram ? dram_write_pj : optane_write_pj;
  }

  // --- reserve-energy estimation (joules) ---
  // System-level constants for the drain scenario.
  double system_power_w = 150.0;       // CPU+fabric kept alive during drain
  double dram_power_per_gb_w = 0.4;    // refresh + standby
  double optane_write_bw_gbps = 2.4;   // drain bandwidth (matches CostModel)

  /// Estimated worst-case reserve energy (joules) to guarantee durability
  /// under `cfg`'s domain at power-failure time.
  double reserve_energy_j(const SystemConfig& cfg) const;

  /// Worst-case drain time (seconds) the reserve must cover.
  double drain_seconds(const SystemConfig& cfg) const;

  /// Human-readable backing suggestion for that much reserve ("ADR supply
  /// hold-up" / "capacitor bank" / "lithium-ion battery"), following the
  /// paper's qualitative argument.
  static const char* reserve_technology(double joules);
};

}  // namespace nvm
