#include "nvm/channel.h"

// Header-only; TU kept for build-list uniformity.
