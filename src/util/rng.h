// Fast deterministic pseudo-random number generation.
//
// Everything in this repository that needs randomness takes an explicit
// Rng so experiments are reproducible (the discrete-event engine relies on
// determinism for crash-test replay).
#pragma once

#include <cstdint>

namespace util {

/// xoshiro256** — fast, high-quality 64-bit PRNG (public-domain algorithm).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialize the state from a single seed via splitmix64.
  void reseed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t next_bounded(uint64_t bound);

  /// Uniform value in [lo, hi] inclusive.
  uint64_t range(uint64_t lo, uint64_t hi) { return lo + next_bounded(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability pct/100.
  bool chance_pct(uint32_t pct) { return next_bounded(100) < pct; }

 private:
  uint64_t s_[4];
};

}  // namespace util
