// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) —
// software slice-by-one implementation. Used for the per-record and
// whole-log checksums in the persistent transaction logs (docs/LOGGING.md)
// and only computed on crash-simulation configurations, so raw throughput
// is irrelevant; correctness and portability are not.
#pragma once

#include <cstddef>
#include <cstdint>

namespace util {

/// CRC32C of `len` bytes. `seed` chains partial computations:
/// crc32c(b, n) == crc32c(b + k, n - k, crc32c(b, k)).
uint32_t crc32c(const void* data, size_t len, uint32_t seed = 0);

/// CRC32C of a single 64-bit word (little-endian byte order), the common
/// case for 8-byte log words.
uint32_t crc32c_u64(uint64_t word, uint32_t seed = 0);

}  // namespace util
