// Zipfian key-distribution generator (used by the key/value workload to
// model skewed request popularity, and by TPCC's NURand helper).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace util {

/// Draws values in [0, n) with Zipf(theta) popularity. Uses the standard
/// YCSB/Gray et al. rejection-free formula with precomputed constants, so
/// draws are O(1).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

/// TPC-C NURand(A, x, y): non-uniform random within [x, y].
uint64_t nurand(Rng& rng, uint64_t a, uint64_t x, uint64_t y, uint64_t c = 42);

}  // namespace util
