#include "util/strkey.h"

#include <cstdio>

namespace util {

uint64_t fnv1a(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < len; i++) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string padded_key(uint64_t v, int w) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%0*llu", w, static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace util
