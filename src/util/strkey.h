// Fixed-size inline string keys for persistent containers. Persistent data
// cannot hold std::string (heap pointers into volatile memory), so workloads
// that need textual keys (the memcached-like store uses 128-byte keys) use
// this POD type, which is safe to place in PMEM and to log word-by-word.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace util {

template <size_t N>
struct FixedKey {
  static_assert(N % 8 == 0, "FixedKey size must be word-aligned for PTM logging");
  char data[N];

  FixedKey() { std::memset(data, 0, N); }
  explicit FixedKey(const std::string& s) {
    std::memset(data, 0, N);
    std::memcpy(data, s.data(), std::min(s.size(), N - 1));
  }

  bool operator==(const FixedKey& o) const { return std::memcmp(data, o.data, N) == 0; }
  bool operator<(const FixedKey& o) const { return std::memcmp(data, o.data, N) < 0; }

  std::string str() const { return std::string(data, strnlen(data, N)); }
};

using Key128 = FixedKey<128>;

/// 64-bit FNV-1a over an arbitrary byte range.
uint64_t fnv1a(const void* data, size_t len);

/// Render integer `v` as a zero-padded decimal key string of width `w`.
std::string padded_key(uint64_t v, int w);

}  // namespace util
