#include "util/zipf.h"

#include <cmath>

namespace util {
namespace {

double zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  zetan_ = zeta(n, theta);
  zeta2_ = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfGenerator::next(Rng& rng) {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double v = static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t r = static_cast<uint64_t>(v);
  return r >= n_ ? n_ - 1 : r;
}

uint64_t nurand(Rng& rng, uint64_t a, uint64_t x, uint64_t y, uint64_t c) {
  const uint64_t lhs = rng.range(0, a);
  const uint64_t rhs = rng.range(x, y);
  return (((lhs | rhs) + c) % (y - x + 1)) + x;
}

}  // namespace util
