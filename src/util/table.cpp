#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); i++) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); i++) widths[i] = std::max(widths[i], row[i].size());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); i++) {
      os << row[i];
      if (i + 1 < row.size()) {
        for (size_t p = row[i].size(); p < widths[i] + 2; p++) os << ' ';
      }
    }
    os << '\n';
  };
  emit(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  for (size_t i = 0; i + 2 < total; i++) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); i++) {
      os << row[i];
      if (i + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string fmt_ratio(double v, int prec) {
  if (std::isinf(v)) return "-";
  return fmt(v, prec);
}

std::string fmt_count(uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  int cnt = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (cnt && cnt % 3 == 0) out.push_back(',');
    out.push_back(*it);
    cnt++;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string fmt_bytes(uint64_t bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    u++;
  }
  char buf[64];
  if (v == static_cast<uint64_t>(v)) {
    std::snprintf(buf, sizeof(buf), "%llu %s", static_cast<unsigned long long>(v), units[u]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  }
  return buf;
}

}  // namespace util
