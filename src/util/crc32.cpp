#include "util/crc32.h"

namespace util {
namespace {

struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t c = i;
      for (int k = 0; k < 8; k++) {
        c = (c & 1) ? (c >> 1) ^ 0x82F63B78u : (c >> 1);
      }
      t[i] = c;
    }
  }
};

const Crc32cTable& table() {
  static const Crc32cTable tab;
  return tab;
}

}  // namespace

uint32_t crc32c(const void* data, size_t len, uint32_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const uint32_t* t = table().t;
  uint32_t c = ~seed;
  for (size_t i = 0; i < len; i++) {
    c = t[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return ~c;
}

uint32_t crc32c_u64(uint64_t word, uint32_t seed) {
  const uint32_t* t = table().t;
  uint32_t c = ~seed;
  for (int i = 0; i < 8; i++) {
    c = t[(c ^ (word & 0xff)) & 0xff] ^ (c >> 8);
    word >>= 8;
  }
  return ~c;
}

}  // namespace util
