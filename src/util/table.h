// Plain-text table and CSV emission for the benchmark harness. Every figure
// and table in EXPERIMENTS.md is printed through this, so the output format
// is uniform across bench binaries.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace util {

/// Column-aligned text table. Rows are added as string cells; numeric
/// convenience overloads format with fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment to `os`.
  void print(std::ostream& os) const;

  /// Render as CSV (no alignment padding).
  void print_csv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `prec` digits after the decimal point.
std::string fmt(double v, int prec = 2);

/// Format a ratio cell: like fmt(), but +infinity renders as "-" (the
/// commit_abort_ratio sentinel for "no aborts" — see stats::TxCounters).
std::string fmt_ratio(double v, int prec = 2);

/// Format an integer with thousands separators ("12,345,678").
std::string fmt_count(uint64_t v);

/// Human-readable byte size ("32 MB", "1.5 GB").
std::string fmt_bytes(uint64_t bytes);

}  // namespace util
