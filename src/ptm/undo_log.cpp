#include "ptm/undo_log.h"

// Header-only; TU kept for build-list uniformity.
