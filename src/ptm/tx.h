// Transaction handle — the public face of the PTM.
//
// Application code runs transactions via ptm::Runtime::run(ctx, body); the
// body receives a Tx& and performs every persistent access through
// tx.read<T>() / tx.write<T>() / tx.alloc() / tx.dealloc(). This mirrors
// what the paper's LLVM plugin [39] emits for instrumented loads/stores —
// here the instrumentation is by hand, the runtime algorithms are the same:
//
//  * Algo::kOrecLazy  ("orec-lazy", redo logging): writes buffer in a
//    per-thread redo log (DRAM index, persistent records) and reach their
//    home locations only at commit; O(1) fences per transaction.
//  * Algo::kOrecEager ("orec-eager", undo logging): writes acquire the
//    orec, persist an undo record, then store in place; O(W) fences.
//
// Transactions are word-granular: persistent objects must be 8-byte aligned
// (the persistent allocator guarantees this), and read/write of any
// trivially-copyable T is decomposed into aligned 8-byte word accesses.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "alloc/persistent_alloc.h"
#include "nvm/pool.h"
#include "ptm/orec.h"
#include "ptm/redo_log.h"
#include "ptm/undo_log.h"
#include "sim/context.h"
#include "stats/counters.h"
#include "util/rng.h"

namespace analysis {
class Psan;
enum class DiagKind : uint8_t;
}  // namespace analysis

namespace ptm {

enum class Algo : uint64_t {
  kOrecLazy = 1,   // redo logging ("R" curves in the paper)
  kOrecEager = 2,  // undo logging ("U" curves)
};

const char* algo_name(Algo a);
const char* algo_suffix(Algo a);  // "R" / "U"

/// Internal control-flow exception: thrown on conflict, caught by
/// Runtime::run's retry loop. Never escapes to application code.
struct AbortTx {};

/// A transaction's footprint exceeded a capacity the runtime could not
/// grow any further (alloc log full, segment-chain ceiling, write-index
/// ceiling, or persistent heap exhausted while growing). Thrown from
/// Runtime::run *after* the offending attempt was fully rolled back — no
/// orecs held, allocations cancelled, logs retired — so the runtime stays
/// usable and the caller may retry with a smaller transaction.
struct CapacityError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Runtime;
class EpochManager;
class ContainmentManager;

class Tx {
 public:
  // ----- word-granular primitives ------------------------------------

  uint64_t read_word(const uint64_t* waddr);
  void write_word(uint64_t* waddr, uint64_t val);

  // ----- typed accessors ----------------------------------------------

  template <typename T>
  T read(const T* addr) {
    static_assert(std::is_trivially_copyable_v<T>);
    if constexpr (sizeof(T) == 8 && alignof(T) == 8) {
      uint64_t w = read_word(reinterpret_cast<const uint64_t*>(addr));
      T out;
      std::memcpy(&out, &w, 8);
      return out;
    } else {
      T out;
      read_bytes(addr, &out, sizeof(T));
      return out;
    }
  }

  template <typename T>
  void write(T* addr, const T& val) {
    static_assert(std::is_trivially_copyable_v<T>);
    if constexpr (sizeof(T) == 8 && alignof(T) == 8) {
      uint64_t w;
      std::memcpy(&w, &val, 8);
      write_word(reinterpret_cast<uint64_t*>(addr), w);
    } else {
      write_bytes(addr, &val, sizeof(T));
    }
  }

  /// Transactional memcpy out of the persistent heap.
  void read_bytes(const void* src, void* dst, size_t len);

  /// Transactional memcpy into the persistent heap (read-modify-write for
  /// partial words at the edges).
  void write_bytes(void* dst, const void* src, size_t len);

  // ----- allocation -----------------------------------------------------

  /// Allocate persistent memory owned by this transaction: released again
  /// if the transaction aborts, durable once it commits.
  void* alloc(size_t n);

  template <typename T>
  T* alloc_obj() {
    return static_cast<T*>(alloc(sizeof(T)));
  }

  /// Free a persistent block; deferred until commit (an aborted
  /// transaction frees nothing).
  void dealloc(void* p);

  // ----- misc -------------------------------------------------------------

  /// Model `ns` of non-memory compute inside the transaction.
  void work(uint64_t ns) { ctx_->advance(ns); }

  sim::ExecContext& ctx() { return *ctx_; }
  Runtime& runtime() { return *rt_; }

  /// Explicit user-requested abort+retry (e.g. failed precondition that a
  /// concurrent transaction may fix).
  [[noreturn]] void abort_and_retry();

  /// Cause of the most recent abort (valid after an AbortTx unwound; used
  /// by the runtime's retry loop for trace attribution).
  stats::AbortCause last_abort_cause() const { return last_abort_cause_; }

 private:
  friend class Runtime;
  friend class Recovery;
  friend class EpochManager;
  friend class ContainmentManager;

  Tx(Runtime& rt, int worker);

  void attach(sim::ExecContext* ctx, stats::TxCounters* c) {
    ctx_ = ctx;
    c_ = c;
  }

  void begin();
  void commit();
  void handle_abort();  // rollback + backoff (or capacity growth) after AbortTx

  /// Runtime::run's FiberKill path: quarantine this descriptor with the
  /// containment manager (no-op when containment is off). Atomic stores
  /// only — must stay safe to call right after a catch handler closed.
  void mark_killed();
  [[noreturn]] void abort_tx(stats::AbortCause cause);

  /// Which resource a capacity abort ran out of. Distinct from the abort
  /// *cause* (always kCapacity): handle_abort consumes the kind to decide
  /// what to grow before the retry.
  enum class CapacityKind : uint8_t { kNone = 0, kWriteLog, kAllocLog, kWriteIndex };

  /// Abort the attempt because `kind` is exhausted; handle_abort will grow
  /// the resource (or raise CapacityError) after normal rollback.
  [[noreturn]] void capacity_abort(CapacityKind kind);

  /// Grow the resource recorded by the pending capacity abort. Runs after
  /// rollback, outside any transaction. Throws CapacityError when the
  /// resource cannot grow further.
  void grow_for_capacity();

  // orec-lazy implementation (orec_lazy.cpp)
  uint64_t lazy_read(const uint64_t* waddr);
  void lazy_write(uint64_t* waddr, uint64_t val);
  void lazy_commit();
  void lazy_abort_cleanup();

  // orec-eager implementation (orec_eager.cpp)
  uint64_t eager_read(const uint64_t* waddr);
  void eager_write(uint64_t* waddr, uint64_t val);
  void eager_commit();
  void eager_rollback();

  // epoch/group-commit paths (epoch.cpp). The *_publish methods replace
  // the per-tx fence sequence on the member's side (seal with stores only,
  // publish, wait for the durable epoch ack, then write-back/retire). The
  // leader-side helpers run on a *member* transaction from the epoch
  // leader's fiber, so they take the leader's context/counters — flush and
  // fence cost must accrue to the leader's WPQ, never to the parked
  // member's clock.
  void epoch_lazy_publish(EpochManager& ep, uint64_t wv);
  void epoch_eager_publish(EpochManager& ep, uint64_t wv);
  bool epoch_flush_payload(sim::ExecContext& ctx, stats::TxCounters* c);
  void epoch_check_payload_persisted();
  bool epoch_mirror_commit(sim::ExecContext& ctx, stats::TxCounters* c);
  void epoch_check_mirror_persisted();
  void epoch_flip_status(sim::ExecContext& ctx, stats::TxCounters* c);

  // shared helpers (tx.cpp)
  void append_log(uint64_t off, uint64_t val);
  void append_alloc_word(uint64_t* entry, uint64_t word);
  void persist_slot_header();
  void persist_log_range(size_t first_entry, size_t n_entries);
  void persist_log_range_via(sim::ExecContext& ctx, stats::TxCounters* c,
                             size_t first_entry, size_t n_entries);
  void release_owned(uint64_t version_word);
  void cancel_allocs();
  void apply_frees();
  void set_status(uint64_t state, bool fence);
  void retire_logs();  // durably clear counts + set IDLE for the next epoch
  bool validate_read_set() const;
  void update_log_hwm();

  /// Copy the sealed primary header to the mirror line and reseal the
  /// primary's header CRC (log_mirror only; no-op otherwise). Caller owns
  /// flushing the primary header and fencing.
  void sync_mirror_header();

  // Persistency-sanitizer ordering points (no-ops when psan_ is null).
  // Declared here, defined in tx.cpp where analysis/psan.h is visible.
  void psan_check_log_persisted(size_t first_entry, size_t n_entries,
                                analysis::DiagKind kind, const char* what);
  void psan_check_header_persisted(analysis::DiagKind kind, const char* what);
  void psan_check_mirror_log_persisted(size_t first_entry, size_t n_entries,
                                       analysis::DiagKind kind, const char* what);
  void psan_check_mirror_header_persisted(analysis::DiagKind kind, const char* what);
  void psan_check_dirty_persisted(analysis::DiagKind kind, const char* what);

  Runtime* rt_;
  sim::ExecContext* ctx_ = nullptr;
  stats::TxCounters* c_ = nullptr;
  analysis::Psan* psan_ = nullptr;  // owned by the pool's Memory; null when off
  ContainmentManager* cm_ = nullptr;  // null unless tx_timeout_ns > 0
  int worker_;
  Algo algo_;

  SlotLayout slot_;
  WriteIndex windex_;

  uint64_t start_time_ = 0;
  uint64_t epoch_ = 0;
  size_t n_log_ = 0;
  size_t n_alloc_log_ = 0;
  bool active_persisted_ = false;  // eager: ACTIVE status already durable
  bool crc_logs_ = false;          // seal log records (crash_sim configs)
  uint64_t commit_ticket_ = 0;     // orec-clock ticket of the last commit
  /// Volatile "the commit point is durably sealed" marker for on-behalf
  /// reclamation: set the instant the commit record (or epoch ack) is
  /// durable, cleared at begin/retire. Disambiguates a worker killed
  /// mid/post-retire (header already IDLE for the next epoch, but orec
  /// release and observer notification unfinished — must complete forward)
  /// from one killed mid-transaction under lazy (also IDLE header — must
  /// discard). DRAM-only by design: after a power failure recovery uses
  /// only durable state.
  bool committed_hint_ = false;

  std::vector<std::pair<std::atomic<uint64_t>*, uint64_t>> read_set_;
  std::vector<OwnedOrec> owned_;
  DirtyLines dirty_;
  std::vector<void*> tx_allocs_;
  std::vector<void*> tx_frees_;

  uint64_t attempt_ = 0;
  stats::AbortCause last_abort_cause_ = stats::AbortCause::kExplicit;

  /// Bound on overflow segments per slot. Each growth doubles total log
  /// capacity, so 8 segments already admit write sets 256x the base log;
  /// deeper chains indicate a runaway transaction, not a real footprint.
  static constexpr size_t kMaxLogSegments = 8;
  CapacityKind capacity_kind_ = CapacityKind::kNone;

  util::Rng rng_;
};

}  // namespace ptm
