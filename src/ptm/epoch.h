// Group/epoch commit (SystemConfig::epoch_commit): amortize the per-
// transaction persistence ordering points across a batch of committers.
//
// Per-transaction commit pays its fences alone — redo: log-seal fence,
// (mirror fence,) status fence; undo: the commit-time dirty-flush and
// status fences — which the paper identifies as the dominant persistence
// cost on Optane under ADR. In epoch mode a committing worker instead
// *publishes* its sealed-but-unmarked log to a per-runtime queue and
// waits; a leader elected among the waiters drains the queue and persists
// every member's payload under shared fence batches:
//
//   A. flush every member's log records + slot header (redo) or dirty
//      data lines (undo), then ONE sfence for the whole batch;
//   B. (log_mirror only) store + flush every member's mirror COMMITTED
//      header, then ONE sfence — the replica commit marks keep their own
//      fence-delimited batch, after the payload fence and before the
//      primary seals, exactly as in per-transaction mode;
//   C. store + flush every member's primary COMMITTED status, then ONE
//      sfence. Durable commit point for the whole epoch.
//
// Durability acks are delivered on epoch close: commit() still only
// returns once the caller's transaction is durably marked, so the API
// contract is unchanged — only the latency/throughput tradeoff moves.
// An epoch closes when `epoch_max_txs` members are queued or when the
// oldest member has waited `epoch_max_ns` simulated nanoseconds (a lone
// worker degrades to epochs of one instead of stalling forever).
//
// DES discipline: waiting members charge simulated time via their own
// ExecContext (never block on OS primitives), and the leader issues every
// flush/fence through its *own* context so the batch drains the leader's
// WPQ — members only stored. If a drain hits a crash point mid-epoch the
// leader marks the whole batch crashed and rethrows; unacked members
// observe the mark and propagate nvm::CrashPoint without touching frozen
// memory, so no fiber hangs. Recovery needs no epoch-specific logic:
// acked members are durably COMMITTED (replayed), unacked members still
// show IDLE/ACTIVE logs that replay or roll back exactly like
// per-transaction crashes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/context.h"
#include "stats/counters.h"

namespace ptm {

class Tx;

class EpochManager {
 public:
  EpochManager(size_t max_txs, uint64_t max_ns, int max_workers)
      : max_txs_(max_txs == 0 ? 1 : max_txs),
        max_ns_(max_ns == 0 ? 1 : max_ns),
        members_(new Member[static_cast<size_t>(max_workers)]) {}

  /// REPRO_EPOCH=1 forces epoch commit on for every runtime, like
  /// REPRO_PSAN for the sanitizer (first call caches the lookup).
  static bool env_enabled();

  /// Commit `tx` through the epoch machinery: publish the sealed slot,
  /// wait (or lead) until the epoch containing it closes durably. On
  /// return the transaction's COMMITTED status is durable; the caller
  /// still owns write-back/retire/unlock. Throws nvm::CrashPoint when a
  /// crash froze the pool before this member's epoch could close.
  void commit(Tx& tx);

  /// Drop all volatile epoch state (queue, leadership, member slots).
  /// Called by Runtime::recover(): a crash abandons every queued member.
  void reset();

  /// Counters for the REPRO_JSON "epoch" section (enabled is set by the
  /// runtime when the mode is active).
  stats::EpochStats snapshot() const;

 private:
  enum class MemberState : uint8_t {
    kQueued = 0,  // published, waiting for a leader
    kAcked,       // epoch closed durably; member may finish its commit
    kCrashed,     // drain hit a crash point; member must propagate it
  };

  struct Member {
    Tx* tx = nullptr;
    uint64_t publish_ns = 0;
    std::atomic<MemberState> state{MemberState::kQueued};
  };

  /// Drain every queued member as one epoch (caller holds leadership).
  /// `why_size` records whether the size or the age trigger closed it.
  void drain(Tx& leader, bool why_size);

  size_t max_txs_;
  uint64_t max_ns_;

  // One member record per worker, reused across that worker's commits (a
  // worker has at most one published commit in flight).
  std::unique_ptr<Member[]> members_;

  // Queue of published members. The mutex guards the vector and the
  // mirror count; member state transitions are atomic so waiters poll
  // without the lock. Real-thread safe for the unit/TSan suites;
  // uncontended under the single-OS-thread DES engine.
  mutable std::mutex mu_;
  std::vector<Member*> queue_;
  std::atomic<size_t> queued_{0};
  std::atomic<bool> leader_busy_{false};

  // Stats are leader-written under leadership (single writer at a time);
  // snapshot() is called quiescently by the driver after workers join.
  stats::EpochStats stats_;
};

}  // namespace ptm
