// Group/epoch commit (SystemConfig::epoch_commit): amortize the per-
// transaction persistence ordering points across a batch of committers.
//
// Per-transaction commit pays its fences alone — redo: log-seal fence,
// (mirror fence,) status fence; undo: the commit-time dirty-flush and
// status fences — which the paper identifies as the dominant persistence
// cost on Optane under ADR. In epoch mode a committing worker instead
// *publishes* its sealed-but-unmarked log to a per-runtime queue and
// waits; a leader elected among the waiters drains the queue and persists
// every member's payload under shared fence batches:
//
//   A. flush every member's log records + slot header (redo) or dirty
//      data lines (undo), then ONE sfence for the whole batch;
//   B. (log_mirror only) store + flush every member's mirror COMMITTED
//      header, then ONE sfence — the replica commit marks keep their own
//      fence-delimited batch, after the payload fence and before the
//      primary seals, exactly as in per-transaction mode;
//   C. store + flush every member's primary COMMITTED status, then ONE
//      sfence. Durable commit point for the whole epoch.
//
// Durability acks are delivered on epoch close: commit() still only
// returns once the caller's transaction is durably marked, so the API
// contract is unchanged — only the latency/throughput tradeoff moves.
// An epoch closes when `epoch_max_txs` members are queued or when the
// oldest member has waited `epoch_max_ns` simulated nanoseconds (a lone
// worker degrades to epochs of one instead of stalling forever).
//
// DES discipline: waiting members charge simulated time via their own
// ExecContext (never block on OS primitives), and the leader issues every
// flush/fence through its *own* context so the batch drains the leader's
// WPQ — members only stored. If a drain hits a crash point mid-epoch the
// leader marks the whole batch crashed and rethrows; unacked members
// observe the mark and propagate nvm::CrashPoint without touching frozen
// memory, so no fiber hangs. Recovery needs no epoch-specific logic:
// acked members are durably COMMITTED (replayed), unacked members still
// show IDLE/ACTIVE logs that replay or roll back exactly like
// per-transaction crashes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/context.h"
#include "stats/counters.h"

namespace ptm {

class ContainmentManager;
class Tx;

class EpochManager {
 public:
  EpochManager(size_t max_txs, uint64_t max_ns, int max_workers)
      : max_txs_(max_txs == 0 ? 1 : max_txs),
        max_ns_(max_ns == 0 ? 1 : max_ns),
        n_workers_(max_workers),
        members_(new Member[static_cast<size_t>(max_workers)]) {}

  /// REPRO_EPOCH=1 forces epoch commit on for every runtime, like
  /// REPRO_PSAN for the sanitizer (first call caches the lookup).
  static bool env_enabled();

  /// Commit `tx` through the epoch machinery: publish the sealed slot,
  /// wait (or lead) until the epoch containing it closes durably. On
  /// return the transaction's COMMITTED status is durable; the caller
  /// still owns write-back/retire/unlock. Throws nvm::CrashPoint when a
  /// crash froze the pool before this member's epoch could close.
  void commit(Tx& tx);

  /// Drop all volatile epoch state (queue, staged drain batch, leadership,
  /// member slots). Called by Runtime::recover(): a crash abandons every
  /// queued member, and a stale leader flag must not survive into the next
  /// lifetime.
  void reset();

  /// Counters for the REPRO_JSON "epoch" section (enabled is set by the
  /// runtime when the mode is active).
  stats::EpochStats snapshot() const;

  // ----- thread-crash containment hooks (ptm::ContainmentManager) --------

  /// Wire the containment manager (null disconnects). With a manager
  /// attached, waiters and leaders heartbeat, a drain abandoned by a killed
  /// leader stays staged for a successor, and try_lead() may steal an
  /// expired leadership lease.
  void set_containment(ContainmentManager* cm) { cm_ = cm; }

  /// Where worker `w`'s published commit stands: 0 = no commit in flight
  /// through the epoch machinery, 1 = queued/staged (epoch not yet durable),
  /// 2 = acked (epoch durably closed; only the member's post-commit work is
  /// outstanding), 3 = crashed (pool froze mid-drain). Reclaimers dispatch
  /// on this before touching a dead member's slot.
  int member_phase(int w) const;

  /// Try to close the pending epoch on behalf of dead members: take (or
  /// steal, lease permitting) leadership and drain from `ctx`. Returns
  /// false when leadership is held by a live leader — the caller backs off
  /// and retries. Charges `ctx` for every flush/fence, like any leader.
  bool help_close(sim::ExecContext& ctx, stats::TxCounters* c);

  /// Remove worker `w`'s member record from the queue and any staged batch
  /// and clear its in-flight mark. Called by the reclaimer once it has
  /// taken responsibility for the slot's fate.
  void forget(int w);

 private:
  enum class MemberState : uint8_t {
    kQueued = 0,  // published, waiting for a leader
    kAcked,       // epoch closed durably; member may finish its commit
    kCrashed,     // drain hit a crash point; member must propagate it
  };

  struct Member {
    Tx* tx = nullptr;
    uint64_t publish_ns = 0;
    std::atomic<MemberState> state{MemberState::kQueued};
    // Set while this worker has a published commit whose fate rests with
    // the epoch machinery (publish until ack/crash propagation). A killed
    // member never clears it — that is how reclaimers know the slot's
    // outcome is the epoch's outcome, not the slot header's alone.
    std::atomic<bool> inflight{false};
  };

  /// Drain the staged batch plus every queued member as one epoch (caller
  /// holds leadership; `ctx` pays for all flushes/fences). `why_size`
  /// records whether the size or the age trigger closed it.
  void drain(sim::ExecContext& ctx, stats::TxCounters* c, bool why_size);

  /// Acquire drain leadership as worker `me`: CAS from -1, or — with
  /// containment attached — steal from a leader whose lease expired at
  /// sim-time `now` (the deposed leader is fenced so it can never issue
  /// another store).
  bool try_lead(int me, uint64_t now);

  size_t max_txs_;
  uint64_t max_ns_;
  int n_workers_;

  // One member record per worker, reused across that worker's commits (a
  // worker has at most one published commit in flight).
  std::unique_ptr<Member[]> members_;

  // Queue of published members. The mutex guards the vectors and the
  // mirror count; member state transitions are atomic so waiters poll
  // without the lock. Real-thread safe for the unit/TSan suites;
  // uncontended under the single-OS-thread DES engine.
  mutable std::mutex mu_;
  std::vector<Member*> queue_;
  // Batch staged by the current (or a dead) leader. drain() moves queue_
  // into draining_ before touching any member and only clears it after the
  // epoch durably closed (or crashed), so a leader killed mid-drain leaves
  // the batch behind for a successor to re-run from batch A — the three
  // fence batches are idempotent over already-flushed members.
  std::vector<Member*> draining_;
  std::atomic<size_t> queued_{0};
  // Worker id of the drain leader, -1 when leadership is free. A leader
  // killed mid-drain keeps the flag (on purpose): successors must observe
  // the expired lease and steal via try_lead(), never barge in.
  std::atomic<int> leader_{-1};

  // Optional thread-crash containment (null = feature off, zero overhead
  // beyond the null tests).
  ContainmentManager* cm_ = nullptr;

  // Stats are leader-written under leadership (single writer at a time);
  // snapshot() is called quiescently by the driver after workers join.
  stats::EpochStats stats_;
};

}  // namespace ptm
