#include "ptm/watchdog.h"

#include "ptm/containment.h"

namespace ptm {

void Watchdog::run_pass(sim::ExecContext& ctx) {
  if (ContainmentManager* cm = rt_.containment()) {
    // Charge the sweep to the patrol fiber's counters slot (the spare
    // setup slot in the bench driver) — reclamation work is maintenance,
    // not any worker's transaction cost.
    cm->sweep(ctx, &rt_.counters(ctx.worker_id()));
  }
}

}  // namespace ptm
