// Startup / post-crash recovery.
//
// Invariant provided to applications: after recover(),
//  * every transaction whose commit record persisted is fully applied
//    (redo logs are replayed; undo-mode commits were already in place);
//  * every transaction without a persisted commit record has no effect
//    (undo logs are rolled back; redo logs and speculative allocations are
//    discarded).
// This is the "linearizable durability" contract ([10]) the paper's PTMs
// provide. Replay is idempotent, so a crash during recovery is safe
// (tests/test_crash.cpp's CrashDuringRecoveryIsSafe sweeps a crash through
// every persistence event of a recovery replay to pin this).
//
// Defensive posture: nothing persisted is trusted until validated.
// Counts are clamped to attached capacity, segment links are bounds- and
// magic-checked (SlotLayout::attach_segments), record offsets must land
// in a writable data region (root area or heap — never the pool header
// or the log slots themselves, which a corrupt record could otherwise
// scribble over), and on crash-sim configurations each record's CRC is
// verified (torn records are *detected*, not inferred) and poisoned
// lines reported by the media-fault model are refused. Everything
// recovery applied or discarded is tallied in the returned
// stats::RecoveryReport.
#include <algorithm>

#include "ptm/runtime.h"
#include "util/crc32.h"

namespace ptm {

stats::RecoveryReport Runtime::recover(sim::ExecContext& ctx) {
  // All speculation state is volatile and died with the crash.
  orecs_.reset();

  nvm::Memory& mem = pool_.mem();
  stats::TxCounters* c = nullptr;  // recovery is not part of measured runs
  stats::RecoveryReport rep;

  // CRC sealing and media-fault injection only exist on crash-sim
  // configurations; on performance configurations the crc fields are zero
  // by construction and must not be checked.
  const bool checked = pool_.config().crash_sim;
  rep.media_faults = checked ? mem.media_fault_count() : 0;

  // Writable data regions: the application root area and the persistent
  // heap. A record pointing anywhere else (pool header, worker-meta/log
  // slots, out of bounds, misaligned) is corrupt — applying it could
  // destroy the very metadata recovery is walking.
  const uint64_t meta_lo = pool_.header()->meta_off;
  const uint64_t heap_lo = pool_.header()->heap_off;
  const uint64_t pool_size = pool_.size();
  auto valid_data_off = [&](uint64_t off) {
    if ((off & 7) != 0 || off + 8 > pool_size) return false;
    const bool in_root = off >= nvm::Pool::kHeaderBytes && off < meta_lo;
    const bool in_heap = off >= heap_lo;
    return in_root || in_heap;
  };
  auto valid_heap_off = [&](uint64_t off) {
    return (off & 7) == 0 && off >= heap_lo && off + 8 <= pool_size;
  };

  for (int w = 0; w < pool_.config().max_workers; w++) {
    SlotLayout slot = SlotLayout::carve(pool_.worker_meta(w), pool_.worker_meta_bytes());
    rep.slots_scanned++;

    if (checked && mem.media_faulted(slot.header, sizeof(TxSlotHeader))) {
      // The header line is gone: state, counts and epoch are all
      // untrustworthy, so neither replay nor rollback is possible. Count
      // the loss and fall through to the quiesce below, which rebuilds the
      // header as an empty IDLE slot (epoch continuity does not matter —
      // any surviving records become stale debris for the next epoch).
      rep.records_media_faulted++;
    } else {
      // Rebuild the overflow-segment chain from its persisted links — the
      // crashed transaction's log may extend past the in-slot array.
      rep.segment_links_truncated += slot.attach_segments(pool_);
      const uint64_t status = slot.header->status;
      const uint64_t state = TxSlotHeader::state_of(status);
      const uint64_t epoch = TxSlotHeader::epoch_of(status);
      // Clamp the persisted counts: a corrupt count must not walk past the
      // log arrays (per-record tags/crcs still screen what is inside).
      const uint64_t n_log = std::min<uint64_t>(slot.header->log_count, slot.total_capacity);
      const uint64_t n_alloc =
          std::min<uint64_t>(slot.header->alloc_count, slot.alloc_log_cap);
      const auto algo = static_cast<Algo>(slot.header->algo);

      // Validate one write-log record; returns nullptr when it must not be
      // applied (each rejection lands in exactly one report bucket).
      auto screen_entry = [&](uint64_t i) -> const LogEntry* {
        const LogEntry* e = slot.entry_at(i);
        if (checked && mem.media_faulted(e, sizeof(LogEntry))) {
          // Poisoned bytes could masquerade as anything — attribute to the
          // media before looking at the content.
          rep.records_media_faulted++;
          return nullptr;
        }
        if (!LogEntry::tag_matches(e->off, epoch)) {
          rep.records_stale++;  // ordinary partial-persistence debris
          return nullptr;
        }
        if (checked && !LogEntry::crc_ok(e->off, e->val)) {
          rep.records_torn++;  // sub-line tearing caught red-handed
          return nullptr;
        }
        if (!valid_data_off(LogEntry::offset_of(e->off))) {
          rep.records_invalid++;
          return nullptr;
        }
        return e;
      };

      if (state == TxSlotHeader::kCommitted) {
        rep.slots_committed++;
        if (algo == Algo::kOrecLazy) {
          if (checked && n_log > 0) {
            // Cross-check the whole committed record set against the
            // checksum the committer sealed into the header. A mismatch
            // means the log does not match what was committed (media
            // damage, truncated chain): per-record screening still
            // replays every provably-good record, but the damage is
            // reported rather than silently absorbed.
            uint32_t lc = 0;
            for (uint64_t i = 0; i < n_log; i++) {
              const LogEntry* e = slot.entry_at(i);
              lc = util::crc32c_u64(e->val, util::crc32c_u64(e->off, lc));
            }
            if (lc != static_cast<uint32_t>(slot.header->pad[SlotLayout::kLogCrcPad])) {
              rep.log_crc_mismatches++;
            }
          }
          // Replay the redo log forward; write-back may have been partial.
          for (uint64_t i = 0; i < n_log; i++) {
            const LogEntry* e = screen_entry(i);
            if (e == nullptr) continue;
            auto* home = static_cast<uint64_t*>(pool_.at(LogEntry::offset_of(e->off)));
            mem.store_word(ctx, c, home, e->val, nvm::Space::kData);
            mem.clwb(ctx, c, home);
            rep.records_replayed++;
          }
          mem.sfence(ctx, c);
        }
        // Committed transactions' deferred frees must take effect.
        for (uint64_t i = 0; i < n_alloc; i++) {
          const uint64_t word = slot.alloc_log[i];
          if (checked && mem.media_faulted(&slot.alloc_log[i], 8)) {
            rep.records_media_faulted++;
            continue;
          }
          if (!AllocLogOp::tag_matches(word, epoch)) {
            rep.records_stale++;
            continue;
          }
          if (checked && !AllocLogOp::crc_ok(word)) {
            rep.records_torn++;
            continue;
          }
          if (AllocLogOp::op_of(word) == AllocLogOp::kFree) {
            if (!valid_heap_off(AllocLogOp::off_of(word))) {
              rep.records_invalid++;
              continue;
            }
            alloc_.free_block_if_absent(ctx, c, pool_.at(AllocLogOp::off_of(word)));
            rep.frees_applied++;
          }
        }
      } else {
        // IDLE or ACTIVE: the transaction did not commit.
        if (state == TxSlotHeader::kActive && algo == Algo::kOrecEager) {
          rep.slots_rolled_back++;
          // Roll back in-place writes, newest first. A record that fails
          // its crc was never fence-ordered before the crash — which also
          // means its in-place store never executed, so *skipping* it is
          // the correct rollback, not a loss.
          for (uint64_t i = n_log; i-- > 0;) {
            const LogEntry* e = screen_entry(i);
            if (e == nullptr) continue;
            auto* home = static_cast<uint64_t*>(pool_.at(LogEntry::offset_of(e->off)));
            mem.store_word(ctx, c, home, e->val, nvm::Space::kData);
            mem.clwb(ctx, c, home);
            rep.records_replayed++;
          }
          mem.sfence(ctx, c);
        }
        // Cancel speculative allocations (idempotent membership check).
        for (uint64_t i = 0; i < n_alloc; i++) {
          const uint64_t word = slot.alloc_log[i];
          if (checked && mem.media_faulted(&slot.alloc_log[i], 8)) {
            rep.records_media_faulted++;
            continue;
          }
          if (!AllocLogOp::tag_matches(word, epoch)) {
            rep.records_stale++;
            continue;
          }
          if (checked && !AllocLogOp::crc_ok(word)) {
            rep.records_torn++;
            continue;
          }
          if (AllocLogOp::op_of(word) == AllocLogOp::kAlloc) {
            if (!valid_heap_off(AllocLogOp::off_of(word))) {
              rep.records_invalid++;
              continue;
            }
            alloc_.free_block_if_absent(ctx, c, pool_.at(AllocLogOp::off_of(word)));
            rep.allocs_cancelled++;
          }
        }
      }
    }

    // Quiesce the slot for the next epoch (skipping tag 0 — reserved for
    // zeroed log memory — with a durable full-log wipe at the wrap, same
    // rule as Tx::retire_logs).
    const uint64_t epoch = TxSlotHeader::epoch_of(slot.header->status);
    uint64_t next_epoch = epoch + 1;
    if ((next_epoch & LogEntry::kTagMask) == 0) {
      zero_slot_logs(pool_, ctx, c, slot);
      next_epoch++;
    }
    mem.store_word(ctx, c, &slot.header->log_count, 0, nvm::Space::kLog);
    mem.store_word(ctx, c, &slot.header->alloc_count, 0, nvm::Space::kLog);
    mem.store_word(ctx, c, &slot.header->status,
                   TxSlotHeader::make(next_epoch, TxSlotHeader::kIdle), nvm::Space::kLog);
    mem.clwb(ctx, c, slot.header);
    mem.sfence(ctx, c);

    // Refresh the live descriptor: epoch cache, counts, and the DRAM view
    // of the segment chain (the crash may have torn a chain-link install
    // the descriptor still caches, or recovery may run on a descriptor
    // that never saw the chain).
    txs_[static_cast<size_t>(w)]->epoch_ = next_epoch;
    txs_[static_cast<size_t>(w)]->n_log_ = 0;
    txs_[static_cast<size_t>(w)]->n_alloc_log_ = 0;
    txs_[static_cast<size_t>(w)]->slot_.attach_segments(pool_);
  }
  return rep;
}

}  // namespace ptm
