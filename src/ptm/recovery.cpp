// Startup / post-crash recovery.
//
// Invariant provided to applications: after recover(),
//  * every transaction whose commit record persisted is fully applied
//    (redo logs are replayed; undo-mode commits were already in place);
//  * every transaction without a persisted commit record has no effect
//    (undo logs are rolled back; redo logs and speculative allocations are
//    discarded).
// This is the "linearizable durability" contract ([10]) the paper's PTMs
// provide. Replay is idempotent, so a crash during recovery is safe
// (tests/test_crash.cpp's CrashDuringRecoveryIsSafe sweeps a crash through
// every persistence event of a recovery replay to pin this).
//
// Defensive posture: nothing persisted is trusted until validated.
// Counts are clamped to attached capacity, segment links are bounds- and
// magic-checked (SlotLayout::attach_segments), record offsets must land
// in a writable data region (root area or heap — never the pool header
// or the log slots themselves, which a corrupt record could otherwise
// scribble over), and on crash-sim configurations each record's CRC is
// verified (torn records are *detected*, not inferred) and poisoned
// lines reported by the media-fault model are refused.
//
// Repair-and-survive (SystemConfig::log_mirror): every sealed log line —
// slot headers, alloc-log words, redo/undo records, segment headers — has
// a same-sized replica on a distinct line, written *before* its primary
// inside the same flush+fence batch. When a primary copy fails its media
// or CRC screen, recovery falls back to the replica, rewrites the primary
// in place (durably, then clears the media fault — crash-idempotent), and
// counts it in records_repaired. Damage with no usable copy left is
// records_lost; under RecoveryPolicy::kSalvage the affected heap lines
// are quarantined in the allocator and the loss surfaced through
// Runtime::degraded(), under kFailStop recover() throws MediaLossError
// after the salvage pass completes. Everything recovery applied,
// repaired, or refused is tallied in the returned stats::RecoveryReport.
#include <algorithm>
#include <vector>

#include "ptm/runtime.h"
#include "util/crc32.h"

namespace ptm {
namespace {

/// Why a record (or header) copy was rejected, in screening order: a
/// poisoned line masquerades as anything, so media is attributed first.
enum class Verdict : uint8_t { kOk, kStale, kTorn, kMedia, kInvalid };

}  // namespace

stats::RecoveryReport Runtime::recover(sim::ExecContext& ctx) {
  // All speculation state is volatile and died with the crash.
  orecs_.reset();
  degraded_ = stats::DegradedReport{};
  // The epoch queue is volatile too: every published-but-unacked member
  // died with its fiber, and its slot's persistent image alone decides its
  // fate below — exactly the per-transaction crash cases, so the replay
  // and rollback paths need no epoch-specific logic.
  if (epochs_) epochs_->reset();
  // Containment verdicts (leases, quarantine flags, reclaim guards) are
  // volatile online state; after a power failure recovery owns every slot.
  if (containment_) containment_->reset();

  nvm::Memory& mem = pool_.mem();
  stats::TxCounters* c = nullptr;  // recovery is not part of measured runs
  stats::RecoveryReport rep;
  rep.mirror_enabled = pool_.config().log_mirror;

  // CRC sealing and media-fault injection only exist on crash-sim
  // configurations; on performance configurations the crc fields are zero
  // by construction and must not be checked.
  const bool checked = pool_.config().crash_sim;
  rep.media_faults = checked ? mem.media_fault_count() : 0;

  // Writable data regions: the application root area and the persistent
  // heap. A record pointing anywhere else (pool header, worker-meta/log
  // slots, out of bounds, misaligned) is corrupt — applying it could
  // destroy the very metadata recovery is walking.
  const uint64_t meta_lo = pool_.header()->meta_off;
  const uint64_t heap_lo = pool_.header()->heap_off;
  const uint64_t pool_size = pool_.size();
  auto valid_data_off = [&](uint64_t off) {
    if ((off & 7) != 0 || off + 8 > pool_size) return false;
    const bool in_root = off >= nvm::Pool::kHeaderBytes && off < meta_lo;
    const bool in_heap = off >= heap_lo;
    return in_root || in_heap;
  };
  auto valid_heap_off = [&](uint64_t off) {
    return (off & 7) == 0 && off >= heap_lo && off + 8 <= pool_size;
  };

  for (int w = 0; w < pool_.config().max_workers; w++) {
    SlotLayout slot = SlotLayout::carve(pool_.worker_meta(w), pool_.worker_meta_bytes(),
                                        pool_.config().log_mirror);
    rep.slots_scanned++;

    // Per-slot damage bookkeeping. Media faults repaired at record
    // granularity are cleared only after every record sharing the line has
    // been screened (clearing early would let the line's remaining
    // scrambled records dodge the media screen and mis-classify as stale).
    bool slot_lost = false;
    std::vector<uint64_t> repaired_lines;

    auto bucket = [&](Verdict v) {
      switch (v) {
        case Verdict::kMedia: rep.records_media_faulted++; break;
        case Verdict::kTorn: rep.records_torn++; break;
        case Verdict::kInvalid: rep.records_invalid++; break;
        default: break;
      }
    };

    // ---- header health -------------------------------------------------
    //
    // The header line carries state, counts and epoch: with it gone,
    // neither replay nor rollback is possible. A mirrored slot keeps a
    // full sealed replica (own CRC) one line over; the replica was made
    // durable before every primary seal it covers, so whenever the
    // primary fails its screen an intact replica is authoritative.
    bool header_lost = false;
    if (checked) {
      const bool p_media = mem.media_faulted(slot.header, sizeof(TxSlotHeader));
      const bool p_torn = !p_media && slot.mirrored && !slot_header_crc_ok(*slot.header);
      if (p_media || p_torn) {
        bool fixed = false;
        if (slot.mirrored && !mem.media_faulted(slot.mirror_header, sizeof(TxSlotHeader)) &&
            slot_header_crc_ok(*slot.mirror_header)) {
          mem.store_bytes(ctx, c, slot.header, slot.mirror_header, sizeof(TxSlotHeader),
                          nvm::Space::kLog);
          mem.clwb(ctx, c, slot.header);
          mem.sfence(ctx, c);
          mem.repair_media_fault(mem.line_of(slot.header));
          rep.records_damaged++;
          rep.records_repaired++;
          fixed = true;
        }
        if (!fixed && p_media) {
          // No usable copy of the header: the slot's state is unknowable.
          header_lost = true;
          rep.records_media_faulted++;
          rep.records_damaged++;
          rep.records_lost++;
          slot_lost = true;
        }
        // !fixed && p_torn (no media): both copies unsealed. That is an
        // in-flight image from before mirroring sealed this slot (or a
        // never-used fresh slot, whose all-zero header fails the CRC by
        // design) — the primary is exactly as trustworthy as it was
        // pre-mirror, so proceed with it.
      }
    }

    if (header_lost) {
      if (slot.mirrored) {
        // Rebuild both copies from zero so no scrambled residue (chain
        // links, counts) survives into the resealed header, then retire
        // the media faults: the lines now hold known-good bytes.
        static const TxSlotHeader kZeroHdr{};
        mem.store_bytes(ctx, c, slot.header, &kZeroHdr, sizeof(TxSlotHeader), nvm::Space::kLog);
        mem.store_bytes(ctx, c, slot.mirror_header, &kZeroHdr, sizeof(TxSlotHeader),
                        nvm::Space::kLog);
        mem.clwb(ctx, c, slot.header);
        mem.clwb(ctx, c, slot.mirror_header);
        mem.sfence(ctx, c);
        mem.repair_media_fault(mem.line_of(slot.header));
        mem.repair_media_fault(mem.line_of(slot.mirror_header));
      }
      // Fall through to the quiesce below, which rebuilds the header as an
      // empty IDLE slot (epoch continuity does not matter — any surviving
      // records become stale debris for the next epoch).
    } else {
      // Rebuild the overflow-segment chain from its persisted links — the
      // crashed transaction's log may extend past the in-slot array. On a
      // mirrored slot a damaged segment *header* is repaired in place from
      // its replica instead of truncating the chain.
      uint64_t seg_repairs = 0;
      rep.segment_links_truncated += slot.attach_segments(pool_, &ctx, &seg_repairs);
      rep.records_damaged += seg_repairs;
      rep.records_repaired += seg_repairs;
      const uint64_t status = slot.header->status;
      const uint64_t state = TxSlotHeader::state_of(status);
      const uint64_t epoch = TxSlotHeader::epoch_of(status);
      // Clamp the persisted counts: a corrupt count must not walk past the
      // log arrays (per-record tags/crcs still screen what is inside).
      const uint64_t n_log = std::min<uint64_t>(slot.header->log_count, slot.total_capacity);
      const uint64_t n_alloc =
          std::min<uint64_t>(slot.header->alloc_count, slot.alloc_log_cap);
      const auto algo = static_cast<Algo>(slot.header->algo);

      auto classify = [&](const LogEntry* e) -> Verdict {
        if (checked && mem.media_faulted(e, sizeof(LogEntry))) return Verdict::kMedia;
        if (!LogEntry::tag_matches(e->off, epoch)) return Verdict::kStale;
        if (checked && !LogEntry::crc_ok(e->off, e->val)) return Verdict::kTorn;
        if (!valid_data_off(LogEntry::offset_of(e->off))) return Verdict::kInvalid;
        return Verdict::kOk;
      };

      // Validate one write-log record; returns nullptr when it must not be
      // applied. A primary that fails any non-stale screen falls back to
      // its mirror copy: an intact mirror both supplies the record and is
      // copied over the primary (durably, then the media fault is
      // retired), so the next recovery sees a healthy primary.
      //
      // Loss semantics per `committed`: in a COMMITTED slot every sealed
      // record is durable state, so any non-stale rejection with no usable
      // copy is a loss; in an ACTIVE undo slot only media damage is — a
      // torn record was never fence-ordered, which also means its in-place
      // store never executed, so *skipping* it is the correct rollback.
      auto screen_entry = [&](uint64_t i, bool committed) -> const LogEntry* {
        LogEntry* e = slot.entry_at(i);
        const Verdict pv = classify(e);
        if (pv == Verdict::kOk) return e;
        if (pv == Verdict::kStale) {
          rep.records_stale++;  // ordinary partial-persistence debris
          return nullptr;
        }
        rep.records_damaged++;
        bucket(pv);
        Verdict mv = Verdict::kInvalid;
        if (slot.mirrored) {
          const LogEntry* m = slot.mirror_entry_at(i);
          mv = classify(m);
          if (mv == Verdict::kOk) {
            mem.store_word(ctx, c, &e->off, m->off, nvm::Space::kLog);
            mem.store_word(ctx, c, &e->val, m->val, nvm::Space::kLog);
            mem.clwb(ctx, c, e);
            mem.sfence(ctx, c);
            if (pv == Verdict::kMedia) repaired_lines.push_back(mem.line_of(e));
            rep.records_repaired++;
            return e;
          }
        }
        // No usable copy left. The replica record is stored before the
        // primary and rides the same flush/fence batch, so in an ACTIVE
        // undo slot a replica that is stale or torn proves the record's
        // ordering fence never completed — which means the in-place store
        // it guards never executed, and skipping it is the correct
        // rollback, exactly as for a torn primary. Only when the replica
        // is itself media-damaged (or sealed garbage with a bad offset) is
        // the record's fate unknowable, and pessimism counts it lost.
        bool lost;
        if (!slot.mirrored) {
          lost = pv == Verdict::kMedia;
        } else if (committed) {
          lost = true;
        } else {
          lost = pv == Verdict::kMedia &&
                 (mv == Verdict::kMedia || mv == Verdict::kInvalid);
        }
        if (lost) {
          rep.records_lost++;
          degraded_.lost_records++;
          slot_lost = true;
          // Best-effort quarantine of the record's home line, from
          // whichever copy still names a plausible heap target: the word
          // there may hold a partial write-back (committed redo) or an
          // un-rolled-back speculative store (active undo).
          uint64_t tgt = 0;
          if (LogEntry::tag_matches(e->off, epoch) &&
              valid_heap_off(LogEntry::offset_of(e->off))) {
            tgt = LogEntry::offset_of(e->off);
          } else if (slot.mirrored) {
            const LogEntry* m = slot.mirror_entry_at(i);
            if (LogEntry::tag_matches(m->off, epoch) &&
                valid_heap_off(LogEntry::offset_of(m->off))) {
              tgt = LogEntry::offset_of(m->off);
            }
          }
          if (tgt != 0) alloc_.quarantine(pool_.at(tgt), 8);
        }
        return nullptr;
      };

      // Validate one alloc-log word; returns 0 when it must not be
      // applied (a sealed word is never 0: its tag bits are nonzero).
      // Same mirror fallback as write records. A word with no usable copy
      // is a bounded storage leak (a cancel or free that cannot run), not
      // data loss: committed data never depends on an alloc-log word.
      auto screen_alloc = [&](uint64_t i) -> uint64_t {
        uint64_t* ap = &slot.alloc_log[i];
        auto cls = [&](uint64_t word, const uint64_t* addr) -> Verdict {
          if (checked && mem.media_faulted(addr, 8)) return Verdict::kMedia;
          if (!AllocLogOp::tag_matches(word, epoch)) return Verdict::kStale;
          if (checked && !AllocLogOp::crc_ok(word)) return Verdict::kTorn;
          return Verdict::kOk;
        };
        const Verdict pv = cls(*ap, ap);
        if (pv == Verdict::kOk) return *ap;
        if (pv == Verdict::kStale) {
          rep.records_stale++;
          return 0;
        }
        rep.records_damaged++;
        bucket(pv);
        if (slot.mirrored) {
          const uint64_t* mp = &slot.mirror_alloc_log[i];
          if (cls(*mp, mp) == Verdict::kOk) {
            mem.store_word(ctx, c, ap, *mp, nvm::Space::kLog);
            mem.clwb(ctx, c, ap);
            mem.sfence(ctx, c);
            if (pv == Verdict::kMedia) repaired_lines.push_back(mem.line_of(ap));
            rep.records_repaired++;
            return *ap;
          }
        }
        return 0;
      };

      if (state == TxSlotHeader::kCommitted) {
        rep.slots_committed++;
        if (algo == Algo::kOrecLazy) {
          // Replay the redo log forward; write-back may have been partial.
          for (uint64_t i = 0; i < n_log; i++) {
            const LogEntry* e = screen_entry(i, /*committed=*/true);
            if (e == nullptr) continue;
            auto* home = static_cast<uint64_t*>(pool_.at(LogEntry::offset_of(e->off)));
            mem.store_word(ctx, c, home, e->val, nvm::Space::kData);
            mem.clwb(ctx, c, home);
            rep.records_replayed++;
          }
          mem.sfence(ctx, c);
          if (checked && n_log > 0) {
            // Cross-check the whole committed record set against the
            // checksum the committer sealed into the header — *after*
            // screening, so mirror-repaired records count as intact. A
            // mismatch now means the log no longer matches what was
            // committed and no copy could put it back (media damage,
            // truncated chain): per-record screening still replayed every
            // provably-good record, but the damage is reported rather
            // than silently absorbed.
            uint32_t lc = 0;
            for (uint64_t i = 0; i < n_log; i++) {
              const LogEntry* e = slot.entry_at(i);
              lc = util::crc32c_u64(e->val, util::crc32c_u64(e->off, lc));
            }
            if (lc != static_cast<uint32_t>(slot.header->pad[SlotLayout::kLogCrcPad])) {
              rep.log_crc_mismatches++;
            }
          }
        }
        // Committed transactions' deferred frees must take effect.
        for (uint64_t i = 0; i < n_alloc; i++) {
          const uint64_t word = screen_alloc(i);
          if (word == 0) continue;
          if (AllocLogOp::op_of(word) == AllocLogOp::kFree) {
            if (!valid_heap_off(AllocLogOp::off_of(word))) {
              rep.records_invalid++;
              continue;
            }
            alloc_.free_block_if_absent(ctx, c, pool_.at(AllocLogOp::off_of(word)));
            rep.frees_applied++;
          }
        }
      } else {
        // IDLE or ACTIVE: the transaction did not commit.
        if (state == TxSlotHeader::kActive && algo == Algo::kOrecEager) {
          rep.slots_rolled_back++;
          // Roll back in-place writes, newest first. A record that fails
          // its crc was never fence-ordered before the crash — which also
          // means its in-place store never executed, so *skipping* it is
          // the correct rollback, not a loss.
          for (uint64_t i = n_log; i-- > 0;) {
            const LogEntry* e = screen_entry(i, /*committed=*/false);
            if (e == nullptr) continue;
            auto* home = static_cast<uint64_t*>(pool_.at(LogEntry::offset_of(e->off)));
            mem.store_word(ctx, c, home, e->val, nvm::Space::kData);
            mem.clwb(ctx, c, home);
            rep.records_replayed++;
          }
          mem.sfence(ctx, c);
        }
        // Cancel speculative allocations (idempotent membership check).
        for (uint64_t i = 0; i < n_alloc; i++) {
          const uint64_t word = screen_alloc(i);
          if (word == 0) continue;
          if (AllocLogOp::op_of(word) == AllocLogOp::kAlloc) {
            if (!valid_heap_off(AllocLogOp::off_of(word))) {
              rep.records_invalid++;
              continue;
            }
            alloc_.free_block_if_absent(ctx, c, pool_.at(AllocLogOp::off_of(word)));
            rep.allocs_cancelled++;
          }
        }
      }
    }

    // Every record sharing a repaired line has been screened by now; the
    // line's bytes are fully reconstructed, so the media fault retires.
    for (const uint64_t line : repaired_lines) mem.repair_media_fault(line);
    if (slot_lost) degraded_.lost_txs++;

    // Quiesce the slot for the next epoch (skipping tag 0 — reserved for
    // zeroed log memory — with a durable full-log wipe at the wrap, same
    // rule as Tx::retire_logs).
    const uint64_t epoch = TxSlotHeader::epoch_of(slot.header->status);
    uint64_t next_epoch = epoch + 1;
    if ((next_epoch & LogEntry::kTagMask) == 0) {
      zero_slot_logs(pool_, ctx, c, slot);
      next_epoch++;
    }
    mem.store_word(ctx, c, &slot.header->log_count, 0, nvm::Space::kLog);
    mem.store_word(ctx, c, &slot.header->alloc_count, 0, nvm::Space::kLog);
    mem.store_word(ctx, c, &slot.header->status,
                   TxSlotHeader::make(next_epoch, TxSlotHeader::kIdle), nvm::Space::kLog);
    // Reseal both copies over the quiesced image so the next recovery's
    // header CRC screen passes.
    seal_and_mirror_header(pool_, ctx, c, slot,
                           TxSlotHeader::make(next_epoch, TxSlotHeader::kIdle));
    seal_primary_header_crc(pool_, ctx, c, slot);
    mem.clwb(ctx, c, slot.header);
    mem.sfence(ctx, c);

    // Refresh the live descriptor: epoch cache, counts, and the DRAM view
    // of the segment chain (the crash may have torn a chain-link install
    // the descriptor still caches, or recovery may run on a descriptor
    // that never saw the chain).
    txs_[static_cast<size_t>(w)]->epoch_ = next_epoch;
    txs_[static_cast<size_t>(w)]->n_log_ = 0;
    txs_[static_cast<size_t>(w)]->n_alloc_log_ = 0;
    txs_[static_cast<size_t>(w)]->slot_.attach_segments(pool_);
  }

  degraded_.degraded = degraded_.lost_records > 0 || degraded_.lost_txs > 0;
  degraded_.quarantined_bytes = alloc_.quarantined_bytes();
  degraded_.quarantined_blocks = alloc_.quarantined_blocks();
  if (rep.records_lost > 0 &&
      pool_.config().recovery_policy == nvm::RecoveryPolicy::kFailStop) {
    // Fail loud, but only after the full salvage pass: the pool is left in
    // the same repaired/quarantined state kSalvage would leave, so the
    // caller can still read Runtime::degraded() for the post-mortem.
    throw MediaLossError("recovery: committed state lost with no usable copy");
  }
  return rep;
}

}  // namespace ptm
