// Startup / post-crash recovery.
//
// Invariant provided to applications: after recover(),
//  * every transaction whose commit record persisted is fully applied
//    (redo logs are replayed; undo-mode commits were already in place);
//  * every transaction without a persisted commit record has no effect
//    (undo logs are rolled back; redo logs and speculative allocations are
//    discarded).
// This is the "linearizable durability" contract ([10]) the paper's PTMs
// provide. Replay is idempotent, so a crash during recovery is safe.
#include <algorithm>

#include "ptm/runtime.h"

namespace ptm {

void Runtime::recover(sim::ExecContext& ctx) {
  // All speculation state is volatile and died with the crash.
  orecs_.reset();

  nvm::Memory& mem = pool_.mem();
  stats::TxCounters* c = nullptr;  // recovery is not part of measured runs

  for (int w = 0; w < pool_.config().max_workers; w++) {
    SlotLayout slot = SlotLayout::carve(pool_.worker_meta(w), pool_.worker_meta_bytes());
    // Rebuild the overflow-segment chain from its persisted links — the
    // crashed transaction's log may extend past the in-slot array.
    slot.attach_segments(pool_);
    const uint64_t status = slot.header->status;
    const uint64_t state = TxSlotHeader::state_of(status);
    const uint64_t epoch = TxSlotHeader::epoch_of(status);
    // Clamp the persisted counts: a corrupt count must not walk past the
    // log arrays (epoch tags already reject any stale records inside).
    const uint64_t n_log = std::min<uint64_t>(slot.header->log_count, slot.total_capacity);
    const uint64_t n_alloc = std::min<uint64_t>(slot.header->alloc_count, slot.alloc_log_cap);
    const auto algo = static_cast<Algo>(slot.header->algo);

    if (state == TxSlotHeader::kCommitted) {
      if (algo == Algo::kOrecLazy) {
        // Replay the redo log forward; write-back may have been partial.
        for (uint64_t i = 0; i < n_log; i++) {
          // Skip records whose epoch tag is stale (partially persisted log).
          const LogEntry* e = slot.entry_at(i);
          if (!LogEntry::tag_matches(e->off, epoch)) continue;
          auto* home = static_cast<uint64_t*>(pool_.at(LogEntry::offset_of(e->off)));
          mem.store_word(ctx, c, home, e->val, nvm::Space::kData);
          mem.clwb(ctx, c, home);
        }
        mem.sfence(ctx, c);
      }
      // Committed transactions' deferred frees must take effect.
      for (uint64_t i = 0; i < n_alloc; i++) {
        const uint64_t word = slot.alloc_log[i];
        if (!AllocLogOp::tag_matches(word, epoch)) continue;
        if (AllocLogOp::op_of(word) == AllocLogOp::kFree) {
          alloc_.free_block_if_absent(ctx, c, pool_.at(AllocLogOp::off_of(word)));
        }
      }
    } else {
      // IDLE or ACTIVE: the transaction did not commit.
      if (state == TxSlotHeader::kActive && algo == Algo::kOrecEager) {
        // Roll back in-place writes, newest first.
        for (uint64_t i = n_log; i-- > 0;) {
          const LogEntry* e = slot.entry_at(i);
          if (!LogEntry::tag_matches(e->off, epoch)) continue;
          auto* home = static_cast<uint64_t*>(pool_.at(LogEntry::offset_of(e->off)));
          mem.store_word(ctx, c, home, e->val, nvm::Space::kData);
          mem.clwb(ctx, c, home);
        }
        mem.sfence(ctx, c);
      }
      // Cancel speculative allocations (idempotent membership check).
      for (uint64_t i = 0; i < n_alloc; i++) {
        const uint64_t word = slot.alloc_log[i];
        if (!AllocLogOp::tag_matches(word, epoch)) continue;
        if (AllocLogOp::op_of(word) == AllocLogOp::kAlloc) {
          alloc_.free_block_if_absent(ctx, c, pool_.at(AllocLogOp::off_of(word)));
        }
      }
    }

    // Quiesce the slot for the next epoch (skipping tag 0 — reserved for
    // zeroed log memory — with a durable full-log wipe at the wrap, same
    // rule as Tx::retire_logs).
    uint64_t next_epoch = epoch + 1;
    if ((next_epoch & LogEntry::kTagMask) == 0) {
      zero_slot_logs(pool_, ctx, c, slot);
      next_epoch++;
    }
    mem.store_word(ctx, c, &slot.header->log_count, 0, nvm::Space::kLog);
    mem.store_word(ctx, c, &slot.header->alloc_count, 0, nvm::Space::kLog);
    mem.store_word(ctx, c, &slot.header->status,
                   TxSlotHeader::make(next_epoch, TxSlotHeader::kIdle), nvm::Space::kLog);
    mem.clwb(ctx, c, slot.header);
    mem.sfence(ctx, c);

    // Refresh the live descriptor: epoch cache, counts, and the DRAM view
    // of the segment chain (the crash may have torn a chain-link install
    // the descriptor still caches, or recovery may run on a descriptor
    // that never saw the chain).
    txs_[static_cast<size_t>(w)]->epoch_ = next_epoch;
    txs_[static_cast<size_t>(w)]->n_log_ = 0;
    txs_[static_cast<size_t>(w)]->n_alloc_log_ = 0;
    txs_[static_cast<size_t>(w)]->slot_.attach_segments(pool_);
  }
}

}  // namespace ptm
