#include "ptm/tx.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "analysis/psan.h"
#include "ptm/backoff.h"
#include "ptm/containment.h"
#include "ptm/runtime.h"

namespace ptm {

const char* algo_name(Algo a) {
  return a == Algo::kOrecLazy ? "orec-lazy(redo)" : "orec-eager(undo)";
}
const char* algo_suffix(Algo a) { return a == Algo::kOrecLazy ? "R" : "U"; }

Tx::Tx(Runtime& rt, int worker)
    : rt_(&rt), worker_(worker), algo_(rt.algo()),
      rng_(0x74785eedull + static_cast<uint64_t>(worker) * 0x1234567ull) {
  nvm::Pool& pool = rt.pool();
  crc_logs_ = pool.config().crash_sim;
  psan_ = pool.mem().psan();
  slot_ = SlotLayout::carve(pool.worker_meta(worker), pool.worker_meta_bytes(),
                            pool.config().log_mirror);
  slot_.attach_segments(pool);
  cm_ = rt.containment();
  epoch_ = TxSlotHeader::epoch_of(slot_.header->status);
  // Tag 0 is reserved (zero-filled log memory must never alias a live
  // record); a fresh pool starts at epoch 0, so step past it. The durable
  // status catches up at the first retire_logs/recovery — until then the
  // slot shows an older IDLE epoch, which only makes stale records *more*
  // stale, never current.
  if ((epoch_ & LogEntry::kTagMask) == 0) epoch_++;
}

void Tx::begin() {
  stats::PhaseTimer pt(*ctx_, &c_->phases, stats::Phase::kBegin);
  // Containment lease: quarantine check + heartbeat + "in flight" mark,
  // before any speculative state exists. Throws FiberKill for a dead or
  // fenced descriptor — nothing below must run for a zombie.
  if (cm_) cm_->enter_tx(worker_, ctx_->now_ns());
  committed_hint_ = false;
  start_time_ = rt_->orecs().sample_clock();
  n_log_ = 0;
  n_alloc_log_ = 0;
  active_persisted_ = false;
  capacity_kind_ = CapacityKind::kNone;
  read_set_.clear();
  owned_.clear();
  dirty_.clear();
  windex_.clear();
  tx_allocs_.clear();
  tx_frees_.clear();
  ctx_->advance(static_cast<uint64_t>(rt_->pool().config().cost.tx_begin_ns));
  if (psan_) psan_->on_tx_begin(worker_);
  if (TxObserver* ob = rt_->observer()) ob->on_begin(worker_);
}

uint64_t Tx::read_word(const uint64_t* waddr) {
  c_->reads++;
  if (cm_) cm_->beat(worker_, ctx_->now_ns());
  stats::PhaseTimer pt(*ctx_, &c_->phases, stats::Phase::kRead);
  return algo_ == Algo::kOrecLazy ? lazy_read(waddr) : eager_read(waddr);
}

void Tx::write_word(uint64_t* waddr, uint64_t val) {
  assert(rt_->pool().contains(waddr) && "transactional write outside the pool");
  c_->writes++;
  if (cm_) cm_->beat(worker_, ctx_->now_ns());
  stats::PhaseTimer pt(*ctx_, &c_->phases, stats::Phase::kWrite);
  if (algo_ == Algo::kOrecLazy) {
    lazy_write(waddr, val);
  } else {
    eager_write(waddr, val);
  }
  // An aborting write throws before this point, so the shadow history only
  // records writes the algorithm accepted.
  if (TxObserver* ob = rt_->observer()) {
    ob->on_write(worker_, rt_->pool().offset_of(waddr), val);
  }
}

void Tx::read_bytes(const void* src, void* dst, size_t len) {
  const uintptr_t s = reinterpret_cast<uintptr_t>(src);
  auto* out = static_cast<char*>(dst);
  uintptr_t w = s & ~uintptr_t{7};
  size_t produced = 0;
  while (produced < len) {
    const uint64_t word = read_word(reinterpret_cast<const uint64_t*>(w));
    const size_t lo = (produced == 0) ? (s - w) : 0;
    const size_t take = std::min(size_t{8} - lo, len - produced);
    std::memcpy(out + produced, reinterpret_cast<const char*>(&word) + lo, take);
    produced += take;
    w += 8;
  }
}

void Tx::write_bytes(void* dst, const void* src, size_t len) {
  const uintptr_t d = reinterpret_cast<uintptr_t>(dst);
  const auto* in = static_cast<const char*>(src);
  uintptr_t w = d & ~uintptr_t{7};
  size_t consumed = 0;
  while (consumed < len) {
    const size_t lo = (consumed == 0) ? (d - w) : 0;
    const size_t take = std::min(size_t{8} - lo, len - consumed);
    uint64_t word;
    if (lo == 0 && take == 8) {
      std::memcpy(&word, in + consumed, 8);
    } else {
      // Partial word: merge with the current transactional value.
      word = read_word(reinterpret_cast<const uint64_t*>(w));
      std::memcpy(reinterpret_cast<char*>(&word) + lo, in + consumed, take);
    }
    write_word(reinterpret_cast<uint64_t*>(w), word);
    consumed += take;
    w += 8;
  }
}

void Tx::commit() {
  // kCommit records *successful* commits only: if the commit path aborts,
  // control unwinds past this record point and the attempt shows up in the
  // abort-cause counters / kAbortBackoff instead.
  const bool timed = stats::telemetry_enabled();
  const uint64_t t0 = timed ? ctx_->now_ns() : 0;
  commit_ticket_ = 0;
  if (algo_ == Algo::kOrecLazy) {
    lazy_commit();
  } else {
    eager_commit();
  }
  update_log_hwm();
  c_->commits++;
  attempt_ = 0;
  if (psan_) psan_->on_tx_end(worker_);
  if (TxObserver* ob = rt_->observer()) ob->on_commit(worker_, commit_ticket_);
  if (cm_) cm_->exit_tx(worker_);
  if (timed) c_->phases.record(stats::Phase::kCommit, ctx_->now_ns() - t0);
}

void Tx::handle_abort() {
  stats::PhaseTimer pt(*ctx_, &c_->phases, stats::Phase::kAbortBackoff);
  analysis::PhaseScope ps(psan_, worker_, stats::Phase::kAbortBackoff);
  if (algo_ == Algo::kOrecEager) {
    eager_rollback();
  } else {
    lazy_abort_cleanup();
  }
  cancel_allocs();
  if (psan_) psan_->on_tx_end(worker_);
  if (TxObserver* ob = rt_->observer()) ob->on_abort(worker_);
  // Clean again: the descriptor must not look reclaimable while the fiber
  // parks in backoff (a long capped backoff is slower than the lease).
  if (cm_) cm_->exit_tx(worker_);
  if (capacity_kind_ != CapacityKind::kNone) {
    // Capacity abort: grow the exhausted resource instead of backing off —
    // the retry cannot hit the same wall, so no separation in time is
    // needed, and growth failure must surface (CapacityError) rather than
    // spin. Rollback above already ran, so a throw leaves no orec held.
    grow_for_capacity();
    return;
  }
  // Exponential backoff, capped and jittered so a live retrier can never
  // outsleep the containment lease (policy and rng-sequence contract in
  // ptm/backoff.h).
  attempt_++;
  const auto base = static_cast<uint64_t>(rt_->pool().config().cost.backoff_base_ns);
  ctx_->advance(
      backoff_wait_ns(attempt_, base, rt_->pool().config().backoff_max_ns, rng_));
}

void Tx::mark_killed() {
  if (cm_) cm_->mark_dead(worker_);
}

void Tx::abort_tx(stats::AbortCause cause) {
  c_->aborts++;
  c_->aborts_by_cause[static_cast<size_t>(cause)]++;
  last_abort_cause_ = cause;
  throw AbortTx{};
}

void Tx::abort_and_retry() { abort_tx(stats::AbortCause::kExplicit); }

void Tx::capacity_abort(CapacityKind kind) {
  capacity_kind_ = kind;
  abort_tx(stats::AbortCause::kCapacity);
}

void Tx::grow_for_capacity() {
  const CapacityKind kind = capacity_kind_;
  capacity_kind_ = CapacityKind::kNone;
  switch (kind) {
    case CapacityKind::kNone:
      return;
    case CapacityKind::kAllocLog:
      // The alloc log is a fixed in-slot array (recovery depends on its
      // placement); it does not grow. 256 alloc/free ops per transaction
      // is a hard API limit.
      throw CapacityError("transaction exceeded the per-transaction alloc/free limit");
    case CapacityKind::kWriteIndex:
      if (!windex_.grow()) {
        throw CapacityError("transaction write set exceeded the write-index ceiling");
      }
      c_->log_growths++;
      return;
    case CapacityKind::kWriteLog:
      break;
  }

  if (slot_.segs.size() >= kMaxLogSegments) {
    throw CapacityError("transaction write set exceeded the log segment-chain ceiling");
  }
  // Double the slot's total log capacity with one overflow segment from the
  // persistent bump region (never freed — the chain is a durable upgrade of
  // this worker slot, reused by every later transaction and by recovery).
  const size_t add = slot_.total_capacity;
  nvm::Pool& pool = rt_->pool();
  nvm::Memory& mem = pool.mem();
  // A mirrored slot's segments carry a second header line and a second
  // record array: [hdr | mirror hdr | entries(add) | mirror entries(add)].
  const size_t copies = slot_.mirrored ? 2 : 1;
  const size_t seg_bytes = copies * (sizeof(LogSegment) + add * sizeof(LogEntry));
  LogSegment* seg;
  try {
    seg = static_cast<LogSegment*>(rt_->allocator().alloc_raw(*ctx_, c_, seg_bytes));
  } catch (const std::bad_alloc&) {
    throw CapacityError("persistent heap exhausted while growing the transaction log");
  }

  // Crash ordering: the segment header must be durable before any link to
  // it exists, so a recovered chain never follows a link into garbage.
  // (alloc_raw's bump memory is zero-filled, so the records need no init —
  // tag 0 never matches a live epoch.)
  const uint64_t flags = slot_.mirrored ? LogSegment::kFlagMirrored : 0;
  if (slot_.mirrored) {
    // Mirror header first, same fields, own line.
    LogSegment* rep = seg + 1;
    mem.store_word(*ctx_, c_, &rep->magic, LogSegment::kMagic, nvm::Space::kLog);
    mem.store_word(*ctx_, c_, &rep->next, 0, nvm::Space::kLog);
    mem.store_word(*ctx_, c_, &rep->capacity, add, nvm::Space::kLog);
    mem.store_word(*ctx_, c_, &rep->flags, flags, nvm::Space::kLog);
    mem.clwb(*ctx_, c_, rep);
  }
  mem.store_word(*ctx_, c_, &seg->magic, LogSegment::kMagic, nvm::Space::kLog);
  mem.store_word(*ctx_, c_, &seg->next, 0, nvm::Space::kLog);
  mem.store_word(*ctx_, c_, &seg->capacity, add, nvm::Space::kLog);
  if (flags != 0) mem.store_word(*ctx_, c_, &seg->flags, flags, nvm::Space::kLog);
  mem.clwb(*ctx_, c_, seg);
  mem.sfence(*ctx_, c_);

  // Now durably install the link (chain head in the slot header, or the
  // tail segment's `next`).
  const uint64_t link_word = SegPtr::make(pool.offset_of(seg), epoch_);
  uint64_t* link;
  if (slot_.segs.empty()) {
    link = &slot_.header->pad[SlotLayout::kChainPad];
    mem.store_word(*ctx_, c_, link, link_word, nvm::Space::kLog);
    sync_mirror_header();
  } else {
    LogSegment* tail = slot_.segs.back();
    if (tail->mirrored()) {
      mem.store_word(*ctx_, c_, &tail->mirror_header()->next, link_word, nvm::Space::kLog);
      mem.clwb(*ctx_, c_, tail->mirror_header());
    }
    link = &tail->next;
    mem.store_word(*ctx_, c_, link, link_word, nvm::Space::kLog);
  }
  mem.clwb(*ctx_, c_, link);
  mem.sfence(*ctx_, c_);

  slot_.segs.push_back(seg);
  slot_.seg_caps.push_back(add);
  slot_.total_capacity += add;

  // Media-routing hint: segment records are log traffic (PDRAM-Lite places
  // logs in DRAM).
  const uint64_t lo = mem.line_of(seg);
  const uint64_t hi = mem.line_of(reinterpret_cast<const char*>(seg) + seg_bytes - 1) + 1;
  mem.add_log_line_range(lo, hi);
  c_->log_growths++;
}

void* Tx::alloc(size_t n) {
  // Capacity check BEFORE the allocation: aborting after allocator().alloc
  // but before tx_allocs_.push_back would leak the block (cancel_allocs
  // only returns registered blocks).
  if (n_alloc_log_ >= slot_.alloc_log_cap) capacity_abort(CapacityKind::kAllocLog);
  void* p = rt_->allocator().alloc(*ctx_, c_, n);
  analysis::PhaseScope ps(psan_, worker_, stats::Phase::kLogAppend);
  const uint64_t off = rt_->pool().offset_of(p);
  uint64_t* entry = &slot_.alloc_log[n_alloc_log_];
  uint64_t word = AllocLogOp::make(off, AllocLogOp::kAlloc, epoch_);
  if (crc_logs_) word = AllocLogOp::seal(word);
  append_alloc_word(entry, word);
  tx_allocs_.push_back(p);
  return p;
}

void Tx::dealloc(void* p) {
  if (n_alloc_log_ >= slot_.alloc_log_cap) capacity_abort(CapacityKind::kAllocLog);
  analysis::PhaseScope ps(psan_, worker_, stats::Phase::kLogAppend);
  const uint64_t off = rt_->pool().offset_of(p);
  uint64_t* entry = &slot_.alloc_log[n_alloc_log_];
  uint64_t word = AllocLogOp::make(off, AllocLogOp::kFree, epoch_);
  if (crc_logs_) word = AllocLogOp::seal(word);
  append_alloc_word(entry, word);
  tx_frees_.push_back(p);
}

void Tx::append_alloc_word(uint64_t* entry, uint64_t word) {
  nvm::Memory& mem = rt_->pool().mem();
  if (slot_.mirrored) {
    uint64_t* m = &slot_.mirror_alloc_log[n_alloc_log_];
    mem.store_word(*ctx_, c_, m, word, nvm::Space::kLog);
    mem.clwb(*ctx_, c_, m);
  }
  mem.store_word(*ctx_, c_, entry, word, nvm::Space::kLog);
  n_alloc_log_++;
  mem.store_word(*ctx_, c_, &slot_.header->alloc_count, n_alloc_log_, nvm::Space::kLog);
  sync_mirror_header();
  mem.clwb(*ctx_, c_, entry);
  mem.clwb(*ctx_, c_, slot_.header);
  mem.sfence(*ctx_, c_);
}

void Tx::sync_mirror_header() {
  if (!slot_.mirrored) return;
  seal_and_mirror_header(rt_->pool(), *ctx_, c_, slot_, slot_.header->status);
  seal_primary_header_crc(rt_->pool(), *ctx_, c_, slot_);
}

void Tx::append_log(uint64_t off, uint64_t val) {
  if (n_log_ >= slot_.total_capacity) capacity_abort(CapacityKind::kWriteLog);
  stats::PhaseTimer pt(*ctx_, &c_->phases, stats::Phase::kLogAppend);
  nvm::Memory& mem = rt_->pool().mem();
  LogEntry* e = slot_.entry_at(n_log_);
  uint64_t packed = LogEntry::pack(epoch_, off);
  if (crc_logs_) packed = LogEntry::seal(packed, val);
  if (slot_.mirrored) {
    // Replica record first (program order) on its own line; it rides the
    // same flush/fence batch as the primary, so after any ack fence both
    // copies are durable.
    LogEntry* m = slot_.mirror_entry_at(n_log_);
    mem.store_word(*ctx_, c_, &m->off, packed, nvm::Space::kLog);
    mem.store_word(*ctx_, c_, &m->val, val, nvm::Space::kLog);
    c_->log_bytes += sizeof(LogEntry);
  }
  mem.store_word(*ctx_, c_, &e->off, packed, nvm::Space::kLog);
  mem.store_word(*ctx_, c_, &e->val, val, nvm::Space::kLog);
  n_log_++;
  c_->log_bytes += sizeof(LogEntry);
}

void Tx::persist_slot_header() {
  nvm::Memory& mem = rt_->pool().mem();
  mem.clwb(*ctx_, c_, slot_.header);
}

void Tx::persist_log_range(size_t first_entry, size_t n_entries) {
  persist_log_range_via(*ctx_, c_, first_entry, n_entries);
}

void Tx::persist_log_range_via(sim::ExecContext& ctx, stats::TxCounters* c,
                               size_t first_entry, size_t n_entries) {
  nvm::Memory& mem = rt_->pool().mem();
  // The linear record range may span the base log and several overflow
  // segments; flush each contiguous run separately. Mirror lines join the
  // same batch so the caller's fence makes both copies durable together.
  // Parameterized on the issuing context: the epoch leader flushes member
  // logs through its own WPQ (epoch.cpp).
  auto flush_runs = [&](bool mirror) {
    size_t first = first_entry;
    size_t left = n_entries;
    while (left > 0) {
      auto [run, run_cap] = mirror ? slot_.mirror_span_at(first) : slot_.span_at(first);
      assert(run != nullptr && "persist_log_range past total_capacity");
      const size_t n = std::min(left, run_cap);
      const char* lo = reinterpret_cast<const char*>(run);
      const char* hi = reinterpret_cast<const char*>(run + n) - 1;
      for (const char* p = reinterpret_cast<const char*>(
               reinterpret_cast<uintptr_t>(lo) & ~uintptr_t{63});
           p <= hi; p += nvm::Memory::kLineBytes) {
        mem.clwb(ctx, c, p);
      }
      first += n;
      left -= n;
    }
  };
  if (slot_.mirrored) flush_runs(/*mirror=*/true);
  flush_runs(/*mirror=*/false);
}

void Tx::release_owned(uint64_t version_word) {
  for (const OwnedOrec& o : owned_) {
    o.orec->store(version_word, std::memory_order_release);
  }
  owned_.clear();
}

void Tx::cancel_allocs() {
  for (void* p : tx_allocs_) {
    rt_->allocator().free_block(*ctx_, c_, p);
  }
  tx_allocs_.clear();
  tx_frees_.clear();
  if (n_alloc_log_ > 0) {
    nvm::Memory& mem = rt_->pool().mem();
    mem.store_word(*ctx_, c_, &slot_.header->alloc_count, 0, nvm::Space::kLog);
    n_alloc_log_ = 0;
    sync_mirror_header();
    mem.clwb(*ctx_, c_, slot_.header);
    mem.sfence(*ctx_, c_);
  }
}

void Tx::apply_frees() {
  for (void* p : tx_frees_) {
    rt_->allocator().free_block(*ctx_, c_, p);
  }
  tx_frees_.clear();
  tx_allocs_.clear();
}

void Tx::set_status(uint64_t state, bool fence) {
  nvm::Memory& mem = rt_->pool().mem();
  const uint64_t word = TxSlotHeader::make(epoch_, state);
  // Replica first (program order): the mirror header carries the new state
  // and its seal before the primary's status word changes, so at every
  // instant — and in particular at the commit seal — the mirror is at
  // least as new as the primary.
  if (slot_.mirrored) seal_and_mirror_header(rt_->pool(), *ctx_, c_, slot_, word);
  mem.store_word(*ctx_, c_, &slot_.header->status, word, nvm::Space::kLog);
  if (slot_.mirrored) seal_primary_header_crc(rt_->pool(), *ctx_, c_, slot_);
  mem.clwb(*ctx_, c_, slot_.header);
  if (fence) mem.sfence(*ctx_, c_);
}

void Tx::retire_logs() {
  // Ordering point: retiring the log (IDLE) forfeits the ability to redo/
  // undo, so every data line this transaction touched must already be
  // durable — otherwise a crash after the retire loses the update with no
  // log left to recover it from.
  psan_check_dirty_persisted(analysis::DiagKind::kMissingFlush,
                             "data must be durable before the log retires to IDLE");
  // All header fields share one cache line, so the counts and the IDLE
  // status persist together under set_status's flush+fence.
  nvm::Memory& mem = rt_->pool().mem();
  mem.store_word(*ctx_, c_, &slot_.header->log_count, 0, nvm::Space::kLog);
  mem.store_word(*ctx_, c_, &slot_.header->alloc_count, 0, nvm::Space::kLog);
  n_alloc_log_ = 0;
  epoch_++;
  if ((epoch_ & LogEntry::kTagMask) == 0) {
    // The 24-bit epoch tag wrapped: records written 2^24 epochs ago would
    // now tag-match again. Durably erase every leftover record before
    // entering the reused tag space, then skip tag 0 (reserved for zeroed
    // memory). Crash-safe at any point: the quiesce only zeroes retired
    // records, and until the status below persists the slot still shows
    // the pre-wrap epoch, for which zeroed logs are a valid (empty) state.
    zero_slot_logs(rt_->pool(), *ctx_, c_, slot_);
    epoch_++;
  }
  set_status(TxSlotHeader::kIdle, /*fence=*/true);
}

bool Tx::validate_read_set() const {
  const auto me = static_cast<uint32_t>(worker_);
  for (const auto& [orec, v1] : read_set_) {
    const uint64_t cur = orec->load(std::memory_order_acquire);
    if (cur == v1) continue;
    if (OrecTable::is_locked(cur) && OrecTable::owner_of(cur) == me) continue;
    return false;
  }
  return true;
}

void Tx::psan_check_log_persisted(size_t first_entry, size_t n_entries,
                                  analysis::DiagKind kind, const char* what) {
  if (!psan_ || n_entries == 0) return;
  nvm::Memory& mem = rt_->pool().mem();
  // Same contiguous-run walk as persist_log_range: the record range may
  // span the base log and overflow segments.
  while (n_entries > 0) {
    auto [run, run_cap] = slot_.span_at(first_entry);
    assert(run != nullptr && "psan_check_log_persisted past total_capacity");
    const size_t n = std::min(n_entries, run_cap);
    mem.psan_check_persisted(*ctx_, run, n * sizeof(LogEntry), kind, what);
    first_entry += n;
    n_entries -= n;
  }
}

void Tx::psan_check_header_persisted(analysis::DiagKind kind, const char* what) {
  if (!psan_) return;
  rt_->pool().mem().psan_check_persisted(*ctx_, slot_.header, sizeof(TxSlotHeader),
                                         kind, what);
}

void Tx::psan_check_mirror_log_persisted(size_t first_entry, size_t n_entries,
                                         analysis::DiagKind kind, const char* what) {
  if (!psan_ || !slot_.mirrored || n_entries == 0) return;
  nvm::Memory& mem = rt_->pool().mem();
  while (n_entries > 0) {
    auto [run, run_cap] = slot_.mirror_span_at(first_entry);
    assert(run != nullptr && "psan_check_mirror_log_persisted past total_capacity");
    const size_t n = std::min(n_entries, run_cap);
    mem.psan_check_persisted(*ctx_, run, n * sizeof(LogEntry), kind, what);
    first_entry += n;
    n_entries -= n;
  }
}

void Tx::psan_check_mirror_header_persisted(analysis::DiagKind kind, const char* what) {
  if (!psan_ || !slot_.mirrored) return;
  rt_->pool().mem().psan_check_persisted(*ctx_, slot_.mirror_header,
                                         sizeof(TxSlotHeader), kind, what);
}

void Tx::psan_check_dirty_persisted(analysis::DiagKind kind, const char* what) {
  if (!psan_) return;
  for (const uint64_t line : dirty_.lines()) {
    psan_->check_persisted(worker_, line, line, kind, what);
  }
}

void Tx::update_log_hwm() {
  const uint64_t lines = (n_log_ * sizeof(LogEntry) + nvm::Memory::kLineBytes - 1) /
                         nvm::Memory::kLineBytes;
  if (lines > c_->log_lines_hwm) c_->log_lines_hwm = lines;
}

}  // namespace ptm
