#include "ptm/runtime.h"

namespace ptm {

Runtime::Runtime(nvm::Pool& pool, Algo algo)
    : pool_(pool), algo_(algo), alloc_(pool),
      counters_(static_cast<size_t>(pool.config().max_workers)) {
  // Containment first: the Tx descriptors below capture the pointer, so it
  // must exist (or be definitively absent — the tx_timeout_ns == 0 purity
  // contract) before any of them is built.
  if (pool.config().tx_timeout_ns > 0) {
    containment_.reset(new ContainmentManager(*this, pool.config().tx_timeout_ns,
                                              pool.config().max_workers));
  }
  txs_.reserve(counters_.size());
  for (int w = 0; w < pool.config().max_workers; w++) {
    txs_.emplace_back(new Tx(*this, w));
  }
  if (pool.config().epoch_commit || EpochManager::env_enabled()) {
    epochs_.reset(new EpochManager(pool.config().epoch_max_txs,
                                   pool.config().epoch_max_ns,
                                   pool.config().max_workers));
    epochs_->set_containment(containment_.get());
  }
  // Safe memory reclamation: before the allocator threads a freed block
  // onto a free list (overwriting its first payload word), advance that
  // word's orec past every active snapshot, so concurrent transactions
  // still holding a pointer to the block abort instead of reading the link.
  alloc_.set_reclaim_hook([this](void* payload) {
    orecs_.for_addr(payload).store(OrecTable::version_word(orecs_.tick()),
                                   std::memory_order_release);
  });
}

void Runtime::reset_counters() {
  for (auto& c : counters_) c.reset();
}

uint64_t Runtime::debug_epoch(int worker) const {
  return txs_[static_cast<size_t>(worker)]->epoch_;
}

void Runtime::debug_set_epoch(sim::ExecContext& ctx, int worker, uint64_t epoch) {
  Tx& tx = *txs_[static_cast<size_t>(worker)];
  tx.epoch_ = epoch;
  nvm::Memory& mem = pool_.mem();
  mem.store_word(ctx, nullptr, &tx.slot_.header->status,
                 TxSlotHeader::make(epoch, TxSlotHeader::kIdle), nvm::Space::kLog);
  // Keep the replica header and both CRC seals in step (no-ops unmirrored).
  seal_and_mirror_header(pool_, ctx, nullptr, tx.slot_,
                         TxSlotHeader::make(epoch, TxSlotHeader::kIdle));
  seal_primary_header_crc(pool_, ctx, nullptr, tx.slot_);
  mem.clwb(ctx, nullptr, tx.slot_.header);
  mem.sfence(ctx, nullptr);
}

}  // namespace ptm
