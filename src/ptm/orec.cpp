#include "ptm/orec.h"

// Header-only; TU kept for build-list uniformity.
