// Epoch/group commit: the EpochManager protocol plus the Tx-side epoch
// paths for both algorithms. See epoch.h for the batch/fence design and
// docs/LOGGING.md for the ordering rules.
#include "ptm/epoch.h"

#include <algorithm>
#include <cstdlib>

#include "analysis/psan.h"
#include "ptm/containment.h"
#include "ptm/runtime.h"
#include "ptm/tx.h"
#include "util/crc32.h"

namespace ptm {

bool EpochManager::env_enabled() {
  static const bool on = [] {
    const char* s = std::getenv("REPRO_EPOCH");
    return s != nullptr && s[0] == '1';
  }();
  return on;
}

void EpochManager::commit(Tx& tx) {
  sim::ExecContext& ctx = *tx.ctx_;
  stats::TxCounters* c = tx.c_;
  const int me = tx.worker_;
  Member& m = members_[static_cast<size_t>(me)];
  m.tx = &tx;
  m.publish_ns = ctx.now_ns();
  m.state.store(MemberState::kQueued, std::memory_order_relaxed);
  m.inflight.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> g(mu_);
    queue_.push_back(&m);
    queued_.store(queue_.size(), std::memory_order_release);
  }

  stats::PhaseTimer wt(ctx, &c->phases, stats::Phase::kEpochWait);
  analysis::PhaseScope ps(tx.psan_, me, stats::Phase::kEpochWait);
  // Poll at a fraction of the age trigger: fine enough that an epoch never
  // overshoots its deadline by much, coarse enough that waiters don't
  // dominate the event schedule.
  const uint64_t poll = max_ns_ >= 4 ? max_ns_ / 4 : 1;
  try {
    for (;;) {
      // Heartbeat per poll so a parked waiter's lease stays fresh; throws
      // nvm::FiberKill if a reclaimer fenced this worker in the meantime
      // (inflight then stays set — the reclaimer owns the slot's fate).
      if (cm_ != nullptr) cm_->beat(me, ctx.now_ns());
      const MemberState st = m.state.load(std::memory_order_acquire);
      if (st == MemberState::kAcked) {
        m.inflight.store(false, std::memory_order_release);
        return;
      }
      if (st == MemberState::kCrashed) throw nvm::CrashPoint{};

      const bool by_size = queued_.load(std::memory_order_acquire) >= max_txs_;
      const bool by_age = ctx.now_ns() - m.publish_ns >= max_ns_;
      if ((by_size || by_age) && try_lead(me, ctx.now_ns())) {
        // Re-check under leadership: the previous leader may have acked
        // (or crashed) this member between the state load and the CAS.
        if (m.state.load(std::memory_order_acquire) == MemberState::kQueued) {
          try {
            drain(ctx, c, by_size);
          } catch (const nvm::FiberKill&) {
            // Killed while leading: keep leader_ = me. Survivors must see
            // the lease as held-but-expired and steal it via try_lead() —
            // releasing here would let them barge into a half-drained
            // batch without the takeover bookkeeping.
            throw;
          } catch (...) {
            leader_.store(-1, std::memory_order_release);
            throw;
          }
        }
        leader_.store(-1, std::memory_order_release);
        continue;  // the drain decided this member's state; re-check it
      }
      // DES rule: every wait charges simulated time (and yields under the
      // engine) — a waiter must never spin without advancing the clock.
      ctx.advance(poll);
    }
  } catch (const nvm::CrashPoint&) {
    // Power failure: the whole volatile runtime is torn down and reset();
    // no reclaimer will ever inspect this member, so clear the mark here
    // and keep the non-crash invariant (inflight == fate undecided) tight.
    m.inflight.store(false, std::memory_order_release);
    throw;
  }
  // nvm::FiberKill (and anything else) propagates with inflight still set.
}

bool EpochManager::try_lead(int me, uint64_t now) {
  int cur = leader_.load(std::memory_order_acquire);
  if (cur == -1 &&
      leader_.compare_exchange_strong(cur, me, std::memory_order_acq_rel)) {
    return true;
  }
  if (cur == me) return true;  // defensive: never deadlock on our own lease
  if (cm_ != nullptr && cur >= 0 && cm_->stale(cur, now)) {
    // The leader's lease expired (it is dead, or parked in a stall fault).
    // Fence it so it can never issue another store if it wakes, then take
    // over; the staged batch re-runs from batch A.
    if (leader_.compare_exchange_strong(cur, me, std::memory_order_acq_rel)) {
      cm_->note_takeover(cur);
      return true;
    }
  }
  return false;
}

void EpochManager::drain(sim::ExecContext& ctx, stats::TxCounters* c,
                         bool why_size) {
  const int self = ctx.worker_id();
  std::vector<Member*> batch;
  {
    std::lock_guard<std::mutex> g(mu_);
    // Stage the queue behind whatever a dead predecessor left in
    // draining_. Re-running the A/B/C fence batches over members the dead
    // leader already flushed is idempotent — the stores rewrite identical
    // values and the fences re-cover them — so a takeover restarts from
    // batch A without violating the three-batch ordering.
    for (Member* m : queue_) draining_.push_back(m);
    queue_.clear();
    queued_.store(0, std::memory_order_release);
    batch = draining_;
  }
  if (batch.empty()) return;

  nvm::Memory& mem = batch.front()->tx->rt_->pool().mem();
  stats::PhaseTimer dt(ctx, c != nullptr ? &c->phases : nullptr,
                       stats::Phase::kEpochDrain);
  analysis::PhaseScope psc(batch.front()->tx->psan_, self,
                           stats::Phase::kEpochDrain);

  // Containment guard, checked before every member in every batch: a
  // leader that lost its lease to a takeover must die before issuing
  // another store — a deposed leader and its successor writing the same
  // headers concurrently would corrupt slots the successor already acked.
  const auto guard = [&] {
    if (cm_ == nullptr) return;
    cm_->beat(self, ctx.now_ns());
    if (leader_.load(std::memory_order_acquire) != self) {
      mem.drain_worker_pending(self);
      throw nvm::FiberKill{self};
    }
  };

  try {
    // Batch A — member payloads: every member's redo records + sealed
    // header (lazy) or in-place dirty lines (eager), flushed through the
    // LEADER's WPQ, then one fence for the whole epoch. Members only
    // stored; the fence below is the first ordering point they share.
    bool flushed = false;
    for (Member* m : batch) {
      guard();
      flushed |= m->tx->epoch_flush_payload(ctx, c);
    }
    if (flushed) mem.sfence(ctx, c);
    for (Member* m : batch) m->tx->epoch_check_payload_persisted();

    // Batch B — mirror commit marks (log_mirror only), in their own
    // fence-delimited batch per the mirror commit rule: after the payload
    // fence, before any primary seal, never sharing either batch.
    bool mirrored = false;
    for (Member* m : batch) {
      guard();
      mirrored |= m->tx->epoch_mirror_commit(ctx, c);
    }
    if (mirrored) {
      mem.sfence(ctx, c);
      for (Member* m : batch) m->tx->epoch_check_mirror_persisted();
    }

    // Batch C — primary COMMITTED statuses for every member, one fence.
    for (Member* m : batch) {
      guard();
      m->tx->epoch_flip_status(ctx, c);
    }
    guard();
    mem.sfence(ctx, c);
    // ---- durable commit point for the whole epoch ----
  } catch (const nvm::FiberKill&) {
    // The leader died (or was deposed) mid-drain. Nothing was acked and
    // the batch stays staged in draining_; a successor steals the expired
    // lease and re-runs the fence batches from scratch.
    throw;
  } catch (...) {
    // A crash point froze the pool mid-drain: no member of this batch was
    // acked, so every one must propagate the crash instead of finishing a
    // commit whose durability was never established. Recovery decides
    // their fate from the persistent image alone.
    stats_.closed_by_crash++;
    for (Member* m : batch) {
      m->state.store(MemberState::kCrashed, std::memory_order_release);
    }
    std::lock_guard<std::mutex> g(mu_);
    draining_.clear();
    throw;
  }

  stats_.epochs++;
  stats_.member_txs += batch.size();
  if (why_size) {
    stats_.closed_by_size++;
  } else {
    stats_.closed_by_age++;
  }
  stats_.size.record(batch.size());
  {
    std::lock_guard<std::mutex> g(mu_);
    draining_.clear();
  }
  for (Member* m : batch) {
    m->state.store(MemberState::kAcked, std::memory_order_release);
  }
}

int EpochManager::member_phase(int w) const {
  const Member& m = members_[static_cast<size_t>(w)];
  if (!m.inflight.load(std::memory_order_acquire)) return 0;
  switch (m.state.load(std::memory_order_acquire)) {
    case MemberState::kQueued: return 1;
    case MemberState::kAcked: return 2;
    case MemberState::kCrashed: return 3;
  }
  return 0;
}

bool EpochManager::help_close(sim::ExecContext& ctx, stats::TxCounters* c) {
  const int me = ctx.worker_id();
  if (!try_lead(me, ctx.now_ns())) return false;
  const bool by_size = queued_.load(std::memory_order_acquire) >= max_txs_;
  try {
    drain(ctx, c, by_size);
  } catch (const nvm::FiberKill&) {
    throw;  // keep leader_ = me for the next stale-lease steal
  } catch (...) {
    leader_.store(-1, std::memory_order_release);
    throw;
  }
  leader_.store(-1, std::memory_order_release);
  return true;
}

void EpochManager::forget(int w) {
  Member& m = members_[static_cast<size_t>(w)];
  std::lock_guard<std::mutex> g(mu_);
  const auto drop = [&](std::vector<Member*>& v) {
    v.erase(std::remove(v.begin(), v.end(), &m), v.end());
  };
  drop(queue_);
  drop(draining_);
  queued_.store(queue_.size(), std::memory_order_release);
  m.inflight.store(false, std::memory_order_release);
}

void EpochManager::reset() {
  std::lock_guard<std::mutex> g(mu_);
  queue_.clear();
  draining_.clear();
  queued_.store(0, std::memory_order_release);
  leader_.store(-1, std::memory_order_release);
  for (int w = 0; w < n_workers_; w++) {
    Member& m = members_[static_cast<size_t>(w)];
    m.state.store(MemberState::kQueued, std::memory_order_release);
    m.inflight.store(false, std::memory_order_release);
  }
}

stats::EpochStats EpochManager::snapshot() const {
  stats::EpochStats out = stats_;
  out.enabled = true;
  return out;
}

// ----- Tx epoch paths ----------------------------------------------------

void Tx::epoch_lazy_publish(EpochManager& ep, uint64_t wv) {
  nvm::Pool& pool = rt_->pool();
  nvm::Memory& mem = pool.mem();

  // Member-side seal: the same header fields the per-transaction path
  // writes before its log fence — but stores only. Every flush and fence
  // belongs to the epoch leader.
  mem.store_word(*ctx_, c_, &slot_.header->log_count, n_log_, nvm::Space::kLog);
  mem.store_word(*ctx_, c_, &slot_.header->algo, static_cast<uint64_t>(algo_),
                 nvm::Space::kLog);
  if (crc_logs_) {
    uint32_t lc = 0;
    for (size_t i = 0; i < n_log_; i++) {
      const LogEntry* e = slot_.entry_at(i);
      lc = util::crc32c_u64(e->val, util::crc32c_u64(e->off, lc));
    }
    mem.store_word(*ctx_, c_, &slot_.header->pad[SlotLayout::kLogCrcPad], lc,
                   nvm::Space::kLog);
  }
  if (slot_.mirrored) seal_primary_header_crc(pool, *ctx_, c_, slot_);

  // Publish and wait; on return this transaction is durably COMMITTED.
  ep.commit(*this);
  committed_hint_ = true;  // reclamation must now roll FORWARD

  // Ordering point (write-back rule), unchanged from per-tx commit: home
  // stores must not start until the commit record is durable.
  psan_check_header_persisted(analysis::DiagKind::kMisorderedPersist,
                              "write-back ahead of the sealed commit record");

  if (n_log_ > 0) {
    stats::PhaseTimer ft(*ctx_, &c_->phases, stats::Phase::kFlushDrain);
    analysis::PhaseScope ps(psan_, worker_, stats::Phase::kFlushDrain);
    for (size_t i = 0; i < n_log_; i++) {
      const LogEntry* e = slot_.entry_at(i);
      auto* home = static_cast<uint64_t*>(pool.at(LogEntry::offset_of(e->off)));
      mem.store_word(*ctx_, c_, home, e->val, nvm::Space::kData);
      dirty_.add(mem.line_of(home));
    }
    for (const uint64_t line : dirty_.lines()) {
      mem.clwb(*ctx_, c_, pool.base() + line * nvm::Memory::kLineBytes);
    }
    mem.sfence(*ctx_, c_);
  }

  apply_frees();
  retire_logs();
  release_owned(OrecTable::version_word(wv));
}

void Tx::epoch_eager_publish(EpochManager& ep, uint64_t wv) {
  // Undo logging already persisted every record and the ACTIVE header at
  // write time; what the per-tx commit still pays — the dirty-line flush,
  // the mirror mark, the status flip, each with its own fence — is exactly
  // what the epoch batches. Nothing to seal member-side.
  ep.commit(*this);
  committed_hint_ = true;  // reclamation must now roll FORWARD

  apply_frees();
  retire_logs();
  release_owned(OrecTable::version_word(wv));
}

bool Tx::epoch_flush_payload(sim::ExecContext& ctx, stats::TxCounters* c) {
  nvm::Pool& pool = rt_->pool();
  nvm::Memory& mem = pool.mem();
  if (algo_ == Algo::kOrecLazy) {
    persist_log_range_via(ctx, c, 0, n_log_);
    mem.clwb(ctx, c, slot_.header);
    return true;
  }
  // Eager: records and header are durable already; only the in-place data
  // lines still need the flush the per-tx commit would have issued.
  for (const uint64_t line : dirty_.lines()) {
    mem.clwb(ctx, c, pool.base() + line * nvm::Memory::kLineBytes);
  }
  return !dirty_.lines().empty();
}

void Tx::epoch_check_payload_persisted() {
  if (algo_ == Algo::kOrecLazy) {
    psan_check_log_persisted(0, n_log_, analysis::DiagKind::kMissingFlush,
                             "redo record unpersisted at epoch commit seal");
  } else {
    psan_check_dirty_persisted(analysis::DiagKind::kMissingFlush,
                               "in-place write unpersisted at epoch commit seal");
  }
  psan_check_header_persisted(analysis::DiagKind::kMissingFlush,
                              "slot header unpersisted at epoch commit seal");
}

bool Tx::epoch_mirror_commit(sim::ExecContext& ctx, stats::TxCounters* c) {
  if (!slot_.mirrored) return false;
  seal_and_mirror_header(rt_->pool(), ctx, c, slot_,
                         TxSlotHeader::make(epoch_, TxSlotHeader::kCommitted));
  return true;
}

void Tx::epoch_check_mirror_persisted() {
  if (!slot_.mirrored) return;
  if (algo_ == Algo::kOrecLazy) {
    psan_check_mirror_log_persisted(0, n_log_, analysis::DiagKind::kMissingFlush,
                                    "mirror redo record unpersisted at epoch commit seal");
  }
  psan_check_mirror_header_persisted(analysis::DiagKind::kMissingFlush,
                                     "mirror header unpersisted at epoch commit seal");
}

void Tx::epoch_flip_status(sim::ExecContext& ctx, stats::TxCounters* c) {
  nvm::Memory& mem = rt_->pool().mem();
  // The mirror already carries its durable COMMITTED image (batch B), so
  // unlike set_status only the primary moves here; the epoch fence after
  // this batch is what makes the flip durable.
  mem.store_word(ctx, c, &slot_.header->status,
                 TxSlotHeader::make(epoch_, TxSlotHeader::kCommitted),
                 nvm::Space::kLog);
  if (slot_.mirrored) seal_primary_header_crc(rt_->pool(), ctx, c, slot_);
  mem.clwb(ctx, c, slot_.header);
}

}  // namespace ptm
