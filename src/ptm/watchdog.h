// Stuck-transaction watchdog.
//
// A DES-scheduled fiber (workloads::run_point spawns one when containment
// is on and SystemConfig::watchdog_interval_ns > 0) that periodically
// sweeps every worker descriptor for an in-flight transaction whose lease
// expired while its owner is provably unresponsive, and reclaims it via
// ContainmentManager::sweep. The conflict-site hook already reclaims the
// locks *waiters* trip over; the watchdog covers the rest — a dead
// worker whose locked data nobody happens to touch would otherwise pin
// its log slot (and any allocations) until the next recovery.
//
// The fiber shares the DES engine with the workers. Reclamation issues
// real stores/flushes/fences through the watchdog's own context, so its
// cost is charged to the patrol fiber, never to a victim's clock.
#pragma once

#include "ptm/runtime.h"

namespace ptm {

class Watchdog {
 public:
  explicit Watchdog(Runtime& rt) : rt_(rt) {}

  /// One sweep over all workers. No-op when containment is off.
  void run_pass(sim::ExecContext& ctx);

 private:
  Runtime& rt_;
};

}  // namespace ptm
