// Abort-backoff policy (Tx::handle_abort).
//
// Exponential backoff separates conflicting transactions in (simulated)
// time; required for livelock-freedom under the DES single-runner rule.
// The draw must never collapse to zero — two conflicting workers whose
// draws are both 0 ns would retry at the same simulated instant forever —
// so the wait is clamped to at least one `base`. The ceiling is capped at
// SystemConfig::backoff_max_ns with jitter below the cap (capped retriers
// must stay desynchronized): an unbounded draw could park a live worker
// past the containment lease timeout and past any watchdog interval.
//
// RNG-sequence contract: the jitter draw happens only when the cap binds,
// which it never does at the default base/cap values — default-config
// runs consume the exact same rng sequence as the pre-cap policy (one
// bounded draw per abort), keeping bench artifacts byte-identical. The
// pinned regression tests live in tests/test_containment.cpp.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.h"

namespace ptm {

/// One backoff draw for retry number `attempt` (1-based): uniform in
/// [0, base << min(attempt, 10)], clamped to >= base, capped to
/// [cap - cap/8, cap] when the draw exceeds a nonzero `cap` (jitter keeps
/// capped retriers apart; the result never drops below `base`).
inline uint64_t backoff_wait_ns(uint64_t attempt, uint64_t base, uint64_t cap,
                                util::Rng& rng) {
  const uint64_t shift = attempt < 10 ? attempt : 10;
  uint64_t wait = std::max<uint64_t>(base, rng.next_bounded((base << shift) + 1));
  if (cap != 0 && wait > cap) {
    const uint64_t jitter = cap / 8;
    wait = cap - (jitter != 0 ? rng.next_bounded(jitter + 1) : 0);
    if (wait < base) wait = base;
  }
  return wait;
}

}  // namespace ptm
