// Thread-crash containment: orec leases, stuck-transaction reclamation,
// and the quarantine that keeps a dead worker's debris from blocking the
// rest of the runtime.
//
// The fault model (nvm::Memory::arm_thread_fault) can kill or stall one
// worker fiber at any persistence event, leaving its orecs locked and its
// durable log slot mid-flight. Without containment that is a permanent
// denial of service: every conflicting transaction aborts against the dead
// owner's locks forever. With containment (SystemConfig::tx_timeout_ns > 0):
//
//  * every worker heartbeats (begin, per read/write, per epoch-wait poll),
//    so "last_beat + tx_timeout_ns" is a per-worker lease on its specula-
//    tive state;
//  * a waiter that finds an orec locked by an expired owner — or the
//    watchdog fiber sweeping on its interval — reclaims the victim's
//    transaction ON ITS BEHALF: complete it forward if its commit record
//    is sealed (replay the redo log / keep the in-place data), roll it
//    back otherwise (apply the undo log / discard the unsealed redo log),
//    durably retire the slot to IDLE, release the victim's orecs, and
//    quarantine the descriptor;
//  * an epoch member whose drain leader died steals the expired leadership
//    lease and re-runs the fence batches (EpochManager::try_lead).
//
// Soundness rule: a lease is only treated as expired when the owner is
// provably unresponsive — its fiber unwound on nvm::FiberKill (dead), or
// it is parked inside a stall fault (nvm::Memory::stalled_in_fault). A
// slow-but-live owner is never victimized, because its one in-flight
// store could land after the reclaimer rewired the slot. This is the
// simulator's analogue of "the OS confirmed the thread is gone" (robust
// futexes / pthread_tryjoin in a real implementation). Reclamation itself
// is restartable: every step is idempotent, the per-victim reclaim guard
// is itself lease-stealable, and a worker fenced mid-anything dies at its
// next heartbeat or stall-wake before issuing another store.
//
// With tx_timeout_ns == 0 the Runtime never constructs a manager: every
// hook in the hot paths is a single null-pointer test, and default-config
// bench artifacts stay byte-identical (the psan/devstats purity pattern).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "sim/context.h"
#include "stats/counters.h"

namespace ptm {

class Runtime;
class Tx;

class ContainmentManager {
 public:
  /// `timeout_ns` is SystemConfig::tx_timeout_ns (> 0; the runtime gates
  /// construction). Installs the zombie fence probe on the pool's memory;
  /// the destructor uninstalls it.
  ContainmentManager(Runtime& rt, uint64_t timeout_ns, int max_workers);
  ~ContainmentManager();

  ContainmentManager(const ContainmentManager&) = delete;
  ContainmentManager& operator=(const ContainmentManager&) = delete;

  // ----- worker lifecycle (called from Tx / EpochManager hot paths) ------

  /// Refresh worker `w`'s lease at sim-time `now`. Throws nvm::FiberKill
  /// when the worker was fenced — the heartbeat doubles as the permission
  /// check that stops a zombie before its next store.
  void beat(int w, uint64_t now);

  /// Tx::begin: quarantine check (a dead or fenced descriptor must not
  /// start a transaction; throws nvm::FiberKill) + lease refresh + mark
  /// the descriptor in-tx (reclaimable if the lease then expires).
  void enter_tx(int w, uint64_t now);

  /// Tx::commit / Tx::handle_abort: the descriptor is clean again.
  void exit_tx(int w);

  /// Runtime::run's FiberKill handler. Atomic stores only — safe inside a
  /// catch handler (no yields).
  void mark_dead(int w);

  // ----- liveness queries ------------------------------------------------

  /// Lease verdict for worker `w` at sim-time `now`: expired AND provably
  /// unresponsive (dead, fenced, or parked in a stall fault). `now` behind
  /// the last beat (heterogeneous context clocks) never counts as expired.
  bool stale(int w, uint64_t now) const;

  bool dead(int w) const { return ws_[static_cast<size_t>(w)].dead.load(std::memory_order_acquire); }
  bool fenced(int w) const { return ws_[static_cast<size_t>(w)].fenced.load(std::memory_order_acquire); }
  bool in_tx(int w) const { return ws_[static_cast<size_t>(w)].in_tx.load(std::memory_order_acquire); }

  // ----- reclamation -----------------------------------------------------

  /// Conflict-site hook: the caller found an orec locked by `owner`.
  /// Reclaims the owner's transaction if its lease is stale; returns true
  /// when the orec is free to retry (the caller still aborts the current
  /// attempt — its retry revalidates everything).
  bool on_locked_orec(uint32_t owner, sim::ExecContext& ctx, stats::TxCounters* c);

  /// Watchdog pass: reclaim every stale in-flight worker except the
  /// caller. Safe to call from any fiber whose worker id has a slot.
  void sweep(sim::ExecContext& ctx, stats::TxCounters* c);

  /// EpochManager::try_lead stole the drain lease from `old_leader`:
  /// fence it (it must die before issuing another store) and count the
  /// takeover.
  void note_takeover(int old_leader);

  // ----- maintenance -----------------------------------------------------

  /// Drop all volatile containment state (Runtime::recover): leases,
  /// dead/fenced quarantine flags, reclaim guards. After a power failure
  /// recovery owns every slot; no online verdict survives it.
  void reset();

  /// Lift the quarantine so a test/verification harness can reuse killed
  /// workers' descriptors *after* reclaiming or recovering their state.
  /// Leases restart from the next beat.
  void revive_all();

  uint64_t timeout_ns() const { return timeout_ns_; }

  /// Counters for the REPRO_JSON "containment" section.
  stats::ContainmentStats snapshot() const;

 private:
  struct WorkerState {
    std::atomic<uint64_t> last_beat{0};
    std::atomic<bool> in_tx{false};
    std::atomic<bool> dead{false};
    // "Must not execute another instruction": set by a reclaimer before
    // slot surgery, by a leadership takeover on the deposed leader, and by
    // a reclaim-guard steal on the stalled reclaimer. Enforced at every
    // heartbeat and at stall-fault wake (Memory's fenced probe).
    std::atomic<bool> fenced{false};
    // Worker id currently reclaiming this slot, -1 when free. Stealable
    // when the holder itself goes stale (a kill during reclamation).
    std::atomic<int> reclaim_by{-1};
  };

  /// Reclaim `victim`'s in-flight transaction from `ctx`'s fiber. Returns
  /// true when the slot was retired (or found already clean).
  bool reclaim(int victim, sim::ExecContext& ctx, stats::TxCounters* c);

  /// The surgery proper (guard held, victim fenced): resolve the epoch
  /// phase, dispatch on the slot's durable status, roll forward/back,
  /// retire, release, notify.
  bool reclaim_locked(int victim, sim::ExecContext& ctx, stats::TxCounters* c);

  /// Durably retire the victim's slot to IDLE for the next epoch — the
  /// on-behalf twin of Tx::retire_logs, issuing every store/flush/fence
  /// through the RECLAIMER's context (advancing a dead fiber's context
  /// would corrupt the engine).
  void retire_slot_on_behalf(Tx& vtx, sim::ExecContext& ctx, stats::TxCounters* c);

  Runtime& rt_;
  uint64_t timeout_ns_;
  int n_;
  std::unique_ptr<WorkerState[]> ws_;

  // Written from worker fibers under the single-OS-thread DES engine (and
  // from the memory model's fence probe); snapshot() runs quiescently.
  stats::ContainmentStats stats_;
};

}  // namespace ptm
