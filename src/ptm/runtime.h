// PTM runtime: owns the orec table, the persistent allocator, per-worker
// transaction descriptors and counters, and the retry loop.
//
// Typical use:
//
//   nvm::SystemConfig cfg;            // pick media/domain/cost model
//   nvm::Pool pool(cfg);
//   ptm::Runtime rt(pool, ptm::Algo::kOrecLazy);
//   rt.recover(ctx);                  // no-op on a fresh pool
//   rt.run(ctx, [&](ptm::Tx& tx) {
//     auto* root = pool.root<MyRoot>();
//     uint64_t v = tx.read(&root->counter);
//     tx.write(&root->counter, v + 1);
//   });
#pragma once

#include <exception>
#include <memory>
#include <vector>

#include "ptm/containment.h"
#include "ptm/epoch.h"
#include "ptm/tx.h"
#include "stats/trace.h"

namespace ptm {

/// Shadow-instrumentation hook (DRAM-side, invisible to the persistence
/// model): the fault-injection oracle records each transaction's write set
/// and commit ticket through this interface. Callbacks fire on the
/// worker's own thread; implementations must be safe for concurrent calls
/// from different workers. on_write fires after the algorithm accepted the
/// write (an aborting write never reaches it); on_commit fires exactly
/// once per durably-committed transaction with its orec-clock ticket
/// (commit order); on_abort fires after rollback completed.
class TxObserver {
 public:
  virtual ~TxObserver() = default;
  virtual void on_begin(int worker) { (void)worker; }
  virtual void on_write(int worker, uint64_t off, uint64_t val) {
    (void)worker; (void)off; (void)val;
  }
  virtual void on_commit(int worker, uint64_t ticket) { (void)worker; (void)ticket; }
  virtual void on_abort(int worker) { (void)worker; }
};

/// Thrown by Runtime::recover() under RecoveryPolicy::kFailStop when
/// committed data could not be reconstructed from any copy. The pool is
/// left exactly as the salvage pass would have left it (repairs applied,
/// damaged blocks quarantined) so a caller that catches this can still
/// inspect Runtime::degraded() — but the contract is fail-loud: no
/// application code should run on a pool that lost committed state.
struct MediaLossError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Runtime {
 public:
  Runtime(nvm::Pool& pool, Algo algo);

  /// Execute `body(Tx&)` as one atomic, durable transaction, retrying on
  /// conflict until it commits. `body` must be idempotent across retries
  /// (standard STM contract) and must perform all persistent accesses
  /// through the Tx.
  template <typename F>
  void run(sim::ExecContext& ctx, F&& body) {
    Tx& tx = *txs_[static_cast<size_t>(ctx.worker_id())];
    tx.attach(&ctx, &counters_[static_cast<size_t>(ctx.worker_id())]);
    const bool tracing = stats::Trace::on();
    for (;;) {
      const uint64_t t0 = tracing ? ctx.now_ns() : 0;
      tx.begin();
      // The catch handlers below must not yield to the DES scheduler: the
      // Itanium EH caught-exception stack is per-OS-thread and the engine's
      // fibers share it, so a fiber that yields mid-handler (handle_abort's
      // backoff does) can interleave another fiber's begin/end_catch and a
      // later bare `throw;` rethrows *that fiber's* exception. Handlers
      // therefore only record the outcome; rollback, backoff and rethrow
      // all run after the handler has closed.
      std::exception_ptr app_err;
      bool killed = false;
      try {
        body(tx);
        tx.commit();
        if (tracing) {
          stats::Trace::instance().span(ctx.worker_id(), "tx", t0, ctx.now_ns() - t0,
                                        "outcome", "commit");
        }
        return;
      } catch (const AbortTx&) {
        // Conflict/capacity abort: fall through to rollback + retry.
      } catch (const nvm::FiberKill&) {
        // Thread-crash fault: record only; quarantine after the handler.
        killed = true;
      } catch (...) {
        // Application exception (including nvm::CrashPoint): roll back,
        // then let it escape below.
        app_err = std::current_exception();
      }
      if (killed) {
        // The worker died at a persistence event. No rollback, no retry:
        // its orecs stay locked and its log slot stays mid-flight, exactly
        // as the kill left them, for containment (online reclamation by a
        // surviving worker / the watchdog) or recovery to resolve.
        tx.mark_killed();
        throw nvm::FiberKill{ctx.worker_id()};
      }
      try {
        tx.handle_abort();
      } catch (const nvm::FiberKill&) {
        // A second armed fault (or a reclaim fence) struck mid-rollback.
        tx.mark_killed();
        throw;
      }
      if (app_err) std::rethrow_exception(app_err);
      if (tracing) {
        // One span per *attempt*: aborted attempts appear individually,
        // labelled by cause, so a conflict storm is visible as a run of
        // short spans before the committing one.
        stats::Trace::instance().span(ctx.worker_id(), "tx", t0, ctx.now_ns() - t0,
                                      "outcome",
                                      stats::abort_cause_name(tx.last_abort_cause()));
      }
    }
  }

  /// Replay / roll back per-thread logs after a (simulated) power failure;
  /// also quiesces volatile speculation state. Safe on a fresh pool.
  /// Defensive: every persisted input (counts, offsets, segment links,
  /// record checksums, media-fault status) is validated before use, and
  /// the returned report says what was replayed and what was refused —
  /// callers that expect a clean start should assert
  /// report.records_discarded() == 0.
  stats::RecoveryReport recover(sim::ExecContext& ctx);

  /// Degraded-mode outcome of the most recent recover() call. All-zero
  /// (degraded == false) after every healthy recovery; populated under
  /// RecoveryPolicy::kSalvage when both copies of committed state were
  /// damaged and the pool kept going with losses quarantined.
  const stats::DegradedReport& degraded() const { return degraded_; }

  /// Install (or clear, with nullptr) the shadow-instrumentation hook.
  /// Must only change while no transactions are running.
  void set_observer(TxObserver* ob) { observer_ = ob; }
  TxObserver* observer() const { return observer_; }

  nvm::Pool& pool() { return pool_; }
  OrecTable& orecs() { return orecs_; }
  alloc::PersistentAllocator& allocator() { return alloc_; }
  Algo algo() const { return algo_; }

  /// Group-commit machinery; null unless SystemConfig::epoch_commit (or
  /// REPRO_EPOCH=1) selected the mode when this runtime was built.
  EpochManager* epochs() const { return epochs_.get(); }

  /// Thread-crash containment; null unless SystemConfig::tx_timeout_ns > 0
  /// when this runtime was built (the default-off purity contract).
  ContainmentManager* containment() const { return containment_.get(); }

  stats::TxCounters& counters(int worker) {
    return counters_[static_cast<size_t>(worker)];
  }
  std::vector<stats::TxCounters> snapshot_counters() const { return counters_; }
  void reset_counters();

  // ----- test hooks ------------------------------------------------------

  /// Current epoch of a worker's transaction descriptor (tests assert the
  /// tag-wrap quiesce rules without peeking at private state).
  uint64_t debug_epoch(int worker) const;

  /// Fast-forward a worker's epoch (descriptor + durable IDLE status), as
  /// if that many transactions had retired. Only valid while the worker is
  /// between transactions; used to drive the 24-bit tag space to its wrap
  /// boundary in bounded test time.
  void debug_set_epoch(sim::ExecContext& ctx, int worker, uint64_t epoch);

 private:
  friend class Tx;
  friend class Recovery;
  friend class ContainmentManager;

  nvm::Pool& pool_;
  Algo algo_;
  OrecTable orecs_;
  alloc::PersistentAllocator alloc_;
  std::vector<stats::TxCounters> counters_;
  std::vector<std::unique_ptr<Tx>> txs_;
  std::unique_ptr<EpochManager> epochs_;  // non-null only in epoch mode
  std::unique_ptr<ContainmentManager> containment_;  // non-null only with tx_timeout_ns
  TxObserver* observer_ = nullptr;
  stats::DegradedReport degraded_;  // reset at the top of every recover()
};

}  // namespace ptm
