// Thread-crash containment: lease bookkeeping and on-behalf reclamation.
// See containment.h for the protocol and docs/FAULTS.md for the fault
// model and the ordering points of the reclamation surgery.
#include "ptm/containment.h"

#include "analysis/psan.h"
#include "ptm/runtime.h"

namespace ptm {

ContainmentManager::ContainmentManager(Runtime& rt, uint64_t timeout_ns,
                                       int max_workers)
    : rt_(rt), timeout_ns_(timeout_ns), n_(max_workers),
      ws_(new WorkerState[static_cast<size_t>(max_workers)]) {
  stats_.enabled = true;
  // Zombie probe: a worker waking from a stall fault dies before issuing
  // its interrupted store if it was fenced while parked.
  rt_.pool().mem().set_fenced_probe([this](int w) {
    if (w < 0 || w >= n_) return false;
    if (!ws_[static_cast<size_t>(w)].fenced.load(std::memory_order_acquire)) {
      return false;
    }
    stats_.zombies_fenced++;
    return true;
  });
}

ContainmentManager::~ContainmentManager() {
  rt_.pool().mem().set_fenced_probe(nullptr);
}

void ContainmentManager::beat(int w, uint64_t now) {
  if (w < 0 || w >= n_) return;
  WorkerState& s = ws_[static_cast<size_t>(w)];
  // The heartbeat doubles as the permission check: a fenced worker has
  // been reclaimed (or deposed) and must not issue another store.
  if (s.fenced.load(std::memory_order_acquire)) {
    rt_.pool().mem().drain_worker_pending(w);
    throw nvm::FiberKill{w};
  }
  // Monotonic max: contexts with different clocks (engine fibers vs a
  // verification RealContext) must never roll a lease backwards.
  const uint64_t prev = s.last_beat.load(std::memory_order_relaxed);
  if (now > prev) s.last_beat.store(now, std::memory_order_release);
}

void ContainmentManager::enter_tx(int w, uint64_t now) {
  WorkerState& s = ws_[static_cast<size_t>(w)];
  // Quarantine: a dead or fenced descriptor must not start a transaction
  // until reclamation/recovery retired it and the harness revived the id.
  if (s.dead.load(std::memory_order_acquire) ||
      s.fenced.load(std::memory_order_acquire)) {
    rt_.pool().mem().drain_worker_pending(w);
    throw nvm::FiberKill{w};
  }
  const uint64_t prev = s.last_beat.load(std::memory_order_relaxed);
  if (now > prev) s.last_beat.store(now, std::memory_order_release);
  s.in_tx.store(true, std::memory_order_release);
}

void ContainmentManager::exit_tx(int w) {
  ws_[static_cast<size_t>(w)].in_tx.store(false, std::memory_order_release);
}

void ContainmentManager::mark_dead(int w) {
  if (w < 0 || w >= n_) return;
  ws_[static_cast<size_t>(w)].dead.store(true, std::memory_order_release);
  stats_.deaths++;
}

bool ContainmentManager::stale(int w, uint64_t now) const {
  if (w < 0 || w >= n_) return false;
  const WorkerState& s = ws_[static_cast<size_t>(w)];
  if (s.fenced.load(std::memory_order_acquire)) return true;
  // Soundness: only a provably unresponsive worker can lose its lease. A
  // slow-but-live worker always keeps it — its one in-flight store could
  // land after the surgery rewired the slot.
  if (!s.dead.load(std::memory_order_acquire) &&
      !rt_.pool().mem().stalled_in_fault(w)) {
    return false;
  }
  const uint64_t b = s.last_beat.load(std::memory_order_acquire);
  return now >= b && now - b > timeout_ns_;
}

void ContainmentManager::note_takeover(int old_leader) {
  if (old_leader >= 0 && old_leader < n_) {
    ws_[static_cast<size_t>(old_leader)].fenced.store(true, std::memory_order_release);
  }
  stats_.leader_takeovers++;
}

bool ContainmentManager::on_locked_orec(uint32_t owner, sim::ExecContext& ctx,
                                        stats::TxCounters* c) {
  const int w = static_cast<int>(owner);
  if (w < 0 || w >= n_ || w == ctx.worker_id()) return false;
  if (!ws_[static_cast<size_t>(w)].in_tx.load(std::memory_order_acquire)) return false;
  if (!stale(w, ctx.now_ns())) return false;
  return reclaim(w, ctx, c);
}

void ContainmentManager::sweep(sim::ExecContext& ctx, stats::TxCounters* c) {
  stats_.watchdog_passes++;
  const int me = ctx.worker_id();
  beat(me, ctx.now_ns());
  for (int w = 0; w < n_; w++) {
    if (w == me) continue;
    if (!ws_[static_cast<size_t>(w)].in_tx.load(std::memory_order_acquire)) continue;
    if (!stale(w, ctx.now_ns())) continue;
    reclaim(w, ctx, c);
  }
}

bool ContainmentManager::reclaim(int victim, sim::ExecContext& ctx,
                                 stats::TxCounters* c) {
  const int me = ctx.worker_id();
  if (victim == me || victim < 0 || victim >= n_) return false;
  WorkerState& vs = ws_[static_cast<size_t>(victim)];
  const uint64_t now = ctx.now_ns();
  if (!vs.in_tx.load(std::memory_order_acquire)) return false;
  if (!stale(victim, now)) return false;

  // One reclaimer at a time; the guard itself is lease-stealable (a kill
  // can strike mid-reclamation). Stealing fences the previous holder: if
  // it was merely stalled, it dies on wake instead of resuming surgery a
  // successor restarted from scratch.
  int cur = vs.reclaim_by.load(std::memory_order_acquire);
  if (cur == me) return false;
  if (cur >= 0) {
    if (!stale(cur, now)) return false;
    if (!vs.reclaim_by.compare_exchange_strong(cur, me, std::memory_order_acq_rel)) {
      return false;
    }
    ws_[static_cast<size_t>(cur)].fenced.store(true, std::memory_order_release);
  } else if (!vs.reclaim_by.compare_exchange_strong(cur, me,
                                                    std::memory_order_acq_rel)) {
    return false;
  }

  // Fence the victim before any surgery: if it is merely stalled (not
  // dead), its wake probe — or its next heartbeat — kills it before it
  // can issue the store the fault interrupted.
  vs.fenced.store(true, std::memory_order_release);

  bool done = false;
  try {
    // Re-verify under the guard: a previous holder may have finished, or
    // the state may have moved while we raced for the guard.
    if (vs.in_tx.load(std::memory_order_acquire) && stale(victim, ctx.now_ns())) {
      done = reclaim_locked(victim, ctx, c);
    } else {
      done = true;
    }
  } catch (const nvm::FiberKill&) {
    // Killed mid-reclamation: keep the guard set. The next reclaimer
    // observes the holder as stale and steals it; releasing here would
    // drop the "one surgeon at a time" invariant for a zombie holder.
    throw;
  } catch (...) {
    vs.reclaim_by.store(-1, std::memory_order_release);
    throw;
  }
  if (done) vs.in_tx.store(false, std::memory_order_release);
  vs.reclaim_by.store(-1, std::memory_order_release);
  return done;
}

bool ContainmentManager::reclaim_locked(int victim, sim::ExecContext& ctx,
                                        stats::TxCounters* c) {
  WorkerState& vs = ws_[static_cast<size_t>(victim)];
  Tx& vtx = *rt_.txs_[static_cast<size_t>(victim)];
  nvm::Pool& pool = rt_.pool();
  nvm::Memory& mem = pool.mem();
  const uint64_t expiry =
      vs.last_beat.load(std::memory_order_acquire) + timeout_ns_;

  // Resolve the victim's epoch entanglement first: a queued/staged
  // member's fate is the epoch's fate, not the slot header's.
  int phase = 0;
  EpochManager* ep = rt_.epochs();
  if (ep != nullptr) {
    const uint64_t poll = timeout_ns_ >= 8 ? timeout_ns_ / 8 : 1;
    for (;;) {
      phase = ep->member_phase(victim);
      if (phase != 1) break;
      // Queued or staged: close the epoch on the victim's behalf, stealing
      // a dead leader's lease if needed. A live leader mid-drain makes
      // help_close return false — give it time to finish.
      if (!ep->help_close(ctx, c)) {
        ctx.advance(poll);
        beat(ctx.worker_id(), ctx.now_ns());
      }
    }
    if (phase == 3) return false;  // froze mid-drain; recovery owns the slot
    ep->forget(victim);
  }

  // Dispatch on what is durably decided. Absent a power failure the pool
  // image holds every store the victim issued, so the slot header is the
  // ground truth for "commit record sealed". The volatile committed_hint_
  // covers the post-retire window where the header already shows the next
  // epoch's IDLE but orecs/observer work is unfinished; an acked epoch
  // member (phase 2) is durably committed by the epoch's batch C fence.
  const uint64_t st = vtx.slot_.header->status;
  const bool committed =
      phase == 2 || vtx.committed_hint_ ||
      (TxSlotHeader::state_of(st) == TxSlotHeader::kCommitted &&
       TxSlotHeader::epoch_of(st) == vtx.epoch_);

  if (committed) {
    // Roll FORWARD. Lazy: replay the sealed redo log to the home
    // locations (idempotent across reclaimer deaths — re-storing the
    // committed values is harmless while the victim's orecs are held);
    // eager: the data is already in place. Then the committed frees.
    if (vtx.algo_ == Algo::kOrecLazy && vtx.n_log_ > 0) {
      for (size_t i = 0; i < vtx.n_log_; i++) {
        const LogEntry* e = vtx.slot_.entry_at(i);
        auto* home = static_cast<uint64_t*>(pool.at(LogEntry::offset_of(e->off)));
        mem.store_word(ctx, c, home, e->val, nvm::Space::kData);
        vtx.dirty_.add(mem.line_of(home));
      }
    }
    for (const uint64_t line : vtx.dirty_.lines()) {
      mem.clwb(ctx, c, pool.base() + line * nvm::Memory::kLineBytes);
    }
    if (!vtx.dirty_.lines().empty()) mem.sfence(ctx, c);
    for (void* p : vtx.tx_frees_) rt_.alloc_.free_block_if_absent(ctx, c, p);
  } else {
    // Roll BACK. Eager: apply the undo log newest-first to the in-place
    // homes (only when the durable header still shows this epoch ACTIVE —
    // an already-quiesced slot has nothing to undo); lazy: the unsealed
    // redo log is simply discarded. Then cancel speculative allocations.
    if (vtx.algo_ == Algo::kOrecEager && vtx.n_log_ > 0 &&
        TxSlotHeader::state_of(st) == TxSlotHeader::kActive &&
        TxSlotHeader::epoch_of(st) == vtx.epoch_) {
      for (size_t i = vtx.n_log_; i-- > 0;) {
        const LogEntry* e = vtx.slot_.entry_at(i);
        auto* home = static_cast<uint64_t*>(pool.at(LogEntry::offset_of(e->off)));
        mem.store_word(ctx, c, home, e->val, nvm::Space::kData);
        vtx.dirty_.add(mem.line_of(home));
      }
      for (const uint64_t line : vtx.dirty_.lines()) {
        mem.clwb(ctx, c, pool.base() + line * nvm::Memory::kLineBytes);
      }
      mem.sfence(ctx, c);
    }
    for (void* p : vtx.tx_allocs_) rt_.alloc_.free_block_if_absent(ctx, c, p);
  }
  // Blocks allocated by a committed victim stay allocated (their offsets
  // are in committed state); blocks freed by an aborted one stay live.
  // Both vectors clear only after their effects are applied above — a
  // reclaimer killed before this line leaves them for its successor.
  vtx.tx_allocs_.clear();
  vtx.tx_frees_.clear();

  retire_slot_on_behalf(vtx, ctx, c);

  // Release the victim's orecs. CAS, not blind store: if the victim (or a
  // previous reclaimer) already released some — or a later transaction has
  // since acquired and advanced them — the CAS must lose. Restart-safe.
  const auto owner = static_cast<uint32_t>(victim);
  if (committed) {
    const uint64_t rv = OrecTable::version_word(rt_.orecs_.tick());
    for (const OwnedOrec& o : vtx.owned_) {
      uint64_t expect = OrecTable::lock_word(owner);
      o.orec->compare_exchange_strong(expect, rv, std::memory_order_acq_rel);
    }
  } else {
    for (const OwnedOrec& o : vtx.owned_) {
      uint64_t expect = OrecTable::lock_word(owner);
      o.orec->compare_exchange_strong(expect, o.old_word, std::memory_order_acq_rel);
    }
  }
  vtx.owned_.clear();

  // Close out attribution and the shadow history on the victim's behalf.
  // The commit notification carries the victim's orec-clock ticket, which
  // ordered before any successor that re-acquires these locations.
  if (vtx.psan_ != nullptr) vtx.psan_->on_tx_end(victim);
  if (TxObserver* ob = rt_.observer()) {
    if (committed) {
      ob->on_commit(victim, vtx.commit_ticket_);
    } else {
      ob->on_abort(victim);
    }
  }

  stats_.stuck_tx_reclaimed++;
  if (committed) {
    stats_.commits_completed++;
  } else {
    stats_.aborts_on_behalf++;
  }
  const uint64_t done_ns = ctx.now_ns();
  stats_.reclaim_latency_ns.record(done_ns > expiry ? done_ns - expiry : 0);
  return true;
}

void ContainmentManager::retire_slot_on_behalf(Tx& vtx, sim::ExecContext& ctx,
                                               stats::TxCounters* c) {
  // The on-behalf twin of Tx::retire_logs + set_status, issued through the
  // RECLAIMER's context. Same ordering: counts zeroed, epoch advanced
  // (skipping the reserved tag-0 space with a durable quiesce), mirror
  // sealed before the primary status, one flush + fence for the header
  // line. Double epoch bumps across restarted reclaims only skip values,
  // which the tag scheme tolerates by construction.
  nvm::Pool& pool = rt_.pool();
  nvm::Memory& mem = pool.mem();
  mem.store_word(ctx, c, &vtx.slot_.header->log_count, 0, nvm::Space::kLog);
  mem.store_word(ctx, c, &vtx.slot_.header->alloc_count, 0, nvm::Space::kLog);
  vtx.n_log_ = 0;
  vtx.n_alloc_log_ = 0;
  vtx.epoch_++;
  if ((vtx.epoch_ & LogEntry::kTagMask) == 0) {
    zero_slot_logs(pool, ctx, c, vtx.slot_);
    vtx.epoch_++;
  }
  const uint64_t word = TxSlotHeader::make(vtx.epoch_, TxSlotHeader::kIdle);
  if (vtx.slot_.mirrored) seal_and_mirror_header(pool, ctx, c, vtx.slot_, word);
  mem.store_word(ctx, c, &vtx.slot_.header->status, word, nvm::Space::kLog);
  if (vtx.slot_.mirrored) seal_primary_header_crc(pool, ctx, c, vtx.slot_);
  mem.clwb(ctx, c, vtx.slot_.header);
  mem.sfence(ctx, c);
  vtx.windex_.clear();
  vtx.dirty_.clear();
  vtx.read_set_.clear();
  vtx.active_persisted_ = false;
  vtx.committed_hint_ = false;
}

void ContainmentManager::reset() {
  for (int w = 0; w < n_; w++) {
    WorkerState& s = ws_[static_cast<size_t>(w)];
    s.last_beat.store(0, std::memory_order_relaxed);
    s.in_tx.store(false, std::memory_order_relaxed);
    s.dead.store(false, std::memory_order_relaxed);
    s.fenced.store(false, std::memory_order_relaxed);
    s.reclaim_by.store(-1, std::memory_order_release);
  }
}

void ContainmentManager::revive_all() { reset(); }

stats::ContainmentStats ContainmentManager::snapshot() const { return stats_; }

}  // namespace ptm
