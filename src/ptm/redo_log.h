// Persistent per-thread log layout + the DRAM-side write-set index.
//
// Each worker owns a fixed metadata slot inside the pool (nvm::Pool layout)
// holding its transaction status word and its log arrays. Log *records*
// live in persistent memory (they must survive a crash); the hash index
// that makes read-own-writes O(1) lives in DRAM — this is the paper's
// "split the logging hash table, index in DRAM, data in Optane"
// optimization (§III.A).
//
// The in-slot log array is only the *base* capacity. A transaction whose
// write set outgrows it takes a capacity abort (stats::AbortCause::
// kCapacity), the runtime durably links an overflow LogSegment from the
// persistent heap into the slot's segment chain, and the transaction
// retries with the larger log — so large-footprint workloads are bounded
// by the heap, not by per_worker_meta_bytes. See docs/LOGGING.md.
//
// The same record format serves redo logs (val = new value) and undo logs
// (val = old value); `TxSlotHeader::algo` records which algorithm wrote the
// log so recovery replays it correctly.
#pragma once

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

namespace nvm {
class Pool;
}
namespace sim {
class ExecContext;
}
namespace stats {
struct TxCounters;
}

namespace ptm {

/// One logged word write. `off` packs a pool offset (pointers do not
/// survive recovery in general; offsets do) with the writing transaction's
/// epoch in the upper bits. The tag is what makes recovery safe against
/// *partial* log persistence: under ADR the slot header (status/count) can
/// reach the ADR domain by spontaneous cache eviction before the entry
/// line's fence, so recovery may observe a count that covers log slots
/// still holding a previous transaction's records — the epoch tag exposes
/// them as stale and recovery skips them. (Entries are 16-byte aligned and
/// never straddle cache lines, so a persisted entry is internally
/// consistent.)
///
/// The tag is only the low 24 bits of the epoch, and tag 0 is *reserved*:
/// live transactions never run at a tag-0 epoch (Tx skips those epochs),
/// so a zero-filled record — fresh pool memory, a freshly bump-allocated
/// overflow segment, or a wrap-quiesced slot — can never alias a live
/// record. The wrap itself (2^24 epochs) is handled by a durable full-slot
/// quiesce; see Tx::retire_logs and docs/LOGGING.md.
///
/// Bits 39..32 of `off` hold a per-record checksum: the low 8 bits of the
/// CRC32C of the record's 16 bytes (with the crc field itself zeroed).
/// The tag defends against *stale* records; the crc defends against
/// *torn* ones — under real ADR only 8-byte stores are failure-atomic, so
/// a crash can persist a record's `off` word without its `val` word (or a
/// random sub-line subset, see nvm::SystemConfig::torn_stores). Sealed
/// records are only produced on crash-sim configurations; performance
/// runs leave the field zero, keeping the log bytes identical to a build
/// without this feature. Recovery checks the crc only when crash_sim is
/// on, and only on tag-matching records.
struct LogEntry {
  static constexpr int kOffBits = 32;  // pools up to 4 GB
  static constexpr uint64_t kOffMask = (1ull << kOffBits) - 1;
  static constexpr int kCrcShift = 32;
  static constexpr uint64_t kCrcMask = 0xffull << kCrcShift;
  static constexpr int kTagShift = 40;
  static constexpr uint64_t kTagMask = (1ull << (64 - kTagShift)) - 1;

  uint64_t off;  // (epoch tag << 40) | (crc8 << 32) | pool offset
  uint64_t val;

  static uint64_t pack(uint64_t epoch, uint64_t offset) {
    return (epoch << kTagShift) | (offset & kOffMask);
  }
  static uint64_t offset_of(uint64_t packed) { return packed & kOffMask; }
  static bool tag_matches(uint64_t packed, uint64_t epoch) {
    return (packed >> kTagShift) == (epoch & kTagMask);
  }

  /// Truncated CRC32C of a record (crc field treated as zero).
  static uint8_t crc_of(uint64_t off_word, uint64_t val_word);
  /// `packed` with the crc field filled in for value `val`.
  static uint64_t seal(uint64_t packed, uint64_t val) {
    const uint64_t base = packed & ~kCrcMask;
    return base | (static_cast<uint64_t>(crc_of(base, val)) << kCrcShift);
  }
  static bool crc_ok(uint64_t packed, uint64_t val) {
    return crc_of(packed & ~kCrcMask, val) ==
           static_cast<uint8_t>(packed >> kCrcShift);
  }
};

/// Persistent per-worker slot header (first cache line of the slot).
/// pad[0] (SlotLayout::kChainPad) holds the head of the overflow-segment
/// chain as a SegPtr; pad[1] (SlotLayout::kLogCrcPad) holds a whole-log
/// CRC32C written by the lazy commit on crash-sim configurations (zero
/// otherwise); pad[2] (SlotLayout::kHdrCrcPad) holds a whole-header
/// CRC32C maintained on every sealed header update when log mirroring is
/// on (zero otherwise); the remaining pad word is reserved.
struct TxSlotHeader {
  static constexpr uint64_t kIdle = 0;
  static constexpr uint64_t kActive = 1;
  static constexpr uint64_t kCommitted = 2;

  uint64_t status;       // (epoch << 8) | state
  uint64_t log_count;    // valid LogEntry records (base + segments)
  uint64_t alloc_count;  // valid alloc-log words
  uint64_t algo;         // ptm::Algo that wrote the log
  uint64_t pad[4];       // pad[0]: overflow-segment chain head (SegPtr)

  static uint64_t make(uint64_t epoch, uint64_t state) { return (epoch << 8) | state; }
  static uint64_t state_of(uint64_t s) { return s & 0xff; }
  static uint64_t epoch_of(uint64_t s) { return s >> 8; }
};
static_assert(sizeof(TxSlotHeader) == 64);

/// Alloc-log word: pool offset of the block payload with the operation in
/// the low 3 bits (payloads are 8-byte aligned) and the transaction epoch
/// in the top bits — same stale-record defence as LogEntry, with the same
/// crc8 field in bits 39..32 (over the single word, crc field zeroed;
/// filled only on crash-sim configurations).
struct AllocLogOp {
  static constexpr uint64_t kAlloc = 1;
  static constexpr uint64_t kFree = 2;
  static uint64_t make(uint64_t off, uint64_t op, uint64_t epoch) {
    return (epoch << LogEntry::kTagShift) | (off & LogEntry::kOffMask & ~7ull) | op;
  }
  static uint64_t off_of(uint64_t w) { return w & LogEntry::kOffMask & ~7ull; }
  static uint64_t op_of(uint64_t w) { return w & 7ull; }
  static bool tag_matches(uint64_t w, uint64_t epoch) {
    return LogEntry::tag_matches(w, epoch);
  }
  static uint64_t seal(uint64_t w);
  static bool crc_ok(uint64_t w);
};

/// Chain pointer to an overflow log segment: the pool offset of the
/// LogSegment header packed with the epoch that installed the link (same
/// layout as LogEntry: tag << kOffBits | offset). Segments are 64-byte
/// aligned. The tag records when the chain grew; validity of the target is
/// established by the LogSegment magic + bounds checks (the link is only
/// ever persisted *after* the segment header is durable), and staleness of
/// individual records inside a segment by the per-record epoch tags.
struct SegPtr {
  static uint64_t make(uint64_t off, uint64_t epoch) {
    return (epoch << LogEntry::kTagShift) | (off & LogEntry::kOffMask);
  }
  static uint64_t off_of(uint64_t w) { return w & LogEntry::kOffMask & ~63ull; }
  static uint64_t tag_of(uint64_t w) { return w >> LogEntry::kTagShift; }
};

/// Header of one overflow log segment, bump-allocated from the persistent
/// heap and durably linked into a worker slot's chain on a capacity abort.
/// The LogEntry records follow immediately after the header. Fresh bump
/// memory is zero-filled, and tag 0 is never live, so a segment's records
/// need no initialization before first use.
struct LogSegment {
  static constexpr uint64_t kMagic = 0x50544d4c4f475347ull;  // "PTMLOGSG"

  /// flags bit 0: the segment carries mirror copies — a second header line
  /// right after this one and a second record array right after the
  /// primary one. Fresh bump memory is zero-filled, so pre-mirror segments
  /// read back as flags == 0 and keep the compact layout.
  static constexpr uint64_t kFlagMirrored = 1ull;

  uint64_t magic;
  uint64_t next;      // SegPtr to the next segment; 0 = end of chain
  uint64_t capacity;  // LogEntry records in this segment
  uint64_t flags;     // kFlagMirrored when mirrored layout
  uint64_t pad[4];

  bool mirrored() const { return (flags & kFlagMirrored) != 0; }

  /// The mirror copy of this header occupies the following cache line.
  LogSegment* mirror_header() { return this + 1; }

  LogEntry* entries() {
    return reinterpret_cast<LogEntry*>(reinterpret_cast<char*>(this) +
                                       (mirrored() ? 2 : 1) * sizeof(LogSegment));
  }
  LogEntry* mirror_entries() { return entries() + capacity; }
};
static_assert(sizeof(LogSegment) == 64);

/// Carves a worker's metadata slot into header / alloc log / write log,
/// plus a DRAM-side cache of the slot's persistent overflow-segment chain.
/// Log record index space is linear: [0, log_capacity) lives in the slot,
/// subsequent indices run through the segments in chain order.
struct SlotLayout {
  static constexpr size_t kChainPad = 0;   // header->pad word holding the chain head
  static constexpr size_t kLogCrcPad = 1;  // whole-log CRC32C (lazy commit, crash_sim)
  static constexpr size_t kHdrCrcPad = 2;  // whole-header CRC32C (log_mirror only)

  TxSlotHeader* header = nullptr;
  uint64_t* alloc_log = nullptr;  // alloc_log_cap words
  LogEntry* log = nullptr;        // log_capacity records (base, in-slot)
  size_t alloc_log_cap = 0;
  size_t log_capacity = 0;

  // Mirror copies (SystemConfig::log_mirror). Each primary region has a
  // same-sized replica on distinct cache lines inside the same slot:
  // [header | mirror header | alloc log | mirror alloc log | log | mirror
  // log]. Null / false when mirroring is off.
  TxSlotHeader* mirror_header = nullptr;
  uint64_t* mirror_alloc_log = nullptr;
  LogEntry* mirror_log = nullptr;
  bool mirrored = false;

  // DRAM-side view of the persistent chain rooted at header->pad[kChainPad].
  std::vector<LogSegment*> segs;
  std::vector<size_t> seg_caps;
  size_t total_capacity = 0;  // log_capacity + sum(seg_caps)

  static SlotLayout carve(char* slot_base, size_t slot_bytes, bool mirror = false);

  /// (Re)build segs/seg_caps/total_capacity from the persistent chain,
  /// validating each link (bounds, alignment, magic) and stopping at the
  /// first invalid one — a link whose install never fully persisted simply
  /// truncates the chain, losing spare capacity but never correctness.
  /// Returns the number of links dropped by such truncation (0 or 1: the
  /// walk stops at the first bad link), so recovery can report it.
  ///
  /// When `ctx` is given and the slot is mirrored, a segment header that
  /// fails its checks (bad magic/capacity, or a poisoned line) is repaired
  /// in place from its mirror copy before validation proceeds, bumping
  /// *repaired per rewritten header — so a single bad XPLine no longer
  /// truncates the chain.
  size_t attach_segments(nvm::Pool& pool, sim::ExecContext* ctx = nullptr,
                         uint64_t* repaired = nullptr);

  /// Log record `i` of the linear index space, or nullptr past the end.
  LogEntry* entry_at(size_t i) {
    if (i < log_capacity) return &log[i];
    i -= log_capacity;
    for (size_t k = 0; k < segs.size(); k++) {
      if (i < seg_caps[k]) return segs[k]->entries() + i;
      i -= seg_caps[k];
    }
    return nullptr;
  }

  /// Mirror copy of log record `i`, or nullptr when not mirrored / past
  /// the end. Index space mirrors entry_at exactly.
  LogEntry* mirror_entry_at(size_t i) {
    if (!mirrored) return nullptr;
    if (i < log_capacity) return &mirror_log[i];
    i -= log_capacity;
    for (size_t k = 0; k < segs.size(); k++) {
      if (i < seg_caps[k]) return segs[k]->mirror_entries() + i;
      i -= seg_caps[k];
    }
    return nullptr;
  }

  /// Longest contiguous record run starting at index `i` (for range
  /// flushes): pointer plus number of records before the next segment
  /// boundary. {nullptr, 0} past the end.
  std::pair<LogEntry*, size_t> span_at(size_t i) {
    if (i < log_capacity) return {&log[i], log_capacity - i};
    i -= log_capacity;
    for (size_t k = 0; k < segs.size(); k++) {
      if (i < seg_caps[k]) return {segs[k]->entries() + i, seg_caps[k] - i};
      i -= seg_caps[k];
    }
    return {nullptr, 0};
  }

  /// span_at over the mirror arrays. {nullptr, 0} when not mirrored.
  std::pair<LogEntry*, size_t> mirror_span_at(size_t i) {
    if (!mirrored) return {nullptr, 0};
    if (i < log_capacity) return {&mirror_log[i], log_capacity - i};
    i -= log_capacity;
    for (size_t k = 0; k < segs.size(); k++) {
      if (i < seg_caps[k]) return {segs[k]->mirror_entries() + i, seg_caps[k] - i};
      i -= seg_caps[k];
    }
    return {nullptr, 0};
  }
};

/// CRC32C of a slot header's 64 bytes with the pad[kHdrCrcPad] word
/// treated as zero — the seal maintained by every sealed header update
/// when log mirroring is on. A fresh zero-filled header does *not*
/// validate (the CRC of 56 zero bytes is nonzero); recovery treats a
/// mutually-unsealed primary/mirror pair as pre-mirror state and trusts
/// the primary, so pools formatted before the first transaction still
/// recover.
uint64_t slot_header_crc(const TxSlotHeader& h);
bool slot_header_crc_ok(const TxSlotHeader& h);

/// Store a full sealed header image — the primary's current fields with
/// `mirror_status` in place of its status word, plus a matching header
/// CRC — to the slot's mirror header line, clwb'ing the mirror line.
/// Passing the primary's current status keeps the copies identical;
/// passing a kCommitted status ahead of the primary seal is how the
/// commit paths make "mirror durable before primary seal" hold. The
/// caller owns the primary's CRC reseal (seal_primary_header_crc), the
/// primary header flush, and the fence. No-op when not mirrored.
void seal_and_mirror_header(nvm::Pool& pool, sim::ExecContext& ctx,
                            stats::TxCounters* c, SlotLayout& slot,
                            uint64_t mirror_status);

/// Recompute and store the primary header's CRC pad word over its current
/// content. Must follow any primary header field/status store when
/// mirroring is on; the caller owns the flush + fence. No-op when not
/// mirrored.
void seal_primary_header_crc(nvm::Pool& pool, sim::ExecContext& ctx,
                             stats::TxCounters* c, SlotLayout& slot);

/// Durably zero a slot's log arrays (alloc log, base write log, every
/// attached overflow segment) — the epoch-tag wrap quiesce: after 2^24
/// epochs a leftover record could alias a live tag, so all leftovers are
/// erased before the tag space is reused. The caller issues the subsequent
/// status/count update; this only zeroes + flushes + fences the arrays.
void zero_slot_logs(nvm::Pool& pool, sim::ExecContext& ctx, stats::TxCounters* c,
                    SlotLayout& slot);

/// DRAM-resident open-addressing map: word pool-offset -> log index.
/// Generation-stamped so clearing between transactions is O(1). Write sets
/// are capped at half the table (beyond that, probing costs explode and a
/// full table would loop) — insert() reports the overflow and the runtime
/// takes a capacity abort, doubles the table (grow()), and retries, up to
/// kMaxSlots.
class WriteIndex {
 public:
  static constexpr size_t kInitialSlots = 1u << 14;
  static constexpr size_t kMaxSlots = 1u << 22;  // hard ceiling: 2M-entry write sets

  WriteIndex() : slots_(kInitialSlots), shift_(64 - 14) {}

  /// Largest write set the current table admits.
  size_t max_writes() const { return slots_.size() / 2; }

  void clear() {
    gen_++;
    count_ = 0;
  }

  /// Returns log index or -1.
  int64_t lookup(uint64_t off) const {
    const size_t mask = slots_.size() - 1;
    size_t i = hash(off);
    for (;;) {
      const Slot& s = slots_[i];
      if (s.gen != gen_) return -1;
      if (s.off == off) return s.idx;
      i = (i + 1) & mask;
    }
  }

  /// Map `off` to `idx`. Returns false when a *new* key would exceed
  /// max_writes() — the caller must abort the transaction (updating an
  /// existing key never fails).
  bool insert(uint64_t off, int64_t idx) {
    const size_t mask = slots_.size() - 1;
    size_t i = hash(off);
    for (;;) {
      Slot& s = slots_[i];
      if (s.gen != gen_ || s.off == off) {
        if (s.gen != gen_) {
          if (count_ >= max_writes()) return false;
          count_++;
        }
        s.gen = gen_;
        s.off = off;
        s.idx = idx;
        return true;
      }
      i = (i + 1) & mask;
    }
  }

  /// Double the table. DRAM-only and contents-discarding (equivalent to
  /// clear()), so it is legal only between transactions — the abort path
  /// calls it right before the retry. Returns false at kMaxSlots.
  bool grow() {
    if (slots_.size() >= kMaxSlots) return false;
    slots_.assign(slots_.size() * 2, Slot{});
    shift_--;
    gen_ = 1;
    count_ = 0;
    return true;
  }

 private:
  struct Slot {
    uint64_t gen = 0;
    uint64_t off = 0;
    int64_t idx = 0;
  };

  size_t hash(uint64_t off) const {
    return static_cast<size_t>(((off >> 3) * 0x9e3779b97f4a7c15ull) >> shift_) &
           (slots_.size() - 1);
  }

  std::vector<Slot> slots_;
  int shift_;  // 64 - log2(slots_.size()): hash uses the top bits
  uint64_t gen_ = 1;
  size_t count_ = 0;
};

}  // namespace ptm
