// Persistent per-thread log layout + the DRAM-side write-set index.
//
// Each worker owns a fixed metadata slot inside the pool (nvm::Pool layout)
// holding its transaction status word and its log arrays. Log *records*
// live in persistent memory (they must survive a crash); the hash index
// that makes read-own-writes O(1) lives in DRAM — this is the paper's
// "split the logging hash table, index in DRAM, data in Optane"
// optimization (§III.A).
//
// The same record format serves redo logs (val = new value) and undo logs
// (val = old value); `TxSlotHeader::algo` records which algorithm wrote the
// log so recovery replays it correctly.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace ptm {

/// One logged word write. `off` packs a pool offset (pointers do not
/// survive recovery in general; offsets do) with the writing transaction's
/// epoch in the upper bits. The tag is what makes recovery safe against
/// *partial* log persistence: under ADR the slot header (status/count) can
/// reach the ADR domain by spontaneous cache eviction before the entry
/// line's fence, so recovery may observe a count that covers log slots
/// still holding a previous transaction's records — the epoch tag exposes
/// them as stale and recovery skips them. (Entries are 16-byte aligned and
/// never straddle cache lines, so a persisted entry is internally
/// consistent.)
struct LogEntry {
  static constexpr int kOffBits = 40;  // pools up to 1 TB
  static constexpr uint64_t kOffMask = (1ull << kOffBits) - 1;

  uint64_t off;  // (epoch tag << kOffBits) | pool offset
  uint64_t val;

  static uint64_t pack(uint64_t epoch, uint64_t offset) {
    return (epoch << kOffBits) | (offset & kOffMask);
  }
  static uint64_t offset_of(uint64_t packed) { return packed & kOffMask; }
  static bool tag_matches(uint64_t packed, uint64_t epoch) {
    return (packed >> kOffBits) == (epoch & ((1ull << (64 - kOffBits)) - 1));
  }
};

/// Persistent per-worker slot header (first cache line of the slot).
struct TxSlotHeader {
  static constexpr uint64_t kIdle = 0;
  static constexpr uint64_t kActive = 1;
  static constexpr uint64_t kCommitted = 2;

  uint64_t status;       // (epoch << 8) | state
  uint64_t log_count;    // valid LogEntry records
  uint64_t alloc_count;  // valid alloc-log words
  uint64_t algo;         // ptm::Algo that wrote the log
  uint64_t pad[4];

  static uint64_t make(uint64_t epoch, uint64_t state) { return (epoch << 8) | state; }
  static uint64_t state_of(uint64_t s) { return s & 0xff; }
  static uint64_t epoch_of(uint64_t s) { return s >> 8; }
};
static_assert(sizeof(TxSlotHeader) == 64);

/// Alloc-log word: pool offset of the block payload with the operation in
/// the low 3 bits (payloads are 8-byte aligned) and the transaction epoch
/// in the top bits — same stale-record defence as LogEntry.
struct AllocLogOp {
  static constexpr uint64_t kAlloc = 1;
  static constexpr uint64_t kFree = 2;
  static uint64_t make(uint64_t off, uint64_t op, uint64_t epoch) {
    return (epoch << LogEntry::kOffBits) | (off & LogEntry::kOffMask & ~7ull) | op;
  }
  static uint64_t off_of(uint64_t w) { return w & LogEntry::kOffMask & ~7ull; }
  static uint64_t op_of(uint64_t w) { return w & 7ull; }
  static bool tag_matches(uint64_t w, uint64_t epoch) {
    return LogEntry::tag_matches(w, epoch);
  }
};

/// Carves a worker's metadata slot into header / alloc log / write log.
struct SlotLayout {
  TxSlotHeader* header;
  uint64_t* alloc_log;  // kAllocLogCap words
  LogEntry* log;        // log_capacity records
  size_t alloc_log_cap;
  size_t log_capacity;

  static SlotLayout carve(char* slot_base, size_t slot_bytes);
};

/// DRAM-resident open-addressing map: word pool-offset -> log index.
/// Generation-stamped so clearing between transactions is O(1). Write sets
/// are capped at half the table (beyond that, probing costs explode and a
/// full table would loop) — far beyond any workload in the paper; huge
/// initialization transactions should batch instead.
class WriteIndex {
 public:
  static constexpr size_t kSlots = 1u << 14;
  static constexpr size_t kMaxWrites = kSlots / 2;

  WriteIndex() : slots_(kSlots) {}

  void clear() {
    gen_++;
    count_ = 0;
  }

  /// Returns log index or -1.
  int64_t lookup(uint64_t off) const {
    size_t i = hash(off);
    for (;;) {
      const Slot& s = slots_[i];
      if (s.gen != gen_) return -1;
      if (s.off == off) return s.idx;
      i = (i + 1) & (kSlots - 1);
    }
  }

  void insert(uint64_t off, int64_t idx) {
    if (count_ >= kMaxWrites) {
      throw std::runtime_error("transaction write set exceeds WriteIndex capacity");
    }
    size_t i = hash(off);
    for (;;) {
      Slot& s = slots_[i];
      if (s.gen != gen_ || s.off == off) {
        if (s.gen != gen_) count_++;
        s.gen = gen_;
        s.off = off;
        s.idx = idx;
        return;
      }
      i = (i + 1) & (kSlots - 1);
    }
  }

 private:
  struct Slot {
    uint64_t gen = 0;
    uint64_t off = 0;
    int64_t idx = 0;
  };

  static size_t hash(uint64_t off) {
    return static_cast<size_t>((off >> 3) * 0x9e3779b97f4a7c15ull >> 51) & (kSlots - 1);
  }

  std::vector<Slot> slots_;
  uint64_t gen_ = 1;
  size_t count_ = 0;
};

}  // namespace ptm
