#include "ptm/scrub.h"

#include <cassert>

#include "stats/trace.h"

namespace ptm {

Scrubber::Scrubber(Runtime& rt) : rt_(rt) { s_.enabled = true; }

bool Scrubber::repair_line(sim::ExecContext& ctx, const char* primary,
                           const char* mirror) {
  nvm::Memory& mem = rt_.pool().mem();
  if (mirror == nullptr || mem.media_faulted(mirror, nvm::Memory::kLineBytes)) {
    return false;
  }
  // Durable before the fault retires: a crash between the copy and the
  // repair_media_fault below re-poisons a line whose bytes are already
  // correct, and the next pass (or recovery) simply repairs it again.
  mem.store_bytes(ctx, nullptr, const_cast<char*>(primary), mirror,
                  nvm::Memory::kLineBytes, nvm::Space::kLog);
  mem.clwb(ctx, nullptr, primary);
  mem.sfence(ctx, nullptr);
  mem.repair_media_fault(mem.line_of(primary));
  return true;
}

void Scrubber::scan_region(sim::ExecContext& ctx, const char* primary,
                           const char* mirror, size_t bytes) {
  nvm::Memory& mem = rt_.pool().mem();
  // Whole lines only: a region tail sharing a line with its own mirror
  // region stays with recovery's record-granular screen — repairing it at
  // line granularity would cross the region boundary.
  for (size_t o = 0; o + nvm::Memory::kLineBytes <= bytes;
       o += nvm::Memory::kLineBytes) {
    s_.lines_scanned++;
    // One charged media read per line: the walk costs what a patrol read
    // costs, and the charge is the fiber's DES scheduling point.
    mem.load_word(ctx, nullptr, reinterpret_cast<const uint64_t*>(primary + o),
                  nvm::Space::kLog);
    if (!mem.media_faulted(primary + o, nvm::Memory::kLineBytes)) continue;
    s_.media_faults_found++;
    if (repair_line(ctx, primary + o, mirror == nullptr ? nullptr : mirror + o)) {
      s_.repaired++;
    } else {
      s_.unrepairable++;
    }
  }
}

void Scrubber::run_pass(sim::ExecContext& ctx) {
  nvm::Pool& pool = rt_.pool();
  nvm::Memory& mem = pool.mem();
  const bool checked = pool.config().crash_sim;
  s_.passes++;
  if (checked) mem.activate_due_media_faults(ctx.now_ns());

  for (int w = 0; w < pool.config().max_workers; w++) {
    SlotLayout slot = SlotLayout::carve(pool.worker_meta(w), pool.worker_meta_bytes(),
                                        pool.config().log_mirror);
    const auto* hdr = reinterpret_cast<const char*>(slot.header);
    const auto* mhdr = reinterpret_cast<const char*>(slot.mirror_header);  // null unmirrored

    // Header first: with the header line gone the slot's state is
    // unknowable and its segment chain unwalkable.
    s_.lines_scanned++;
    mem.load_word(ctx, nullptr, reinterpret_cast<const uint64_t*>(hdr),
                  nvm::Space::kLog);
    if (checked && mem.media_faulted(hdr, sizeof(TxSlotHeader))) {
      s_.media_faults_found++;
      const bool ok = slot.mirrored &&
                      !mem.media_faulted(mhdr, sizeof(TxSlotHeader)) &&
                      slot_header_crc_ok(*slot.mirror_header) &&
                      repair_line(ctx, hdr, mhdr);
      if (!ok) {
        // Leave the wreck for recovery's loss accounting.
        s_.unrepairable++;
        continue;
      }
      s_.repaired++;
      s_.header_repairs++;
    }
    if (TxSlotHeader::state_of(slot.header->status) != TxSlotHeader::kIdle) {
      // A transaction is in flight here; skip the slot wholesale rather
      // than second-guess its owner's in-progress batches.
      s_.skipped_busy++;
      continue;
    }
    if (checked && slot.mirrored) {
      // Sealed-header CRC validation: a primary whose seal no longer
      // matches (crash debris the media screen cannot see) heals from an
      // intact replica. Both-copies-unsealed is a fresh slot — leave it.
      s_.crc_checks++;
      if (!slot_header_crc_ok(*slot.header) &&
          !mem.media_faulted(mhdr, sizeof(TxSlotHeader)) &&
          slot_header_crc_ok(*slot.mirror_header) && repair_line(ctx, hdr, mhdr)) {
        s_.repaired++;
        s_.header_repairs++;
      }
    }

    // Walk the log structures. attach_segments repairs damaged segment
    // *headers* from their replicas itself (same order as recovery).
    uint64_t seg_repairs = 0;
    slot.attach_segments(pool, &ctx, &seg_repairs);
    s_.repaired += seg_repairs;
    s_.header_repairs += seg_repairs;
    scan_region(ctx, reinterpret_cast<const char*>(slot.alloc_log),
                slot.mirrored ? reinterpret_cast<const char*>(slot.mirror_alloc_log)
                              : nullptr,
                slot.alloc_log_cap * sizeof(uint64_t));
    scan_region(ctx, reinterpret_cast<const char*>(slot.log),
                slot.mirrored ? reinterpret_cast<const char*>(slot.mirror_log) : nullptr,
                slot.log_capacity * sizeof(LogEntry));
    for (size_t k = 0; k < slot.segs.size(); k++) {
      LogSegment* seg = slot.segs[k];
      scan_region(ctx, reinterpret_cast<const char*>(seg->entries()),
                  seg->mirrored() ? reinterpret_cast<const char*>(seg->mirror_entries())
                                  : nullptr,
                  slot.seg_caps[k] * sizeof(LogEntry));
    }
  }

  // Allocator metadata (bump word + free-list heads) has no replica:
  // detect-only, surfacing rot long before an allocation walks into it.
  alloc::PersistentAllocator& al = rt_.allocator();
  scan_region(ctx, al.metadata_base(), nullptr, al.metadata_bytes());

  if (stats::Trace::on()) {
    stats::Trace& tr = stats::Trace::instance();
    const uint64_t now = ctx.now_ns();
    tr.counter("scrub_lines_scanned", now, static_cast<double>(s_.lines_scanned));
    tr.counter("scrub_media_faults_found", now,
               static_cast<double>(s_.media_faults_found));
    tr.counter("scrub_repaired", now, static_cast<double>(s_.repaired));
    tr.counter("scrub_unrepairable", now, static_cast<double>(s_.unrepairable));
  }
}

}  // namespace ptm
