#include "ptm/redo_log.h"

#include <cassert>

namespace ptm {

SlotLayout SlotLayout::carve(char* slot_base, size_t slot_bytes) {
  constexpr size_t kAllocLogCap = 256;
  SlotLayout l;
  l.header = reinterpret_cast<TxSlotHeader*>(slot_base);
  l.alloc_log = reinterpret_cast<uint64_t*>(slot_base + sizeof(TxSlotHeader));
  l.alloc_log_cap = kAllocLogCap;
  char* log_start = slot_base + sizeof(TxSlotHeader) + kAllocLogCap * 8;
  l.log = reinterpret_cast<LogEntry*>(log_start);
  assert(slot_bytes > sizeof(TxSlotHeader) + kAllocLogCap * 8);
  l.log_capacity = (slot_bytes - sizeof(TxSlotHeader) - kAllocLogCap * 8) / sizeof(LogEntry);
  return l;
}

}  // namespace ptm
