#include "ptm/redo_log.h"

#include <cassert>

#include "nvm/pool.h"
#include "util/crc32.h"

namespace ptm {

uint8_t LogEntry::crc_of(uint64_t off_word, uint64_t val_word) {
  return static_cast<uint8_t>(
      util::crc32c_u64(val_word, util::crc32c_u64(off_word & ~kCrcMask)));
}

uint64_t AllocLogOp::seal(uint64_t w) {
  const uint64_t base = w & ~LogEntry::kCrcMask;
  const uint8_t crc = static_cast<uint8_t>(util::crc32c_u64(base));
  return base | (static_cast<uint64_t>(crc) << LogEntry::kCrcShift);
}

bool AllocLogOp::crc_ok(uint64_t w) {
  return static_cast<uint8_t>(util::crc32c_u64(w & ~LogEntry::kCrcMask)) ==
         static_cast<uint8_t>(w >> LogEntry::kCrcShift);
}

SlotLayout SlotLayout::carve(char* slot_base, size_t slot_bytes) {
  constexpr size_t kAllocLogCap = 256;
  SlotLayout l;
  l.header = reinterpret_cast<TxSlotHeader*>(slot_base);
  l.alloc_log = reinterpret_cast<uint64_t*>(slot_base + sizeof(TxSlotHeader));
  l.alloc_log_cap = kAllocLogCap;
  char* log_start = slot_base + sizeof(TxSlotHeader) + kAllocLogCap * 8;
  l.log = reinterpret_cast<LogEntry*>(log_start);
  assert(slot_bytes > sizeof(TxSlotHeader) + kAllocLogCap * 8);
  l.log_capacity = (slot_bytes - sizeof(TxSlotHeader) - kAllocLogCap * 8) / sizeof(LogEntry);
  l.total_capacity = l.log_capacity;
  return l;
}

size_t SlotLayout::attach_segments(nvm::Pool& pool) {
  segs.clear();
  seg_caps.clear();
  total_capacity = log_capacity;

  // Untracked loads are fine here: the chain is quiescent whenever this
  // runs (worker construction or single-threaded recovery), and the
  // reciprocal store path persisted each link only after its target's
  // header was durable, so any readable link's target is well-formed or
  // detectably garbage.
  uint64_t link = std::atomic_ref<const uint64_t>(header->pad[kChainPad])
                      .load(std::memory_order_acquire);
  const size_t pool_size = pool.size();
  while (link != 0) {
    const uint64_t off = SegPtr::off_of(link);
    // A link that never fully persisted (or pre-format garbage) truncates
    // the chain here; that only sheds spare capacity, never records —
    // log_count can only cover a segment whose link install committed.
    if (off < sizeof(nvm::PoolHeader) || off + sizeof(LogSegment) > pool_size) return 1;
    auto* seg = static_cast<LogSegment*>(pool.at(off));
    if (seg->magic != LogSegment::kMagic) return 1;
    const uint64_t cap = seg->capacity;
    if (cap == 0 || off + sizeof(LogSegment) + cap * sizeof(LogEntry) > pool_size) return 1;
    segs.push_back(seg);
    seg_caps.push_back(static_cast<size_t>(cap));
    total_capacity += static_cast<size_t>(cap);
    if (segs.size() > 64) return 1;  // cycle guard (corrupt chain)
    link = std::atomic_ref<const uint64_t>(seg->next).load(std::memory_order_acquire);
  }
  return 0;
}

void zero_slot_logs(nvm::Pool& pool, sim::ExecContext& ctx, stats::TxCounters* c,
                    SlotLayout& slot) {
  nvm::Memory& mem = pool.mem();
  // Zero in bounded chunks so store_bytes' internal buffers stay small,
  // flushing each range's lines as we go; a single trailing fence orders
  // everything.
  static constexpr size_t kChunk = 4096;
  static const unsigned char kZeros[kChunk] = {};
  auto wipe = [&](void* dst, size_t len) {
    char* p = static_cast<char*>(dst);
    size_t left = len;
    while (left > 0) {
      const size_t n = left < kChunk ? left : kChunk;
      mem.store_bytes(ctx, c, p, kZeros, n, nvm::Space::kLog);
      for (size_t o = 0; o < n; o += nvm::Memory::kLineBytes) mem.clwb(ctx, c, p + o);
      p += n;
      left -= n;
    }
  };
  wipe(slot.alloc_log, slot.alloc_log_cap * sizeof(uint64_t));
  wipe(slot.log, slot.log_capacity * sizeof(LogEntry));
  for (size_t k = 0; k < slot.segs.size(); k++) {
    wipe(slot.segs[k]->entries(), slot.seg_caps[k] * sizeof(LogEntry));
  }
  mem.sfence(ctx, c);
}

}  // namespace ptm
