#include "ptm/redo_log.h"

#include <cassert>

#include "nvm/pool.h"
#include "util/crc32.h"

namespace ptm {

uint8_t LogEntry::crc_of(uint64_t off_word, uint64_t val_word) {
  return static_cast<uint8_t>(
      util::crc32c_u64(val_word, util::crc32c_u64(off_word & ~kCrcMask)));
}

uint64_t AllocLogOp::seal(uint64_t w) {
  const uint64_t base = w & ~LogEntry::kCrcMask;
  const uint8_t crc = static_cast<uint8_t>(util::crc32c_u64(base));
  return base | (static_cast<uint64_t>(crc) << LogEntry::kCrcShift);
}

bool AllocLogOp::crc_ok(uint64_t w) {
  return static_cast<uint8_t>(util::crc32c_u64(w & ~LogEntry::kCrcMask)) ==
         static_cast<uint8_t>(w >> LogEntry::kCrcShift);
}

SlotLayout SlotLayout::carve(char* slot_base, size_t slot_bytes, bool mirror) {
  constexpr size_t kAllocLogCap = 256;
  SlotLayout l;
  l.mirrored = mirror;
  l.header = reinterpret_cast<TxSlotHeader*>(slot_base);
  l.alloc_log_cap = kAllocLogCap;
  // Every mirrored region is a same-sized replica placed right after its
  // primary, so primary and mirror always occupy distinct cache lines:
  // [header | mirror header | alloc log | mirror alloc log | log | mirror log]
  const size_t copies = mirror ? 2 : 1;
  char* p = slot_base + copies * sizeof(TxSlotHeader);
  if (mirror) l.mirror_header = reinterpret_cast<TxSlotHeader*>(slot_base + sizeof(TxSlotHeader));
  l.alloc_log = reinterpret_cast<uint64_t*>(p);
  p += kAllocLogCap * 8;
  if (mirror) {
    l.mirror_alloc_log = reinterpret_cast<uint64_t*>(p);
    p += kAllocLogCap * 8;
  }
  const size_t fixed = copies * (sizeof(TxSlotHeader) + kAllocLogCap * 8);
  assert(slot_bytes > fixed);
  l.log_capacity = (slot_bytes - fixed) / (copies * sizeof(LogEntry));
  l.log = reinterpret_cast<LogEntry*>(p);
  if (mirror) l.mirror_log = l.log + l.log_capacity;
  l.total_capacity = l.log_capacity;
  return l;
}

size_t SlotLayout::attach_segments(nvm::Pool& pool, sim::ExecContext* ctx,
                                   uint64_t* repaired) {
  segs.clear();
  seg_caps.clear();
  total_capacity = log_capacity;

  // Untracked loads are fine here: the chain is quiescent whenever this
  // runs (worker construction or single-threaded recovery), and the
  // reciprocal store path persisted each link only after its target's
  // header was durable, so any readable link's target is well-formed or
  // detectably garbage.
  uint64_t link = std::atomic_ref<const uint64_t>(header->pad[kChainPad])
                      .load(std::memory_order_acquire);
  const size_t pool_size = pool.size();
  nvm::Memory& mem = pool.mem();
  while (link != 0) {
    const uint64_t off = SegPtr::off_of(link);
    // A link that never fully persisted (or pre-format garbage) truncates
    // the chain here; that only sheds spare capacity, never records —
    // log_count can only cover a segment whose link install committed.
    if (off < sizeof(nvm::PoolHeader) || off + sizeof(LogSegment) > pool_size) return 1;
    auto* seg = static_cast<LogSegment*>(pool.at(off));
    auto seg_ok = [&](const LogSegment* s, uint64_t base_off) {
      if (mem.media_faulted(s, sizeof(LogSegment))) return false;
      if (s->magic != LogSegment::kMagic) return false;
      const uint64_t cap = s->capacity;
      const uint64_t copies = (s->flags & LogSegment::kFlagMirrored) ? 2 : 1;
      if (cap == 0 ||
          base_off + copies * (sizeof(LogSegment) + cap * sizeof(LogEntry)) > pool_size) {
        return false;
      }
      return true;
    };
    if (!seg_ok(seg, off)) {
      // A mirrored slot keeps a replica of every segment header on the
      // following line; when the primary header is unreadable but the
      // replica validates, rewrite the primary in place and continue the
      // walk instead of truncating.
      if (!mirrored || ctx == nullptr || off + 2 * sizeof(LogSegment) > pool_size) return 1;
      const LogSegment* rep = seg + 1;
      if (!(rep->flags & LogSegment::kFlagMirrored) || !seg_ok(rep, off)) return 1;
      mem.store_bytes(*ctx, nullptr, seg, rep, sizeof(LogSegment), nvm::Space::kLog);
      mem.clwb(*ctx, nullptr, seg);
      mem.sfence(*ctx, nullptr);
      mem.repair_media_fault(mem.line_of(seg));
      if (repaired != nullptr) (*repaired)++;
    }
    segs.push_back(seg);
    seg_caps.push_back(static_cast<size_t>(seg->capacity));
    total_capacity += static_cast<size_t>(seg->capacity);
    if (segs.size() > 64) return 1;  // cycle guard (corrupt chain)
    link = std::atomic_ref<const uint64_t>(seg->next).load(std::memory_order_acquire);
  }
  return 0;
}

uint64_t slot_header_crc(const TxSlotHeader& h) {
  uint64_t words[sizeof(TxSlotHeader) / 8];
  std::memcpy(words, &h, sizeof(words));
  words[4 + SlotLayout::kHdrCrcPad] = 0;  // status..algo are words 0..3
  uint32_t crc = 0;
  for (uint64_t w : words) crc = util::crc32c_u64(w, crc);
  return crc;
}

bool slot_header_crc_ok(const TxSlotHeader& h) {
  return h.pad[SlotLayout::kHdrCrcPad] == slot_header_crc(h);
}

void seal_and_mirror_header(nvm::Pool& pool, sim::ExecContext& ctx,
                            stats::TxCounters* c, SlotLayout& slot,
                            uint64_t mirror_status) {
  if (!slot.mirrored) return;
  nvm::Memory& mem = pool.mem();
  // A full sealed image carrying `mirror_status`, on its own line, flushed
  // here so it rides whatever flush/fence batch the caller is building.
  TxSlotHeader img;
  std::memcpy(&img, slot.header, sizeof(img));
  img.status = mirror_status;
  img.pad[SlotLayout::kHdrCrcPad] = slot_header_crc(img);
  mem.store_bytes(ctx, c, slot.mirror_header, &img, sizeof(img), nvm::Space::kLog);
  mem.clwb(ctx, c, slot.mirror_header);
}

void seal_primary_header_crc(nvm::Pool& pool, sim::ExecContext& ctx,
                             stats::TxCounters* c, SlotLayout& slot) {
  if (!slot.mirrored) return;
  TxSlotHeader img;
  std::memcpy(&img, slot.header, sizeof(img));
  img.pad[SlotLayout::kHdrCrcPad] = slot_header_crc(img);
  pool.mem().store_word(ctx, c, &slot.header->pad[SlotLayout::kHdrCrcPad],
                        img.pad[SlotLayout::kHdrCrcPad], nvm::Space::kLog);
}

void zero_slot_logs(nvm::Pool& pool, sim::ExecContext& ctx, stats::TxCounters* c,
                    SlotLayout& slot) {
  nvm::Memory& mem = pool.mem();
  // Zero in bounded chunks so store_bytes' internal buffers stay small,
  // flushing each range's lines as we go; a single trailing fence orders
  // everything.
  static constexpr size_t kChunk = 4096;
  static const unsigned char kZeros[kChunk] = {};
  auto wipe = [&](void* dst, size_t len) {
    char* p = static_cast<char*>(dst);
    size_t left = len;
    while (left > 0) {
      const size_t n = left < kChunk ? left : kChunk;
      mem.store_bytes(ctx, c, p, kZeros, n, nvm::Space::kLog);
      for (size_t o = 0; o < n; o += nvm::Memory::kLineBytes) mem.clwb(ctx, c, p + o);
      p += n;
      left -= n;
    }
  };
  wipe(slot.alloc_log, slot.alloc_log_cap * sizeof(uint64_t));
  wipe(slot.log, slot.log_capacity * sizeof(LogEntry));
  if (slot.mirrored) {
    wipe(slot.mirror_alloc_log, slot.alloc_log_cap * sizeof(uint64_t));
    wipe(slot.mirror_log, slot.log_capacity * sizeof(LogEntry));
  }
  for (size_t k = 0; k < slot.segs.size(); k++) {
    wipe(slot.segs[k]->entries(), slot.seg_caps[k] * sizeof(LogEntry));
    if (slot.segs[k]->mirrored()) {
      wipe(slot.segs[k]->mirror_entries(), slot.seg_caps[k] * sizeof(LogEntry));
    }
  }
  mem.sfence(ctx, c);
}

}  // namespace ptm
