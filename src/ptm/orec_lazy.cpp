// orec-lazy: the redo-logging PTM (the paper's best redo-based algorithm,
// from [38]). Writes buffer in the per-thread redo log; home locations are
// only touched at commit, while the write-set orecs are held. Per-
// transaction persistence cost under ADR: one flush+fence batch for the
// log, one for the COMMITTED status, one for the write-back — O(1) fences
// regardless of write-set size, which is why the paper finds redo superior
// to undo for all workloads with non-trivial write sets.
#include <cassert>

#include "analysis/psan.h"
#include "ptm/containment.h"
#include "ptm/runtime.h"
#include "ptm/tx.h"
#include "util/crc32.h"

namespace ptm {

uint64_t Tx::lazy_read(const uint64_t* waddr) {
  nvm::Pool& pool = rt_->pool();
  // Read-own-writes: consult the DRAM-side index of the redo log.
  const uint64_t off = pool.offset_of(waddr);
  const int64_t idx = windex_.lookup(off);
  if (idx >= 0) {
    // The log record lives in PMEM; model the (usually L3-hot) access.
    return pool.mem().load_word(*ctx_, c_,
                                &slot_.entry_at(static_cast<size_t>(idx))->val,
                                nvm::Space::kLog);
  }

  std::atomic<uint64_t>& orec = rt_->orecs().for_addr(waddr);
  const uint64_t v1 = orec.load(std::memory_order_acquire);
  if (OrecTable::is_locked(v1)) {
    // Containment: if the owner's lease expired and it is provably gone,
    // reclaim its transaction so the retry can make progress. This attempt
    // still aborts either way — the retry revalidates from scratch.
    if (cm_) cm_->on_locked_orec(OrecTable::owner_of(v1), *ctx_, c_);
    abort_tx(stats::AbortCause::kConflictRead);
  }
  const uint64_t val = pool.mem().load_word(*ctx_, c_, waddr, nvm::Space::kData);
  const uint64_t v2 = orec.load(std::memory_order_acquire);
  if (v1 != v2 || OrecTable::version_of(v1) > start_time_) {
    abort_tx(stats::AbortCause::kConflictRead);
  }
  read_set_.emplace_back(&orec, v1);
  return val;
}

void Tx::lazy_write(uint64_t* waddr, uint64_t val) {
  const uint64_t off = rt_->pool().offset_of(waddr);
  const int64_t idx = windex_.lookup(off);
  if (idx >= 0) {
    // Update in place in the log (latest value wins at write-back).
    nvm::Memory& mem = rt_->pool().mem();
    if (slot_.mirrored) {
      LogEntry* m = slot_.mirror_entry_at(static_cast<size_t>(idx));
      mem.store_word(*ctx_, c_, &m->val, val, nvm::Space::kLog);
      if (crc_logs_) {
        mem.store_word(*ctx_, c_, &m->off, LogEntry::seal(m->off, val), nvm::Space::kLog);
      }
    }
    LogEntry* e = slot_.entry_at(static_cast<size_t>(idx));
    mem.store_word(*ctx_, c_, &e->val, val, nvm::Space::kLog);
    if (crc_logs_) {
      // The record checksum covers the value; reseal the off word.
      mem.store_word(*ctx_, c_, &e->off, LogEntry::seal(e->off, val), nvm::Space::kLog);
    }
    return;
  }
  if (!windex_.insert(off, static_cast<int64_t>(n_log_))) {
    capacity_abort(CapacityKind::kWriteIndex);
  }
  append_log(off, val);
}

void Tx::lazy_commit() {
  nvm::Pool& pool = rt_->pool();
  nvm::Memory& mem = pool.mem();
  const nvm::CostModel& cm = pool.config().cost;
  ctx_->advance(static_cast<uint64_t>(cm.tx_commit_ns));

  if (n_log_ == 0 && tx_frees_.empty() && n_alloc_log_ == 0) {
    // Read-only: reads were validated incrementally; nothing to persist.
    return;
  }

  OrecTable& orecs = rt_->orecs();
  const auto me = static_cast<uint32_t>(worker_);

  // 1. Acquire the write set's orecs (abort-on-conflict, no waiting).
  for (size_t i = 0; i < n_log_; i++) {
    auto* home = static_cast<uint64_t*>(pool.at(LogEntry::offset_of(slot_.entry_at(i)->off)));
    std::atomic<uint64_t>& orec = orecs.for_addr(home);
    const uint64_t cur = orec.load(std::memory_order_acquire);
    if (OrecTable::is_locked(cur)) {
      if (OrecTable::owner_of(cur) == me) continue;  // hash collision / dup
      // Containment: reclaim a dead owner's lock before giving up.
      if (cm_) cm_->on_locked_orec(OrecTable::owner_of(cur), *ctx_, c_);
      // handle_abort restores the orecs acquired so far
      abort_tx(stats::AbortCause::kConflictWrite);
    }
    if (OrecTable::version_of(cur) > start_time_) {
      abort_tx(stats::AbortCause::kConflictWrite);
    }
    uint64_t expected = cur;
    ctx_->advance(static_cast<uint64_t>(cm.cas_ns));
    if (!orec.compare_exchange_strong(expected, OrecTable::lock_word(me),
                                      std::memory_order_acq_rel)) {
      abort_tx(stats::AbortCause::kConflictWrite);
    }
    owned_.push_back(OwnedOrec{&orec, cur});
  }

  // 2. Linearization point setup: take a commit timestamp.
  const uint64_t wv = orecs.tick();
  commit_ticket_ = wv;

  // 3. Validate the read set (skippable when nothing committed since begin).
  if (wv != start_time_ + 1) {
    stats::PhaseTimer vt(*ctx_, &c_->phases, stats::Phase::kValidate);
    if (!validate_read_set()) abort_tx(stats::AbortCause::kValidation);
  }

  // Epoch mode: hand steps 4's fence sequence to the group-commit leader
  // (seal with stores only, publish, wait for the durable epoch ack), then
  // run the same write-back/retire tail. See epoch.h.
  if (EpochManager* ep = rt_->epochs()) {
    epoch_lazy_publish(*ep, wv);
    return;
  }

  {
    // One flush-drain window covers the log persist, the commit record and
    // the write-back flush — the fence-extended region the paper blames for
    // longer lock-hold times under ADR.
    stats::PhaseTimer ft(*ctx_, &c_->phases, stats::Phase::kFlushDrain);
    analysis::PhaseScope ps(psan_, worker_, stats::Phase::kFlushDrain);

    // 4. Persist the redo log, then the commit record (ADR: one fence each;
    //    eADR/PDRAM elide the flushes inside mem).
    mem.store_word(*ctx_, c_, &slot_.header->log_count, n_log_, nvm::Space::kLog);
    mem.store_word(*ctx_, c_, &slot_.header->algo, static_cast<uint64_t>(algo_),
                   nvm::Space::kLog);
    if (crc_logs_) {
      // Whole-log checksum (crash-sim configs): recovery cross-checks the
      // committed record set beyond the per-record crcs. Persisted by the
      // header flush below, *before* the commit-status flip, so a torn
      // header line can never pair a new status with a stale checksum.
      uint32_t lc = 0;
      for (size_t i = 0; i < n_log_; i++) {
        const LogEntry* e = slot_.entry_at(i);
        lc = util::crc32c_u64(e->val, util::crc32c_u64(e->off, lc));
      }
      mem.store_word(*ctx_, c_, &slot_.header->pad[SlotLayout::kLogCrcPad], lc,
                     nvm::Space::kLog);
    }
    if (slot_.mirrored) {
      // Reseal the primary header CRC over the new counts now; the mirror
      // COMMITTED image gets its own batch *after* the records' fence.
      seal_primary_header_crc(pool, *ctx_, c_, slot_);
    }
    persist_log_range(0, n_log_);
    persist_slot_header();
    mem.sfence(*ctx_, c_);
    // Ordering point (redo rule): the whole redo log and its header must
    // be durable before the COMMITTED record — a commit record over a
    // torn log is exactly the inconsistency recovery's CRCs exist to
    // catch, and without it redo replay applies garbage.
    psan_check_log_persisted(0, n_log_, analysis::DiagKind::kMissingFlush,
                             "redo record unpersisted at commit-record seal");
    psan_check_header_persisted(analysis::DiagKind::kMissingFlush,
                                "slot header unpersisted at commit-record seal");
    if (slot_.mirrored) {
      // Mirror commit record ahead of the primary seal, in its own
      // fence-delimited batch. The mirror's COMMITTED image is a durable
      // commit mark in its own right (recovery trusts it when the primary
      // header is damaged), so it must not be *flushable* before the log
      // records' fence above — a spontaneous writeback could otherwise
      // publish the commit over records that never persisted. The fence
      // below then makes the replica durable before the primary seal.
      seal_and_mirror_header(pool, *ctx_, c_, slot_,
                             TxSlotHeader::make(epoch_, TxSlotHeader::kCommitted));
      mem.sfence(*ctx_, c_);
      psan_check_mirror_log_persisted(0, n_log_, analysis::DiagKind::kMissingFlush,
                                      "mirror redo record unpersisted at commit-record seal");
      psan_check_mirror_header_persisted(analysis::DiagKind::kMissingFlush,
                                         "mirror header unpersisted at commit-record seal");
    }
    set_status(TxSlotHeader::kCommitted, /*fence=*/true);
    // ---- durable commit point ----
    committed_hint_ = true;  // reclamation must now roll FORWARD

    // Ordering point (write-back rule): home-location stores must not
    // start until the commit record is durable — otherwise a crash sees
    // partially-written-back data with an un-sealed log, and recovery
    // rolls the slot back over data the write-back already changed.
    psan_check_header_persisted(analysis::DiagKind::kMisorderedPersist,
                                "write-back ahead of the sealed commit record");

    // 5. Write back to home locations and persist them. Alloc-only /
    // free-only transactions (n_log_ == 0) have nothing to write back and
    // skip the batch — flushing nothing and fencing nothing (psan's
    // redundant-fence lint flagged the unconditional sfence here).
    if (n_log_ > 0) {
      for (size_t i = 0; i < n_log_; i++) {
        const LogEntry* e = slot_.entry_at(i);
        auto* home = static_cast<uint64_t*>(pool.at(LogEntry::offset_of(e->off)));
        mem.store_word(*ctx_, c_, home, e->val, nvm::Space::kData);
        dirty_.add(mem.line_of(home));
      }
      for (const uint64_t line : dirty_.lines()) {
        mem.clwb(*ctx_, c_, pool.base() + line * nvm::Memory::kLineBytes);
      }
      mem.sfence(*ctx_, c_);
    }
  }

  // 6. Apply deferred frees now that the transaction is durably committed.
  apply_frees();

  // 7. Retire the log before releasing the locks: the IDLE record must be
  //    durable first, otherwise recovery could replay this (already
  //    written-back) log over data that later transactions have modified.
  retire_logs();

  // 8. Publish the new version.
  release_owned(OrecTable::version_word(wv));
}

void Tx::lazy_abort_cleanup() {
  // Restore every acquired orec to its pre-lock version.
  for (const OwnedOrec& o : owned_) {
    o.orec->store(o.old_word, std::memory_order_release);
  }
  owned_.clear();
}

}  // namespace ptm
