// Background integrity scrubber.
//
// A DES-scheduled fiber (workloads::run_point spawns one when
// SystemConfig::scrub_interval_ns > 0) that periodically walks every
// worker slot's persistent log metadata — slot headers, alloc logs, write
// logs, overflow segments — plus the allocator's metadata region,
// validating media health and (on mirrored pools) sealed-header CRCs.
// Damage found on a line with an intact replica is repaired in place:
// mirror bytes are copied over the primary, made durable (clwb + sfence),
// and only then is the media fault retired — the same crash-idempotent
// order recovery uses, so a power failure mid-repair at worst re-runs it.
//
// The scrubber's purpose is shrinking the latent-fault window: a line that
// rots *after* its last persist (nvm::Memory::arm_media_fault_at) would
// otherwise sit undetected until the next crash recovery needs it —
// possibly after its mirror rotted too. Scrub passes detect and heal
// one-sided damage while the other copy is still good.
//
// Concurrency: the fiber shares the DES engine with the workers, yielding
// inside every charged load. Slots whose header is not IDLE are skipped
// wholesale (the owner's log lines are in legitimate mid-batch states);
// IDLE-slot log lines are only touched when media-faulted, and repairs
// copy mirror→primary — safe mid-transaction on lazy slots because every
// mirror line is written before its primary, so the mirror is never
// behind.
#pragma once

#include "ptm/runtime.h"

namespace ptm {

class Scrubber {
 public:
  explicit Scrubber(Runtime& rt);

  /// One full walk. Latent media faults due by ctx.now_ns() are activated
  /// first, so a pass observes exactly the rot that exists at its own
  /// simulated time.
  void run_pass(sim::ExecContext& ctx);

  const stats::ScrubStats& stats() const { return s_; }

 private:
  /// Durably rewrite the 64-byte primary line at `primary` from its
  /// replica bytes at `mirror` and retire the media fault. Returns false
  /// (and touches nothing) when there is no replica or the replica line
  /// is itself media-faulted.
  bool repair_line(sim::ExecContext& ctx, const char* primary, const char* mirror);

  /// Scan the whole-line prefix of a (primary, replica) region pair:
  /// charge one media read per line, detect media faults, repair from the
  /// replica when possible. `mirror == nullptr` means detect-only.
  void scan_region(sim::ExecContext& ctx, const char* primary, const char* mirror,
                   size_t bytes);

  Runtime& rt_;
  stats::ScrubStats s_;
};

}  // namespace ptm
