// Ownership records (orecs) and the global version clock.
//
// The paper's best-performing PTMs ("orec-lazy", "orec-eager" from [38])
// coordinate concurrent transactions with a table of versioned locks in the
// style of TL2 [26] / TinySTM [27]: a word address hashes to one orec; an
// orec holds either (version << 1) for an unlocked location or
// (owner_id << 1 | 1) while a transaction owns it. The table and the clock
// are *volatile* (DRAM): after a crash all speculation state is gone and
// versions restart from 1, which is safe because recovery quiesces all logs
// before new transactions run.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace ptm {

class OrecTable {
 public:
  static constexpr size_t kNumOrecs = 1u << 20;

  OrecTable() : orecs_(new std::atomic<uint64_t>[kNumOrecs]) { reset(); }

  static bool is_locked(uint64_t v) { return (v & 1) != 0; }
  static uint64_t lock_word(uint32_t owner) { return (static_cast<uint64_t>(owner) << 1) | 1; }
  static uint32_t owner_of(uint64_t v) { return static_cast<uint32_t>(v >> 1); }
  static uint64_t version_of(uint64_t v) { return v >> 1; }
  static uint64_t version_word(uint64_t version) { return version << 1; }

  std::atomic<uint64_t>& for_addr(const void* addr) {
    const uintptr_t a = reinterpret_cast<uintptr_t>(addr);
    // Word-granularity hashing, as in the LLVM PTM plugin [39].
    const uint64_t h = (a >> 3) * 0x9e3779b97f4a7c15ull;
    return orecs_[(h >> 40) & (kNumOrecs - 1)];
  }

  std::atomic<uint64_t>& at(size_t i) { return orecs_[i]; }

  /// Current global time; transactions sample it at begin.
  uint64_t sample_clock() const { return clock_.load(std::memory_order_acquire); }

  /// Advance the clock for a committing writer; returns the write version.
  uint64_t tick() { return clock_.fetch_add(1, std::memory_order_acq_rel) + 1; }

  /// Drop all speculation state (startup / post-crash).
  void reset() {
    for (size_t i = 0; i < kNumOrecs; i++) {
      orecs_[i].store(version_word(0), std::memory_order_relaxed);
    }
    clock_.store(1, std::memory_order_release);
  }

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> orecs_;
  std::atomic<uint64_t> clock_{1};
};

}  // namespace ptm
