// Undo-log helpers for the orec-eager algorithm.
//
// The undo log shares the LogEntry/SlotLayout format from redo_log.h (val =
// *old* value). This header adds the volatile bookkeeping the eager
// algorithm needs: the set of orecs it owns (with pre-lock versions, so an
// abort can restore them) and the set of dirtied cache lines (so an ADR
// commit can clwb each written-back line exactly once).
#pragma once

#include <cstdint>
#include <vector>

#include <atomic>

namespace ptm {

struct OwnedOrec {
  std::atomic<uint64_t>* orec;
  uint64_t old_word;  // unlocked version word observed before acquisition
};

/// Tracks unique dirty cache lines for commit-time flushing. Write sets are
/// small (the paper measures <40 lines even for TPCC/Vacation), so a flat
/// vector with linear dedup is faster than hashing.
class DirtyLines {
 public:
  void add(uint64_t line) {
    for (uint64_t l : lines_) {
      if (l == line) return;
    }
    lines_.push_back(line);
  }
  const std::vector<uint64_t>& lines() const { return lines_; }
  size_t count() const { return lines_.size(); }
  void clear() { lines_.clear(); }

 private:
  std::vector<uint64_t> lines_;
};

}  // namespace ptm
