// orec-eager: the undo-logging PTM (the paper's best undo-based algorithm,
// from [38]). Writes acquire the orec at encounter time, persist an undo
// record of the old value, and then store the new value in place. Because
// the undo record must be durable *before* the in-place store may persist,
// every write carries a flush+fence under ADR — the O(W) fence cost the
// paper identifies as the reason undo loses to redo on write-heavy
// workloads (Figures 3/4), with TATP as the small-write-set exception.
#include <cassert>

#include "analysis/psan.h"
#include "ptm/containment.h"
#include "ptm/runtime.h"
#include "ptm/tx.h"

namespace ptm {

uint64_t Tx::eager_read(const uint64_t* waddr) {
  nvm::Pool& pool = rt_->pool();
  std::atomic<uint64_t>& orec = rt_->orecs().for_addr(waddr);
  const auto me = static_cast<uint32_t>(worker_);

  const uint64_t v1 = orec.load(std::memory_order_acquire);
  if (OrecTable::is_locked(v1)) {
    if (OrecTable::owner_of(v1) == me) {
      // We own it: the in-place value is ours.
      return pool.mem().load_word(*ctx_, c_, waddr, nvm::Space::kData);
    }
    // Containment: reclaim a dead owner's lock before giving up.
    if (cm_) cm_->on_locked_orec(OrecTable::owner_of(v1), *ctx_, c_);
    abort_tx(stats::AbortCause::kConflictRead);
  }
  const uint64_t val = pool.mem().load_word(*ctx_, c_, waddr, nvm::Space::kData);
  const uint64_t v2 = orec.load(std::memory_order_acquire);
  if (v1 != v2 || OrecTable::version_of(v1) > start_time_) {
    abort_tx(stats::AbortCause::kConflictRead);
  }
  read_set_.emplace_back(&orec, v1);
  return val;
}

void Tx::eager_write(uint64_t* waddr, uint64_t val) {
  nvm::Pool& pool = rt_->pool();
  nvm::Memory& mem = pool.mem();
  const nvm::CostModel& cm = pool.config().cost;
  OrecTable& orecs = rt_->orecs();
  const auto me = static_cast<uint32_t>(worker_);

  std::atomic<uint64_t>& orec = orecs.for_addr(waddr);
  const uint64_t cur = orec.load(std::memory_order_acquire);
  if (OrecTable::is_locked(cur)) {
    if (OrecTable::owner_of(cur) != me) {
      // Containment: reclaim a dead owner's lock before giving up.
      if (cm_) cm_->on_locked_orec(OrecTable::owner_of(cur), *ctx_, c_);
      abort_tx(stats::AbortCause::kConflictWrite);
    }
  } else {
    if (OrecTable::version_of(cur) > start_time_) {
      abort_tx(stats::AbortCause::kConflictWrite);
    }
    uint64_t expected = cur;
    ctx_->advance(static_cast<uint64_t>(cm.cas_ns));
    if (!orec.compare_exchange_strong(expected, OrecTable::lock_word(me),
                                      std::memory_order_acq_rel)) {
      abort_tx(stats::AbortCause::kConflictWrite);
    }
    owned_.push_back(OwnedOrec{&orec, cur});
  }

  // Log the old value; the record (and, on the first write, the ACTIVE
  // status) must persist before the in-place store — hence one fence per
  // write: the O(W) cost.
  const uint64_t old = mem.load_word(*ctx_, c_, waddr, nvm::Space::kData);
  const size_t entry_idx = n_log_;
  append_log(pool.offset_of(waddr), old);
  {
    // The per-write undo persist is undo logging's flush-drain window.
    stats::PhaseTimer ft(*ctx_, &c_->phases, stats::Phase::kFlushDrain);
    analysis::PhaseScope ps(psan_, worker_, stats::Phase::kFlushDrain);
    mem.store_word(*ctx_, c_, &slot_.header->log_count, n_log_, nvm::Space::kLog);
    if (!active_persisted_) {
      mem.store_word(*ctx_, c_, &slot_.header->algo, static_cast<uint64_t>(algo_),
                     nvm::Space::kLog);
      mem.store_word(*ctx_, c_, &slot_.header->status,
                     TxSlotHeader::make(epoch_, TxSlotHeader::kActive), nvm::Space::kLog);
      active_persisted_ = true;
    }
    // Mirror header joins the same per-write batch (mirror record was
    // written by append_log); one fence still covers everything.
    sync_mirror_header();
    persist_log_range(entry_idx, 1);
    persist_slot_header();
    mem.sfence(*ctx_, c_);
  }

  // Ordering point (undo rule): the in-place store below must not precede
  // the durability of its undo record and the ACTIVE header — a crash
  // between them would find new data with no record to roll it back.
  psan_check_log_persisted(entry_idx, 1, analysis::DiagKind::kMisorderedPersist,
                           "in-place store ahead of its undo record");
  psan_check_header_persisted(analysis::DiagKind::kMisorderedPersist,
                              "in-place store ahead of the ACTIVE slot header");
  // Ordering point (mirror rule): the replica undo record and header must
  // be durable too before the in-place store — they are the fallback when
  // the primary line is damaged.
  psan_check_mirror_log_persisted(entry_idx, 1, analysis::DiagKind::kMisorderedPersist,
                                  "in-place store ahead of its mirrored undo record");
  psan_check_mirror_header_persisted(analysis::DiagKind::kMisorderedPersist,
                                     "in-place store ahead of the mirrored ACTIVE header");

  // Speculative in-place store (protected by the orec lock).
  mem.store_word(*ctx_, c_, waddr, val, nvm::Space::kData);
  dirty_.add(mem.line_of(waddr));
}

void Tx::eager_commit() {
  nvm::Pool& pool = rt_->pool();
  nvm::Memory& mem = pool.mem();
  const nvm::CostModel& cm = pool.config().cost;
  ctx_->advance(static_cast<uint64_t>(cm.tx_commit_ns));

  if (owned_.empty() && tx_frees_.empty() && n_alloc_log_ == 0) {
    return;  // read-only
  }

  const uint64_t wv = rt_->orecs().tick();
  commit_ticket_ = wv;
  if (wv != start_time_ + 1) {
    stats::PhaseTimer vt(*ctx_, &c_->phases, stats::Phase::kValidate);
    if (!validate_read_set()) abort_tx(stats::AbortCause::kValidation);
  }

  // Epoch mode: the undo records and ACTIVE header are durable already
  // (per-write persists); the commit-time fences — dirty flush, mirror
  // mark, status flip — move to the group-commit leader. See epoch.h.
  if (EpochManager* ep = rt_->epochs()) {
    epoch_eager_publish(*ep, wv);
    return;
  }

  {
    stats::PhaseTimer ft(*ctx_, &c_->phases, stats::Phase::kFlushDrain);
    analysis::PhaseScope ps(psan_, worker_, stats::Phase::kFlushDrain);
    // Persist the in-place writes, then the commit record. Alloc-only /
    // free-only transactions have no in-place writes and skip the batch
    // entirely — flushing nothing and fencing nothing (psan's
    // redundant-fence lint flagged the unconditional sfence here).
    const bool fence_batch = !dirty_.lines().empty();
    if (fence_batch) {
      for (const uint64_t line : dirty_.lines()) {
        mem.clwb(*ctx_, c_, pool.base() + line * nvm::Memory::kLineBytes);
      }
      mem.sfence(*ctx_, c_);
    }
    // Ordering point (commit seal): every in-place write and the slot
    // header must be durable before the COMMITTED record — recovery must
    // never see a commit record whose effects it cannot reproduce.
    psan_check_dirty_persisted(analysis::DiagKind::kMissingFlush,
                               "in-place write unpersisted at commit-record seal");
    psan_check_header_persisted(analysis::DiagKind::kMissingFlush,
                                "slot header unpersisted at commit-record seal");
    if (slot_.mirrored) {
      // Mirror commit record ahead of the primary seal, in its own
      // fence-delimited batch. The mirror's COMMITTED image is a durable
      // commit mark in its own right (recovery trusts it when the primary
      // header is damaged), so it must not be *flushable* before the
      // in-place writes' fence above — a spontaneous writeback could
      // otherwise publish the commit over data that never persisted. The
      // fence below then makes the replica durable before the primary seal.
      seal_and_mirror_header(pool, *ctx_, c_, slot_,
                             TxSlotHeader::make(epoch_, TxSlotHeader::kCommitted));
      seal_primary_header_crc(pool, *ctx_, c_, slot_);
      persist_slot_header();
      mem.sfence(*ctx_, c_);
      // Ordering point (mirror rule): the replica header must be durable
      // before the primary commit seal counts as committed.
      psan_check_mirror_header_persisted(analysis::DiagKind::kMissingFlush,
                                         "mirror header unpersisted at commit-record seal");
    }
    set_status(TxSlotHeader::kCommitted, /*fence=*/true);
  }
  // ---- durable commit point ----
  committed_hint_ = true;  // reclamation must now roll FORWARD

  apply_frees();

  // Retire the undo log durably before unlocking (recovery must never roll
  // back a committed transaction).
  retire_logs();
  release_owned(OrecTable::version_word(wv));
}

void Tx::eager_rollback() {
  nvm::Pool& pool = rt_->pool();
  nvm::Memory& mem = pool.mem();

  // Restore old values in reverse order (later entries may shadow earlier
  // writes to the same word).
  for (size_t i = n_log_; i-- > 0;) {
    const LogEntry* e = slot_.entry_at(i);
    auto* home = static_cast<uint64_t*>(pool.at(LogEntry::offset_of(e->off)));
    mem.store_word(*ctx_, c_, home, e->val, nvm::Space::kData);
  }
  for (const uint64_t line : dirty_.lines()) {
    mem.clwb(*ctx_, c_, pool.base() + line * nvm::Memory::kLineBytes);
  }
  mem.sfence(*ctx_, c_);

  // The log is dead; make that durable before the locks go.
  retire_logs();

  // Release to the pre-lock versions: the data is unchanged.
  for (const OwnedOrec& o : owned_) {
    o.orec->store(o.old_word, std::memory_order_release);
  }
  owned_.clear();
}

}  // namespace ptm
