#include "fault/oracle.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "nvm/memory.h"
#include "nvm/pool.h"

namespace fault {

namespace {

// More in-flight workers than this means something is wrong with the
// harness (a crash freezes execution; only genuinely concurrent workers
// can be mid-transaction), so refuse rather than enumerate 2^k subsets.
constexpr size_t kMaxInFlight = 16;

std::string format(const char* fmt, uint64_t a, uint64_t b, uint64_t c) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b), static_cast<unsigned long long>(c));
  return std::string(buf);
}

}  // namespace

Oracle::Oracle(nvm::Pool& pool)
    : pool_(pool), hist_(static_cast<size_t>(pool.config().max_workers)) {}

void Oracle::start() {
  snap_.resize(pool_.size());
  std::memcpy(snap_.data(), pool_.base(), pool_.size());
  for (WorkerHist& h : hist_) {
    h.pending.clear();
    h.committed.clear();
  }
}

void Oracle::on_begin(int worker) { hist_[static_cast<size_t>(worker)].pending.clear(); }

void Oracle::on_write(int worker, uint64_t off, uint64_t val) {
  hist_[static_cast<size_t>(worker)].pending.push_back(WriteRec{off, val});
}

void Oracle::on_commit(int worker, uint64_t ticket) {
  WorkerHist& h = hist_[static_cast<size_t>(worker)];
  if (!h.pending.empty()) {
    h.committed.push_back(CommittedTx{ticket, std::move(h.pending)});
  }
  h.pending.clear();
}

void Oracle::on_abort(int worker) {
  // A crash unwinds through the abort path too (Runtime::run's catch-all
  // calls handle_abort before rethrowing nvm::CrashPoint). At that point
  // the transaction's commit record may already be durable even though
  // on_commit never fired — e.g. the crash landed between the commit
  // fence and the observer hook. Keep the pending set: verify() treats
  // the worker as in-flight, whose effects may legally be fully present.
  if (pool_.mem().crashed()) return;
  hist_[static_cast<size_t>(worker)].pending.clear();
}

uint64_t Oracle::heap_word(uint64_t off) const {
  uint64_t v;
  std::memcpy(&v, pool_.base() + off, sizeof(v));
  return v;
}

Oracle::Result Oracle::verify() const {
  Result r;
  if (snap_.empty()) {
    r.detail = "oracle.start() was never called";
    return r;
  }

  // Global commit order = ticket order (the orec clock is ticked inside
  // the commit-side critical window, so tickets agree with the
  // serialization order of conflicting transactions).
  std::vector<const CommittedTx*> committed;
  for (const WorkerHist& h : hist_) {
    for (const CommittedTx& tx : h.committed) committed.push_back(&tx);
  }
  std::stable_sort(committed.begin(), committed.end(),
                   [](const CommittedTx* a, const CommittedTx* b) {
                     return a->ticket < b->ticket;
                   });
  r.committed = committed.size();

  // Expected value at every touched offset, with committed effects applied.
  std::unordered_map<uint64_t, uint64_t> expected;
  std::unordered_set<uint64_t> touched;
  for (const CommittedTx* tx : committed) {
    for (const WriteRec& w : tx->writes) {
      expected[w.off] = w.val;
      touched.insert(w.off);
    }
  }

  std::vector<const std::vector<WriteRec>*> inflight;
  for (const WorkerHist& h : hist_) {
    if (h.pending.empty()) continue;
    inflight.push_back(&h.pending);
    for (const WriteRec& w : h.pending) touched.insert(w.off);
  }
  r.in_flight = inflight.size();
  if (inflight.size() > kMaxInFlight) {
    r.detail = "too many in-flight workers to enumerate";
    return r;
  }

  // Try every all-or-nothing inclusion of the in-flight transactions.
  // An included transaction is one whose commit record reached the
  // persistence domain before the failure; recovery replays (or keeps)
  // its effects in full. Note an *unobserved*-committed transaction may
  // serialize before an observed one — its writes could be overwritten
  // by a later committed transaction on shared offsets — so inclusion
  // applies the pending writes first only where no committed transaction
  // touched the offset... except that would wrongly order it. In
  // practice the only transactions still pending at the crash hold their
  // orecs until after on_commit, so no observed-committed transaction
  // can have raced past them on a shared offset; applying the included
  // pending writes *over* the committed state is therefore exact.
  const size_t k = inflight.size();
  std::string first_fail;
  for (uint64_t mask = 0; mask < (1ull << k); mask++) {
    bool match = true;
    for (uint64_t off : touched) {
      uint64_t want;
      auto it = expected.find(off);
      if (it != expected.end()) {
        want = it->second;
      } else {
        std::memcpy(&want, snap_.data() + off, sizeof(want));
      }
      for (size_t i = 0; i < k; i++) {
        if (!(mask & (1ull << i))) continue;
        for (const WriteRec& w : *inflight[i]) {
          if (w.off == off) want = w.val;
        }
      }
      const uint64_t got = heap_word(off);
      if (got != want) {
        if (first_fail.empty() || mask == 0) {
          first_fail = format("offset 0x%llx: got 0x%llx want 0x%llx", off, got, want);
        }
        match = false;
        break;
      }
    }
    if (match) {
      r.ok = true;
      return r;
    }
  }
  r.detail = "no all-or-nothing outcome matches the heap; e.g. " + first_fail;
  return r;
}

}  // namespace fault
