#include "fault/crashfuzz.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "fault/harness.h"
#include "ptm/containment.h"
#include "ptm/redo_log.h"
#include "ptm/watchdog.h"
#include "sim/engine.h"

namespace fault {

namespace {

// Epoch schedules run the workload on this many concurrent DES workers so
// that full-size epochs actually form (epoch_max_txs below matches it).
// Kill schedules use the same worker count (faults need survivors to do
// the reclaiming) plus one watchdog fiber on the spare id.
constexpr int kEpochWorkers = 3;

// Containment knobs for kill schedules. The lease must outlive any single
// charged operation (so a slow-but-live worker's beat always lands in
// time) yet expire well inside a schedule, and the watchdog patrols a few
// times per lease. The harmless stall resumes inside the lease; the
// zombie stall parks its victim far past it, guaranteeing reclamation
// fences the sleeper before it wakes.
constexpr uint64_t kKillTimeoutNs = 20000;
constexpr uint64_t kKillWatchdogNs = 5000;
constexpr uint64_t kStallHarmlessNs = kKillTimeoutNs / 2;
constexpr uint64_t kStallZombieNs = 4 * kKillTimeoutNs;

// Small pool so each of the thousands of schedules is cheap; the layout
// still exercises overflow-free in-slot logs plus the allocator heap.
nvm::SystemConfig fuzz_cfg(const ScheduleSpec& spec) {
  nvm::SystemConfig cfg;
  cfg.media = nvm::Media::kOptane;
  cfg.domain = spec.domain;
  cfg.crash_sim = true;
  cfg.torn_stores = spec.torn_stores;
  cfg.writeback_adversary = spec.adversary;
  cfg.pool_size = 8ull << 20;
  cfg.max_workers = 4;
  cfg.per_worker_meta_bytes = 1ull << 17;
  cfg.log_mirror = spec.mirror;
  cfg.l3_bytes = 1ull << 20;
  cfg.dram_cache_bytes = 2ull << 20;
  if (spec.epoch) {
    cfg.epoch_commit = true;
    cfg.epoch_max_txs = kEpochWorkers;  // one full batch per concurrent round
    cfg.epoch_max_ns = 20000;           // age-close stragglers and tail epochs
  }
  if (spec.kill) {
    cfg.tx_timeout_ns = kKillTimeoutNs;  // turn containment on
  }
  return cfg;
}

// ---- workload 0: bank transfers (pure data writes; total is conserved
// by every transaction, so it must be conserved by any committed prefix).
constexpr int kAccounts = 48;
constexpr uint64_t kInitBal = 100;
constexpr int kBankTxs = 120;
struct BankRoot {
  uint64_t bal[kAccounts];
};

// ---- workload 1: allocator churn (alloc/dealloc + pointer publication).
// Only root slots are written through the transaction — block payloads
// are left untouched so allocator-internal free-list writes never alias
// an oracle-tracked offset.
constexpr int kSlots = 24;
constexpr int kChurnTxs = 90;
struct ChurnRoot {
  uint64_t slots[kSlots];
};

const char* adversary_name(nvm::WritebackAdversary a) {
  switch (a) {
    case nvm::WritebackAdversary::kRandom: return "random";
    case nvm::WritebackAdversary::kNone: return "none";
    case nvm::WritebackAdversary::kAll: return "all";
    case nvm::WritebackAdversary::kLogFirst: return "log-first";
    case nvm::WritebackAdversary::kDataFirst: return "data-first";
  }
  return "?";
}

const char* workload_name(int w) { return w == 0 ? "bank" : "churn"; }

std::string describe(const ScheduleSpec& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s/%s/%s wl_seed=%" PRIu64 " events=%" PRIu64 " crash_seed=%" PRIu64
                " adversary=%s torn=%d media=%d mirror=%d epoch=%d kill=%d"
                " kill_events=%" PRIu64 " kill2_events=%" PRIu64 " stall_ns=%" PRIu64,
                ptm::algo_suffix(s.algo), nvm::domain_name(s.domain),
                workload_name(s.workload), s.wl_seed, s.arm_events, s.crash_seed,
                adversary_name(s.adversary), s.torn_stores ? 1 : 0,
                s.media_fault ? 1 : 0, s.mirror ? 1 : 0, s.epoch ? 1 : 0,
                s.kill ? 1 : 0, s.kill_events, s.kill2_events, s.stall_ns);
  return std::string(buf);
}

}  // namespace

std::string repro_command(const ScheduleSpec& s) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "crashfuzz --one --algo %s --domain %s --workload %s --wl-seed %" PRIu64
                " --events %" PRIu64 " --crash-seed %" PRIu64
                " --adversary %s --torn %d --media %d --mirror %d --epoch %d"
                " --kill %d --kill-events %" PRIu64 " --kill2-events %" PRIu64
                " --stall-ns %" PRIu64,
                ptm::algo_suffix(s.algo), nvm::domain_name(s.domain),
                workload_name(s.workload), s.wl_seed, s.arm_events, s.crash_seed,
                adversary_name(s.adversary), s.torn_stores ? 1 : 0,
                s.media_fault ? 1 : 0, s.mirror ? 1 : 0, s.epoch ? 1 : 0,
                s.kill ? 1 : 0, s.kill_events, s.kill2_events, s.stall_ns);
  return std::string(buf);
}

bool run_schedule(const ScheduleSpec& spec, std::string* why, uint64_t* events_out,
                  stats::RecoveryReport* report_out) {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg + " [" + describe(spec) + "]";
    return false;
  };

  const nvm::SystemConfig cfg = fuzz_cfg(spec);
  CrashHarness h(cfg, spec.algo);
  sim::RealContext ctx(0, cfg.max_workers);
  util::Rng wl_rng(spec.wl_seed * 2654435761ull + 7);

  auto* bank = h.pool.root<BankRoot>();  // the two roots alias; only one is used
  auto* churn = h.pool.root<ChurnRoot>();

  // Populate.
  if (spec.workload == 0) {
    h.rt.run(ctx, [&](ptm::Tx& tx) {
      for (int i = 0; i < kAccounts; i++) tx.write(&bank->bal[i], kInitBal);
    });
  } else {
    h.rt.run(ctx, [&](ptm::Tx& tx) {
      for (int i = 0; i < kSlots; i++) tx.write(&churn->slots[i], uint64_t{0});
    });
  }
  h.seal_initial_state();

  // Per-transaction bodies, shared by the sequential and the epoch
  // (concurrent DES) execution modes below.
  auto bank_tx = [&](sim::ExecContext& tctx, util::Rng& rng) {
    const uint64_t a = rng.next_bounded(kAccounts);
    const uint64_t b = (a + 1 + rng.next_bounded(kAccounts - 1)) % kAccounts;
    h.rt.run(tctx, [&](ptm::Tx& tx) {
      const uint64_t fa = tx.read(&bank->bal[a]);
      const uint64_t fb = tx.read(&bank->bal[b]);
      const uint64_t amt = fa > 7 ? 7 : fa;
      tx.write(&bank->bal[a], fa - amt);
      tx.write(&bank->bal[b], fb + amt);
    });
  };
  auto churn_tx = [&](sim::ExecContext& tctx, util::Rng& rng) {
    const uint64_t s = rng.next_bounded(kSlots);
    const uint64_t sz = 16 + rng.next_bounded(100);
    h.rt.run(tctx, [&](ptm::Tx& tx) {
      const uint64_t old = tx.read(&churn->slots[s]);
      if (old != 0) tx.dealloc(reinterpret_cast<void*>(old));
      void* blk = tx.alloc(sz);
      tx.write(&churn->slots[s], reinterpret_cast<uint64_t>(blk));
    });
  };

  // Run until the armed crash (or to completion on a dry run). Kill
  // schedules arm fiber faults on the same shared event counter.
  if (spec.kill && spec.kill_events != 0) {
    h.pool.mem().arm_thread_fault(spec.kill_events, spec.stall_ns);
  }
  if (spec.kill && spec.kill2_events != 0) {
    h.pool.mem().arm_thread_fault(spec.kill2_events);
  }
  const uint64_t arm = spec.arm_events != 0 ? spec.arm_events : ~0ull;
  const uint64_t events_before = h.pool.mem().persistence_events();
  uint64_t kill_sim_end = 0;
  const bool crashed = h.run_until_crash(arm, spec.crash_seed, [&] {
    if (spec.epoch || spec.kill) {
      // Concurrent mode: the same transaction budget, split across DES
      // workers — epoch schedules need full-size epochs to form; kill
      // schedules need survivors to trip over a victim's locks and
      // reclaim them. The engine runs every fiber to completion before
      // rethrowing the first CrashPoint (frozen memory kills the rest at
      // their next persistence event, and EpochManager marks stranded
      // members kCrashed), so the harness still sees exactly one
      // CrashPoint for the whole group. With spec.kill an extra watchdog
      // fiber patrols on the spare worker id; per-worker FiberKills are
      // contained right here — the dead fiber just stops.
      const bool dog_fiber = spec.kill;
      sim::Engine engine(dog_fiber ? kEpochWorkers + 1 : kEpochWorkers);
      std::atomic<int> active{kEpochWorkers};
      ptm::Watchdog watchdog(h.rt);
      const int txs = (spec.workload == 0 ? kBankTxs : kChurnTxs) / kEpochWorkers;
      engine.run([&](sim::ExecContext& wctx) {
        if (dog_fiber && wctx.worker_id() == kEpochWorkers) {
          while (active.load(std::memory_order_acquire) > 0) {
            watchdog.run_pass(wctx);
            if (active.load(std::memory_order_acquire) <= 0) break;
            wctx.advance(kKillWatchdogNs);
          }
          return;
        }
        // Decrement on ANY exit — normal completion, FiberKill, or a
        // CrashPoint unwinding — or the watchdog fiber never terminates.
        struct ActiveGuard {
          std::atomic<int>& a;
          ~ActiveGuard() { a.fetch_sub(1, std::memory_order_acq_rel); }
        } guard{active};
        util::Rng rng(spec.wl_seed * 2654435761ull + 7 +
                      0x9e3779b9ull * static_cast<uint64_t>(wctx.worker_id() + 1));
        try {
          for (int t = 0; t < txs; t++) {
            if (spec.workload == 0) bank_tx(wctx, rng);
            else churn_tx(wctx, rng);
          }
        } catch (const nvm::FiberKill&) {
          // This worker is dead. Its speculative debris (locked orecs,
          // mid-flight log slot) stays for containment to reclaim;
          // survivors and the watchdog keep running.
        }
      });
      kill_sim_end = engine.elapsed_ns();
    } else if (spec.workload == 0) {
      for (int t = 0; t < kBankTxs; t++) bank_tx(ctx, wl_rng);
    } else {
      for (int t = 0; t < kChurnTxs; t++) churn_tx(ctx, wl_rng);
    }
  });
  if (events_out) {
    *events_out = h.pool.mem().persistence_events() - events_before;
  }
  // Disarm leftover fiber faults before any verification/recovery code
  // issues persistence events of its own.
  if (spec.kill) h.pool.mem().clear_thread_faults();
  if (spec.arm_events != 0 && !crashed) {
    // Armed past the end of the run: nothing to check (sweep callers
    // bound arm_events by the dry-run total, so this is not a failure).
    return true;
  }

  if (spec.kill && !crashed) {
    // Online containment verdict, before any power failure: let a sweep
    // from a fresh context — advanced past every possible lease expiry —
    // reclaim whatever the kills left behind, then hold the DRAM-visible
    // heap to the durable-linearizability contract. Every killed victim
    // must be resolved all-or-nothing ON LINE (completed forward if its
    // commit record sealed, rolled back otherwise) with its orecs free;
    // un-killed workers' transactions all committed normally.
    if (ptm::ContainmentManager* cm = h.rt.containment()) {
      sim::RealContext vctx(kEpochWorkers, cfg.max_workers);
      vctx.advance(kill_sim_end + 2 * kKillTimeoutNs + 1);
      cm->sweep(vctx, nullptr);
      const Oracle::Result ores = h.verify();
      if (!ores.ok) {
        return fail("online containment oracle: " + ores.detail);
      }
      // Lift the quarantine so the invariant checks (and the power-fail
      // recovery below) can reuse the killed workers' descriptors.
      cm->revive_all();
    }
  }

  if (spec.media_fault) {
    uint64_t line;
    if (spec.mirror) {
      // Mirrored pools must *survive* a single-copy fault: poison worker
      // 0's primary slot-header line (even crash seeds) or the first line
      // of its primary write log (odd seeds). The mirror holds the only
      // remaining copy, so the strict checks below prove the fallback
      // path actually carries the recovery.
      ptm::SlotLayout slot = ptm::SlotLayout::carve(
          h.pool.worker_meta(0), h.pool.worker_meta_bytes(), /*mirror=*/true);
      const char* target = spec.crash_seed % 2 == 0
                               ? reinterpret_cast<const char*>(slot.header)
                               : reinterpret_cast<const char*>(slot.log);
      line = h.pool.mem().line_of(target);
    } else {
      // Unmirrored: poison one line inside worker 0's log region. Records
      // on that line are legitimately lost, so the oracle verdict is not
      // required — the requirements are that recovery survives,
      // attributes the damage, and leaves a usable runtime.
      line = h.pool.header()->meta_off / nvm::Memory::kLineBytes + 1 +
             spec.crash_seed % 16;
    }
    h.pool.mem().inject_media_fault(line);
  }

  h.power_fail_and_recover(ctx, spec.crash_seed + 1);
  if (report_out) *report_out = h.report;

  if (spec.media_fault && !spec.mirror) {
    if (h.report.media_faults == 0) {
      return fail("media fault injected but not reported by recovery");
    }
  } else {
    const Oracle::Result res = h.verify();
    if (!res.ok) {
      // With psan on (REPRO_PSAN=1), classify the failure mode: lines the
      // crashed run never even flushed point at a missing-flush algorithm
      // bug; none means the schedule tore state the algorithm did order.
      std::string msg = "oracle: " + res.detail;
      if (h.pool.mem().psan() != nullptr) {
        char note[96];
        std::snprintf(note, sizeof(note),
                      " (psan: %zu never-flushed line(s) at crash%s",
                      h.crash_unflushed.size(),
                      h.crash_unflushed.empty() ? " — torn by schedule)" : ")");
        msg += note;
        if (!h.crash_unflushed.empty()) {
          char ln[32];
          std::snprintf(ln, sizeof(ln), " first=line %" PRIu64,
                        h.crash_unflushed.front());
          msg += ln;
        }
      }
      return fail(msg);
    }
    if (spec.media_fault) {
      // Mirrored media trial: the oracle verdict above already proved no
      // committed state went missing; recovery must additionally have
      // seen the fault and must not have declared anything lost.
      if (h.report.media_faults == 0) {
        return fail("media fault injected but not reported by recovery");
      }
    } else {
      // Cross-check the recovery report: with no media damage, a
      // committed log may never fail its whole-log checksum, and no
      // phantom fault may be reported.
      if (h.report.log_crc_mismatches != 0) {
        return fail("whole-log CRC mismatch on an undamaged log");
      }
      if (h.report.records_media_faulted != 0 || h.report.media_faults != 0) {
        return fail("phantom media fault reported");
      }
    }
    // No record that passed its CRC may carry an out-of-range offset, and
    // nothing on these schedules is allowed to be lost: without media
    // damage every record has at least its primary copy, and with the
    // single-copy media trials the mirror must carry the recovery.
    if (h.report.records_invalid != 0) {
      return fail("CRC-valid record with out-of-bounds offset");
    }
    if (h.report.records_lost != 0) {
      return fail("recovery reported lost records on a survivable schedule");
    }
  }

  // Workload invariants (read-only / allocator-metadata checks; run after
  // verify() so they cannot perturb the oracle comparison).
  if (spec.workload == 0) {
    uint64_t total = 0;
    h.rt.run(ctx, [&](ptm::Tx& tx) {
      total = 0;
      for (int i = 0; i < kAccounts; i++) total += tx.read(&bank->bal[i]);
    });
    if (total != static_cast<uint64_t>(kAccounts) * kInitBal) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "money not conserved: total=%" PRIu64, total);
      return fail(buf);
    }
  } else {
    std::set<uint64_t> live;
    for (int s = 0; s < kSlots; s++) {
      const uint64_t p = churn->slots[s];
      if (p == 0) continue;
      if (!live.insert(p).second) return fail("two slots share a block");
      if (h.rt.allocator().in_free_list(reinterpret_cast<void*>(p))) {
        return fail("live block is simultaneously on a free list");
      }
    }
  }
  return true;
}

int run_crashfuzz(const FuzzOptions& opt) {
  std::vector<ptm::Algo> algos;
  if (opt.only_algo.empty() || opt.only_algo == "R") algos.push_back(ptm::Algo::kOrecLazy);
  if (opt.only_algo.empty() || opt.only_algo == "U") algos.push_back(ptm::Algo::kOrecEager);
  std::vector<nvm::Domain> domains;
  for (auto d : {nvm::Domain::kAdr, nvm::Domain::kEadr, nvm::Domain::kPdram,
                 nvm::Domain::kPdramLite}) {
    if (opt.only_domain.empty() || opt.only_domain == nvm::domain_name(d)) {
      domains.push_back(d);
    }
  }
  std::vector<int> workloads;
  for (int w : {0, 1}) {
    if (opt.only_workload < 0 || opt.only_workload == w) workloads.push_back(w);
  }
  if (algos.empty() || domains.empty() || workloads.empty()) {
    std::fprintf(stderr, "crashfuzz: filter matches no configuration\n");
    return 1;
  }

  int failures = 0;
  int run = 0;
  auto check = [&](const ScheduleSpec& s, uint64_t* events_out = nullptr,
                   stats::RecoveryReport* report_out = nullptr) {
    std::string why;
    run++;
    if (!run_schedule(s, &why, events_out, report_out)) {
      failures++;
      std::fprintf(stderr, "FAIL: %s\n  repro: %s\n", why.c_str(),
                   repro_command(s).c_str());
      return false;
    }
    return true;
  };

  // Phase 1: deterministic sweep. One dry run per configuration measures
  // the schedule's persistence-event count E; then every event in
  // [1, sweep] and every stride-th event after that becomes a crash
  // point — or, with --kill, a fiber-kill point (no power failure: the
  // survivors and the watchdog must resolve the victim ON LINE and the
  // heap must verify without any recovery pass). Identical wl_seed per
  // configuration keeps the execution prefix fixed while the fault point
  // moves.
  std::map<std::tuple<int, int, int>, uint64_t> totals;
  for (ptm::Algo algo : algos) {
    for (nvm::Domain domain : domains) {
      for (int wl : workloads) {
        ScheduleSpec s;
        s.algo = algo;
        s.domain = domain;
        s.workload = wl;
        s.wl_seed = 11;
        s.arm_events = 0;
        s.mirror = opt.mirror;
        s.epoch = opt.epoch;
        s.kill = opt.kill;
        uint64_t total = 0;
        if (!check(s, &total)) continue;
        totals[{static_cast<int>(algo), static_cast<int>(domain), wl}] = total;
        if (opt.verbose) {
          std::printf("sweep %s/%s/%s: %" PRIu64 " events\n", ptm::algo_suffix(algo),
                      nvm::domain_name(domain), workload_name(wl), total);
        }
        const uint64_t stride = std::max<uint64_t>(1, total / 16);
        for (uint64_t k = 1; k <= total; k++) {
          if (k > static_cast<uint64_t>(opt.sweep) && k % stride != 0) continue;
          if (opt.kill) {
            s.kill_events = k;
            s.arm_events = 0;
          } else {
            s.arm_events = k;
          }
          s.crash_seed = 1000 + k;
          check(s);
        }
      }
    }
  }

  // Phase 1b: deterministic media-fault trials (recovery must survive a
  // poisoned log line and attribute it, under every algo × domain). With
  // --mirror, a fourth trial per configuration rots the primary slot
  // header of a cleanly finished run — the mirror is then provably the
  // only copy, so the repair counter must move across the phase.
  uint64_t mirror_repairs = 0;
  for (ptm::Algo algo : algos) {
    for (nvm::Domain domain : domains) {
      for (int i = 0; i < (opt.mirror ? 4 : 3); i++) {
        ScheduleSpec s;
        s.algo = algo;
        s.domain = domain;
        s.workload = 0;
        s.media_fault = true;
        s.mirror = opt.mirror;
        s.epoch = opt.epoch;
        s.kill = opt.kill;  // containment on, but no fiber fault armed
        if (i == 3) {
          s.wl_seed = 29;
          s.arm_events = 0;    // no crash: poison strikes a quiesced pool
          s.crash_seed = 600;  // even → primary header line
        } else {
          s.wl_seed = 23 + static_cast<uint64_t>(i);
          s.arm_events = 40 + 17 * static_cast<uint64_t>(i);
          // Mirrored mid-run trials use odd seeds (→ first log line): a
          // sealed record's mirror is fence-protected before the primary
          // commit/in-place store, so the fallback always has a copy. The
          // header line is only poisoned at the quiescent point above —
          // poisoning it mid-header-update can destroy both copies at
          // once, which is real (reported) loss, not a survivable fault.
          s.crash_seed = opt.mirror ? 501 + 2 * static_cast<uint64_t>(i)
                                    : 500 + static_cast<uint64_t>(i);
        }
        stats::RecoveryReport rep;
        if (check(s, nullptr, &rep) && opt.mirror) {
          mirror_repairs += rep.records_repaired;
        }
      }
    }
  }
  if (opt.mirror && failures == 0 && mirror_repairs == 0) {
    failures++;
    std::fprintf(stderr,
                 "FAIL: mirrored media trials never exercised a repair "
                 "(records_repaired == 0 across phase 1b)\n");
  }

  // Phase 2: randomized exploration, fully replayable from --seed. With
  // --kill every schedule carries a fiber fault: 25% arm a second fault
  // (which can strike the reclaimer mid-reclamation, or the takeover
  // leader mid-drain), 25% stall instead of kill (half harmless — the
  // worker resumes inside its lease — half zombie: parked far past it, so
  // reclamation must fence the sleeper), and half of all kill schedules
  // ALSO arm a power failure on top, crossing online reclamation with
  // crash recovery at every relative position the rng finds.
  util::Rng rng(opt.seed * 1000003ull + 17);
  for (int i = 0; i < opt.schedules; i++) {
    ScheduleSpec s;
    s.algo = algos[rng.next_bounded(algos.size())];
    s.domain = domains[rng.next_bounded(domains.size())];
    s.workload = workloads[rng.next_bounded(workloads.size())];
    s.mirror = opt.mirror;
    s.epoch = opt.epoch;
    s.adversary = static_cast<nvm::WritebackAdversary>(rng.next_bounded(5));
    s.wl_seed = 1 + rng.next_bounded(1ull << 30);
    s.crash_seed = 1 + rng.next_bounded(1ull << 30);
    const auto key = std::tuple<int, int, int>{static_cast<int>(s.algo),
                                               static_cast<int>(s.domain), s.workload};
    const auto it = totals.find(key);
    // The dry-run total for wl_seed=11 is a good scale estimate for any
    // seed; arming past the actual end just yields a crash-free pass.
    const uint64_t scale = it != totals.end() ? it->second : 2000;
    s.arm_events = 1 + rng.next_bounded(scale);
    if (opt.kill) {
      s.kill = true;
      s.kill_events = 1 + rng.next_bounded(scale);
      const uint64_t mode = rng.next_bounded(4);
      if (mode == 0) {
        s.kill2_events = 1 + rng.next_bounded(scale);
      } else if (mode == 1) {
        s.stall_ns = rng.next_bounded(2) != 0 ? kStallZombieNs : kStallHarmlessNs;
      }
      if (rng.next_bounded(2) == 0) s.arm_events = 0;  // kills only, no crash
    }
    check(s);
    if (opt.verbose && (i + 1) % 100 == 0) {
      std::printf("randomized: %d/%d (failures so far: %d)\n", i + 1, opt.schedules,
                  failures);
    }
  }

  std::printf("crashfuzz: %d schedules across %zu algo(s) x %zu domain(s) x %zu "
              "workload(s): %d failure(s)\n",
              run, algos.size(), domains.size(), workloads.size(), failures);
  return failures;
}

}  // namespace fault
