// Durable-linearizability oracle.
//
// A DRAM-side shadow history recorder (ptm::TxObserver) plus a post-
// recovery verifier. While a workload runs, the oracle records every
// transaction's write set and, on success, its commit ticket (the orec
// clock value, which is the commit order). After a simulated power
// failure and Runtime::recover(), verify() proves the durable-
// linearizability contract on the *actual heap bytes*, for any workload,
// without hand-written invariants:
//
//  * every observed-committed transaction's effects are fully present, in
//    ticket order;
//  * each transaction in flight at the crash is all-or-nothing: its
//    writes are either completely present (its commit record reached the
//    persistence domain before the failure — the legal "in-flight
//    included" outcome) or completely absent;
//  * no other value appears at any offset the history touched.
//
// The in-flight side is checked by enumerating every subset of in-flight
// workers (at most a handful are mid-transaction at a crash) and testing
// whether some all-or-nothing inclusion explains the heap exactly.
//
// Recording is per-worker (no shared mutable state), so the hooks are
// safe under real-thread and DES execution alike. The heap snapshot taken
// at start() provides pre-history values — snapshotting, rather than
// capturing pre-images at on_write time, avoids racing with orec-eager's
// speculative in-place stores.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ptm/runtime.h"

namespace fault {

class Oracle : public ptm::TxObserver {
 public:
  explicit Oracle(nvm::Pool& pool);

  /// Snapshot the heap and reset all recorded history. Call after
  /// population / checkpoint, before installing the oracle with
  /// Runtime::set_observer(&oracle).
  void start();

  // ptm::TxObserver hooks (called by the runtime on worker threads).
  void on_begin(int worker) override;
  void on_write(int worker, uint64_t off, uint64_t val) override;
  void on_commit(int worker, uint64_t ticket) override;
  void on_abort(int worker) override;

  struct Result {
    bool ok = false;
    std::string detail;     // first counterexample, for failure reports
    size_t committed = 0;   // committed transactions checked
    size_t in_flight = 0;   // workers mid-transaction at the crash
  };

  /// Check the pool's current contents (call after power failure +
  /// recovery, with the observer detached). Read-only; may be called
  /// repeatedly.
  Result verify() const;

 private:
  struct WriteRec {
    uint64_t off;
    uint64_t val;
  };
  struct CommittedTx {
    uint64_t ticket;
    std::vector<WriteRec> writes;
  };
  struct WorkerHist {
    std::vector<WriteRec> pending;      // current attempt's writes
    std::vector<CommittedTx> committed; // this worker's committed txs
  };

  uint64_t heap_word(uint64_t off) const;

  nvm::Pool& pool_;
  std::vector<unsigned char> snap_;  // heap bytes at start()
  std::vector<WorkerHist> hist_;     // indexed by worker id
};

}  // namespace fault
