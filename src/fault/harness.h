// Crash-trial harness: the arm → run-until-crash → power-fail → recover
// → verify sequence that every crash-consistency test and the crashfuzz
// explorer share. Owns the pool, the runtime and a durable-linearizability
// oracle wired in as the runtime's TxObserver.
//
// Usage:
//   fault::CrashHarness h(cfg, algo);
//   h.rt.run(ctx, setup);                 // populate
//   h.seal_initial_state();               // committed baseline
//   h.run_until_crash(events, seed, [&] { ...transactions... });
//   h.power_fail_and_recover(ctx);        // -> h.report
//   auto res = h.verify();                // oracle verdict
//
// Call verify() before running any post-recovery transactions: the oracle
// compares heap bytes against the recorded history, and later (unobserved)
// transactions would legitimately change them.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "analysis/psan.h"
#include "fault/oracle.h"
#include "nvm/pool.h"
#include "ptm/runtime.h"
#include "sim/context.h"
#include "util/rng.h"

namespace fault {

class CrashHarness {
 public:
  CrashHarness(const nvm::SystemConfig& cfg, ptm::Algo algo)
      : pool(cfg), rt(pool, algo), oracle(pool) {}

  ~CrashHarness() { rt.set_observer(nullptr); }

  /// Mark the current (populated) pool contents as the durable baseline.
  void seal_initial_state() { pool.mem().checkpoint_all_persistent(); }

  /// Arm a crash at the `events`-th persistence event, snapshot the oracle
  /// baseline, attach it, and run `body`. Returns true iff the crash fired
  /// (body may also complete normally when `events` exceeds the run).
  template <typename Body>
  bool run_until_crash(uint64_t events, uint64_t crash_seed, Body&& body) {
    pool.mem().arm_crash_after(events, crash_seed);
    oracle.start();
    rt.set_observer(&oracle);
    bool crashed = false;
    try {
      std::forward<Body>(body)();
    } catch (const nvm::CrashPoint&) {
      crashed = true;
    }
    return crashed;
  }

  /// Resolve the crash image, then recover. Detaches the oracle first so
  /// recovery and post-recovery transactions are not recorded. The
  /// recovery report is kept in `report` and also returned.
  stats::RecoveryReport power_fail_and_recover(sim::ExecContext& ctx,
                                               uint64_t image_seed = 17) {
    rt.set_observer(nullptr);
    util::Rng r(image_seed);
    pool.simulate_power_failure(r);
    if (analysis::Psan* ps = pool.mem().psan()) {
      // Captured before recovery's own stores disturb psan state: lines
      // the crashed run stored but never flushed. Most are ordinary
      // mid-transaction debris the log covers; their value is diagnostic —
      // when verify() fails on one of these lines, the bug is "never
      // flushed at all" rather than "torn by this crash schedule".
      crash_unflushed = ps->crash_unflushed_lines();
    }
    report = rt.recover(ctx);
    return report;
  }

  /// Durable-linearizability verdict on the recovered heap.
  Oracle::Result verify() const { return oracle.verify(); }

  nvm::Pool pool;
  ptm::Runtime rt;
  Oracle oracle;
  stats::RecoveryReport report;

  /// psan's never-flushed dirty lines at the most recent power failure
  /// (empty when psan is off — or when the algorithm flushed everything
  /// it was required to, which the shipped algorithms always do).
  std::vector<uint64_t> crash_unflushed;
};

}  // namespace fault
