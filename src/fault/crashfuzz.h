// Crash-schedule explorer ("crashfuzz"): systematically sweeps and
// randomly samples power-failure points across {orec-lazy, orec-eager} ×
// all four durability domains × workloads, with sub-line tearing and
// adversarial writeback schedules enabled, and checks every recovered
// heap against the durable-linearizability oracle plus workload
// invariants. Every schedule is fully described by a ScheduleSpec, so a
// failure prints a one-line repro command.
#pragma once

#include <cstdint>
#include <string>

#include "nvm/domain.h"
#include "ptm/tx.h"

namespace stats {
struct RecoveryReport;
}

namespace fault {

/// Complete, replayable description of one crash schedule.
struct ScheduleSpec {
  ptm::Algo algo = ptm::Algo::kOrecLazy;
  nvm::Domain domain = nvm::Domain::kAdr;
  int workload = 0;          // 0 = bank transfers, 1 = alloc/free churn
  uint64_t wl_seed = 1;      // workload rng (fixes the execution)
  uint64_t arm_events = 0;   // crash at this persistence event (0 = never)
  uint64_t crash_seed = 1;   // rng for crash-image resolution
  bool torn_stores = true;
  nvm::WritebackAdversary adversary = nvm::WritebackAdversary::kRandom;
  bool media_fault = false;  // poison a log line before recovery
  bool mirror = false;       // run with SystemConfig::log_mirror on; media
                             // trials then target a mirrored line (header or
                             // first log line) and are gated on zero loss
  bool epoch = false;        // group-commit mode: the workload runs on three
                             // concurrent DES workers publishing into size-3
                             // epochs, so a crash can land mid-epoch with
                             // several members between publish and ack
  bool kill = false;         // thread-crash containment mode: concurrent DES
                             // workers with orec leases + a watchdog fiber;
                             // thread faults below strike whoever executes
                             // the armed persistence event. Composes with
                             // mirror/epoch and with arm_events (a power
                             // failure on top of fiber kills).
  uint64_t kill_events = 0;  // fiber fault at this persistence event (0 = none)
  uint64_t kill2_events = 0; // second armed fault — can strike the reclaimer
                             // mid-reclamation (always a kill, never a stall)
  uint64_t stall_ns = 0;     // 0: the first fault kills; > 0: it stalls the
                             // worker this long, then resumes via the fenced
                             // probe (zombie if a reclaimer fenced it)
};

/// The exact `crashfuzz --one ...` invocation that replays `spec`.
std::string repro_command(const ScheduleSpec& spec);

/// Run one schedule. Returns true on pass; on failure `why` (if non-null)
/// receives the counterexample. `events_out` (if non-null) receives the
/// total persistence events the workload executed (for dry runs).
/// `report_out` (if non-null) receives the recovery report of the
/// schedule's crash recovery (untouched on crash-free early exits).
bool run_schedule(const ScheduleSpec& spec, std::string* why,
                  uint64_t* events_out = nullptr,
                  stats::RecoveryReport* report_out = nullptr);

struct FuzzOptions {
  uint64_t seed = 1;        // base seed for the randomized phase
  int schedules = 500;      // randomized schedules across the matrix
  int sweep = 48;           // deterministic sweep: first N events per config
  bool verbose = false;
  int only_workload = -1;   // -1 = all
  std::string only_algo;    // "R" / "U" ("" = both)
  std::string only_domain;  // "ADR" / "eADR" / "PDRAM" / "PDRAM-Lite" ("" = all)
  bool mirror = false;      // run the whole suite with log mirroring on;
                            // gates every schedule on records_lost == 0 and
                            // the media trials on nonzero records_repaired
  bool epoch = false;       // run the whole suite in group-commit mode (see
                            // ScheduleSpec::epoch)
  bool kill = false;        // run the whole suite in thread-crash containment
                            // mode: the deterministic sweep kills at every
                            // event instead of crashing, and the randomized
                            // phase mixes kills, stalls, reclaimer kills and
                            // power failures (see ScheduleSpec::kill)
};

/// Deterministic sweeps + media-fault trials + randomized exploration.
/// Returns the number of failing schedules (0 = all passed).
int run_crashfuzz(const FuzzOptions& opt);

}  // namespace fault
