// crashfuzz driver.
//
//   crashfuzz [--schedules N] [--sweep N] [--seed S] [--algo R|U]
//             [--domain ADR|eADR|PDRAM|PDRAM-Lite] [--workload bank|churn]
//             [--mirror 0|1] [--epoch 0|1] [--kill 0|1] [--verbose]
//       Deterministic event sweeps + media-fault trials + N randomized
//       schedules across the selected matrix. Exit code = failure count.
//       With --mirror 1 every schedule runs with log mirroring on, gated
//       on zero lost records; media trials must demonstrate repairs.
//       With --epoch 1 every schedule runs in group-commit mode: three
//       concurrent DES workers publish into size-3 epochs, so crashes
//       land mid-epoch with members between publish and ack.
//       With --kill 1 every schedule runs in thread-crash containment
//       mode: the deterministic sweep kills a worker fiber at every
//       event (no power failure — survivors must reclaim the victim and
//       the heap must verify online), and the randomized phase mixes
//       kills, reclaimer kills, stalls, and power failures on top. The
//       modes compose: --epoch 1 --mirror 1 --kill 1 is one run.
//
//   crashfuzz --one --algo R --domain ADR --workload bank --wl-seed S
//             --events K --crash-seed S [--adversary NAME] [--torn 0|1]
//             [--media 0|1] [--mirror 0|1] [--epoch 0|1] [--kill 0|1]
//             [--kill-events K] [--kill2-events K] [--stall-ns N]
//       Replay a single schedule (the repro line printed on failure).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fault/crashfuzz.h"

namespace {

int usage() {
  std::fprintf(stderr, "crashfuzz: bad arguments (see source header for usage)\n");
  return 2;
}

bool parse_algo(const char* s, ptm::Algo* out) {
  if (std::strcmp(s, "R") == 0) *out = ptm::Algo::kOrecLazy;
  else if (std::strcmp(s, "U") == 0) *out = ptm::Algo::kOrecEager;
  else return false;
  return true;
}

bool parse_domain(const char* s, nvm::Domain* out) {
  for (auto d : {nvm::Domain::kAdr, nvm::Domain::kEadr, nvm::Domain::kPdram,
                 nvm::Domain::kPdramLite}) {
    if (std::strcmp(s, nvm::domain_name(d)) == 0) {
      *out = d;
      return true;
    }
  }
  return false;
}

bool parse_workload(const char* s, int* out) {
  if (std::strcmp(s, "bank") == 0) *out = 0;
  else if (std::strcmp(s, "churn") == 0) *out = 1;
  else return false;
  return true;
}

bool parse_adversary(const char* s, nvm::WritebackAdversary* out) {
  struct {
    const char* name;
    nvm::WritebackAdversary a;
  } table[] = {
      {"random", nvm::WritebackAdversary::kRandom},
      {"none", nvm::WritebackAdversary::kNone},
      {"all", nvm::WritebackAdversary::kAll},
      {"log-first", nvm::WritebackAdversary::kLogFirst},
      {"data-first", nvm::WritebackAdversary::kDataFirst},
  };
  for (const auto& e : table) {
    if (std::strcmp(s, e.name) == 0) {
      *out = e.a;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bool one = false;
  fault::ScheduleSpec spec;
  fault::FuzzOptions opt;

  for (int i = 1; i < argc; i++) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v = nullptr;
    if (a == "--one") {
      one = true;
    } else if (a == "--verbose") {
      opt.verbose = true;
    } else if (a == "--schedules" && (v = next())) {
      opt.schedules = std::atoi(v);
    } else if (a == "--sweep" && (v = next())) {
      opt.sweep = std::atoi(v);
    } else if (a == "--seed" && (v = next())) {
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--algo" && (v = next())) {
      if (!parse_algo(v, &spec.algo)) return usage();
      opt.only_algo = v;
    } else if (a == "--domain" && (v = next())) {
      if (!parse_domain(v, &spec.domain)) return usage();
      opt.only_domain = v;
    } else if (a == "--workload" && (v = next())) {
      if (!parse_workload(v, &spec.workload)) return usage();
      opt.only_workload = spec.workload;
    } else if (a == "--wl-seed" && (v = next())) {
      spec.wl_seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--events" && (v = next())) {
      spec.arm_events = std::strtoull(v, nullptr, 10);
    } else if (a == "--crash-seed" && (v = next())) {
      spec.crash_seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--adversary" && (v = next())) {
      if (!parse_adversary(v, &spec.adversary)) return usage();
    } else if (a == "--torn" && (v = next())) {
      spec.torn_stores = std::atoi(v) != 0;
    } else if (a == "--media" && (v = next())) {
      spec.media_fault = std::atoi(v) != 0;
    } else if (a == "--mirror" && (v = next())) {
      spec.mirror = std::atoi(v) != 0;
      opt.mirror = spec.mirror;
    } else if (a == "--epoch" && (v = next())) {
      spec.epoch = std::atoi(v) != 0;
      opt.epoch = spec.epoch;
    } else if (a == "--kill" && (v = next())) {
      spec.kill = std::atoi(v) != 0;
      opt.kill = spec.kill;
    } else if (a == "--kill-events" && (v = next())) {
      spec.kill_events = std::strtoull(v, nullptr, 10);
    } else if (a == "--kill2-events" && (v = next())) {
      spec.kill2_events = std::strtoull(v, nullptr, 10);
    } else if (a == "--stall-ns" && (v = next())) {
      spec.stall_ns = std::strtoull(v, nullptr, 10);
    } else {
      return usage();
    }
  }

  if (one) {
    std::string why;
    if (fault::run_schedule(spec, &why)) {
      std::printf("PASS: %s\n", fault::repro_command(spec).c_str());
      return 0;
    }
    std::fprintf(stderr, "FAIL: %s\n  repro: %s\n", why.c_str(),
                 fault::repro_command(spec).c_str());
    return 1;
  }
  const int failures = fault::run_crashfuzz(opt);
  return failures > 0 ? 1 : 0;
}
