#include "sim/context.h"

// ExecContext implementations are header-only; this TU anchors the vtable
// for RealContext to keep link-time symbol placement deterministic.

namespace sim {
// (intentionally empty)
}  // namespace sim
