#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace sim {

void SimContext::yield_to_scheduler() { engine_->yield_from(id_); }

int SimContext::num_workers() const { return engine_->num_workers(); }

Engine::Engine(int num_workers) : n_(num_workers) {
  assert(num_workers > 0);
  stacks_.reserve(static_cast<size_t>(n_));
  for (int i = 0; i < n_; i++) stacks_.emplace_back(new char[kStackBytes]);
  fibers_.resize(static_cast<size_t>(n_));
}

Engine::~Engine() = default;

int Engine::pick_next(uint64_t* run_until) const {
  int best = -1;
  uint64_t best_t = std::numeric_limits<uint64_t>::max();
  uint64_t second_t = std::numeric_limits<uint64_t>::max();
  for (int i = 0; i < n_; i++) {
    if (done_[static_cast<size_t>(i)]) continue;
    const uint64_t t = ctx_[static_cast<size_t>(i)].time_ns_;
    if (t < best_t) {
      second_t = best_t;
      best_t = t;
      best = i;
    } else if (t < second_t) {
      second_t = t;
    }
  }
  *run_until = second_t;
  return best;
}

void Engine::trampoline(unsigned hi, unsigned lo) {
  auto* engine_and_id = reinterpret_cast<uint64_t*>(
      (static_cast<uint64_t>(hi) << 32) | static_cast<uint64_t>(lo));
  auto* engine = reinterpret_cast<Engine*>(engine_and_id[0]);
  const int id = static_cast<int>(engine_and_id[1]);
  try {
    (*engine->body_)(engine->ctx_[static_cast<size_t>(id)]);
  } catch (...) {
    if (!engine->first_error_) engine->first_error_ = std::current_exception();
  }
  engine->done_[static_cast<size_t>(id)] = true;
  // Returning lands on uc_link == sched_ctx_.
}

void Engine::run(const std::function<void(ExecContext&)>& body) {
  body_ = &body;
  first_error_ = nullptr;
  ctx_.assign(static_cast<size_t>(n_), SimContext{});
  done_.assign(static_cast<size_t>(n_), false);

  // Packed (engine, id) arguments must outlive makecontext's int params.
  std::vector<std::array<uint64_t, 2>> args(static_cast<size_t>(n_));

  for (int i = 0; i < n_; i++) {
    auto& c = ctx_[static_cast<size_t>(i)];
    c.engine_ = this;
    c.id_ = i;
    c.time_ns_ = 0;
    c.run_until_ = 0;

    ucontext_t& uc = fibers_[static_cast<size_t>(i)];
    getcontext(&uc);
    uc.uc_stack.ss_sp = stacks_[static_cast<size_t>(i)].get();
    uc.uc_stack.ss_size = kStackBytes;
    uc.uc_link = &sched_ctx_;
    args[static_cast<size_t>(i)] = {reinterpret_cast<uint64_t>(this),
                                    static_cast<uint64_t>(i)};
    const auto packed = reinterpret_cast<uint64_t>(args[static_cast<size_t>(i)].data());
    makecontext(&uc, reinterpret_cast<void (*)()>(&Engine::trampoline), 2,
                static_cast<unsigned>(packed >> 32),
                static_cast<unsigned>(packed & 0xffffffffu));
  }

  for (;;) {
    uint64_t run_until = 0;
    const int next = pick_next(&run_until);
    if (next < 0) break;
    ctx_[static_cast<size_t>(next)].run_until_ = run_until;
    swapcontext(&sched_ctx_, &fibers_[static_cast<size_t>(next)]);
  }

  elapsed_ns_ = 0;
  for (int i = 0; i < n_; i++) {
    elapsed_ns_ = std::max(elapsed_ns_, ctx_[static_cast<size_t>(i)].time_ns_);
  }
  body_ = nullptr;

  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace sim
