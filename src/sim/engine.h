// Discrete-event execution engine.
//
// Motivation: the paper's evaluation runs 1..32 threads on a 16-core Xeon
// with Optane DC DIMMs. This reproduction runs on a host with a single CPU
// core and no persistent memory, so wall-clock multithreading cannot
// reproduce scalability curves. Instead, every benchmark worker runs as a
// cooperatively-scheduled fiber whose *simulated* clock advances by
// modelled costs (memory latencies, queueing delays, compute), and the
// scheduler guarantees that the fiber with the minimum simulated time is
// the only one executing. The result is a deterministic, contention-
// faithful interleaving in simulated time: STM conflicts, lock-hold
// windows, WPQ saturation and bandwidth queueing all emerge exactly as
// they would from the relative timing of operations on the paper's
// machine.
//
// Implementation: ucontext fibers on one OS thread (a worker switch is a
// ~100ns swapcontext, which is what makes 32-worker benchmark sweeps
// tractable on this host). A running fiber is handed a `run_until` budget
// equal to the next-smallest worker clock, so consecutive events of the
// same worker stay on the fast path with no scheduler round-trip.
//
// Rules for code running under the engine:
//  * never block on OS primitives (mutexes/condvars) waiting for another
//    *worker* — only one fiber runs at a time, so the holder could never
//    be scheduled; uncontended locks released before the next advance()
//    are fine;
//  * every spin/backoff loop must charge time via ExecContext::advance(),
//    otherwise the single running fiber livelocks.
// The PTM is written to these rules (atomics + abort/backoff, no blocking).
#pragma once

#include <ucontext.h>

#include <array>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "sim/context.h"

namespace sim {

class Engine;

/// ExecContext bound to one engine worker fiber.
class SimContext final : public ExecContext {
 public:
  uint64_t now_ns() const override { return time_ns_; }

  void advance(uint64_t ns) override {
    time_ns_ += ns;
    if (time_ns_ > run_until_) yield_to_scheduler();
  }

  int worker_id() const override { return id_; }
  int num_workers() const override;
  bool is_simulated() const override { return true; }

 private:
  friend class Engine;

  void yield_to_scheduler();

  Engine* engine_ = nullptr;
  int id_ = 0;
  uint64_t time_ns_ = 0;
  // The worker may keep running (no scheduler round-trip) while its clock
  // does not exceed this bound — the next-smallest worker clock.
  uint64_t run_until_ = 0;
};

/// Runs N logical workers under min-clock scheduling. One Engine per
/// benchmark point; construction is cheap relative to a run.
class Engine {
 public:
  explicit Engine(int num_workers);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Execute `body(ctx)` on every worker to completion. `body` is invoked
  /// with a distinct SimContext per worker. May be called repeatedly; each
  /// call restarts simulated time at zero. If any worker throws, the
  /// remaining workers still run to completion (or failure) and the first
  /// exception is rethrown here.
  void run(const std::function<void(ExecContext&)>& body);

  /// Simulated duration of the last run() — the max worker finish time.
  uint64_t elapsed_ns() const { return elapsed_ns_; }

  int num_workers() const { return n_; }

 private:
  friend class SimContext;

  static constexpr size_t kStackBytes = 512 * 1024;

  static void trampoline(unsigned hi, unsigned lo);

  // Worker side: suspend this fiber and resume the scheduler.
  void yield_from(int id) {
    swapcontext(&fibers_[static_cast<size_t>(id)], &sched_ctx_);
  }

  // Scheduler side: pick the non-done worker with minimum time (lowest id
  // breaks ties) and the second-smallest time as its run budget.
  int pick_next(uint64_t* run_until) const;

  const int n_;
  uint64_t elapsed_ns_ = 0;

  const std::function<void(ExecContext&)>* body_ = nullptr;
  std::vector<SimContext> ctx_;
  std::vector<bool> done_;
  std::vector<std::unique_ptr<char[]>> stacks_;
  std::vector<ucontext_t> fibers_;
  ucontext_t sched_ctx_;
  std::exception_ptr first_error_;
};

}  // namespace sim
