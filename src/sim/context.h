// Execution contexts: the seam between the PTM/workload code and the
// machine it runs on.
//
// All instrumented code (PTM load/store/clwb/sfence, workload compute
// phases) charges cost through an ExecContext instead of spinning on the
// host CPU. Two implementations exist:
//
//  * sim::SimContext (engine.h) — discrete-event simulation. Each worker
//    owns a simulated clock; `advance()` may transfer control to another
//    worker whose clock is behind. This is how we reproduce 32-thread
//    scalability behaviour on a 1-core host: contention, lock-hold windows
//    and bandwidth queueing all play out in simulated nanoseconds.
//
//  * sim::RealContext — plain pass-through for unit tests and examples that
//    run on ordinary OS threads. `advance()` only accumulates a cost
//    counter (no sleeping), so tests stay fast while exercising the exact
//    same code paths.
#pragma once

#include <cstdint>

namespace sim {

class ExecContext {
 public:
  virtual ~ExecContext() = default;

  /// Current simulated time (ns). RealContext returns accumulated cost.
  virtual uint64_t now_ns() const = 0;

  /// Charge `ns` of simulated time. Under DES this is a scheduling point.
  virtual void advance(uint64_t ns) = 0;

  /// Worker index in [0, num_workers).
  virtual int worker_id() const = 0;

  virtual int num_workers() const = 0;

  /// Charge time until simulated instant `t` (no-op if already past it).
  void advance_to(uint64_t t) {
    const uint64_t n = now_ns();
    if (t > n) advance(t - n);
  }

  /// True when this context is driven by the discrete-event engine. The
  /// memory model only applies queueing/bandwidth modelling under DES.
  virtual bool is_simulated() const = 0;
};

/// Pass-through context for ordinary threads (tests, examples).
class RealContext final : public ExecContext {
 public:
  explicit RealContext(int worker_id = 0, int num_workers = 1)
      : id_(worker_id), n_(num_workers) {}

  uint64_t now_ns() const override { return cost_ns_; }
  void advance(uint64_t ns) override { cost_ns_ += ns; }
  int worker_id() const override { return id_; }
  int num_workers() const override { return n_; }
  bool is_simulated() const override { return false; }

 private:
  int id_;
  int n_;
  uint64_t cost_ns_ = 0;
};

}  // namespace sim
