#include "workloads/vacation.h"

#include <algorithm>
#include <stdexcept>

namespace workloads {

namespace {
struct Root {
  cont::HashMap::Handle res[3];
  cont::HashMap::Handle customers;
};
}  // namespace

VacationParams vacation_low() {
  VacationParams p;
  p.queries_per_task = 2;
  p.query_pct = 90;
  p.user_pct = 98;
  return p;
}

VacationParams vacation_high() {
  VacationParams p;
  p.queries_per_task = 4;
  p.query_pct = 60;
  p.user_pct = 90;
  return p;
}

size_t Vacation::pool_bytes() const {
  return std::max<size_t>(512ull << 20,
                          (p_.relations * 3 + p_.customers) * 512);
}

void Vacation::setup(ptm::Runtime& rt, sim::ExecContext& ctx) {
  auto* root = rt.pool().root<Root>();
  for (int t = 0; t < kNumResTables; t++) res_tables_[t] = &root->res[t];
  customers_ = &root->customers;

  rt.run(ctx, [&](ptm::Tx& tx) {
    for (int t = 0; t < kNumResTables; t++) {
      cont::HashMap::create(tx, res_tables_[t], p_.relations);
    }
    cont::HashMap::create(tx, customers_, p_.customers);
  });

  for (int t = 0; t < kNumResTables; t++) {
    for (uint64_t i0 = 0; i0 < p_.relations; i0 += 64) {
      rt.run(ctx, [&](ptm::Tx& tx) {
        const uint64_t hi = std::min(i0 + 64, p_.relations);
        for (uint64_t i = i0; i < hi; i++) {
          auto* r = tx.alloc_obj<Resource>();
          tx.write(&r->id, i);
          tx.write(&r->total, uint64_t{100});
          tx.write(&r->used, uint64_t{0});
          tx.write(&r->price, 50 + (i * 37) % 450);
          cont::HashMap::insert(tx, res_tables_[t], i, reinterpret_cast<uint64_t>(r));
        }
      });
    }
  }
  for (uint64_t c0 = 0; c0 < p_.customers; c0 += 64) {
    rt.run(ctx, [&](ptm::Tx& tx) {
      const uint64_t hi = std::min(c0 + 64, p_.customers);
      for (uint64_t c = c0; c < hi; c++) {
        auto* cu = tx.alloc_obj<Customer>();
        tx.write(&cu->id, c);
        tx.write(&cu->reservations, uint64_t{0});
        cont::HashMap::insert(tx, customers_, c, reinterpret_cast<uint64_t>(cu));
      }
    });
  }
}

void Vacation::make_reservation(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  // Pre-draw the query set (non-transactional client work, as in STAMP).
  const uint64_t query_range =
      std::max<uint64_t>(1, p_.relations * static_cast<uint64_t>(p_.query_pct) / 100);
  int tables[8];
  uint64_t ids[8];
  const int n = p_.queries_per_task;
  for (int i = 0; i < n; i++) {
    tables[i] = static_cast<int>(rng.next_bounded(kNumResTables));
    ids[i] = rng.next_bounded(query_range);
  }
  const uint64_t cust = rng.next_bounded(p_.customers);

  rt.run(ctx, [&](ptm::Tx& tx) {
    // Query phase: find the highest-priced available resource.
    int best = -1;
    uint64_t best_price = 0;
    for (int i = 0; i < n; i++) {
      uint64_t rv;
      if (!cont::HashMap::lookup(tx, res_tables_[tables[i]], ids[i], &rv)) continue;
      auto* r = reinterpret_cast<Resource*>(rv);
      const uint64_t total = tx.read(&r->total);
      const uint64_t used = tx.read(&r->used);
      if (used >= total) continue;
      const uint64_t price = tx.read(&r->price);
      if (best < 0 || price > best_price) {
        best = i;
        best_price = price;
      }
    }
    if (best < 0) return;

    uint64_t rv, cv;
    if (!cont::HashMap::lookup(tx, res_tables_[tables[best]], ids[best], &rv)) return;
    auto* r = reinterpret_cast<Resource*>(rv);
    tx.write(&r->used, tx.read(&r->used) + 1);

    if (!cont::HashMap::lookup(tx, customers_, cust, &cv)) return;
    auto* cu = reinterpret_cast<Customer*>(cv);
    auto* node = tx.alloc_obj<Reservation>();
    tx.write(&node->table, static_cast<uint64_t>(tables[best]));
    tx.write(&node->id, ids[best]);
    tx.write(&node->price, best_price);
    tx.write(&node->next, tx.read(&cu->reservations));
    tx.write(&cu->reservations, reinterpret_cast<uint64_t>(node));
  });
}

void Vacation::delete_customer(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  const uint64_t cust = rng.next_bounded(p_.customers);
  rt.run(ctx, [&](ptm::Tx& tx) {
    uint64_t cv;
    if (!cont::HashMap::lookup(tx, customers_, cust, &cv)) return;
    auto* cu = reinterpret_cast<Customer*>(cv);
    // Release every reservation and free the list.
    uint64_t cur = tx.read(&cu->reservations);
    while (cur != 0) {
      auto* node = reinterpret_cast<Reservation*>(cur);
      const uint64_t table = tx.read(&node->table);
      const uint64_t id = tx.read(&node->id);
      uint64_t rv;
      if (cont::HashMap::lookup(tx, res_tables_[table], id, &rv)) {
        auto* r = reinterpret_cast<Resource*>(rv);
        const uint64_t used = tx.read(&r->used);
        if (used > 0) tx.write(&r->used, used - 1);
      }
      const uint64_t next = tx.read(&node->next);
      tx.dealloc(node);
      cur = next;
    }
    tx.write(&cu->reservations, uint64_t{0});
  });
}

void Vacation::update_tables(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  // STAMP's add/remove of resource availability ("manager" tasks).
  const int n = p_.queries_per_task;
  rt.run(ctx, [&](ptm::Tx& tx) {
    for (int i = 0; i < n; i++) {
      const int table = static_cast<int>(rng.next() % kNumResTables);
      const uint64_t id = rng.next() % p_.relations;
      uint64_t rv;
      if (!cont::HashMap::lookup(tx, res_tables_[table], id, &rv)) continue;
      auto* r = reinterpret_cast<Resource*>(rv);
      if (rng.next() % 2 == 0) {
        tx.write(&r->total, tx.read(&r->total) + 10);
      } else {
        const uint64_t total = tx.read(&r->total);
        const uint64_t used = tx.read(&r->used);
        if (total >= used + 10) {
          tx.write(&r->total, total - 10);
        }
        tx.write(&r->price, 50 + (rng.next() % 450));
      }
    }
  });
}

void Vacation::op(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  // Client-side work between transactions (request parsing, itinerary
  // assembly) — significant for Vacation, per the paper.
  ctx.advance(p_.inter_tx_work_ns);
  const uint64_t roll = rng.next_bounded(100);
  if (roll < static_cast<uint64_t>(p_.user_pct)) {
    make_reservation(rt, ctx, rng);
  } else if (roll < static_cast<uint64_t>(p_.user_pct) + (100 - p_.user_pct) / 2) {
    delete_customer(rt, ctx, rng);
  } else {
    update_tables(rt, ctx, rng);
  }
}

void Vacation::verify(ptm::Runtime& rt, sim::ExecContext& ctx) {
  // Sum of customers' reservations per resource must equal the resource's
  // `used` count.
  rt.run(ctx, [&](ptm::Tx& tx) {
    std::vector<uint64_t> used_count(static_cast<size_t>(p_.relations) * kNumResTables, 0);
    for (uint64_t c = 0; c < p_.customers; c++) {
      uint64_t cv;
      if (!cont::HashMap::lookup(tx, customers_, c, &cv)) continue;
      auto* cu = reinterpret_cast<Customer*>(cv);
      for (uint64_t cur = tx.read(&cu->reservations); cur != 0;) {
        auto* node = reinterpret_cast<Reservation*>(cur);
        used_count[tx.read(&node->table) * p_.relations + tx.read(&node->id)]++;
        cur = tx.read(&node->next);
      }
    }
    for (int t = 0; t < kNumResTables; t++) {
      for (uint64_t i = 0; i < p_.relations; i++) {
        uint64_t rv;
        if (!cont::HashMap::lookup(tx, res_tables_[t], i, &rv)) continue;
        auto* r = reinterpret_cast<Resource*>(rv);
        if (tx.read(&r->used) != used_count[static_cast<uint64_t>(t) * p_.relations + i]) {
          throw std::runtime_error("Vacation: used != reservations");
        }
      }
    }
  });
}

WorkloadFactory vacation_factory(VacationParams p) {
  return [p] { return std::make_unique<Vacation>(p); };
}

}  // namespace workloads
