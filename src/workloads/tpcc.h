// Write-only TPC-C (paper §III.A, from DudeTM [16]): the two write
// transactions, NewOrder and Payment, run 50/50. Two index variants exist,
// exactly as in the paper's "TPCC (B+Tree)" and "TPCC (Hash Table)"
// configurations.
//
// The schema is the standard TPC-C subset these transactions touch:
// WAREHOUSE, DISTRICT, CUSTOMER, ITEM, STOCK, ORDER, NEW-ORDER, ORDER-LINE,
// HISTORY. Row structs hold word-sized fields; keys are composites packed
// into uint64.
#pragma once

#include "containers/bptree.h"
#include "containers/hashmap.h"
#include "workloads/driver.h"

namespace workloads {

enum class TpccIndex { kBPlusTree, kHashTable };

/// Transaction mix. The paper's "write-only TPCC from DudeTM" runs only
/// the two write transactions (NewOrder/Payment, 50/50); kFull adds the
/// complete TPC-C five-transaction mix (45/43/4/4/4) with OrderStatus,
/// Delivery and StockLevel.
enum class TpccMix { kWriteOnly, kFull };

struct TpccParams {
  TpccIndex index = TpccIndex::kHashTable;
  TpccMix mix = TpccMix::kWriteOnly;
  uint64_t warehouses = 4;
  uint64_t districts_per_wh = 10;
  uint64_t customers_per_district = 512;   // TPC-C: 3000, scaled
  uint64_t items = 8192;                   // TPC-C: 100000, scaled
  uint64_t compute_ns = 600;               // request handling between txns
};

class Tpcc final : public Workload {
 public:
  explicit Tpcc(TpccParams p) : p_(p) {}

  std::string name() const override {
    return p_.index == TpccIndex::kHashTable ? "TPCC-Hash" : "TPCC-BTree";
  }
  size_t pool_bytes() const override;
  void setup(ptm::Runtime& rt, sim::ExecContext& ctx) override;
  void op(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) override;
  void verify(ptm::Runtime& rt, sim::ExecContext& ctx) override;

 private:
  struct WarehouseRow {
    uint64_t w_id, w_tax, w_ytd;
  };
  struct DistrictRow {
    uint64_t d_key, d_tax, d_ytd, d_next_o_id;
    uint64_t d_next_del_o_id;  // oldest undelivered order (Delivery cursor)
  };
  struct CustomerRow {
    uint64_t c_key, c_balance, c_ytd_payment, c_payment_cnt, c_delivery_cnt;
    uint64_t c_last_order;  // most recent o_id (OrderStatus entry point)
  };
  struct ItemRow {
    uint64_t i_id, i_price;
  };
  struct StockRow {
    uint64_t s_key, s_quantity, s_ytd, s_order_cnt, s_remote_cnt;
  };
  struct OrderRow {
    uint64_t o_key, o_c_id, o_entry_d, o_ol_cnt, o_carrier_id;
  };
  struct OrderLineRow {
    uint64_t ol_key, ol_i_id, ol_quantity, ol_amount;
  };
  struct HistoryRow {
    uint64_t h_key, h_c_key, h_amount, h_date;
  };

  // Index abstraction: same call sites drive either container.
  struct Index;

  void new_order(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng);
  void payment(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng);
  void order_status(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng);
  void delivery(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng);
  void stock_level(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng);

  // Key packing.
  uint64_t dist_key(uint64_t w, uint64_t d) const { return w * 16 + d; }
  uint64_t cust_key(uint64_t w, uint64_t d, uint64_t c) const {
    return dist_key(w, d) * 65536 + c;
  }
  uint64_t stock_key(uint64_t w, uint64_t i) const { return w * 1048576 + i; }
  uint64_t order_key(uint64_t w, uint64_t d, uint64_t o) const {
    return dist_key(w, d) * (1ull << 32) + o;
  }

  bool index_insert(ptm::Tx& tx, int table, uint64_t key, uint64_t val);
  bool index_lookup(ptm::Tx& tx, int table, uint64_t key, uint64_t* out);
  bool index_remove(ptm::Tx& tx, int table, uint64_t key);

  static constexpr int kNumTables = 9;
  TpccParams p_;
  // Per-table index roots (pmem): HashMap handles or B+Tree root words.
  cont::HashMap::Handle* hash_[kNumTables] = {};
  uint64_t* tree_[kNumTables] = {};
  std::vector<uint64_t> history_seq_;  // per-worker unique history keys
  uint64_t expected_ytd_probe_ = 0;    // verify helper
};

WorkloadFactory tpcc_factory(TpccParams p);

}  // namespace workloads
