#include "workloads/tpcc.h"

#include <stdexcept>

#include "util/zipf.h"

namespace workloads {

namespace {

enum Table {
  kWarehouse = 0,
  kDistrict,
  kCustomer,
  kItem,
  kStock,
  kOrder,
  kNewOrder,
  kOrderLine,
  kHistory,
};

struct Root {
  cont::HashMap::Handle hash[9];
  uint64_t tree[9];
};

}  // namespace

size_t Tpcc::pool_bytes() const {
  const uint64_t rows = p_.warehouses * (1 + p_.districts_per_wh +
                                         p_.districts_per_wh * p_.customers_per_district +
                                         p_.items) +
                        p_.items;
  return std::max<uint64_t>(512ull << 20, rows * 768);
}

bool Tpcc::index_insert(ptm::Tx& tx, int table, uint64_t key, uint64_t val) {
  if (p_.index == TpccIndex::kHashTable) {
    return cont::HashMap::insert(tx, hash_[table], key, val);
  }
  return cont::BPlusTree::insert(tx, tree_[table], key, val);
}

bool Tpcc::index_lookup(ptm::Tx& tx, int table, uint64_t key, uint64_t* out) {
  if (p_.index == TpccIndex::kHashTable) {
    return cont::HashMap::lookup(tx, hash_[table], key, out);
  }
  return cont::BPlusTree::lookup(tx, tree_[table], key, out);
}

bool Tpcc::index_remove(ptm::Tx& tx, int table, uint64_t key) {
  if (p_.index == TpccIndex::kHashTable) {
    return cont::HashMap::remove(tx, hash_[table], key);
  }
  return cont::BPlusTree::remove(tx, tree_[table], key);
}

void Tpcc::setup(ptm::Runtime& rt, sim::ExecContext& ctx) {
  auto* root = rt.pool().root<Root>();
  const uint64_t row_hints[kNumTables] = {
      p_.warehouses,
      p_.warehouses * p_.districts_per_wh,
      p_.warehouses * p_.districts_per_wh * p_.customers_per_district,
      p_.items,
      p_.warehouses * p_.items,
      1 << 16,
      1 << 16,
      1 << 18,
      1 << 16,
  };
  rt.run(ctx, [&](ptm::Tx& tx) {
    for (int t = 0; t < kNumTables; t++) {
      if (p_.index == TpccIndex::kHashTable) {
        hash_[t] = &root->hash[t];
        cont::HashMap::create(tx, hash_[t], row_hints[t]);
      } else {
        tree_[t] = &root->tree[t];
        cont::BPlusTree::create(tx, tree_[t]);
      }
    }
  });

  // WAREHOUSE + DISTRICT.
  for (uint64_t w = 0; w < p_.warehouses; w++) {
    rt.run(ctx, [&](ptm::Tx& tx) {
      auto* wr = tx.alloc_obj<WarehouseRow>();
      tx.write(&wr->w_id, w);
      tx.write(&wr->w_tax, uint64_t{7});
      tx.write(&wr->w_ytd, uint64_t{0});
      index_insert(tx, kWarehouse, w, reinterpret_cast<uint64_t>(wr));
      for (uint64_t d = 0; d < p_.districts_per_wh; d++) {
        auto* dr = tx.alloc_obj<DistrictRow>();
        tx.write(&dr->d_key, dist_key(w, d));
        tx.write(&dr->d_tax, uint64_t{5});
        tx.write(&dr->d_ytd, uint64_t{0});
        tx.write(&dr->d_next_o_id, uint64_t{1});
        tx.write(&dr->d_next_del_o_id, uint64_t{1});
        index_insert(tx, kDistrict, dist_key(w, d), reinterpret_cast<uint64_t>(dr));
      }
    });
  }

  // CUSTOMER (one transaction per district to bound log size).
  for (uint64_t w = 0; w < p_.warehouses; w++) {
    for (uint64_t d = 0; d < p_.districts_per_wh; d++) {
      for (uint64_t c0 = 0; c0 < p_.customers_per_district; c0 += 64) {
        rt.run(ctx, [&](ptm::Tx& tx) {
          const uint64_t hi = std::min(c0 + 64, p_.customers_per_district);
          for (uint64_t c = c0; c < hi; c++) {
            auto* cr = tx.alloc_obj<CustomerRow>();
            tx.write(&cr->c_key, cust_key(w, d, c));
            tx.write(&cr->c_balance, uint64_t{1000});
            tx.write(&cr->c_ytd_payment, uint64_t{0});
            tx.write(&cr->c_payment_cnt, uint64_t{0});
            tx.write(&cr->c_delivery_cnt, uint64_t{0});
            tx.write(&cr->c_last_order, uint64_t{0});
            index_insert(tx, kCustomer, cust_key(w, d, c), reinterpret_cast<uint64_t>(cr));
          }
        });
      }
    }
  }

  // ITEM + STOCK.
  for (uint64_t i0 = 0; i0 < p_.items; i0 += 64) {
    rt.run(ctx, [&](ptm::Tx& tx) {
      const uint64_t hi = std::min(i0 + 64, p_.items);
      for (uint64_t i = i0; i < hi; i++) {
        auto* ir = tx.alloc_obj<ItemRow>();
        tx.write(&ir->i_id, i);
        tx.write(&ir->i_price, 100 + i % 900);
        index_insert(tx, kItem, i, reinterpret_cast<uint64_t>(ir));
      }
    });
  }
  for (uint64_t w = 0; w < p_.warehouses; w++) {
    for (uint64_t i0 = 0; i0 < p_.items; i0 += 64) {
      rt.run(ctx, [&](ptm::Tx& tx) {
        const uint64_t hi = std::min(i0 + 64, p_.items);
        for (uint64_t i = i0; i < hi; i++) {
          auto* sr = tx.alloc_obj<StockRow>();
          tx.write(&sr->s_key, stock_key(w, i));
          tx.write(&sr->s_quantity, uint64_t{50});
          tx.write(&sr->s_ytd, uint64_t{0});
          tx.write(&sr->s_order_cnt, uint64_t{0});
          tx.write(&sr->s_remote_cnt, uint64_t{0});
          index_insert(tx, kStock, stock_key(w, i), reinterpret_cast<uint64_t>(sr));
        }
      });
    }
  }
  history_seq_.assign(static_cast<size_t>(rt.pool().config().max_workers), 0);
}

void Tpcc::new_order(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  const uint64_t w = rng.next_bounded(p_.warehouses);
  const uint64_t d = rng.next_bounded(p_.districts_per_wh);
  const uint64_t c = util::nurand(rng, 1023, 0, p_.customers_per_district - 1);
  const uint64_t n_items = rng.range(5, 15);
  uint64_t item_ids[15];
  for (uint64_t i = 0; i < n_items; i++) {
    item_ids[i] = util::nurand(rng, 8191, 0, p_.items - 1);
  }

  rt.run(ctx, [&](ptm::Tx& tx) {
    uint64_t wv, dv, cv;
    if (!index_lookup(tx, kWarehouse, w, &wv)) throw std::runtime_error("missing wh");
    auto* wr = reinterpret_cast<WarehouseRow*>(wv);
    (void)tx.read(&wr->w_tax);

    if (!index_lookup(tx, kDistrict, dist_key(w, d), &dv)) throw std::runtime_error("missing d");
    auto* dr = reinterpret_cast<DistrictRow*>(dv);
    (void)tx.read(&dr->d_tax);
    const uint64_t o_id = tx.read(&dr->d_next_o_id);
    tx.write(&dr->d_next_o_id, o_id + 1);

    if (!index_lookup(tx, kCustomer, cust_key(w, d, c), &cv)) {
      throw std::runtime_error("missing c");
    }
    (void)tx.read(&reinterpret_cast<CustomerRow*>(cv)->c_balance);

    const uint64_t okey = order_key(w, d, o_id);
    auto* order = tx.alloc_obj<OrderRow>();
    tx.write(&order->o_key, okey);
    tx.write(&order->o_c_id, c);
    tx.write(&order->o_entry_d, ctx.now_ns());
    tx.write(&order->o_ol_cnt, n_items);
    tx.write(&order->o_carrier_id, uint64_t{0});
    index_insert(tx, kOrder, okey, reinterpret_cast<uint64_t>(order));
    index_insert(tx, kNewOrder, okey, reinterpret_cast<uint64_t>(order));
    tx.write(&reinterpret_cast<CustomerRow*>(cv)->c_last_order, o_id);

    for (uint64_t i = 0; i < n_items; i++) {
      uint64_t iv, sv;
      if (!index_lookup(tx, kItem, item_ids[i], &iv)) throw std::runtime_error("missing i");
      const uint64_t price = tx.read(&reinterpret_cast<ItemRow*>(iv)->i_price);

      if (!index_lookup(tx, kStock, stock_key(w, item_ids[i]), &sv)) {
        throw std::runtime_error("missing s");
      }
      auto* sr = reinterpret_cast<StockRow*>(sv);
      const uint64_t qty = tx.read(&sr->s_quantity);
      const uint64_t need = rng.range(1, 10);
      tx.write(&sr->s_quantity, qty >= need + 10 ? qty - need : qty + 91 - need);
      tx.write(&sr->s_ytd, tx.read(&sr->s_ytd) + need);
      tx.write(&sr->s_order_cnt, tx.read(&sr->s_order_cnt) + 1);

      auto* ol = tx.alloc_obj<OrderLineRow>();
      tx.write(&ol->ol_key, okey * 16 + i);
      tx.write(&ol->ol_i_id, item_ids[i]);
      tx.write(&ol->ol_quantity, need);
      tx.write(&ol->ol_amount, need * price);
      index_insert(tx, kOrderLine, okey * 16 + i, reinterpret_cast<uint64_t>(ol));
    }
  });
}

void Tpcc::payment(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  const uint64_t w = rng.next_bounded(p_.warehouses);
  const uint64_t d = rng.next_bounded(p_.districts_per_wh);
  const uint64_t c = util::nurand(rng, 1023, 0, p_.customers_per_district - 1);
  const uint64_t amount = rng.range(1, 5000);
  const int worker = ctx.worker_id();

  rt.run(ctx, [&](ptm::Tx& tx) {
    uint64_t wv, dv, cv;
    if (!index_lookup(tx, kWarehouse, w, &wv)) throw std::runtime_error("missing wh");
    auto* wr = reinterpret_cast<WarehouseRow*>(wv);
    tx.write(&wr->w_ytd, tx.read(&wr->w_ytd) + amount);

    if (!index_lookup(tx, kDistrict, dist_key(w, d), &dv)) throw std::runtime_error("missing d");
    auto* dr = reinterpret_cast<DistrictRow*>(dv);
    tx.write(&dr->d_ytd, tx.read(&dr->d_ytd) + amount);

    if (!index_lookup(tx, kCustomer, cust_key(w, d, c), &cv)) {
      throw std::runtime_error("missing c");
    }
    auto* cr = reinterpret_cast<CustomerRow*>(cv);
    tx.write(&cr->c_balance, tx.read(&cr->c_balance) - amount);
    tx.write(&cr->c_ytd_payment, tx.read(&cr->c_ytd_payment) + amount);
    tx.write(&cr->c_payment_cnt, tx.read(&cr->c_payment_cnt) + 1);

    auto* hr = tx.alloc_obj<HistoryRow>();
    const uint64_t h_key =
        (static_cast<uint64_t>(worker) << 40) | history_seq_[static_cast<size_t>(worker)];
    tx.write(&hr->h_key, h_key);
    tx.write(&hr->h_c_key, cust_key(w, d, c));
    tx.write(&hr->h_amount, amount);
    tx.write(&hr->h_date, ctx.now_ns());
    index_insert(tx, kHistory, h_key, reinterpret_cast<uint64_t>(hr));
  });
  history_seq_[static_cast<size_t>(worker)]++;
}

void Tpcc::op(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  ctx.advance(p_.compute_ns);
  if (p_.mix == TpccMix::kWriteOnly) {
    // The paper's configuration: the two write transactions, 50/50.
    if (rng.chance_pct(50)) {
      new_order(rt, ctx, rng);
    } else {
      payment(rt, ctx, rng);
    }
    return;
  }
  // Standard TPC-C mix: 45% NewOrder, 43% Payment, 4% each of the rest.
  const uint64_t roll = rng.next_bounded(100);
  if (roll < 45) {
    new_order(rt, ctx, rng);
  } else if (roll < 88) {
    payment(rt, ctx, rng);
  } else if (roll < 92) {
    order_status(rt, ctx, rng);
  } else if (roll < 96) {
    delivery(rt, ctx, rng);
  } else {
    stock_level(rt, ctx, rng);
  }
}

void Tpcc::order_status(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  const uint64_t w = rng.next_bounded(p_.warehouses);
  const uint64_t d = rng.next_bounded(p_.districts_per_wh);
  const uint64_t c = util::nurand(rng, 1023, 0, p_.customers_per_district - 1);

  rt.run(ctx, [&](ptm::Tx& tx) {
    uint64_t cv;
    if (!index_lookup(tx, kCustomer, cust_key(w, d, c), &cv)) return;
    auto* cr = reinterpret_cast<CustomerRow*>(cv);
    (void)tx.read(&cr->c_balance);
    const uint64_t o_id = tx.read(&cr->c_last_order);
    if (o_id == 0) return;  // customer has never ordered

    uint64_t ov;
    const uint64_t okey = order_key(w, d, o_id);
    if (!index_lookup(tx, kOrder, okey, &ov)) return;
    auto* order = reinterpret_cast<OrderRow*>(ov);
    (void)tx.read(&order->o_entry_d);
    (void)tx.read(&order->o_carrier_id);
    const uint64_t ol_cnt = tx.read(&order->o_ol_cnt);
    for (uint64_t i = 0; i < ol_cnt; i++) {
      uint64_t olv;
      if (index_lookup(tx, kOrderLine, okey * 16 + i, &olv)) {
        auto* ol = reinterpret_cast<OrderLineRow*>(olv);
        (void)tx.read(&ol->ol_i_id);
        (void)tx.read(&ol->ol_amount);
      }
    }
  });
}

void Tpcc::delivery(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  const uint64_t w = rng.next_bounded(p_.warehouses);
  const uint64_t carrier = rng.range(1, 10);

  // TPC-C delivers one batch per district; one transaction per district
  // keeps write sets bounded (the spec explicitly allows this split).
  for (uint64_t d = 0; d < p_.districts_per_wh; d++) {
    rt.run(ctx, [&](ptm::Tx& tx) {
      uint64_t dv;
      if (!index_lookup(tx, kDistrict, dist_key(w, d), &dv)) return;
      auto* dr = reinterpret_cast<DistrictRow*>(dv);
      const uint64_t del = tx.read(&dr->d_next_del_o_id);
      if (del >= tx.read(&dr->d_next_o_id)) return;  // nothing undelivered

      const uint64_t okey = order_key(w, d, del);
      uint64_t ov;
      if (!index_lookup(tx, kOrder, okey, &ov)) return;
      auto* order = reinterpret_cast<OrderRow*>(ov);
      tx.write(&order->o_carrier_id, carrier);
      const uint64_t ol_cnt = tx.read(&order->o_ol_cnt);
      uint64_t amount = 0;
      for (uint64_t i = 0; i < ol_cnt; i++) {
        uint64_t olv;
        if (index_lookup(tx, kOrderLine, okey * 16 + i, &olv)) {
          amount += tx.read(&reinterpret_cast<OrderLineRow*>(olv)->ol_amount);
        }
      }
      uint64_t cv;
      const uint64_t c_id = tx.read(&order->o_c_id);
      if (index_lookup(tx, kCustomer, cust_key(w, d, c_id), &cv)) {
        auto* cr = reinterpret_cast<CustomerRow*>(cv);
        tx.write(&cr->c_balance, tx.read(&cr->c_balance) + amount);
        tx.write(&cr->c_delivery_cnt, tx.read(&cr->c_delivery_cnt) + 1);
      }
      index_remove(tx, kNewOrder, okey);
      tx.write(&dr->d_next_del_o_id, del + 1);
    });
  }
}

void Tpcc::stock_level(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  const uint64_t w = rng.next_bounded(p_.warehouses);
  const uint64_t d = rng.next_bounded(p_.districts_per_wh);
  const uint64_t threshold = rng.range(10, 20);

  rt.run(ctx, [&](ptm::Tx& tx) {
    uint64_t dv;
    if (!index_lookup(tx, kDistrict, dist_key(w, d), &dv)) return;
    const uint64_t next = tx.read(&reinterpret_cast<DistrictRow*>(dv)->d_next_o_id);
    const uint64_t lo = next > 20 ? next - 20 : 1;
    uint64_t low_stock = 0;
    for (uint64_t o = lo; o < next; o++) {
      const uint64_t okey = order_key(w, d, o);
      uint64_t ov;
      if (!index_lookup(tx, kOrder, okey, &ov)) continue;
      const uint64_t ol_cnt = tx.read(&reinterpret_cast<OrderRow*>(ov)->o_ol_cnt);
      for (uint64_t i = 0; i < ol_cnt; i++) {
        uint64_t olv;
        if (!index_lookup(tx, kOrderLine, okey * 16 + i, &olv)) continue;
        const uint64_t item = tx.read(&reinterpret_cast<OrderLineRow*>(olv)->ol_i_id);
        uint64_t sv;
        if (index_lookup(tx, kStock, stock_key(w, item), &sv)) {
          if (tx.read(&reinterpret_cast<StockRow*>(sv)->s_quantity) < threshold) {
            low_stock++;
          }
        }
      }
    }
    (void)low_stock;
  });
}

void Tpcc::verify(ptm::Runtime& rt, sim::ExecContext& ctx) {
  // TPC-C consistency condition 1 (adapted): warehouse ytd == sum of its
  // districts' ytd, since every Payment adds `amount` to both.
  rt.run(ctx, [&](ptm::Tx& tx) {
    for (uint64_t w = 0; w < p_.warehouses; w++) {
      uint64_t wv;
      if (!index_lookup(tx, kWarehouse, w, &wv)) throw std::runtime_error("missing wh");
      const uint64_t w_ytd = tx.read(&reinterpret_cast<WarehouseRow*>(wv)->w_ytd);
      uint64_t sum = 0;
      for (uint64_t d = 0; d < p_.districts_per_wh; d++) {
        uint64_t dv;
        if (!index_lookup(tx, kDistrict, dist_key(w, d), &dv)) {
          throw std::runtime_error("missing d");
        }
        sum += tx.read(&reinterpret_cast<DistrictRow*>(dv)->d_ytd);
      }
      if (w_ytd != sum) throw std::runtime_error("TPCC: w_ytd != sum(d_ytd)");
    }
  });
}

WorkloadFactory tpcc_factory(TpccParams p) {
  return [p] { return std::make_unique<Tpcc>(p); };
}

}  // namespace workloads
