#include "workloads/tatp.h"

#include <algorithm>

namespace workloads {

namespace {
struct Root {
  cont::HashMap::Handle subscribers;
  cont::HashMap::Handle special_facility;
  cont::HashMap::Handle access_info;
  cont::HashMap::Handle call_forwarding;
};
}  // namespace

size_t Tatp::pool_bytes() const {
  // Rows + hash nodes across four tables plus slack.
  return std::max<size_t>(256ull << 20, p_.subscribers * 768);
}

void Tatp::setup(ptm::Runtime& rt, sim::ExecContext& ctx) {
  auto* root = rt.pool().root<Root>();
  subscribers_ = &root->subscribers;
  special_facility_ = &root->special_facility;
  access_info_ = &root->access_info;
  call_forwarding_ = &root->call_forwarding;

  rt.run(ctx, [&](ptm::Tx& tx) {
    cont::HashMap::create(tx, subscribers_, p_.subscribers);
    cont::HashMap::create(tx, special_facility_, p_.subscribers * 2);
    cont::HashMap::create(tx, access_info_, p_.subscribers * 2);
    cont::HashMap::create(tx, call_forwarding_, p_.subscribers * 2);
  });

  for (uint64_t s = 0; s < p_.subscribers; s++) {
    rt.run(ctx, [&](ptm::Tx& tx) {
      auto* row = tx.alloc_obj<SubscriberRow>();
      tx.write(&row->s_id, s);
      tx.write(&row->bit_1, uint64_t{0});
      tx.write(&row->vlr_location, uint64_t{0});
      tx.write(&row->msc_location, uint64_t{0});
      cont::HashMap::insert(tx, subscribers_, s, reinterpret_cast<uint64_t>(row));

      // TATP: each subscriber has 1-4 special-facility rows; deterministic
      // mix: sf_type=1 for all, sf_type=2 for even s_ids.
      for (uint64_t sf = 1; sf <= (s % 2 == 0 ? 2u : 1u); sf++) {
        auto* f = tx.alloc_obj<SpecialFacilityRow>();
        tx.write(&f->key, s * 4 + sf);
        tx.write(&f->is_active, uint64_t{s % 8 != 0});  // ~87% active
        tx.write(&f->data_a, uint64_t{0});
        tx.write(&f->data_b, uint64_t{0});
        cont::HashMap::insert(tx, special_facility_, s * 4 + sf,
                              reinterpret_cast<uint64_t>(f));
      }
      // 1-2 access-info rows per subscriber.
      for (uint64_t ai = 1; ai <= (s % 3 == 0 ? 2u : 1u); ai++) {
        auto* a = tx.alloc_obj<AccessInfoRow>();
        tx.write(&a->key, s * 4 + ai);
        tx.write(&a->data1, s);
        tx.write(&a->data2, ai);
        cont::HashMap::insert(tx, access_info_, s * 4 + ai, reinterpret_cast<uint64_t>(a));
      }
    });
  }
}

void Tatp::get_subscriber_data(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  const uint64_t s = rng.next_bounded(p_.subscribers);
  rt.run(ctx, [&](ptm::Tx& tx) {
    uint64_t row_word;
    if (cont::HashMap::lookup(tx, subscribers_, s, &row_word)) {
      auto* row = reinterpret_cast<SubscriberRow*>(row_word);
      (void)tx.read(&row->bit_1);
      (void)tx.read(&row->vlr_location);
      (void)tx.read(&row->msc_location);
    }
  });
}

void Tatp::get_new_destination(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  const uint64_t s = rng.next_bounded(p_.subscribers);
  const uint64_t sf = rng.range(1, 2);
  const uint64_t start = (rng.next_bounded(3)) * 8;
  rt.run(ctx, [&](ptm::Tx& tx) {
    uint64_t f_word;
    if (!cont::HashMap::lookup(tx, special_facility_, s * 4 + sf, &f_word)) return;
    auto* f = reinterpret_cast<SpecialFacilityRow*>(f_word);
    if (tx.read(&f->is_active) == 0) return;
    uint64_t cf_word;
    if (cont::HashMap::lookup(tx, call_forwarding_, (s * 4 + sf) * 4 + start / 8,
                              &cf_word)) {
      auto* cf = reinterpret_cast<CallForwardingRow*>(cf_word);
      (void)tx.read(&cf->numberx);
    }
  });
}

void Tatp::get_access_data(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  const uint64_t s = rng.next_bounded(p_.subscribers);
  const uint64_t ai = rng.range(1, 2);
  rt.run(ctx, [&](ptm::Tx& tx) {
    uint64_t a_word;
    if (cont::HashMap::lookup(tx, access_info_, s * 4 + ai, &a_word)) {
      auto* a = reinterpret_cast<AccessInfoRow*>(a_word);
      (void)tx.read(&a->data1);
      (void)tx.read(&a->data2);
    }
  });
}

void Tatp::update_subscriber_data(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  const uint64_t s = rng.next_bounded(p_.subscribers);
  const uint64_t bit = rng.next_bounded(2);
  const uint64_t data = rng.next();
  rt.run(ctx, [&](ptm::Tx& tx) {
    uint64_t row_word;
    if (cont::HashMap::lookup(tx, subscribers_, s, &row_word)) {
      auto* row = reinterpret_cast<SubscriberRow*>(row_word);
      tx.write(&row->bit_1, bit);
    }
    uint64_t f_word;
    if (cont::HashMap::lookup(tx, special_facility_, s * 4 + 1, &f_word)) {
      auto* f = reinterpret_cast<SpecialFacilityRow*>(f_word);
      tx.write(&f->data_a, data);
    }
  });
}

void Tatp::update_location(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  const uint64_t s = rng.next_bounded(p_.subscribers);
  const uint64_t loc = rng.next();
  rt.run(ctx, [&](ptm::Tx& tx) {
    uint64_t row_word;
    if (cont::HashMap::lookup(tx, subscribers_, s, &row_word)) {
      auto* row = reinterpret_cast<SubscriberRow*>(row_word);
      tx.write(&row->vlr_location, loc);
    }
  });
}

void Tatp::insert_call_forwarding(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  const uint64_t s = rng.next_bounded(p_.subscribers);
  const uint64_t sf = rng.range(1, 2);
  const uint64_t start = rng.next_bounded(3) * 8;
  const uint64_t key = (s * 4 + sf) * 4 + start / 8;
  const uint64_t number = rng.next();
  rt.run(ctx, [&](ptm::Tx& tx) {
    uint64_t f_word;
    if (!cont::HashMap::lookup(tx, special_facility_, s * 4 + sf, &f_word)) return;
    uint64_t existing;
    if (cont::HashMap::lookup(tx, call_forwarding_, key, &existing)) return;  // busy
    auto* cf = tx.alloc_obj<CallForwardingRow>();
    tx.write(&cf->key, key);
    tx.write(&cf->end_time, start + 8);
    tx.write(&cf->numberx, number);
    cont::HashMap::insert(tx, call_forwarding_, key, reinterpret_cast<uint64_t>(cf));
  });
}

void Tatp::delete_call_forwarding(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  const uint64_t s = rng.next_bounded(p_.subscribers);
  const uint64_t sf = rng.range(1, 2);
  const uint64_t start = rng.next_bounded(3) * 8;
  const uint64_t key = (s * 4 + sf) * 4 + start / 8;
  rt.run(ctx, [&](ptm::Tx& tx) {
    uint64_t cf_word;
    if (cont::HashMap::lookup(tx, call_forwarding_, key, &cf_word)) {
      cont::HashMap::remove(tx, call_forwarding_, key);
      tx.dealloc(reinterpret_cast<void*>(cf_word));
    }
  });
}

void Tatp::op(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  ctx.advance(p_.compute_ns);
  if (p_.mix == TatpMix::kWriteOnly) {
    // The paper's configuration: the two update transactions, 50/50.
    if (rng.chance_pct(50)) {
      update_subscriber_data(rt, ctx, rng);
    } else {
      update_location(rt, ctx, rng);
    }
    return;
  }
  // Standard TATP mix: 35/10/35 reads, 2/14/2/2 writes.
  const uint64_t roll = rng.next_bounded(100);
  if (roll < 35) {
    get_subscriber_data(rt, ctx, rng);
  } else if (roll < 45) {
    get_new_destination(rt, ctx, rng);
  } else if (roll < 80) {
    get_access_data(rt, ctx, rng);
  } else if (roll < 82) {
    update_subscriber_data(rt, ctx, rng);
  } else if (roll < 96) {
    update_location(rt, ctx, rng);
  } else if (roll < 98) {
    insert_call_forwarding(rt, ctx, rng);
  } else {
    delete_call_forwarding(rt, ctx, rng);
  }
}

WorkloadFactory tatp_factory(TatpParams p) {
  return [p] { return std::make_unique<Tatp>(p); };
}

}  // namespace workloads
