#include "workloads/kv.h"

#include <algorithm>
#include <stdexcept>

namespace workloads {

namespace {
struct Root {
  uint64_t buckets;
  uint64_t nbuckets;
};

uint64_t round_pow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

size_t KvStore::pool_bytes() const {
  // Real bytes: items (256B class for the 168B struct) + bucket array.
  const uint64_t need = p_.items * 384 + round_pow2(p_.items) * 8 + (64ull << 20);
  return std::max<uint64_t>(256ull << 20, need);
}

util::Key128 KvStore::make_key(uint64_t k) {
  // 128-byte keys as memaslap generates: a printable prefix + padding.
  std::string s = "memaslap-key-" + util::padded_key(k, 20);
  s.resize(120, 'x');
  return util::Key128(s);
}

void KvStore::setup(ptm::Runtime& rt, sim::ExecContext& ctx) {
  auto* root = rt.pool().root<Root>();
  nbuckets_ = round_pow2(std::max<uint64_t>(16, p_.items));
  rt.run(ctx, [&](ptm::Tx& tx) {
    void* arr = rt.allocator().alloc_raw(ctx, nullptr, nbuckets_ * 8);
    tx.write(&root->buckets, reinterpret_cast<uint64_t>(arr));
    tx.write(&root->nbuckets, nbuckets_);
  });
  buckets_ = reinterpret_cast<uint64_t*>(rt.pool().root<Root>()->buckets);
  virtual_line_base_ = rt.pool().mem().virtual_line_base();
  next_virtual_line_ = virtual_line_base_;

  // Populate every key once (the working set the client will hit).
  for (uint64_t k = 0; k < p_.items; k++) {
    request(rt, ctx, k, /*is_get=*/false);
  }
}

void KvStore::request(ptm::Runtime& rt, sim::ExecContext& ctx, uint64_t k, bool is_get) {
  const util::Key128 key = make_key(k);
  const uint64_t h = util::fnv1a(key.data, sizeof(key.data));
  uint64_t* bucket = &buckets_[h & (nbuckets_ - 1)];
  nvm::Memory& mem = rt.pool().mem();
  const uint64_t value_lines = (p_.value_bytes + 63) / 64;

  rt.run(ctx, [&](ptm::Tx& tx) {
    // Index walk: hash compare first, then the full 128-byte key compare
    // (16 word reads — the real index traffic of the paper's memcached).
    Item* found = nullptr;
    for (uint64_t cur = tx.read(bucket); cur != 0;) {
      auto* it = reinterpret_cast<Item*>(cur);
      if (tx.read(&it->hash) == h) {
        util::Key128 stored;
        tx.read_bytes(&it->key, &stored, sizeof(stored));
        if (stored == key) {
          found = it;
          break;
        }
      }
      cur = tx.read(&it->next);
    }

    auto* c = &rt.counters(ctx.worker_id());
    if (is_get) {
      if (found == nullptr) return;  // miss (only before population)
      (void)tx.read(&found->version);
      // Stream the value out of persistent memory.
      mem.touch_lines(ctx, c, tx.read(&found->value_line), value_lines,
                      /*is_write=*/false, nvm::Space::kData);
      return;
    }

    if (found != nullptr) {
      // Overwrite in place: value traffic + (under ADR) its flushes.
      mem.touch_lines(ctx, c, tx.read(&found->value_line), value_lines,
                      /*is_write=*/true, nvm::Space::kData);
      mem.persist_lines(ctx, c, tx.read(&found->value_line), value_lines);
      tx.write(&found->version, tx.read(&found->version) + 1);
      return;
    }

    // Fresh item.
    auto* it = tx.alloc_obj<Item>();
    tx.write(&it->hash, h);
    tx.write_bytes(&it->key, &key, sizeof(key));
    const uint64_t vline = next_virtual_line_;
    next_virtual_line_ += value_lines;
    tx.write(&it->value_line, vline);
    tx.write(&it->value_bytes, p_.value_bytes);
    tx.write(&it->version, uint64_t{1});
    tx.write(&it->next, tx.read(bucket));
    tx.write(bucket, reinterpret_cast<uint64_t>(it));
    mem.touch_lines(ctx, c, vline, value_lines, /*is_write=*/true, nvm::Space::kData);
    mem.persist_lines(ctx, c, vline, value_lines);
  });
}

void KvStore::op(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  ctx.advance(p_.compute_ns);
  const uint64_t k = rng.next_bounded(p_.items);
  request(rt, ctx, k, rng.chance_pct(p_.get_pct));
}

void KvStore::verify(ptm::Runtime& rt, sim::ExecContext& ctx) {
  // Every populated key must be retrievable.
  for (uint64_t k = 0; k < std::min<uint64_t>(p_.items, 256); k++) {
    const util::Key128 key = make_key(k);
    const uint64_t h = util::fnv1a(key.data, sizeof(key.data));
    bool ok = false;
    rt.run(ctx, [&](ptm::Tx& tx) {
      ok = false;
      for (uint64_t cur = tx.read(&buckets_[h & (nbuckets_ - 1)]); cur != 0;) {
        auto* it = reinterpret_cast<Item*>(cur);
        if (tx.read(&it->hash) == h) {
          util::Key128 stored;
          tx.read_bytes(&it->key, &stored, sizeof(stored));
          if (stored == key) {
            ok = true;
            break;
          }
        }
        cur = tx.read(&it->next);
      }
    });
    if (!ok) throw std::runtime_error("KvStore: populated key missing");
  }
}

WorkloadFactory kv_factory(KvParams p) {
  return [p] { return std::make_unique<KvStore>(p); };
}

}  // namespace workloads
