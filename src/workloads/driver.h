// Benchmark driver: builds a fresh pool + runtime for one experimental
// point (workload, system config, algorithm, thread count), populates the
// workload single-threaded, then runs the workers under the discrete-event
// engine and returns the aggregated result.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "ptm/runtime.h"
#include "sim/engine.h"
#include "stats/report.h"
#include "util/rng.h"

namespace workloads {

/// One benchmark application. Implementations own their pmem roots
/// (assigned during setup) and define a single `op` — one application-level
/// operation, usually one transaction plus any non-transactional work.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Pool size this workload needs (driver applies it to the config).
  virtual size_t pool_bytes() const { return 256ull << 20; }

  /// Populate initial state. Runs on a plain (non-simulated) context, so
  /// population is not charged to the measured run.
  virtual void setup(ptm::Runtime& rt, sim::ExecContext& ctx) = 0;

  /// Execute one operation on behalf of `ctx`'s worker.
  virtual void op(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) = 0;

  /// Optional invariant check after a run (used by integration tests).
  virtual void verify(ptm::Runtime& rt, sim::ExecContext& ctx) { (void)rt, (void)ctx; }

  /// Number of synthetic (virtual-payload) lines this workload allocated
  /// during setup — the driver prewarms them into the PDRAM directory
  /// alongside the real heap.
  virtual uint64_t virtual_lines_used() const { return 0; }
};

using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

struct RunPoint {
  nvm::SystemConfig sys;
  ptm::Algo algo = ptm::Algo::kOrecLazy;
  int threads = 1;
  uint64_t ops_per_thread = 1000;
  uint64_t seed = 42;
};

/// Run one point end to end (fresh pool each call) and aggregate stats.
stats::RunResult run_point(const WorkloadFactory& factory, const RunPoint& p);

/// Ops-per-thread scale factor from the REPRO_OPS_SCALE environment
/// variable (default 1.0) — lets users trade bench runtime for smoother
/// curves without recompiling.
double ops_scale();

}  // namespace workloads
