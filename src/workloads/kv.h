// Memcached-like key/value store + synthetic client (paper §III.A, §IV.E).
//
// The paper transactionalizes memcached [44] and drives it with memaslap:
// 50/50 get/set, 128-byte keys, 1-KB values, uniformly random keys — chosen
// so every request misses up to the smallest hierarchy level that holds the
// working set (Fig 8). We reproduce the store as a library: a chained hash
// index whose buckets/items are real persistent data accessed through the
// PTM, and whose 1-KB values are *virtual payloads*: their cache/memory
// footprint is modelled line-by-line (nvm::Memory::touch_lines), but no
// host bytes are materialized. That is what makes the paper's up-to-320-GB
// working sets reproducible on this host at 1/256 scale (see DESIGN.md).
#pragma once

#include "util/strkey.h"
#include "workloads/driver.h"

namespace workloads {

struct KvParams {
  uint64_t items = 1 << 16;        // working set = items * value_bytes
  uint64_t value_bytes = 1024;
  int get_pct = 50;
  uint64_t compute_ns = 300;       // request parse/dispatch per op
};

class KvStore final : public Workload {
 public:
  explicit KvStore(KvParams p) : p_(p) {}

  std::string name() const override { return "memcached-kv"; }
  size_t pool_bytes() const override;
  void setup(ptm::Runtime& rt, sim::ExecContext& ctx) override;
  void op(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) override;
  void verify(ptm::Runtime& rt, sim::ExecContext& ctx) override;

  /// One get (true) or set (false) for key id `k` — exposed for tests.
  void request(ptm::Runtime& rt, sim::ExecContext& ctx, uint64_t k, bool is_get);

  uint64_t virtual_lines_used() const override {
    return next_virtual_line_ - virtual_line_base_;
  }

 private:
  struct Item {
    uint64_t hash;
    util::Key128 key;
    uint64_t value_line;   // first virtual line of the payload
    uint64_t value_bytes;
    uint64_t version;      // bumped by set (the transactional write)
    uint64_t next;
  };

  static util::Key128 make_key(uint64_t k);

  KvParams p_;
  uint64_t* buckets_ = nullptr;  // pmem array (raw)
  uint64_t nbuckets_ = 0;
  uint64_t virtual_line_base_ = 0;
  uint64_t next_virtual_line_ = 0;
};

WorkloadFactory kv_factory(KvParams p);

}  // namespace workloads
