#include "workloads/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>

#include "analysis/psan.h"
#include "ptm/containment.h"
#include "ptm/scrub.h"
#include "ptm/watchdog.h"
#include "stats/trace.h"

namespace workloads {

double ops_scale() {
  if (const char* s = std::getenv("REPRO_OPS_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.0;
}

stats::RunResult run_point(const WorkloadFactory& factory, const RunPoint& p) {
  std::unique_ptr<Workload> w = factory();

  nvm::SystemConfig cfg = p.sys;
  cfg.pool_size = w->pool_bytes();
  cfg.max_workers = p.threads + 1;  // workers + one setup slot

  nvm::Pool pool(cfg);
  ptm::Runtime rt(pool, p.algo);

  // Populate on the spare slot with a pass-through context: no simulated
  // cost is charged, but the exact transactional code paths run. Startup
  // recovery runs first, exactly as a production open would — on the fresh
  // pool it is a trivial scan whose report must come back clean, and that
  // report lands in the JSON artifact for CI to gate on.
  sim::RealContext setup_ctx(p.threads, p.threads + 1);
  const stats::RecoveryReport recovery = rt.recover(setup_ctx);
  w->setup(rt, setup_ctx);

  rt.reset_counters();
  pool.mem().reset_models();
  // Warm steady state: populated data is resident in the PDRAM DRAM cache
  // (no-op for other domains).
  const uint64_t used_bytes =
      pool.header()->heap_off + rt.allocator().high_water_bytes();
  pool.mem().prewarm_directory(0, used_bytes / nvm::Memory::kLineBytes);
  if (const uint64_t vlines = w->virtual_lines_used(); vlines > 0) {
    pool.mem().prewarm_directory(pool.mem().virtual_line_base(), vlines);
  }

  // Each benchmark point is one trace "process": simulated time restarts
  // at zero per point, and the per-pid grouping keeps the viewer readable.
  if (stats::Trace::on()) {
    stats::Trace::instance().begin_run(w->name() + "/" + cfg.name() + "/t" +
                                       std::to_string(p.threads));
  }

  // Background patrol fibers share one extra fiber: with scrubbing
  // configured it walks the log metadata, with containment + watchdog
  // configured it sweeps for stuck transactions, each at its own sim-time
  // cadence, until every worker has finished. Its worker id is p.threads —
  // the same id as the setup slot, which is idle for the whole measured
  // run, so WPQ/channel bookkeeping stays in range.
  const bool scrubbing = cfg.scrub_interval_ns > 0;
  const bool watchdogging =
      rt.containment() != nullptr && cfg.watchdog_interval_ns > 0;
  const bool patrolling = scrubbing || watchdogging;
  ptm::Scrubber scrub(rt);
  ptm::Watchdog watchdog(rt);
  std::atomic<int> active{p.threads};
  sim::Engine engine(patrolling ? p.threads + 1 : p.threads);
  const uint64_t ops = p.ops_per_thread;
  const auto wall_start = std::chrono::steady_clock::now();
  engine.run([&](sim::ExecContext& ctx) {
    if (patrolling && ctx.worker_id() == p.threads) {
      uint64_t next_scrub = ctx.now_ns();
      uint64_t next_sweep = ctx.now_ns();
      while (active.load(std::memory_order_acquire) > 0) {
        if (scrubbing && ctx.now_ns() >= next_scrub) {
          scrub.run_pass(ctx);
          next_scrub = ctx.now_ns() + cfg.scrub_interval_ns;
        }
        if (watchdogging && ctx.now_ns() >= next_sweep) {
          watchdog.run_pass(ctx);
          next_sweep = ctx.now_ns() + cfg.watchdog_interval_ns;
        }
        if (active.load(std::memory_order_acquire) <= 0) break;
        uint64_t next = UINT64_MAX;
        if (scrubbing) next = std::min(next, next_scrub);
        if (watchdogging) next = std::min(next, next_sweep);
        const uint64_t now = ctx.now_ns();
        ctx.advance(next > now ? next - now : 1);
      }
      return;
    }
    util::Rng rng(p.seed ^ (0x5bd1e995u * static_cast<uint64_t>(ctx.worker_id() + 1)));
    for (uint64_t i = 0; i < ops; i++) {
      w->op(rt, ctx, rng);
    }
    if (patrolling) active.fetch_sub(1, std::memory_order_acq_rel);
  });
  const auto wall_end = std::chrono::steady_clock::now();

  stats::RunResult r;
  r.workload = w->name();
  r.config = cfg.name();
  r.threads = p.threads;
  r.sim_ns = engine.elapsed_ns();
  auto per_thread = rt.snapshot_counters();
  r.totals = stats::aggregate(per_thread);
  r.recovery = recovery;
  r.log_range_drops = pool.mem().log_range_drops();
  if (scrubbing) r.scrub = scrub.stats();
  if (rt.epochs()) r.epoch = rt.epochs()->snapshot();
  if (rt.containment()) r.containment = rt.containment()->snapshot();
  if (analysis::Psan* ps = pool.mem().psan()) r.psan = ps->summary();
  if (pool.mem().devstats()) r.device = pool.mem().device_snapshot(r.sim_ns);
  r.wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall_end - wall_start)
          .count());
  r.channel_requests = pool.mem().channel_requests();
  r.persistence_events = pool.mem().persistence_events();
  return r;
}

}  // namespace workloads
