// Vacation travel-reservation benchmark (STAMP [41], via Whisper [42]).
//
// The manager keeps four tables: cars, flights, rooms (resources with
// total/used counts and a price) and customers (each with a linked list of
// reservations). Task mix follows STAMP's parameters:
//  * queries_per_task (n): relations touched per transaction;
//  * query_pct (q): fraction of the resource-id range queried;
//  * user_pct (u): % of tasks that are MakeReservation; the rest split
//    between DeleteCustomer and UpdateTables.
// The paper runs "low" (-n2 -q90 -u98) and "high" (-n4 -q60 -u90)
// contention configurations; relations are scaled from STAMP's 2^20.
//
// Vacation is the paper's example of a workload with substantial
// *non-transactional* work between transactions, which mutes eADR's
// advantage (§III.C) — modelled by `inter_tx_work_ns`.
#pragma once

#include "containers/hashmap.h"
#include "workloads/driver.h"

namespace workloads {

struct VacationParams {
  int queries_per_task = 2;       // -n
  int query_pct = 90;             // -q
  int user_pct = 98;              // -u
  uint64_t relations = 16384;     // -r (STAMP: 2^20, scaled)
  uint64_t customers = 16384;
  uint64_t inter_tx_work_ns = 2500;
};

VacationParams vacation_low();
VacationParams vacation_high();

class Vacation final : public Workload {
 public:
  explicit Vacation(VacationParams p) : p_(p) {}

  std::string name() const override {
    return p_.user_pct >= 95 ? "Vacation-low" : "Vacation-high";
  }
  size_t pool_bytes() const override;
  void setup(ptm::Runtime& rt, sim::ExecContext& ctx) override;
  void op(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) override;
  void verify(ptm::Runtime& rt, sim::ExecContext& ctx) override;

 private:
  struct Resource {
    uint64_t id, total, used, price;
  };
  struct Reservation {  // customer's linked-list node
    uint64_t table;     // 0 car, 1 flight, 2 room
    uint64_t id;
    uint64_t price;
    uint64_t next;
  };
  struct Customer {
    uint64_t id;
    uint64_t reservations;  // list head
  };

  static constexpr int kNumResTables = 3;

  void make_reservation(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng);
  void delete_customer(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng);
  void update_tables(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng);

  VacationParams p_;
  cont::HashMap::Handle* res_tables_[kNumResTables] = {};
  cont::HashMap::Handle* customers_ = nullptr;
};

WorkloadFactory vacation_factory(VacationParams p);

}  // namespace workloads
