// B+Tree microbenchmarks from the paper (§III.A, DudeTM's tree):
//  * insert-only: unique-key insertions into an initially empty tree —
//    each worker inserts a disjoint key stream;
//  * mixed: an equal mix of inserts, lookups and removes over a bounded
//    key range (the paper uses 2^21; scale via `key_range`).
#pragma once

#include "workloads/driver.h"

namespace workloads {

struct BTreeMicroParams {
  bool insert_only = true;
  uint64_t key_range = 1ull << 17;  // mixed mode: paper's 2^21, scaled
  uint64_t preload = 1ull << 16;    // mixed mode: keys present at start
  uint64_t compute_ns = 150;        // non-transactional work per op
};

class BTreeMicro final : public Workload {
 public:
  explicit BTreeMicro(BTreeMicroParams p) : p_(p) {}

  std::string name() const override {
    return p_.insert_only ? "BTree-insert" : "BTree-mixed";
  }
  size_t pool_bytes() const override;
  void setup(ptm::Runtime& rt, sim::ExecContext& ctx) override;
  void op(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) override;
  void verify(ptm::Runtime& rt, sim::ExecContext& ctx) override;

 private:
  BTreeMicroParams p_;
  uint64_t* root_ptr_ = nullptr;  // pmem word in the app root area
  uint64_t inserted_ = 0;         // insert-only: expected key count
  std::vector<uint64_t> next_key_;  // per-worker unique key streams
};

WorkloadFactory btree_micro_factory(BTreeMicroParams p);

}  // namespace workloads
