// Write-only TATP telecom benchmark (paper §III.A, taken from DudeTM [16]).
//
// TATP models a Home Location Register. The write-only mix used by the
// paper runs the two update transactions 50/50:
//  * UPDATE_SUBSCRIBER_DATA: set SUBSCRIBER.bit_1 and
//    SPECIAL_FACILITY.data_a for a random subscriber;
//  * UPDATE_LOCATION: set SUBSCRIBER.vlr_location.
// Every transaction writes only 1-2 words — the paper's explanation for
// TATP being the one workload where undo logging is competitive (the O(W)
// fence cost barely applies).
#pragma once

#include "containers/hashmap.h"
#include "workloads/driver.h"

namespace workloads {

/// Transaction mix: the paper runs the write-only pair (UPDATE_SUBSCRIBER_
/// DATA / UPDATE_LOCATION, 50/50); kStandard is the full TATP seven-
/// transaction mix (80% reads / 20% writes).
enum class TatpMix { kWriteOnly, kStandard };

struct TatpParams {
  TatpMix mix = TatpMix::kWriteOnly;
  uint64_t subscribers = 100000;
  uint64_t compute_ns = 400;  // request parsing etc. between transactions
};

class Tatp final : public Workload {
 public:
  explicit Tatp(TatpParams p) : p_(p) {}

  std::string name() const override { return "TATP"; }
  size_t pool_bytes() const override;
  void setup(ptm::Runtime& rt, sim::ExecContext& ctx) override;
  void op(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) override;

 private:
  struct SubscriberRow {
    uint64_t s_id;
    uint64_t bit_1;
    uint64_t vlr_location;
    uint64_t msc_location;
  };
  struct SpecialFacilityRow {
    uint64_t key;  // s_id * 4 + sf_type
    uint64_t is_active;
    uint64_t data_a;
    uint64_t data_b;
  };
  struct AccessInfoRow {
    uint64_t key;  // s_id * 4 + ai_type
    uint64_t data1, data2;
  };
  struct CallForwardingRow {
    uint64_t key;  // (s_id * 4 + sf_type) * 4 + start_time/8
    uint64_t end_time;
    uint64_t numberx;
  };

  void get_subscriber_data(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng);
  void get_new_destination(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng);
  void get_access_data(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng);
  void update_subscriber_data(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng);
  void update_location(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng);
  void insert_call_forwarding(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng);
  void delete_call_forwarding(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng);

  TatpParams p_;
  cont::HashMap::Handle* subscribers_ = nullptr;
  cont::HashMap::Handle* special_facility_ = nullptr;
  cont::HashMap::Handle* access_info_ = nullptr;
  cont::HashMap::Handle* call_forwarding_ = nullptr;
};

WorkloadFactory tatp_factory(TatpParams p);

}  // namespace workloads
