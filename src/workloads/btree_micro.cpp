#include "workloads/btree_micro.h"

#include <stdexcept>

#include "containers/bptree.h"

namespace workloads {

namespace {
struct Root {
  uint64_t tree_root;
};
}  // namespace

size_t BTreeMicro::pool_bytes() const { return 512ull << 20; }

void BTreeMicro::setup(ptm::Runtime& rt, sim::ExecContext& ctx) {
  root_ptr_ = &rt.pool().root<Root>()->tree_root;
  rt.run(ctx, [&](ptm::Tx& tx) { cont::BPlusTree::create(tx, root_ptr_); });
  next_key_.assign(static_cast<size_t>(rt.pool().config().max_workers), 0);

  if (!p_.insert_only) {
    // Preload half the key range so lookups/removes hit ~50%.
    util::Rng rng(0xb7eeull);
    for (uint64_t i = 0; i < p_.preload; i++) {
      const uint64_t key = rng.next_bounded(p_.key_range);
      rt.run(ctx, [&](ptm::Tx& tx) { cont::BPlusTree::insert(tx, root_ptr_, key, key); });
    }
  }
}

void BTreeMicro::op(ptm::Runtime& rt, sim::ExecContext& ctx, util::Rng& rng) {
  ctx.advance(p_.compute_ns);
  if (p_.insert_only) {
    // Worker-disjoint unique keys, bit-mixed so inserts spread over the
    // tree instead of appending (matches DudeTM's random unique keys).
    auto& seq = next_key_[static_cast<size_t>(ctx.worker_id())];
    const uint64_t raw = seq++ * static_cast<uint64_t>(ctx.num_workers()) +
                         static_cast<uint64_t>(ctx.worker_id());
    // Multiplication by an odd constant is a bijection on 2^64: keys stay
    // unique while spreading across the tree.
    const uint64_t key = raw * 0x9e3779b97f4a7c15ull;
    rt.run(ctx, [&](ptm::Tx& tx) { cont::BPlusTree::insert(tx, root_ptr_, key, raw); });
    return;
  }
  const uint64_t key = rng.next_bounded(p_.key_range);
  switch (rng.next_bounded(3)) {
    case 0:
      rt.run(ctx, [&](ptm::Tx& tx) { cont::BPlusTree::insert(tx, root_ptr_, key, key); });
      break;
    case 1:
      rt.run(ctx, [&](ptm::Tx& tx) {
        uint64_t out;
        cont::BPlusTree::lookup(tx, root_ptr_, key, &out);
      });
      break;
    default:
      rt.run(ctx, [&](ptm::Tx& tx) { cont::BPlusTree::remove(tx, root_ptr_, key); });
      break;
  }
}

void BTreeMicro::verify(ptm::Runtime& rt, sim::ExecContext& ctx) {
  // The leaf chain must be sorted and duplicate-free.
  rt.run(ctx, [&](ptm::Tx& tx) {
    const uint64_t n =
        cont::BPlusTree::range_count(tx, root_ptr_, 0, ~0ull);
    uint64_t expect = 0;
    for (uint64_t s : next_key_) expect += s;
    if (p_.insert_only && n != expect) {
      throw std::runtime_error("BTreeMicro: key count mismatch after run");
    }
  });
}

WorkloadFactory btree_micro_factory(BTreeMicroParams p) {
  return [p] { return std::make_unique<BTreeMicro>(p); };
}

}  // namespace workloads
