#!/usr/bin/env python3
"""Fail if any REPRO_JSON artifact reports capacity aborts.

Capacity aborts (abort_causes.capacity) mean a transaction outgrew its
per-worker log or write index and the runtime had to grow it mid-run. That
is correct behavior, but on the paper-default benchmark configurations it
must never happen: the logs are sized for the workloads, and a nonzero
count means the measured commit/abort ratios and fence counts include
log-growth machinery the paper's numbers do not. CI runs this over the
bench-smoke artifacts to catch accidental log-sizing regressions.

Usage: check_capacity_aborts.py ARTIFACT.json [ARTIFACT.json ...]
Exit status: 0 if all clean, 1 if any point has capacity aborts (or an
artifact cannot be parsed).
"""
import json
import sys


def check(path):
    """Returns a list of offending (bench, label, threads, count) tuples."""
    with open(path) as f:
        doc = json.load(f)
    bad = []
    for point in doc.get("results", []):
        count = point.get("abort_causes", {}).get("capacity", 0)
        if count:
            bad.append((point.get("bench", "?"), point.get("label", "?"),
                        point.get("threads", "?"), count))
    return bad


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            bad = check(path)
        except (OSError, ValueError) as e:
            print(f"{path}: cannot read artifact: {e}", file=sys.stderr)
            failed = True
            continue
        if bad:
            failed = True
            for bench, label, threads, count in bad:
                print(f"{path}: {count} capacity abort(s) in "
                      f"[{bench}] {label} @ {threads} threads", file=sys.stderr)
        else:
            print(f"{path}: no capacity aborts")
    if failed:
        print("capacity aborts on default configs indicate undersized "
              "per-worker logs (see docs/LOGGING.md)", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
