#!/usr/bin/env python3
"""Self-tests for the CI gate scripts (bench_trajectory.py,
compare_results.py, hang_guard.py), run in CI so the gates themselves
are gated.

The cases pin the failure modes that once let the gates pass vacuously:
zero wall_ns / zero sim-events rates silently reporting 0.0 instead of
erroring, the abort check never firing from a zero baseline,
cross-machine trajectory comparisons being treated as regressions, and
the hang guard passing exit codes through / reliably killing a hung
process tree with the post-mortem on stderr.

Usage: python3 scripts/test_scripts.py   (exit 0 = all pass)
Only the standard library is used.
"""

import json
import os
import subprocess
import sys
import tempfile
import time
import unittest

SCRIPTS = os.path.dirname(os.path.abspath(__file__))


def run(script, *args):
    return subprocess.run(
        [sys.executable, os.path.join(SCRIPTS, script), *args],
        capture_output=True, text=True)


def profile_point(bench="b", label="l", wall_ns=1000, sim_events=100):
    return {
        "bench": bench, "label": label, "workload": "w", "config": "c",
        "threads": 1, "sim_ns": 500, "throughput_tx_per_sec": 1e6,
        "wall_ns": wall_ns, "sim_events": sim_events,
        "sim_events_per_sec": 0.0,
        "subsystems": {"cache": 1, "channel": 1, "wpq": 1, "psan": 0,
                       "fault": 0},
    }


def profile_doc(points):
    return {"schema_version": 1, "tool": "optane-ptm-bench-profile",
            "points": points, "totals": {}}


def trajectory_doc(pr, rate, env=None):
    bench = {
        "points": 1, "wall_ns": 1000, "sim_events": 100,
        "sim_events_per_sec": rate,
        "sim_throughput_tx_per_sec_mean": 1e6,
        "subsystem_events": {},
    }
    doc = {
        "schema_version": 1, "tool": "optane-ptm-bench-trajectory",
        "pr": pr,
        "benches": {"fig3": dict(bench)},
        "totals": {k: v for k, v in bench.items()
                   if k != "sim_throughput_tx_per_sec_mean"},
    }
    if env is not None:
        doc["environment"] = env
    return doc


def results_doc(aborts):
    return {
        "schema_version": 1, "tool": "optane-ptm-bench",
        "results": [{
            "bench": "b", "label": "l", "threads": 1,
            "throughput_tx_per_sec": 1e6,
            "counters": {"aborts": aborts},
        }],
    }


class TempDirTest(unittest.TestCase):
    def setUp(self):
        self._td = tempfile.TemporaryDirectory()
        self.dir = self._td.name

    def tearDown(self):
        self._td.cleanup()

    def write(self, name, doc):
        path = os.path.join(self.dir, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path


class BenchTrajectoryTest(TempDirTest):
    def test_merges_and_records_environment(self):
        prof = self.write("fig3.bench.json", profile_doc([profile_point()]))
        out = os.path.join(self.dir, "BENCH_1.json")
        r = run("bench_trajectory.py", "--out", out, "--pr", "1", prof)
        self.assertEqual(r.returncode, 0, r.stderr)
        with open(out) as f:
            rec = json.load(f)
        env = rec["environment"]
        self.assertTrue(env["hostname"])
        self.assertTrue(env["cpu_model"])
        self.assertGreater(env["cores"], 0)
        self.assertGreater(rec["totals"]["sim_events_per_sec"], 0)

    def test_zero_wall_ns_is_a_hard_error(self):
        prof = self.write("broken.bench.json",
                          profile_doc([profile_point(wall_ns=0)]))
        out = os.path.join(self.dir, "BENCH_1.json")
        r = run("bench_trajectory.py", "--out", out, "--pr", "1", prof)
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("wall_ns", r.stderr)
        self.assertFalse(os.path.exists(out))


class CompareTrajectoryTest(TempDirTest):
    ENV_A = {"hostname": "a", "cpu_model": "cpu-x", "cores": 8}
    ENV_B = {"hostname": "b", "cpu_model": "cpu-y", "cores": 32}

    def test_zero_rate_is_a_hard_error(self):
        base = self.write("BENCH_1.json", trajectory_doc(1, 0.0))
        cand = self.write("BENCH_2.json", trajectory_doc(2, 1e8))
        r = run("compare_results.py", "--trajectory", base, cand)
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("zero sim-events/sec", r.stderr)

    def test_same_machine_regression_fails(self):
        base = self.write("BENCH_1.json", trajectory_doc(1, 1e8, self.ENV_A))
        cand = self.write("BENCH_2.json", trajectory_doc(2, 1e7, self.ENV_A))
        r = run("compare_results.py", "--trajectory", base, cand,
                "--threshold", "10")
        self.assertEqual(r.returncode, 1, r.stdout)
        self.assertIn("REGRESSION", r.stdout)

    def test_cross_machine_regression_downgrades_to_warning(self):
        base = self.write("BENCH_1.json", trajectory_doc(1, 1e8, self.ENV_A))
        cand = self.write("BENCH_2.json", trajectory_doc(2, 1e7, self.ENV_B))
        r = run("compare_results.py", "--trajectory", base, cand,
                "--threshold", "10")
        self.assertEqual(r.returncode, 0, r.stdout)
        self.assertNotIn("REGRESSION", r.stdout)
        self.assertIn("different hardware", r.stdout)

    def test_hostname_alone_does_not_mean_cross_machine(self):
        # CI runners: fresh hostname every run, identical hardware. The
        # gate must still fail.
        env_b = dict(self.ENV_A, hostname="other-host")
        base = self.write("BENCH_1.json", trajectory_doc(1, 1e8, self.ENV_A))
        cand = self.write("BENCH_2.json", trajectory_doc(2, 1e7, env_b))
        r = run("compare_results.py", "--trajectory", base, cand,
                "--threshold", "10")
        self.assertEqual(r.returncode, 1, r.stdout)

    def test_records_without_environment_still_gate(self):
        base = self.write("BENCH_1.json", trajectory_doc(1, 1e8))
        cand = self.write("BENCH_2.json", trajectory_doc(2, 1e7))
        r = run("compare_results.py", "--trajectory", base, cand,
                "--threshold", "10")
        self.assertEqual(r.returncode, 1, r.stdout)

    def test_no_regression_passes(self):
        base = self.write("BENCH_1.json", trajectory_doc(1, 1e8, self.ENV_A))
        cand = self.write("BENCH_2.json", trajectory_doc(2, 1.01e8, self.ENV_A))
        r = run("compare_results.py", "--trajectory", base, cand,
                "--threshold", "10")
        self.assertEqual(r.returncode, 0, r.stdout)


class HangGuardTest(TempDirTest):
    def test_fast_command_passes_exit_code_through(self):
        r = run("hang_guard.py", "--timeout", "30", "--",
                sys.executable, "-c", "import sys; sys.exit(3)")
        self.assertEqual(r.returncode, 3, r.stderr)
        self.assertNotIn("TIMEOUT", r.stderr)

    def test_success_is_silent(self):
        r = run("hang_guard.py", "--timeout", "30", "--",
                sys.executable, "-c", "print('ok')")
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("ok", r.stdout)

    def test_hang_exits_124_with_postmortem(self):
        r = run("hang_guard.py", "--timeout", "1", "--grace", "0.2", "--",
                sys.executable, "-c", "import time; time.sleep(600)")
        self.assertEqual(r.returncode, 124, r.stderr)
        self.assertIn("TIMEOUT", r.stderr)
        # The post-mortem names at least the hung process itself.
        self.assertIn("hang_guard: pid", r.stderr)
        self.assertIn("state=", r.stderr)

    def test_kills_the_whole_process_group(self):
        # The child forks a grandchild that writes a marker AFTER the
        # guard's deadline; if only the leader died, the marker appears.
        marker = os.path.join(self.dir, "leaked")
        prog = (
            "import os, time, sys\n"
            "if os.fork() == 0:\n"
            "    time.sleep(4)\n"
            f"    open({marker!r}, 'w').close()\n"
            "    sys.exit(0)\n"
            "time.sleep(600)\n"
        )
        r = run("hang_guard.py", "--timeout", "1", "--grace", "0.2", "--",
                sys.executable, "-c", prog)
        self.assertEqual(r.returncode, 124, r.stderr)
        time.sleep(4.5)
        self.assertFalse(os.path.exists(marker), "grandchild survived the kill")

    def test_sigabrt_grace_allows_clean_shutdown(self):
        # A child that exits 7 on SIGABRT must be reaped during the grace
        # window; the guard still reports the timeout as 124.
        prog = (
            "import signal, sys, time\n"
            "signal.signal(signal.SIGABRT, lambda *a: sys.exit(7))\n"
            "time.sleep(600)\n"
        )
        r = run("hang_guard.py", "--timeout", "1", "--grace", "5", "--",
                sys.executable, "-c", prog)
        self.assertEqual(r.returncode, 124, r.stderr)

    def test_usage_errors_exit_125(self):
        r = run("hang_guard.py", "--timeout", "5", "--")
        self.assertEqual(r.returncode, 125)
        r = run("hang_guard.py", "--timeout", "0", "--", "true")
        self.assertEqual(r.returncode, 125)
        r = run("hang_guard.py", "--timeout", "5", "--",
                os.path.join(self.dir, "no-such-binary"))
        self.assertEqual(r.returncode, 125)


class CompareResultsTest(TempDirTest):
    def test_aborts_from_zero_baseline_are_flagged(self):
        base = self.write("base.json", results_doc(aborts=0))
        cand = self.write("cand.json", results_doc(aborts=7))
        r = run("compare_results.py", base, cand)
        self.assertEqual(r.returncode, 0, r.stdout)  # warning, not failure
        self.assertIn("warn: aborts grew", r.stdout)
        self.assertIn("0 -> 7", r.stdout)

    def test_abort_growth_above_threshold_is_flagged(self):
        base = self.write("base.json", results_doc(aborts=10))
        cand = self.write("cand.json", results_doc(aborts=100))
        r = run("compare_results.py", base, cand)
        self.assertIn("warn: aborts grew", r.stdout)

    def test_self_comparison_is_clean(self):
        base = self.write("base.json", results_doc(aborts=3))
        r = run("compare_results.py", base, base)
        self.assertEqual(r.returncode, 0, r.stdout)
        self.assertNotIn("warn", r.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
