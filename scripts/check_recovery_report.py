#!/usr/bin/env python3
"""Fail if any REPRO_JSON artifact reports an unclean startup recovery.

Every bench point opens its pool through Runtime::recover() and records the
resulting stats::RecoveryReport under the point's "recovery" key. On a
clean benchmark run (fresh pool, no injected faults) recovery must refuse
nothing: any discarded record (torn / out-of-bounds / media-faulted), any
whole-log checksum mismatch, and any dropped log-range registration means
the product corrupted or mis-sized its own metadata before the measured
run even began. CI runs this over the bench-smoke artifacts alongside
check_capacity_aborts.py.

Usage: check_recovery_report.py ARTIFACT.json [ARTIFACT.json ...]
Exit status: 0 if all clean, 1 if any point is unclean (or an artifact
cannot be parsed).
"""
import json
import sys

# recovery-object keys that must be zero on a clean run, with the reason
# a nonzero value is alarming.
GATED = {
    "records_discarded": "recovery refused log records (torn/invalid/media)",
    "records_torn": "per-record CRC failures on a fresh pool",
    "records_invalid": "log records with out-of-bounds offsets",
    "records_media_faulted": "records lost to media faults",
    "log_crc_mismatches": "committed whole-log checksum mismatches",
    "media_faults": "poisoned lines present at startup",
    "segment_links_truncated": "overflow-chain links dropped",
    "log_range_drops": "log-range registrations dropped (PDRAM-Lite misroute)",
}

# Gated only when the point ran with log_mirror on: mirrored pools promise
# zero-loss recovery (every damaged primary has a healthy replica), so any
# lost record means the mirroring protocol failed its one job.
MIRROR_GATED = {
    "records_lost": "log records with no usable copy despite mirroring",
}


def check(path):
    """Returns a list of offending (bench, label, threads, key, count) tuples."""
    with open(path) as f:
        doc = json.load(f)
    bad = []
    for point in doc.get("results", []):
        rec = point.get("recovery")
        if rec is None:
            bad.append((point.get("bench", "?"), point.get("label", "?"),
                        point.get("threads", "?"), "recovery", "missing"))
            continue
        gated = dict(GATED)
        if rec.get("mirror_enabled"):
            gated.update(MIRROR_GATED)
        for key, _why in gated.items():
            count = rec.get(key, 0)
            if count:
                bad.append((point.get("bench", "?"), point.get("label", "?"),
                            point.get("threads", "?"), key, count))
    return bad


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            bad = check(path)
        except (OSError, ValueError) as e:
            print(f"{path}: cannot read artifact: {e}", file=sys.stderr)
            failed = True
            continue
        if bad:
            failed = True
            for bench, label, threads, key, count in bad:
                why = GATED.get(key) or MIRROR_GATED.get(key) or \
                    "recovery object absent from artifact"
                print(f"{path}: recovery.{key}={count} in [{bench}] {label} "
                      f"@ {threads} threads — {why}", file=sys.stderr)
        else:
            print(f"{path}: recovery reports clean")
    if failed:
        print("unclean startup recovery on default configs — see "
              "docs/FAULTS.md for what each counter means", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
