#!/usr/bin/env python3
"""Check-only clang-format gate over the curated post-config file list.

The .clang-format config landed long after the seed tree was written, so
this gate deliberately does NOT reformat or check the whole repository —
a mass reformat would bury real history under whitespace churn. Instead
it holds the line for files added together with (or after) the config;
extend CHECKED_FILES when a PR adds new sources.

Exit status: 0 when every listed file is formatted (or clang-format is
not installed — the build container does not ship it; CI installs it),
1 when any file needs reformatting, 2 when a listed file is missing.
"""
import os
import shutil
import subprocess
import sys

# Files written against .clang-format; keep sorted.
CHECKED_FILES = [
    "src/analysis/psan.cpp",
    "src/analysis/psan.h",
    "tests/lint_fixtures/raw_store_escape.cpp",
    "tests/test_psan.cpp",
]


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    clang_format = shutil.which("clang-format")
    if clang_format is None:
        print("check_format: clang-format not installed — skipping "
              "(CI installs it; the local toolchain is gcc-only)")
        return 0
    missing = [f for f in CHECKED_FILES
               if not os.path.isfile(os.path.join(root, f))]
    if missing:
        print(f"check_format: listed files missing: {missing}", file=sys.stderr)
        return 2
    bad = []
    for f in CHECKED_FILES:
        path = os.path.join(root, f)
        res = subprocess.run(
            [clang_format, "--dry-run", "--Werror", "--style=file", path],
            capture_output=True, text=True)
        if res.returncode != 0:
            bad.append(f)
            sys.stderr.write(res.stderr)
    if bad:
        print(f"check_format: {len(bad)} file(s) need `clang-format -i`: "
              f"{bad}", file=sys.stderr)
        return 1
    print(f"check_format: {len(CHECKED_FILES)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
