#!/usr/bin/env python3
"""Run a command under a wall-clock deadline; on overrun, dump a
post-mortem of the process tree, then escalate SIGABRT -> SIGKILL and
exit 124 (the coreutils-timeout convention).

Why not `timeout(1)`: a hung DES binary dies silently there — no record
of where it was stuck. A liveness bug (stuck transaction, watchdog spin,
epoch drain deadlock) presents as a hang, and the hang is the evidence.
Before killing, this wrapper writes each process's /proc state (Name,
State, threads, wchan, and the kernel stack when readable) to stderr, so
a CI hang leaves something to debug.

Usage: hang_guard.py --timeout SECONDS [--grace SECONDS] -- cmd [args...]
Exit status: the command's own; 124 on timeout; 125 on usage error.
Only the standard library is used.
"""

import argparse
import os
import signal
import subprocess
import sys
import time


def proc_tree(root_pid):
    """The root pid plus every descendant, via /proc/<pid>/task/<tid>/children."""
    pids, frontier = [], [root_pid]
    while frontier:
        pid = frontier.pop()
        pids.append(pid)
        task_dir = f"/proc/{pid}/task"
        try:
            tids = os.listdir(task_dir)
        except OSError:
            continue
        for tid in tids:
            try:
                with open(f"{task_dir}/{tid}/children") as f:
                    frontier.extend(int(c) for c in f.read().split())
            except (OSError, ValueError):
                pass
    return pids


def read_first_line(path):
    try:
        with open(path) as f:
            return f.readline().strip()
    except OSError:
        return ""


def dump_postmortem(root_pid, out=sys.stderr):
    """Best-effort /proc snapshot of the hung tree. Every read can race
    with process exit, so failures are silently skipped."""
    for pid in proc_tree(root_pid):
        status = {}
        try:
            with open(f"/proc/{pid}/status") as f:
                for line in f:
                    k, _, v = line.partition(":")
                    status[k] = v.strip()
        except OSError:
            continue
        print(
            f"hang_guard: pid {pid} name={status.get('Name', '?')} "
            f"state={status.get('State', '?')} threads={status.get('Threads', '?')} "
            f"wchan={read_first_line(f'/proc/{pid}/wchan') or '?'}",
            file=out,
        )
        # Kernel stack usually needs privileges; print it when we can.
        try:
            with open(f"/proc/{pid}/stack") as f:
                for line in f:
                    print(f"hang_guard:   {line.rstrip()}", file=out)
        except OSError:
            pass


def signal_group(pid, sig):
    try:
        os.killpg(os.getpgid(pid), sig)
    except (OSError, ProcessLookupError):
        pass


def main(argv=None):
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], usage=argparse.SUPPRESS
    )
    ap.add_argument("--timeout", type=float, required=True,
                    help="wall-clock budget in seconds")
    ap.add_argument("--grace", type=float, default=5.0,
                    help="seconds between SIGABRT and SIGKILL")
    ap.add_argument("cmd", nargs=argparse.REMAINDER,
                    help="-- command and arguments")
    try:
        args = ap.parse_args(argv)
    except SystemExit:
        return 125
    cmd = args.cmd
    if cmd and cmd[0] == "--":
        cmd = cmd[1:]
    if not cmd or args.timeout <= 0:
        print("hang_guard: usage: hang_guard.py --timeout S [--grace S] -- cmd ...",
              file=sys.stderr)
        return 125

    # Own session => own process group, so the whole tree can be signalled
    # (a DES binary may fork helpers; killing only the leader leaks them).
    try:
        child = subprocess.Popen(cmd, start_new_session=True)
    except OSError as e:
        print(f"hang_guard: cannot exec {cmd[0]}: {e}", file=sys.stderr)
        return 125
    try:
        return child.wait(timeout=args.timeout)
    except subprocess.TimeoutExpired:
        pass

    print(
        f"hang_guard: TIMEOUT after {args.timeout:g}s: {' '.join(cmd)}",
        file=sys.stderr,
    )
    dump_postmortem(child.pid)
    # SIGABRT first: a C++ binary gets a chance to dump core / flush
    # sanitizer reports; SIGKILL finishes whatever ignored it.
    signal_group(child.pid, signal.SIGABRT)
    deadline = time.monotonic() + max(args.grace, 0.0)
    while time.monotonic() < deadline:
        if child.poll() is not None:
            break
        time.sleep(0.05)
    signal_group(child.pid, signal.SIGKILL)
    try:
        child.wait(timeout=10)
    except subprocess.TimeoutExpired:
        pass
    return 124


if __name__ == "__main__":
    sys.exit(main())
