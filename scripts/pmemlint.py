#!/usr/bin/env python3
"""pmem-API escape lint: reject raw access to pool-managed memory.

Every store, flush, and fence against the persistent heap must go through
nvm::Memory (store_word / store_bytes / clwb / sfence): that is where
cost accounting, the crash shadow image, and the persistency sanitizer
all live. A raw store that bypasses the API is invisible to all three —
the bench numbers silently omit its cost, crash schedules can never tear
it, and psan cannot check its ordering. This lint catches the bypasses
that pattern-match reliably without a compiler:

  R1  memcpy/memmove/memset whose destination is a pool access path
      (use Memory::store_bytes).
  R2  a writable std::atomic_ref over heap words outside src/nvm —
      read-only atomic_ref<const T> is fine (recovery-time scans use it);
      a writable one is an unmodelled store.
  R3  deref-assignment through pool.at()/pool.base()/heap_ pointer
      arithmetic (use Memory::store_word).
  R4  hardware persistence instructions (asm clwb/sfence, _mm_* ,
      __builtin_ia32_*) — the simulator's clwb/sfence are the only
      flush/fence primitives that exist for the modelled heap.

This is a deliberate-token heuristic, not alias analysis: it flags raw
stores written *as* pool accesses, and the clang-tidy pass in the same CI
job covers general hygiene. Justified exceptions carry a same-line
`// pmemlint: allow(reason)` comment (or one on their own line directly
above) — the reason is mandatory and shows up in review diffs.

Usage:
  pmemlint.py [--root DIR]          lint the tree (exit 1 on findings)
  pmemlint.py --self-test           verify every rule fires on
                                    tests/lint_fixtures/raw_store_escape.cpp
"""
import argparse
import os
import re
import sys

SCAN_DIRS = ("src/ptm", "src/alloc", "src/containers", "src/workloads",
             "src/fault", "bench", "examples")
EXTS = (".cpp", ".h")
FIXTURE = "tests/lint_fixtures/raw_store_escape.cpp"

ALLOW_RE = re.compile(r"//\s*pmemlint:\s*allow\([^)]+\)")
# Expressions that denote "a pointer into the modelled persistent heap".
PMEM_TOKEN = re.compile(
    r"pool(\(\))?\s*(\.|->|_\s*\.|_\s*->)\s*(at|base)\s*\(|\bheap_\b")

R2_RE = re.compile(r"std::atomic_ref<\s*(?!const\b)")
R4_RE = re.compile(
    r"\basm\b|__asm__|_mm_clwb|_mm_clflush|_mm_sfence|_mm_mfence|__builtin_ia32_")
LIBC_COPY_RE = re.compile(r"\b(?:std::)?(memcpy|memmove|memset)\s*\(")
# An assignment that is not ==, !=, <=, >=, or a compound form we still
# want (+= through a raw pmem deref is just as much a store).
ASSIGN_RE = re.compile(r"(?<![=!<>])=(?!=)")

MESSAGES = {
    "R1": "libc copy into pool-managed memory — use nvm::Memory::store_bytes",
    "R2": "writable std::atomic_ref over the persistent heap — the store "
          "bypasses nvm::Memory (read-only atomic_ref<const T> is fine)",
    "R3": "raw deref-store through a pool access path — use "
          "nvm::Memory::store_word",
    "R4": "hardware flush/fence or inline asm — only nvm::Memory::clwb/sfence "
          "reach the modelled crash image",
}


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving newlines and
    column positions so match offsets still map to real locations."""
    out = []
    i, n = 0, len(text)
    state = None  # None | "line" | "block" | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # inside a string/char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
            out.append(c if c in (state, "\n") else " ")
        i += 1
    return "".join(out)


def allowed_lines(raw_lines):
    """Line numbers suppressed by `// pmemlint: allow(reason)` — the line
    carrying the comment, plus the next line when the comment stands alone."""
    allowed = set()
    for ln, line in enumerate(raw_lines, 1):
        if ALLOW_RE.search(line):
            allowed.add(ln)
            if line.strip().startswith("//"):
                allowed.add(ln + 1)
    return allowed


def first_call_arg(text, open_paren):
    """The first top-level argument of the call whose '(' is at open_paren."""
    depth = 1
    i = open_paren + 1
    start = i
    while i < len(text) and depth > 0:
        c = text[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 1:
            return text[start:i]
        i += 1
    return text[start:i - 1] if i > start else ""


def lint_file(path, text=None):
    """Returns [(line, rule, excerpt)]."""
    if text is None:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    raw_lines = text.splitlines()
    allowed = allowed_lines(raw_lines)
    stripped = strip_comments_and_strings(text)
    findings = []

    def report(ln, rule):
        if ln not in allowed:
            excerpt = raw_lines[ln - 1].strip() if ln <= len(raw_lines) else ""
            findings.append((ln, rule, excerpt))

    # R1 scans the whole stripped text so multi-line calls still parse.
    for m in LIBC_COPY_RE.finditer(stripped):
        dst = first_call_arg(stripped, m.end() - 1)
        if PMEM_TOKEN.search(dst):
            report(stripped.count("\n", 0, m.start()) + 1, "R1")

    for ln, line in enumerate(stripped.splitlines(), 1):
        if R2_RE.search(line):
            report(ln, "R2")
        if R4_RE.search(line):
            report(ln, "R4")
        am = ASSIGN_RE.search(line)
        if am:
            lhs = line[:am.start()]
            if "*" in lhs and PMEM_TOKEN.search(lhs):
                report(ln, "R3")
    return findings


def scan_tree(root):
    files = []
    for d in SCAN_DIRS:
        base = os.path.join(root, d)
        for dirpath, _dirs, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(EXTS):
                    files.append(os.path.join(dirpath, name))
    all_findings = []
    for path in sorted(files):
        for ln, rule, excerpt in lint_file(path):
            all_findings.append((os.path.relpath(path, root), ln, rule, excerpt))
    return len(files), all_findings


def self_test(root):
    """Every rule must fire on the fixture; the suppressed site must not."""
    path = os.path.join(root, FIXTURE)
    findings = lint_file(path)
    fired = {rule for _ln, rule, _e in findings}
    missing = sorted(set(MESSAGES) - fired)
    ok = True
    if missing:
        print(f"self-test: rules never fired on {FIXTURE}: {missing}",
              file=sys.stderr)
        ok = False
    with open(path) as f:
        raw = f.read().splitlines()
    suppressed = [ln for ln, line in enumerate(raw, 1)
                  if ALLOW_RE.search(line)]
    hit_suppressed = [ln for ln, _r, _e in findings if ln in suppressed]
    if hit_suppressed:
        print(f"self-test: allow() comment did not suppress line(s) "
              f"{hit_suppressed}", file=sys.stderr)
        ok = False
    if ok:
        counts = {}
        for _ln, rule, _e in findings:
            counts[rule] = counts.get(rule, 0) + 1
        summary = ", ".join(f"{r}x{counts[r]}" for r in sorted(counts))
        print(f"self-test: ok — fixture trips every rule ({summary}), "
              "suppression honored")
    return ok


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args(argv[1:])

    if args.self_test:
        return 0 if self_test(args.root) else 1

    nfiles, findings = scan_tree(args.root)
    for relpath, ln, rule, excerpt in findings:
        print(f"{relpath}:{ln}: [{rule}] {MESSAGES[rule]}\n    {excerpt}",
              file=sys.stderr)
    if findings:
        print(f"pmemlint: {len(findings)} escape(s) in {nfiles} files — "
              "route the access through nvm::Memory or justify it with "
              "`// pmemlint: allow(reason)` (docs/ANALYSIS.md)",
              file=sys.stderr)
        return 1
    print(f"pmemlint: {nfiles} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
