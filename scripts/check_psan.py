#!/usr/bin/env python3
"""Fail if the persistency sanitizer reported any correctness violation.

Consumes either kind of psan output (docs/ANALYSIS.md has the schema):

  * JSONL files written via REPRO_PSAN_OUT=path — one summary object per
    nvm::Memory teardown, appended by every pool the run created; or
  * REPRO_JSON bench artifacts — each point under "results" carries a
    "psan" object when the sanitizer was enabled for the run.

The gate is the two correctness kinds: "missing_flush" (a line that had
to be durable at an ordering point was not) and "misordered_persist" (a
store issued ahead of a range whose persistence must precede it). Either
one nonzero means a recovery-correctness bug, not a style issue — a crash
at the right instant loses committed data.

The perf lints (redundant_flush / redundant_fence) and the crash-debris
counters (unflushed_at_crash / torn_at_crash — ordinary mid-transaction
state at an injected power failure) are reported but never fail the gate.

Usage: check_psan.py FILE [FILE ...]
Exit status: 0 all clean, 1 any correctness violation (or unreadable
input), 2 usage error. A file with zero psan records also fails: the
caller asked for a psan-gated run, so an empty file means the sanitizer
never actually ran (e.g. REPRO_PSAN was not exported to the tests).
"""
import json
import sys

GATED = {
    "missing_flush": "line not durable at an ordering point that requires it",
    "misordered_persist": "store issued ahead of a required-durable range",
}
INFORMATIONAL = ("redundant_flush", "redundant_fence",
                 "unflushed_at_crash", "torn_at_crash", "diags_dropped")


def iter_summaries(path):
    """Yield (label, summary-dict) from a JSONL stream or a bench artifact."""
    with open(path) as f:
        text = f.read()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"results"' in stripped[:4096]:
        doc = json.loads(text)
        for point in doc.get("results", []):
            psan = point.get("psan")
            if psan is not None:
                label = "[{}] {} @ {} threads".format(
                    point.get("bench", "?"), point.get("label", "?"),
                    point.get("threads", "?"))
                yield label, psan
        return
    for i, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        yield f"record {i}", json.loads(line)


def check(path):
    """Returns (n_records, violations, lint_totals) for one file."""
    n = 0
    violations = []
    lints = dict.fromkeys(INFORMATIONAL, 0)
    for label, s in iter_summaries(path):
        n += 1
        for key, why in GATED.items():
            count = s.get(key, 0)
            if count:
                violations.append((label, key, count, why))
        for key in INFORMATIONAL:
            lints[key] += s.get(key, 0)
    return n, violations, lints


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            n, violations, lints = check(path)
        except (OSError, ValueError) as e:
            print(f"{path}: cannot read psan output: {e}", file=sys.stderr)
            failed = True
            continue
        if n == 0:
            print(f"{path}: no psan records — the sanitizer never ran "
                  "(is REPRO_PSAN=1 exported?)", file=sys.stderr)
            failed = True
            continue
        if violations:
            failed = True
            for label, key, count, why in violations:
                print(f"{path}: psan.{key}={count} in {label} — {why}",
                      file=sys.stderr)
        else:
            lint_note = ", ".join(f"{k}={v}" for k, v in lints.items() if v)
            print(f"{path}: {n} psan record(s), zero correctness violations"
                  + (f" (lints: {lint_note})" if lint_note else ""))
    if failed:
        print("persistency-sanitizer violations — each diagnostic names the "
              "ordering point and carries replayable event indices; see "
              "docs/ANALYSIS.md", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
