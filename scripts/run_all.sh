#!/usr/bin/env bash
# Build, test, and regenerate every paper table/figure.
#
# Usage: scripts/run_all.sh [quick]
#   quick — quarter-size benchmark points and a 8-thread sweep cap.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "quick" ]]; then
  export REPRO_OPS_SCALE=0.25
  export REPRO_MAX_THREADS=8
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Each binary also writes its machine-readable results to results/<name>.json
# and its wall-clock self-profile to results/<name>.bench.json
# (docs/OBSERVABILITY.md); diff two runs with scripts/compare_results.py.
mkdir -p results

for b in build/bench/*; do
  [[ -f "$b" && -x "$b" ]] || continue
  echo "===== $b ====="
  REPRO_JSON="results/$(basename "$b").json" \
    REPRO_BENCH="results/$(basename "$b").bench.json" "$b"
done

# Roll the self-profiles into the per-PR trajectory record. Successive
# BENCH_<n>.json files chart how fast the simulator runs as the codebase
# grows; compare_results.py --trajectory flags sim-speed regressions.
python3 scripts/bench_trajectory.py --out "BENCH_${BENCH_PR:-8}.json" \
  --pr "${BENCH_PR:-8}" results/*.bench.json
