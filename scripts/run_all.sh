#!/usr/bin/env bash
# Build, test, and regenerate every paper table/figure.
#
# Usage: scripts/run_all.sh [quick]
#   quick — quarter-size benchmark points and a 8-thread sweep cap.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "quick" ]]; then
  export REPRO_OPS_SCALE=0.25
  export REPRO_MAX_THREADS=8
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Each binary also writes its machine-readable results to results/<name>.json
# and its wall-clock self-profile to results/<name>.bench.json
# (docs/OBSERVABILITY.md); diff two runs with scripts/compare_results.py.
mkdir -p results

for b in build/bench/*; do
  [[ -f "$b" && -x "$b" ]] || continue
  echo "===== $b ====="
  REPRO_JSON="results/$(basename "$b").json" \
    REPRO_BENCH="results/$(basename "$b").bench.json" "$b"
done

# Roll the self-profiles into the per-PR trajectory record. Successive
# BENCH_<n>.json files chart how fast the simulator runs as the codebase
# grows; compare_results.py --trajectory flags sim-speed regressions.
#
# Hard gate: the record must exist and carry measured points. A silently
# absent/empty record once let the CI trajectory gate pass vacuously
# (nothing to compare is not a pass).
shopt -s nullglob
profiles=(results/*.bench.json)
shopt -u nullglob
if [[ ${#profiles[@]} -eq 0 ]]; then
  echo "error: no results/*.bench.json self-profiles were produced" >&2
  exit 1
fi
traj="BENCH_${BENCH_PR:-9}.json"
python3 scripts/bench_trajectory.py --out "$traj" \
  --pr "${BENCH_PR:-9}" "${profiles[@]}"
python3 - "$traj" <<'EOF'
import json, sys
rec = json.load(open(sys.argv[1]))
pts = rec.get("totals", {}).get("points", 0)
if rec.get("tool") != "optane-ptm-bench-trajectory" or pts <= 0:
    sys.exit(f"{sys.argv[1]}: no trajectory record produced (points={pts})")
print(f"{sys.argv[1]}: trajectory record OK ({pts} points)")
EOF
