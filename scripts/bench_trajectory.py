#!/usr/bin/env python3
"""Merge per-binary REPRO_BENCH self-profile artifacts into one trajectory
record (BENCH_<n>.json at the repo root).

Usage: bench_trajectory.py --out BENCH_6.json --pr 6 results/*.bench.json

Each input is the JSON a bench binary writes when REPRO_BENCH=<file> is set
(tool "optane-ptm-bench-profile"): per benchmark point, the simulated
throughput plus the wall-clock self-profile — host nanoseconds spent, the
simulation-event count, and event counts per simulator subsystem (cache,
channel, wpq, psan, fault). This script rolls those up per bench binary and
overall, producing the per-PR snapshot that compare_results.py --trajectory
diffs across the BENCH_*.json sequence to catch simulator slowdowns.

Wall-clock numbers are machine-dependent; a trajectory is only comparable
with itself when the files were produced on similar hardware (CI uses a
lenient threshold for this reason).

Only the standard library is used.
"""

import argparse
import json
import os
import platform
import sys

SUBSYSTEMS = ("cache", "channel", "wpq", "psan", "fault")


def rate(events, wall_ns):
    # A zero wall-clock denominator means the self-profiler never measured
    # anything (REPRO_BENCH plumbing broken, or a truncated artifact). A
    # silent 0.0 here once produced trajectory records whose every
    # comparison passed the CI gate vacuously — refuse instead.
    if wall_ns <= 0:
        sys.exit(
            f"zero/negative wall_ns for {events} sim events: the wall-clock "
            "self-profile is broken; refusing to record a zero rate"
        )
    return events * 1e9 / wall_ns


def environment():
    """Host identity recorded with each trajectory: wall-clock rates are
    machine-dependent, so compare_results.py --trajectory uses this to
    downgrade cross-machine deltas to warnings."""
    cpu = ""
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("model name"):
                    cpu = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return {
        "hostname": platform.node(),
        "cpu_model": cpu or platform.processor() or platform.machine(),
        "cores": os.cpu_count() or 0,
    }


def summarize(points):
    wall_ns = sum(p["wall_ns"] for p in points)
    sim_events = sum(p["sim_events"] for p in points)
    tp = [p["throughput_tx_per_sec"] for p in points]
    return {
        "points": len(points),
        "wall_ns": wall_ns,
        "sim_events": sim_events,
        "sim_events_per_sec": rate(sim_events, wall_ns),
        "sim_throughput_tx_per_sec_mean": sum(tp) / len(tp) if tp else 0.0,
        "subsystem_events": {
            s: sum(p["subsystems"].get(s, 0) for p in points) for s in SUBSYSTEMS
        },
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", required=True, help="output trajectory file")
    ap.add_argument("--pr", type=int, required=True, help="PR number for the record")
    ap.add_argument("profiles", nargs="+", help="per-binary REPRO_BENCH files")
    args = ap.parse_args()

    benches = {}
    all_points = []
    for path in args.profiles:
        with open(path) as f:
            doc = json.load(f)
        if doc.get("tool") != "optane-ptm-bench-profile":
            sys.exit(f"{path}: not an optane-ptm-bench-profile artifact")
        points = doc.get("points", [])
        if not points:
            print(f"note: {path} has no points (skipped)", file=sys.stderr)
            continue
        for p in points:
            if p.get("wall_ns", 0) <= 0:
                sys.exit(
                    f"{path}: point {p.get('bench', '?')}/{p.get('label', '?')} "
                    "has zero wall_ns — the self-profile is broken"
                )
        name = os.path.basename(path)
        for suffix in (".bench.json", ".json"):
            if name.endswith(suffix):
                name = name[: -len(suffix)]
                break
        if name in benches:
            sys.exit(f"duplicate bench name {name!r} (from {path})")
        benches[name] = summarize(points)
        all_points.extend(points)

    if not all_points:
        sys.exit("no points in any input profile")

    record = {
        "schema_version": 1,
        "tool": "optane-ptm-bench-trajectory",
        "pr": args.pr,
        "environment": environment(),
        "benches": dict(sorted(benches.items())),
        "totals": summarize(all_points),
    }
    record["totals"].pop("sim_throughput_tx_per_sec_mean")

    with open(args.out, "w") as f:
        json.dump(record, f, indent=2, sort_keys=False)
        f.write("\n")
    t = record["totals"]
    print(
        f"{args.out}: {len(benches)} benches, {t['points']} points, "
        f"{t['sim_events']} events in {t['wall_ns'] / 1e9:.2f}s wall "
        f"({t['sim_events_per_sec'] / 1e6:.2f} M events/s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
