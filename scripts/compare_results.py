#!/usr/bin/env python3
"""Diff two REPRO_JSON bench artifacts (see docs/OBSERVABILITY.md).

Usage: compare_results.py BASELINE.json CANDIDATE.json [--threshold PCT]
       compare_results.py --trajectory BENCH_5.json BENCH_6.json [--threshold PCT]

Default mode: points are matched on (bench, label, threads). For each
matched point the throughput delta is reported; deltas below -THRESHOLD%
(default 5) are regressions. Abort totals that grew by more than the same
factor are flagged too (as warnings — abort counts are legitimately noisy
at low thread counts).

--trajectory mode: the inputs are two BENCH_<n>.json records written by
scripts/bench_trajectory.py. Per-bench (and total) wall-clock simulation
speed — sim_events_per_sec — is compared instead of simulated throughput;
drops beyond THRESHOLD% (default 10) are regressions. Wall-clock speed is
machine-dependent, so cross-machine comparisons should pass a lenient
threshold.

Exit status: 0 when no regression, 1 otherwise. Comparing an artifact
against itself must report zero regressions.

Only the standard library is used, so the script runs anywhere the bench
binaries do.
"""

import argparse
import json
import sys


def load_points(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("tool") != "optane-ptm-bench":
        sys.exit(f"{path}: not an optane-ptm-bench artifact")
    points = {}
    for r in doc.get("results", []):
        key = (r["bench"], r["label"], r["threads"])
        if key in points:
            sys.exit(f"{path}: duplicate point {key}")
        points[key] = r
    return points


def fmt_key(key):
    bench, label, threads = key
    return f"{bench} / {label} @ {threads}t"


def load_trajectory(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("tool") != "optane-ptm-bench-trajectory":
        sys.exit(f"{path}: not an optane-ptm-bench-trajectory artifact "
                 "(expected a scripts/bench_trajectory.py output)")
    return doc


def cross_machine(base, cand):
    """True when the two trajectory records were provably produced on
    different hardware. Rates from different machines are not comparable,
    so regressions are downgraded to warnings. The decision uses CPU model
    and core count, not hostname: CI runners draw fresh hostnames from an
    identical-hardware pool every run, and keying on hostname would
    permanently neuter the gate there. Hostnames are still printed for
    diagnosis. Records predating the environment field compare as before
    (unknown is not proof of a different machine)."""
    eb, ec = base.get("environment"), cand.get("environment")
    if not eb or not ec:
        return False
    return (eb.get("cpu_model"), eb.get("cores")) != (
        ec.get("cpu_model"), ec.get("cores"))


def compare_trajectories(base_path, cand_path, threshold):
    base = load_trajectory(base_path)
    cand = load_trajectory(cand_path)

    rows = []  # (name, base_rate, cand_rate)
    for name in sorted(set(base["benches"]) & set(cand["benches"])):
        rows.append((name,
                     base["benches"][name]["sim_events_per_sec"],
                     cand["benches"][name]["sim_events_per_sec"]))
    if not rows:
        sys.exit("no bench names in common between the two trajectories")
    rows.append(("TOTAL",
                 base["totals"]["sim_events_per_sec"],
                 cand["totals"]["sim_events_per_sec"]))

    # A zero rate on either side means a broken self-profile, not a slow
    # simulator. The old `if rb else 0.0` guard silently reported +0.0%
    # for such rows, so a dead profiler could never fail the gate.
    for name, rb, rc in rows:
        if rb <= 0 or rc <= 0:
            sys.exit(f"{name}: zero sim-events/sec rate "
                     f"({rb:g} -> {rc:g}) — the wall-clock self-profile is "
                     "broken; refusing to compare")

    foreign = cross_machine(base, cand)
    eb, ec = base.get("environment", {}), cand.get("environment", {})
    if foreign:
        print(f"note: trajectories come from different hardware "
              f"({eb.get('cpu_model', '?')} x{eb.get('cores', '?')} "
              f"[{eb.get('hostname', '?')}] vs "
              f"{ec.get('cpu_model', '?')} x{ec.get('cores', '?')} "
              f"[{ec.get('hostname', '?')}]); deltas reported as warnings only")

    print(f"trajectory: PR {base.get('pr', '?')} -> PR {cand.get('pr', '?')} "
          f"(sim-events/sec, threshold {threshold:g}%)")
    regressions = []
    for name, rb, rc in rows:
        delta = 100.0 * (rc / rb - 1.0)
        mark = ""
        if delta < -threshold:
            if foreign:
                mark = "  <-- warn: beyond threshold (cross-machine)"
            else:
                mark = "  <-- REGRESSION"
                regressions.append(name)
        print(f"  {name:30s} {rb / 1e6:10.3f} -> {rc / 1e6:10.3f} M/s "
              f"({delta:+.1f}%){mark}")

    for name in sorted(set(base["benches"]) - set(cand["benches"])):
        print(f"  warn: only in baseline : {name}")
    for name in sorted(set(cand["benches"]) - set(base["benches"])):
        print(f"  warn: only in candidate: {name}")

    return 1 if regressions else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="PCT",
        help="regression threshold in percent (default 5; 10 with --trajectory)",
    )
    ap.add_argument(
        "--trajectory",
        action="store_true",
        help="compare two BENCH_<n>.json wall-clock trajectory records "
        "instead of REPRO_JSON artifacts",
    )
    args = ap.parse_args()

    if args.trajectory:
        threshold = 10.0 if args.threshold is None else args.threshold
        return compare_trajectories(args.baseline, args.candidate, threshold)
    if args.threshold is None:
        args.threshold = 5.0

    base = load_points(args.baseline)
    cand = load_points(args.candidate)

    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    matched = sorted(set(base) & set(cand))
    if not matched:
        sys.exit("no matching points between the two artifacts")

    regressions, improvements, abort_warnings = [], [], []
    for key in matched:
        b, c = base[key], cand[key]
        tb, tc = b["throughput_tx_per_sec"], c["throughput_tx_per_sec"]
        delta = 100.0 * (tc / tb - 1.0) if tb else 0.0
        if delta < -args.threshold:
            regressions.append((key, tb, tc, delta))
        elif delta > args.threshold:
            improvements.append((key, tb, tc, delta))
        ab = b["counters"]["aborts"]
        ac = c["counters"]["aborts"]
        if ab and ac > ab * (1.0 + args.threshold / 100.0):
            abort_warnings.append((key, ab, ac))
        elif ab == 0 and ac > 0:
            # With a zero baseline the truthiness guard above short-
            # circuits, so a point that went from no aborts to any aborts
            # was never flagged. Growth from zero is infinite in relative
            # terms — always worth a warning.
            abort_warnings.append((key, ab, ac))

    print(f"matched points : {len(matched)}")
    print(f"within ±{args.threshold:g}%    : "
          f"{len(matched) - len(regressions) - len(improvements)}")
    print(f"improvements   : {len(improvements)}")
    print(f"regressions    : {len(regressions)}")

    for key, tb, tc, delta in sorted(regressions, key=lambda r: r[3]):
        print(f"  REGRESSION {fmt_key(key)}: {tb:.0f} -> {tc:.0f} tx/s ({delta:+.1f}%)")
    for key, tb, tc, delta in sorted(improvements, key=lambda r: -r[3]):
        print(f"  improved   {fmt_key(key)}: {tb:.0f} -> {tc:.0f} tx/s ({delta:+.1f}%)")
    for key, ab, ac in abort_warnings:
        print(f"  warn: aborts grew {fmt_key(key)}: {ab} -> {ac}")
    for key in only_base:
        print(f"  warn: only in baseline : {fmt_key(key)}")
    for key in only_cand:
        print(f"  warn: only in candidate: {fmt_key(key)}")

    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
